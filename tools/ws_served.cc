// ws_served — the scheduling service daemon.
//
// Listens on localhost TCP and/or a Unix domain socket, admits requests into
// a continuous step loop of fingerprint-sharded workers with single-flight
// coalescing behind a bounded admission queue, caches results by request
// fingerprint, and drains gracefully on SIGTERM/SIGINT or a SHUTDOWN
// request.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <chrono>
#include <string>
#include <thread>

#include "base/cli.h"
#include "serve/server.h"

namespace {

const ws::ToolInfo kTool = {
    "ws_served",
    "usage: ws_served [--unix PATH] [--tcp HOST] [--port N]\n"
    "                 [--shards N] [--workers N] [--wave-workers N]\n"
    "                 [--queue N] [--cache N]\n"
    "                 [--store DIR] [--store-max-bytes N]\n"
    "\n"
    "  --unix PATH   listen on a Unix domain socket at PATH\n"
    "  --tcp HOST    TCP bind host (default 127.0.0.1; implies --port 0)\n"
    "  --port N      TCP port (0 = ephemeral; the bound port is printed)\n"
    "  --shards N    worker shards (default 1); requests route to shards by\n"
    "                their 128-bit fingerprint, each shard owns its queue,\n"
    "                single-flight table and cache segment\n"
    "  --workers N   scheduling worker threads across all shards (default 4;\n"
    "                every shard gets at least one)\n"
    "  --wave-workers N  intra-run wave-loop threads per scheduling run\n"
    "                (default 0 = inline). Execution hint only: responses,\n"
    "                cache keys and store keys are byte-identical at any\n"
    "                setting\n"
    "  --queue N     max admitted-but-unfinished requests (default 64)\n"
    "  --cache N     LRU result-cache entries, 0 disables (default 256)\n"
    "  --store DIR   durable artifact store: warm-start the cache from DIR\n"
    "                on startup and write every computed result through, so\n"
    "                a restarted daemon serves prior work byte-identically\n"
    "  --store-max-bytes N  LRU bound on stored bytes (default unbounded)\n"
    "\n"
    "At least one of --unix / --port is required. The daemon runs until\n"
    "SIGTERM/SIGINT or a SHUTDOWN request, then drains in-flight work.\n"};

volatile std::sig_atomic_t g_signal = 0;

void OnSignal(int) { g_signal = 1; }

int ParseInt(const std::string& text, const char* flag) {
  char* end = nullptr;
  const long v = std::strtol(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0') {
    ws::UsageError(kTool, std::string(flag) + " wants an integer, got \"" +
                              text + "\"");
  }
  return static_cast<int>(v);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ws;
  HandleStandardFlags(kTool, argc, argv);

  ServerOptions options;
  bool port_given = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) UsageError(kTool, arg + " wants a value");
      return argv[++i];
    };
    if (arg == "--unix") {
      options.unix_path = next();
    } else if (arg == "--tcp") {
      options.tcp_host = next();
      if (!port_given) options.tcp_port = 0;
    } else if (arg == "--port") {
      options.tcp_port = ParseInt(next(), "--port");
      port_given = true;
    } else if (arg == "--shards") {
      options.shards = ParseInt(next(), "--shards");
    } else if (arg == "--workers") {
      options.workers = ParseInt(next(), "--workers");
    } else if (arg == "--wave-workers") {
      options.wave_workers = ParseInt(next(), "--wave-workers");
    } else if (arg == "--queue") {
      options.max_queue = ParseInt(next(), "--queue");
    } else if (arg == "--cache") {
      const int n = ParseInt(next(), "--cache");
      if (n < 0) UsageError(kTool, "--cache must be >= 0");
      options.cache_capacity = static_cast<std::size_t>(n);
    } else if (arg == "--store") {
      options.store_dir = next();
    } else if (arg == "--store-max-bytes") {
      const int n = ParseInt(next(), "--store-max-bytes");
      if (n < 0) UsageError(kTool, "--store-max-bytes must be >= 0");
      options.store_max_bytes = static_cast<std::uint64_t>(n);
    } else {
      UsageError(kTool, "unrecognized argument: " + arg);
    }
  }
  if (options.tcp_port < 0 && options.unix_path.empty()) {
    UsageError(kTool, "no listener: pass --unix PATH and/or --port N");
  }

  ServeServer server(std::move(options));
  if (const Status s = server.Start(); !s.ok()) {
    std::fprintf(stderr, "ws_served: %s\n", s.message().c_str());
    return 1;
  }
  if (server.tcp_port() >= 0) {
    std::fprintf(stderr, "ws_served: listening on tcp port %d\n",
                 server.tcp_port());
  }

  std::signal(SIGTERM, OnSignal);
  std::signal(SIGINT, OnSignal);

  // The signal handler can only set a flag (nothing else is
  // async-signal-safe), so the main thread polls it alongside the server's
  // own stop request (the SHUTDOWN verb).
  while (g_signal == 0 && !server.stop_requested()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  std::fprintf(stderr, "ws_served: draining\n");
  server.Stop();
  return 0;
}
