// ws_client — command-line client for the ws_served scheduling service.
//
//   ws_client --server ADDR ping
//   ws_client --server ADDR stats
//   ws_client --server ADDR shutdown
//   ws_client --server ADDR schedule DESIGN [options]
//   ws_client --server ADDR profile DESIGN [options]
//
// `schedule` prints the run's canonical JSON (the same rendering the run
// gets inside a ws_explore report) and exits 0 on a scheduled run, 3 when
// the run itself failed (e.g. exhausted caps), 1 on transport or typed
// protocol errors.
//
// `profile` rebuilds the named design and its stimulus set locally (the
// same deterministic construction the server performs), replays the traces
// through the golden interpreter to observe every branch outcome, and
// reports the resulting BranchProfile over the PROFILE verb — after which
// the server re-schedules that fingerprint in the background and swaps in
// the result if it measures better.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "adapt/profile.h"
#include "base/cli.h"
#include "explore/explore.h"
#include "explore/report.h"
#include "serve/client.h"

namespace {

const ws::ToolInfo kTool = {
    "ws_client",
    "usage: ws_client --server ADDR COMMAND [args]\n"
    "\n"
    "  ADDR is \"unix:/path/to.sock\" or \"[host:]port\".\n"
    "\n"
    "commands:\n"
    "  ping                  round-trip check; prints the server's reply\n"
    "  stats                 print the server's live metrics\n"
    "  shutdown              ask the server to drain and exit\n"
    "  schedule DESIGN       schedule one design; prints the run as JSON\n"
    "  profile DESIGN        replay the design's stimuli through the golden\n"
    "                        interpreter locally and report the observed\n"
    "                        branch profile (PROFILE verb); the server\n"
    "                        re-schedules in the background\n"
    "    --mode ws|single|spec   speculation mode (default spec)\n"
    "    --policy crit|prob|lambda|fifo\n"
    "                            operation-selection policy (default crit,\n"
    "                            the paper's Eq. 5 criticality)\n"
    "    --alloc SPEC            allocation: default, unlimited, none, or\n"
    "                            unit=count,... overrides\n"
    "    --clock P               clock period in ns (default 1.0)\n"
    "    --stimuli N             stimulus vectors (default 50)\n"
    "    --seed S                stimulus seed (default 1998)\n"
    "    --deadline-ms N         per-request deadline, from admission\n"
    "    --no-sim                skip the trace-driven E.N.C. measurement\n"
    "    --timing                include wall-clock fields in the JSON\n"};

int ParseInt(const std::string& text, const char* flag) {
  char* end = nullptr;
  const long v = std::strtol(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0') {
    ws::UsageError(kTool, std::string(flag) + " wants an integer, got \"" +
                              text + "\"");
  }
  return static_cast<int>(v);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ws;
  HandleStandardFlags(kTool, argc, argv);

  std::string server;
  std::string command;
  std::string design;
  CellRequest request;
  ReportRenderOptions render;
  render.include_timing = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) UsageError(kTool, arg + " wants a value");
      return argv[++i];
    };
    if (arg == "--server") {
      server = next();
    } else if (arg == "--mode") {
      const std::string m = next();
      if (m == "ws") request.mode = SpeculationMode::kWavesched;
      else if (m == "single") request.mode = SpeculationMode::kSinglePath;
      else if (m == "spec") request.mode = SpeculationMode::kWaveschedSpec;
      else UsageError(kTool, "unknown --mode: " + m);
    } else if (arg == "--policy") {
      const Result<SelectionPolicy> policy = ParseSelectionPolicy(next());
      if (!policy.ok()) UsageError(kTool, "--policy: " + policy.error());
      request.policy = *policy;
    } else if (arg == "--alloc") {
      const std::string a = next();
      request.alloc = AllocationSpec{a, a};
    } else if (arg == "--clock") {
      const std::string p = next();
      request.clock.label = p + "ns";
      request.clock.clock.period_ns = std::atof(p.c_str());
    } else if (arg == "--stimuli") {
      request.num_stimuli = ParseInt(next(), "--stimuli");
    } else if (arg == "--seed") {
      request.seed = std::strtoull(next().c_str(), nullptr, 10);
    } else if (arg == "--deadline-ms") {
      request.deadline_ms = ParseInt(next(), "--deadline-ms");
    } else if (arg == "--no-sim") {
      request.measure_sim_enc = false;
    } else if (arg == "--timing") {
      render.include_timing = true;
    } else if (!arg.empty() && arg[0] == '-') {
      UsageError(kTool, "unrecognized argument: " + arg);
    } else if (command.empty()) {
      command = arg;
    } else if ((command == "schedule" || command == "profile") &&
               design.empty()) {
      design = arg;
    } else {
      UsageError(kTool, "unexpected argument: " + arg);
    }
  }
  if (server.empty()) UsageError(kTool, "--server ADDR is required");
  if (command.empty()) UsageError(kTool, "no command given");

  Result<ServeClient> client = ServeClient::Connect(server);
  if (!client.ok()) {
    std::fprintf(stderr, "ws_client: %s\n", client.error().c_str());
    return 1;
  }

  if (command == "ping" || command == "stats" || command == "shutdown") {
    const Result<std::string> reply = command == "ping" ? client->Ping()
                                      : command == "stats"
                                          ? client->Stats()
                                          : client->Shutdown();
    if (!reply.ok()) {
      std::fprintf(stderr, "ws_client: %s\n", reply.error().c_str());
      return 1;
    }
    std::fputs(reply->c_str(), stdout);
    if (!reply->empty() && reply->back() != '\n') std::fputc('\n', stdout);
    return 0;
  }
  if (command != "schedule" && command != "profile") {
    UsageError(kTool, "unknown command: " + command);
  }
  if (design.empty()) UsageError(kTool, command + " wants a DESIGN name");
  request.design = DesignSpec{design, ""};

  if (command == "profile") {
    // Observe the branches locally: the benchmark (graph + stimuli) is
    // rebuilt by the same deterministic construction the server uses, so
    // the profiled conditions are the server's node ids.
    const Result<Benchmark> bench =
        BuildExploreDesign(request.design, request.ToSpec());
    if (!bench.ok()) {
      std::fprintf(stderr, "ws_client: %s\n", bench.error().c_str());
      return 1;
    }
    const BranchProfile profile =
        ProfileFromInterp(bench->graph, bench->stimuli);
    const Result<std::string> ack = client->ReportProfile(request, profile);
    if (!ack.ok()) {
      std::fprintf(stderr, "ws_client: %s: %s\n",
                   StatusCodeName(ack.status().code()), ack.error().c_str());
      return 1;
    }
    std::fprintf(stdout, "%s\n", ack->c_str());
    return 0;
  }

  const Result<ScheduleArtifact> artifact = client->Schedule(request);
  if (!artifact.ok()) {
    std::fprintf(stderr, "ws_client: %s: %s\n",
                 StatusCodeName(artifact.status().code()),
                 artifact.error().c_str());
    return 1;
  }
  std::fputs(ExploreRunToJson(artifact->run, render).c_str(), stdout);
  if (artifact->cache_hit) std::fprintf(stderr, "ws_client: cache hit\n");
  return artifact->run.ok ? 0 : 3;
}
