// ws_adapt — inspect and replay the adaptive re-scheduling state of an
// artifact store directory (the `--store DIR` of ws_served).
//
// Commands:
//   ws_adapt ls DIR                list stored branch profiles (profile key,
//                                  traces, conditions, digest) and, when the
//                                  paired run artifact exists, its adaptive
//                                  generation
//   ws_adapt replay DIR DESIGN     re-run one cell's adaptation offline:
//                                  look up the cell's stored profile, derive
//                                  probabilities, re-schedule, and compare
//                                  against the stored (or freshly computed)
//                                  baseline — printing the swap verdict the
//                                  daemon's background lane would reach
//     --mode ws|single|spec --policy crit|prob|lambda|fifo --alloc SPEC
//     --clock P --stimuli N --seed S   (cell coordinates, as in ws_client)
//
// `replay` recomputes deterministically from the store's bytes: the same
// profile always derives the same probabilities and the same candidate
// schedule, so the printed verdict is reproducible.
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <optional>
#include <string>

#include "adapt/profile.h"
#include "base/cli.h"
#include "explore/explore.h"
#include "explore/run_codec.h"
#include "io/artifact_store.h"
#include "io/codec.h"
#include "sched/policy.h"
#include "serve/protocol.h"

namespace {

const ws::ToolInfo kTool = {
    "ws_adapt",
    "usage: ws_adapt ls DIR\n"
    "       ws_adapt replay DIR DESIGN [--mode ws|single|spec]\n"
    "                [--policy crit|prob|lambda|fifo] [--alloc SPEC]\n"
    "                [--clock P] [--stimuli N] [--seed S]\n"
    "\n"
    "Inspects stored branch profiles and replays a cell's adaptive\n"
    "re-schedule offline, printing the swap verdict the serving daemon's\n"
    "background lane would reach for the same bytes.\n"};

std::string KeyToHex(const ws::Fp128& key) {
  char buf[33];
  std::snprintf(buf, sizeof(buf), "%016llx%016llx",
                static_cast<unsigned long long>(key.hi),
                static_cast<unsigned long long>(key.lo));
  return buf;
}

ws::Result<std::unique_ptr<ws::ArtifactStore>> OpenStore(
    const std::string& dir) {
  ws::ArtifactStoreOptions options;
  options.dir = dir;
  return ws::ArtifactStore::Open(std::move(options));
}

int CmdLs(const std::string& dir) {
  ws::Result<std::unique_ptr<ws::ArtifactStore>> store = OpenStore(dir);
  if (!store.ok()) {
    std::fprintf(stderr, "ws_adapt: %s\n", store.error().c_str());
    return 1;
  }
  std::printf("%-32s  %7s  %5s  %5s  %s\n", "profile_key", "traces", "conds",
              "loops", "digest");
  int profiles = 0;
  (*store)->ForEachLru(
      [&profiles](const ws::Fp128& key, const std::string& value) {
        const ws::Result<ws::ArtifactKind> kind =
            ws::PeekArtifactKind(value);
        if (!kind.ok() || *kind != ws::ArtifactKind::kBranchProfile) return;
        const ws::Result<ws::BranchProfile> profile =
            ws::DecodeProfileArtifact(value);
        if (!profile.ok()) return;
        ++profiles;
        std::printf("%s  %7lld  %5zu  %5zu  %s\n", KeyToHex(key).c_str(),
                    static_cast<long long>(profile->traces),
                    profile->conds.size(), profile->loops.size(),
                    KeyToHex(ws::ProfileDigest(*profile)).c_str());
      });
  std::fprintf(stderr, "ws_adapt: %d stored profile%s\n", profiles,
               profiles == 1 ? "" : "s");
  return 0;
}

int CmdReplay(const std::string& dir, const ws::CellRequest& request) {
  using namespace ws;
  Result<std::unique_ptr<ArtifactStore>> store = OpenStore(dir);
  if (!store.ok()) {
    std::fprintf(stderr, "ws_adapt: %s\n", store.error().c_str());
    return 1;
  }

  // The cell's key, computed exactly like the daemon computes it.
  const ExploreSpec spec = request.ToSpec();
  if (const Status valid = spec.Validate(); !valid.ok()) {
    std::fprintf(stderr, "ws_adapt: %s\n", valid.message().c_str());
    return 1;
  }
  const ExploreCell cell = request.ToCell();
  Result<Benchmark> bench = BuildExploreDesign(cell.design, spec);
  if (!bench.ok()) {
    std::fprintf(stderr, "ws_adapt: %s\n", bench.error().c_str());
    return 1;
  }
  Result<Allocation> allocation = BuildExploreAllocation(*bench, cell.alloc);
  if (!allocation.ok()) {
    std::fprintf(stderr, "ws_adapt: %s\n", allocation.error().c_str());
    return 1;
  }
  const ScheduleRequest sched_request =
      MakeCellScheduleRequest(spec, *bench, *allocation, cell);
  const Fp128 key = ExploreCellKey(spec, cell, sched_request);
  std::printf("cell_key        %s\n", KeyToHex(key).c_str());

  const std::optional<std::string> profile_bytes =
      (*store)->Get(ProfileStoreKey(key));
  if (!profile_bytes.has_value()) {
    std::fprintf(stderr, "ws_adapt: no stored profile for this cell\n");
    return 1;
  }
  const Result<BranchProfile> profile = DecodeProfileArtifact(*profile_bytes);
  if (!profile.ok()) {
    std::fprintf(stderr, "ws_adapt: %s\n", profile.error().c_str());
    return 1;
  }
  std::printf("profile_traces  %lld\n",
              static_cast<long long>(profile->traces));
  std::printf("profile_digest  %s\n",
              KeyToHex(ProfileDigest(*profile)).c_str());

  // Baseline: the stored run artifact when present, else freshly computed
  // from the request's own annotations (what the daemon would publish as
  // generation 0).
  ExploreRun baseline;
  bool stored_baseline = false;
  if (const std::optional<std::string> artifact = (*store)->Get(key);
      artifact.has_value()) {
    if (Result<ExploreRun> decoded = DecodeRunArtifact(*artifact);
        decoded.ok()) {
      baseline = *std::move(decoded);
      stored_baseline = true;
      const Result<ArtifactMeta> meta = PeekArtifactMeta(*artifact);
      if (meta.ok()) std::printf("generation      %u\n", meta->generation);
    }
  }
  if (!stored_baseline) {
    baseline = RunBenchmarkCell(spec, *bench, *allocation, cell);
    if (!baseline.ok) {
      std::fprintf(stderr, "ws_adapt: baseline run failed: %s\n",
                   baseline.error.c_str());
      return 1;
    }
  }
  std::printf("baseline        %s enc_sim %.6f (states %zu)\n",
              stored_baseline ? "stored" : "computed", baseline.enc_sim,
              baseline.states);

  Benchmark adapted = *bench;
  const ApplyProfileResult derived =
      ApplyProfileToGraph(adapted.graph, *profile);
  std::printf("derived         %d condition%s, max_delta %.4f\n",
              derived.applied, derived.applied == 1 ? "" : "s",
              derived.max_delta);
  if (derived.applied == 0) {
    std::printf("verdict         no-op (profile matches no control "
                "condition)\n");
    return 0;
  }
  const ExploreRun candidate =
      RunBenchmarkCell(spec, adapted, *allocation, cell);
  if (!candidate.ok) {
    std::fprintf(stderr, "ws_adapt: candidate run failed: %s\n",
                 candidate.error.c_str());
    return 1;
  }
  std::printf("candidate       enc_sim %.6f (states %zu)\n",
              candidate.enc_sim, candidate.states);
  const bool swap = candidate.enc_sim < baseline.enc_sim;
  std::printf("verdict         %s (%.6f %s %.6f)\n",
              swap ? "swap" : "keep", candidate.enc_sim,
              swap ? "<" : ">=", baseline.enc_sim);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ws;
  HandleStandardFlags(kTool, argc, argv);
  if (argc < 3) UsageError(kTool, "want a command and a store directory");
  const std::string command = argv[1];
  const std::string dir = argv[2];
  if (command == "ls") {
    if (argc != 3) UsageError(kTool, "ls wants exactly a store directory");
    return CmdLs(dir);
  }
  if (command != "replay") UsageError(kTool, "unknown command: " + command);
  if (argc < 4) UsageError(kTool, "replay wants DIR and DESIGN");

  CellRequest request;
  request.design = DesignSpec{argv[3], ""};
  for (int i = 4; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) UsageError(kTool, arg + " wants a value");
      return argv[++i];
    };
    if (arg == "--mode") {
      const std::string m = next();
      if (m == "ws") request.mode = SpeculationMode::kWavesched;
      else if (m == "single") request.mode = SpeculationMode::kSinglePath;
      else if (m == "spec") request.mode = SpeculationMode::kWaveschedSpec;
      else UsageError(kTool, "unknown --mode: " + m);
    } else if (arg == "--policy") {
      const Result<SelectionPolicy> policy = ParseSelectionPolicy(next());
      if (!policy.ok()) UsageError(kTool, "--policy: " + policy.error());
      request.policy = *policy;
    } else if (arg == "--alloc") {
      const std::string a = next();
      request.alloc = AllocationSpec{a, a};
    } else if (arg == "--clock") {
      const std::string p = next();
      request.clock.label = p + "ns";
      request.clock.clock.period_ns = std::atof(p.c_str());
    } else if (arg == "--stimuli") {
      request.num_stimuli = std::atoi(next().c_str());
    } else if (arg == "--seed") {
      request.seed = std::strtoull(next().c_str(), nullptr, 10);
    } else {
      UsageError(kTool, "unrecognized argument: " + arg);
    }
  }
  return CmdReplay(dir, request);
}
