// ws_artifacts — inspect and maintain a schedule-artifact store directory
// (the `--store DIR` of ws_served / ws_explore).
//
// Commands:
//   ws_artifacts ls DIR            list entries (key, kind, payload bytes,
//                                  adaptive generation, profile digest),
//                                  least recently used first
//   ws_artifacts get DIR KEY       decode one artifact; metric rows print as
//                                  text, raw payloads dump to stdout
//   ws_artifacts verify DIR        read-only integrity scan (headers, CRCs);
//                                  exit 1 when anything is corrupt
//   ws_artifacts compact DIR       rewrite the log to live entries only
//
// KEY is the 32-hex-digit fingerprint printed by `ls`.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "adapt/profile.h"
#include "base/cli.h"
#include "base/hashing.h"
#include "explore/run_codec.h"
#include "io/artifact_store.h"
#include "io/codec.h"

namespace {

const ws::ToolInfo kTool = {
    "ws_artifacts",
    "usage: ws_artifacts ls DIR\n"
    "       ws_artifacts get DIR KEY\n"
    "       ws_artifacts verify DIR\n"
    "       ws_artifacts compact DIR\n"
    "\n"
    "Inspects and maintains a schedule-artifact store directory (the\n"
    "--store DIR of ws_served / ws_explore). KEY is the 32-hex-digit\n"
    "fingerprint printed by `ls`.\n"};

std::string KeyToHex(const ws::Fp128& key) {
  char buf[33];
  std::snprintf(buf, sizeof(buf), "%016llx%016llx",
                static_cast<unsigned long long>(key.hi),
                static_cast<unsigned long long>(key.lo));
  return buf;
}

bool HexToKey(const std::string& hex, ws::Fp128* key) {
  if (hex.size() != 32) return false;
  char* end = nullptr;
  const std::string hi = hex.substr(0, 16), lo = hex.substr(16);
  key->hi = std::strtoull(hi.c_str(), &end, 16);
  if (end != hi.c_str() + 16) return false;
  key->lo = std::strtoull(lo.c_str(), &end, 16);
  return end == lo.c_str() + 16;
}

ws::Result<std::unique_ptr<ws::ArtifactStore>> OpenStore(
    const std::string& dir) {
  ws::ArtifactStoreOptions options;
  options.dir = dir;
  return ws::ArtifactStore::Open(std::move(options));
}

const char* PeekKindName(const std::string& artifact) {
  const ws::Result<ws::ArtifactKind> kind = ws::PeekArtifactKind(artifact);
  return kind.ok() ? ws::ArtifactKindName(*kind) : "undecodable";
}

int CmdLs(const std::string& dir) {
  ws::Result<std::unique_ptr<ws::ArtifactStore>> store = OpenStore(dir);
  if (!store.ok()) {
    std::fprintf(stderr, "ws_artifacts: %s\n", store.error().c_str());
    return 1;
  }
  std::printf("%-32s  %-16s  %8s  %3s  %s\n", "key", "kind", "bytes", "gen",
              "profile_digest");
  (*store)->ForEachLru([](const ws::Fp128& key, const std::string& value) {
    // The adaptive columns come from the v4 envelope header; pre-v4
    // entries (and undecodable ones) report generation 0, no digest.
    const ws::Result<ws::ArtifactMeta> meta = ws::PeekArtifactMeta(value);
    const ws::ArtifactMeta m = meta.ok() ? *meta : ws::ArtifactMeta{};
    const bool profiled = m.profile_digest != ws::Fp128{0, 0};
    std::printf("%s  %-16s  %8zu  %3u  %s\n", KeyToHex(key).c_str(),
                PeekKindName(value), value.size(), m.generation,
                profiled ? KeyToHex(m.profile_digest).c_str() : "-");
  });
  const ws::ArtifactStoreCounters c = (*store)->counters();
  std::fprintf(stderr,
               "ws_artifacts: %zu entries, %llu live bytes, %llu log bytes"
               "%s\n",
               (*store)->entries(),
               static_cast<unsigned long long>((*store)->live_bytes()),
               static_cast<unsigned long long>((*store)->log_bytes()),
               c.corrupt_dropped > 0 ? " (corrupt tail repaired)" : "");
  return 0;
}

int CmdGet(const std::string& dir, const std::string& key_hex) {
  ws::Fp128 key;
  if (!HexToKey(key_hex, &key)) {
    std::fprintf(stderr,
                 "ws_artifacts: KEY must be 32 hex digits, got \"%s\"\n",
                 key_hex.c_str());
    return 1;
  }
  ws::Result<std::unique_ptr<ws::ArtifactStore>> store = OpenStore(dir);
  if (!store.ok()) {
    std::fprintf(stderr, "ws_artifacts: %s\n", store.error().c_str());
    return 1;
  }
  const std::optional<std::string> artifact = (*store)->Get(key);
  if (!artifact.has_value()) {
    std::fprintf(stderr, "ws_artifacts: no artifact for key %s\n",
                 key_hex.c_str());
    return 1;
  }
  const ws::Result<ws::ArtifactKind> kind = ws::PeekArtifactKind(*artifact);
  if (kind.ok() && *kind == ws::ArtifactKind::kExploreRun) {
    const ws::Result<ws::ExploreRun> run = ws::DecodeRunArtifact(*artifact);
    if (!run.ok()) {
      std::fprintf(stderr, "ws_artifacts: %s\n", run.error().c_str());
      return 1;
    }
    std::printf("kind            explore_run\n");
    std::printf("design          %s\n", run->design.c_str());
    std::printf("mode            %d\n", static_cast<int>(run->mode));
    std::printf("allocation      %s\n", run->allocation.c_str());
    std::printf("clock           %s\n", run->clock.c_str());
    std::printf("ok              %s\n", run->ok ? "true" : "false");
    if (!run->error.empty()) {
      std::printf("error           %s\n", run->error.c_str());
    }
    std::printf("states          %zu\n", run->states);
    std::printf("op_initiations  %zu\n", run->op_initiations);
    std::printf("enc_markov      %.6f\n", run->enc_markov);
    std::printf("enc_sim         %.6f\n", run->enc_sim);
    std::printf("best_case       %lld\n",
                static_cast<long long>(run->best_case));
    std::printf("worst_case      %lld\n",
                static_cast<long long>(run->worst_case));
    return 0;
  }
  if (kind.ok() && *kind == ws::ArtifactKind::kBranchProfile) {
    const ws::Result<ws::BranchProfile> profile =
        ws::DecodeProfileArtifact(*artifact);
    if (!profile.ok()) {
      std::fprintf(stderr, "ws_artifacts: %s\n", profile.error().c_str());
      return 1;
    }
    const ws::Fp128 digest = ws::ProfileDigest(*profile);
    std::printf("kind            branch_profile\n");
    std::printf("digest          %s\n", KeyToHex(digest).c_str());
    std::printf("traces          %lld\n",
                static_cast<long long>(profile->traces));
    std::printf("cycles          %lld\n",
                static_cast<long long>(profile->cycles));
    for (const auto& [node, counts] : profile->conds) {
      std::printf("cond %-6u      taken %lld  not_taken %lld  p %.4f\n",
                  node, static_cast<long long>(counts.taken),
                  static_cast<long long>(counts.not_taken),
                  ws::SmoothedProbability(counts));
    }
    for (const auto& [loop, hist] : profile->loops) {
      std::printf("loop %u trips  ", loop);
      for (const auto& [trips, count] : hist) {
        std::printf(" %lld:%lld", static_cast<long long>(trips),
                    static_cast<long long>(count));
      }
      std::printf("\n");
    }
    return 0;
  }
  // Unknown payload shape: report the kind and dump the raw envelope, so
  // the bytes stay scriptable.
  std::fprintf(stderr, "ws_artifacts: kind %s, %zu bytes (raw to stdout)\n",
               PeekKindName(*artifact), artifact->size());
  std::fwrite(artifact->data(), 1, artifact->size(), stdout);
  return 0;
}

int CmdVerify(const std::string& dir) {
  const ws::Result<ws::StoreVerifyReport> report =
      ws::VerifyArtifactDir(dir);
  if (!report.ok()) {
    std::fprintf(stderr, "ws_artifacts: %s\n", report.error().c_str());
    return 1;
  }
  std::printf("segments      %d\n", report->segments);
  std::printf("records       %lld\n",
              static_cast<long long>(report->records));
  std::printf("bytes         %lld\n", static_cast<long long>(report->bytes));
  std::printf("bad_segments  %lld\n",
              static_cast<long long>(report->bad_segments));
  std::printf("bad_records   %lld\n",
              static_cast<long long>(report->bad_records));
  if (!report->detail.empty()) std::fputs(report->detail.c_str(), stderr);
  return report->bad_segments == 0 && report->bad_records == 0 ? 0 : 1;
}

int CmdCompact(const std::string& dir) {
  ws::Result<std::unique_ptr<ws::ArtifactStore>> store = OpenStore(dir);
  if (!store.ok()) {
    std::fprintf(stderr, "ws_artifacts: %s\n", store.error().c_str());
    return 1;
  }
  const std::uint64_t before = (*store)->log_bytes();
  if (const ws::Status s = (*store)->Compact(); !s.ok()) {
    std::fprintf(stderr, "ws_artifacts: %s\n", s.message().c_str());
    return 1;
  }
  std::fprintf(stderr,
               "ws_artifacts: compacted %s: %llu -> %llu log bytes "
               "(%zu entries)\n",
               dir.c_str(), static_cast<unsigned long long>(before),
               static_cast<unsigned long long>((*store)->log_bytes()),
               (*store)->entries());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  ws::HandleStandardFlags(kTool, argc, argv);
  if (argc < 3) ws::UsageError(kTool, "want a command and a store directory");
  const std::string command = argv[1];
  const std::string dir = argv[2];
  if (command == "ls" && argc == 3) return CmdLs(dir);
  if (command == "get" && argc == 4) return CmdGet(dir, argv[3]);
  if (command == "verify" && argc == 3) return CmdVerify(dir);
  if (command == "compact" && argc == 3) return CmdCompact(dir);
  ws::UsageError(kTool, "unrecognized command line");
}
