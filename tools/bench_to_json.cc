// Writes the scheduler perf-trajectory snapshot (BENCH_sched.json).
//
// Usage: bench_to_json [output.json] [--label=NAME] [--reps=N]
//        [--wave-workers=N]
//
// Times every Table-1 suite benchmark under every speculation mode
// (minimum-of-N wall time) and records the full per-phase ScheduleStats,
// so perf regressions in closure detection / BDD manipulation show up as
// diffs of a committed JSON file rather than anecdotes.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "base/cli.h"
#include "base/strings.h"
#include "suite/bench_json.h"

namespace {
const ws::ToolInfo kTool = {
    "bench_to_json",
    "usage: bench_to_json [output.json] [--label=NAME] [--reps=N]\n"};
}  // namespace

int main(int argc, char** argv) {
  ws::HandleStandardFlags(kTool, argc, argv);
  std::string path = "BENCH_sched.json";
  ws::BenchJsonOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (ws::StartsWith(arg, "--label=")) {
      options.label = arg.substr(8);
    } else if (ws::StartsWith(arg, "--reps=")) {
      options.repetitions = std::atoi(arg.c_str() + 7);
    } else if (ws::StartsWith(arg, "--wave-workers=")) {
      options.wave_workers = std::atoi(arg.c_str() + 15);
    } else if (!arg.empty() && arg[0] == '-') {
      ws::UsageError(kTool, "unrecognized argument: " + arg);
    } else {
      path = arg;
    }
  }
  const ws::Status s = ws::WriteBenchJson(options, path);
  if (!s.ok()) {
    std::fprintf(stderr, "bench_to_json: %s\n", s.message().c_str());
    return 1;
  }
  std::printf("wrote %s (label=%s, reps=%d, wave_workers=%d)\n",
              path.c_str(), options.label.c_str(), options.repetitions,
              options.wave_workers);
  return 0;
}
