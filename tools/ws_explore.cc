// ws_explore — design-space exploration driver.
//
// Sweeps benchmark × speculation-mode × selection-policy × allocation ×
// clock grids through the parallel explore engine and emits a JSON report
// (stdout), optionally with a human-readable table on stderr.
//
// Usage:
//   ws_explore [design.beh ...] [--suite] [--bench name,name,...]
//              [--modes ws,single,spec] [--policies crit,prob,lambda,fifo]
//              [--mem-spec on,off] [--lsq-depth N]
//              [--alloc spec]... [--clocks p,p,...]
//              [--workers N] [--wave-workers N] [--stimuli N] [--seed S]
//              [--area] [--no-sim] [--no-timing] [--table]
//
//   design.beh     behavioral sources, compiled per worker
//   --suite        add the five Table 1 suite benchmarks
//   --bench        add suite benchmarks by name (gcd, test1, fig4:0.3, ...)
//   --policies     comma list of operation-selection policies (sched/policy.h):
//                  crit (Eq. 5, default), prob, lambda, fifo
//   --mem-spec     speculative memory disambiguation grid axis
//                  (mem/disambig.h): comma list of on/off; default off.
//                  "--mem-spec on,off" sweeps both and the report carries a
//                  mem_spec column per run
//   --lsq-depth    in-flight speculative-access window per array (>= 1,
//                  default 4); not a grid axis
//   --alloc        one allocation grid point per flag: "default",
//                  "unlimited", "none", or "unit=count,..." overrides
//                  ("inf" = unlimited); default grid is the benchmark's own
//   --clocks       comma list of clock periods in ns; default 1.0
//   --workers      worker threads (0 = sequential); default 4
//   --wave-workers intra-run wave-loop threads inside each scheduling run
//                  (0 = inline, the default). Reports are byte-identical
//                  at any setting — parallelism inside one cell, like
//                  parallelism across cells, never changes the bytes
//   --no-timing    canonical output: omit wall-clock fields (diffable
//                  across worker counts)
//   --server       run the sweep against a ws_served instance instead of
//                  in-process; byte-identical reports under --no-timing
//   --store DIR    durable artifact store: cells already on disk replay
//                  bit-for-bit without recomputation, completed cells are
//                  written through — a killed sweep rerun with the same
//                  flags resumes where it stopped and produces a report
//                  byte-identical to an uninterrupted run
//   --adapt N      offline adaptive re-scheduling (adapt/adapt.h): instead
//                  of one sweep, iterate schedule -> simulate -> profile ->
//                  re-derive probabilities -> re-schedule up to N rounds per
//                  cell and print the convergence table (cycles per trace
//                  per iteration) on stdout
//   --adapt-skew   invert every annotated branch probability before
//                  iteration 0 — start the loop from maximally wrong priors
//                  and watch the profile feedback recover
//
// Example — the full Table 1 sweep on 4 workers with area accounting:
//   ws_explore --suite --modes ws,spec --area --workers 4 --table
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "adapt/adapt.h"
#include "base/cli.h"
#include "explore/explore.h"
#include "explore/report.h"
#include "io/artifact_store.h"
#include "serve/client.h"

namespace {

const ws::ToolInfo kTool = {
    "ws_explore",
    "usage: ws_explore [design.beh ...] [--suite] [--bench names]\n"
    "                  [--modes ws,single,spec]\n"
    "                  [--policies crit,prob,lambda,fifo]\n"
    "                  [--mem-spec on,off] [--lsq-depth N] [--alloc spec]...\n"
    "                  [--clocks p,p,...] [--workers N] [--wave-workers N]\n"
    "                  [--stimuli N]\n"
    "                  [--seed S] [--area] [--no-sim] [--no-timing]\n"
    "                  [--table] [--server ADDR] [--deadline-ms N]\n"
    "                  [--store DIR] [--adapt N] [--adapt-skew]\n"};

[[noreturn]] void Usage(const std::string& message) {
  ws::UsageError(kTool, message);
}

std::vector<std::string> SplitCommas(const std::string& s) {
  std::vector<std::string> out;
  std::istringstream is(s);
  std::string item;
  while (std::getline(is, item, ',')) out.push_back(item);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ws;
  HandleStandardFlags(kTool, argc, argv);

  ExploreSpec spec;
  spec.workers = 4;
  spec.modes.clear();
  bool want_table = false;
  ReportRenderOptions render;
  std::string server;
  std::string store_dir;
  std::int64_t deadline_ms = 0;
  int adapt_iterations = 0;
  bool adapt_skew = false;

  std::vector<std::string> beh_files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) Usage(arg + " wants a value");
      return argv[++i];
    };
    if (arg == "--suite") {
      for (const char* name : {"barcode", "gcd", "test1", "tlc", "findmin"}) {
        spec.designs.push_back(DesignSpec{name, ""});
      }
    } else if (arg == "--bench") {
      for (const std::string& name : SplitCommas(next())) {
        spec.designs.push_back(DesignSpec{name, ""});
      }
    } else if (arg == "--modes") {
      for (const std::string& m : SplitCommas(next())) {
        if (m == "ws") spec.modes.push_back(SpeculationMode::kWavesched);
        else if (m == "single") spec.modes.push_back(SpeculationMode::kSinglePath);
        else if (m == "spec") spec.modes.push_back(SpeculationMode::kWaveschedSpec);
        else Usage("unknown mode: " + m);
      }
    } else if (arg == "--policies") {
      spec.policies.clear();
      for (const std::string& p : SplitCommas(next())) {
        const Result<SelectionPolicy> policy = ParseSelectionPolicy(p);
        if (!policy.ok()) Usage("--policies: " + policy.error());
        spec.policies.push_back(*policy);
      }
    } else if (arg == "--mem-spec") {
      spec.mem_specs.clear();
      for (const std::string& m : SplitCommas(next())) {
        if (m == "on") spec.mem_specs.push_back(true);
        else if (m == "off") spec.mem_specs.push_back(false);
        else Usage("--mem-spec wants a comma list of on/off, got: " + m);
      }
    } else if (arg == "--lsq-depth") {
      spec.base_options.lsq_depth = std::atoi(next().c_str());
    } else if (arg == "--alloc") {
      const std::string a = next();
      spec.allocations.push_back(AllocationSpec{a, a});
    } else if (arg == "--clocks") {
      for (const std::string& p : SplitCommas(next())) {
        ClockSpec c;
        c.label = p + "ns";
        c.clock.period_ns = std::atof(p.c_str());
        spec.clocks.push_back(c);
      }
    } else if (arg == "--workers") {
      spec.workers = std::atoi(next().c_str());
    } else if (arg == "--wave-workers") {
      spec.base_options.wave_workers = std::atoi(next().c_str());
    } else if (arg == "--stimuli") {
      spec.num_stimuli = std::atoi(next().c_str());
    } else if (arg == "--seed") {
      spec.seed = std::strtoull(next().c_str(), nullptr, 10);
    } else if (arg == "--area") {
      spec.measure_area = true;
    } else if (arg == "--no-sim") {
      spec.measure_sim_enc = false;
    } else if (arg == "--no-timing") {
      render.include_timing = false;
    } else if (arg == "--table") {
      want_table = true;
    } else if (arg == "--server") {
      server = next();
    } else if (arg == "--store") {
      store_dir = next();
    } else if (arg == "--deadline-ms") {
      deadline_ms = std::atoll(next().c_str());
    } else if (arg == "--adapt") {
      adapt_iterations = std::atoi(next().c_str());
      if (adapt_iterations < 1) Usage("--adapt wants an iteration count >= 1");
    } else if (arg == "--adapt-skew") {
      adapt_skew = true;
    } else if (!arg.empty() && arg[0] == '-') {
      Usage("unrecognized argument: " + arg);
    } else {
      beh_files.push_back(arg);
    }
  }

  for (const std::string& path : beh_files) {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", path.c_str());
      return 1;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    const std::size_t slash = path.find_last_of('/');
    const std::size_t dot = path.find_last_of('.');
    const std::size_t from = slash == std::string::npos ? 0 : slash + 1;
    DesignSpec d;
    d.name = path.substr(
        from, dot == std::string::npos || dot < from ? std::string::npos
                                                     : dot - from);
    d.source = ss.str();
    spec.designs.push_back(std::move(d));
  }

  if (spec.modes.empty()) {
    spec.modes = {SpeculationMode::kWavesched,
                  SpeculationMode::kWaveschedSpec};
  }
  if (spec.designs.empty()) Usage("no designs given");

  std::unique_ptr<ArtifactStore> store;
  if (!store_dir.empty()) {
    if (!server.empty()) {
      Usage("--store applies to in-process sweeps; the server owns its own "
            "store (ws_served --store)");
    }
    ArtifactStoreOptions store_options;
    store_options.dir = store_dir;
    Result<std::unique_ptr<ArtifactStore>> opened =
        ArtifactStore::Open(std::move(store_options));
    if (!opened.ok()) {
      std::fprintf(stderr, "error: %s\n", opened.error().c_str());
      return 1;
    }
    store = std::move(opened).value();
    spec.store = store.get();
  }

  if (adapt_iterations > 0) {
    if (!server.empty()) {
      Usage("--adapt is an in-process loop; the server adapts on its own "
            "via the PROFILE verb");
    }
    AdaptOptions adapt_options;
    adapt_options.max_iterations = adapt_iterations;
    adapt_options.skew = adapt_skew;
    const AdaptReport adapt_report = RunAdaptExplore(spec, adapt_options);
    std::fputs(RenderAdaptReport(adapt_report).c_str(), stdout);
    for (const AdaptCellResult& cell : adapt_report.cells) {
      if (!cell.ok) return 3;
    }
    return 0;
  }

  Result<ExploreReport> report = Status::MakeError("unreachable");
  if (server.empty()) {
    report = RunExplore(spec);
  } else {
    const Result<ServeAddress> address = ParseServeAddress(server);
    if (!address.ok()) Usage("--server: " + address.error());
    report = RunExploreRemote(spec, *address, deadline_ms);
  }
  if (!report.ok()) {
    std::fprintf(stderr, "error: %s\n", report.error().c_str());
    return 1;
  }
  std::fputs(ExploreReportToJson(*report, render).c_str(), stdout);
  if (want_table) {
    std::fputs(ExploreReportToTable(*report).c_str(), stderr);
  }
  // Partial failures are in the report; reflect them in the exit code so
  // sweeps in CI notice.
  for (const ExploreRun& run : report->runs) {
    if (!run.ok) return 3;
  }
  return 0;
}
