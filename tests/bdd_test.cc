// Unit and property tests for the ROBDD engine.
#include <gtest/gtest.h>

#include "base/rng.h"
#include "bdd/bdd.h"

namespace ws {
namespace {

TEST(BddTest, ConstantsAreDistinctAndFixed) {
  BddManager mgr;
  EXPECT_TRUE(mgr.IsTrue(mgr.True()));
  EXPECT_TRUE(mgr.IsFalse(mgr.False()));
  EXPECT_NE(mgr.True(), mgr.False());
}

TEST(BddTest, VariableAndNegation) {
  BddManager mgr;
  const int v = mgr.NewVar("a");
  EXPECT_EQ(mgr.Not(mgr.Var(v)), mgr.NotVar(v));
  EXPECT_EQ(mgr.Not(mgr.NotVar(v)), mgr.Var(v));
}

TEST(BddTest, BasicIdentities) {
  BddManager mgr;
  const Bdd a = mgr.Var(mgr.NewVar("a"));
  const Bdd b = mgr.Var(mgr.NewVar("b"));
  EXPECT_EQ(mgr.And(a, mgr.True()), a);
  EXPECT_EQ(mgr.And(a, mgr.False()), mgr.False());
  EXPECT_EQ(mgr.Or(a, mgr.False()), a);
  EXPECT_EQ(mgr.Or(a, mgr.True()), mgr.True());
  EXPECT_EQ(mgr.And(a, a), a);
  EXPECT_EQ(mgr.Or(a, a), a);
  EXPECT_EQ(mgr.And(a, mgr.Not(a)), mgr.False());
  EXPECT_EQ(mgr.Or(a, mgr.Not(a)), mgr.True());
  EXPECT_EQ(mgr.And(a, b), mgr.And(b, a));  // canonical commutativity
  EXPECT_EQ(mgr.Xor(a, a), mgr.False());
  EXPECT_EQ(mgr.Implies(a, a), mgr.True());
}

TEST(BddTest, RestrictIsShannonCofactor) {
  BddManager mgr;
  const int va = mgr.NewVar("a");
  const int vb = mgr.NewVar("b");
  const Bdd f = mgr.And(mgr.Var(va), mgr.Var(vb));
  EXPECT_EQ(mgr.Restrict(f, va, true), mgr.Var(vb));
  EXPECT_EQ(mgr.Restrict(f, va, false), mgr.False());
  // Restricting a variable not in the support is a no-op.
  const int vc = mgr.NewVar("c");
  EXPECT_EQ(mgr.Restrict(f, vc, true), f);
}

TEST(BddTest, CoversIsImplication) {
  BddManager mgr;
  const Bdd a = mgr.Var(mgr.NewVar("a"));
  const Bdd b = mgr.Var(mgr.NewVar("b"));
  const Bdd ab = mgr.And(a, b);
  EXPECT_TRUE(mgr.Covers(a, ab));   // ab => a
  EXPECT_FALSE(mgr.Covers(ab, a));  // a  !=> ab
  EXPECT_TRUE(mgr.Covers(mgr.True(), a));
  EXPECT_TRUE(mgr.Covers(a, mgr.False()));
}

TEST(BddTest, SupportListsExactlyTheDependentVariables) {
  BddManager mgr;
  const int va = mgr.NewVar("a");
  const int vb = mgr.NewVar("b");
  const int vc = mgr.NewVar("c");
  (void)vc;
  const Bdd f = mgr.Or(mgr.Var(va), mgr.Var(vb));
  EXPECT_EQ(mgr.Support(f), (std::vector<int>{va, vb}));
  // a | !a collapses: no support.
  EXPECT_TRUE(mgr.Support(mgr.Or(mgr.Var(va), mgr.NotVar(va))).empty());
}

TEST(BddTest, ProbabilityOfIndependentConjunction) {
  BddManager mgr;
  const int va = mgr.NewVar("a");
  const int vb = mgr.NewVar("b");
  const Bdd f = mgr.And(mgr.Var(va), mgr.NotVar(vb));
  EXPECT_NEAR(mgr.Probability(f, {0.8, 0.3}), 0.8 * 0.7, 1e-12);
  const Bdd g = mgr.Or(mgr.Var(va), mgr.Var(vb));
  EXPECT_NEAR(mgr.Probability(g, {0.8, 0.3}), 1 - 0.2 * 0.7, 1e-12);
}

TEST(BddTest, SatCountMatchesEnumeration) {
  BddManager mgr;
  const int va = mgr.NewVar("a");
  const int vb = mgr.NewVar("b");
  const int vc = mgr.NewVar("c");
  // Majority function of three variables: 4 satisfying assignments.
  const Bdd maj = mgr.OrAll({mgr.And(mgr.Var(va), mgr.Var(vb)),
                             mgr.And(mgr.Var(vb), mgr.Var(vc)),
                             mgr.And(mgr.Var(va), mgr.Var(vc))});
  EXPECT_NEAR(mgr.SatCount(maj, 3), 4.0, 1e-9);
}

TEST(BddTest, EvalAgainstTruthTable) {
  BddManager mgr;
  const int va = mgr.NewVar("a");
  const int vb = mgr.NewVar("b");
  const Bdd f = mgr.Xor(mgr.Var(va), mgr.Var(vb));
  for (const bool a : {false, true}) {
    for (const bool b : {false, true}) {
      EXPECT_EQ(mgr.Eval(f, {{va, a}, {vb, b}}), a != b);
    }
  }
}

TEST(BddTest, RenameRelabelsSupport) {
  BddManager mgr;
  const int va = mgr.NewVar("a");
  const int vb = mgr.NewVar("b");
  const int vc = mgr.NewVar("c");
  const Bdd f = mgr.And(mgr.Var(va), mgr.NotVar(vb));
  const Bdd g = mgr.Rename(f, {{va, vb}, {vb, vc}});
  EXPECT_EQ(g, mgr.And(mgr.Var(vb), mgr.NotVar(vc)));
  // Order-reversing rename stays canonical.
  const Bdd h = mgr.Rename(f, {{va, vc}, {vb, va}});
  EXPECT_EQ(h, mgr.And(mgr.Var(vc), mgr.NotVar(va)));
}

TEST(BddTest, ToStringRendersCompactForms) {
  BddManager mgr;
  const int va = mgr.NewVar("x");
  EXPECT_EQ(mgr.ToString(mgr.True()), "1");
  EXPECT_EQ(mgr.ToString(mgr.False()), "0");
  EXPECT_EQ(mgr.ToString(mgr.Var(va)), "x");
  EXPECT_EQ(mgr.ToString(mgr.NotVar(va)), "!x");
}

// Property sweep: random 6-variable expressions obey Boolean algebra and
// agree with direct truth-table evaluation.
class BddPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(BddPropertyTest, RandomExpressionsMatchTruthTables) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  BddManager mgr;
  constexpr int kVars = 6;
  std::vector<int> vars;
  for (int i = 0; i < kVars; ++i) {
    vars.push_back(mgr.NewVar("v" + std::to_string(i)));
  }

  // Random expression tree, evaluated in parallel as a 64-bit truth table
  // (one bit per assignment of the six variables).
  auto var_table = [&](int v) {
    std::uint64_t t = 0;
    for (int row = 0; row < 64; ++row) {
      if ((row >> v) & 1) t |= 1ULL << row;
    }
    return t;
  };
  struct Val {
    Bdd f;
    std::uint64_t table;
  };
  auto rec = [&](auto&& self, int depth) -> Val {
    if (depth >= 4 || rng.NextBool(0.3)) {
      const int v = static_cast<int>(rng.NextBelow(kVars));
      if (rng.NextBool(0.5)) {
        return {mgr.Var(vars[static_cast<std::size_t>(v)]), var_table(v)};
      }
      return {mgr.NotVar(vars[static_cast<std::size_t>(v)]),
              ~var_table(v)};
    }
    const Val a = self(self, depth + 1);
    const Val b = self(self, depth + 1);
    switch (rng.NextBelow(3)) {
      case 0: return {mgr.And(a.f, b.f), a.table & b.table};
      case 1: return {mgr.Or(a.f, b.f), a.table | b.table};
      default: return {mgr.Xor(a.f, b.f), a.table ^ b.table};
    }
  };

  for (int trial = 0; trial < 50; ++trial) {
    const Val v = rec(rec, 0);
    // Canonicity: equal truth table <=> equal handle.
    const Val w = rec(rec, 0);
    EXPECT_EQ(v.table == w.table, v.f == w.f);
    // Spot-check Eval on random assignments.
    for (int probe = 0; probe < 8; ++probe) {
      const int row = static_cast<int>(rng.NextBelow(64));
      std::unordered_map<int, bool> assignment;
      for (int i = 0; i < kVars; ++i) {
        assignment[vars[static_cast<std::size_t>(i)]] = (row >> i) & 1;
      }
      EXPECT_EQ(mgr.Eval(v.f, assignment), ((v.table >> row) & 1) != 0);
    }
    // Probability under uniform probabilities = popcount / 64.
    std::vector<double> uniform(kVars, 0.5);
    EXPECT_NEAR(mgr.Probability(v.f, uniform),
                static_cast<double>(__builtin_popcountll(v.table)) / 64.0,
                1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BddPropertyTest,
                         ::testing::Range(1, 9));

// Differential tests for the traversal operations that share the manager's
// epoch-stamped memo (Restrict / RestrictAll / Rename / RenameDense):
// random expressions are checked against direct truth-table semantics, and
// the operations are deliberately interleaved so a stale memo entry leaking
// across epochs (or across the two operations) would surface as a wrong
// canonical handle.
class BddDifferentialTest : public ::testing::TestWithParam<int> {
 protected:
  static constexpr int kVars = 6;

  void SetUp() override {
    for (int i = 0; i < kVars; ++i) {
      vars_.push_back(mgr_.NewVar("v" + std::to_string(i)));
    }
  }

  // Truth table of variable v over all 2^kVars assignments (bit `row` is the
  // value under the assignment where variable i takes bit i of `row`).
  static std::uint64_t VarTable(int v) {
    std::uint64_t t = 0;
    for (int row = 0; row < 64; ++row) {
      if ((row >> v) & 1) t |= 1ULL << row;
    }
    return t;
  }

  struct Val {
    Bdd f;
    std::uint64_t table;
  };

  Val RandomExpr(Rng& rng, int depth = 0) {
    if (depth >= 5 || rng.NextBool(0.25)) {
      const int v = static_cast<int>(rng.NextBelow(kVars));
      if (rng.NextBool(0.5)) {
        return {mgr_.Var(vars_[static_cast<std::size_t>(v)]), VarTable(v)};
      }
      return {mgr_.NotVar(vars_[static_cast<std::size_t>(v)]), ~VarTable(v)};
    }
    const Val a = RandomExpr(rng, depth + 1);
    const Val b = RandomExpr(rng, depth + 1);
    switch (rng.NextBelow(3)) {
      case 0: return {mgr_.And(a.f, b.f), a.table & b.table};
      case 1: return {mgr_.Or(a.f, b.f), a.table | b.table};
      default: return {mgr_.Xor(a.f, b.f), a.table ^ b.table};
    }
  }

  // Builds the canonical BDD of a truth table directly from minterms,
  // bypassing the operation under test.
  Bdd FromTable(std::uint64_t table) {
    std::vector<Bdd> minterms;
    for (int row = 0; row < 64; ++row) {
      if (((table >> row) & 1) == 0) continue;
      std::vector<Bdd> lits;
      for (int i = 0; i < kVars; ++i) {
        lits.push_back((row >> i) & 1
                           ? mgr_.Var(vars_[static_cast<std::size_t>(i)])
                           : mgr_.NotVar(vars_[static_cast<std::size_t>(i)]));
      }
      minterms.push_back(mgr_.AndAll(lits));
    }
    return mgr_.OrAll(minterms);
  }

  BddManager mgr_;
  std::vector<int> vars_;
};

TEST_P(BddDifferentialTest, RestrictAndRestrictAllMatchTruthTables) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 977u + 13u);
  for (int trial = 0; trial < 40; ++trial) {
    const Val v = RandomExpr(rng);

    // Single-variable cofactor: mask the table down to the rows consistent
    // with the restriction and duplicate them over the freed variable.
    const int rv = static_cast<int>(rng.NextBelow(kVars));
    const bool rval = rng.NextBool(0.5);
    std::uint64_t cof = 0;
    for (int row = 0; row < 64; ++row) {
      const int src = rval ? (row | (1 << rv)) : (row & ~(1 << rv));
      if ((v.table >> src) & 1) cof |= 1ULL << row;
    }
    EXPECT_EQ(mgr_.Restrict(v.f, vars_[static_cast<std::size_t>(rv)], rval),
              FromTable(cof));

    // Multi-variable restriction == iterated single-variable restriction,
    // and matches the truth table.
    std::vector<std::pair<int, bool>> assignment;
    std::uint64_t multi = v.table;
    Bdd iterated = v.f;
    for (int i = 0; i < kVars; ++i) {
      if (!rng.NextBool(0.4)) continue;
      const bool value = rng.NextBool(0.5);
      assignment.push_back({vars_[static_cast<std::size_t>(i)], value});
      std::uint64_t next = 0;
      for (int row = 0; row < 64; ++row) {
        const int src = value ? (row | (1 << i)) : (row & ~(1 << i));
        if ((multi >> src) & 1) next |= 1ULL << row;
      }
      multi = next;
      iterated =
          mgr_.Restrict(iterated, vars_[static_cast<std::size_t>(i)], value);
    }
    const Bdd all = mgr_.RestrictAll(v.f, assignment);
    EXPECT_EQ(all, iterated);
    EXPECT_EQ(all, FromTable(multi));
  }
}

TEST_P(BddDifferentialTest, RenameRoundTripsAndMatchesDense) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919u + 5u);
  for (int trial = 0; trial < 40; ++trial) {
    const Val v = RandomExpr(rng);

    // Random permutation of the variables.
    std::vector<int> perm(kVars);
    for (int i = 0; i < kVars; ++i) perm[static_cast<std::size_t>(i)] = i;
    for (int i = kVars - 1; i > 0; --i) {
      std::swap(perm[static_cast<std::size_t>(i)],
                perm[static_cast<std::size_t>(rng.NextBelow(
                    static_cast<std::uint64_t>(i + 1)))]);
    }

    std::unordered_map<int, int> fwd, inv;
    std::vector<int> dense(static_cast<std::size_t>(mgr_.num_vars()), -1);
    for (int i = 0; i < kVars; ++i) {
      const int from = vars_[static_cast<std::size_t>(i)];
      const int to = vars_[static_cast<std::size_t>(perm[static_cast<std::size_t>(i)])];
      fwd[from] = to;
      inv[to] = from;
      dense[static_cast<std::size_t>(from)] = to;
    }

    const Bdd renamed = mgr_.Rename(v.f, fwd);
    // Dense and map-based rename agree (canonical handles).
    EXPECT_EQ(renamed, mgr_.RenameDense(v.f, dense, /*fresh_map=*/true));
    // Round trip through the inverse permutation restores the handle.
    EXPECT_EQ(mgr_.Rename(renamed, inv), v.f);
    // The renamed function's truth table is the source table with rows
    // re-indexed through the permutation.
    std::uint64_t expect = 0;
    for (int row = 0; row < 64; ++row) {
      int src = 0;
      for (int i = 0; i < kVars; ++i) {
        if ((row >> perm[static_cast<std::size_t>(i)]) & 1) src |= 1 << i;
      }
      if ((v.table >> src) & 1) expect |= 1ULL << row;
    }
    EXPECT_EQ(renamed, FromTable(expect));

    // Shared-epoch mode (the scheduler renames every live guard with one
    // map, reusing the memo across calls): must agree with fresh-epoch
    // renames of the same functions.
    const Val w = RandomExpr(rng);
    const Bdd first = mgr_.RenameDense(v.f, dense, /*fresh_map=*/true);
    const Bdd second = mgr_.RenameDense(w.f, dense, /*fresh_map=*/false);
    EXPECT_EQ(first, renamed);
    EXPECT_EQ(second, mgr_.Rename(w.f, fwd));

    // Interleave a Restrict between RenameDense calls: the two operations
    // share the memo, so epoch handling must keep them apart.
    (void)mgr_.Restrict(v.f, vars_[0], trial % 2 == 0);
    EXPECT_EQ(mgr_.RenameDense(v.f, dense, /*fresh_map=*/true), renamed);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BddDifferentialTest,
                         ::testing::Range(1, 7));

}  // namespace
}  // namespace ws
