// Unit tests for the guard-algebra layer (sched/guards.h) in isolation —
// the cofactor identities the rest of the engine leans on. The fork engine
// partitions states by restricting guards on condition variables, and the
// closure detector renames them; both are sound only if guard construction
// obeys the Shannon expansion and the loop exit guards partition the
// condition space.
#include <gtest/gtest.h>

#include <vector>

#include "bdd/bdd.h"
#include "cdfg/builder.h"
#include "sched/engine_state.h"
#include "sched/guards.h"

namespace ws {
namespace {

// One convergence loop: while (k > i) i++. The continue condition `c` gets
// a 0.7 profiled probability so probability-sensitive identities are not
// degenerate at 0.5.
struct LoopFixture {
  // Declared before `graph`: Build fills them while graph initializes.
  NodeId cond;
  NodeId body;    // ++ node: a loop-body member
  Cdfg graph;
  LoopId loop;

  LoopFixture() : graph(Build(&cond, &body)) {
    loop = graph.node(cond).loop;
    graph.set_cond_probability(cond, 0.7);
  }

  static Cdfg Build(NodeId* cond, NodeId* body) {
    CdfgBuilder b("guards_probe");
    NodeId k = b.Input("k");
    NodeId zero = b.Konst(0);
    b.BeginLoop("main");
    NodeId i = b.LoopPhi("i", zero);
    NodeId c = b.Op(OpKind::kGt, ">1", {k, i});
    b.SetLoopCondition(c);
    NodeId i1 = b.Op(OpKind::kInc, "++1", {i});
    b.SetLoopBack(i, i1);
    b.EndLoop();
    b.Output("out", i);
    *cond = c;
    *body = i1;
    return b.Finish();
  }

  PathState FreshState() const {
    PathState ps;
    ps.loops.resize(graph.num_loops());
    return ps;
  }
};

TEST(GuardEngineTest, CondVarIsMintedOncePerInstanceWithProfiledProbability) {
  LoopFixture f;
  BddManager mgr;
  GuardEngine guards(f.graph, mgr);

  const int v0 = guards.CondVar(f.cond, 0);
  const int v1 = guards.CondVar(f.cond, 1);
  EXPECT_NE(v0, v1);
  EXPECT_EQ(guards.CondVar(f.cond, 0), v0);  // idempotent
  ASSERT_GT(guards.var_probs().size(), static_cast<std::size_t>(v1));
  EXPECT_DOUBLE_EQ(guards.var_probs()[static_cast<std::size_t>(v0)], 0.7);
  EXPECT_DOUBLE_EQ(guards.var_probs()[static_cast<std::size_t>(v1)], 0.7);
  EXPECT_TRUE(guards.likely_assignment().at(v0));  // p >= 0.5 => likely true
}

TEST(GuardEngineTest, ResolvedCondLitsAreConstants) {
  LoopFixture f;
  BddManager mgr;
  GuardEngine guards(f.graph, mgr);
  PathState ps = f.FreshState();

  ps.resolved.Mutable(MakeInstKey(f.cond, 0)) = true;
  EXPECT_TRUE(mgr.IsTrue(guards.CondLit(ps, f.cond, 0, true)));
  EXPECT_TRUE(mgr.IsFalse(guards.CondLit(ps, f.cond, 0, false)));

  // Unresolved instances stay symbolic literals.
  const Bdd lit = guards.CondLit(ps, f.cond, 1, true);
  EXPECT_FALSE(mgr.IsTrue(lit));
  EXPECT_FALSE(mgr.IsFalse(lit));
  EXPECT_EQ(lit, mgr.Var(guards.CondVar(f.cond, 1)));
}

TEST(GuardEngineTest, CtrlGuardObeysTheShannonExpansion) {
  LoopFixture f;
  BddManager mgr;
  GuardEngine guards(f.graph, mgr);
  PathState ps = f.FreshState();

  // Body iteration 2 requires continue-conditions 0..2.
  const Bdd guard = guards.CtrlGuard(ps, f.body, 2);
  const std::vector<int> support = mgr.Support(guard);
  EXPECT_EQ(support.size(), 3u);
  for (const int var : support) {
    // Shannon: g == ite(v, g|v=1, g|v=0), for every support variable.
    const Bdd hi = mgr.Restrict(guard, var, true);
    const Bdd lo = mgr.Restrict(guard, var, false);
    EXPECT_EQ(guard, mgr.Ite(mgr.Var(var), hi, lo));
    // A conjunction dies under any negative cofactor of its support...
    EXPECT_TRUE(mgr.IsFalse(lo));
    // ...and the positive cofactor drops exactly that variable.
    EXPECT_TRUE(mgr.Covers(hi, guard));
  }
  // Restricting every condition true leaves the constant 1.
  Bdd rest = guard;
  for (const int var : support) rest = mgr.Restrict(rest, var, true);
  EXPECT_TRUE(mgr.IsTrue(rest));
}

TEST(GuardEngineTest, LoopHeaderNodesNeedOneFewerCondition) {
  LoopFixture f;
  BddManager mgr;
  GuardEngine guards(f.graph, mgr);
  PathState ps = f.FreshState();

  // The condition node itself computes iteration 2's continue decision; its
  // guard is conditions 0 and 1 only.
  const Bdd header = guards.CtrlGuard(ps, f.cond, 2);
  const Bdd expect = mgr.And(guards.CondLit(ps, f.cond, 0, true),
                             guards.CondLit(ps, f.cond, 1, true));
  EXPECT_EQ(header, expect);

  // Resolving condition 0 (next_unresolved = 1) cofactors it out of every
  // guard built afterwards: CtrlGuard(hdr, 2) == old guard | c0=1.
  ps.loops[f.loop.value()].next_unresolved = 1;
  const Bdd after = guards.CtrlGuard(ps, f.cond, 2);
  EXPECT_EQ(after,
            mgr.Restrict(header, guards.CondVar(f.cond, 0), true));
}

TEST(GuardEngineTest, ExitGuardsPartitionTheConditionSpace) {
  LoopFixture f;
  BddManager mgr;
  GuardEngine guards(f.graph, mgr);
  PathState ps = f.FreshState();

  constexpr int kIters = 4;
  std::vector<Bdd> exits;
  for (int i = 0; i < kIters; ++i) {
    exits.push_back(guards.ExitGuard(ps, f.loop, i));
  }
  // Pairwise disjoint: a loop exits at exactly one iteration.
  for (int i = 0; i < kIters; ++i) {
    for (int j = i + 1; j < kIters; ++j) {
      EXPECT_TRUE(mgr.IsFalse(mgr.And(exits[static_cast<std::size_t>(i)],
                                      exits[static_cast<std::size_t>(j)])))
          << "exit guards " << i << " and " << j << " overlap";
    }
  }
  // Exhaustive up to the horizon: exiting within kIters iterations is the
  // complement of all kIters conditions holding.
  Bdd any_exit = mgr.OrAll(exits);
  Bdd all_continue = mgr.True();
  for (int i = 0; i < kIters; ++i) {
    all_continue = mgr.And(all_continue, guards.CondLit(ps, f.cond, i, true));
  }
  EXPECT_EQ(any_exit, mgr.Not(all_continue));
}

TEST(GuardEngineTest, ExitGuardRespectsResolutionAndExitedLoops) {
  LoopFixture f;
  BddManager mgr;
  GuardEngine guards(f.graph, mgr);
  PathState ps = f.FreshState();

  // Conditions 0 and 1 resolved true: exiting before iteration 2 is
  // impossible on this path.
  ps.loops[f.loop.value()].next_unresolved = 2;
  EXPECT_TRUE(mgr.IsFalse(guards.ExitGuard(ps, f.loop, 0)));
  EXPECT_TRUE(mgr.IsFalse(guards.ExitGuard(ps, f.loop, 1)));
  EXPECT_FALSE(mgr.IsFalse(guards.ExitGuard(ps, f.loop, 2)));

  // Once the path has committed to an exit, the guard collapses to a
  // constant indicator.
  ps.loops[f.loop.value()].exited = true;
  ps.loops[f.loop.value()].exit_iter = 3;
  EXPECT_TRUE(mgr.IsTrue(guards.ExitGuard(ps, f.loop, 3)));
  EXPECT_TRUE(mgr.IsFalse(guards.ExitGuard(ps, f.loop, 2)));
}

TEST(GuardEngineTest, InstanceCoverageNeedsASingleCoveringBinding) {
  LoopFixture f;
  BddManager mgr;
  GuardEngine guards(f.graph, mgr);
  PathState ps = f.FreshState();

  const Bdd c0 = mgr.Var(guards.CondVar(f.cond, 0));
  const Bdd c1 = mgr.Var(guards.CondVar(f.cond, 1));
  const InstKey key = MakeInstKey(f.body, 0);

  // Two partial bindings whose union covers c0 — but no single one does, so
  // the instance is NOT covered (Lemma 1: a consumer would need a mux).
  Binding lo;
  lo.guard = mgr.And(c0, c1);
  lo.completed = true;
  Binding hi;
  hi.guard = mgr.And(c0, mgr.Not(c1));
  hi.completed = true;
  ps.bindings.Mutable(key) = {lo, hi};
  EXPECT_FALSE(guards.InstanceCovered(ps, key, c0, /*require_completed=*/true));

  // One binding whose validity guard covers the control guard qualifies.
  Binding full;
  full.guard = c0;
  full.completed = false;
  ps.bindings.Mutable(key).push_back(full);
  EXPECT_TRUE(guards.InstanceCovered(ps, key, c0, /*require_completed=*/false));
  // ...but not when completion is required and it is still in flight.
  EXPECT_FALSE(guards.InstanceCovered(ps, key, c0, /*require_completed=*/true));

  EXPECT_EQ(guards.BindingGuard(ps, key, 2), c0);
}

}  // namespace
}  // namespace ws
