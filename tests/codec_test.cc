// The io codecs: byte-level primitives (base/codec.h), artifact envelopes,
// and exact round trips of Stg / ScheduleStats / ScheduleReport over real
// benchmark-suite schedules — decode(encode(x)) is structurally equal and
// encode(decode(bytes)) is byte-identical, the property the durable store's
// replay guarantees rest on.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "adapt/profile.h"
#include "base/codec.h"
#include "io/codec.h"
#include "serve/protocol.h"
#include "suite/benchmarks.h"

namespace ws {
namespace {

// --- base/codec.h primitives ----------------------------------------------

TEST(ByteCodecTest, WriterReaderRoundTrip) {
  ByteWriter w;
  w.U8(0xab);
  w.U32(0xdeadbeef);
  w.U64(0x0123456789abcdefull);
  w.I64(-42);
  w.F64(3.141592653589793);
  w.F64(-0.0);
  w.Str("hello");
  w.Str("");
  const std::string bytes = w.Take();

  ByteReader r(bytes);
  EXPECT_EQ(r.U8(), 0xab);
  EXPECT_EQ(r.U32(), 0xdeadbeefu);
  EXPECT_EQ(r.U64(), 0x0123456789abcdefull);
  EXPECT_EQ(r.I64(), -42);
  EXPECT_EQ(r.F64(), 3.141592653589793);
  const double neg_zero = r.F64();
  EXPECT_EQ(neg_zero, 0.0);
  EXPECT_TRUE(std::signbit(neg_zero));  // bit pattern, not value, travels
  EXPECT_EQ(r.Str(), "hello");
  EXPECT_EQ(r.Str(), "");
  EXPECT_TRUE(r.AtEnd());
}

TEST(ByteCodecTest, ReaderIsFailSoftOnOverrun) {
  ByteReader r(std::string_view("\x01\x02", 2));
  (void)r.U32();           // overruns: latches the error
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.U64(), 0u);  // stays failed; further reads return zero
  EXPECT_EQ(r.Str(), "");
  EXPECT_FALSE(r.AtEnd());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(ByteCodecTest, U32LittleEndianLayout) {
  unsigned char buf[4];
  PutU32LE(buf, 0x04030201u);
  EXPECT_EQ(buf[0], 0x01);
  EXPECT_EQ(buf[1], 0x02);
  EXPECT_EQ(buf[2], 0x03);
  EXPECT_EQ(buf[3], 0x04);
  EXPECT_EQ(GetU32LE(buf), 0x04030201u);
}

TEST(ByteCodecTest, Crc32MatchesKnownVectors) {
  // The IEEE CRC-32 check value.
  EXPECT_EQ(Crc32(std::string_view("123456789")), 0xcbf43926u);
  EXPECT_EQ(Crc32(std::string_view("")), 0u);
  // Incremental == one-shot.
  const std::string_view data("the quick brown fox");
  const std::uint32_t whole = Crc32(data);
  std::uint32_t part = Crc32(data.substr(0, 7));
  part = Crc32(data.data() + 7, data.size() - 7, part);
  EXPECT_EQ(part, whole);
}

// --- envelope --------------------------------------------------------------

TEST(ArtifactEnvelopeTest, RoundTripAndKindChecks) {
  const std::string artifact =
      EncodeArtifact(ArtifactKind::kExploreRun, "payload-bytes");
  EXPECT_EQ(PeekArtifactKind(artifact).value(), ArtifactKind::kExploreRun);
  EXPECT_EQ(DecodeArtifact(ArtifactKind::kExploreRun, artifact).value(),
            "payload-bytes");
  // Wrong expected kind is a typed mismatch, not a crash.
  const Result<std::string> wrong =
      DecodeArtifact(ArtifactKind::kStg, artifact);
  ASSERT_FALSE(wrong.ok());
  EXPECT_NE(wrong.error().find("kind mismatch"), std::string::npos);
}

TEST(ArtifactEnvelopeTest, RejectsNewerVersionReadsNothingElse) {
  std::string artifact = EncodeArtifact(ArtifactKind::kStg, "x");
  artifact[4] = static_cast<char>(kArtifactVersion + 1);  // version byte
  const Result<std::string> decoded =
      DecodeArtifact(ArtifactKind::kStg, artifact);
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.error().find("newer"), std::string::npos);
  EXPECT_FALSE(PeekArtifactKind(artifact).ok());
}

TEST(ArtifactEnvelopeTest, DetectsCorruptionAndTruncation) {
  const std::string artifact =
      EncodeArtifact(ArtifactKind::kScheduleStats, "some payload");
  {
    std::string corrupt = artifact;
    corrupt[12] ^= 0x40;  // flip a meta bit (profile digest)
    EXPECT_FALSE(DecodeArtifact(ArtifactKind::kScheduleStats, corrupt).ok());
  }
  {
    std::string corrupt = artifact;
    corrupt[31] ^= 0x40;  // flip a payload bit (payload starts at 30)
    EXPECT_FALSE(DecodeArtifact(ArtifactKind::kScheduleStats, corrupt).ok());
  }
  {
    std::string crc_flip = artifact;
    crc_flip.back() ^= 0x01;  // flip a CRC bit
    EXPECT_FALSE(DecodeArtifact(ArtifactKind::kScheduleStats, crc_flip).ok());
  }
  for (const std::size_t cut : {std::size_t{3}, std::size_t{9},
                                artifact.size() - 1}) {
    EXPECT_FALSE(DecodeArtifact(ArtifactKind::kScheduleStats,
                                std::string_view(artifact).substr(0, cut))
                     .ok())
        << "cut at " << cut;
  }
  {
    std::string oversized = artifact + "trailing";
    EXPECT_FALSE(
        DecodeArtifact(ArtifactKind::kScheduleStats, oversized).ok());
  }
  EXPECT_FALSE(DecodeArtifact(ArtifactKind::kStg, "").ok());
  EXPECT_FALSE(DecodeArtifact(ArtifactKind::kStg, "WSARnope").ok());
}

TEST(ArtifactEnvelopeTest, MetaRoundTripsAndPeeks) {
  ArtifactMeta meta;
  meta.generation = 7;
  meta.profile_digest = Fp128{0x1122334455667788ull, 0x99aabbccddeeff00ull};
  const std::string artifact =
      EncodeArtifactWithMeta(ArtifactKind::kExploreRun, "run-bytes", meta);

  const Result<ArtifactMeta> peeked = PeekArtifactMeta(artifact);
  ASSERT_TRUE(peeked.ok()) << peeked.error();
  EXPECT_EQ(*peeked, meta);

  const Result<DecodedArtifact> decoded =
      DecodeArtifactWithVersion(ArtifactKind::kExploreRun, artifact);
  ASSERT_TRUE(decoded.ok()) << decoded.error();
  EXPECT_EQ(decoded->version, kArtifactVersion);
  EXPECT_EQ(decoded->meta, meta);
  EXPECT_EQ(decoded->payload, "run-bytes");

  // Re-encoding the decoded parts is byte-identical — the store's replay
  // guarantee extends to the meta fields.
  EXPECT_EQ(EncodeArtifactWithMeta(ArtifactKind::kExploreRun,
                                   decoded->payload, decoded->meta),
            artifact);

  // The meta-free wrapper is exactly the zero meta.
  const Result<ArtifactMeta> plain =
      PeekArtifactMeta(EncodeArtifact(ArtifactKind::kExploreRun, "x"));
  ASSERT_TRUE(plain.ok()) << plain.error();
  EXPECT_EQ(*plain, ArtifactMeta{});
}

TEST(ArtifactEnvelopeTest, ReadsPreMetaEnvelopesWithZeroMeta) {
  // A hand-built v3 envelope: no meta fields between the kind byte and the
  // payload length, CRC over the payload alone — what any store written
  // before the adaptive re-scheduling release holds on disk.
  ByteWriter env;
  env.U32(kArtifactMagic);
  env.U8(3);  // last pre-meta version
  env.U8(static_cast<std::uint8_t>(ArtifactKind::kStg));
  env.Str("old payload");
  env.U32(Crc32(std::string_view("old payload")));
  const std::string artifact = env.Take();

  const Result<DecodedArtifact> decoded =
      DecodeArtifactWithVersion(ArtifactKind::kStg, artifact);
  ASSERT_TRUE(decoded.ok()) << decoded.error();
  EXPECT_EQ(decoded->version, 3);
  EXPECT_EQ(decoded->meta, ArtifactMeta{});  // read-older: zero meta
  EXPECT_EQ(decoded->payload, "old payload");
  const Result<ArtifactMeta> peeked = PeekArtifactMeta(artifact);
  ASSERT_TRUE(peeked.ok()) << peeked.error();
  EXPECT_EQ(*peeked, ArtifactMeta{});
}

// --- whole-artifact round trips over the benchmark suite -------------------

TEST(ScheduleStatsCodecTest, RoundTripsEveryField) {
  ScheduleStats stats;
  stats.states_created = 17;
  stats.closure_hits = 5;
  stats.speculative_ops = 9;
  stats.squashed_ops = 2;
  stats.total_ops = 61;
  stats.candidates_generated = 12345;
  stats.bdd_ops = 0xdeadbeefcafeull;
  stats.bdd_nodes = 777;
  stats.signature_collisions = 1;
  stats.phase.successor_ns = 1111;
  stats.phase.cofactor_ns = 2222;
  stats.phase.closure_ns = 3333;
  stats.phase.gc_ns = 4444;
  stats.phase.select_ns = 555;
  stats.phase.total_ns = 11110;

  const std::string bytes = EncodeScheduleStats(stats);
  const Result<ScheduleStats> round = DecodeScheduleStats(bytes);
  ASSERT_TRUE(round.ok()) << round.error();
  // Structural equality via re-encoding: the codec covers every field, so
  // byte equality of re-encoded stats is field equality.
  EXPECT_EQ(EncodeScheduleStats(*round), bytes);
  EXPECT_EQ(round->bdd_ops, stats.bdd_ops);
  EXPECT_EQ(round->phase.select_ns, stats.phase.select_ns);
  EXPECT_EQ(round->phase.total_ns, stats.phase.total_ns);
}

TEST(ScheduleStatsCodecTest, ReadsVersion1ArtifactsWithoutSelectNs) {
  // A hand-built v1 payload: the current layout minus phase.select_ns,
  // wrapped in an envelope whose version byte says 1 — what a store written
  // before the selection-policy refactor holds on disk.
  ByteWriter w;
  w.U32(17);  // states_created
  w.U32(5);   // closure_hits
  w.U32(9);   // speculative_ops
  w.U32(2);   // squashed_ops
  w.U32(61);  // total_ops
  w.I64(12345);
  w.U64(0xdeadbeefcafeull);
  w.U64(777);
  w.I64(1);
  w.I64(1111);   // successor_ns
  w.I64(2222);   // cofactor_ns
  w.I64(3333);   // closure_ns
  w.I64(4444);   // gc_ns
  w.I64(11110);  // total_ns (v1 has no select_ns before it)
  // v1 envelope layout: no meta fields, CRC over the payload alone.
  const std::string payload = w.Take();
  ByteWriter env;
  env.U32(kArtifactMagic);
  env.U8(1);  // version
  env.U8(static_cast<std::uint8_t>(ArtifactKind::kScheduleStats));
  env.Str(payload);
  env.U32(Crc32(payload));
  const std::string artifact = env.Take();

  const Result<ScheduleStats> stats = DecodeScheduleStats(artifact);
  ASSERT_TRUE(stats.ok()) << stats.error();
  EXPECT_EQ(stats->states_created, 17);
  EXPECT_EQ(stats->phase.gc_ns, 4444);
  EXPECT_EQ(stats->phase.select_ns, 0);  // absent in v1 — defaults to 0
  EXPECT_EQ(stats->phase.total_ns, 11110);

  const Result<DecodedArtifact> decoded =
      DecodeArtifactWithVersion(ArtifactKind::kScheduleStats, artifact);
  ASSERT_TRUE(decoded.ok()) << decoded.error();
  EXPECT_EQ(decoded->version, 1);
}

TEST(StgCodecTest, SuiteSchedulesRoundTripExactly) {
  for (const char* name : {"test1", "gcd", "tlc"}) {
    const Result<Benchmark> bench = MakeBenchmarkByName(name, 5, 1998);
    ASSERT_TRUE(bench.ok()) << bench.error();
    for (const SpeculationMode mode :
         {SpeculationMode::kWavesched, SpeculationMode::kWaveschedSpec}) {
      const Result<ScheduleReport> report = ScheduleBenchmark(*bench, mode);
      ASSERT_TRUE(report.ok()) << name << ": " << report.error();

      const std::string bytes = EncodeStg(report->stg);
      const Result<Stg> decoded = DecodeStg(bytes);
      ASSERT_TRUE(decoded.ok()) << name << ": " << decoded.error();
      // Exact structural round trip...
      EXPECT_TRUE(*decoded == report->stg) << name;
      decoded->Validate();
      // ...and a byte-identical re-encoding (the store's replay guarantee).
      EXPECT_EQ(EncodeStg(*decoded), bytes) << name;
    }
  }
}

TEST(ScheduleReportCodecTest, SuiteReportsRoundTripExactly) {
  const Result<Benchmark> bench = MakeBenchmarkByName("gcd", 5, 1998);
  ASSERT_TRUE(bench.ok()) << bench.error();
  const Result<ScheduleReport> report =
      ScheduleBenchmark(*bench, SpeculationMode::kWaveschedSpec);
  ASSERT_TRUE(report.ok()) << report.error();

  const std::string bytes = EncodeScheduleReport(*report);
  const Result<ScheduleReport> round = DecodeScheduleReport(bytes);
  ASSERT_TRUE(round.ok()) << round.error();
  EXPECT_TRUE(round->stg == report->stg);
  EXPECT_EQ(EncodeScheduleReport(*round), bytes);
  EXPECT_EQ(round->stats.states_created, report->stats.states_created);
  EXPECT_EQ(round->stats.total_ops, report->stats.total_ops);
}

TEST(StgCodecTest, EmptyAndCorruptStgsAreHandled) {
  const Stg empty("nothing-scheduled");
  const std::string bytes = EncodeStg(empty);
  const Result<Stg> decoded = DecodeStg(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.error();
  EXPECT_TRUE(*decoded == empty);

  // A bit flip anywhere in the artifact must yield a typed error (the CRC
  // catches payload damage; header checks catch the rest) — never a crash.
  const Result<Benchmark> bench = MakeBenchmarkByName("test1", 5, 1998);
  ASSERT_TRUE(bench.ok()) << bench.error();
  const Result<ScheduleReport> report =
      ScheduleBenchmark(*bench, SpeculationMode::kWavesched);
  ASSERT_TRUE(report.ok()) << report.error();
  const std::string good = EncodeStg(report->stg);
  for (std::size_t i = 0; i < good.size(); i += 7) {
    std::string bad = good;
    bad[i] ^= 0x10;
    const Result<Stg> r = DecodeStg(bad);
    if (r.ok()) {
      // Only a flip that leaves bytes identical could decode; none can.
      ADD_FAILURE() << "bit flip at offset " << i << " went undetected";
    }
  }
}

// --- branch-profile payloads (adapt/profile.h) -----------------------------

BranchProfile SampleProfile() {
  BranchProfile p;
  p.traces = 50;
  p.cycles = 1234;
  p.conds[3] = CondCounts{40, 10};
  p.conds[9] = CondCounts{0, 50};
  p.loops[3][7] = 48;
  p.loops[3][9] = 2;
  return p;
}

TEST(ProfileCodecTest, PayloadAndArtifactRoundTripExactly) {
  const BranchProfile profile = SampleProfile();
  const std::string payload = EncodeProfilePayload(profile);
  const Result<BranchProfile> round = DecodeProfilePayload(payload);
  ASSERT_TRUE(round.ok()) << round.error();
  EXPECT_EQ(*round, profile);
  // Canonical bytes: encode(decode(bytes)) == bytes.
  EXPECT_EQ(EncodeProfilePayload(*round), payload);

  const std::string artifact = EncodeProfileArtifact(profile);
  EXPECT_EQ(PeekArtifactKind(artifact).value(), ArtifactKind::kBranchProfile);
  // The artifact's meta carries the profile's own digest.
  const Result<ArtifactMeta> meta = PeekArtifactMeta(artifact);
  ASSERT_TRUE(meta.ok()) << meta.error();
  EXPECT_EQ(meta->profile_digest, ProfileDigest(profile));
  const Result<BranchProfile> stored = DecodeProfileArtifact(artifact);
  ASSERT_TRUE(stored.ok()) << stored.error();
  EXPECT_EQ(*stored, profile);
}

TEST(ProfileCodecTest, MalformedPayloadsAreTypedErrors) {
  EXPECT_FALSE(DecodeProfilePayload("").ok());
  EXPECT_FALSE(DecodeProfilePayload("garbage").ok());
  const std::string payload = EncodeProfilePayload(SampleProfile());
  EXPECT_FALSE(DecodeProfilePayload(payload.substr(0, 9)).ok());
  EXPECT_FALSE(DecodeProfilePayload(payload + "x").ok());
}

TEST(ProfileCodecTest, DigestIsCanonicalAndMergeOrderIndependent) {
  BranchProfile a, b;
  a.traces = 1;
  a.conds[4] = CondCounts{3, 1};
  b.traces = 2;
  b.conds[4] = CondCounts{1, 3};
  b.conds[8] = CondCounts{2, 0};

  BranchProfile ab, ba;
  MergeProfile(ab, a);
  MergeProfile(ab, b);
  MergeProfile(ba, b);
  MergeProfile(ba, a);
  EXPECT_EQ(ab, ba);
  EXPECT_EQ(ProfileDigest(ab), ProfileDigest(ba));
  EXPECT_EQ(EncodeProfilePayload(ab), EncodeProfilePayload(ba));
  EXPECT_NE(ProfileDigest(a), ProfileDigest(b));
}

// --- wire v5: the PROFILE verb ---------------------------------------------

TEST(WireProtocolTest, ProfileVerbFramesRoundTrip) {
  CellRequest request;
  request.design = DesignSpec{"gcd", ""};
  const std::string body = EncodeProfileReportBody(
      EncodeCellRequest(request), EncodeProfilePayload(SampleProfile()));
  const std::string frame = EncodeRequestFrame(Verb::kProfile, body);

  const Result<std::pair<Verb, std::string>> decoded =
      DecodeRequestFrame(frame);
  ASSERT_TRUE(decoded.ok()) << decoded.error();
  EXPECT_EQ(decoded->first, Verb::kProfile);
  const Result<ProfileReportBody> report =
      DecodeProfileReportBody(decoded->second);
  ASSERT_TRUE(report.ok()) << report.error();
  const Result<CellRequest> cell = DecodeCellRequest(report->cell_request);
  ASSERT_TRUE(cell.ok()) << cell.error();
  EXPECT_EQ(cell->design.name, "gcd");
  const Result<BranchProfile> profile =
      DecodeProfilePayload(report->profile_payload);
  ASSERT_TRUE(profile.ok()) << profile.error();
  EXPECT_EQ(*profile, SampleProfile());
}

TEST(WireProtocolTest, RejectsUnknownVerbsAndForeignVersions) {
  // Verb 7 (kProfile) is the newest; one past it must be rejected.
  std::string frame = EncodeRequestFrame(Verb::kProfile, "body");
  EXPECT_TRUE(DecodeRequestFrame(frame).ok());
  frame[5] = 8;  // one past the verb range (header: u32 magic, u8 ver, u8 verb)
  EXPECT_FALSE(DecodeRequestFrame(frame).ok());

  // Strict version equality in both directions.
  for (const int wrong : {kWireVersion - 1, kWireVersion + 1}) {
    std::string old = EncodeRequestFrame(Verb::kPing, "");
    old[4] = static_cast<char>(wrong);
    EXPECT_FALSE(DecodeRequestFrame(old).ok()) << "version " << wrong;
  }
}

TEST(WireProtocolTest, MalformedProfileBodiesAreTypedErrors) {
  EXPECT_FALSE(DecodeProfileReportBody("").ok());
  EXPECT_FALSE(DecodeProfileReportBody("xy").ok());
  const std::string body = EncodeProfileReportBody("req", "prof");
  const Result<ProfileReportBody> round = DecodeProfileReportBody(body);
  ASSERT_TRUE(round.ok()) << round.error();
  EXPECT_EQ(round->cell_request, "req");
  EXPECT_EQ(round->profile_payload, "prof");
  EXPECT_FALSE(DecodeProfileReportBody(body.substr(0, body.size() - 1)).ok());
  EXPECT_FALSE(DecodeProfileReportBody(body + "x").ok());
}

}  // namespace
}  // namespace ws
