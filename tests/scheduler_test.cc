// Scheduler behavior tests: paper-example schedule shapes, criticality
// preferences, structural invariants of every produced STG (resource
// constraints honored, chaining legal, transitions exhaustive and
// disjoint), and mode orderings.
#include <gtest/gtest.h>

#include <set>
#include <utility>

#include "analysis/metrics.h"
#include "sched/scheduler.h"
#include "sim/stg_sim.h"
#include "stg/dot.h"
#include "suite/benchmarks.h"

namespace ws {
namespace {

const char* ModeTag(int mode) {
  switch (mode) {
    case 0: return "ws";
    case 1: return "single";
    default: return "spec";
  }
}

ScheduleResult Sched(const Benchmark& b, SpeculationMode mode,
                     int lookahead = -1) {
  ScheduleRequest req;
  req.graph = &b.graph;
  req.library = &b.library;
  req.allocation = &b.allocation;
  req.options.mode = mode;
  req.options.lookahead = lookahead < 0 ? b.lookahead : lookahead;
  Result<ScheduleReport> r = Schedule(req);
  EXPECT_TRUE(r.ok()) << r.error();
  return std::move(r).value();
}

// Checks the STG against the resource/clock constraints it was built under.
void VerifyStructure(const Stg& stg, const Cdfg& g, const FuLibrary& lib,
                     const Allocation& alloc, const ClockModel& clock) {
  for (const State& s : stg.states()) {
    std::map<int, int> initiations, active;
    for (const ScheduledOp& op : s.ops) {
      if (op.stage == 0) initiations[op.fu_type]++;
      active[op.fu_type]++;
      // Chaining legality.
      const FuType& fu = lib.type(op.fu_type);
      if (op.stage == 0) {
        EXPECT_TRUE(clock.Fits(op.start_offset_ns, fu.delay_ns))
            << "op " << InstRefToString(g, op.inst) << " misses the period";
      }
    }
    for (const auto& [type, count] : initiations) {
      const int limit = alloc.Count(type);
      if (limit == Allocation::kUnlimited) continue;
      EXPECT_LE(count, limit) << "state " << s.id.value()
                              << " over-initiates "
                              << lib.type(type).name;
      if (!lib.type(type).pipelined) {
        EXPECT_LE(active[type], limit)
            << "state " << s.id.value() << " over-occupies "
            << lib.type(type).name;
      }
    }
  }
}

// Transitions out of each state must be disjoint and exhaustive over the
// resolved conditions (exactly one matches under every assignment).
void VerifyTransitions(const Stg& stg) {
  for (const State& s : stg.states()) {
    if (s.is_stop) continue;
    std::set<std::pair<std::uint64_t, int>> cond_ids;
    for (const Transition& t : s.out) {
      for (const auto& cube : t.cubes) {
        for (const CondLiteral& lit : cube) {
          cond_ids.insert({static_cast<std::uint64_t>(
                               lit.cond.node.value()) << 20 ^
                               static_cast<unsigned>(lit.cond.iter),
                           lit.cond.version});
        }
      }
    }
    std::vector<std::pair<std::uint64_t, int>> conds(cond_ids.begin(),
                                                     cond_ids.end());
    ASSERT_LE(conds.size(), 12u) << "too many conditions to enumerate";
    const std::size_t combos = 1ull << conds.size();
    for (std::size_t mask = 0; mask < combos; ++mask) {
      auto value_of = [&](const CondLiteral& lit) {
        for (std::size_t i = 0; i < conds.size(); ++i) {
          const auto key = std::make_pair(
              static_cast<std::uint64_t>(lit.cond.node.value()) << 20 ^
                  static_cast<unsigned>(lit.cond.iter),
              lit.cond.version);
          if (conds[i] == key) return ((mask >> i) & 1) != 0;
        }
        ADD_FAILURE() << "unknown literal";
        return false;
      };
      int matching = 0;
      for (const Transition& t : s.out) {
        bool t_matches = false;
        for (const auto& cube : t.cubes) {
          bool ok = true;
          for (const CondLiteral& lit : cube) {
            if (value_of(lit) != lit.value) {
              ok = false;
              break;
            }
          }
          if (ok) {
            t_matches = true;
            break;
          }
        }
        if (t_matches) ++matching;
      }
      EXPECT_EQ(matching, 1)
          << "state " << s.id.value() << " assignment mask " << mask;
    }
  }
}

// --- Paper Example 2/9: criticality steers the adder --------------------------

TEST(SchedulerTest, Fig4PreferenceFollowsBranchProbability) {
  // P(c1) = 0.7: the true-path add (+1) must win the single adder in the
  // first state (paper Fig. 5(b) / Example 9).
  Benchmark hi = MakeFig4(0.7, 4, 3);
  const ScheduleResult r_hi = Sched(hi, SpeculationMode::kWaveschedSpec);
  const State& s0_hi = r_hi.stg.state(r_hi.stg.entry());
  bool plus1_first = false;
  for (const ScheduledOp& op : s0_hi.ops) {
    if (hi.graph.node(op.inst.node).name == "+1") plus1_first = true;
    if (hi.graph.node(op.inst.node).name == "+2") {
      FAIL() << "+2 scheduled first despite P(c1)=0.7";
    }
  }
  EXPECT_TRUE(plus1_first);

  // P(c1) = 0.3: the false-path add (+2) wins instead (Fig. 5(a)).
  Benchmark lo = MakeFig4(0.3, 4, 3);
  const ScheduleResult r_lo = Sched(lo, SpeculationMode::kWaveschedSpec);
  const State& s0_lo = r_lo.stg.state(r_lo.stg.entry());
  bool plus2_first = false;
  for (const ScheduledOp& op : s0_lo.ops) {
    if (lo.graph.node(op.inst.node).name == "+2") plus2_first = true;
  }
  EXPECT_TRUE(plus2_first);
}

TEST(SchedulerTest, Fig4TwoAddersSpeculateBothPaths) {
  Benchmark b = MakeFig4(0.5, 4, 3);
  b.allocation.Set(b.library, "add1", 2);
  const ScheduleResult r = Sched(b, SpeculationMode::kWaveschedSpec);
  const State& s0 = r.stg.state(r.stg.entry());
  int adds = 0;
  for (const ScheduledOp& op : s0.ops) {
    const std::string& name = b.graph.node(op.inst.node).name;
    if (name == "+1" || name == "+2") ++adds;
  }
  EXPECT_EQ(adds, 2) << StgToText(r.stg, b.graph);
  // Both-path speculation dominates: expected cycles == 2 at every P.
  EXPECT_NEAR(ExpectedCycles(r.stg, b.graph), 2.0, 1e-9);
}

TEST(SchedulerTest, NonSpeculativeModeNeverSpeculates) {
  for (const char* which : {"gcd", "fig4"}) {
    Benchmark b = std::string(which) == "gcd" ? MakeGcd(4, 5)
                                              : MakeFig4(0.6, 4, 5);
    const ScheduleResult r = Sched(b, SpeculationMode::kWavesched);
    EXPECT_EQ(r.stats.speculative_ops, 0) << which;
    EXPECT_EQ(r.stats.squashed_ops, 0) << which;
  }
}

TEST(SchedulerTest, SpeculativeModeSpeculates) {
  Benchmark b = MakeGcd(4, 5);
  const ScheduleResult r = Sched(b, SpeculationMode::kWaveschedSpec);
  EXPECT_GT(r.stats.speculative_ops, 0);
}

TEST(SchedulerTest, SinglePathBetweenWsAndMultiPath) {
  Benchmark b = MakeFig4(0.7, 8, 5);
  const double ws =
      ExpectedCycles(Sched(b, SpeculationMode::kWavesched).stg, b.graph);
  const double single =
      ExpectedCycles(Sched(b, SpeculationMode::kSinglePath).stg, b.graph);
  const double multi =
      ExpectedCycles(Sched(b, SpeculationMode::kWaveschedSpec).stg,
                     b.graph);
  EXPECT_LE(multi, single + 1e-9);
  EXPECT_LE(single, ws + 1e-9);
}

TEST(SchedulerTest, MultiCycleMultiplierOccupiesTwoStates) {
  Benchmark b = MakeTest1(4, 5);
  const ScheduleResult r = Sched(b, SpeculationMode::kWavesched);
  // Every *1/*2 initiation must be followed by a stage-1 continuation in
  // each successor state.
  int continuations = 0;
  for (const State& s : r.stg.states()) {
    for (const ScheduledOp& op : s.ops) {
      if (op.stage == 1) {
        ++continuations;
        EXPECT_EQ(b.graph.node(op.inst.node).kind, OpKind::kMul);
      }
    }
  }
  EXPECT_GT(continuations, 0);
}

TEST(SchedulerTest, UnsatisfiableAllocationIsLoudError) {
  Benchmark b = MakeGcd(4, 5);
  Allocation none = Allocation::None(b.library);
  none.Set(b.library, "comp1", 1);
  none.Set(b.library, "eqc1", 1);
  // No subtracter at all: the loop body cannot be scheduled.
  SchedulerOptions opts;
  opts.lookahead = 2;
  const Result<ScheduleReport> r =
      Schedule({&b.graph, &b.library, &none, opts});
  ASSERT_FALSE(r.ok());
  EXPECT_FALSE(r.error().empty());
}

TEST(SchedulerTest, StateCapIsEnforced) {
  Benchmark b = MakeBarcode(4, 5);
  SchedulerOptions opts;
  opts.lookahead = b.lookahead;
  opts.max_states = 2;
  const Result<ScheduleReport> r =
      Schedule({&b.graph, &b.library, &b.allocation, opts});
  ASSERT_FALSE(r.ok());
  EXPECT_FALSE(r.error().empty());
}

// --- Structural invariants across the whole suite ------------------------------

struct CaseParam {
  const char* bench;
  SpeculationMode mode;
};

class StructureTest
    : public ::testing::TestWithParam<std::tuple<const char*, int>> {};

TEST_P(StructureTest, ResourcesChainingTransitions) {
  const auto [name, mode_int] = GetParam();
  const SpeculationMode mode = static_cast<SpeculationMode>(mode_int);
  Benchmark b = [&]() -> Benchmark {
    const std::string which = name;
    if (which == "gcd") return MakeGcd(6, 21);
    if (which == "test1") return MakeTest1(6, 21);
    if (which == "barcode") return MakeBarcode(6, 21);
    if (which == "tlc") return MakeTlc(6, 21);
    if (which == "findmin") return MakeFindmin(6, 21);
    return MakeFig4(0.6, 6, 21);
  }();
  const ScheduleResult r = Sched(b, mode);
  r.stg.Validate();
  VerifyStructure(r.stg, b.graph, b.library, b.allocation, ClockModel{});
  VerifyTransitions(r.stg);
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarksAllModes, StructureTest,
    ::testing::Combine(::testing::Values("gcd", "test1", "barcode", "tlc",
                                         "findmin", "fig4"),
                       ::testing::Values(0, 1, 2)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param)) + "_" +
             ModeTag(std::get<1>(info.param));
    });

}  // namespace
}  // namespace ws
