// Tests for the ASAP/ALAP bound analysis.
#include <gtest/gtest.h>

#include "cdfg/builder.h"
#include "sched/bounds.h"
#include "suite/benchmarks.h"

namespace ws {
namespace {

TEST(BoundsTest, ChainAndDiamond) {
  // a -> b -> d; a -> c -> d (c is 2-cycle via mult in the paper library):
  //   ASAP: a=0, b=1, c=1, d=3 (waits for the multiply)
  //   ALAP: b slides to 2 (mobility 1), c is critical (mobility 0).
  CdfgBuilder bld("diamond");
  const NodeId x = bld.Input("x");
  const NodeId a = bld.Op(OpKind::kInc, "a", {x});
  const NodeId b = bld.Op(OpKind::kAdd, "b", {a, x});
  const NodeId c = bld.Op(OpKind::kMul, "c", {a, x});
  const NodeId d = bld.Op(OpKind::kSub, "d", {b, c});
  bld.Output("o", d);
  const Cdfg g = bld.Finish();
  const FuLibrary lib = FuLibrary::PaperLibrary();
  const ScheduleBounds bounds = ComputeBounds(g, lib);

  EXPECT_EQ(bounds.asap[a.value()], 0);
  EXPECT_EQ(bounds.asap[b.value()], 1);
  EXPECT_EQ(bounds.asap[c.value()], 1);
  EXPECT_EQ(bounds.asap[d.value()], 3);
  EXPECT_EQ(bounds.critical_path, 4);

  EXPECT_EQ(bounds.mobility(a), 0);
  EXPECT_EQ(bounds.mobility(c), 0);
  EXPECT_EQ(bounds.mobility(d), 0);
  EXPECT_EQ(bounds.mobility(b), 1);
}

TEST(BoundsTest, SelectsAreZeroDelay) {
  CdfgBuilder bld("sel");
  const NodeId x = bld.Input("x");
  const NodeId y = bld.Input("y");
  const NodeId c = bld.Op(OpKind::kLt, "<", {x, y});
  const NodeId s = bld.Select("s", c, x, y);
  const NodeId z = bld.Op(OpKind::kAdd, "+", {s, x});
  bld.Output("o", z);
  const Cdfg g = bld.Finish();
  const ScheduleBounds bounds =
      ComputeBounds(g, FuLibrary::PaperLibrary());
  // s adds no latency: z starts right after the comparison completes.
  EXPECT_EQ(bounds.asap[s.value()], 1);
  EXPECT_EQ(bounds.asap[z.value()], 1);
  EXPECT_EQ(bounds.critical_path, 2);
}

TEST(BoundsTest, InvariantsOnBenchmarks) {
  for (const Benchmark& b : MakeTable1Suite(2, 10)) {
    const ScheduleBounds bounds = ComputeBounds(b.graph, b.library);
    for (const Node& n : b.graph.nodes()) {
      EXPECT_LE(bounds.asap[n.id.value()], bounds.alap[n.id.value()])
          << b.name << " " << n.name;
      EXPECT_GE(bounds.asap[n.id.value()], 0);
      EXPECT_LE(bounds.alap[n.id.value()], bounds.critical_path);
      // Every producer finishes before its consumer's ALAP start.
      for (std::size_t k = 0; k < n.inputs.size(); ++k) {
        if (n.kind == OpKind::kLoopPhi && k == 1) continue;
        EXPECT_LE(bounds.asap[n.inputs[k].value()],
                  bounds.asap[n.id.value()]);
      }
    }
  }
}

}  // namespace
}  // namespace ws
