// Plain exit-code check (no gtest) for the artifact store, reused by the
// TSan/ASan sub-builds: concurrent Put/Get traffic with compactions racing
// through, a reopen that must recover every key, then deliberate on-disk
// corruption that must degrade to fewer entries — never a failed Open, a
// crash, or a wrong value.
#include <dirent.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "io/artifact_store.h"

namespace ws {
namespace {

constexpr int kThreads = 4;
constexpr int kKeysPerThread = 32;
constexpr int kIterations = 40;

Fp128 KeyFor(int thread, int slot) {
  const std::uint64_t n =
      static_cast<std::uint64_t>(thread) * 1000 + static_cast<std::uint64_t>(slot);
  return Fp128{SplitMix64(n), SplitMix64(n ^ 0x5a5a5a5aull)};
}

std::string ValueFor(int thread, int slot, int iteration) {
  return "t" + std::to_string(thread) + ".k" + std::to_string(slot) + ".i" +
         std::to_string(iteration) + "." + std::string(48, 'v');
}

bool Fail(const std::string& message) {
  std::fprintf(stderr, "store_robustness_check: FAIL: %s\n", message.c_str());
  return false;
}

bool RunCheck(const std::string& dir) {
  ArtifactStoreOptions options;
  options.dir = dir;
  options.compact_min_bytes = 8192;  // let auto-compaction race the writers

  // Phase 1: concurrent writers (disjoint key ranges), readers, and an
  // explicit compactor thread.
  {
    Result<std::unique_ptr<ArtifactStore>> opened =
        ArtifactStore::Open(options);
    if (!opened.ok()) return Fail("open: " + opened.error());
    ArtifactStore* store = opened->get();

    std::vector<std::thread> threads;
    std::vector<int> failures(kThreads, 0);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([store, t, &failures] {
        for (int i = 0; i < kIterations; ++i) {
          for (int k = 0; k < kKeysPerThread; ++k) {
            if (!store->Put(KeyFor(t, k), ValueFor(t, k, i)).ok()) {
              ++failures[t];
            }
            if (k % 7 == 0) (void)store->Get(KeyFor(t, (k + 3) % kKeysPerThread));
          }
        }
      });
    }
    std::thread compactor([store] {
      for (int i = 0; i < 8; ++i) {
        (void)store->Compact();
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
    for (std::thread& th : threads) th.join();
    compactor.join();
    for (int t = 0; t < kThreads; ++t) {
      if (failures[t] != 0) return Fail("Put failures on thread " + std::to_string(t));
    }
    for (int t = 0; t < kThreads; ++t) {
      for (int k = 0; k < kKeysPerThread; ++k) {
        const std::optional<std::string> got = store->Get(KeyFor(t, k));
        if (!got.has_value() || *got != ValueFor(t, k, kIterations - 1)) {
          return Fail("wrong value after concurrent phase");
        }
      }
    }
  }

  // Phase 2: reopen recovers every key with its final value.
  {
    Result<std::unique_ptr<ArtifactStore>> opened =
        ArtifactStore::Open(options);
    if (!opened.ok()) return Fail("reopen: " + opened.error());
    ArtifactStore* store = opened->get();
    if (store->entries() !=
        static_cast<std::size_t>(kThreads) * kKeysPerThread) {
      return Fail("reopen lost entries");
    }
    for (int t = 0; t < kThreads; ++t) {
      for (int k = 0; k < kKeysPerThread; ++k) {
        const std::optional<std::string> got = store->Get(KeyFor(t, k));
        if (!got.has_value() || *got != ValueFor(t, k, kIterations - 1)) {
          return Fail("wrong value after reopen");
        }
      }
    }
  }

  // Phase 3: flip one byte mid-log; the next open must succeed with a
  // (possibly reduced) consistent view, and every surviving value must be a
  // value some iteration actually wrote.
  std::string segment;
  if (DIR* d = ::opendir(dir.c_str())) {
    while (dirent* e = ::readdir(d)) {
      const std::string name = e->d_name;
      if (name.rfind("artifacts-", 0) == 0 &&
          name.size() > 4 && name.compare(name.size() - 4, 4, ".log") == 0) {
        segment = dir + "/" + name;
      }
    }
    ::closedir(d);
  }
  if (segment.empty()) return Fail("no segment file found");
  {
    std::ifstream in(segment, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string bytes = buf.str();
    if (bytes.size() < 64) return Fail("segment implausibly small");
    bytes[bytes.size() / 2] ^= 0x20;
    std::ofstream out(segment, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  {
    Result<std::unique_ptr<ArtifactStore>> opened =
        ArtifactStore::Open(options);
    if (!opened.ok()) return Fail("open after corruption: " + opened.error());
    ArtifactStore* store = opened->get();
    if (store->entries() >=
        static_cast<std::size_t>(kThreads) * kKeysPerThread) {
      return Fail("corruption dropped nothing — the flip was not detected");
    }
    int survivors = 0;
    for (int t = 0; t < kThreads; ++t) {
      for (int k = 0; k < kKeysPerThread; ++k) {
        const std::optional<std::string> got = store->Get(KeyFor(t, k));
        if (!got.has_value()) continue;
        ++survivors;
        bool matches_some_iteration = false;
        for (int i = 0; i < kIterations; ++i) {
          if (*got == ValueFor(t, k, i)) {
            matches_some_iteration = true;
            break;
          }
        }
        if (!matches_some_iteration) return Fail("corrupted value served");
      }
    }
    if (static_cast<std::size_t>(survivors) != store->entries()) {
      return Fail("index inconsistent with Get");
    }
  }

  // Phase 4: the repaired store is fully usable again.
  {
    Result<std::unique_ptr<ArtifactStore>> opened =
        ArtifactStore::Open(options);
    if (!opened.ok()) return Fail("final open: " + opened.error());
    ArtifactStore* store = opened->get();
    if (store->counters().corrupt_dropped != 0) {
      return Fail("second open still sees corruption — repair did not stick");
    }
    if (!store->Put(KeyFor(0, 0), "post-repair").ok()) {
      return Fail("Put after repair");
    }
    const std::optional<std::string> got = store->Get(KeyFor(0, 0));
    if (!got.has_value() || *got != "post-repair") {
      return Fail("Get after repair");
    }
  }
  return true;
}

}  // namespace
}  // namespace ws

int main() {
  char dir_template[] = "/tmp/ws_store_robustness_XXXXXX";
  char* dir = ::mkdtemp(dir_template);
  if (dir == nullptr) {
    std::fprintf(stderr, "store_robustness_check: mkdtemp failed\n");
    return 1;
  }
  const bool ok = ws::RunCheck(dir);
  if (DIR* d = ::opendir(dir)) {
    while (dirent* e = ::readdir(d)) {
      const std::string name = e->d_name;
      if (name != "." && name != "..") {
        ::unlink((std::string(dir) + "/" + name).c_str());
      }
    }
    ::closedir(d);
  }
  ::rmdir(dir);
  if (!ok) return 1;
  std::printf("store_robustness_check: PASS\n");
  return 0;
}
