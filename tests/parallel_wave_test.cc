// The parallel wave loop's headline guarantee (sched/wave.h): a Schedule()
// call produces byte-identical artifacts at any wave_workers setting. The
// frontier is committed in FIFO order — exactly the sequential worklist
// order — so state numbering, the encoded STG, and every deterministic
// ScheduleStats counter must be invariant under the worker count. These
// tests pin that down for every suite benchmark under every speculation
// mode, and check that wave_workers stays out of request fingerprints
// (it is an execution hint, not a result-affecting option).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "base/strings.h"
#include "io/codec.h"
#include "sched/closure.h"
#include "sched/scheduler.h"
#include "suite/benchmarks.h"

namespace ws {
namespace {

// Every worker-count-invariant ScheduleStats field. Wall-clock phase times
// are excluded — they are the one thing parallelism is allowed to change.
std::string StatsDigest(const ScheduleStats& s) {
  return StrCat(s.states_created, "|", s.closure_hits, "|", s.speculative_ops,
                "|", s.squashed_ops, "|", s.total_ops, "|",
                s.candidates_generated, "|", s.bdd_ops, "|", s.bdd_nodes, "|",
                s.signature_collisions);
}

TEST(ParallelWaveTest, SuiteByteIdenticalAcrossWorkerCounts) {
  const SpeculationMode kModes[] = {SpeculationMode::kWavesched,
                                    SpeculationMode::kSinglePath,
                                    SpeculationMode::kWaveschedSpec};
  for (const std::string& name : BenchmarkNames()) {
    const Result<Benchmark> bench = MakeBenchmarkByName(name, 2, 7);
    ASSERT_TRUE(bench.ok()) << bench.error();
    for (const SpeculationMode mode : kModes) {
      SchedulerOptions options;
      options.mode = mode;
      options.lookahead = bench->lookahead;

      std::string golden_stg;
      std::string golden_stats;
      for (const int workers : {0, 1, 4}) {
        options.wave_workers = workers;
        const Result<ScheduleReport> report =
            ScheduleBenchmark(*bench, options);
        ASSERT_TRUE(report.ok())
            << name << "/" << SpeculationModeName(mode) << " workers="
            << workers << ": " << report.error();
        const std::string stg = EncodeStg(report->stg);
        const std::string stats = StatsDigest(report->stats);
        if (workers == 0) {
          golden_stg = stg;
          golden_stats = stats;
        } else {
          EXPECT_EQ(stg, golden_stg)
              << name << "/" << SpeculationModeName(mode)
              << ": STG bytes diverged at workers=" << workers;
          EXPECT_EQ(stats, golden_stats)
              << name << "/" << SpeculationModeName(mode)
              << ": stats diverged at workers=" << workers;
        }
      }
    }
  }
}

TEST(ParallelWaveTest, MoreWorkersThanFrontierStates) {
  // A pool much wider than the frontier ever gets: most workers only ever
  // steal nothing. Must behave exactly like the inline engine.
  const Result<Benchmark> bench = MakeBenchmarkByName("test1", 2, 7);
  ASSERT_TRUE(bench.ok()) << bench.error();
  SchedulerOptions options;
  options.mode = SpeculationMode::kWaveschedSpec;
  options.lookahead = bench->lookahead;
  const Result<ScheduleReport> inline_run = ScheduleBenchmark(*bench, options);
  ASSERT_TRUE(inline_run.ok()) << inline_run.error();

  options.wave_workers = 16;
  const Result<ScheduleReport> wide_run = ScheduleBenchmark(*bench, options);
  ASSERT_TRUE(wide_run.ok()) << wide_run.error();
  EXPECT_EQ(EncodeStg(inline_run->stg), EncodeStg(wide_run->stg));
  EXPECT_EQ(StatsDigest(inline_run->stats), StatsDigest(wide_run->stats));
}

TEST(ParallelWaveTest, WaveWorkersExcludedFromRequestFingerprints) {
  // wave_workers picks how many threads expand the frontier, never what the
  // run produces — so, like deadline/cancel, it must not move the durable
  // store's key (a split here would recompute or, worse, shadow identical
  // artifacts).
  const Result<Benchmark> bench = MakeBenchmarkByName("gcd", 2, 7);
  ASSERT_TRUE(bench.ok()) << bench.error();
  ScheduleRequest request;
  request.graph = &bench->graph;
  request.library = &bench->library;
  request.allocation = &bench->allocation;
  request.options.lookahead = bench->lookahead;

  const Fp128 base = FingerprintScheduleRequest(request);
  for (const int workers : {1, 4, 64}) {
    ScheduleRequest threaded = request;
    threaded.options.wave_workers = workers;
    const Fp128 fp = FingerprintScheduleRequest(threaded);
    EXPECT_EQ(fp.lo, base.lo) << "workers=" << workers;
    EXPECT_EQ(fp.hi, base.hi) << "workers=" << workers;
  }
}

}  // namespace
}  // namespace ws
