// Tests for the schedule analyses: Markov expected cycles, best case, worst
// case — on hand-built STGs with known closed forms, and cross-checked
// against trace simulation on scheduled benchmarks.
#include <gtest/gtest.h>

#include "analysis/metrics.h"
#include "cdfg/builder.h"
#include "sched/scheduler.h"
#include "sim/stg_sim.h"
#include "suite/benchmarks.h"

namespace ws {
namespace {

// A two-state chain: S0 --p--> S0 (shift), S0 --(1-p)--> STOP.
// E[cycles] = 1 / (1 - p).
struct GeometricFixture {
  Cdfg graph;
  Stg stg{"geom"};

  explicit GeometricFixture(double p) : graph(MakeGraph()) {
    const NodeId cond = graph.loops()[0].cond;
    graph.set_cond_probability(cond, p);
    const StateId s0 = stg.AddState();
    const StateId stop = stg.AddStopState();
    stg.set_entry(s0);
    Transition back;
    back.from = s0;
    back.to = s0;
    back.cubes.push_back({CondLiteral{InstRef{cond, 0, 0}, true}});
    back.iter_shift.emplace_back(LoopId(0), 1);
    Transition exit;
    exit.from = s0;
    exit.to = stop;
    exit.cubes.push_back({CondLiteral{InstRef{cond, 0, 0}, false}});
    stg.state(s0).out.push_back(back);
    stg.state(s0).out.push_back(exit);
  }

  static Cdfg MakeGraph() {
    CdfgBuilder b("geom");
    const NodeId n = b.Input("n");
    b.BeginLoop("l");
    const NodeId i = b.LoopPhi("i", n);
    const NodeId c = b.Op(OpKind::kGt, "c", {i, n});
    b.SetLoopCondition(c);
    b.SetLoopBack(i, b.Op(OpKind::kDec, "--", {i}));
    b.EndLoop();
    b.Output("o", i);
    return b.Finish();
  }
};

TEST(MarkovTest, GeometricChainClosedForm) {
  for (const double p : {0.0, 0.25, 0.5, 0.9}) {
    GeometricFixture fx(p);
    EXPECT_NEAR(ExpectedCycles(fx.stg, fx.graph), 1.0 / (1.0 - p), 1e-9)
        << "p=" << p;
  }
}

TEST(MarkovTest, TransitionProbabilityOfCubes) {
  GeometricFixture fx(0.3);
  const State& s0 = fx.stg.state(fx.stg.entry());
  EXPECT_NEAR(TransitionProbability(fx.graph, s0.out[0]), 0.3, 1e-12);
  EXPECT_NEAR(TransitionProbability(fx.graph, s0.out[1]), 0.7, 1e-12);
}

TEST(BestWorstTest, GeometricChain) {
  GeometricFixture fx(0.5);
  EXPECT_EQ(BestCaseCycles(fx.stg), 1);
  EXPECT_EQ(WorstCaseCycles(fx.stg, 10), 11);  // 10 loop-backs + exit state
  EXPECT_EQ(WorstCaseCycles(fx.stg, 0), 1);
}

TEST(BestWorstTest, UnshiftedCycleIsUnboundedWorstCase) {
  GeometricFixture fx(0.5);
  // Drop the shift annotation: the back edge no longer consumes budget.
  fx.stg.state(fx.stg.entry()).out[0].iter_shift.clear();
  EXPECT_THROW(WorstCaseCycles(fx.stg, 4), Error);
}

TEST(MarkovTest, ProbabilitiesMustSumToOne) {
  GeometricFixture fx(0.5);
  // Remove the exit edge: the state's probabilities no longer sum to 1.
  fx.stg.state(fx.stg.entry()).out.pop_back();
  EXPECT_THROW(ExpectedCycles(fx.stg, fx.graph), Error);
}

// On real scheduled benchmarks, the analytic expectation must track the
// trace-measured average within sampling error (and exactly match the
// geometric-iteration assumption for memoryless loops like Test1's).
class MarkovVsSimTest : public ::testing::TestWithParam<const char*> {};

TEST_P(MarkovVsSimTest, AnalyticTracksSimulation) {
  const std::string which = GetParam();
  Benchmark b = which == "gcd" ? MakeGcd(60, 11)
               : which == "findmin" ? MakeFindmin(60, 11)
                                    : MakeBarcode(60, 11);
  SchedulerOptions opts;
  opts.mode = SpeculationMode::kWaveschedSpec;
  opts.lookahead = b.lookahead;
  const ScheduleResult r = Schedule({&b.graph, &b.library, &b.allocation, opts}).value();
  const double sim = MeasureExpectedCycles(r.stg, b.graph, b.stimuli);
  const double markov = ExpectedCycles(r.stg, b.graph);
  // Loose bound: the Markov model assumes per-iteration independence, which
  // only approximates the empirical trace distribution.
  EXPECT_NEAR(markov / sim, 1.0, 0.35) << "sim=" << sim
                                       << " markov=" << markov;
}

INSTANTIATE_TEST_SUITE_P(Benchmarks, MarkovVsSimTest,
                         ::testing::Values("gcd", "findmin", "barcode"),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

}  // namespace
}  // namespace ws
