// Regression tests for the paper's headline experimental claims (Section 5,
// Tables 1/2, Figures 5/6/7). Absolute cycle counts depend on our trace
// distributions; these tests pin the *shapes* the paper argues for.
#include <gtest/gtest.h>

#include "analysis/metrics.h"
#include "sched/scheduler.h"
#include "sim/stg_sim.h"
#include "suite/benchmarks.h"

namespace ws {
namespace {

struct Pair {
  double ws;
  double spec;
  std::int64_t best_ws, best_spec, worst_ws, worst_spec;
};

Pair MeasureBoth(const Benchmark& b) {
  SchedulerOptions o;
  o.lookahead = b.lookahead;
  o.mode = SpeculationMode::kWavesched;
  const ScheduleResult ws = Schedule({&b.graph, &b.library, &b.allocation, o}).value();
  o.mode = SpeculationMode::kWaveschedSpec;
  const ScheduleResult sp = Schedule({&b.graph, &b.library, &b.allocation, o}).value();
  return Pair{MeasureExpectedCycles(ws.stg, b.graph, b.stimuli),
              MeasureExpectedCycles(sp.stg, b.graph, b.stimuli),
              BestCaseCycles(ws.stg),
              BestCaseCycles(sp.stg),
              WorstCaseCycles(ws.stg, b.worst_case_budget),
              WorstCaseCycles(sp.stg, b.worst_case_budget)};
}

TEST(PaperResultsTest, Test1HasTheLargestSpeedup) {
  // Paper Table 1: Test1 improves ~7.2x, the largest of the suite; ours
  // must exceed 4x (a one-cycle-per-iteration pipeline vs an 8-cycle
  // serial iteration).
  const Pair p = MeasureBoth(MakeTest1(30, 1998));
  EXPECT_GT(p.ws / p.spec, 4.0) << "ws=" << p.ws << " spec=" << p.spec;
}

TEST(PaperResultsTest, GcdSpeedsUpAtLeastTwofold) {
  const Pair p = MeasureBoth(MakeGcd(30, 1998));
  EXPECT_GT(p.ws / p.spec, 2.0);
}

TEST(PaperResultsTest, BarcodeSpeedsUpAtLeastTwofold) {
  const Pair p = MeasureBoth(MakeBarcode(30, 1998));
  EXPECT_GT(p.ws / p.spec, 2.0);
}

TEST(PaperResultsTest, FindminSpeedsUpAboutTwofold) {
  const Pair p = MeasureBoth(MakeFindmin(30, 1998));
  EXPECT_GT(p.ws / p.spec, 1.7);
  EXPECT_LT(p.ws / p.spec, 2.5);
}

TEST(PaperResultsTest, TlcShowsNoSpeedup) {
  // Paper Table 1: TLC is recurrence-bound; WS and WS-spec tie (507/507).
  const Pair p = MeasureBoth(MakeTlc(10, 1998));
  EXPECT_NEAR(p.ws / p.spec, 1.0, 0.02);
}

TEST(PaperResultsTest, AverageSpeedupNearPaper) {
  // Paper: average 2.8x over the five benchmarks.
  double sum = 0.0;
  const auto suite = MakeTable1Suite(30, 1998);
  for (const Benchmark& b : suite) {
    const Pair p = MeasureBoth(b);
    sum += p.ws / p.spec;
  }
  const double avg = sum / static_cast<double>(suite.size());
  EXPECT_GT(avg, 2.0);
  EXPECT_LT(avg, 4.5);
}

TEST(PaperResultsTest, BestCaseNeverWorseUnderSpeculation) {
  // Paper: "the best ... execution times for the speculatively performed
  // schedules are the same as or better than the corresponding values".
  for (const Benchmark& b : MakeTable1Suite(10, 77)) {
    const Pair p = MeasureBoth(b);
    EXPECT_LE(p.best_spec, p.best_ws) << b.name;
  }
}

TEST(PaperResultsTest, WorstCaseImprovesOnLoopDominatedBenchmarks) {
  for (const char* which : {"gcd", "test1", "findmin", "barcode"}) {
    const std::string name = which;
    Benchmark b = name == "gcd"     ? MakeGcd(10, 77)
                  : name == "test1" ? MakeTest1(10, 77)
                  : name == "findmin" ? MakeFindmin(10, 77)
                                      : MakeBarcode(10, 77);
    const Pair p = MeasureBoth(b);
    EXPECT_LT(p.worst_spec, p.worst_ws) << name;
  }
}

TEST(PaperResultsTest, Fig6CrossoverAndDominance) {
  // Schedule (a) with P=0.3, (b) with P=0.7, (c) with two adders; sweep P.
  Benchmark ba = MakeFig4(0.3, 4, 9);
  Benchmark bb = MakeFig4(0.7, 4, 9);
  Benchmark bc = MakeFig4(0.7, 4, 9);
  bc.allocation.Set(bc.library, "add1", 2);
  SchedulerOptions o;
  o.mode = SpeculationMode::kWaveschedSpec;
  o.lookahead = 4;
  const Stg sa = Schedule({&ba.graph, &ba.library, &ba.allocation, o}).value().stg;
  const Stg sb = Schedule({&bb.graph, &bb.library, &bb.allocation, o}).value().stg;
  const Stg sc = Schedule({&bc.graph, &bc.library, &bc.allocation, o}).value().stg;

  auto cond_of = [](const Cdfg& g) {
    for (const Node& n : g.nodes()) {
      if (n.name == ">1") return n.id;
    }
    throw Error("no cond");
  };
  for (int step = 0; step <= 10; ++step) {
    const double p = step / 10.0;
    ba.graph.set_cond_probability(cond_of(ba.graph), p);
    bb.graph.set_cond_probability(cond_of(bb.graph), p);
    bc.graph.set_cond_probability(cond_of(bc.graph), p);
    const double cca = ExpectedCycles(sa, ba.graph);
    const double ccb = ExpectedCycles(sb, bb.graph);
    const double ccc = ExpectedCycles(sc, bc.graph);
    if (p < 0.5) {
      EXPECT_LT(cca, ccb) << "P=" << p;
    }
    if (p > 0.5) {
      EXPECT_LT(ccb, cca) << "P=" << p;
    }
    EXPECT_LE(ccc, cca + 1e-9);
    EXPECT_LE(ccc, ccb + 1e-9);
  }
}

TEST(PaperResultsTest, SinglePathDominatedByMultiPath) {
  Benchmark b = MakeFig4(0.7, 4, 9);
  SchedulerOptions o;
  o.lookahead = 4;
  o.mode = SpeculationMode::kWaveschedSpec;
  const Stg multi = Schedule({&b.graph, &b.library, &b.allocation, o}).value().stg;
  o.mode = SpeculationMode::kSinglePath;
  const Stg single = Schedule({&b.graph, &b.library, &b.allocation, o}).value().stg;
  auto cond_of = [&] {
    for (const Node& n : b.graph.nodes()) {
      if (n.name == ">1") return n.id;
    }
    throw Error("no cond");
  }();
  for (int step = 0; step <= 10; ++step) {
    const double p = step / 10.0;
    b.graph.set_cond_probability(cond_of, p);
    EXPECT_LE(ExpectedCycles(multi, b.graph),
              ExpectedCycles(single, b.graph) + 1e-9)
        << "P=" << p;
  }
}

}  // namespace
}  // namespace ws
