// The durable artifact store: round trips across process lifetimes, LRU
// recency/eviction, compaction, and — the crash-safety contract — that any
// corrupted or torn byte pattern on disk degrades to fewer cached artifacts,
// never a failed Open, a crash, or a wrong value.
#include <gtest/gtest.h>

#include <dirent.h>
#include <unistd.h>

#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "base/codec.h"
#include "io/artifact_store.h"
#include "io/codec.h"

namespace ws {
namespace {

class TempDir {
 public:
  TempDir() {
    char buf[] = "/tmp/ws_artifact_store_XXXXXX";
    if (char* got = ::mkdtemp(buf)) path_ = got;
  }
  ~TempDir() {
    if (path_.empty()) return;
    if (DIR* d = ::opendir(path_.c_str())) {
      while (dirent* e = ::readdir(d)) {
        const std::string name = e->d_name;
        if (name == "." || name == "..") continue;
        ::unlink((path_ + "/" + name).c_str());
      }
      ::closedir(d);
    }
    ::rmdir(path_.c_str());
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::string Slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void Spew(const std::string& path, std::string_view data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
}

Fp128 Key(std::uint64_t n) {
  return Fp128{SplitMix64(n), SplitMix64(n ^ 0xabcdefull)};
}

std::unique_ptr<ArtifactStore> OpenOrDie(const std::string& dir,
                                         std::uint64_t max_bytes = 0,
                                         std::uint64_t compact_min = 4u << 20) {
  ArtifactStoreOptions options;
  options.dir = dir;
  options.max_bytes = max_bytes;
  options.compact_min_bytes = compact_min;
  Result<std::unique_ptr<ArtifactStore>> store =
      ArtifactStore::Open(std::move(options));
  if (!store.ok()) {
    ADD_FAILURE() << "ArtifactStore::Open(" << dir << "): " << store.error();
    return nullptr;
  }
  return std::move(store).value();
}

// A store-format record, byte-compatible with what the store writes — used
// to hand-craft segments for the versioning tests.
std::string RecordFor(const Fp128& key, std::string_view value) {
  ByteWriter w;
  w.U32(kRecordMagic);
  w.U64(key.lo);
  w.U64(key.hi);
  w.U32(static_cast<std::uint32_t>(value.size()));
  w.Raw(value);
  std::string body = w.Take();
  const std::uint32_t crc = Crc32(std::string_view(body).substr(4));
  ByteWriter tail;
  tail.U32(crc);
  return body + tail.Take();
}

std::string HeaderFor(std::uint8_t store_version,
                      std::uint8_t artifact_version) {
  ByteWriter w;
  w.U32(kSegmentMagic);
  w.U8(store_version);
  w.U8(artifact_version);
  w.U8(0);
  w.U8(0);
  return w.Take();
}

std::vector<Fp128> LruKeys(const ArtifactStore& store) {
  std::vector<Fp128> keys;
  store.ForEachLru(
      [&keys](const Fp128& key, const std::string&) { keys.push_back(key); });
  return keys;
}

TEST(ArtifactStoreTest, PutGetSurviveReopen) {
  TempDir dir;
  {
    std::unique_ptr<ArtifactStore> store = OpenOrDie(dir.path());
    ASSERT_NE(store, nullptr);
    EXPECT_EQ(store->entries(), 0u);
    ASSERT_TRUE(store->Put(Key(1), "alpha").ok());
    ASSERT_TRUE(store->Put(Key(2), "beta-beta").ok());
    ASSERT_TRUE(store->Put(Key(3), "gamma").ok());
    EXPECT_EQ(store->entries(), 3u);
    EXPECT_EQ(store->live_bytes(), 5u + 9u + 5u);
    EXPECT_EQ(store->Get(Key(2)).value_or("MISS"), "beta-beta");
    EXPECT_FALSE(store->Get(Key(99)).has_value());
    const ArtifactStoreCounters c = store->counters();
    EXPECT_EQ(c.puts, 3);
    EXPECT_EQ(c.hits, 1);
    EXPECT_EQ(c.misses, 1);
  }
  std::unique_ptr<ArtifactStore> store = OpenOrDie(dir.path());
  ASSERT_NE(store, nullptr);
  EXPECT_EQ(store->entries(), 3u);
  EXPECT_EQ(store->counters().loaded, 3);
  EXPECT_EQ(store->Get(Key(1)).value_or("MISS"), "alpha");
  EXPECT_EQ(store->Get(Key(2)).value_or("MISS"), "beta-beta");
  EXPECT_EQ(store->Get(Key(3)).value_or("MISS"), "gamma");
}

TEST(ArtifactStoreTest, OverwriteKeepsLatestAcrossReopen) {
  TempDir dir;
  {
    std::unique_ptr<ArtifactStore> store = OpenOrDie(dir.path());
    ASSERT_NE(store, nullptr);
    ASSERT_TRUE(store->Put(Key(7), "first").ok());
    ASSERT_TRUE(store->Put(Key(7), "second-and-final").ok());
    EXPECT_EQ(store->entries(), 1u);
    EXPECT_EQ(store->Get(Key(7)).value_or("MISS"), "second-and-final");
  }
  // Replay sees both records; the later one must win (and the superseded
  // record triggers a consolidating compaction on open).
  std::unique_ptr<ArtifactStore> store = OpenOrDie(dir.path());
  ASSERT_NE(store, nullptr);
  EXPECT_EQ(store->entries(), 1u);
  EXPECT_EQ(store->Get(Key(7)).value_or("MISS"), "second-and-final");
  EXPECT_GE(store->counters().compactions, 1);
}

TEST(ArtifactStoreTest, RecencySurvivesCompactionAndReopen) {
  TempDir dir;
  {
    std::unique_ptr<ArtifactStore> store = OpenOrDie(dir.path());
    ASSERT_NE(store, nullptr);
    ASSERT_TRUE(store->Put(Key(1), "a").ok());
    ASSERT_TRUE(store->Put(Key(2), "b").ok());
    ASSERT_TRUE(store->Put(Key(3), "c").ok());
    // Touch the oldest: recency order becomes b, c, a.
    EXPECT_TRUE(store->Get(Key(1)).has_value());
    ASSERT_TRUE(store->Compact().ok());
  }
  std::unique_ptr<ArtifactStore> store = OpenOrDie(dir.path());
  ASSERT_NE(store, nullptr);
  const std::vector<Fp128> keys = LruKeys(*store);
  ASSERT_EQ(keys.size(), 3u);
  EXPECT_EQ(keys[0], Key(2));  // least recently used first
  EXPECT_EQ(keys[1], Key(3));
  EXPECT_EQ(keys[2], Key(1));
}

TEST(ArtifactStoreTest, MaxBytesEvictsLeastRecentlyUsed) {
  TempDir dir;
  std::unique_ptr<ArtifactStore> store =
      OpenOrDie(dir.path(), /*max_bytes=*/64);
  ASSERT_NE(store, nullptr);
  const std::string chunk(30, 'x');
  ASSERT_TRUE(store->Put(Key(1), chunk).ok());
  ASSERT_TRUE(store->Put(Key(2), chunk).ok());
  EXPECT_EQ(store->entries(), 2u);
  // Refresh 1 so 2 is the eviction victim.
  EXPECT_TRUE(store->Get(Key(1)).has_value());
  ASSERT_TRUE(store->Put(Key(3), chunk).ok());
  EXPECT_EQ(store->entries(), 2u);
  EXPECT_EQ(store->counters().evictions, 1);
  EXPECT_FALSE(store->Get(Key(2)).has_value());
  EXPECT_TRUE(store->Get(Key(1)).has_value());
  EXPECT_TRUE(store->Get(Key(3)).has_value());
}

TEST(ArtifactStoreTest, CompactionShrinksLogToLiveEntries) {
  TempDir dir;
  std::unique_ptr<ArtifactStore> store = OpenOrDie(dir.path());
  ASSERT_NE(store, nullptr);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(store->Put(Key(5), "version " + std::to_string(i)).ok());
  }
  const std::uint64_t before = store->log_bytes();
  ASSERT_TRUE(store->Compact().ok());
  EXPECT_LT(store->log_bytes(), before);
  EXPECT_EQ(store->entries(), 1u);
  EXPECT_EQ(store->Get(Key(5)).value_or("MISS"), "version 19");
  EXPECT_GE(store->counters().compactions, 1);
}

TEST(ArtifactStoreTest, AutoCompactionBoundsTheLog) {
  TempDir dir;
  // Tiny floor: the dead-ratio trigger governs almost immediately.
  std::unique_ptr<ArtifactStore> store =
      OpenOrDie(dir.path(), /*max_bytes=*/0, /*compact_min=*/128);
  ASSERT_NE(store, nullptr);
  const std::string chunk(40, 'y');
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(
        store->Put(Key(9), chunk + static_cast<char>('a' + i % 26)).ok());
  }
  EXPECT_GE(store->counters().compactions, 1);
  // Live = one 41-byte value; the log can hold at most dead_ratio times
  // that plus one fresh append past the floor.
  EXPECT_LT(store->log_bytes(), 1024u);
  EXPECT_EQ(store->entries(), 1u);
}

TEST(ArtifactStoreTest, IdenticalPutSkipsTheAppend) {
  TempDir dir;
  std::unique_ptr<ArtifactStore> store = OpenOrDie(dir.path());
  ASSERT_NE(store, nullptr);
  ASSERT_TRUE(store->Put(Key(1), "stable").ok());
  ASSERT_TRUE(store->Put(Key(2), "other").ok());
  const std::uint64_t log = store->log_bytes();
  ASSERT_TRUE(store->Put(Key(1), "stable").ok());
  EXPECT_EQ(store->log_bytes(), log);  // no new record
  // ...but recency still refreshed: 1 is now most recent.
  const std::vector<Fp128> keys = LruKeys(*store);
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[1], Key(1));
}

TEST(ArtifactStoreTest, MidFileCorruptionDropsTheTailAndRepairs) {
  TempDir dir;
  const std::string v1 = "first-value";
  {
    std::unique_ptr<ArtifactStore> store = OpenOrDie(dir.path());
    ASSERT_NE(store, nullptr);
    ASSERT_TRUE(store->Put(Key(1), v1).ok());
    ASSERT_TRUE(store->Put(Key(2), "second-value").ok());
    ASSERT_TRUE(store->Put(Key(3), "third-value").ok());
  }
  const std::string path = dir.path() + "/artifacts-000001.log";
  std::string bytes = Slurp(path);
  ASSERT_FALSE(bytes.empty());
  // Flip a bit inside the second record's key: records 2 and 3 are both
  // untrusted from there on (a bad length would desynchronize the scan).
  const std::size_t record1 = 24 + v1.size() + 4;
  const std::size_t flip = 8 + record1 + 6;
  ASSERT_LT(flip, bytes.size());
  bytes[flip] ^= 0x04;
  Spew(path, bytes);

  {
    std::unique_ptr<ArtifactStore> store = OpenOrDie(dir.path());
    ASSERT_NE(store, nullptr);
    EXPECT_EQ(store->entries(), 1u);
    EXPECT_EQ(store->Get(Key(1)).value_or("MISS"), v1);
    EXPECT_FALSE(store->Get(Key(2)).has_value());
    const ArtifactStoreCounters c = store->counters();
    EXPECT_EQ(c.loaded, 1);
    EXPECT_EQ(c.corrupt_dropped, 1);
    EXPECT_EQ(c.truncated_segments, 1);
    // The file was repaired in place: truncated at the last good record.
    EXPECT_EQ(Slurp(path).size(), 8 + record1);
    // The store stays writable after repair.
    ASSERT_TRUE(store->Put(Key(2), "rewritten").ok());
  }
  // Third generation of the process: fully clean.
  std::unique_ptr<ArtifactStore> store = OpenOrDie(dir.path());
  ASSERT_NE(store, nullptr);
  EXPECT_EQ(store->entries(), 2u);
  EXPECT_EQ(store->counters().corrupt_dropped, 0);
  EXPECT_EQ(store->Get(Key(2)).value_or("MISS"), "rewritten");
}

TEST(ArtifactStoreTest, TornTailFromAKilledWriterIsCutBack) {
  TempDir dir;
  {
    std::unique_ptr<ArtifactStore> store = OpenOrDie(dir.path());
    ASSERT_NE(store, nullptr);
    ASSERT_TRUE(store->Put(Key(1), "one").ok());
    ASSERT_TRUE(store->Put(Key(2), "two").ok());
  }
  const std::string path = dir.path() + "/artifacts-000001.log";
  const std::string clean = Slurp(path);
  // Simulate a write cut mid-record: a valid record prefix with no body.
  const std::string torn = RecordFor(Key(3), "never-finished");
  Spew(path, clean + torn.substr(0, torn.size() / 2));

  std::unique_ptr<ArtifactStore> store = OpenOrDie(dir.path());
  ASSERT_NE(store, nullptr);
  EXPECT_EQ(store->entries(), 2u);
  EXPECT_FALSE(store->Get(Key(3)).has_value());
  EXPECT_EQ(store->counters().truncated_segments, 1);
  EXPECT_EQ(Slurp(path).size(), clean.size());
}

TEST(ArtifactStoreTest, VerifyReportsCorruptionWithoutModifying) {
  TempDir dir;
  {
    std::unique_ptr<ArtifactStore> store = OpenOrDie(dir.path());
    ASSERT_NE(store, nullptr);
    ASSERT_TRUE(store->Put(Key(1), "payload-one").ok());
    ASSERT_TRUE(store->Put(Key(2), "payload-two").ok());
  }
  const std::string path = dir.path() + "/artifacts-000001.log";
  {
    const Result<StoreVerifyReport> report = VerifyArtifactDir(dir.path());
    ASSERT_TRUE(report.ok()) << report.error();
    EXPECT_EQ(report->segments, 1);
    EXPECT_EQ(report->records, 2);
    EXPECT_EQ(report->bad_records, 0);
    EXPECT_EQ(report->bad_segments, 0);
  }
  std::string bytes = Slurp(path);
  bytes.back() ^= 0x01;  // break the last record's CRC
  Spew(path, bytes);
  const std::size_t size_before = Slurp(path).size();
  const Result<StoreVerifyReport> report = VerifyArtifactDir(dir.path());
  ASSERT_TRUE(report.ok()) << report.error();
  EXPECT_EQ(report->records, 1);
  EXPECT_EQ(report->bad_records, 1);
  EXPECT_NE(report->detail.find("corrupt or torn"), std::string::npos);
  // Verify is read-only — the damaged file is untouched.
  EXPECT_EQ(Slurp(path).size(), size_before);
}

TEST(ArtifactStoreTest, RefusesANewerStoreFormat) {
  TempDir dir;
  Spew(dir.path() + "/artifacts-000001.log",
       HeaderFor(kStoreVersion + 1, kArtifactVersion) +
           RecordFor(Key(1), "from-the-future"));
  ArtifactStoreOptions options;
  options.dir = dir.path();
  const Result<std::unique_ptr<ArtifactStore>> store =
      ArtifactStore::Open(std::move(options));
  ASSERT_FALSE(store.ok());
  EXPECT_NE(store.error().find("newer"), std::string::npos);
}

TEST(ArtifactStoreTest, IgnoresSegmentsWithNewerArtifactFormat) {
  TempDir dir;
  const std::string stale = dir.path() + "/artifacts-000001.log";
  Spew(stale, HeaderFor(kStoreVersion, kArtifactVersion + 1) +
                  RecordFor(Key(1), "encoded-by-a-newer-build"));
  std::unique_ptr<ArtifactStore> store = OpenOrDie(dir.path());
  ASSERT_NE(store, nullptr);
  // Entries from the incompatible segment must never be served...
  EXPECT_EQ(store->entries(), 0u);
  EXPECT_FALSE(store->Get(Key(1)).has_value());
  // ...and the store starts a fresh generation and keeps working.
  ASSERT_TRUE(store->Put(Key(2), "fresh").ok());
  EXPECT_EQ(store->Get(Key(2)).value_or("MISS"), "fresh");
  EXPECT_NE(::access(stale.c_str(), F_OK), 0);  // stale generation removed
}

TEST(ArtifactStoreTest, SweepsInterruptedCompactionScratch) {
  TempDir dir;
  const std::string tmp = dir.path() + "/artifacts-000005.log.tmp";
  Spew(tmp, "half-written compaction scratch");
  std::unique_ptr<ArtifactStore> store = OpenOrDie(dir.path());
  ASSERT_NE(store, nullptr);
  EXPECT_NE(::access(tmp.c_str(), F_OK), 0);
  EXPECT_EQ(store->entries(), 0u);
}

TEST(ArtifactStoreTest, StoresWholeArtifactEnvelopesUnchanged) {
  // The intended payload class: io/codec.h envelopes must come back byte
  // for byte, CRCs intact.
  TempDir dir;
  const std::string artifact =
      EncodeArtifact(ArtifactKind::kExploreRun, std::string(1000, '\x7f'));
  {
    std::unique_ptr<ArtifactStore> store = OpenOrDie(dir.path());
    ASSERT_NE(store, nullptr);
    ASSERT_TRUE(store->Put(Key(42), artifact).ok());
  }
  std::unique_ptr<ArtifactStore> store = OpenOrDie(dir.path());
  ASSERT_NE(store, nullptr);
  const std::optional<std::string> round = store->Get(Key(42));
  ASSERT_TRUE(round.has_value());
  EXPECT_EQ(*round, artifact);
  EXPECT_TRUE(DecodeArtifact(ArtifactKind::kExploreRun, *round).ok());
}

TEST(ArtifactStoreTest, RejectsInvalidOptions) {
  ArtifactStoreOptions empty_dir;
  EXPECT_FALSE(empty_dir.Validate().ok());
  ArtifactStoreOptions bad_ratio;
  bad_ratio.dir = "/tmp";
  bad_ratio.dead_ratio = 0.5;
  EXPECT_FALSE(bad_ratio.Validate().ok());
}

}  // namespace
}  // namespace ws
