// End-to-end smoke tests: schedule each benchmark in every mode, simulate
// against the golden interpreter, and sanity-check the paper's headline
// inequalities (spec never slower than non-spec).
#include <gtest/gtest.h>

#include "analysis/metrics.h"
#include "sched/scheduler.h"
#include "sim/stg_sim.h"
#include "stg/dot.h"
#include "suite/benchmarks.h"

namespace ws {
namespace {

ScheduleResult ScheduleBench(const Benchmark& b, SpeculationMode mode) {
  // The suite's request/response entry point; throws only via value().
  return ScheduleBenchmark(b, mode).value();
}

class SmokeTest : public ::testing::TestWithParam<const char*> {
 protected:
  static Benchmark Make(const std::string& name) {
    const int kStimuli = 8;
    const std::uint64_t kSeed = 42;
    if (name == "gcd") return MakeGcd(kStimuli, kSeed);
    if (name == "test1") return MakeTest1(kStimuli, kSeed);
    if (name == "barcode") return MakeBarcode(kStimuli, kSeed);
    if (name == "tlc") return MakeTlc(kStimuli, kSeed);
    if (name == "findmin") return MakeFindmin(kStimuli, kSeed);
    if (name == "fig4") return MakeFig4(0.6, kStimuli, kSeed);
    throw Error("unknown benchmark " + name);
  }
};

TEST_P(SmokeTest, NonSpeculativeSchedulesAndSimulates) {
  Benchmark b = Make(GetParam());
  ScheduleResult r = ScheduleBench(b, SpeculationMode::kWavesched);
  SCOPED_TRACE(StgToText(r.stg, b.graph));
  const double enc = MeasureExpectedCycles(r.stg, b.graph, b.stimuli);
  EXPECT_GT(enc, 0.0);
}

TEST_P(SmokeTest, SpeculativeSchedulesAndSimulates) {
  Benchmark b = Make(GetParam());
  ScheduleResult r = ScheduleBench(b, SpeculationMode::kWaveschedSpec);
  SCOPED_TRACE(StgToText(r.stg, b.graph));
  const double enc = MeasureExpectedCycles(r.stg, b.graph, b.stimuli);
  EXPECT_GT(enc, 0.0);
}

TEST_P(SmokeTest, SpeculationNeverSlower) {
  Benchmark b = Make(GetParam());
  ScheduleResult ws = ScheduleBench(b, SpeculationMode::kWavesched);
  ScheduleResult spec = ScheduleBench(b, SpeculationMode::kWaveschedSpec);
  const double enc_ws = MeasureExpectedCycles(ws.stg, b.graph, b.stimuli);
  const double enc_spec = MeasureExpectedCycles(spec.stg, b.graph, b.stimuli);
  EXPECT_LE(enc_spec, enc_ws + 1e-9)
      << "WS=" << enc_ws << " WS-spec=" << enc_spec;
}

INSTANTIATE_TEST_SUITE_P(Benchmarks, SmokeTest,
                         ::testing::Values("fig4", "gcd", "test1", "barcode",
                                           "tlc", "findmin"),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

}  // namespace
}  // namespace ws
