// Tests for the STG IR, its validation, rendering, and the cycle-accurate
// simulator's bookkeeping (visited trace, lifetimes, mismatch detection).
#include <gtest/gtest.h>

#include "sched/scheduler.h"
#include "sim/stg_sim.h"
#include "stg/dot.h"
#include "suite/benchmarks.h"

namespace ws {
namespace {

TEST(StgTest, AddStateAndStop) {
  Stg stg("t");
  const StateId s0 = stg.AddState();
  const StateId stop = stg.AddStopState();
  EXPECT_EQ(stg.entry(), s0);
  EXPECT_EQ(stg.stop(), stop);
  EXPECT_TRUE(stg.state(stop).is_stop);
  EXPECT_EQ(stg.num_states(), 2u);
  EXPECT_EQ(stg.num_work_states(), 1u);
  // Idempotent stop creation.
  EXPECT_EQ(stg.AddStopState(), stop);
}

TEST(StgTest, ValidateRejectsDeadEnds) {
  Stg stg("t");
  const StateId s0 = stg.AddState();
  stg.AddStopState();
  (void)s0;
  // s0 has no outgoing transition.
  EXPECT_THROW(stg.Validate(), Error);
}

TEST(StgTest, InstRefRendering) {
  Benchmark b = MakeFig4(0.5, 2, 1);
  // Find the ++1 node.
  NodeId inc;
  for (const Node& n : b.graph.nodes()) {
    if (n.kind == OpKind::kInc) inc = n.id;
  }
  EXPECT_EQ(InstRefToString(b.graph, InstRef{inc, 2, 0}), "++1_2");
  EXPECT_EQ(InstRefToString(b.graph, InstRef{inc, 2, 1}), "++1_2.1");
}

TEST(StgTest, TextAndDotRendering) {
  Benchmark b = MakeFig4(0.6, 2, 1);
  SchedulerOptions opts;
  opts.mode = SpeculationMode::kWaveschedSpec;
  opts.lookahead = 2;
  const ScheduleResult r = Schedule({&b.graph, &b.library, &b.allocation, opts}).value();
  const std::string text = StgToText(r.stg, b.graph);
  EXPECT_NE(text.find("STOP"), std::string::npos);
  EXPECT_NE(text.find("/"), std::string::npos);  // speculative annotation
  const std::string dot = StgToDot(r.stg, b.graph);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
}

TEST(StgSimTest, RecordsVisitedSequence) {
  Benchmark b = MakeGcd(1, 5);
  Stimulus st;
  st.inputs[b.graph.inputs()[0]] = 12;
  st.inputs[b.graph.inputs()[1]] = 8;
  SchedulerOptions opts;
  opts.mode = SpeculationMode::kWavesched;
  opts.lookahead = 2;
  const ScheduleResult r = Schedule({&b.graph, &b.library, &b.allocation, opts}).value();
  StgSimOptions so;
  so.record_visited = true;
  const StgSimResult sim = SimulateStg(r.stg, b.graph, st, so);
  EXPECT_EQ(static_cast<std::int64_t>(sim.visited.size()), sim.cycles);
  EXPECT_EQ(sim.visited.front(), r.stg.entry());
}

TEST(StgSimTest, LifetimesArePlausible) {
  Benchmark b = MakeGcd(1, 5);
  Stimulus st;
  st.inputs[b.graph.inputs()[0]] = 48;
  st.inputs[b.graph.inputs()[1]] = 18;
  SchedulerOptions opts;
  opts.mode = SpeculationMode::kWavesched;
  opts.lookahead = 2;
  const ScheduleResult r = Schedule({&b.graph, &b.library, &b.allocation, opts}).value();
  StgSimOptions so;
  so.record_lifetimes = true;
  const StgSimResult sim = SimulateStg(r.stg, b.graph, st, so);
  EXPECT_FALSE(sim.lifetimes.empty());
  for (const auto& [key, life] : sim.lifetimes) {
    EXPECT_LE(life.first, life.second);
    EXPECT_LT(life.second, sim.cycles);
  }
}

TEST(StgSimTest, MaxCyclesGuard) {
  Benchmark b = MakeGcd(1, 5);
  Stimulus st;
  st.inputs[b.graph.inputs()[0]] = 1;
  st.inputs[b.graph.inputs()[1]] = 255;  // many iterations
  SchedulerOptions opts;
  opts.mode = SpeculationMode::kWavesched;
  opts.lookahead = 2;
  const ScheduleResult r = Schedule({&b.graph, &b.library, &b.allocation, opts}).value();
  StgSimOptions so;
  so.max_cycles = 10;
  EXPECT_THROW(SimulateStg(r.stg, b.graph, st, so), Error);
}

TEST(StgSimTest, MeasureChecksOutputsAgainstInterpreter) {
  Benchmark b = MakeGcd(6, 5);
  SchedulerOptions opts;
  opts.mode = SpeculationMode::kWaveschedSpec;
  opts.lookahead = 2;
  ScheduleResult r = Schedule({&b.graph, &b.library, &b.allocation, opts}).value();
  // Sanity path first.
  EXPECT_GT(MeasureExpectedCycles(r.stg, b.graph, b.stimuli), 0.0);
  // Corrupt every stop-edge output binding: the cross-check must fire on
  // whichever exit path a stimulus takes. Pointing the output at the raw x
  // input yields a wrong value whenever gcd(x, y) != x.
  bool corrupted = false;
  for (std::size_t i = 0; i < r.stg.num_states(); ++i) {
    State& s = r.stg.state(StateId(static_cast<std::uint32_t>(i)));
    for (Transition& t : s.out) {
      for (OutputBinding& ob : t.outputs) {
        ob.value = InstRef{b.graph.inputs()[0], 0, 0};
        corrupted = true;
      }
    }
  }
  ASSERT_TRUE(corrupted);
  EXPECT_THROW(MeasureExpectedCycles(r.stg, b.graph, b.stimuli), Error);
}

TEST(StgSimTest, StimulusGenerationIsDeterministic) {
  const Benchmark a = MakeFindmin(5, 99);
  const Benchmark b = MakeFindmin(5, 99);
  ASSERT_EQ(a.stimuli.size(), b.stimuli.size());
  for (std::size_t i = 0; i < a.stimuli.size(); ++i) {
    EXPECT_EQ(a.stimuli[i].inputs, b.stimuli[i].inputs);
    EXPECT_EQ(a.stimuli[i].arrays, b.stimuli[i].arrays);
  }
}

TEST(GenerateStimuliTest, RespectsSpecs) {
  Benchmark b = MakeFindmin(1, 1);
  StimulusSpec spec;
  spec.default_spec.kind = StimulusSpec::Kind::kConstant;
  spec.default_spec.lo = 42;
  Rng rng(1);
  const auto stimuli = GenerateStimuli(b.graph, spec, 3, rng);
  ASSERT_EQ(stimuli.size(), 3u);
  for (const Stimulus& st : stimuli) {
    for (const auto& [in, v] : st.inputs) EXPECT_EQ(v, 42);
    for (const auto& [arr, contents] : st.arrays) {
      for (const auto v : contents) EXPECT_EQ(v, 42);
    }
  }
}

}  // namespace
}  // namespace ws
