// Standalone (non-gtest) policy sweep smoke check: gcd under all four
// selection policies in both speculative modes. Every cell must schedule,
// the default policy must reproduce itself across a parallel re-run, and
// policies must actually be plumbed through to the runs. Used directly as a
// smoke test and as a workload of the sanitizer sub-builds
// (tests/run_tsan_check.cmake), where the policy objects are exercised from
// concurrent shared-nothing workers.
#include <cstdio>
#include <string>

#include "explore/explore.h"
#include "explore/report.h"
#include "sched/policy.h"

int main() {
  using namespace ws;

  ExploreSpec spec;
  spec.designs = {{"gcd", ""}};
  spec.modes = {SpeculationMode::kWavesched, SpeculationMode::kWaveschedSpec};
  spec.policies = {SelectionPolicy::kCriticality,
                   SelectionPolicy::kProbabilityOnly,
                   SelectionPolicy::kPathLengthOnly, SelectionPolicy::kFifo};
  spec.num_stimuli = 10;
  spec.seed = 1998;
  spec.workers = 4;

  ReportRenderOptions render;
  render.include_timing = false;

  const Result<ExploreReport> report = RunExplore(spec);
  if (!report.ok()) {
    std::fprintf(stderr, "FAIL: %s\n", report.error().c_str());
    return 1;
  }
  std::size_t cells = 0;
  for (const ExploreRun& run : report->runs) {
    if (!run.ok) {
      std::fprintf(stderr, "FAIL: gcd/%s/%s: %s\n",
                   SpeculationModeName(run.mode),
                   SelectionPolicyName(run.policy), run.error.c_str());
      return 1;
    }
    ++cells;
  }
  if (cells != spec.modes.size() * spec.policies.size()) {
    std::fprintf(stderr, "FAIL: expected %zu cells, got %zu\n",
                 spec.modes.size() * spec.policies.size(), cells);
    return 1;
  }
  // Each policy must surface in the report under its own label (the grid is
  // really sweeping the policy axis, not re-running the default).
  for (const SelectionPolicy policy : spec.policies) {
    if (report->Find("gcd", SpeculationMode::kWaveschedSpec, "default",
                     "default", policy) == nullptr) {
      std::fprintf(stderr, "FAIL: no run recorded for policy %s\n",
                   SelectionPolicyName(policy));
      return 1;
    }
  }

  // The default policy's cells must be stable across a second (parallel)
  // sweep — the tie-break determinism the engine guarantees.
  const std::string first = ExploreReportToJson(*report, render);
  const Result<ExploreReport> again = RunExplore(spec);
  if (!again.ok()) {
    std::fprintf(stderr, "FAIL: re-run: %s\n", again.error().c_str());
    return 1;
  }
  const std::string second = ExploreReportToJson(*again, render);
  if (first != second) {
    std::fprintf(stderr,
                 "FAIL: policy sweep not deterministic across runs "
                 "(%zu vs %zu bytes)\n",
                 first.size(), second.size());
    return 1;
  }

  std::printf("OK: gcd x {crit,prob,lambda,fifo} x {ws,spec} scheduled and "
              "deterministic (%zu cells, %zu bytes)\n",
              cells, first.size());
  return 0;
}
