// Standalone (non-gtest) mem_spec sweep check: the three memory-
// disambiguation workloads across the {off,on} mem_spec axis and two
// selection policies, fanned out through the exploration engine. Every cell
// must schedule, every grid coordinate must surface in the report under its
// own mem_spec label, the speculative cells must not regress the
// conservative ones, and the whole report must be byte-stable across a
// parallel re-run.
#include <cstdio>
#include <string>

#include "explore/explore.h"
#include "explore/report.h"
#include "sched/policy.h"

int main() {
  using namespace ws;

  ExploreSpec spec;
  spec.designs = {{"histogram", ""}, {"sieve", ""}, {"sparse_accum", ""}};
  spec.modes = {SpeculationMode::kWaveschedSpec};
  spec.policies = {SelectionPolicy::kCriticality, SelectionPolicy::kFifo};
  spec.mem_specs = {false, true};
  spec.num_stimuli = 6;
  spec.seed = 1998;
  spec.workers = 4;

  ReportRenderOptions render;
  render.include_timing = false;

  const Result<ExploreReport> report = RunExplore(spec);
  if (!report.ok()) {
    std::fprintf(stderr, "FAIL: %s\n", report.error().c_str());
    return 1;
  }
  const std::size_t expect = spec.designs.size() * spec.policies.size() *
                             spec.mem_specs.size();
  if (report->runs.size() != expect) {
    std::fprintf(stderr, "FAIL: expected %zu cells, got %zu\n", expect,
                 report->runs.size());
    return 1;
  }
  for (const ExploreRun& run : report->runs) {
    if (!run.ok) {
      std::fprintf(stderr, "FAIL: %s/%s/mem_spec=%d: %s\n",
                   run.design.c_str(), SelectionPolicyName(run.policy),
                   run.mem_spec ? 1 : 0, run.error.c_str());
      return 1;
    }
  }
  // Both mem_spec coordinates must be findable per cell — the grid really
  // sweeps the axis — and relaxing the memory order must never cost cycles
  // on these workloads.
  for (const DesignSpec& d : spec.designs) {
    for (const SelectionPolicy policy : spec.policies) {
      const ExploreRun* off =
          report->Find(d.name, SpeculationMode::kWaveschedSpec, "default",
                       "default", policy, false);
      const ExploreRun* on =
          report->Find(d.name, SpeculationMode::kWaveschedSpec, "default",
                       "default", policy, true);
      if (off == nullptr || on == nullptr) {
        std::fprintf(stderr, "FAIL: %s/%s: missing mem_spec coordinate\n",
                     d.name.c_str(), SelectionPolicyName(policy));
        return 1;
      }
      if (policy == SelectionPolicy::kCriticality &&
          on->enc_sim > off->enc_sim) {
        std::fprintf(stderr,
                     "FAIL: %s: mem_spec=on regressed E.N.C. "
                     "(%.1f > %.1f)\n",
                     d.name.c_str(), on->enc_sim, off->enc_sim);
        return 1;
      }
    }
  }

  // Byte-stable across a second parallel sweep.
  const std::string first = ExploreReportToJson(*report, render);
  const Result<ExploreReport> again = RunExplore(spec);
  if (!again.ok()) {
    std::fprintf(stderr, "FAIL: re-run: %s\n", again.error().c_str());
    return 1;
  }
  const std::string second = ExploreReportToJson(*again, render);
  if (first != second) {
    std::fprintf(stderr,
                 "FAIL: mem_spec sweep not deterministic across runs "
                 "(%zu vs %zu bytes)\n",
                 first.size(), second.size());
    return 1;
  }

  std::printf("OK: {histogram,sieve,sparse_accum} x {off,on} x "
              "{crit,fifo} scheduled, no regressions, deterministic "
              "(%zu cells, %zu bytes)\n",
              report->runs.size(), first.size());
  return 0;
}
