// Field sensitivity of the ScheduleRequest fingerprint — the durable
// artifact store's key. Table-driven: a canonical request is rebuilt from a
// parameter block, each parameter is perturbed in turn, and every
// perturbation must move the fingerprint (a collision here would let the
// store serve a stale artifact for a changed design). A deep-copied request
// must reproduce the fingerprint bit for bit.
#include <gtest/gtest.h>

#include <chrono>
#include <functional>
#include <string>
#include <vector>

#include "cdfg/builder.h"
#include "hw/resources.h"
#include "sched/closure.h"
#include "sched/scheduler.h"

namespace ws {
namespace {

// Everything fingerprint-relevant a request is built from. One field per
// schedule- or artifact-affecting input.
struct RequestParams {
  // Graph.
  std::string graph_name = "fp_probe";
  std::string node_name = "*1";
  std::string loop_name = "main";
  std::string array_name = "mem";
  int array_size = 8;
  std::int64_t array_init = 3;
  std::int64_t const_value = 5;
  double cond_prob = 0.7;
  bool extra_output = false;

  // Library: one extra unit type on top of the paper library.
  std::string fu_name = "xfu";
  int fu_latency = 1;
  bool fu_pipelined = false;
  double fu_delay_ns = 0.8;
  double fu_area = 10.0;

  // Allocation bound for that unit.
  int fu_count = 2;

  // Scheduler options.
  SpeculationMode mode = SpeculationMode::kWaveschedSpec;
  SelectionPolicy policy = SelectionPolicy::kCriticality;
  double period_ns = 1.0;
  bool allow_chaining = true;
  int lookahead = 8;
  int gc_window = 4;
  int max_states = 2000;
  int max_ops_per_state = 256;
  bool mem_spec = false;
  int lsq_depth = 4;
};

Cdfg BuildGraph(const RequestParams& p) {
  CdfgBuilder b(p.graph_name);
  NodeId k = b.Input("k");
  NodeId zero = b.Konst(0);
  NodeId cst = b.Konst(p.const_value);
  ArrayId arr = b.Array(p.array_name, p.array_size, {p.array_init});
  b.BeginLoop(p.loop_name);
  NodeId i = b.LoopPhi("i", zero);
  NodeId acc = b.LoopPhi("acc", zero);
  NodeId c = b.Op(OpKind::kGt, ">1", {k, i});
  b.SetLoopCondition(c);
  NodeId m = b.MemRead("rd1", arr, i);
  NodeId prod = b.Op(OpKind::kMul, p.node_name, {m, cst});
  NodeId accn = b.Op(OpKind::kAdd, "+1", {acc, prod});
  NodeId i1 = b.Op(OpKind::kInc, "++1", {i});
  b.SetLoopBack(i, i1);
  b.SetLoopBack(acc, accn);
  b.EndLoop();
  b.Output("acc_out", acc);
  if (p.extra_output) b.Output("i_out", i);
  Cdfg g = b.Finish();
  g.set_cond_probability(c, p.cond_prob);
  return g;
}

FuLibrary BuildLibrary(const RequestParams& p) {
  FuLibrary lib = FuLibrary::PaperLibrary();
  FuType extra;
  extra.name = p.fu_name;
  extra.latency = p.fu_latency;
  extra.pipelined = p.fu_pipelined;
  extra.delay_ns = p.fu_delay_ns;
  extra.area = p.fu_area;
  lib.AddType(extra);
  return lib;
}

Fp128 FingerprintOf(const RequestParams& p) {
  const Cdfg graph = BuildGraph(p);
  const FuLibrary lib = BuildLibrary(p);
  Allocation alloc = Allocation::Unlimited(lib);
  alloc.Set(lib, p.fu_name, p.fu_count);
  SchedulerOptions options;
  options.mode = p.mode;
  options.policy = p.policy;
  options.clock.period_ns = p.period_ns;
  options.clock.allow_chaining = p.allow_chaining;
  options.lookahead = p.lookahead;
  options.gc_window = p.gc_window;
  options.max_states = p.max_states;
  options.max_ops_per_state = p.max_ops_per_state;
  options.mem_spec = p.mem_spec;
  options.lsq_depth = p.lsq_depth;
  ScheduleRequest request;
  request.graph = &graph;
  request.library = &lib;
  request.allocation = &alloc;
  request.options = options;
  return FingerprintScheduleRequest(request);
}

TEST(FingerprintTest, RebuildingTheSameRequestReproducesItBitForBit) {
  const RequestParams p;
  const Fp128 a = FingerprintOf(p);
  const Fp128 b = FingerprintOf(p);
  EXPECT_EQ(a.lo, b.lo);
  EXPECT_EQ(a.hi, b.hi);
}

TEST(FingerprintTest, DeepCopiedRequestReproducesTheFingerprint) {
  const RequestParams p;
  const Cdfg graph = BuildGraph(p);
  const FuLibrary lib = BuildLibrary(p);
  Allocation alloc = Allocation::Unlimited(lib);
  alloc.Set(lib, p.fu_name, p.fu_count);
  ScheduleRequest request;
  request.graph = &graph;
  request.library = &lib;
  request.allocation = &alloc;

  // Deep copies at a different address must hash identically: the
  // fingerprint reads values, never identities.
  const Cdfg graph2 = graph;
  const FuLibrary lib2 = lib;
  const Allocation alloc2 = alloc;
  ScheduleRequest request2;
  request2.graph = &graph2;
  request2.library = &lib2;
  request2.allocation = &alloc2;

  const Fp128 a = FingerprintScheduleRequest(request);
  const Fp128 b = FingerprintScheduleRequest(request2);
  EXPECT_EQ(a.lo, b.lo);
  EXPECT_EQ(a.hi, b.hi);
}

TEST(FingerprintTest, EveryFieldPerturbationMovesTheFingerprint) {
  struct Case {
    const char* field;
    std::function<void(RequestParams&)> perturb;
  };
  const std::vector<Case> cases = {
      {"graph_name", [](RequestParams& p) { p.graph_name = "fp_probe2"; }},
      {"node_name", [](RequestParams& p) { p.node_name = "*2"; }},
      {"loop_name", [](RequestParams& p) { p.loop_name = "outer"; }},
      {"array_name", [](RequestParams& p) { p.array_name = "rom"; }},
      {"array_size", [](RequestParams& p) { p.array_size = 16; }},
      {"array_init", [](RequestParams& p) { p.array_init = 4; }},
      {"const_value", [](RequestParams& p) { p.const_value = 6; }},
      {"cond_prob", [](RequestParams& p) { p.cond_prob = 0.71; }},
      {"graph_shape", [](RequestParams& p) { p.extra_output = true; }},
      {"fu_name", [](RequestParams& p) { p.fu_name = "yfu"; }},
      {"fu_latency", [](RequestParams& p) { p.fu_latency = 2; }},
      {"fu_pipelined", [](RequestParams& p) { p.fu_pipelined = true; }},
      {"fu_delay_ns", [](RequestParams& p) { p.fu_delay_ns = 0.9; }},
      {"fu_area", [](RequestParams& p) { p.fu_area = 11.0; }},
      {"fu_count", [](RequestParams& p) { p.fu_count = 1; }},
      {"mode", [](RequestParams& p) { p.mode = SpeculationMode::kWavesched; }},
      {"policy",
       [](RequestParams& p) { p.policy = SelectionPolicy::kFifo; }},
      {"period_ns", [](RequestParams& p) { p.period_ns = 2.0; }},
      {"allow_chaining", [](RequestParams& p) { p.allow_chaining = false; }},
      {"lookahead", [](RequestParams& p) { p.lookahead = 9; }},
      {"gc_window", [](RequestParams& p) { p.gc_window = 5; }},
      {"max_states", [](RequestParams& p) { p.max_states = 1999; }},
      {"max_ops_per_state", [](RequestParams& p) { p.max_ops_per_state = 255; }},
      {"mem_spec", [](RequestParams& p) { p.mem_spec = true; }},
      {"lsq_depth", [](RequestParams& p) { p.lsq_depth = 5; }},
  };

  const Fp128 base = FingerprintOf(RequestParams{});
  for (const Case& c : cases) {
    RequestParams p;
    c.perturb(p);
    const Fp128 moved = FingerprintOf(p);
    EXPECT_TRUE(moved.lo != base.lo || moved.hi != base.hi)
        << "perturbing " << c.field << " did not change the fingerprint — "
        << "the store would serve a stale artifact for this change";
  }
}

TEST(FingerprintTest, DeadlineAndCancelAreDeliberatelyExcluded) {
  // Per-call bounds do not shape the result; a deadline-bounded request must
  // hit artifacts cached by unbounded runs.
  const RequestParams p;
  const Cdfg graph = BuildGraph(p);
  const FuLibrary lib = BuildLibrary(p);
  const Allocation alloc = Allocation::Unlimited(lib);
  ScheduleRequest request;
  request.graph = &graph;
  request.library = &lib;
  request.allocation = &alloc;
  const Fp128 a = FingerprintScheduleRequest(request);
  request.options.deadline = std::chrono::steady_clock::now();
  const Fp128 b = FingerprintScheduleRequest(request);
  EXPECT_EQ(a.lo, b.lo);
  EXPECT_EQ(a.hi, b.hi);
}

}  // namespace
}  // namespace ws
