#include "base/thread_pool.h"

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "base/status.h"

namespace ws {
namespace {

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, ZeroWorkersRunsInline) {
  ThreadPool pool(0);
  int count = 0;  // no synchronization needed: inline execution
  for (int i = 0; i < 10; ++i) {
    pool.Submit([&count] { ++count; });
  }
  EXPECT_EQ(count, 10);
  pool.Wait();
  EXPECT_EQ(count, 10);
}

TEST(ThreadPoolTest, ResultSlotsSeeNoRaces) {
  ThreadPool pool(4);
  std::vector<std::int64_t> slots(200, 0);
  for (std::size_t i = 0; i < slots.size(); ++i) {
    pool.Submit([&slots, i] { slots[i] = static_cast<std::int64_t>(i * i); });
  }
  pool.Wait();
  for (std::size_t i = 0; i < slots.size(); ++i) {
    EXPECT_EQ(slots[i], static_cast<std::int64_t>(i * i));
  }
}

TEST(ThreadPoolTest, WaitRethrowsFirstTaskException) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int i = 0; i < 10; ++i) {
    pool.Submit([&count, i] {
      if (i == 3) throw std::runtime_error("task 3 failed");
      count.fetch_add(1, std::memory_order_relaxed);
    });
  }
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  // The error is delivered once; subsequent waits succeed.
  pool.Wait();
  EXPECT_EQ(count.load(), 9);
}

TEST(ThreadPoolTest, InlineModeAlsoCapturesExceptions) {
  ThreadPool pool(0);
  pool.Submit([] { throw std::runtime_error("inline failure"); });
  EXPECT_THROW(pool.Wait(), std::runtime_error);
}

TEST(ThreadPoolTest, ShutdownDrainsQueuedTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.Shutdown();
    EXPECT_EQ(count.load(), 50);
  }
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
    }
  }
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPoolTest, SubmitAfterShutdownThrows) {
  ThreadPool pool(1);
  pool.Shutdown();
  EXPECT_THROW(pool.Submit([] {}), Error);
  // Shutdown is idempotent.
  pool.Shutdown();
}

}  // namespace
}  // namespace ws
