// The request/response scheduling API: SchedulerOptions validation, the
// Result-returning Schedule entry point, and the .value() bridge back into
// the throwing world.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>

#include "base/status.h"
#include "sched/scheduler.h"
#include "stg/dot.h"
#include "suite/benchmarks.h"

namespace ws {
namespace {

TEST(SchedulerOptionsTest, DefaultIsValid) {
  EXPECT_TRUE(SchedulerOptions{}.Validate().ok());
}

TEST(SchedulerOptionsTest, RejectsNegativeLookahead) {
  SchedulerOptions opts;
  opts.lookahead = -1;
  const Status s = opts.Validate();
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("lookahead"), std::string::npos);
}

TEST(SchedulerOptionsTest, RejectsGcWindowBelowOne) {
  SchedulerOptions opts;
  opts.gc_window = 0;
  const Status s = opts.Validate();
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("gc_window"), std::string::npos);
}

TEST(SchedulerOptionsTest, RejectsMaxStatesBelowOne) {
  SchedulerOptions opts;
  opts.max_states = 0;
  const Status s = opts.Validate();
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("max_states"), std::string::npos);
}

TEST(SchedulerOptionsTest, RejectsNegativeWaveWorkers) {
  SchedulerOptions opts;
  opts.wave_workers = -1;
  const Status s = opts.Validate();
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("wave_workers"), std::string::npos);
}

TEST(SchedulerOptionsTest, RejectsNonPositiveClockPeriod) {
  SchedulerOptions opts;
  opts.clock.period_ns = 0.0;
  EXPECT_FALSE(opts.Validate().ok());
}

TEST(ScheduleTest, NullGraphIsAnErrorNotAThrow) {
  ScheduleRequest req;  // all pointers null
  const Result<ScheduleReport> r = Schedule(req);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().find("graph"), std::string::npos);
}

TEST(ScheduleTest, InvalidOptionsAreAnError) {
  const Benchmark b = MakeBenchmarkByName("gcd", 1, 1998).value();
  ScheduleRequest req{&b.graph, &b.library, &b.allocation, {}};
  req.options.lookahead = -5;
  const Result<ScheduleReport> r = Schedule(req);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().find("lookahead"), std::string::npos);
}

TEST(ScheduleTest, ExhaustedStateCapIsAnError) {
  const Benchmark b = MakeBenchmarkByName("gcd", 1, 1998).value();
  ScheduleRequest req{&b.graph, &b.library, &b.allocation, {}};
  req.options.lookahead = b.lookahead;
  req.options.max_states = 1;  // closure can never be reached
  const Result<ScheduleReport> r = Schedule(req);
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(r.error().empty());
}

TEST(ScheduleTest, FillsInstrumentation) {
  const Benchmark b = MakeBenchmarkByName("tlc", 1, 1998).value();
  ScheduleRequest req{&b.graph, &b.library, &b.allocation, {}};
  req.options.lookahead = b.lookahead;
  const Result<ScheduleReport> r = Schedule(req);
  ASSERT_TRUE(r.ok()) << r.error();
  EXPECT_GT(r->stats.candidates_generated, 0);
  EXPECT_GT(r->stats.bdd_nodes, 0u);
  EXPECT_GT(r->stats.phase.total_ns, 0);
}

TEST(ScheduleTest, ValueBridgesIntoTheThrowingWorld) {
  const Benchmark b = MakeBenchmarkByName("gcd", 1, 1998).value();
  SchedulerOptions opts;
  opts.max_states = 0;
  EXPECT_THROW(Schedule({&b.graph, &b.library, &b.allocation, opts}).value(),
               Error);
}

TEST(ScheduleTest, WaveWorkersDoNotPerturbTheSchedule) {
  const Benchmark b = MakeBenchmarkByName("findmin", 1, 1998).value();
  SchedulerOptions opts;
  opts.lookahead = b.lookahead;

  ScheduleRequest req{&b.graph, &b.library, &b.allocation, opts};
  const Result<ScheduleReport> r = Schedule(req);
  ASSERT_TRUE(r.ok()) << r.error();

  ScheduleRequest threaded = req;
  threaded.options.wave_workers = 2;
  const Result<ScheduleReport> p = Schedule(threaded);
  ASSERT_TRUE(p.ok()) << p.error();
  EXPECT_EQ(StgToText(r->stg, b.graph), StgToText(p->stg, b.graph));
  EXPECT_EQ(r->stats.states_created, p->stats.states_created);
  EXPECT_EQ(r->stats.total_ops, p->stats.total_ops);
}

TEST(CancellationTest, ExpiredDeadlineIsTypedError) {
  const Benchmark b = MakeBenchmarkByName("gcd", 1, 1998).value();
  ScheduleRequest req{&b.graph, &b.library, &b.allocation, {}};
  req.options.lookahead = b.lookahead;
  req.options.deadline = std::chrono::steady_clock::now();  // already over
  const Result<ScheduleReport> r = Schedule(req);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(r.error().find("deadline"), std::string::npos);
}

TEST(CancellationTest, PresetCancelFlagIsTypedError) {
  const Benchmark b = MakeBenchmarkByName("gcd", 1, 1998).value();
  std::atomic<bool> cancel{true};
  ScheduleRequest req{&b.graph, &b.library, &b.allocation, {}};
  req.options.lookahead = b.lookahead;
  req.options.cancel = &cancel;
  const Result<ScheduleReport> r = Schedule(req);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCancelled);
}

TEST(CancellationTest, UnsetCancelFlagDoesNotPerturbTheSchedule) {
  const Benchmark b = MakeBenchmarkByName("tlc", 1, 1998).value();
  ScheduleRequest plain{&b.graph, &b.library, &b.allocation, {}};
  plain.options.lookahead = b.lookahead;

  std::atomic<bool> cancel{false};
  ScheduleRequest guarded = plain;
  guarded.options.cancel = &cancel;
  guarded.options.deadline =
      std::chrono::steady_clock::now() + std::chrono::hours(1);

  const Result<ScheduleReport> a = Schedule(plain);
  const Result<ScheduleReport> c = Schedule(guarded);
  ASSERT_TRUE(a.ok()) << a.error();
  ASSERT_TRUE(c.ok()) << c.error();
  EXPECT_EQ(StgToText(a->stg, b.graph), StgToText(c->stg, b.graph));
}

TEST(CancellationTest, ValueThrowsTypedExceptions) {
  const Benchmark b = MakeBenchmarkByName("gcd", 1, 1998).value();
  SchedulerOptions opts;
  opts.lookahead = b.lookahead;
  opts.deadline = std::chrono::steady_clock::now();
  EXPECT_THROW(Schedule({&b.graph, &b.library, &b.allocation, opts}).value(),
               DeadlineExceededError);

  std::atomic<bool> cancel{true};
  SchedulerOptions copts;
  copts.lookahead = b.lookahead;
  copts.cancel = &cancel;
  EXPECT_THROW(
      Schedule({&b.graph, &b.library, &b.allocation, copts}).value(),
      CancelledError);
}

TEST(ResultTest, ValueAndErrorAccessors) {
  Result<int> good(42);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 42);
  EXPECT_EQ(good.value(), 42);

  Result<int> bad(Status::MakeError("boom"));
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.error(), "boom");
  EXPECT_THROW(bad.value(), Error);
}

}  // namespace
}  // namespace ws
