// Loopback stress check for the scheduling service, run both natively and
// under the TSan sub-build (tests/run_tsan_check.cmake).
//
// Drives an in-process server over a Unix domain socket with concurrent
// clients and a mixed workload — repeated cacheable requests, invalid
// designs, tight deadlines, and a deliberate queue-overflow burst against a
// second tiny-queue server — and asserts the service's core contract:
//   * exactly one typed response per request
//     (Ok / InvalidRequest / DeadlineExceeded / Overloaded);
//   * the result cache gets hits (repeated requests don't recompute);
//   * the overflow burst sheds with typed Overloaded, not hangs or drops;
//   * the remote explore backend is byte-identical to the in-process one;
//   * shutdown drains cleanly with clients still connected.
// Exits 0 on success; prints the first failure and exits 1 otherwise.
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "adapt/profile.h"
#include "explore/explore.h"
#include "explore/report.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"

namespace {

using namespace ws;

int g_failures = 0;

#define CHECK_TRUE(cond, what)                                       \
  do {                                                               \
    if (!(cond)) {                                                   \
      std::fprintf(stderr, "FAIL %s:%d: %s\n", __FILE__, __LINE__, what); \
      ++g_failures;                                                  \
    }                                                                \
  } while (0)

std::string SocketPath(const char* tag) {
  return "/tmp/ws_stress_" + std::string(tag) + "_" +
         std::to_string(::getpid()) + ".sock";
}

struct ResponseTally {
  std::atomic<int> ok{0};
  std::atomic<int> cache_hits{0};
  std::atomic<int> invalid{0};
  std::atomic<int> deadline{0};
  std::atomic<int> overloaded{0};
  std::atomic<int> internal{0};
  std::atomic<int> transport{0};

  int responses() const {
    return ok + invalid + deadline + overloaded + internal;
  }
};

void Tally(const Result<ScheduleArtifact>& artifact, ResponseTally* tally) {
  if (artifact.ok()) {
    ++tally->ok;
    if (artifact->cache_hit) ++tally->cache_hits;
    return;
  }
  switch (artifact.status().code()) {
    case StatusCode::kInvalidArgument: ++tally->invalid; break;
    case StatusCode::kDeadlineExceeded: ++tally->deadline; break;
    case StatusCode::kOverloaded: ++tally->overloaded; break;
    case StatusCode::kInternal: ++tally->internal; break;
    default:
      std::fprintf(stderr, "transport error: %s\n", artifact.error().c_str());
      ++tally->transport;
  }
}

// Phase 1: 8 clients x 28 requests of mixed traffic against a comfortably
// provisioned server. Every request must come back with exactly one typed
// response, and the repeated cells must hit the cache. Swept over shard
// counts: the contract may not depend on how workers are sharded.
void MixedWorkload(int shards) {
  ServerOptions options;
  options.unix_path =
      SocketPath(("mixed" + std::to_string(shards)).c_str());
  options.shards = shards;
  options.workers = 4;
  options.max_queue = 64;
  ServeServer server(options);
  const Status started = server.Start();
  CHECK_TRUE(started.ok(), started.message().c_str());
  if (!started.ok()) return;
  const ServeAddress address{/*is_unix=*/true, options.unix_path, "", 0};

  constexpr int kClients = 8;
  constexpr int kPerClient = 28;  // 224 requests total
  ResponseTally tally;

  // PROFILE reporters ride along with the scheduling traffic: observed
  // branch outcomes for the shared gcd cell, built the way `ws_client
  // profile` builds them. The adapt lane is low-priority, so the reports
  // must not perturb any of the response-contract assertions below.
  CellRequest profiled;
  profiled.design = DesignSpec{"gcd", ""};
  profiled.num_stimuli = 5;
  const Result<Benchmark> profiled_bench =
      BuildExploreDesign(profiled.design, profiled.ToSpec());
  CHECK_TRUE(profiled_bench.ok(), "mixed: profile benchmark build");
  const BranchProfile observed =
      profiled_bench.ok()
          ? ProfileFromInterp(profiled_bench->graph, profiled_bench->stimuli)
          : BranchProfile{};
  std::atomic<int> reports_accepted{0};

  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&address, &tally, &profiled, &observed,
                          &reports_accepted, c] {
      Result<ServeClient> client = ServeClient::Connect(address);
      if (!client.ok()) {
        std::fprintf(stderr, "connect: %s\n", client.error().c_str());
        tally.transport += kPerClient;
        return;
      }
      for (int r = 0; r < kPerClient; ++r) {
        CellRequest request;
        request.num_stimuli = 5;
        switch (r % 4) {
          case 0:  // shared cacheable cell — every client repeats it
            request.design = DesignSpec{"gcd", ""};
            break;
          case 1:  // per-client cell, repeated across rounds
            request.design = DesignSpec{"tlc", ""};
            request.seed = 1998 + static_cast<std::uint64_t>(c);
            break;
          case 2:  // invalid: unknown design name
            request.design = DesignSpec{"no_such_design", ""};
            break;
          case 3:  // tight deadline; Ok or DeadlineExceeded, never silence
            request.design = DesignSpec{"gcd", ""};
            request.seed = 4000 + static_cast<std::uint64_t>(r);
            request.deadline_ms = 1;
            break;
        }
        Tally(client->Schedule(request), &tally);
        // Every other round, interleave a PROFILE report for the shared
        // cell on the same connection.
        if (r % 2 == 0 && !observed.empty()) {
          const Result<std::string> ack =
              client->ReportProfile(profiled, observed);
          if (ack.ok()) ++reports_accepted;
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();

  const int total = kClients * kPerClient;
  CHECK_TRUE(tally.transport == 0, "mixed: transport failures");
  CHECK_TRUE(tally.responses() == total,
             "mixed: response count != request count");
  CHECK_TRUE(tally.invalid == total / 4,
             "mixed: every unknown-design request must be InvalidRequest");
  CHECK_TRUE(tally.overloaded == 0,
             "mixed: provisioned server must not shed");
  CHECK_TRUE(tally.internal == 0, "mixed: internal errors");
  // Identical requests either hit the cache or coalesce onto an in-flight
  // computation; both count as served-without-recompute here.
  const std::int64_t coalesced =
      server.metrics().counter("serve.coalesced")->value();
  CHECK_TRUE(tally.cache_hits.load() + coalesced > 0,
             "mixed: no cache hits or coalesced requests");
  CHECK_TRUE(server.cache().hits() + coalesced > 0,
             "mixed: server-side hit counter");
  CHECK_TRUE(reports_accepted.load() > 0,
             "mixed: profile reports must be accepted alongside traffic");
  CHECK_TRUE(server.metrics().counter("serve.adapt_profiles")->value() ==
                 reports_accepted.load(),
             "mixed: accepted profile reports must all be counted");
  std::fprintf(stderr,
               "mixed[shards=%d]: ok=%d (hits=%d coalesced=%lld) invalid=%d "
               "deadline=%d overloaded=%d profiles=%d\n",
               shards, tally.ok.load(), tally.cache_hits.load(),
               static_cast<long long>(coalesced), tally.invalid.load(),
               tally.deadline.load(), tally.overloaded.load(),
               reports_accepted.load());

  server.Stop();
  std::remove(options.unix_path.c_str());
}

// Phase 2: a burst of concurrent, mutually distinct requests against a
// server with workers=1, max_queue=1 — most must shed with a typed
// Overloaded response while the rest complete.
void OverflowBurst() {
  ServerOptions options;
  options.unix_path = SocketPath("burst");
  options.workers = 1;
  options.max_queue = 1;
  ServeServer server(options);
  const Status started = server.Start();
  CHECK_TRUE(started.ok(), started.message().c_str());
  if (!started.ok()) return;
  const ServeAddress address{/*is_unix=*/true, options.unix_path, "", 0};

  constexpr int kBurst = 16;
  ResponseTally tally;
  std::vector<std::thread> clients;
  clients.reserve(kBurst);
  for (int c = 0; c < kBurst; ++c) {
    clients.emplace_back([&address, &tally, c] {
      Result<ServeClient> client = ServeClient::Connect(address);
      if (!client.ok()) {
        ++tally.transport;
        return;
      }
      CellRequest request;
      request.design = DesignSpec{"gcd", ""};
      request.seed = 7000 + static_cast<std::uint64_t>(c);  // defeat the cache
      request.num_stimuli = 5;
      Tally(client->Schedule(request), &tally);
    });
  }
  for (std::thread& t : clients) t.join();

  CHECK_TRUE(tally.transport == 0, "burst: transport failures");
  CHECK_TRUE(tally.responses() == kBurst,
             "burst: response count != request count");
  CHECK_TRUE(tally.ok.load() >= 1, "burst: at least one request completes");
  CHECK_TRUE(tally.overloaded.load() >= 1,
             "burst: tiny queue must shed at least one request");
  std::fprintf(stderr, "burst: ok=%d overloaded=%d\n", tally.ok.load(),
               tally.overloaded.load());

  server.Stop();
  std::remove(options.unix_path.c_str());
}

// Phase 3: the remote explore backend against the in-process engine —
// byte-identical canonical reports, concurrent connections underneath.
void RemoteByteIdentity() {
  ServerOptions options;
  options.unix_path = SocketPath("remote");
  options.workers = 4;
  ServeServer server(options);
  const Status started = server.Start();
  CHECK_TRUE(started.ok(), started.message().c_str());
  if (!started.ok()) return;

  ExploreSpec spec;
  spec.designs = {DesignSpec{"gcd", ""}, DesignSpec{"tlc", ""}};
  spec.workers = 4;
  spec.num_stimuli = 10;

  const Result<ExploreReport> local = RunExplore(spec);
  CHECK_TRUE(local.ok(), "remote: local sweep failed");
  const Result<ExploreReport> remote = RunExploreRemote(
      spec, ServeAddress{/*is_unix=*/true, options.unix_path, "", 0});
  CHECK_TRUE(remote.ok(), "remote: remote sweep failed");
  if (local.ok() && remote.ok()) {
    const ReportRenderOptions canonical{/*include_timing=*/false};
    CHECK_TRUE(ExploreReportToJson(*local, canonical) ==
                   ExploreReportToJson(*remote, canonical),
               "remote: reports differ");
  }

  server.Stop();
  std::remove(options.unix_path.c_str());
}

}  // namespace

int main() {
  MixedWorkload(/*shards=*/1);
  MixedWorkload(/*shards=*/4);
  OverflowBurst();
  RemoteByteIdentity();
  if (g_failures != 0) {
    std::fprintf(stderr, "serve_stress_check: %d failure(s)\n", g_failures);
    return 1;
  }
  std::fprintf(stderr, "serve_stress_check: OK\n");
  return 0;
}
