// Table-driven enumeration of every SchedulerOptions field Validate()
// rejects: one row per rejectable field with a representative bad value,
// the expected StatusCode, and the field name the message must cite. A new
// validated field without a row here shows up as a missing-coverage prompt
// (the AllRowsCoverDistinctFields cross-check), not silently.
#include <gtest/gtest.h>

#include <limits>
#include <set>
#include <string>
#include <vector>

#include "base/status.h"
#include "io/codec.h"
#include "sched/scheduler.h"
#include "suite/benchmarks.h"

namespace ws {
namespace {

struct RejectRow {
  const char* field;                         // cited in the error message
  void (*mutate)(SchedulerOptions*);         // makes exactly one field bad
};

const std::vector<RejectRow>& RejectTable() {
  static const std::vector<RejectRow> table = {
      {"lookahead", [](SchedulerOptions* o) { o->lookahead = -1; }},
      {"gc_window", [](SchedulerOptions* o) { o->gc_window = 0; }},
      {"max_states", [](SchedulerOptions* o) { o->max_states = 0; }},
      {"max_ops_per_state",
       [](SchedulerOptions* o) { o->max_ops_per_state = 0; }},
      {"clock", [](SchedulerOptions* o) { o->clock.period_ns = 0.0; }},
      {"lsq_depth", [](SchedulerOptions* o) { o->lsq_depth = 0; }},
  };
  return table;
}

TEST(OptionsValidateTable, DefaultPasses) {
  EXPECT_TRUE(SchedulerOptions{}.Validate().ok());
}

TEST(OptionsValidateTable, EachRejectableFieldIsRejected) {
  for (const RejectRow& row : RejectTable()) {
    SchedulerOptions options;
    row.mutate(&options);
    const Status s = options.Validate();
    ASSERT_FALSE(s.ok()) << row.field;
    EXPECT_EQ(s.code(), StatusCode::kInvalidArgument) << row.field;
    EXPECT_NE(s.message().find(row.field), std::string::npos)
        << row.field << ": message was \"" << s.message() << "\"";
  }
}

TEST(OptionsValidateTable, BoundaryValuesPass) {
  // The exact edge of each constraint is legal.
  SchedulerOptions options;
  options.lookahead = 0;
  options.gc_window = 1;
  options.max_states = 1;
  options.max_ops_per_state = 1;
  options.clock.period_ns = std::numeric_limits<double>::min();
  options.lsq_depth = 1;
  EXPECT_TRUE(options.Validate().ok());
}

TEST(OptionsValidateTable, NanClockPeriodIsRejected) {
  SchedulerOptions options;
  options.clock.period_ns = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(options.Validate().ok());
}

TEST(OptionsValidateTable, DeadlineAndCancelAreNotValidated) {
  // Cancellation plumbing bounds a call, not the configuration; an already
  // expired deadline or a set cancel flag is a runtime outcome, never a
  // validation failure.
  SchedulerOptions options;
  options.deadline = std::chrono::steady_clock::time_point{};  // long past
  static const std::atomic<bool> cancelled{true};
  options.cancel = &cancelled;
  EXPECT_TRUE(options.Validate().ok());
}

TEST(OptionsValidateTable, AllRowsCoverDistinctFields) {
  std::set<std::string> fields;
  for (const RejectRow& row : RejectTable()) {
    EXPECT_TRUE(fields.insert(row.field).second)
        << "duplicate table row for " << row.field;
  }
  EXPECT_EQ(fields.size(), 6u)
      << "SchedulerOptions::Validate rejects a new field? Add its row.";
}

TEST(OptionsValidateTable, MemSpecOnArraylessDesignIsANoOp) {
  // Turning on memory speculation for a design with no (modeled) arrays
  // must schedule exactly as if the flag were off — a silent no-op, never
  // an error. gcd has no arrays at all.
  const Benchmark gcd = MakeGcd(2, 7);
  SchedulerOptions options;
  options.mode = SpeculationMode::kWaveschedSpec;
  options.lookahead = gcd.lookahead;
  const Result<ScheduleReport> off = ScheduleBenchmark(gcd, options);
  ASSERT_TRUE(off.ok()) << off.error();
  options.mem_spec = true;
  const Result<ScheduleReport> on = ScheduleBenchmark(gcd, options);
  ASSERT_TRUE(on.ok()) << on.error();
  EXPECT_EQ(EncodeStg(off->stg), EncodeStg(on->stg));
}

}  // namespace
}  // namespace ws
