// Tests for the behavioral-language frontend: lexer, parser, lowering, and
// end-to-end semantics (compiled CDFG interpreted == expected).
#include <gtest/gtest.h>

#include "lang/lexer.h"
#include "lang/lower.h"
#include "lang/parser.h"
#include "sim/interpreter.h"

namespace ws {
namespace {

TEST(LexerTest, TokenizesOperatorsAndKeywords) {
  const auto toks = Lex("while (a <= b0) { x = x << 2; } // tail");
  std::vector<TokKind> kinds;
  for (const Token& t : toks) kinds.push_back(t.kind);
  EXPECT_EQ(kinds, (std::vector<TokKind>{
                       TokKind::kWhile, TokKind::kLParen, TokKind::kIdent,
                       TokKind::kLe, TokKind::kIdent, TokKind::kRParen,
                       TokKind::kLBrace, TokKind::kIdent, TokKind::kAssign,
                       TokKind::kIdent, TokKind::kShl, TokKind::kNumber,
                       TokKind::kSemicolon, TokKind::kRBrace,
                       TokKind::kEnd}));
}

TEST(LexerTest, TracksLinesAndRejectsGarbage) {
  const auto toks = Lex("a\nb");
  EXPECT_EQ(toks[1].line, 2);
  EXPECT_THROW(Lex("a = $;"), Error);
}

TEST(ParserTest, ParsesDeclarationsAndPrecedence) {
  const Program p = ParseProgram("t", R"(
    input a;
    array M[16] = {1, 2, 3};
    x = a + 2 * 3;
    output o = x;
  )");
  EXPECT_EQ(p.inputs.size(), 1u);
  ASSERT_EQ(p.arrays.size(), 1u);
  EXPECT_EQ(p.arrays[0].size, 16);
  EXPECT_EQ(p.arrays[0].init.size(), 3u);
  ASSERT_EQ(p.body.size(), 1u);
  // a + (2*3): the top binary is '+'.
  EXPECT_EQ(p.body[0]->value->op, "+");
  EXPECT_EQ(p.body[0]->value->rhs->op, "*");
}

TEST(ParserTest, ReportsErrorsWithLocation) {
  try {
    ParseProgram("t", "x = ;");
    FAIL() << "expected parse error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("1:5"), std::string::npos);
  }
  EXPECT_THROW(ParseProgram("t", "if x { }"), Error);
  EXPECT_THROW(ParseProgram("t", "input ;"), Error);
}

std::int64_t RunProgram(const std::string& src,
                        const std::map<std::string, std::int64_t>& ins) {
  Cdfg g = CompileBehavioral("t", src);
  Stimulus st;
  for (NodeId in : g.inputs()) {
    st.inputs[in] = ins.at(g.node(in).name);
  }
  const InterpResult r = Interpret(g, st);
  return r.outputs.begin()->second;
}

TEST(LowerTest, StraightLine) {
  EXPECT_EQ(RunProgram("input a; input b; output o = a * b + 1;",
                       {{"a", 6}, {"b", 7}}),
            43);
}

TEST(LowerTest, IfJoinSelectsCorrectArm) {
  const std::string src = R"(
    input a;
    m = 0;
    if (a > 10) { m = a - 10; } else { m = 10 - a; }
    output o = m;
  )";
  EXPECT_EQ(RunProgram(src, {{"a", 25}}), 15);
  EXPECT_EQ(RunProgram(src, {{"a", 4}}), 6);
}

TEST(LowerTest, NestedIfs) {
  const std::string src = R"(
    input a;
    r = 0;
    if (a > 0) {
      if (a > 100) { r = 2; } else { r = 1; }
    } else { r = 0 - 1; }
    output o = r;
  )";
  EXPECT_EQ(RunProgram(src, {{"a", 500}}), 2);
  EXPECT_EQ(RunProgram(src, {{"a", 5}}), 1);
  EXPECT_EQ(RunProgram(src, {{"a", -5}}), -1);
}

TEST(LowerTest, WhileLoopAccumulates) {
  const std::string src = R"(
    input n;
    i = 0; acc = 0;
    while (i < n) { acc = acc + i; i = i + 1; }
    output sum = acc;
  )";
  EXPECT_EQ(RunProgram(src, {{"n", 5}}), 10);
  EXPECT_EQ(RunProgram(src, {{"n", 0}}), 0);
}

TEST(LowerTest, SequentialLoops) {
  const std::string src = R"(
    input n;
    i = 0; a = 0;
    while (i < n) { a = a + 2; i = i + 1; }
    j = 0; b = a;
    while (j < n) { b = b + 1; j = j + 1; }
    output o = b;
  )";
  EXPECT_EQ(RunProgram(src, {{"n", 4}}), 12);
}

TEST(LowerTest, IncrementMapsToIncrementer) {
  const Cdfg g = CompileBehavioral("t", R"(
    input a;
    output o = a + 1;
  )");
  bool has_inc = false;
  for (const Node& n : g.nodes()) has_inc |= n.kind == OpKind::kInc;
  EXPECT_TRUE(has_inc);
}

TEST(LowerTest, ArraysReadWrite) {
  const std::string src = R"(
    input n;
    array A[8] = {3, 1, 4, 1, 5, 9, 2, 6};
    i = 0; acc = 0;
    while (i < n) { acc = acc + A[i]; i = i + 1; }
    A[0] = acc;
    output o = A[0];
  )";
  EXPECT_EQ(RunProgram(src, {{"n", 4}}), 9);
}

TEST(LowerTest, UndefinedVariableIsAnError) {
  EXPECT_THROW(CompileBehavioral("t", "output o = ghost;"), Error);
  EXPECT_THROW(CompileBehavioral("t", "x = y + 1; output o = x;"), Error);
}

TEST(LowerTest, OneArmedDefinitionIsPoisonAfterJoin) {
  // `m` is defined only on the then-arm and did not exist before the if;
  // using it afterwards is an error.
  EXPECT_THROW(CompileBehavioral("t", R"(
    input a;
    if (a > 0) { m = 1; }
    output o = m;
  )"),
               Error);
}

TEST(LowerTest, NestedWhileRejected) {
  EXPECT_THROW(CompileBehavioral("t", R"(
    input n;
    i = 0;
    while (i < n) {
      j = 0;
      while (j < n) { j = j + 1; }
      i = i + 1;
    }
    output o = i;
  )"),
               Error);
}

TEST(LowerTest, LoopLocalVariableOutOfScopeAfterLoop) {
  EXPECT_THROW(CompileBehavioral("t", R"(
    input n;
    i = 0;
    while (i < n) { t = i * 2; i = i + 1; }
    output o = t;
  )"),
               Error);
}

TEST(LowerTest, GcdEndToEnd) {
  const std::string src = R"(
    input x; input y;
    a = x; b = y;
    while (a != b) {
      if (a > b) { a = a - b; } else { b = b - a; }
    }
    output g = a;
  )";
  EXPECT_EQ(RunProgram(src, {{"x", 252}, {"y", 105}}), 21);
}

}  // namespace
}  // namespace ws
