// Tests for the CDFG IR, builder, and structural analyses.
#include <gtest/gtest.h>

#include "cdfg/builder.h"
#include "cdfg/dot.h"
#include "cdfg/eval.h"

namespace ws {
namespace {

Cdfg TinyLoop() {
  CdfgBuilder b("tiny");
  const NodeId n = b.Input("n");
  const NodeId zero = b.Konst(0);
  b.BeginLoop("l");
  const NodeId i = b.LoopPhi("i", zero);
  const NodeId c = b.Op(OpKind::kLt, "<1", {i, n});
  b.SetLoopCondition(c);
  const NodeId i1 = b.Op(OpKind::kInc, "++1", {i});
  b.SetLoopBack(i, i1);
  b.EndLoop();
  b.Output("count", i);
  return b.Finish();
}

TEST(CdfgBuilderTest, BuildsTinyLoop) {
  const Cdfg g = TinyLoop();
  EXPECT_EQ(g.num_loops(), 1u);
  EXPECT_EQ(g.inputs().size(), 1u);
  EXPECT_EQ(g.outputs().size(), 1u);
  const Loop& loop = g.loop(LoopId(0));
  EXPECT_TRUE(loop.cond.valid());
  EXPECT_EQ(loop.phis.size(), 1u);
}

TEST(CdfgBuilderTest, HeaderDetection) {
  const Cdfg g = TinyLoop();
  const Loop& loop = g.loop(LoopId(0));
  // The condition is a header node; the increment is body.
  EXPECT_TRUE(g.InLoopHeader(loop.cond));
  for (NodeId b : loop.body) {
    if (g.node(b).kind == OpKind::kInc) {
      EXPECT_FALSE(g.InLoopHeader(b));
    }
  }
}

TEST(CdfgBuilderTest, ConditionClassification) {
  CdfgBuilder b("conds");
  const NodeId x = b.Input("x");
  const NodeId y = b.Input("y");
  const NodeId c1 = b.Op(OpKind::kGt, "c1", {x, y});   // if-guard: control
  const NodeId c2 = b.Op(OpKind::kLt, "c2", {x, y});   // select-only: datapath
  b.BeginIf(c1);
  const NodeId s = b.Op(OpKind::kSub, "-1", {x, y});
  b.EndIf();
  const NodeId j = b.Select("j", c1, s, x);
  const NodeId k = b.Select("k", c2, j, y);
  b.Output("o", k);
  const Cdfg g = b.Finish();
  EXPECT_TRUE(g.is_condition_node(c1));
  EXPECT_TRUE(g.is_condition_node(c2));
  EXPECT_TRUE(g.is_control_condition(c1));
  EXPECT_FALSE(g.is_control_condition(c2));
}

TEST(CdfgBuilderTest, ConsumersAndArrayOrder) {
  CdfgBuilder b("mem");
  const NodeId a = b.Input("a");
  const ArrayId arr = b.Array("M", 8);
  const NodeId r1 = b.MemRead("r1", arr, a);
  const NodeId sum = b.Op(OpKind::kAdd, "+1", {r1, a});
  b.MemWrite("w1", arr, a, sum);
  b.Output("o", sum);
  const Cdfg g = b.Finish();
  EXPECT_EQ(g.consumers(r1).size(), 1u);
  EXPECT_EQ(g.consumers(a).size(), 3u);  // r1 addr, sum operand, w1 addr
  EXPECT_EQ(g.array_accesses(arr).size(), 2u);
  EXPECT_EQ(g.array_accesses(arr)[0], r1);
}

TEST(CdfgBuilderTest, RejectsNestedLoops) {
  CdfgBuilder b("nested");
  const NodeId n = b.Input("n");
  b.BeginLoop("outer");
  const NodeId i = b.LoopPhi("i", n);
  const NodeId c = b.Op(OpKind::kGt, "c", {i, n});
  b.SetLoopCondition(c);
  b.SetLoopBack(i, b.Op(OpKind::kDec, "--1", {i}));
  EXPECT_THROW(b.BeginLoop("inner"), Error);
}

TEST(CdfgBuilderTest, RejectsLoopWithoutCondition) {
  CdfgBuilder b("nocond");
  const NodeId n = b.Input("n");
  b.BeginLoop("l");
  const NodeId i = b.LoopPhi("i", n);
  b.SetLoopBack(i, b.Op(OpKind::kInc, "++", {i}));
  EXPECT_THROW(b.EndLoop(), Error);
}

TEST(CdfgBuilderTest, RejectsUnpatchedPhi) {
  CdfgBuilder b("nophi");
  const NodeId n = b.Input("n");
  b.BeginLoop("l");
  const NodeId i = b.LoopPhi("i", n);
  const NodeId c = b.Op(OpKind::kGt, "c", {i, n});
  b.SetLoopCondition(c);
  EXPECT_THROW(b.EndLoop(), Error);
}

TEST(CdfgBuilderTest, RejectsWrongArity) {
  CdfgBuilder b("arity");
  const NodeId x = b.Input("x");
  const NodeId bad = b.Op(OpKind::kAdd, "+", {x});  // malformed: 1 operand
  b.Output("o", bad);
  EXPECT_THROW(b.Finish(), Error);  // arity is validated at Finish
}

TEST(CdfgBuilderTest, RejectsCrossLoopNonExitRead) {
  CdfgBuilder b("scope");
  const NodeId n = b.Input("n");
  b.BeginLoop("l");
  const NodeId i = b.LoopPhi("i", n);
  const NodeId c = b.Op(OpKind::kGt, "c", {i, n});
  b.SetLoopCondition(c);
  const NodeId dec = b.Op(OpKind::kDec, "--", {i});
  b.SetLoopBack(i, dec);
  b.EndLoop();
  // Reading a non-phi, non-cond body node from outside the loop is invalid.
  b.Output("bad", dec);
  EXPECT_THROW(b.Finish(), Error);
}

TEST(CdfgBuilderTest, GuardedHeaderRejected) {
  CdfgBuilder b("ghdr");
  const NodeId n = b.Input("n");
  b.BeginLoop("l");
  const NodeId i = b.LoopPhi("i", n);
  const NodeId p = b.Op(OpKind::kGt, "p", {i, n});
  b.BeginIf(p);
  // A guarded node feeding the loop condition is illegal.
  const NodeId q = b.Op(OpKind::kLt, "q", {i, n});
  b.EndIf();
  b.SetLoopCondition(q);
  b.SetLoopBack(i, b.Op(OpKind::kInc, "++", {i}));
  b.EndLoop();
  b.Output("o", i);
  EXPECT_THROW(b.Finish(), Error);  // guarded condition caught at Finish
}

TEST(CdfgDotTest, EmitsAllNodes) {
  const Cdfg g = TinyLoop();
  const std::string dot = CdfgToDot(g);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("++1"), std::string::npos);
  EXPECT_NE(dot.find("cluster_loop"), std::string::npos);
}

TEST(EvalOpTest, ArithmeticAndComparisons) {
  EXPECT_EQ(EvalOp(OpKind::kAdd, 3, 4), 7);
  EXPECT_EQ(EvalOp(OpKind::kSub, 3, 4), -1);
  EXPECT_EQ(EvalOp(OpKind::kMul, -3, 4), -12);
  EXPECT_EQ(EvalOp(OpKind::kInc, 9, 0), 10);
  EXPECT_EQ(EvalOp(OpKind::kDec, 9, 0), 8);
  EXPECT_EQ(EvalOp(OpKind::kLt, 1, 2), 1);
  EXPECT_EQ(EvalOp(OpKind::kGe, 1, 2), 0);
  EXPECT_EQ(EvalOp(OpKind::kEq, 5, 5), 1);
  EXPECT_EQ(EvalOp(OpKind::kNe, 5, 5), 0);
  EXPECT_EQ(EvalOp(OpKind::kNot, 0, 0), 1);
  EXPECT_EQ(EvalOp(OpKind::kNot, 3, 0), 0);
  EXPECT_EQ(EvalOp(OpKind::kAnd2, 2, 0), 0);
  EXPECT_EQ(EvalOp(OpKind::kOr2, 2, 0), 1);
  EXPECT_EQ(EvalOp(OpKind::kXor2, 2, 3), 0);
  EXPECT_EQ(EvalOp(OpKind::kShl, 1, 4), 16);
  EXPECT_EQ(EvalOp(OpKind::kShr, 16, 4), 1);
}

TEST(EvalOpTest, WrapAddress) {
  EXPECT_EQ(WrapAddress(0, 8), 0);
  EXPECT_EQ(WrapAddress(7, 8), 7);
  EXPECT_EQ(WrapAddress(8, 8), 0);
  EXPECT_EQ(WrapAddress(-1, 8), 7);
  EXPECT_EQ(WrapAddress(-9, 8), 7);
}

TEST(EvalOpTest, OverflowWrapsTwosComplement) {
  const std::int64_t max = std::numeric_limits<std::int64_t>::max();
  EXPECT_EQ(EvalOp(OpKind::kAdd, max, 1),
            std::numeric_limits<std::int64_t>::min());
}

}  // namespace
}  // namespace ws
