// Tests for CDFG optimization: builder simplification (constant folding,
// identities, scoped CSE) and dead-code elimination.
#include <gtest/gtest.h>

#include "cdfg/builder.h"
#include "cdfg/passes.h"
#include "lang/lower.h"
#include "sim/interpreter.h"

namespace ws {
namespace {

TEST(SimplifyTest, ConstantFolding) {
  CdfgBuilder b("fold");
  b.EnableSimplify();
  const NodeId v = b.Op(OpKind::kMul, "*", {b.Konst(6), b.Konst(7)});
  EXPECT_EQ(b.Op(OpKind::kAdd, "+", {v, b.Konst(0)}), v);  // x+0 == x
  const Node& n = [&]() -> const Node& {
    b.Output("o", v);
    static Cdfg g = b.Finish();
    return g.node(g.node(g.outputs()[0]).inputs[0]);
  }();
  EXPECT_EQ(n.kind, OpKind::kConst);
  EXPECT_EQ(n.const_value, 42);
}

TEST(SimplifyTest, Identities) {
  CdfgBuilder b("ident");
  b.EnableSimplify();
  const NodeId x = b.Input("x");
  EXPECT_EQ(b.Op(OpKind::kAdd, "+", {x, b.Konst(0)}), x);
  EXPECT_EQ(b.Op(OpKind::kAdd, "+", {b.Konst(0), x}), x);
  EXPECT_EQ(b.Op(OpKind::kMul, "*", {x, b.Konst(1)}), x);
  EXPECT_EQ(b.Op(OpKind::kShl, "<<", {x, b.Konst(0)}), x);
  // x*0 folds to the constant 0.
  const NodeId zero = b.Op(OpKind::kMul, "*", {x, b.Konst(0)});
  EXPECT_EQ(b.Konst(0), zero);  // pooled constant
  // x - x == 0, x == x is 1.
  EXPECT_EQ(b.Op(OpKind::kSub, "-", {x, x}), zero);
  const NodeId one = b.Op(OpKind::kEq, "==", {x, x});
  EXPECT_EQ(b.Konst(1), one);
}

TEST(SimplifyTest, SelectSimplification) {
  CdfgBuilder b("sel");
  b.EnableSimplify();
  const NodeId x = b.Input("x");
  const NodeId y = b.Input("y");
  const NodeId c = b.Op(OpKind::kLt, "<", {x, y});
  EXPECT_EQ(b.Select("s1", c, x, x), x);            // equal arms
  EXPECT_EQ(b.Select("s2", b.Konst(1), x, y), x);   // constant steering
  EXPECT_EQ(b.Select("s3", b.Konst(0), x, y), y);
}

TEST(SimplifyTest, CseMergesWithinScopeOnly) {
  CdfgBuilder b("cse");
  b.EnableSimplify();
  const NodeId x = b.Input("x");
  const NodeId y = b.Input("y");
  const NodeId s1 = b.Op(OpKind::kAdd, "+", {x, y});
  const NodeId s2 = b.Op(OpKind::kAdd, "+", {x, y});
  EXPECT_EQ(s1, s2);  // same scope: merged
  const NodeId c = b.Op(OpKind::kLt, "<", {x, y});
  b.BeginIf(c);
  const NodeId s3 = b.Op(OpKind::kAdd, "+", {x, y});
  b.EndIf();
  EXPECT_NE(s1, s3);  // guarded copy must not merge with unguarded one
}

TEST(SimplifyTest, ConstantPooling) {
  CdfgBuilder b("pool");
  b.EnableSimplify();
  EXPECT_EQ(b.Konst(5), b.Konst(5));
  EXPECT_NE(b.Konst(5), b.Konst(6));
}

TEST(DceTest, RemovesUnreachableWork) {
  CdfgBuilder b("dce");
  const NodeId x = b.Input("x");
  const NodeId used = b.Op(OpKind::kInc, "++", {x});
  b.Op(OpKind::kMul, "*dead", {x, x});  // dead
  b.Op(OpKind::kAdd, "+dead", {x, x});  // dead
  b.Output("o", used);
  const Cdfg g = b.Finish();
  DceStats stats;
  const Cdfg opt = EliminateDeadCode(g, &stats);
  EXPECT_EQ(stats.removed_nodes, 2);
  EXPECT_EQ(opt.outputs().size(), 1u);
  // Semantics preserved.
  Stimulus st;
  st.inputs[opt.inputs()[0]] = 7;
  EXPECT_EQ(Interpret(opt, st).outputs.begin()->second, 8);
}

TEST(DceTest, KeepsMemoryWritesAndTheirAddresses) {
  CdfgBuilder b("dcemem");
  const NodeId x = b.Input("x");
  const ArrayId arr = b.Array("A", 4);
  const NodeId addr = b.Op(OpKind::kInc, "++", {x});
  b.MemWrite("wr", arr, addr, x);  // side effect: must survive
  b.Output("o", x);
  const Cdfg g = b.Finish();
  DceStats stats;
  const Cdfg opt = EliminateDeadCode(g, &stats);
  EXPECT_EQ(stats.removed_nodes, 0);
  Stimulus st;
  st.inputs[opt.inputs()[0]] = 2;
  EXPECT_EQ(Interpret(opt, st).arrays.at(arr)[3], 2);
}

TEST(DceTest, DropsWhollyDeadLoop) {
  CdfgBuilder b("dceloop");
  const NodeId x = b.Input("x");
  b.BeginLoop("dead");
  const NodeId i = b.LoopPhi("i", x);
  const NodeId c = b.Op(OpKind::kGt, "c", {i, x});
  b.SetLoopCondition(c);
  b.SetLoopBack(i, b.Op(OpKind::kDec, "--", {i}));
  b.EndLoop();
  b.Output("o", x);  // nothing reads the loop
  const Cdfg g = b.Finish();
  DceStats stats;
  const Cdfg opt = EliminateDeadCode(g, &stats);
  EXPECT_EQ(stats.removed_loops, 1);
  EXPECT_EQ(opt.num_loops(), 0u);
}

TEST(DceTest, PreservesProbabilityAnnotations) {
  CdfgBuilder b("dceprob");
  const NodeId x = b.Input("x");
  const NodeId y = b.Input("y");
  const NodeId c = b.Op(OpKind::kLt, "<", {x, y});
  const NodeId s = b.Select("s", c, x, y);
  b.SetProbability(c, 0.85);
  b.Op(OpKind::kMul, "*dead", {x, x});  // dead
  b.Output("o", s);
  const Cdfg opt = EliminateDeadCode(b.Finish());
  bool found = false;
  for (const Node& n : opt.nodes()) {
    if (n.kind == OpKind::kLt) {
      EXPECT_DOUBLE_EQ(opt.cond_probability(n.id), 0.85);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(DceTest, FrontendPipelineShrinksRedundantSource) {
  // The same subexpression three times plus an unused variable: the
  // compiled graph should carry one multiply and no dead adds.
  const Cdfg g = CompileBehavioral("opt", R"(
    input a; input b;
    x = a * b;
    y = a * b;
    unused = a + b + 17;
    output o = x + y;
  )");
  int muls = 0, adds = 0;
  for (const Node& n : g.nodes()) {
    muls += n.kind == OpKind::kMul;
    adds += n.kind == OpKind::kAdd;
  }
  EXPECT_EQ(muls, 1);  // CSE merged x and y
  EXPECT_EQ(adds, 1);  // only the live x+y remains
  Stimulus st;
  st.inputs[g.inputs()[0]] = 3;
  st.inputs[g.inputs()[1]] = 5;
  EXPECT_EQ(Interpret(g, st).outputs.begin()->second, 30);
}

}  // namespace
}  // namespace ws
