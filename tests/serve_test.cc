// The serving subsystem: wire protocol round trips, the LRU result cache,
// the metrics registry, and the golden end-to-end flow — a live server on a
// Unix domain socket scheduling two suite designs twice each, with round 2
// served from the cache and byte-identical to round 1.
#include <gtest/gtest.h>

#include <dirent.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "explore/report.h"
#include "io/artifact_store.h"
#include "serve/cache.h"
#include "serve/client.h"
#include "serve/metrics.h"
#include "serve/protocol.h"
#include "serve/server.h"

namespace ws {
namespace {

std::string TestSocketPath(const char* tag) {
  return "/tmp/ws_serve_test_" + std::string(tag) + "_" +
         std::to_string(::getpid()) + ".sock";
}

// --- protocol -------------------------------------------------------------

TEST(ProtocolTest, CellRequestRoundTrips) {
  CellRequest request;
  request.design = DesignSpec{"gcd", ""};
  request.mode = SpeculationMode::kWavesched;
  request.alloc = AllocationSpec{"tight", "add=1,sub=2"};
  request.clock = ClockSpec{"2.5ns", ClockModel{}};
  request.clock.clock.period_ns = 2.5;
  request.lookahead = 3;
  request.gc_window = 7;
  request.max_states = 123;
  request.max_ops_per_state = 45;
  request.num_stimuli = 9;
  request.seed = 0xfeedbeefcafe1234ull;
  request.measure_sim_enc = false;
  request.measure_area = true;
  request.deadline_ms = 1500;

  const Result<CellRequest> round =
      DecodeCellRequest(EncodeCellRequest(request));
  ASSERT_TRUE(round.ok()) << round.error();
  EXPECT_EQ(round->design.name, "gcd");
  EXPECT_EQ(round->mode, SpeculationMode::kWavesched);
  EXPECT_EQ(round->alloc.label, "tight");
  EXPECT_EQ(round->alloc.spec, "add=1,sub=2");
  EXPECT_EQ(round->clock.label, "2.5ns");
  EXPECT_EQ(round->clock.clock.period_ns, 2.5);
  EXPECT_EQ(round->lookahead, 3);
  EXPECT_EQ(round->gc_window, 7);
  EXPECT_EQ(round->max_states, 123);
  EXPECT_EQ(round->max_ops_per_state, 45);
  EXPECT_EQ(round->num_stimuli, 9);
  EXPECT_EQ(round->seed, 0xfeedbeefcafe1234ull);
  EXPECT_FALSE(round->measure_sim_enc);
  EXPECT_TRUE(round->measure_area);
  EXPECT_EQ(round->deadline_ms, 1500);
}

TEST(ProtocolTest, RunRoundTripsBitExactly) {
  ExploreRun run;
  run.design = "tlc";
  run.mode = SpeculationMode::kWaveschedSpec;
  run.allocation = "default";
  run.clock = "1ns";
  run.ok = true;
  run.states = 17;
  run.op_initiations = 53;
  run.enc_markov = 3.14159265358979;
  run.enc_sim = 2.71828182845905;
  run.best_case = 2;
  run.worst_case = 40;
  run.worst_case_budget = 64;
  run.area = 12345.6789;
  run.area_overhead_pct = 7.5;
  run.has_area_overhead = true;
  run.stats.phase.total_ns = 123456;

  const Result<ExploreRun> round = DecodeRun(EncodeRun(run));
  ASSERT_TRUE(round.ok()) << round.error();
  // Bit-exact doubles are the byte-identity guarantee's foundation.
  EXPECT_EQ(round->enc_markov, run.enc_markov);
  EXPECT_EQ(round->enc_sim, run.enc_sim);
  EXPECT_EQ(round->area, run.area);
  const ReportRenderOptions canonical{/*include_timing=*/false};
  EXPECT_EQ(ExploreRunToJson(*round, canonical),
            ExploreRunToJson(run, canonical));
}

TEST(ProtocolTest, TicketBodyRoundTrips) {
  const Result<std::uint64_t> round =
      DecodeTicketBody(EncodeTicketBody(0xdeadbeefcafef00dull));
  ASSERT_TRUE(round.ok()) << round.error();
  EXPECT_EQ(*round, 0xdeadbeefcafef00dull);
  EXPECT_FALSE(DecodeTicketBody("").ok());
  EXPECT_FALSE(DecodeTicketBody("123456789").ok());  // 9 bytes, not 8
}

TEST(ProtocolTest, MalformedFramesAreTypedErrors) {
  EXPECT_FALSE(DecodeRequestFrame("short").ok());
  EXPECT_FALSE(DecodeResponseFrame("short").ok());
  EXPECT_FALSE(DecodeCellRequest("garbage").ok());
  EXPECT_FALSE(DecodeRun("garbage").ok());
  std::string frame = EncodeRequestFrame(Verb::kPing, "");
  frame[0] ^= 0xff;  // corrupt the magic
  EXPECT_FALSE(DecodeRequestFrame(frame).ok());
}

// --- cache ----------------------------------------------------------------

TEST(ResultCacheTest, LruEvictionAndCounters) {
  ResultCache cache(2);
  const Fp128 a{1, 1}, b{2, 2}, c{3, 3};
  EXPECT_FALSE(cache.Get(a).has_value());
  cache.Put(a, "A");
  cache.Put(b, "B");
  EXPECT_EQ(cache.Get(a).value(), "A");  // refreshes a
  cache.Put(c, "C");                     // evicts b, the LRU entry
  EXPECT_FALSE(cache.Get(b).has_value());
  EXPECT_EQ(cache.Get(a).value(), "A");
  EXPECT_EQ(cache.Get(c).value(), "C");
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 1);
  EXPECT_EQ(cache.hits(), 3);
  EXPECT_EQ(cache.misses(), 2);
}

TEST(ResultCacheTest, ZeroCapacityDisables) {
  ResultCache cache(0);
  cache.Put(Fp128{1, 1}, "A");
  EXPECT_FALSE(cache.Get(Fp128{1, 1}).has_value());
  EXPECT_EQ(cache.size(), 0u);
}

TEST(ShardedResultCacheTest, RoutesByFingerprintAndAggregates) {
  ShardedResultCache cache(8, 4);
  EXPECT_EQ(cache.shards(), 4);
  // shard_of is the dispatcher's routing function too: stable, in range.
  const Fp128 a{1, 2}, b{5, 9}, c{0xffffffffffffffffull, 0};
  for (const Fp128& key : {a, b, c}) {
    const int shard = cache.shard_of(key);
    EXPECT_GE(shard, 0);
    EXPECT_LT(shard, 4);
    EXPECT_EQ(shard, cache.shard_of(key));
  }
  cache.Put(a, "A");
  cache.Put(b, "B");
  EXPECT_EQ(cache.Get(a).value(), "A");
  EXPECT_EQ(cache.Get(b).value(), "B");
  EXPECT_FALSE(cache.Get(c).has_value());
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.hits(), 2);
  EXPECT_EQ(cache.misses(), 1);
  EXPECT_EQ(cache.evictions(), 0);
}

TEST(ShardedResultCacheTest, ZeroCapacityDisablesEveryShard) {
  ShardedResultCache cache(0, 4);
  cache.Put(Fp128{1, 1}, "A");
  cache.Put(Fp128{2, 2}, "B");
  EXPECT_FALSE(cache.Get(Fp128{1, 1}).has_value());
  EXPECT_EQ(cache.size(), 0u);
}

TEST(ShardedResultCacheTest, NonzeroCapacityKeepsEveryShardUsable) {
  // Total capacity below the shard count must not leave any shard with a
  // zero-entry (disabled) segment: cacheability can't depend on the hash.
  ShardedResultCache cache(2, 4);
  for (std::uint64_t i = 0; i < 8; ++i) {
    const Fp128 key{i, i * 31};
    cache.Put(key, "v");
    EXPECT_TRUE(cache.Get(key).has_value()) << i;
  }
}

// --- metrics --------------------------------------------------------------

TEST(MetricsTest, RegistryRendersDeterministically) {
  MetricsRegistry registry;
  registry.counter("b.count")->Increment(3);
  registry.gauge("a.depth")->Add(2);
  Histogram* h = registry.histogram("c.latency");
  for (int i = 0; i < 100; ++i) h->Record(1000);
  const std::string text = registry.RenderText();
  EXPECT_NE(text.find("b.count 3\n"), std::string::npos);
  EXPECT_NE(text.find("a.depth 2\n"), std::string::npos);
  EXPECT_NE(text.find("c.latency count=100"), std::string::npos);
  EXPECT_EQ(text, registry.RenderText());
  // Same name returns the same metric.
  EXPECT_EQ(registry.counter("b.count")->value(), 3);
}

TEST(MetricsTest, HistogramQuantilesLandInTheRightBucket) {
  Histogram h;
  for (int i = 0; i < 99; ++i) h.Record(100);
  h.Record(100000);
  EXPECT_EQ(h.count(), 100);
  EXPECT_EQ(h.max(), 100000);
  // p50 within the 100-sample bucket [64, 128); p99.9 reaches the outlier.
  EXPECT_GE(h.Quantile(0.5), 64.0);
  EXPECT_LT(h.Quantile(0.5), 128.0);
  EXPECT_GT(h.Quantile(0.999), 65536.0);
}

// --- the golden end-to-end flow -------------------------------------------

TEST(ServeEndToEndTest, SecondRoundIsCacheServedAndIdentical) {
  ServerOptions options;
  options.unix_path = TestSocketPath("golden");
  options.workers = 2;
  ServeServer server(options);
  ASSERT_TRUE(server.Start().ok());

  const std::vector<std::string> designs = {"gcd", "tlc"};
  std::vector<std::string> first_round;
  const ReportRenderOptions canonical{/*include_timing=*/false};

  for (int round = 0; round < 2; ++round) {
    for (std::size_t i = 0; i < designs.size(); ++i) {
      Result<ServeClient> client = ServeClient::Connect(
          ServeAddress{/*is_unix=*/true, options.unix_path, "", 0});
      ASSERT_TRUE(client.ok()) << client.error();
      CellRequest request;
      request.design = DesignSpec{designs[i], ""};
      const Result<ScheduleArtifact> artifact = client->Schedule(request);
      ASSERT_TRUE(artifact.ok()) << artifact.error();
      ASSERT_TRUE(artifact->run.ok) << artifact->run.error;
      const std::string json = ExploreRunToJson(artifact->run, canonical);
      if (round == 0) {
        EXPECT_FALSE(artifact->cache_hit) << designs[i];
        first_round.push_back(json);
      } else {
        EXPECT_TRUE(artifact->cache_hit) << designs[i];
        EXPECT_EQ(json, first_round[i]) << designs[i];
      }
    }
  }
  EXPECT_EQ(server.cache().hits(), 2);
  EXPECT_EQ(server.cache().misses(), 2);
  server.Stop();
  std::remove(options.unix_path.c_str());
}

TEST(ServeEndToEndTest, VerbsAndTypedFailures) {
  ServerOptions options;
  options.unix_path = TestSocketPath("verbs");
  options.workers = 1;
  ServeServer server(options);
  ASSERT_TRUE(server.Start().ok());
  const ServeAddress address{/*is_unix=*/true, options.unix_path, "", 0};

  Result<ServeClient> client = ServeClient::Connect(address);
  ASSERT_TRUE(client.ok()) << client.error();
  EXPECT_EQ(client->Ping().value(), "pong");

  // An unknown design is a typed invalid request, not a dead connection.
  CellRequest bad;
  bad.design = DesignSpec{"no_such_design", ""};
  const Result<ScheduleArtifact> invalid = client->Schedule(bad);
  ASSERT_FALSE(invalid.ok());
  EXPECT_EQ(invalid.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(invalid.error().find("no_such_design"), std::string::npos);

  // The connection survives; stats reflect both requests.
  const Result<std::string> stats = client->Stats();
  ASSERT_TRUE(stats.ok()) << stats.error();
  EXPECT_NE(stats->find("serve.responses_invalid_request 1"),
            std::string::npos);

  // SHUTDOWN acks, then the server drains.
  EXPECT_EQ(client->Shutdown().value(), "draining");
  server.Wait();
  EXPECT_TRUE(server.stop_requested());
  server.Stop();
  std::remove(options.unix_path.c_str());
}

TEST(ServeEndToEndTest, RestartServesRoundTwoFromTheWarmStore) {
  // The durable-store contract end to end: kill the daemon, start a fresh
  // one on the same --store directory, and round 2 must be served from the
  // warm-started cache byte-identically — no recompute.
  char store_template[] = "/tmp/ws_serve_store_XXXXXX";
  char* store_dir = ::mkdtemp(store_template);
  ASSERT_NE(store_dir, nullptr);

  const std::vector<std::string> designs = {"gcd", "tlc"};
  std::vector<std::string> first_round;

  {
    ServerOptions options;
    options.unix_path = TestSocketPath("store1");
    options.workers = 2;
    options.store_dir = store_dir;
    ServeServer server(options);
    ASSERT_TRUE(server.Start().ok());
    for (const std::string& design : designs) {
      Result<ServeClient> client = ServeClient::Connect(
          ServeAddress{/*is_unix=*/true, options.unix_path, "", 0});
      ASSERT_TRUE(client.ok()) << client.error();
      CellRequest request;
      request.design = DesignSpec{design, ""};
      const Result<ScheduleArtifact> artifact = client->Schedule(request);
      ASSERT_TRUE(artifact.ok()) << artifact.error();
      EXPECT_FALSE(artifact->cache_hit) << design;
      // Re-encoding is bit-exact (doubles travel as bit patterns), so this
      // is the response payload byte for byte.
      first_round.push_back(EncodeRun(artifact->run));
    }
    ASSERT_NE(server.store(), nullptr);
    EXPECT_EQ(server.store()->entries(), designs.size());
    server.Stop();
    std::remove(options.unix_path.c_str());
  }

  // A brand-new server process stand-in: nothing shared but the directory.
  ServerOptions options;
  options.unix_path = TestSocketPath("store2");
  options.workers = 2;
  options.store_dir = store_dir;
  ServeServer server(options);
  ASSERT_TRUE(server.Start().ok());
  for (std::size_t i = 0; i < designs.size(); ++i) {
    Result<ServeClient> client = ServeClient::Connect(
        ServeAddress{/*is_unix=*/true, options.unix_path, "", 0});
    ASSERT_TRUE(client.ok()) << client.error();
    CellRequest request;
    request.design = DesignSpec{designs[i], ""};
    const Result<ScheduleArtifact> artifact = client->Schedule(request);
    ASSERT_TRUE(artifact.ok()) << artifact.error();
    EXPECT_TRUE(artifact->cache_hit) << designs[i];
    EXPECT_EQ(EncodeRun(artifact->run), first_round[i]) << designs[i];

    const Result<std::string> stats = client->Stats();
    ASSERT_TRUE(stats.ok()) << stats.error();
    EXPECT_NE(stats->find("serve.store_entries 2"), std::string::npos);
  }
  EXPECT_EQ(server.store()->counters().loaded, 2);
  server.Stop();
  std::remove(options.unix_path.c_str());

  if (DIR* d = ::opendir(store_dir)) {
    while (dirent* e = ::readdir(d)) {
      const std::string name = e->d_name;
      if (name != "." && name != "..") {
        ::unlink((std::string(store_dir) + "/" + name).c_str());
      }
    }
    ::closedir(d);
  }
  ::rmdir(store_dir);
}

TEST(ServeEndToEndTest, RemoteExploreMatchesInProcess) {
  ServerOptions options;
  options.unix_path = TestSocketPath("remote");
  options.workers = 2;
  ServeServer server(options);
  ASSERT_TRUE(server.Start().ok());

  ExploreSpec spec;
  spec.designs = {DesignSpec{"gcd", ""}, DesignSpec{"tlc", ""}};
  spec.workers = 2;

  const Result<ExploreReport> local = RunExplore(spec);
  ASSERT_TRUE(local.ok()) << local.error();
  const Result<ExploreReport> remote = RunExploreRemote(
      spec, ServeAddress{/*is_unix=*/true, options.unix_path, "", 0});
  ASSERT_TRUE(remote.ok()) << remote.error();

  const ReportRenderOptions canonical{/*include_timing=*/false};
  EXPECT_EQ(ExploreReportToJson(*local, canonical),
            ExploreReportToJson(*remote, canonical));
  server.Stop();
  std::remove(options.unix_path.c_str());
}

}  // namespace
}  // namespace ws
