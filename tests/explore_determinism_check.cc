// Standalone (non-gtest) determinism check: the explore engine must produce
// byte-identical canonical reports for any worker count. Used directly as a
// smoke test and as the workload of the TSan-instrumented sub-build
// (tests/run_tsan_check.cmake), where the worker pool's synchronization is
// what is actually under test.
#include <cstdio>
#include <string>

#include "explore/explore.h"
#include "explore/report.h"

int main() {
  using namespace ws;

  ExploreSpec spec;
  spec.designs = {{"gcd", ""}, {"findmin", ""}, {"tlc", ""}};
  spec.modes = {SpeculationMode::kWavesched, SpeculationMode::kWaveschedSpec};
  spec.num_stimuli = 10;
  spec.seed = 1998;

  ReportRenderOptions render;
  render.include_timing = false;

  std::string golden;
  for (const int workers : {0, 1, 4}) {
    spec.workers = workers;
    const Result<ExploreReport> report = RunExplore(spec);
    if (!report.ok()) {
      std::fprintf(stderr, "FAIL: workers=%d: %s\n", workers,
                   report.error().c_str());
      return 1;
    }
    for (const ExploreRun& run : report->runs) {
      if (!run.ok) {
        std::fprintf(stderr, "FAIL: workers=%d run %s/%s: %s\n", workers,
                     run.design.c_str(), SpeculationModeName(run.mode),
                     run.error.c_str());
        return 1;
      }
    }
    const std::string json = ExploreReportToJson(*report, render);
    if (workers == 0) {
      golden = json;
    } else if (json != golden) {
      std::fprintf(stderr,
                   "FAIL: workers=%d report differs from sequential "
                   "(%zu vs %zu bytes)\n",
                   workers, json.size(), golden.size());
      return 1;
    }
  }
  std::printf("OK: explore reports byte-identical for workers {0,1,4} "
              "(%zu bytes)\n",
              golden.size());
  return 0;
}
