// Randomized memory-trace differential check for speculative memory
// disambiguation (src/mem/). For every array benchmark, in both speculative
// scheduling modes, with mem_spec off and on, every trace must simulate to
// the golden interpreter's outputs — including adversarial traces built for
// maximum aliasing (every array element equal, so consecutive data-dependent
// accesses collide and every bypassed load is squashed) and zero aliasing
// (ascending distinct elements). A mem_spec STG references disambiguation
// ops that exist only in the relaxed graph, so simulation runs against
// ApplyMemSpec's graph while the golden outputs come from the original.
//
// Also enforces the headline result — strictly fewer simulated cycles with
// mem_spec on for at least two of the three disambiguation workloads — and
// that speculative schedules stay byte-identical across wave worker counts.
#include <cstdint>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "io/codec.h"
#include "mem/disambig.h"
#include "sched/scheduler.h"
#include "sim/interpreter.h"
#include "sim/stg_sim.h"
#include "suite/benchmarks.h"

namespace {

using namespace ws;

// The benchmark's own random traces plus the two adversarial patterns.
// Only counted loops get the adversarial contents: test1's termination is
// data-dependent (`while (k > t4)` with t4 loaded from memory), so forcing
// its array to a constant can make the program itself diverge.
std::vector<Stimulus> WithAdversarialTraces(const Benchmark& b,
                                            bool counted_loop) {
  std::vector<Stimulus> traces = b.stimuli;
  if (counted_loop && !b.stimuli.empty() &&
      !b.stimuli.front().arrays.empty()) {
    Stimulus alias = b.stimuli.front();
    for (auto& entry : alias.arrays)
      for (auto& v : entry.second) v = 3;
    traces.push_back(std::move(alias));
    Stimulus distinct = b.stimuli.front();
    for (auto& entry : distinct.arrays)
      for (std::size_t j = 0; j < entry.second.size(); ++j)
        entry.second[j] = static_cast<std::int64_t>(j);
    traces.push_back(std::move(distinct));
  }
  return traces;
}

// Simulates every trace against the graph the STG was scheduled from and
// checks outputs against the golden interpreter on the original graph.
// Returns the summed cycle count, or -1 after printing a FAIL line.
std::int64_t RunTraces(const std::string& tag, const Stg& stg,
                       const Cdfg& sched_graph, const Cdfg& golden_graph,
                       const std::vector<Stimulus>& traces) {
  std::int64_t total = 0;
  for (std::size_t t = 0; t < traces.size(); ++t) {
    StgSimResult sim;
    try {
      sim = SimulateStg(stg, sched_graph, traces[t]);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "FAIL: %s trace %zu: %s\n", tag.c_str(), t,
                   e.what());
      return -1;
    }
    const InterpResult golden = Interpret(golden_graph, traces[t]);
    if (sim.outputs != golden.outputs) {
      std::fprintf(stderr,
                   "FAIL: %s trace %zu: STG outputs diverge from the "
                   "interpreter\n",
                   tag.c_str(), t);
      return -1;
    }
    total += sim.cycles;
  }
  return total;
}

}  // namespace

int main() {
  using namespace ws;
  const std::vector<std::string> kDesigns = {"histogram", "sieve",
                                             "sparse_accum", "findmin",
                                             "test1"};
  const SpeculationMode kModes[] = {SpeculationMode::kWaveschedSpec,
                                    SpeculationMode::kSinglePath};
  int wins = 0;
  try {
    for (const std::string& name : kDesigns) {
      const Result<Benchmark> bench = MakeBenchmarkByName(name, 8, 2026);
      if (!bench.ok()) {
        std::fprintf(stderr, "FAIL: build %s: %s\n", name.c_str(),
                     bench.error().c_str());
        return 1;
      }
      const std::vector<Stimulus> traces =
          WithAdversarialTraces(*bench, name != "test1");
      MemSpecResult relaxed = ApplyMemSpec(bench->graph);
      if (!relaxed.lsq.active()) {
        std::fprintf(stderr, "FAIL: %s: expected modeled arrays\n",
                     name.c_str());
        return 1;
      }
      for (const SpeculationMode mode : kModes) {
        const std::string tag =
            name + "/" + SpeculationModeName(mode);
        SchedulerOptions opts;
        opts.mode = mode;
        opts.lookahead = bench->lookahead;

        opts.mem_spec = false;
        const Result<ScheduleReport> off = ScheduleBenchmark(*bench, opts);
        if (!off.ok()) {
          std::fprintf(stderr, "FAIL: %s mem_spec=off: %s\n", tag.c_str(),
                       off.error().c_str());
          return 1;
        }
        const std::int64_t cycles_off =
            RunTraces(tag + "/off", off->stg, bench->graph, bench->graph,
                      traces);
        if (cycles_off < 0) return 1;

        opts.mem_spec = true;
        const Result<ScheduleReport> on = ScheduleBenchmark(*bench, opts);
        if (!on.ok()) {
          std::fprintf(stderr, "FAIL: %s mem_spec=on: %s\n", tag.c_str(),
                       on.error().c_str());
          return 1;
        }
        const std::int64_t cycles_on =
            RunTraces(tag + "/on", on->stg, relaxed.graph, bench->graph,
                      traces);
        if (cycles_on < 0) return 1;

        std::printf("%-26s cycles: off=%lld on=%lld\n", tag.c_str(),
                    static_cast<long long>(cycles_off),
                    static_cast<long long>(cycles_on));
        if (mode == SpeculationMode::kWaveschedSpec && name != "findmin" &&
            name != "test1" && cycles_on < cycles_off) {
          ++wins;
        }
      }
    }
    if (wins < 2) {
      std::fprintf(stderr,
                   "FAIL: mem_spec beat the conservative chain on only %d of "
                   "3 disambiguation workloads (need >= 2)\n",
                   wins);
      return 1;
    }

    // Speculative schedules must not depend on the wave worker count.
    const Result<Benchmark> hist = MakeBenchmarkByName("histogram", 4, 7);
    if (!hist.ok()) {
      std::fprintf(stderr, "FAIL: %s\n", hist.error().c_str());
      return 1;
    }
    SchedulerOptions opts;
    opts.mode = SpeculationMode::kWaveschedSpec;
    opts.lookahead = hist->lookahead;
    opts.mem_spec = true;
    std::string golden_bytes;
    for (const int workers : {0, 1, 4}) {
      opts.wave_workers = workers;
      const Result<ScheduleReport> rep = ScheduleBenchmark(*hist, opts);
      if (!rep.ok()) {
        std::fprintf(stderr, "FAIL: histogram workers=%d: %s\n", workers,
                     rep.error().c_str());
        return 1;
      }
      const std::string bytes = EncodeStg(rep->stg);
      if (workers == 0) {
        golden_bytes = bytes;
      } else if (bytes != golden_bytes) {
        std::fprintf(stderr,
                     "FAIL: mem_spec STG differs at wave_workers=%d\n",
                     workers);
        return 1;
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "FAIL: exception: %s\n", e.what());
    return 1;
  }
  std::printf("OK: %zu designs x {wavesched-spec,single-path} x "
              "{off,on} agree with the interpreter on every trace; "
              "mem_spec won on %d/3 workloads; schedules worker-invariant\n",
              kDesigns.size(), wins);
  return 0;
}
