// The library's strongest property: every schedule, in every mode, computes
// bit-for-bit the same outputs as the golden CDFG interpreter on every
// trace. This is the functional-correctness guarantee behind all of the
// paper's performance claims (a speculative schedule that computed wrong
// values would be meaningless).
//
// Parameterized sweep: benchmark x speculation mode x stimulus seed.
#include <gtest/gtest.h>

#include "sched/scheduler.h"
#include "sim/interpreter.h"
#include "sim/stg_sim.h"
#include "suite/benchmarks.h"

namespace ws {
namespace {

const char* ModeTag(int mode) {
  switch (mode) {
    case 0: return "ws";
    case 1: return "single";
    default: return "spec";
  }
}

class EquivalenceTest
    : public ::testing::TestWithParam<std::tuple<const char*, int, int>> {};

TEST_P(EquivalenceTest, ScheduleMatchesInterpreter) {
  const auto [name, mode_int, seed] = GetParam();
  Benchmark b = [&, n = std::string(name)]() -> Benchmark {
    const std::uint64_t s = static_cast<std::uint64_t>(seed) * 7919 + 13;
    if (n == "gcd") return MakeGcd(12, s);
    if (n == "test1") return MakeTest1(12, s);
    if (n == "barcode") return MakeBarcode(12, s);
    if (n == "tlc") return MakeTlc(12, s);
    if (n == "findmin") return MakeFindmin(12, s);
    return MakeFig4(0.4 + 0.1 * seed, 12, s);
  }();
  SchedulerOptions opts;
  opts.mode = static_cast<SpeculationMode>(mode_int);
  opts.lookahead = b.lookahead;
  const ScheduleResult r = Schedule({&b.graph, &b.library, &b.allocation, opts}).value();

  for (const Stimulus& st : b.stimuli) {
    const StgSimResult sim = SimulateStg(r.stg, b.graph, st);
    const InterpResult golden = Interpret(b.graph, st);
    ASSERT_EQ(sim.outputs.size(), golden.outputs.size());
    for (const auto& [out, want] : golden.outputs) {
      auto it = sim.outputs.find(out);
      ASSERT_NE(it, sim.outputs.end());
      EXPECT_EQ(it->second, want)
          << b.name << " output " << b.graph.node(out).name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EquivalenceTest,
    ::testing::Combine(::testing::Values("gcd", "test1", "barcode", "tlc",
                                         "findmin", "fig4"),
                       ::testing::Values(0, 1, 2),
                       ::testing::Values(1, 2, 3)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param)) + "_" +
             ModeTag(std::get<1>(info.param)) + "_s" +
             std::to_string(std::get<2>(info.param));
    });

// Lookahead must never change functional behavior, only performance.
class LookaheadTest : public ::testing::TestWithParam<int> {};

TEST_P(LookaheadTest, DepthIndependentCorrectness) {
  Benchmark b = MakeGcd(10, 31);
  SchedulerOptions opts;
  opts.mode = SpeculationMode::kWaveschedSpec;
  opts.lookahead = GetParam();
  const ScheduleResult r = Schedule({&b.graph, &b.library, &b.allocation, opts}).value();
  for (const Stimulus& st : b.stimuli) {
    const StgSimResult sim = SimulateStg(r.stg, b.graph, st);
    const InterpResult golden = Interpret(b.graph, st);
    for (const auto& [out, want] : golden.outputs) {
      EXPECT_EQ(sim.outputs.at(out), want);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Depths, LookaheadTest,
                         ::testing::Values(0, 1, 2, 4, 6));

// Deeper speculation is monotonically not-slower (up to closure artifacts,
// the ENC must not regress by more than noise).
TEST(LookaheadMonotonicityTest, DeeperIsNotSlower) {
  Benchmark b = MakeTest1(10, 97);
  double prev = 1e18;
  for (const int lookahead : {0, 2, 4, 8}) {
    SchedulerOptions opts;
    opts.mode = SpeculationMode::kWaveschedSpec;
    opts.lookahead = lookahead;
    const ScheduleResult r =
        Schedule({&b.graph, &b.library, &b.allocation, opts}).value();
    const double enc = MeasureExpectedCycles(r.stg, b.graph, b.stimuli);
    EXPECT_LE(enc, prev * 1.02 + 1e-9) << "lookahead " << lookahead;
    prev = enc;
  }
}

}  // namespace
}  // namespace ws
