// Single-flight coalescing and shard invariance in the serve dispatcher:
// N concurrent identical requests must cost exactly one scheduler execution
// and produce N byte-identical replies; followers keep their own deadlines;
// tickets are consumed exactly once; and results are byte-identical across
// shard counts.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <string>
#include <vector>

#include "explore/report.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"

namespace ws {
namespace {

std::string TestSocketPath(const char* tag) {
  return "/tmp/ws_coalesce_test_" + std::string(tag) + "_" +
         std::to_string(::getpid()) + ".sock";
}

// A request the single worker will be busy with while the interesting
// requests pile up behind it. A distinct seed keeps its fingerprint away
// from everything else in the test.
CellRequest BlockerRequest() {
  CellRequest request;
  request.design = DesignSpec{"gcd", ""};
  request.seed = 900001;
  request.num_stimuli = 5;
  return request;
}

TEST(CoalesceTest, IdenticalRequestsComputeOnceAndReplyIdentically) {
  ServerOptions options;
  options.unix_path = TestSocketPath("once");
  options.shards = 1;
  options.workers = 1;  // FIFO: the blocker runs before the shared leader
  ServeServer server(options);
  ASSERT_TRUE(server.Start().ok());
  const ServeAddress address{/*is_unix=*/true, options.unix_path, "", 0};

  Result<ServeClient> client = ServeClient::Connect(address);
  ASSERT_TRUE(client.ok()) << client.error();

  // Occupy the only worker first. While it runs, all N identical requests
  // are admitted: the first becomes the leader of a queued job, the rest
  // attach as followers — the computation has not started, so none of them
  // can be answered from the cache.
  const Result<Ticket> blocker = client->Submit(BlockerRequest());
  ASSERT_TRUE(blocker.ok()) << blocker.error();

  constexpr int kIdentical = 8;
  std::vector<Ticket> tickets;
  for (int i = 0; i < kIdentical; ++i) {
    CellRequest request;
    request.design = DesignSpec{"tlc", ""};
    request.num_stimuli = 5;
    const Result<Ticket> ticket = client->Submit(request);
    ASSERT_TRUE(ticket.ok()) << ticket.error();
    tickets.push_back(*ticket);
  }

  const Result<ScheduleArtifact> blocked = client->Wait(*blocker);
  ASSERT_TRUE(blocked.ok()) << blocked.error();

  std::vector<std::string> replies;
  for (const Ticket& ticket : tickets) {
    const Result<ScheduleArtifact> artifact = client->Wait(ticket);
    ASSERT_TRUE(artifact.ok()) << artifact.error();
    ASSERT_TRUE(artifact->run.ok) << artifact->run.error;
    // Encoding is deterministic and bit-exact, so equal encodings mean the
    // wire replies were byte-identical.
    replies.push_back(EncodeRun(artifact->run));
  }
  for (int i = 1; i < kIdentical; ++i) {
    EXPECT_EQ(replies[static_cast<std::size_t>(i)], replies[0]) << i;
  }

  // Exactly one scheduler execution for the N identical requests (plus the
  // blocker's), and N-1 coalesced followers.
  EXPECT_EQ(server.metrics().counter("serve.sched_runs")->value(), 2);
  EXPECT_EQ(server.metrics().counter("serve.coalesced")->value(),
            kIdentical - 1);

  server.Stop();
  std::remove(options.unix_path.c_str());
}

TEST(CoalesceTest, FollowerKeepsItsOwnDeadline) {
  ServerOptions options;
  options.unix_path = TestSocketPath("deadline");
  options.shards = 1;
  options.workers = 1;
  ServeServer server(options);
  ASSERT_TRUE(server.Start().ok());
  const ServeAddress address{/*is_unix=*/true, options.unix_path, "", 0};

  Result<ServeClient> client = ServeClient::Connect(address);
  ASSERT_TRUE(client.ok()) << client.error();

  const Result<Ticket> blocker = client->Submit(BlockerRequest());
  ASSERT_TRUE(blocker.ok()) << blocker.error();

  // Leader: unbounded. Follower: 1 ms budget, long expired by the time the
  // worker gets past the blocker. Deadlines never participate in the
  // fingerprint, so the two requests coalesce.
  CellRequest shared;
  shared.design = DesignSpec{"tlc", ""};
  shared.num_stimuli = 5;
  const Result<Ticket> leader = client->Submit(shared);
  ASSERT_TRUE(leader.ok()) << leader.error();
  shared.deadline_ms = 1;
  const Result<Ticket> follower = client->Submit(shared);
  ASSERT_TRUE(follower.ok()) << follower.error();

  // The follower's reply is bounded by its own deadline even though the
  // coalesced computation continues for the leader.
  const Result<ScheduleArtifact> expired = client->Wait(*follower);
  ASSERT_FALSE(expired.ok());
  EXPECT_EQ(expired.status().code(), StatusCode::kDeadlineExceeded);

  const Result<ScheduleArtifact> computed = client->Wait(*leader);
  ASSERT_TRUE(computed.ok()) << computed.error();
  EXPECT_TRUE(computed->run.ok) << computed->run.error;

  ASSERT_TRUE(client->Wait(*blocker).ok());
  EXPECT_EQ(server.metrics().counter("serve.coalesced")->value(), 1);

  server.Stop();
  std::remove(options.unix_path.c_str());
}

TEST(CoalesceTest, TicketsAreConsumedExactlyOnce) {
  ServerOptions options;
  options.unix_path = TestSocketPath("tickets");
  options.shards = 1;
  options.workers = 1;
  ServeServer server(options);
  ASSERT_TRUE(server.Start().ok());
  const ServeAddress address{/*is_unix=*/true, options.unix_path, "", 0};

  Result<ServeClient> client = ServeClient::Connect(address);
  ASSERT_TRUE(client.ok()) << client.error();

  CellRequest request;
  request.design = DesignSpec{"gcd", ""};
  request.num_stimuli = 5;
  const Result<Ticket> ticket = client->Submit(request);
  ASSERT_TRUE(ticket.ok()) << ticket.error();

  ASSERT_TRUE(client->Wait(*ticket).ok());

  // Waiting twice on the same ticket is an invalid request...
  const Result<ScheduleArtifact> again = client->Wait(*ticket);
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.status().code(), StatusCode::kInvalidArgument);

  // ...and so is a ticket this connection never received.
  const Result<ScheduleArtifact> unknown = client->Wait(Ticket{987654321});
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.status().code(), StatusCode::kInvalidArgument);

  server.Stop();
  std::remove(options.unix_path.c_str());
}

TEST(CoalesceTest, ArtifactsAreByteIdenticalAcrossShardCounts) {
  const std::vector<std::string> designs = {"gcd", "tlc", "findmin"};
  std::vector<std::vector<std::string>> replies;  // [shard config][design]

  for (const int shards : {1, 4}) {
    ServerOptions options;
    options.unix_path =
        TestSocketPath(("shards" + std::to_string(shards)).c_str());
    options.shards = shards;
    options.workers = 4;
    ServeServer server(options);
    ASSERT_TRUE(server.Start().ok());
    const ServeAddress address{/*is_unix=*/true, options.unix_path, "", 0};

    std::vector<std::string> round;
    for (const std::string& design : designs) {
      Result<ServeClient> client = ServeClient::Connect(address);
      ASSERT_TRUE(client.ok()) << client.error();
      CellRequest request;
      request.design = DesignSpec{design, ""};
      request.num_stimuli = 5;
      const Result<ScheduleArtifact> artifact = client->Schedule(request);
      ASSERT_TRUE(artifact.ok()) << artifact.error();
      ASSERT_TRUE(artifact->run.ok) << artifact->run.error;
      // Canonical rendering: wall-clock phase timings legitimately differ
      // between processes; everything the scheduler decided must not.
      const ReportRenderOptions canonical{/*include_timing=*/false};
      round.push_back(ExploreRunToJson(artifact->run, canonical));
    }
    replies.push_back(std::move(round));

    server.Stop();
    std::remove(options.unix_path.c_str());
  }

  ASSERT_EQ(replies.size(), 2u);
  for (std::size_t i = 0; i < designs.size(); ++i) {
    EXPECT_EQ(replies[0][i], replies[1][i]) << designs[i];
  }
}

}  // namespace
}  // namespace ws
