// Unit tests for the closure detector (sched/closure.h) in isolation — the
// shift-canonical tokenization invariants behind the paper's relabeling map
// M. Two path states must fold onto one STG state exactly when they are
// equal modulo a uniform per-loop iteration shift; the detector keys a
// fingerprint of the token stream, so these tests pin down that the stream
// is (a) invariant under the shift, (b) sensitive to real structural
// differences, and (c) in agreement with the legacy string signature.
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "bdd/bdd.h"
#include "cdfg/builder.h"
#include "sched/closure.h"
#include "sched/engine_state.h"
#include "sched/guards.h"

namespace ws {
namespace {

// The convergence-loop shape closure actually fires on: while (k > i) i++.
struct LoopFixture {
  // Declared before `graph`: Build fills them while graph initializes.
  NodeId cond;
  NodeId body;
  Cdfg graph;
  LoopId loop;

  LoopFixture() : graph(Build(&cond, &body)) {
    loop = graph.node(cond).loop;
    graph.set_cond_probability(cond, 0.7);
  }

  static Cdfg Build(NodeId* cond, NodeId* body) {
    CdfgBuilder b("closure_probe");
    NodeId k = b.Input("k");
    NodeId zero = b.Konst(0);
    b.BeginLoop("main");
    NodeId i = b.LoopPhi("i", zero);
    NodeId c = b.Op(OpKind::kGt, ">1", {k, i});
    b.SetLoopCondition(c);
    NodeId i1 = b.Op(OpKind::kInc, "++1", {i});
    b.SetLoopBack(i, i1);
    b.EndLoop();
    b.Output("out", i);
    *cond = c;
    *body = i1;
    return b.Finish();
  }
};

// Everything a detector test needs, wired like the scheduler wires it.
struct Harness {
  LoopFixture f;
  BddManager mgr;
  ScheduleStats stats;
  GuardEngine guards;
  ClosureDetector closure;

  Harness() : guards(f.graph, mgr), closure(f.graph, mgr, guards, stats) {}

  Binding MakeBinding(Bdd guard, bool completed) {
    Binding b;
    b.guard = guard;
    b.completed = completed;
    return b;
  }

  // The symbolic front at loop iteration `iter`: conditions 0..iter-1
  // resolved true, every earlier instance completed under a now-constant
  // guard, and the body of iteration `iter` in flight under this
  // iteration's condition variable.
  PathState FrontAtIteration(int iter) {
    PathState ps;
    ps.loops.resize(f.graph.num_loops());
    ps.loops[f.loop.value()].next_unresolved = iter;
    for (int k = 0; k < iter; ++k) {
      ps.resolved.Mutable(MakeInstKey(f.cond, k)) = true;
      ps.bindings.Mutable(MakeInstKey(f.cond, k)) = {MakeBinding(mgr.True(), true)};
      ps.bindings.Mutable(MakeInstKey(f.body, k)) = {MakeBinding(mgr.True(), true)};
    }
    // Current iteration's condition evaluation is committed work too.
    ps.bindings.Mutable(MakeInstKey(f.cond, iter)) = {MakeBinding(mgr.True(), true)};
    const Bdd ci = mgr.Var(guards.CondVar(f.cond, iter));
    ps.bindings.Mutable(MakeInstKey(f.body, iter)) = {MakeBinding(ci, false)};
    return ps;
  }
};

TEST(ClosureDetectorTest, IdenticalStatesFoldWithNoShift) {
  Harness h;
  PathState a = h.FrontAtIteration(0);
  ASSERT_FALSE(h.closure.Lookup(a).has_value());
  h.closure.Insert(StateId(7), a);

  PathState again = h.FrontAtIteration(0);
  const auto hit = h.closure.Lookup(again);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->sid.value(), 7u);
  EXPECT_TRUE(hit->shift.empty());  // only nonzero deltas are reported
  EXPECT_EQ(h.stats.closure_hits, 1);
  EXPECT_EQ(h.stats.signature_collisions, 0);
}

TEST(ClosureDetectorTest, UniformIterationShiftFoldsWithTheRelabelDelta) {
  Harness h;
  PathState a = h.FrontAtIteration(0);
  ASSERT_FALSE(h.closure.Lookup(a).has_value());
  h.closure.Insert(StateId(0), a);

  // The same front two iterations later: every key slid by +2 and the guard
  // variable is the iteration-2 condition instance. Tokenization must
  // relabel it onto the stored canonical form.
  PathState b = h.FrontAtIteration(2);
  const auto hit = h.closure.Lookup(b);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->sid.value(), 0u);
  ASSERT_EQ(hit->shift.size(), 1u);
  EXPECT_EQ(hit->shift[0].first, h.f.loop);
  EXPECT_EQ(hit->shift[0].second, 2);
}

TEST(ClosureDetectorTest, ShiftedStatesShareTheDebugSignature) {
  Harness h;
  PathState a = h.FrontAtIteration(0);
  PathState b = h.FrontAtIteration(3);
  std::vector<int> bases_a;
  std::vector<int> bases_b;
  const std::string sig_a = h.closure.DebugSignature(a, &bases_a);
  const std::string sig_b = h.closure.DebugSignature(b, &bases_b);
  EXPECT_EQ(sig_a, sig_b);
  EXPECT_EQ(bases_a[h.f.loop.value()], 0);
  EXPECT_EQ(bases_b[h.f.loop.value()], 3);
}

TEST(ClosureDetectorTest, StructuralDifferencesDoNotFold) {
  Harness h;
  PathState a = h.FrontAtIteration(1);
  ASSERT_FALSE(h.closure.Lookup(a).has_value());
  h.closure.Insert(StateId(0), a);

  // Negated in-flight guard: same keys, different Boolean function.
  PathState negated = h.FrontAtIteration(1);
  negated.bindings.Mutable(MakeInstKey(h.f.body, 1)) = {h.MakeBinding(
      h.mgr.NotVar(h.guards.CondVar(h.f.cond, 1)), false)};
  EXPECT_FALSE(h.closure.Lookup(negated).has_value());

  // Completed-instead-of-in-flight execution: same guard, different status.
  PathState completed = h.FrontAtIteration(1);
  completed.bindings.Mutable(MakeInstKey(h.f.body, 1)) = {h.MakeBinding(
      h.mgr.Var(h.guards.CondVar(h.f.cond, 1)), true)};
  EXPECT_FALSE(h.closure.Lookup(completed).has_value());

  // An exited loop must not fold onto a running one even when the keys line
  // up after shifting.
  PathState exited = h.FrontAtIteration(1);
  exited.loops[h.f.loop.value()].exited = true;
  exited.loops[h.f.loop.value()].exit_iter = 1;
  EXPECT_FALSE(h.closure.Lookup(exited).has_value());

  EXPECT_EQ(h.stats.closure_hits, 0);
}

TEST(ClosureDetectorTest, PendingObligationsBlockFolding) {
  Harness h;
  // Iteration-1 front with iteration 0 fully discharged: canonical.
  PathState clean = h.FrontAtIteration(1);
  ASSERT_FALSE(h.closure.Lookup(clean).has_value());
  h.closure.Insert(StateId(0), clean);

  // The same front, but iteration 0's body execution never happened: the
  // committed region still owes work, which the pending section must keep
  // visible (merging the two would drop the obligation).
  PathState owing = h.FrontAtIteration(1);
  owing.bindings.Erase(MakeInstKey(h.f.body, 0));
  EXPECT_FALSE(h.closure.Lookup(owing).has_value());
}

}  // namespace
}  // namespace ws
