// Tests for the golden CDFG interpreter and the branch profiler.
#include <gtest/gtest.h>

#include "cdfg/builder.h"
#include "sim/interpreter.h"

namespace ws {
namespace {

TEST(InterpreterTest, StraightLineArithmetic) {
  CdfgBuilder b("straight");
  const NodeId x = b.Input("x");
  const NodeId y = b.Input("y");
  const NodeId s = b.Op(OpKind::kAdd, "+1", {x, y});
  const NodeId p = b.Op(OpKind::kMul, "*1", {s, x});
  b.Output("o", p);
  const Cdfg g = b.Finish();

  Stimulus st;
  st.inputs[x] = 3;
  st.inputs[y] = 4;
  const InterpResult r = Interpret(g, st);
  EXPECT_EQ(r.outputs.begin()->second, 21);
}

TEST(InterpreterTest, ConditionalTakesOnlyOneArm) {
  CdfgBuilder b("cond");
  const NodeId x = b.Input("x");
  const NodeId y = b.Input("y");
  const NodeId c = b.Op(OpKind::kGt, "c", {x, y});
  b.BeginIf(c);
  const NodeId t = b.Op(OpKind::kSub, "-1", {x, y});
  b.BeginElse();
  const NodeId e = b.Op(OpKind::kSub, "-2", {y, x});
  b.EndIf();
  const NodeId j = b.Select("j", c, t, e);
  b.Output("diff", j);
  const Cdfg g = b.Finish();

  Stimulus st;
  st.inputs[x] = 10;
  st.inputs[y] = 3;
  EXPECT_EQ(Interpret(g, st).outputs.begin()->second, 7);
  st.inputs[x] = 3;
  st.inputs[y] = 10;
  EXPECT_EQ(Interpret(g, st).outputs.begin()->second, 7);
}

Cdfg GcdGraph(NodeId* x_out, NodeId* y_out) {
  CdfgBuilder b("gcd");
  const NodeId x = b.Input("x");
  const NodeId y = b.Input("y");
  b.BeginLoop("main");
  const NodeId xp = b.LoopPhi("x", x);
  const NodeId yp = b.LoopPhi("y", y);
  const NodeId cond = b.Op(OpKind::kNe, "!=1", {xp, yp});
  b.SetLoopCondition(cond);
  const NodeId cg = b.Op(OpKind::kGt, ">1", {xp, yp});
  b.BeginIf(cg);
  const NodeId d1 = b.Op(OpKind::kSub, "-1", {xp, yp});
  b.BeginElse();
  const NodeId d2 = b.Op(OpKind::kSub, "-2", {yp, xp});
  b.EndIf();
  b.SetLoopBack(xp, b.Select("sx", cg, d1, xp));
  b.SetLoopBack(yp, b.Select("sy", cg, yp, d2));
  b.EndLoop();
  b.Output("gcd", xp);
  *x_out = x;
  *y_out = y;
  return b.Finish();
}

TEST(InterpreterTest, GcdMatchesEuclid) {
  NodeId x, y;
  const Cdfg g = GcdGraph(&x, &y);
  const auto gcd_ref = [](std::int64_t a, std::int64_t b) {
    while (b != 0) {
      const std::int64_t t = a % b;
      a = b;
      b = t;
    }
    return a;
  };
  for (const auto& [a, bb] : std::vector<std::pair<int, int>>{
           {48, 36}, {7, 13}, {100, 100}, {1, 99}, {255, 34}}) {
    Stimulus st;
    st.inputs[x] = a;
    st.inputs[y] = bb;
    EXPECT_EQ(Interpret(g, st).outputs.begin()->second, gcd_ref(a, bb))
        << a << "," << bb;
  }
}

TEST(InterpreterTest, LoopIterationCountAndCondOutcomes) {
  NodeId x, y;
  const Cdfg g = GcdGraph(&x, &y);
  Stimulus st;
  st.inputs[x] = 8;
  st.inputs[y] = 2;  // 8,2 -> 6,2 -> 4,2 -> 2,2: 3 subtractions
  const InterpResult r = Interpret(g, st);
  EXPECT_EQ(r.loop_iterations.begin()->second, 3);
  // The loop condition evaluated 4 times: true,true,true,false.
  bool found = false;
  for (const auto& [cond, outcomes] : r.cond_outcomes) {
    if (g.node(cond).name == "!=1") {
      found = true;
      ASSERT_EQ(outcomes.size(), 4u);
      EXPECT_FALSE(outcomes.back());
    }
  }
  EXPECT_TRUE(found);
}

TEST(InterpreterTest, MemoryReadsWritesAndFinalContents) {
  CdfgBuilder b("mem");
  const NodeId n = b.Input("n");
  const ArrayId arr = b.Array("A", 8, {5, 6, 7});
  const NodeId zero = b.Konst(0);
  b.BeginLoop("l");
  const NodeId i = b.LoopPhi("i", zero);
  const NodeId c = b.Op(OpKind::kLt, "<1", {i, n});
  b.SetLoopCondition(c);
  const NodeId v = b.MemRead("rd", arr, i);
  const NodeId v2 = b.Op(OpKind::kMul, "*2", {v, b.Konst(2)});
  b.MemWrite("wr", arr, i, v2);
  const NodeId i1 = b.Op(OpKind::kInc, "++", {i});
  b.SetLoopBack(i, i1);
  b.EndLoop();
  b.Output("steps", i);
  const Cdfg g = b.Finish();

  Stimulus st;
  st.inputs[n] = 3;
  const InterpResult r = Interpret(g, st);
  const auto& mem = r.arrays.at(arr);
  EXPECT_EQ(mem[0], 10);
  EXPECT_EQ(mem[1], 12);
  EXPECT_EQ(mem[2], 14);
  EXPECT_EQ(mem[3], 0);
}

TEST(InterpreterTest, StimulusArrayOverridesInit) {
  CdfgBuilder b("ovr");
  const ArrayId arr = b.Array("A", 4, {9, 9, 9, 9});
  const NodeId v = b.MemRead("rd", arr, b.Konst(1));
  b.Output("o", v);
  const Cdfg g = b.Finish();
  Stimulus st;
  EXPECT_EQ(Interpret(g, st).outputs.begin()->second, 9);
  st.arrays[arr] = {1, 2, 3, 4};
  EXPECT_EQ(Interpret(g, st).outputs.begin()->second, 2);
}

TEST(InterpreterTest, InfiniteLoopHitsIterationCap) {
  CdfgBuilder b("inf");
  const NodeId x = b.Input("x");
  b.BeginLoop("l");
  const NodeId i = b.LoopPhi("i", x);
  const NodeId c = b.Op(OpKind::kGe, ">=", {i, x});  // always true for i>=x
  b.SetLoopCondition(c);
  b.SetLoopBack(i, b.Op(OpKind::kInc, "++", {i}));
  b.EndLoop();
  b.Output("o", i);
  const Cdfg g = b.Finish();
  Stimulus st;
  st.inputs[x] = 0;
  InterpOptions opts;
  opts.max_loop_iterations = 100;
  EXPECT_THROW(Interpret(g, st, opts), Error);
}

TEST(ProfilerTest, MeasuresBranchProbabilities) {
  NodeId x, y;
  Cdfg g = GcdGraph(&x, &y);
  std::vector<Stimulus> stimuli;
  for (int a = 1; a <= 12; ++a) {
    Stimulus st;
    st.inputs[x] = a;
    st.inputs[y] = 13 - a;
    stimuli.push_back(st);
  }
  const auto probs = ProfileBranchProbabilities(g, stimuli);
  ASSERT_EQ(probs.size(), 2u);
  for (const auto& [cond, p] : probs) {
    EXPECT_GT(p, 0.0);
    EXPECT_LT(p, 1.0);
    // The annotation landed on the graph too.
    EXPECT_DOUBLE_EQ(g.cond_probability(cond), p);
  }
}

}  // namespace
}  // namespace ws
