// Regression tests for the fingerprint-based closure signature.
//
// The scheduler keys its closure map on a 128-bit structural fingerprint of
// the canonical (shift-relabeled) state; a fingerprint hit falls back to an
// exact token-stream comparison, and `WS_CHECK_SIG=1` additionally
// cross-validates every closure decision against the legacy string-signature
// path inside the scheduler itself (a mismatch throws). These tests sweep
// the whole suite under every speculation mode with that cross-check armed,
// and pin the collision counter at zero.
#include <gtest/gtest.h>

#include <cstdlib>

#include "base/hashing.h"
#include "sched/scheduler.h"
#include "suite/benchmarks.h"

namespace ws {
namespace {

class SignatureTest : public ::testing::Test {
 protected:
  // The scheduler samples WS_CHECK_SIG at construction, i.e. per Schedule
  // call, so setting it here arms the cross-check for every run below.
  void SetUp() override { setenv("WS_CHECK_SIG", "1", 1); }
  void TearDown() override { unsetenv("WS_CHECK_SIG"); }
};

TEST_F(SignatureTest, SuiteClosuresMatchLegacySignaturesWithNoCollisions) {
  const SpeculationMode kModes[] = {SpeculationMode::kWavesched,
                                    SpeculationMode::kSinglePath,
                                    SpeculationMode::kWaveschedSpec};
  for (const Benchmark& b : MakeTable1Suite(2, 7)) {
    for (const SpeculationMode mode : kModes) {
      const Result<ScheduleReport> r = ScheduleBenchmark(b, mode);
      ASSERT_TRUE(r.ok()) << b.name << "/" << SpeculationModeName(mode)
                          << ": " << r.error();
      EXPECT_EQ(r.value().stats.signature_collisions, 0)
          << b.name << "/" << SpeculationModeName(mode);
      EXPECT_GT(r.value().stats.closure_hits, 0)
          << b.name << "/" << SpeculationModeName(mode)
          << ": closure never exercised, test is vacuous";
    }
  }
}

TEST_F(SignatureTest, Fig4ClosuresMatchLegacySignatures) {
  for (const double p : {0.3, 0.5, 0.7}) {
    const Benchmark b = MakeFig4(p, 2, 9);
    const Result<ScheduleReport> r =
        ScheduleBenchmark(b, SpeculationMode::kWaveschedSpec);
    ASSERT_TRUE(r.ok()) << "fig4 p=" << p << ": " << r.error();
    EXPECT_EQ(r.value().stats.signature_collisions, 0) << "fig4 p=" << p;
  }
}

// The fingerprint hasher itself: structural properties the closure map
// depends on. (Collision resistance is probabilistic; what we can pin is
// determinism, sensitivity, and independence from accumulation order
// aliasing.)
TEST(FpHasherTest, DeterministicAndSensitive) {
  auto fp_of = [](std::initializer_list<std::uint64_t> tokens) {
    FpHasher h;
    for (const std::uint64_t t : tokens) h.Mix(t);
    return h.digest();
  };
  // Same stream, same digest.
  EXPECT_EQ(fp_of({1, 2, 3}), fp_of({1, 2, 3}));
  // Order matters.
  EXPECT_NE(fp_of({1, 2, 3}), fp_of({3, 2, 1}));
  // Length matters: a prefix does not alias its extension, and appending a
  // zero token changes the digest (no absorbing state).
  EXPECT_NE(fp_of({1, 2}), fp_of({1, 2, 3}));
  EXPECT_NE(fp_of({1, 2}), fp_of({1, 2, 0}));
  // Single-bit sensitivity.
  EXPECT_NE(fp_of({1, 2, 3}), fp_of({1, 2, 2}));
  EXPECT_NE(fp_of({0}), fp_of({1}));
  // The empty stream has a well-defined digest distinct from {0}.
  EXPECT_NE(fp_of({}), fp_of({0}));
}

TEST(FpHasherTest, LanesAreNotMirrored) {
  // The two 64-bit lanes evolve with different tweaks; if they ever
  // collapsed to equal values the fingerprint would degrade to 64 bits.
  FpHasher h;
  for (std::uint64_t t = 0; t < 64; ++t) h.Mix(t);
  const Fp128 fp = h.digest();
  EXPECT_NE(fp.lo, fp.hi);
}

}  // namespace
}  // namespace ws
