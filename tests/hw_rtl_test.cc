// Tests for the resource model and the RTL area back-end.
#include <gtest/gtest.h>

#include "hw/resources.h"
#include "rtl/rtl.h"
#include "sched/scheduler.h"
#include "suite/benchmarks.h"

namespace ws {
namespace {

TEST(FuLibraryTest, PaperLibraryCoversAllScheduledKinds) {
  const FuLibrary lib = FuLibrary::PaperLibrary();
  for (const OpKind kind :
       {OpKind::kAdd, OpKind::kSub, OpKind::kMul, OpKind::kInc, OpKind::kDec,
        OpKind::kLt, OpKind::kGt, OpKind::kLe, OpKind::kGe, OpKind::kEq,
        OpKind::kNe, OpKind::kNot, OpKind::kAnd2, OpKind::kOr2, OpKind::kXor2,
        OpKind::kShl, OpKind::kShr, OpKind::kSelect, OpKind::kMemRead,
        OpKind::kMemWrite}) {
    EXPECT_TRUE(lib.HasTypeFor(kind)) << OpKindName(kind);
  }
}

TEST(FuLibraryTest, PaperChainingBudget) {
  // The paper's GCD allows Not1+Or1 and Eq1+Or1 chains in one cycle, but
  // comparator+Or must not fit.
  const FuLibrary lib = FuLibrary::PaperLibrary();
  const ClockModel clock;
  const auto delay = [&](const char* name) {
    return lib.type(lib.IndexOf(name)).delay_ns;
  };
  EXPECT_TRUE(clock.Fits(delay("not1"), delay("or1")));
  EXPECT_TRUE(clock.Fits(delay("eqc1"), delay("or1")));
  EXPECT_FALSE(clock.Fits(delay("comp1"), delay("or1") + delay("not1")));
  EXPECT_FALSE(clock.Fits(delay("add1"), delay("add1")));
}

TEST(FuLibraryTest, MultiplierIsTwoCyclePipelined) {
  const FuLibrary lib = FuLibrary::PaperLibrary();
  const FuType& mult = lib.type(lib.TypeFor(OpKind::kMul));
  EXPECT_EQ(mult.latency, 2);
  EXPECT_TRUE(mult.pipelined);
  // The single-cycle variant flattens it.
  const FuLibrary single = FuLibrary::SingleCycleLibrary();
  EXPECT_EQ(single.type(single.TypeFor(OpKind::kMul)).latency, 1);
}

TEST(FuLibraryTest, UnknownUnitThrows) {
  const FuLibrary lib = FuLibrary::PaperLibrary();
  EXPECT_THROW(lib.IndexOf("warp_core"), Error);
}

TEST(AllocationTest, DefaultsAndOverrides) {
  const FuLibrary lib = FuLibrary::PaperLibrary();
  Allocation a = Allocation::None(lib);
  EXPECT_EQ(a.Count(lib.IndexOf("add1")), 0);
  EXPECT_TRUE(a.IsUnlimited(lib.IndexOf("or1")));
  EXPECT_TRUE(a.IsUnlimited(lib.IndexOf("mux1")));
  a.Set(lib, "add1", 3);
  EXPECT_EQ(a.Count(lib.IndexOf("add1")), 3);
  const Allocation u = Allocation::Unlimited(lib);
  EXPECT_TRUE(u.IsUnlimited(lib.IndexOf("add1")));
}

TEST(AreaTest, ReportComponentsArePositiveAndSum) {
  Benchmark b = MakeGcd(8, 3);
  SchedulerOptions opts;
  opts.mode = SpeculationMode::kWavesched;
  opts.lookahead = 2;
  const ScheduleResult r = Schedule({&b.graph, &b.library, &b.allocation, opts}).value();
  const AreaReport a =
      EstimateArea(r.stg, b.graph, b.library, b.stimuli[0]);
  EXPECT_GT(a.fu_area, 0.0);
  EXPECT_GT(a.registers, 0);
  EXPECT_GT(a.ctrl_area, 0.0);
  EXPECT_NEAR(a.total, a.fu_area + a.reg_area + a.mux_area + a.ctrl_area,
              1e-9);
  EXPECT_FALSE(a.ToString().empty());
}

TEST(AreaTest, AllocationChargingIsAFloor) {
  Benchmark b = MakeGcd(8, 3);
  SchedulerOptions opts;
  opts.mode = SpeculationMode::kWavesched;
  opts.lookahead = 2;
  const ScheduleResult r = Schedule({&b.graph, &b.library, &b.allocation, opts}).value();
  const AreaReport used =
      EstimateArea(r.stg, b.graph, b.library, b.stimuli[0]);
  const AreaReport charged = EstimateArea(
      r.stg, b.graph, b.library, b.stimuli[0], AreaModel{}, &b.allocation);
  // GCD WS uses 1 subtracter but the Table 2 allocation gives 2.
  EXPECT_EQ(used.units_used.at("sub1"), 1);
  EXPECT_EQ(charged.units_used.at("sub1"), 2);
  EXPECT_GE(charged.fu_area, used.fu_area);
}

TEST(AreaTest, BindingRespectsConcurrency) {
  // The speculative GCD schedule runs two subtractions concurrently, so the
  // binder must instantiate two subtracters.
  Benchmark b = MakeGcd(8, 3);
  SchedulerOptions opts;
  opts.mode = SpeculationMode::kWaveschedSpec;
  opts.lookahead = 2;
  const ScheduleResult r = Schedule({&b.graph, &b.library, &b.allocation, opts}).value();
  const AreaReport a =
      EstimateArea(r.stg, b.graph, b.library, b.stimuli[0]);
  EXPECT_EQ(a.units_used.at("sub1"), 2);
}

TEST(AreaTest, SpeculationCostsArea) {
  Benchmark b = MakeGcd(8, 3);
  SchedulerOptions ws;
  ws.mode = SpeculationMode::kWavesched;
  ws.lookahead = 2;
  SchedulerOptions sp = ws;
  sp.mode = SpeculationMode::kWaveschedSpec;
  const ScheduleResult rw = Schedule({&b.graph, &b.library, &b.allocation, ws}).value();
  const ScheduleResult rs = Schedule({&b.graph, &b.library, &b.allocation, sp}).value();
  const AreaReport aw = EstimateArea(rw.stg, b.graph, b.library,
                                     b.stimuli[0], AreaModel{},
                                     &b.allocation);
  const AreaReport as = EstimateArea(rs.stg, b.graph, b.library,
                                     b.stimuli[0], AreaModel{},
                                     &b.allocation);
  // More live speculative values and controller states, identical FU area
  // (both charged the allocation).
  EXPECT_EQ(aw.fu_area, as.fu_area);
  EXPECT_GE(as.registers, aw.registers);
  EXPECT_GT(as.total, aw.total);
}

}  // namespace
}  // namespace ws
