// The design-space exploration engine: grid materialization, parallel
// determinism, per-run error capture, and report rendering.
#include "explore/explore.h"

#include <dirent.h>
#include <unistd.h>

#include <cstdlib>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "explore/report.h"
#include "io/artifact_store.h"

namespace ws {
namespace {

ExploreSpec SmallSpec() {
  ExploreSpec spec;
  spec.designs = {{"gcd", ""}, {"findmin", ""}};
  spec.modes = {SpeculationMode::kWavesched, SpeculationMode::kWaveschedSpec};
  spec.num_stimuli = 10;
  spec.seed = 1998;
  return spec;
}

std::string CanonicalJson(const ExploreReport& report) {
  ReportRenderOptions render;
  render.include_timing = false;  // wall-clock fields differ run to run
  return ExploreReportToJson(report, render);
}

TEST(ExploreTest, EmptyDesignListIsASpecError) {
  ExploreSpec spec;
  const Result<ExploreReport> r = RunExplore(spec);
  EXPECT_FALSE(r.ok());
}

TEST(ExploreTest, GridIsCrossProductInSpecOrder) {
  ExploreSpec spec = SmallSpec();
  spec.allocations = {{"default", ""}, {"unlimited", "unlimited"}};
  const Result<ExploreReport> r = RunExplore(spec);
  ASSERT_TRUE(r.ok()) << r.error();
  ASSERT_EQ(r->runs.size(), 2u * 2u * 2u);
  // Design-major, then mode, then allocation.
  EXPECT_EQ(r->runs[0].design, "gcd");
  EXPECT_EQ(r->runs[0].allocation, "default");
  EXPECT_EQ(r->runs[1].allocation, "unlimited");
  EXPECT_EQ(r->runs[4].design, "findmin");
  for (const ExploreRun& run : r->runs) {
    EXPECT_TRUE(run.ok) << run.design << ": " << run.error;
    EXPECT_GT(run.states, 0u);
    EXPECT_GT(run.enc_markov, 0.0);
  }
}

TEST(ExploreTest, ParallelReportIsByteIdenticalToSequential) {
  ExploreSpec spec = SmallSpec();
  spec.workers = 0;
  const Result<ExploreReport> sequential = RunExplore(spec);
  ASSERT_TRUE(sequential.ok()) << sequential.error();

  spec.workers = 4;
  const Result<ExploreReport> parallel = RunExplore(spec);
  ASSERT_TRUE(parallel.ok()) << parallel.error();

  spec.workers = 1;
  const Result<ExploreReport> single = RunExplore(spec);
  ASSERT_TRUE(single.ok()) << single.error();

  EXPECT_EQ(CanonicalJson(*sequential), CanonicalJson(*parallel));
  EXPECT_EQ(CanonicalJson(*sequential), CanonicalJson(*single));
}

TEST(ExploreTest, UnknownBenchmarkIsAPerRunError) {
  ExploreSpec spec = SmallSpec();
  spec.designs.push_back({"no_such_design", ""});
  const Result<ExploreReport> r = RunExplore(spec);
  ASSERT_TRUE(r.ok()) << r.error();  // the sweep itself succeeds
  const ExploreRun* bad = r->Find("no_such_design",
                                  SpeculationMode::kWavesched, "default",
                                  "default");
  ASSERT_NE(bad, nullptr);
  EXPECT_FALSE(bad->ok);
  EXPECT_FALSE(bad->error.empty());
  // Healthy runs are unaffected.
  const ExploreRun* good =
      r->Find("gcd", SpeculationMode::kWavesched, "default", "default");
  ASSERT_NE(good, nullptr);
  EXPECT_TRUE(good->ok);
}

TEST(ExploreTest, ExhaustedCapIsAPerRunError) {
  ExploreSpec spec = SmallSpec();
  spec.base_options.max_states = 1;
  const Result<ExploreReport> r = RunExplore(spec);
  ASSERT_TRUE(r.ok()) << r.error();
  for (const ExploreRun& run : r->runs) {
    EXPECT_FALSE(run.ok);
    EXPECT_FALSE(run.error.empty());
  }
  // Error runs still render.
  EXPECT_NE(CanonicalJson(*r).find("\"ok\":false"), std::string::npos);
}

TEST(ExploreTest, InvalidBaseOptionsAreASpecError) {
  ExploreSpec spec = SmallSpec();
  spec.base_options.gc_window = 0;
  EXPECT_FALSE(RunExplore(spec).ok());
}

TEST(ExploreTest, JsonCarriesPhaseTimingWhenRequested) {
  ExploreSpec spec = SmallSpec();
  spec.designs.resize(1);
  spec.modes.resize(1);
  const Result<ExploreReport> r = RunExplore(spec);
  ASSERT_TRUE(r.ok()) << r.error();
  ASSERT_EQ(r->runs.size(), 1u);
  EXPECT_GT(r->runs[0].stats.phase.total_ns, 0);

  const std::string timed = ExploreReportToJson(*r);
  EXPECT_NE(timed.find("\"phase\""), std::string::npos);
  EXPECT_NE(timed.find("\"successor_ns\""), std::string::npos);
  EXPECT_NE(timed.find("\"closure_ns\""), std::string::npos);
  EXPECT_NE(timed.find("\"bdd_ops\""), std::string::npos);

  const std::string canonical = CanonicalJson(*r);
  EXPECT_EQ(canonical.find("\"phase\""), std::string::npos);
  EXPECT_EQ(canonical.find("wall_ms"), std::string::npos);
}

TEST(ExploreTest, SimEncMatchesMarkovOnDataIndependentDesign) {
  // TLC's control flow is data-independent of the schedule, so the
  // trace-driven and analytic E.N.C. agree in shape; on findmin with
  // enough stimuli they track within a few percent.
  ExploreSpec spec;
  spec.designs = {{"findmin", ""}};
  spec.modes = {SpeculationMode::kWaveschedSpec};
  spec.num_stimuli = 50;
  const Result<ExploreReport> r = RunExplore(spec);
  ASSERT_TRUE(r.ok()) << r.error();
  const ExploreRun& run = r->runs[0];
  ASSERT_TRUE(run.ok) << run.error;
  EXPECT_GT(run.enc_sim, 0.0);
  EXPECT_NEAR(run.enc_sim / run.enc_markov, 1.0, 0.25);
}

TEST(ExploreTest, AreaOverheadComparesAgainstWavesched) {
  ExploreSpec spec;
  spec.designs = {{"gcd", ""}};
  spec.modes = {SpeculationMode::kWavesched, SpeculationMode::kWaveschedSpec};
  spec.num_stimuli = 10;
  spec.measure_area = true;
  const Result<ExploreReport> r = RunExplore(spec);
  ASSERT_TRUE(r.ok()) << r.error();
  const ExploreRun* base =
      r->Find("gcd", SpeculationMode::kWavesched, "default", "default");
  const ExploreRun* sp =
      r->Find("gcd", SpeculationMode::kWaveschedSpec, "default", "default");
  ASSERT_NE(base, nullptr);
  ASSERT_NE(sp, nullptr);
  EXPECT_GT(base->area, 0.0);
  EXPECT_GT(sp->area, 0.0);
  EXPECT_TRUE(sp->has_area_overhead);
  EXPECT_FALSE(base->has_area_overhead);  // no overhead vs itself
}

TEST(ExploreTest, StoreBackedSweepsResumeByteIdentically) {
  // ws_explore --store: a sweep against a store is byte-identical to a bare
  // sweep, and a rerun against the populated store replays every cell from
  // disk instead of rescheduling.
  char dir_template[] = "/tmp/ws_explore_store_XXXXXX";
  char* store_dir = ::mkdtemp(dir_template);
  ASSERT_NE(store_dir, nullptr);

  ExploreSpec spec = SmallSpec();
  const Result<ExploreReport> bare = RunExplore(spec);
  ASSERT_TRUE(bare.ok()) << bare.error();
  const std::string golden = CanonicalJson(*bare);
  const std::size_t cells = bare->runs.size();

  ArtifactStoreOptions store_options;
  store_options.dir = store_dir;
  {
    Result<std::unique_ptr<ArtifactStore>> store =
        ArtifactStore::Open(store_options);
    ASSERT_TRUE(store.ok()) << store.error();
    spec.store = store->get();
    const Result<ExploreReport> first = RunExplore(spec);
    ASSERT_TRUE(first.ok()) << first.error();
    EXPECT_EQ(CanonicalJson(*first), golden);
    EXPECT_EQ((*store)->entries(), cells);
    EXPECT_EQ((*store)->counters().hits, 0);
  }

  // Fresh process stand-in: reopen the directory and resume.
  Result<std::unique_ptr<ArtifactStore>> store =
      ArtifactStore::Open(store_options);
  ASSERT_TRUE(store.ok()) << store.error();
  spec.store = store->get();
  const Result<ExploreReport> resumed = RunExplore(spec);
  ASSERT_TRUE(resumed.ok()) << resumed.error();
  EXPECT_EQ(CanonicalJson(*resumed), golden);
  const ArtifactStoreCounters counters = (*store)->counters();
  EXPECT_EQ(counters.hits, static_cast<std::int64_t>(cells));
  EXPECT_EQ(counters.puts, 0);  // nothing was recomputed

  if (DIR* d = ::opendir(store_dir)) {
    while (dirent* e = ::readdir(d)) {
      const std::string name = e->d_name;
      if (name != "." && name != "..") {
        ::unlink((std::string(store_dir) + "/" + name).c_str());
      }
    }
    ::closedir(d);
  }
  ::rmdir(store_dir);
}

TEST(ExploreTest, PartiallyPopulatedStoreResumesTheRemainder) {
  // The resume semantics that matter after a killed sweep: cells already in
  // the store replay; missing cells compute and land in the store.
  char dir_template[] = "/tmp/ws_explore_partial_XXXXXX";
  char* store_dir = ::mkdtemp(dir_template);
  ASSERT_NE(store_dir, nullptr);

  ArtifactStoreOptions store_options;
  store_options.dir = store_dir;
  Result<std::unique_ptr<ArtifactStore>> store =
      ArtifactStore::Open(store_options);
  ASSERT_TRUE(store.ok()) << store.error();

  // "Interrupted" sweep: only gcd's two cells make it into the store.
  ExploreSpec partial = SmallSpec();
  partial.designs.resize(1);
  partial.store = store->get();
  ASSERT_TRUE(RunExplore(partial).ok());
  EXPECT_EQ((*store)->entries(), 2u);

  ExploreSpec full = SmallSpec();
  const Result<ExploreReport> bare = RunExplore(full);
  ASSERT_TRUE(bare.ok()) << bare.error();

  full.store = store->get();
  const Result<ExploreReport> resumed = RunExplore(full);
  ASSERT_TRUE(resumed.ok()) << resumed.error();
  EXPECT_EQ(CanonicalJson(*resumed), CanonicalJson(*bare));
  const ArtifactStoreCounters counters = (*store)->counters();
  EXPECT_EQ(counters.hits, 2);   // gcd cells replayed
  EXPECT_EQ(counters.puts, 4);   // 2 from the partial sweep + 2 findmin cells
  EXPECT_EQ((*store)->entries(), 4u);

  if (DIR* d = ::opendir(store_dir)) {
    while (dirent* e = ::readdir(d)) {
      const std::string name = e->d_name;
      if (name != "." && name != "..") {
        ::unlink((std::string(store_dir) + "/" + name).c_str());
      }
    }
    ::closedir(d);
  }
  ::rmdir(store_dir);
}

TEST(ExploreTest, TableRendererCoversEveryRun) {
  ExploreSpec spec = SmallSpec();
  const Result<ExploreReport> r = RunExplore(spec);
  ASSERT_TRUE(r.ok()) << r.error();
  const std::string table = ExploreReportToTable(*r);
  EXPECT_NE(table.find("gcd"), std::string::npos);
  EXPECT_NE(table.find("findmin"), std::string::npos);
  EXPECT_NE(table.find("wavesched-spec"), std::string::npos);
}

}  // namespace
}  // namespace ws
