// The design-space exploration engine: grid materialization, parallel
// determinism, per-run error capture, and report rendering.
#include "explore/explore.h"

#include <string>

#include <gtest/gtest.h>

#include "explore/report.h"

namespace ws {
namespace {

ExploreSpec SmallSpec() {
  ExploreSpec spec;
  spec.designs = {{"gcd", ""}, {"findmin", ""}};
  spec.modes = {SpeculationMode::kWavesched, SpeculationMode::kWaveschedSpec};
  spec.num_stimuli = 10;
  spec.seed = 1998;
  return spec;
}

std::string CanonicalJson(const ExploreReport& report) {
  ReportRenderOptions render;
  render.include_timing = false;  // wall-clock fields differ run to run
  return ExploreReportToJson(report, render);
}

TEST(ExploreTest, EmptyDesignListIsASpecError) {
  ExploreSpec spec;
  const Result<ExploreReport> r = RunExplore(spec);
  EXPECT_FALSE(r.ok());
}

TEST(ExploreTest, GridIsCrossProductInSpecOrder) {
  ExploreSpec spec = SmallSpec();
  spec.allocations = {{"default", ""}, {"unlimited", "unlimited"}};
  const Result<ExploreReport> r = RunExplore(spec);
  ASSERT_TRUE(r.ok()) << r.error();
  ASSERT_EQ(r->runs.size(), 2u * 2u * 2u);
  // Design-major, then mode, then allocation.
  EXPECT_EQ(r->runs[0].design, "gcd");
  EXPECT_EQ(r->runs[0].allocation, "default");
  EXPECT_EQ(r->runs[1].allocation, "unlimited");
  EXPECT_EQ(r->runs[4].design, "findmin");
  for (const ExploreRun& run : r->runs) {
    EXPECT_TRUE(run.ok) << run.design << ": " << run.error;
    EXPECT_GT(run.states, 0u);
    EXPECT_GT(run.enc_markov, 0.0);
  }
}

TEST(ExploreTest, ParallelReportIsByteIdenticalToSequential) {
  ExploreSpec spec = SmallSpec();
  spec.workers = 0;
  const Result<ExploreReport> sequential = RunExplore(spec);
  ASSERT_TRUE(sequential.ok()) << sequential.error();

  spec.workers = 4;
  const Result<ExploreReport> parallel = RunExplore(spec);
  ASSERT_TRUE(parallel.ok()) << parallel.error();

  spec.workers = 1;
  const Result<ExploreReport> single = RunExplore(spec);
  ASSERT_TRUE(single.ok()) << single.error();

  EXPECT_EQ(CanonicalJson(*sequential), CanonicalJson(*parallel));
  EXPECT_EQ(CanonicalJson(*sequential), CanonicalJson(*single));
}

TEST(ExploreTest, UnknownBenchmarkIsAPerRunError) {
  ExploreSpec spec = SmallSpec();
  spec.designs.push_back({"no_such_design", ""});
  const Result<ExploreReport> r = RunExplore(spec);
  ASSERT_TRUE(r.ok()) << r.error();  // the sweep itself succeeds
  const ExploreRun* bad = r->Find("no_such_design",
                                  SpeculationMode::kWavesched, "default",
                                  "default");
  ASSERT_NE(bad, nullptr);
  EXPECT_FALSE(bad->ok);
  EXPECT_FALSE(bad->error.empty());
  // Healthy runs are unaffected.
  const ExploreRun* good =
      r->Find("gcd", SpeculationMode::kWavesched, "default", "default");
  ASSERT_NE(good, nullptr);
  EXPECT_TRUE(good->ok);
}

TEST(ExploreTest, ExhaustedCapIsAPerRunError) {
  ExploreSpec spec = SmallSpec();
  spec.base_options.max_states = 1;
  const Result<ExploreReport> r = RunExplore(spec);
  ASSERT_TRUE(r.ok()) << r.error();
  for (const ExploreRun& run : r->runs) {
    EXPECT_FALSE(run.ok);
    EXPECT_FALSE(run.error.empty());
  }
  // Error runs still render.
  EXPECT_NE(CanonicalJson(*r).find("\"ok\":false"), std::string::npos);
}

TEST(ExploreTest, InvalidBaseOptionsAreASpecError) {
  ExploreSpec spec = SmallSpec();
  spec.base_options.gc_window = 0;
  EXPECT_FALSE(RunExplore(spec).ok());
}

TEST(ExploreTest, JsonCarriesPhaseTimingWhenRequested) {
  ExploreSpec spec = SmallSpec();
  spec.designs.resize(1);
  spec.modes.resize(1);
  const Result<ExploreReport> r = RunExplore(spec);
  ASSERT_TRUE(r.ok()) << r.error();
  ASSERT_EQ(r->runs.size(), 1u);
  EXPECT_GT(r->runs[0].stats.phase.total_ns, 0);

  const std::string timed = ExploreReportToJson(*r);
  EXPECT_NE(timed.find("\"phase\""), std::string::npos);
  EXPECT_NE(timed.find("\"successor_ns\""), std::string::npos);
  EXPECT_NE(timed.find("\"closure_ns\""), std::string::npos);
  EXPECT_NE(timed.find("\"bdd_ops\""), std::string::npos);

  const std::string canonical = CanonicalJson(*r);
  EXPECT_EQ(canonical.find("\"phase\""), std::string::npos);
  EXPECT_EQ(canonical.find("wall_ms"), std::string::npos);
}

TEST(ExploreTest, SimEncMatchesMarkovOnDataIndependentDesign) {
  // TLC's control flow is data-independent of the schedule, so the
  // trace-driven and analytic E.N.C. agree in shape; on findmin with
  // enough stimuli they track within a few percent.
  ExploreSpec spec;
  spec.designs = {{"findmin", ""}};
  spec.modes = {SpeculationMode::kWaveschedSpec};
  spec.num_stimuli = 50;
  const Result<ExploreReport> r = RunExplore(spec);
  ASSERT_TRUE(r.ok()) << r.error();
  const ExploreRun& run = r->runs[0];
  ASSERT_TRUE(run.ok) << run.error;
  EXPECT_GT(run.enc_sim, 0.0);
  EXPECT_NEAR(run.enc_sim / run.enc_markov, 1.0, 0.25);
}

TEST(ExploreTest, AreaOverheadComparesAgainstWavesched) {
  ExploreSpec spec;
  spec.designs = {{"gcd", ""}};
  spec.modes = {SpeculationMode::kWavesched, SpeculationMode::kWaveschedSpec};
  spec.num_stimuli = 10;
  spec.measure_area = true;
  const Result<ExploreReport> r = RunExplore(spec);
  ASSERT_TRUE(r.ok()) << r.error();
  const ExploreRun* base =
      r->Find("gcd", SpeculationMode::kWavesched, "default", "default");
  const ExploreRun* sp =
      r->Find("gcd", SpeculationMode::kWaveschedSpec, "default", "default");
  ASSERT_NE(base, nullptr);
  ASSERT_NE(sp, nullptr);
  EXPECT_GT(base->area, 0.0);
  EXPECT_GT(sp->area, 0.0);
  EXPECT_TRUE(sp->has_area_overhead);
  EXPECT_FALSE(base->has_area_overhead);  // no overhead vs itself
}

TEST(ExploreTest, TableRendererCoversEveryRun) {
  ExploreSpec spec = SmallSpec();
  const Result<ExploreReport> r = RunExplore(spec);
  ASSERT_TRUE(r.ok()) << r.error();
  const std::string table = ExploreReportToTable(*r);
  EXPECT_NE(table.find("gcd"), std::string::npos);
  EXPECT_NE(table.find("findmin"), std::string::npos);
  EXPECT_NE(table.find("wavesched-spec"), std::string::npos);
}

}  // namespace
}  // namespace ws
