// The adaptive re-scheduling subsystem (src/adapt/): probability derivation
// is pure and byte-reproducible, profile producers agree, a daemon-style
// artifact swap decodes and measures identically to a fresh schedule at the
// derived probabilities, the dispatcher's background lane never swaps in a
// worse schedule, and the offline fixed-point loop (`ws_explore --adapt`)
// renders byte-identical reports at any worker count.
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>

#include "adapt/adapt.h"
#include "adapt/profile.h"
#include "explore/explore.h"
#include "explore/report.h"
#include "explore/run_codec.h"
#include "io/codec.h"
#include "serve/dispatch.h"
#include "serve/metrics.h"
#include "suite/benchmarks.h"

namespace ws {
namespace {

TEST(SmoothingTest, ClosedFormWithLaplacePriorAndClamp) {
  // (taken + 1) / (total + 2), clamped to [0.005, 0.995].
  EXPECT_DOUBLE_EQ(SmoothedProbability(CondCounts{0, 0}), 0.5);
  EXPECT_DOUBLE_EQ(SmoothedProbability(CondCounts{40, 10}), 41.0 / 52.0);
  EXPECT_DOUBLE_EQ(SmoothedProbability(CondCounts{1, 3}), 2.0 / 6.0);
  EXPECT_DOUBLE_EQ(SmoothedProbability(CondCounts{1000000, 0}), 0.995);
  EXPECT_DOUBLE_EQ(SmoothedProbability(CondCounts{0, 1000000}), 0.005);
}

TEST(ProfileKeyTest, StoreKeyIsSaltedAndStable) {
  const Fp128 cell{0x1234, 0x5678};
  const Fp128 profile_key = ProfileStoreKey(cell);
  EXPECT_NE(profile_key, cell);                        // never collides with
  EXPECT_EQ(profile_key, ProfileStoreKey(cell));       // the run artifact
  EXPECT_NE(profile_key, ProfileStoreKey(Fp128{0x1234, 0x5679}));
}

TEST(DerivationTest, AppliesControlConditionsAndSkipsForeignIds) {
  const Result<Benchmark> bench = MakeBenchmarkByName("gcd", 5, 1998);
  ASSERT_TRUE(bench.ok()) << bench.error();
  Cdfg graph = bench->graph;

  // The first control condition of the graph.
  NodeId cond = NodeId::invalid();
  for (std::size_t i = 0; i < graph.num_nodes(); ++i) {
    const NodeId id(static_cast<std::uint32_t>(i));
    if (graph.is_control_condition(id)) {
      cond = id;
      break;
    }
  }
  ASSERT_TRUE(cond.valid()) << "gcd has control conditions";

  BranchProfile profile;
  profile.traces = 10;
  profile.conds[cond.value()] = CondCounts{9, 1};
  // Foreign ids — minted on a relaxed mem-spec graph or from another design
  // revision — must be skipped, not crash or misapply.
  profile.conds[static_cast<std::uint32_t>(graph.num_nodes()) + 5] =
      CondCounts{3, 3};

  const double before = graph.cond_probability(cond);
  const ApplyProfileResult applied = ApplyProfileToGraph(graph, profile);
  EXPECT_EQ(applied.applied, 1);
  const double expected = SmoothedProbability(CondCounts{9, 1});
  EXPECT_DOUBLE_EQ(graph.cond_probability(cond), expected);
  EXPECT_DOUBLE_EQ(applied.max_delta, expected > before ? expected - before
                                                        : before - expected);

  // Pure: the same profile applied to a fresh copy derives the same map.
  Cdfg again = bench->graph;
  const ApplyProfileResult repeat = ApplyProfileToGraph(again, profile);
  EXPECT_EQ(repeat.applied, applied.applied);
  EXPECT_DOUBLE_EQ(repeat.max_delta, applied.max_delta);
  EXPECT_DOUBLE_EQ(again.cond_probability(cond), expected);
  const std::map<NodeId, double> derived =
      DeriveProbabilities(bench->graph, profile);
  ASSERT_EQ(derived.size(), 1u);
  EXPECT_EQ(derived.begin()->first, cond);
}

TEST(ProducerTest, StgSimAndInterpAgreeOnSinglePathOutcomes) {
  // Single-path schedules evaluate exactly the conditions the golden
  // interpreter does (no speculation, so nothing is squashed): both
  // producers must observe identical outcome counts.
  const Result<Benchmark> bench = MakeBenchmarkByName("gcd", 10, 1998);
  ASSERT_TRUE(bench.ok()) << bench.error();
  const Result<ScheduleReport> report =
      ScheduleBenchmark(*bench, SpeculationMode::kSinglePath);
  ASSERT_TRUE(report.ok()) << report.error();

  const BranchProfile from_sim =
      ProfileFromStgSim(report->stg, bench->graph, bench->stimuli);
  const BranchProfile from_interp =
      ProfileFromInterp(bench->graph, bench->stimuli);

  EXPECT_EQ(from_sim.traces, 10);
  EXPECT_EQ(from_interp.traces, 10);
  EXPECT_GT(from_sim.cycles, 0);    // the simulator counts cycles
  EXPECT_EQ(from_interp.cycles, 0); // the interpreter has no cycle notion
  EXPECT_EQ(from_sim.conds, from_interp.conds);
}

TEST(SwapTest, SwappedArtifactMatchesFreshScheduleAtDerivedProbabilities) {
  // The daemon's swap, replayed inline: profile the baseline schedule,
  // re-schedule at the derived probabilities, wrap the candidate exactly as
  // ExecuteAdapt does (generation-tagged v4 envelope), and check the stored
  // bytes decode to the same run a fresh computation produces.
  CellRequest request;
  request.design = DesignSpec{"gcd", ""};
  request.mode = SpeculationMode::kSinglePath;
  request.num_stimuli = 10;
  const ExploreSpec spec = request.ToSpec();
  const ExploreCell cell = request.ToCell();
  const Result<Benchmark> bench = BuildExploreDesign(cell.design, spec);
  ASSERT_TRUE(bench.ok()) << bench.error();
  const Result<Allocation> allocation =
      BuildExploreAllocation(*bench, cell.alloc);
  ASSERT_TRUE(allocation.ok()) << allocation.error();

  const ExploreRun baseline =
      RunBenchmarkCell(spec, *bench, *allocation, cell);
  ASSERT_TRUE(baseline.ok) << baseline.error;
  const BranchProfile profile =
      ProfileFromStgSim(baseline.stg, bench->graph, bench->stimuli);
  ASSERT_FALSE(profile.empty());

  Benchmark adapted = *bench;
  ApplyProfileToGraph(adapted.graph, profile);
  const ExploreRun candidate =
      RunBenchmarkCell(spec, adapted, *allocation, cell);
  ASSERT_TRUE(candidate.ok) << candidate.error;

  ArtifactMeta meta;
  meta.generation = 1;
  meta.profile_digest = ProfileDigest(profile);
  const std::string artifact =
      EncodeArtifactWithMeta(ArtifactKind::kExploreRun,
                             EncodeRunBody(candidate), meta);

  const Result<ArtifactMeta> stored_meta = PeekArtifactMeta(artifact);
  ASSERT_TRUE(stored_meta.ok()) << stored_meta.error();
  EXPECT_EQ(*stored_meta, meta);

  const Result<ExploreRun> decoded = DecodeRunArtifact(artifact);
  ASSERT_TRUE(decoded.ok()) << decoded.error();
  // Bit-exact metric fields: the swapped bytes measure exactly like the
  // fresh computation they came from.
  EXPECT_EQ(decoded->enc_sim, candidate.enc_sim);
  EXPECT_EQ(decoded->enc_markov, candidate.enc_markov);
  EXPECT_EQ(decoded->states, candidate.states);
  EXPECT_EQ(decoded->op_initiations, candidate.op_initiations);
  EXPECT_EQ(decoded->best_case, candidate.best_case);
  EXPECT_EQ(decoded->worst_case, candidate.worst_case);

  // And a second fresh computation at the same derived probabilities is
  // canonically identical (the determinism the swap protocol rests on).
  Benchmark adapted2 = *bench;
  ApplyProfileToGraph(adapted2.graph, profile);
  const ExploreRun candidate2 =
      RunBenchmarkCell(spec, adapted2, *allocation, cell);
  ASSERT_TRUE(candidate2.ok) << candidate2.error;
  const ReportRenderOptions canonical{/*include_timing=*/false};
  EXPECT_EQ(ExploreRunToJson(*decoded, canonical),
            ExploreRunToJson(candidate2, canonical));
}

TEST(GuardTest, DispatcherNeverSwapsInAWorseSchedule) {
  MetricsRegistry metrics;
  DispatcherOptions options;
  options.shards = 1;
  options.workers = 2;
  ServeDispatcher dispatcher(options, &metrics);
  dispatcher.Start();

  CellRequest request;
  request.design = DesignSpec{"gcd", ""};
  request.mode = SpeculationMode::kSinglePath;
  request.num_stimuli = 10;

  const PendingHandle first =
      dispatcher.Submit(request, PendingResult::Clock::now());
  const ServeOutcome baseline = first->Wait();
  ASSERT_EQ(baseline.status, ResponseStatus::kOk);

  // An adversarial profile: the truth, inverted. The re-schedule it induces
  // must measure worse on the real traces, so the guard rejects the swap.
  const Result<Benchmark> bench =
      BuildExploreDesign(request.design, request.ToSpec());
  ASSERT_TRUE(bench.ok()) << bench.error();
  const BranchProfile truth =
      ProfileFromInterp(bench->graph, bench->stimuli);
  ASSERT_FALSE(truth.empty());
  BranchProfile inverted = truth;
  for (auto& [node, counts] : inverted.conds) {
    std::swap(counts.taken, counts.not_taken);
  }

  const Result<std::string> ack = dispatcher.ReportProfile(request, inverted);
  ASSERT_TRUE(ack.ok()) << ack.error();

  // The adapt lane is asynchronous; wait for the verdict.
  Counter* swaps = metrics.counter("serve.adapt_swaps");
  Counter* rejected = metrics.counter("serve.adapt_rejected");
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (swaps->value() + rejected->value() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_EQ(swaps->value(), 0);
  EXPECT_EQ(rejected->value(), 1);
  EXPECT_EQ(metrics.counter("serve.adapt_profiles")->value(), 1);

  // The served artifact is untouched: a re-request returns the baseline
  // bytes from the cache.
  const PendingHandle second =
      dispatcher.Submit(request, PendingResult::Clock::now());
  const ServeOutcome after = second->Wait();
  ASSERT_EQ(after.status, ResponseStatus::kOk);
  EXPECT_EQ(after.body, baseline.body);

  dispatcher.Drain();
}

TEST(AdaptLoopTest, SkewedStartRecoversAndConverges) {
  ExploreSpec spec;
  spec.designs = {DesignSpec{"gcd", ""}};
  spec.modes = {SpeculationMode::kSinglePath};
  spec.num_stimuli = 25;
  spec.workers = 0;

  AdaptOptions options;
  options.max_iterations = 5;
  options.skew = true;
  const AdaptReport report = RunAdaptExplore(spec, options);
  ASSERT_EQ(report.cells.size(), 1u);
  const AdaptCellResult& cell = report.cells[0];
  ASSERT_TRUE(cell.ok) << cell.error;
  ASSERT_GE(cell.iterations.size(), 2u);
  // Feedback from the profiled traces must recover the skew-inverted start:
  // a later iteration beats iteration 0, and the loop settles.
  EXPECT_GT(cell.improvement_pct(), 5.0);
  EXPECT_TRUE(cell.converged);
  EXPECT_EQ(cell.profile.traces,
            cell.iterations.back().traces);
}

TEST(AdaptLoopTest, ReportIsByteIdenticalAcrossWorkerCounts) {
  ExploreSpec spec;
  spec.designs = {DesignSpec{"gcd", ""}, DesignSpec{"test1", ""}};
  spec.modes = {SpeculationMode::kSinglePath};
  spec.num_stimuli = 10;

  AdaptOptions options;
  options.max_iterations = 2;
  options.skew = true;

  spec.workers = 0;
  const std::string sequential = RenderAdaptReport(RunAdaptExplore(spec, options));
  spec.workers = 4;
  const std::string parallel = RenderAdaptReport(RunAdaptExplore(spec, options));
  EXPECT_FALSE(sequential.empty());
  EXPECT_EQ(sequential, parallel);
}

}  // namespace
}  // namespace ws
