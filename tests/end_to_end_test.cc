// Full-flow integration tests: behavioral source -> frontend -> profiling ->
// both schedulers -> cycle-accurate simulation cross-checked against the
// interpreter -> analyses. Exercises the same path as the wavesched_cli
// example on the shipped sample designs.
#include <gtest/gtest.h>

#include "analysis/metrics.h"
#include "base/rng.h"
#include "lang/lower.h"
#include "sched/scheduler.h"
#include "sim/interpreter.h"
#include "sim/stg_sim.h"

namespace ws {
namespace {

struct FlowResult {
  double enc_ws = 0.0;
  double enc_spec = 0.0;
};

FlowResult RunFlow(const std::string& name, const std::string& source,
                   int lookahead, double sigma = 24.0) {
  Cdfg g = CompileBehavioral(name, source);

  StimulusSpec spec;
  spec.default_spec.kind = StimulusSpec::Kind::kGaussian;
  spec.default_spec.sigma = sigma;
  spec.default_spec.non_negative = true;
  Rng rng(name.size() * 1000003u);
  std::vector<Stimulus> stimuli = GenerateStimuli(g, spec, 20, rng);
  // Keep inputs strictly positive where loops need it.
  for (Stimulus& st : stimuli) {
    for (auto& [in, v] : st.inputs) v = v + 1;
  }
  ProfileBranchProbabilities(g, stimuli);

  const FuLibrary lib = FuLibrary::PaperLibrary();
  const Allocation alloc = Allocation::Unlimited(lib);
  FlowResult result;
  for (const bool speculate : {false, true}) {
    SchedulerOptions opts;
    opts.mode = speculate ? SpeculationMode::kWaveschedSpec
                          : SpeculationMode::kWavesched;
    opts.lookahead = lookahead;
    const ScheduleResult r = Schedule({&g, &lib, &alloc, opts}).value();
    const double enc = MeasureExpectedCycles(r.stg, g, stimuli);
    (speculate ? result.enc_spec : result.enc_ws) = enc;
  }
  return result;
}

TEST(EndToEndTest, GcdSource) {
  const FlowResult r = RunFlow("gcd", R"(
    input x;
    input y;
    a = x; b = y;
    while (a != b) {
      if (a > b) { a = a - b; } else { b = b - a; }
    }
    output gcd = a;
  )",
                               3, 64.0);
  EXPECT_GT(r.enc_ws, 0.0);
  EXPECT_LE(r.enc_spec, r.enc_ws);
  EXPECT_GT(r.enc_ws / r.enc_spec, 1.5);  // speculation helps GCD a lot
}

TEST(EndToEndTest, FindminSource) {
  const FlowResult r = RunFlow("findmin", R"(
    input n;
    array A[64];
    i = 0; best = 1048576; idx = 0;
    while (i < n) {
      v = A[i];
      if (v < best) { best = v; idx = i; }
      i = i + 1;
    }
    output index = idx;
    output minimum = best;
  )",
                               4);
  EXPECT_LE(r.enc_spec, r.enc_ws);
}

TEST(EndToEndTest, RunningSumWithClampSource) {
  const FlowResult r = RunFlow("clampsum", R"(
    input n;
    array A[32];
    i = 0; acc = 0;
    while (i < n) {
      v = A[i];
      if (v > 50) { v = 50; }
      acc = acc + v;
      i = i + 1;
    }
    output total = acc;
  )",
                               4);
  EXPECT_LE(r.enc_spec, r.enc_ws);
}

TEST(EndToEndTest, MemoryTransformSource) {
  // Read-modify-write over an array: memory token ordering under
  // speculation, plus a doubled conditional update.
  const FlowResult r = RunFlow("memxform", R"(
    input n;
    array A[32];
    i = 0;
    while (i < n) {
      v = A[i];
      if (v < 0) { v = 0 - v; }
      A[i] = v * 3;
      i = i + 1;
    }
    output steps = i;
  )",
                               4);
  EXPECT_LE(r.enc_spec, r.enc_ws);
}

TEST(EndToEndTest, PureDataflowGainsLittle) {
  // A loop-free arithmetic expression: speculation has no control flow to
  // break, so both modes produce the same schedule length.
  const FlowResult r = RunFlow("dataflow", R"(
    input a; input b; input c;
    x = a * b + c;
    y = (x + a) * (x + b);
    output o = y;
  )",
                               2);
  EXPECT_DOUBLE_EQ(r.enc_ws, r.enc_spec);
}

}  // namespace
}  // namespace ws
