// Standalone (non-gtest) fork-storm stress for the parallel wave loop: a
// synthetic design whose every state boundary resolves a stack of
// independent conditions, so one commit fans dozens of fresh branches into
// the work-stealing pool at once — per-branch BDD sub-arenas, COW PathState
// paging, and the migrate-at-commit path all under maximum sibling
// pressure. Output bytes must match the inline engine at every worker
// count. Used directly as a smoke test and as a workload of the TSan/ASan
// sub-builds (tests/run_tsan_check.cmake), where the pool's
// synchronization and the arenas' isolation are what is actually under
// test.
#include <cstdio>
#include <string>
#include <vector>

#include "base/strings.h"
#include "cdfg/builder.h"
#include "hw/resources.h"
#include "io/codec.h"
#include "sched/scheduler.h"
#include "suite/benchmarks.h"

namespace {

using namespace ws;

// `depth` chained compare/branch/join stages over fresh inputs: with
// unlimited units every comparison issues immediately, so the first state
// boundary resolves up to `depth` conditions at once and the STG forks into
// 2^depth sibling branches — the widest frontier one commit can produce.
Cdfg BuildForkStorm(int depth) {
  CdfgBuilder b("fork_storm");
  std::vector<NodeId> in;
  for (int i = 0; i <= depth; ++i) in.push_back(b.Input(StrCat("x", i)));
  NodeId acc = in[0];
  for (int d = 0; d < depth; ++d) {
    const NodeId c = b.Op(OpKind::kGt, StrCat("c", d), {acc, in[d + 1]});
    b.SetProbability(c, 0.25 + 0.05 * d);
    b.BeginIf(c);
    const NodeId t = b.Op(OpKind::kAdd, StrCat("t", d), {acc, in[d + 1]});
    b.BeginElse();
    const NodeId e = b.Op(OpKind::kSub, StrCat("e", d), {acc, in[d + 1]});
    b.EndIf();
    acc = b.Select(StrCat("j", d), c, t, e);
  }
  b.Output("out", acc);
  return b.Finish();
}

std::string Digest(const ScheduleReport& report) {
  return StrCat(EncodeStg(report.stg), "#", report.stats.states_created, "|",
                report.stats.closure_hits, "|", report.stats.speculative_ops,
                "|", report.stats.squashed_ops, "|", report.stats.total_ops,
                "|", report.stats.candidates_generated, "|",
                report.stats.bdd_ops, "|", report.stats.bdd_nodes);
}

// Schedules the request at workers {0, 1, 4}; returns false (and prints)
// unless every run succeeds with identical bytes.
bool CheckInvariant(const char* label, ScheduleRequest request) {
  std::string golden;
  for (const int workers : {0, 1, 4}) {
    request.options.wave_workers = workers;
    const Result<ScheduleReport> report = Schedule(request);
    if (!report.ok()) {
      std::fprintf(stderr, "FAIL: %s workers=%d: %s\n", label, workers,
                   report.error().c_str());
      return false;
    }
    const std::string digest = Digest(*report);
    if (workers == 0) {
      golden = digest;
    } else if (digest != golden) {
      std::fprintf(stderr,
                   "FAIL: %s workers=%d diverged from inline engine "
                   "(%zu vs %zu bytes)\n",
                   label, workers, digest.size(), golden.size());
      return false;
    }
  }
  std::printf("OK: %s byte-identical for workers {0,1,4} (%zu bytes)\n",
              label, golden.size());
  return true;
}

}  // namespace

int main() {
  // The synthetic storm: 2^6 sibling branches per boundary, speculated.
  const Cdfg storm = BuildForkStorm(6);
  const FuLibrary lib = FuLibrary::PaperLibrary();
  const Allocation unlimited = Allocation::Unlimited(lib);
  ScheduleRequest request;
  request.graph = &storm;
  request.library = &lib;
  request.allocation = &unlimited;
  request.options.mode = SpeculationMode::kWaveschedSpec;
  request.options.lookahead = 8;
  if (!CheckInvariant("fork_storm/spec", request)) return 1;
  request.options.mode = SpeculationMode::kSinglePath;
  if (!CheckInvariant("fork_storm/single", request)) return 1;

  // Loop-closure stress on real suite designs: forked branches must fold
  // onto already-committed states identically whatever thread expanded
  // them (closure runs commit-side, migration worker-side).
  for (const char* name : {"gcd", "barcode"}) {
    const Result<Benchmark> bench = MakeBenchmarkByName(name, 2, 7);
    if (!bench.ok()) {
      std::fprintf(stderr, "FAIL: %s: %s\n", name, bench.error().c_str());
      return 1;
    }
    ScheduleRequest suite_request;
    suite_request.graph = &bench->graph;
    suite_request.library = &bench->library;
    suite_request.allocation = &bench->allocation;
    suite_request.options.mode = SpeculationMode::kWaveschedSpec;
    suite_request.options.lookahead = bench->lookahead;
    if (!CheckInvariant(name, suite_request)) return 1;
  }
  return 0;
}
