// Concurrency check for the adaptive re-scheduling lane, run both natively
// and under the TSan sub-build (tests/run_tsan_check.cmake).
//
// Drives an in-process server over a Unix domain socket with scheduling
// clients and PROFILE-reporting clients hammering the same fingerprint
// concurrently, and asserts the adapt lane's contract:
//   * every in-flight SCHEDULE during the swap window gets a complete,
//     decodable run — the old bytes or the new bytes, never a torn mix;
//   * the served enc_sim never regresses below the baseline (the
//     never-swap-worse guard), and when a swap lands the improvement is
//     visible to later requests;
//   * every accepted report is counted, and the swapped artifact reaches
//     the durable store under a bumped generation with the profile digest;
//   * shutdown drains cleanly with reports still arriving.
// Exits 0 on success; prints the first failure and exits 1 otherwise.
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "adapt/profile.h"
#include "explore/explore.h"
#include "explore/run_codec.h"
#include "io/artifact_store.h"
#include "io/codec.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"

namespace {

using namespace ws;

int g_failures = 0;

#define CHECK_TRUE(cond, what)                                            \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "FAIL %s:%d: %s\n", __FILE__, __LINE__, what); \
      ++g_failures;                                                       \
    }                                                                     \
  } while (0)

// The demo cell: fig4's annotation says p(true) = 0.1 but the Gaussian
// stimuli resolve the branch near 50/50, so honest profile feedback makes
// the single-path schedule measurably better — a genuine swap.
CellRequest Fig4Request() {
  CellRequest request;
  request.design = DesignSpec{"fig4:0.1", ""};
  request.mode = SpeculationMode::kSinglePath;
  return request;
}

void AdaptUnderLoad(const std::string& store_dir) {
  ServerOptions options;
  options.unix_path =
      "/tmp/ws_adapt_check_" + std::to_string(::getpid()) + ".sock";
  options.shards = 2;
  options.workers = 4;
  options.store_dir = store_dir;
  ServeServer server(options);
  const Status started = server.Start();
  CHECK_TRUE(started.ok(), started.message().c_str());
  if (!started.ok()) return;
  const ServeAddress address{/*is_unix=*/true, options.unix_path, "", 0};

  const CellRequest fig = Fig4Request();

  // Baseline: schedule the cell once before any profile arrives.
  double baseline = 0.0;
  {
    Result<ServeClient> client = ServeClient::Connect(address);
    CHECK_TRUE(client.ok(), "baseline connect");
    if (!client.ok()) return;
    const Result<ScheduleArtifact> artifact = client->Schedule(fig);
    CHECK_TRUE(artifact.ok() && artifact->run.ok, "baseline schedule");
    if (!artifact.ok() || !artifact->run.ok) return;
    baseline = artifact->run.enc_sim;
  }

  // The profile clients rebuild the design deterministically, like
  // `ws_client profile` does.
  const Result<Benchmark> bench =
      BuildExploreDesign(fig.design, fig.ToSpec());
  CHECK_TRUE(bench.ok(), "profile benchmark build");
  if (!bench.ok()) return;
  const BranchProfile observed =
      ProfileFromInterp(bench->graph, bench->stimuli);
  CHECK_TRUE(!observed.empty(), "observed profile is empty");

  // Mixed load: schedulers re-request the cell (plus unrelated traffic)
  // while reporters feed the adapt lane the same fingerprint.
  constexpr int kSchedulers = 4;
  constexpr int kReporters = 3;
  constexpr int kRounds = 12;
  std::atomic<int> schedule_failures{0};
  std::atomic<int> torn{0};
  std::atomic<int> worse{0};
  std::atomic<int> reports_accepted{0};

  std::vector<std::thread> threads;
  threads.reserve(kSchedulers + kReporters);
  for (int c = 0; c < kSchedulers; ++c) {
    threads.emplace_back([&, c] {
      Result<ServeClient> client = ServeClient::Connect(address);
      if (!client.ok()) {
        ++schedule_failures;
        return;
      }
      for (int r = 0; r < kRounds; ++r) {
        CellRequest request = fig;
        if (r % 3 == 2) {  // unrelated traffic on the other shard(s)
          request.design = DesignSpec{"gcd", ""};
          request.num_stimuli = 5;
          request.seed = 1998 + static_cast<std::uint64_t>(c);
        }
        const Result<ScheduleArtifact> artifact = client->Schedule(request);
        if (!artifact.ok() || !artifact->run.ok) {
          ++schedule_failures;
          continue;
        }
        // A torn read would decode garbage or the wrong design; a mid-swap
        // read must be exactly the old or the new complete artifact.
        if (artifact->run.design != request.design.name) ++torn;
        if (request.design.name == fig.design.name &&
            artifact->run.enc_sim > baseline + 1e-9) {
          ++worse;
        }
      }
    });
  }
  for (int c = 0; c < kReporters; ++c) {
    threads.emplace_back([&] {
      Result<ServeClient> client = ServeClient::Connect(address);
      if (!client.ok()) return;
      for (int r = 0; r < kRounds / 2; ++r) {
        const Result<std::string> ack = client->ReportProfile(fig, observed);
        if (ack.ok()) ++reports_accepted;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
    });
  }
  for (std::thread& t : threads) t.join();

  CHECK_TRUE(schedule_failures.load() == 0, "schedules failed under load");
  CHECK_TRUE(torn.load() == 0, "torn or misrouted artifact observed");
  CHECK_TRUE(worse.load() == 0, "a served run regressed past the baseline");
  CHECK_TRUE(reports_accepted.load() > 0, "no profile report was accepted");
  CHECK_TRUE(server.metrics().counter("serve.adapt_profiles")->value() ==
                 reports_accepted.load(),
             "accepted reports must all be counted");

  // Let the background lane finish the last queued re-schedule.
  Counter* swaps = server.metrics().counter("serve.adapt_swaps");
  Counter* rejected = server.metrics().counter("serve.adapt_rejected");
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(120);
  while (swaps->value() + rejected->value() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
  }
  CHECK_TRUE(swaps->value() + rejected->value() > 0,
             "the adapt lane never reached a verdict");
  CHECK_TRUE(swaps->value() >= 1,
             "honest fig4 feedback must swap in a better schedule");
  CHECK_TRUE(server.metrics().histogram("serve.adapt_resched_us")->count() >=
                 swaps->value() + rejected->value(),
             "re-schedule latency must be recorded");

  // The swap is visible: a fresh request now serves the better schedule.
  double final_enc = baseline;
  {
    Result<ServeClient> client = ServeClient::Connect(address);
    CHECK_TRUE(client.ok(), "final connect");
    if (client.ok()) {
      const Result<ScheduleArtifact> artifact = client->Schedule(fig);
      CHECK_TRUE(artifact.ok() && artifact->run.ok, "final schedule");
      if (artifact.ok() && artifact->run.ok) {
        final_enc = artifact->run.enc_sim;
        CHECK_TRUE(final_enc < baseline - 1e-9,
                   "swapped schedule must measure better than the baseline");
      }
    }
  }

  // Reports racing shutdown must not wedge the drain.
  std::thread late([&] {
    Result<ServeClient> client = ServeClient::Connect(address);
    if (!client.ok()) return;
    for (int r = 0; r < 4; ++r) {
      (void)client->ReportProfile(fig, observed);
    }
  });
  server.Stop();
  late.join();
  std::remove(options.unix_path.c_str());

  std::fprintf(stderr,
               "adapt: baseline=%.4f final=%.4f swaps=%lld rejected=%lld "
               "reports=%d\n",
               baseline, final_enc,
               static_cast<long long>(swaps->value()),
               static_cast<long long>(rejected->value()),
               reports_accepted.load());
}

// After the server exits, the durable store must hold the swapped run under
// a bumped generation tagged with the accumulated profile's digest, and the
// profile itself under the salted profile key.
void StoreCarriesGenerationAndProfile(const std::string& store_dir) {
  const CellRequest fig = Fig4Request();
  const ExploreSpec spec = fig.ToSpec();
  const ExploreCell cell = fig.ToCell();
  const Result<Benchmark> bench = BuildExploreDesign(cell.design, spec);
  CHECK_TRUE(bench.ok(), "store check benchmark build");
  if (!bench.ok()) return;
  const Result<Allocation> allocation =
      BuildExploreAllocation(*bench, cell.alloc);
  CHECK_TRUE(allocation.ok(), "store check allocation build");
  if (!allocation.ok()) return;
  const Fp128 key = ExploreCellKey(
      spec, cell, MakeCellScheduleRequest(spec, *bench, *allocation, cell));

  ArtifactStoreOptions options;
  options.dir = store_dir;
  Result<std::unique_ptr<ArtifactStore>> store =
      ArtifactStore::Open(std::move(options));
  CHECK_TRUE(store.ok(), "store reopen");
  if (!store.ok()) return;

  const std::optional<std::string> artifact = (*store)->Get(key);
  CHECK_TRUE(artifact.has_value(), "swapped run artifact not in the store");
  const std::optional<std::string> profile_bytes =
      (*store)->Get(ProfileStoreKey(key));
  CHECK_TRUE(profile_bytes.has_value(), "profile not persisted");
  if (!artifact.has_value() || !profile_bytes.has_value()) return;

  const Result<ArtifactMeta> meta = PeekArtifactMeta(*artifact);
  CHECK_TRUE(meta.ok(), "swapped artifact meta undecodable");
  const Result<BranchProfile> profile = DecodeProfileArtifact(*profile_bytes);
  CHECK_TRUE(profile.ok(), "persisted profile undecodable");
  if (!meta.ok() || !profile.ok()) return;
  CHECK_TRUE(meta->generation >= 1, "swap must bump the generation");
  // Every report merged the same observed profile, so the artifact's digest
  // — stamped at swap time, possibly before the last report landed — must
  // be the digest of observed-times-k for some report count k, and the
  // persisted profile itself the full accumulation.
  const Result<Benchmark> fig_bench = BuildExploreDesign(fig.design, spec);
  CHECK_TRUE(fig_bench.ok(), "store check profile rebuild");
  if (!fig_bench.ok()) return;
  const BranchProfile observed =
      ProfileFromInterp(fig_bench->graph, fig_bench->stimuli);
  CHECK_TRUE(observed.traces > 0 &&
                 profile->traces % observed.traces == 0,
             "persisted traces must be a whole number of reports");
  const std::int64_t total_reports =
      observed.traces > 0 ? profile->traces / observed.traces : 0;
  BranchProfile accumulated;
  bool digest_found = false;
  for (std::int64_t k = 1; k <= total_reports; ++k) {
    MergeProfile(accumulated, observed);
    if (ProfileDigest(accumulated) == meta->profile_digest) {
      digest_found = true;
    }
  }
  CHECK_TRUE(digest_found,
             "artifact digest must match an accumulated report prefix");
  CHECK_TRUE(accumulated == *profile,
             "persisted profile must be the full accumulation");

  const Result<ExploreRun> run = DecodeRunArtifact(*artifact);
  CHECK_TRUE(run.ok() && run->ok, "swapped run undecodable");
  std::fprintf(stderr, "store: generation=%u profile_traces=%lld\n",
               meta->generation,
               static_cast<long long>(profile->traces));
}

}  // namespace

int main() {
  char dir_template[] = "/tmp/ws_adapt_check_XXXXXX";
  char* dir = ::mkdtemp(dir_template);
  if (dir == nullptr) {
    std::fprintf(stderr, "adapt_check: mkdtemp failed\n");
    return 1;
  }
  AdaptUnderLoad(dir);
  StoreCarriesGenerationAndProfile(dir);
  if (g_failures != 0) {
    std::fprintf(stderr, "adapt_check: %d failure(s)\n", g_failures);
    return 1;
  }
  std::fprintf(stderr, "adapt_check: OK\n");
  return 0;
}
