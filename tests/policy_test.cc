// Selection-policy tests (sched/policy.h): the admission tie-break's exact
// semantics, and the determinism regression the tie-break exists for — the
// Eq. 5 criticality schedule must be byte-identical across repeated runs
// and across explore worker counts, and every alternative policy must
// produce a valid schedule that the engine distinguishes by fingerprint.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "explore/explore.h"
#include "explore/report.h"
#include "io/codec.h"
#include "sched/closure.h"
#include "sched/policy.h"
#include "sched/scheduler.h"
#include "stg/stg.h"
#include "suite/benchmarks.h"

namespace ws {
namespace {

Candidate MakeCandidate(std::uint32_t node, int iter, double priority) {
  Candidate c;
  c.node = NodeId(node);
  c.iter = iter;
  c.priority = priority;
  return c;
}

TEST(BetterCandidateTest, HigherPriorityWinsOutsideTheTolerance) {
  const Candidate lo = MakeCandidate(9, 0, 1.0);
  const Candidate hi = MakeCandidate(3, 5, 1.5);
  EXPECT_TRUE(BetterCandidate(hi, lo));
  EXPECT_FALSE(BetterCandidate(lo, hi));
}

TEST(BetterCandidateTest, NearTiesFallBackToIterationThenNode) {
  // Within 1e-12 the priorities tie (they are products of profiled floats;
  // exact equality would be fragile) and (iter, node) decides — a total,
  // generation-order-independent order.
  const Candidate a = MakeCandidate(7, 1, 0.5);
  const Candidate b = MakeCandidate(2, 2, 0.5 + 1e-14);
  EXPECT_TRUE(BetterCandidate(a, b));   // earlier iteration
  EXPECT_FALSE(BetterCandidate(b, a));

  const Candidate c = MakeCandidate(4, 1, 0.5);
  EXPECT_TRUE(BetterCandidate(c, a));   // same iteration, lower node id
  EXPECT_FALSE(BetterCandidate(a, c));

  // Identical key: neither improves on the other (admission keeps `best`).
  EXPECT_FALSE(BetterCandidate(a, a));
}

TEST(SelectionPolicyTest, NamesRoundTripAndRejectUnknowns) {
  for (const SelectionPolicy p :
       {SelectionPolicy::kCriticality, SelectionPolicy::kProbabilityOnly,
        SelectionPolicy::kPathLengthOnly, SelectionPolicy::kFifo}) {
    const Result<SelectionPolicy> round =
        ParseSelectionPolicy(SelectionPolicyName(p));
    ASSERT_TRUE(round.ok()) << SelectionPolicyName(p);
    EXPECT_EQ(*round, p);
  }
  EXPECT_TRUE(ParseSelectionPolicy("criticality").ok());
  EXPECT_FALSE(ParseSelectionPolicy("greedy").ok());
  EXPECT_FALSE(ParseSelectionPolicy("").ok());
}

TEST(PolicyDeterminismTest, CriticalityScheduleIsByteIdenticalAcrossRuns) {
  const Result<Benchmark> bench = MakeBenchmarkByName("gcd", 5, 1998);
  ASSERT_TRUE(bench.ok()) << bench.error();
  SchedulerOptions options;
  options.mode = SpeculationMode::kWaveschedSpec;
  options.lookahead = bench->lookahead;

  std::string first;
  for (int run = 0; run < 3; ++run) {
    const Result<ScheduleReport> report = ScheduleBenchmark(*bench, options);
    ASSERT_TRUE(report.ok()) << report.error();
    const std::string bytes = EncodeStg(report->stg);
    if (run == 0) {
      first = bytes;
    } else {
      // Eq. 5 priorities are float products; only the deterministic
      // (iteration, node) tie-break keeps repeated runs byte-identical.
      EXPECT_EQ(bytes, first) << "run " << run << " diverged";
    }
  }
}

TEST(PolicyDeterminismTest, ExploreReportsAgreeAcrossWorkerCounts) {
  // The tie-break must also be immune to scheduling-order perturbations from
  // the explore pool: the canonical (timing-free) report for a
  // design x mode x policy grid is one byte string, whatever the worker
  // count.
  ReportRenderOptions render;
  render.include_timing = false;

  std::string baseline;
  for (const int workers : {0, 1, 4}) {
    ExploreSpec spec;
    spec.designs = {DesignSpec{"gcd", ""}, DesignSpec{"test1", ""}};
    spec.modes = {SpeculationMode::kWavesched,
                  SpeculationMode::kWaveschedSpec};
    spec.policies = {SelectionPolicy::kCriticality, SelectionPolicy::kFifo};
    spec.workers = workers;
    spec.num_stimuli = 5;
    const Result<ExploreReport> report = RunExplore(spec);
    ASSERT_TRUE(report.ok()) << report.error();
    const std::string json = ExploreReportToJson(*report, render);
    if (baseline.empty()) {
      baseline = json;
    } else {
      EXPECT_EQ(json, baseline) << "workers=" << workers << " diverged";
    }
  }
}

TEST(SelectionPolicyTest, EveryPolicySchedulesTheSuiteValidly) {
  const Result<Benchmark> bench = MakeBenchmarkByName("gcd", 5, 1998);
  ASSERT_TRUE(bench.ok()) << bench.error();
  for (const SelectionPolicy policy :
       {SelectionPolicy::kCriticality, SelectionPolicy::kProbabilityOnly,
        SelectionPolicy::kPathLengthOnly, SelectionPolicy::kFifo}) {
    SchedulerOptions options;
    options.mode = SpeculationMode::kWaveschedSpec;
    options.lookahead = bench->lookahead;
    options.policy = policy;
    const Result<ScheduleReport> report = ScheduleBenchmark(*bench, options);
    ASSERT_TRUE(report.ok())
        << SelectionPolicyName(policy) << ": " << report.error();
    report->stg.Validate();
    EXPECT_GT(report->stg.num_work_states(), 0u) << SelectionPolicyName(policy);
  }
}

TEST(SelectionPolicyTest, DefaultOptionsMeanCriticality) {
  const Result<Benchmark> bench = MakeBenchmarkByName("tlc", 5, 1998);
  ASSERT_TRUE(bench.ok()) << bench.error();
  SchedulerOptions plain;
  plain.mode = SpeculationMode::kWaveschedSpec;
  plain.lookahead = bench->lookahead;
  SchedulerOptions explicit_crit = plain;
  explicit_crit.policy = SelectionPolicy::kCriticality;

  const Result<ScheduleReport> a = ScheduleBenchmark(*bench, plain);
  const Result<ScheduleReport> b = ScheduleBenchmark(*bench, explicit_crit);
  ASSERT_TRUE(a.ok()) << a.error();
  ASSERT_TRUE(b.ok()) << b.error();
  EXPECT_EQ(EncodeStg(a->stg), EncodeStg(b->stg));
}

TEST(SelectionPolicyTest, PolicyMovesTheRequestFingerprint) {
  const Result<Benchmark> bench = MakeBenchmarkByName("gcd", 5, 1998);
  ASSERT_TRUE(bench.ok()) << bench.error();
  ScheduleRequest request;
  request.graph = &bench->graph;
  request.library = &bench->library;
  request.allocation = &bench->allocation;
  request.options.mode = SpeculationMode::kWaveschedSpec;

  std::vector<Fp128> fps;
  for (const SelectionPolicy policy :
       {SelectionPolicy::kCriticality, SelectionPolicy::kProbabilityOnly,
        SelectionPolicy::kPathLengthOnly, SelectionPolicy::kFifo}) {
    request.options.policy = policy;
    fps.push_back(FingerprintScheduleRequest(request));
  }
  for (std::size_t i = 0; i < fps.size(); ++i) {
    for (std::size_t j = i + 1; j < fps.size(); ++j) {
      EXPECT_TRUE(fps[i].lo != fps[j].lo || fps[i].hi != fps[j].hi)
          << "policies " << i << " and " << j
          << " share a fingerprint — the store would cross-serve artifacts";
    }
  }
}

}  // namespace
}  // namespace ws
