# Configures and builds a sanitizer-instrumented copy of the tree in a
# nested build directory, then runs the explore determinism check under it.
# Driven as a ctest test (see tests/CMakeLists.txt) so the tier-1 flow
# exercises the worker pool's synchronization (TSan) and the scheduler/BDD
# hot paths' memory safety (ASan) without sanitizing the main build.
#
# Expects: -DSOURCE_DIR=<repo root> -DWORK_DIR=<scratch build dir>
#          -DSANITIZER=<thread|address> (defaults to thread)
if(NOT DEFINED SOURCE_DIR OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR "run_tsan_check.cmake needs -DSOURCE_DIR and -DWORK_DIR")
endif()
if(NOT DEFINED SANITIZER)
  set(SANITIZER thread)
endif()

message(STATUS "${SANITIZER}-sanitizer sub-build: configuring ${WORK_DIR}")
execute_process(
  COMMAND "${CMAKE_COMMAND}" -S "${SOURCE_DIR}" -B "${WORK_DIR}"
          -DWS_SANITIZE=${SANITIZER} -DCMAKE_BUILD_TYPE=RelWithDebInfo
  RESULT_VARIABLE configure_rc)
if(NOT configure_rc EQUAL 0)
  message(FATAL_ERROR
          "${SANITIZER}-sanitizer sub-build: configure failed (${configure_rc})")
endif()

message(STATUS "${SANITIZER}-sanitizer sub-build: building explore_determinism_check")
execute_process(
  COMMAND "${CMAKE_COMMAND}" --build "${WORK_DIR}"
          --target explore_determinism_check
  RESULT_VARIABLE build_rc)
if(NOT build_rc EQUAL 0)
  message(FATAL_ERROR
          "${SANITIZER}-sanitizer sub-build: build failed (${build_rc})")
endif()

message(STATUS "${SANITIZER}-sanitizer sub-build: running determinism check")
execute_process(
  COMMAND "${WORK_DIR}/tests/explore_determinism_check"
  RESULT_VARIABLE run_rc)
if(NOT run_rc EQUAL 0)
  message(FATAL_ERROR
          "${SANITIZER} determinism check failed (${run_rc})")
endif()
