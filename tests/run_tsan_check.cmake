# Configures and builds a sanitizer-instrumented copy of the tree in a
# nested build directory, then runs a list of plain check binaries under it.
# Driven as a ctest test (see tests/CMakeLists.txt) so the tier-1 flow
# exercises the worker pool's synchronization and the serving subsystem's
# connection/queue handling (TSan), and the scheduler/BDD hot paths' memory
# safety (ASan), without sanitizing the main build.
#
# Expects: -DSOURCE_DIR=<repo root> -DWORK_DIR=<scratch build dir>
#          -DSANITIZER=<thread|address> (defaults to thread)
#          -DCHECKS=<comma-separated check target names>
#          (defaults to explore_determinism_check; commas because a ctest
#          COMMAND argument cannot carry a CMake list's semicolons)
if(NOT DEFINED SOURCE_DIR OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR "run_tsan_check.cmake needs -DSOURCE_DIR and -DWORK_DIR")
endif()
if(NOT DEFINED SANITIZER)
  set(SANITIZER thread)
endif()
if(NOT DEFINED CHECKS)
  set(CHECKS explore_determinism_check)
endif()
string(REPLACE "," ";" CHECK_LIST "${CHECKS}")

message(STATUS "${SANITIZER}-sanitizer sub-build: configuring ${WORK_DIR}")
execute_process(
  COMMAND "${CMAKE_COMMAND}" -S "${SOURCE_DIR}" -B "${WORK_DIR}"
          -DWS_SANITIZE=${SANITIZER} -DCMAKE_BUILD_TYPE=RelWithDebInfo
  RESULT_VARIABLE configure_rc)
if(NOT configure_rc EQUAL 0)
  message(FATAL_ERROR
          "${SANITIZER}-sanitizer sub-build: configure failed (${configure_rc})")
endif()

foreach(check IN LISTS CHECK_LIST)
  message(STATUS "${SANITIZER}-sanitizer sub-build: building ${check}")
  execute_process(
    COMMAND "${CMAKE_COMMAND}" --build "${WORK_DIR}" --target ${check}
    RESULT_VARIABLE build_rc)
  if(NOT build_rc EQUAL 0)
    message(FATAL_ERROR
            "${SANITIZER}-sanitizer sub-build: build of ${check} failed (${build_rc})")
  endif()

  message(STATUS "${SANITIZER}-sanitizer sub-build: running ${check}")
  execute_process(
    COMMAND "${WORK_DIR}/tests/${check}"
    RESULT_VARIABLE run_rc)
  if(NOT run_rc EQUAL 0)
    message(FATAL_ERROR "${SANITIZER} ${check} failed (${run_rc})")
  endif()
endforeach()
