// Tests for base utilities: deterministic RNG, strings, typed ids.
#include <gtest/gtest.h>

#include <cmath>

#include "base/ids.h"
#include "base/rng.h"
#include "base/status.h"
#include "base/strings.h"

namespace ws {
namespace {

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(12345), b(12345);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, NextBelowIsInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
}

TEST(RngTest, NextIntCoversInclusiveRange) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, GaussianMomentsAreSane) {
  Rng rng(42);
  double sum = 0.0, sumsq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.NextGaussian();
    sum += x;
    sumsq += x * x;
  }
  const double mean = sum / n;
  const double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(RngTest, GaussianTraceIsDeterministicAndZeroMeanScaled) {
  Rng a(5), b(5);
  const auto ta = a.GaussianTrace(500, 16.0);
  const auto tb = b.GaussianTrace(500, 16.0);
  EXPECT_EQ(ta, tb);
  double sum = 0;
  for (auto v : ta) sum += static_cast<double>(v);
  EXPECT_NEAR(sum / 500.0, 0.0, 3.0);
}

TEST(StringsTest, Join) {
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"a"}, ","), "a");
  EXPECT_EQ(Join({"a", "b", "c"}, " & "), "a & b & c");
}

TEST(StringsTest, StrPrintfAndStrCat) {
  EXPECT_EQ(StrPrintf("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrCat("a", 1, "b", 2.5), "a1b2.5");
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("wavesched", "wave"));
  EXPECT_FALSE(StartsWith("wave", "wavesched"));
  EXPECT_TRUE(EndsWith("design.beh", ".beh"));
  EXPECT_FALSE(EndsWith("beh", "design.beh"));
}

TEST(StringsTest, DotEscape) {
  EXPECT_EQ(DotEscape("a\"b\\c"), "a\\\"b\\\\c");
}

TEST(IdsTest, StrongTypingAndInvalid) {
  struct TagA;
  using IdA = Id<TagA>;
  IdA a;
  EXPECT_FALSE(a.valid());
  IdA b(3);
  EXPECT_TRUE(b.valid());
  EXPECT_EQ(b.value(), 3u);
  EXPECT_NE(a, b);
  EXPECT_LT(IdA(1), IdA(2));
  EXPECT_EQ(IdA::invalid(), IdA());
}

TEST(StatusTest, CheckThrowsWithMessage) {
  EXPECT_THROW(
      [] { WS_CHECK_MSG(1 == 2, "math broke"); }(), Error);
  try {
    WS_THROW("value " << 42);
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("value 42"), std::string::npos);
  }
}

}  // namespace
}  // namespace ws
