# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/base_test[1]_include.cmake")
include("/root/repo/build/tests/bdd_test[1]_include.cmake")
include("/root/repo/build/tests/cdfg_test[1]_include.cmake")
include("/root/repo/build/tests/interpreter_test[1]_include.cmake")
include("/root/repo/build/tests/lang_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/scheduler_test[1]_include.cmake")
include("/root/repo/build/tests/scheduler_smoke_test[1]_include.cmake")
include("/root/repo/build/tests/equivalence_property_test[1]_include.cmake")
include("/root/repo/build/tests/hw_rtl_test[1]_include.cmake")
include("/root/repo/build/tests/paper_results_test[1]_include.cmake")
include("/root/repo/build/tests/stg_test[1]_include.cmake")
include("/root/repo/build/tests/passes_test[1]_include.cmake")
include("/root/repo/build/tests/bounds_test[1]_include.cmake")
include("/root/repo/build/tests/end_to_end_test[1]_include.cmake")
