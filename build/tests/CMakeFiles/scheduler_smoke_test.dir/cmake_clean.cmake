file(REMOVE_RECURSE
  "CMakeFiles/scheduler_smoke_test.dir/scheduler_smoke_test.cc.o"
  "CMakeFiles/scheduler_smoke_test.dir/scheduler_smoke_test.cc.o.d"
  "scheduler_smoke_test"
  "scheduler_smoke_test.pdb"
  "scheduler_smoke_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scheduler_smoke_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
