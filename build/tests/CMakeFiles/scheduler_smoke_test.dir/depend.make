# Empty dependencies file for scheduler_smoke_test.
# This may be replaced when dependencies are built.
