
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/cdfg_test.cc" "tests/CMakeFiles/cdfg_test.dir/cdfg_test.cc.o" "gcc" "tests/CMakeFiles/cdfg_test.dir/cdfg_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lang/CMakeFiles/ws_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/ws_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/bdd/CMakeFiles/ws_bdd.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/ws_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/rtl/CMakeFiles/ws_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/suite/CMakeFiles/ws_suite.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ws_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stg/CMakeFiles/ws_stg.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/ws_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/cdfg/CMakeFiles/ws_cdfg.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/ws_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
