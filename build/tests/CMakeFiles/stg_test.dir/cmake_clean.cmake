file(REMOVE_RECURSE
  "CMakeFiles/stg_test.dir/stg_test.cc.o"
  "CMakeFiles/stg_test.dir/stg_test.cc.o.d"
  "stg_test"
  "stg_test.pdb"
  "stg_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
