# Empty compiler generated dependencies file for stg_test.
# This may be replaced when dependencies are built.
