file(REMOVE_RECURSE
  "CMakeFiles/hw_rtl_test.dir/hw_rtl_test.cc.o"
  "CMakeFiles/hw_rtl_test.dir/hw_rtl_test.cc.o.d"
  "hw_rtl_test"
  "hw_rtl_test.pdb"
  "hw_rtl_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_rtl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
