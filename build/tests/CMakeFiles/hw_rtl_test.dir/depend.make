# Empty dependencies file for hw_rtl_test.
# This may be replaced when dependencies are built.
