# Empty dependencies file for wavesched_cli.
# This may be replaced when dependencies are built.
