file(REMOVE_RECURSE
  "CMakeFiles/wavesched_cli.dir/wavesched_cli.cc.o"
  "CMakeFiles/wavesched_cli.dir/wavesched_cli.cc.o.d"
  "wavesched_cli"
  "wavesched_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wavesched_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
