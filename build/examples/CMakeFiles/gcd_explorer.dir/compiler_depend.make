# Empty compiler generated dependencies file for gcd_explorer.
# This may be replaced when dependencies are built.
