file(REMOVE_RECURSE
  "CMakeFiles/gcd_explorer.dir/gcd_explorer.cc.o"
  "CMakeFiles/gcd_explorer.dir/gcd_explorer.cc.o.d"
  "gcd_explorer"
  "gcd_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gcd_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
