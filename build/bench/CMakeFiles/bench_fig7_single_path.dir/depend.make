# Empty dependencies file for bench_fig7_single_path.
# This may be replaced when dependencies are built.
