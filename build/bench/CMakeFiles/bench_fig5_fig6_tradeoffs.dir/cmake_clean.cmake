file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_fig6_tradeoffs.dir/bench_fig5_fig6_tradeoffs.cc.o"
  "CMakeFiles/bench_fig5_fig6_tradeoffs.dir/bench_fig5_fig6_tradeoffs.cc.o.d"
  "bench_fig5_fig6_tradeoffs"
  "bench_fig5_fig6_tradeoffs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_fig6_tradeoffs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
