# Empty compiler generated dependencies file for bench_fig3_steady_state.
# This may be replaced when dependencies are built.
