file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_schedules.dir/bench_fig2_schedules.cc.o"
  "CMakeFiles/bench_fig2_schedules.dir/bench_fig2_schedules.cc.o.d"
  "bench_fig2_schedules"
  "bench_fig2_schedules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_schedules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
