file(REMOVE_RECURSE
  "CMakeFiles/ws_analysis.dir/metrics.cc.o"
  "CMakeFiles/ws_analysis.dir/metrics.cc.o.d"
  "libws_analysis.a"
  "libws_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ws_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
