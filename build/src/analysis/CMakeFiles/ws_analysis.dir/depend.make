# Empty dependencies file for ws_analysis.
# This may be replaced when dependencies are built.
