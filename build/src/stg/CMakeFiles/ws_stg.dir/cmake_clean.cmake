file(REMOVE_RECURSE
  "CMakeFiles/ws_stg.dir/dot.cc.o"
  "CMakeFiles/ws_stg.dir/dot.cc.o.d"
  "CMakeFiles/ws_stg.dir/stg.cc.o"
  "CMakeFiles/ws_stg.dir/stg.cc.o.d"
  "libws_stg.a"
  "libws_stg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ws_stg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
