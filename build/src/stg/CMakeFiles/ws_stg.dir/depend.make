# Empty dependencies file for ws_stg.
# This may be replaced when dependencies are built.
