
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stg/dot.cc" "src/stg/CMakeFiles/ws_stg.dir/dot.cc.o" "gcc" "src/stg/CMakeFiles/ws_stg.dir/dot.cc.o.d"
  "/root/repo/src/stg/stg.cc" "src/stg/CMakeFiles/ws_stg.dir/stg.cc.o" "gcc" "src/stg/CMakeFiles/ws_stg.dir/stg.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/ws_base.dir/DependInfo.cmake"
  "/root/repo/build/src/cdfg/CMakeFiles/ws_cdfg.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/ws_hw.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
