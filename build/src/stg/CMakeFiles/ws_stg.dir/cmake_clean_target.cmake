file(REMOVE_RECURSE
  "libws_stg.a"
)
