file(REMOVE_RECURSE
  "libws_base.a"
)
