# Empty compiler generated dependencies file for ws_base.
# This may be replaced when dependencies are built.
