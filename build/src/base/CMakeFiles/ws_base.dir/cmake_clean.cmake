file(REMOVE_RECURSE
  "CMakeFiles/ws_base.dir/rng.cc.o"
  "CMakeFiles/ws_base.dir/rng.cc.o.d"
  "CMakeFiles/ws_base.dir/strings.cc.o"
  "CMakeFiles/ws_base.dir/strings.cc.o.d"
  "libws_base.a"
  "libws_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ws_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
