# Empty dependencies file for ws_sim.
# This may be replaced when dependencies are built.
