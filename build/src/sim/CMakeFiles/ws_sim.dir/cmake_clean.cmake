file(REMOVE_RECURSE
  "CMakeFiles/ws_sim.dir/interpreter.cc.o"
  "CMakeFiles/ws_sim.dir/interpreter.cc.o.d"
  "CMakeFiles/ws_sim.dir/stg_sim.cc.o"
  "CMakeFiles/ws_sim.dir/stg_sim.cc.o.d"
  "CMakeFiles/ws_sim.dir/stimulus.cc.o"
  "CMakeFiles/ws_sim.dir/stimulus.cc.o.d"
  "libws_sim.a"
  "libws_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ws_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
