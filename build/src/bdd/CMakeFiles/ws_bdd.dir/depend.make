# Empty dependencies file for ws_bdd.
# This may be replaced when dependencies are built.
