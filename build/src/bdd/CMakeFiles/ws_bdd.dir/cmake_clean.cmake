file(REMOVE_RECURSE
  "CMakeFiles/ws_bdd.dir/bdd.cc.o"
  "CMakeFiles/ws_bdd.dir/bdd.cc.o.d"
  "libws_bdd.a"
  "libws_bdd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ws_bdd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
