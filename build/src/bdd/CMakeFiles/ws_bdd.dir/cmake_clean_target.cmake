file(REMOVE_RECURSE
  "libws_bdd.a"
)
