file(REMOVE_RECURSE
  "CMakeFiles/ws_rtl.dir/rtl.cc.o"
  "CMakeFiles/ws_rtl.dir/rtl.cc.o.d"
  "libws_rtl.a"
  "libws_rtl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ws_rtl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
