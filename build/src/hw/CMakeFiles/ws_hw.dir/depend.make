# Empty dependencies file for ws_hw.
# This may be replaced when dependencies are built.
