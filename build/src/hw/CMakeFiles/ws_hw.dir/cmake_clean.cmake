file(REMOVE_RECURSE
  "CMakeFiles/ws_hw.dir/resources.cc.o"
  "CMakeFiles/ws_hw.dir/resources.cc.o.d"
  "libws_hw.a"
  "libws_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ws_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
