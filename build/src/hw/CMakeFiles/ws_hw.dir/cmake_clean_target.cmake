file(REMOVE_RECURSE
  "libws_hw.a"
)
