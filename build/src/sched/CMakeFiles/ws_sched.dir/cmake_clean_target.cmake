file(REMOVE_RECURSE
  "libws_sched.a"
)
