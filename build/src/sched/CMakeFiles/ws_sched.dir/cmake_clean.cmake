file(REMOVE_RECURSE
  "CMakeFiles/ws_sched.dir/bounds.cc.o"
  "CMakeFiles/ws_sched.dir/bounds.cc.o.d"
  "CMakeFiles/ws_sched.dir/lambda.cc.o"
  "CMakeFiles/ws_sched.dir/lambda.cc.o.d"
  "CMakeFiles/ws_sched.dir/scheduler.cc.o"
  "CMakeFiles/ws_sched.dir/scheduler.cc.o.d"
  "libws_sched.a"
  "libws_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ws_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
