# Empty dependencies file for ws_sched.
# This may be replaced when dependencies are built.
