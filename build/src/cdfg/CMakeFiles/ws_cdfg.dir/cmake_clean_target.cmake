file(REMOVE_RECURSE
  "libws_cdfg.a"
)
