# Empty compiler generated dependencies file for ws_cdfg.
# This may be replaced when dependencies are built.
