file(REMOVE_RECURSE
  "CMakeFiles/ws_cdfg.dir/builder.cc.o"
  "CMakeFiles/ws_cdfg.dir/builder.cc.o.d"
  "CMakeFiles/ws_cdfg.dir/cdfg.cc.o"
  "CMakeFiles/ws_cdfg.dir/cdfg.cc.o.d"
  "CMakeFiles/ws_cdfg.dir/dot.cc.o"
  "CMakeFiles/ws_cdfg.dir/dot.cc.o.d"
  "CMakeFiles/ws_cdfg.dir/eval.cc.o"
  "CMakeFiles/ws_cdfg.dir/eval.cc.o.d"
  "CMakeFiles/ws_cdfg.dir/passes.cc.o"
  "CMakeFiles/ws_cdfg.dir/passes.cc.o.d"
  "libws_cdfg.a"
  "libws_cdfg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ws_cdfg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
