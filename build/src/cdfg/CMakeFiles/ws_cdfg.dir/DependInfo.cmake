
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cdfg/builder.cc" "src/cdfg/CMakeFiles/ws_cdfg.dir/builder.cc.o" "gcc" "src/cdfg/CMakeFiles/ws_cdfg.dir/builder.cc.o.d"
  "/root/repo/src/cdfg/cdfg.cc" "src/cdfg/CMakeFiles/ws_cdfg.dir/cdfg.cc.o" "gcc" "src/cdfg/CMakeFiles/ws_cdfg.dir/cdfg.cc.o.d"
  "/root/repo/src/cdfg/dot.cc" "src/cdfg/CMakeFiles/ws_cdfg.dir/dot.cc.o" "gcc" "src/cdfg/CMakeFiles/ws_cdfg.dir/dot.cc.o.d"
  "/root/repo/src/cdfg/eval.cc" "src/cdfg/CMakeFiles/ws_cdfg.dir/eval.cc.o" "gcc" "src/cdfg/CMakeFiles/ws_cdfg.dir/eval.cc.o.d"
  "/root/repo/src/cdfg/passes.cc" "src/cdfg/CMakeFiles/ws_cdfg.dir/passes.cc.o" "gcc" "src/cdfg/CMakeFiles/ws_cdfg.dir/passes.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/ws_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
