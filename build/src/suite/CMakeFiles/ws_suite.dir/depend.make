# Empty dependencies file for ws_suite.
# This may be replaced when dependencies are built.
