file(REMOVE_RECURSE
  "libws_suite.a"
)
