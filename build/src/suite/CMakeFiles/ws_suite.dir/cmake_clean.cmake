file(REMOVE_RECURSE
  "CMakeFiles/ws_suite.dir/benchmarks.cc.o"
  "CMakeFiles/ws_suite.dir/benchmarks.cc.o.d"
  "libws_suite.a"
  "libws_suite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ws_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
