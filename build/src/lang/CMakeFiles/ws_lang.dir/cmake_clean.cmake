file(REMOVE_RECURSE
  "CMakeFiles/ws_lang.dir/lexer.cc.o"
  "CMakeFiles/ws_lang.dir/lexer.cc.o.d"
  "CMakeFiles/ws_lang.dir/lower.cc.o"
  "CMakeFiles/ws_lang.dir/lower.cc.o.d"
  "CMakeFiles/ws_lang.dir/parser.cc.o"
  "CMakeFiles/ws_lang.dir/parser.cc.o.d"
  "libws_lang.a"
  "libws_lang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ws_lang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
