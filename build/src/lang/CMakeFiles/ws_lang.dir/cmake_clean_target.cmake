file(REMOVE_RECURSE
  "libws_lang.a"
)
