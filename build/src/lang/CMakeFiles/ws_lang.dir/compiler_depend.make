# Empty compiler generated dependencies file for ws_lang.
# This may be replaced when dependencies are built.
