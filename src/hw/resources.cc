#include "hw/resources.h"

namespace ws {

int FuLibrary::AddType(FuType type) {
  WS_CHECK_MSG(type.latency >= 1, "unit latency must be at least 1 cycle");
  types_.push_back(std::move(type));
  return static_cast<int>(types_.size()) - 1;
}

void FuLibrary::Select(OpKind kind, const std::string& fu_name) {
  selection_[kind] = IndexOf(fu_name);
}

const FuType& FuLibrary::type(int index) const {
  WS_CHECK(index >= 0 && index < num_types());
  return types_[static_cast<std::size_t>(index)];
}

int FuLibrary::TypeFor(OpKind kind) const {
  auto it = selection_.find(kind);
  WS_CHECK_MSG(it != selection_.end(),
               "no functional unit selected for op kind "
                   << OpKindName(kind));
  return it->second;
}

bool FuLibrary::HasTypeFor(OpKind kind) const {
  return selection_.contains(kind);
}

int FuLibrary::IndexOf(const std::string& fu_name) const {
  for (int i = 0; i < num_types(); ++i) {
    if (types_[static_cast<std::size_t>(i)].name == fu_name) return i;
  }
  WS_THROW("unknown functional unit type: " << fu_name);
}

FuLibrary FuLibrary::PaperLibrary() {
  FuLibrary lib;
  // Delays are normalized to a 1.0 ns target period. Arithmetic units take
  // (nearly) the whole cycle, so arithmetic never chains. Logic-gate delays
  // admit exactly the chains the paper allows for GCD: !1->||1 (0.50+0.35)
  // and ==1->||1 (0.60+0.35) fit; >=1->||1 (0.70+0.35) does not.
  lib.AddType({.name = "add1", .latency = 1, .pipelined = false,
               .delay_ns = 0.99, .area = 280});
  lib.AddType({.name = "sub1", .latency = 1, .pipelined = false,
               .delay_ns = 0.99, .area = 280});
  lib.AddType({.name = "mult1", .latency = 2, .pipelined = true,
               .delay_ns = 0.99, .area = 2400});
  lib.AddType({.name = "comp1", .latency = 1, .pipelined = false,
               .delay_ns = 0.70, .area = 140});
  lib.AddType({.name = "eqc1", .latency = 1, .pipelined = false,
               .delay_ns = 0.60, .area = 100});
  lib.AddType({.name = "inc1", .latency = 1, .pipelined = false,
               .delay_ns = 0.70, .area = 140});
  lib.AddType({.name = "shift1", .latency = 1, .pipelined = false,
               .delay_ns = 0.80, .area = 180});
  lib.AddType({.name = "not1", .latency = 1, .pipelined = false,
               .delay_ns = 0.50, .area = 6});
  lib.AddType({.name = "or1", .latency = 1, .pipelined = false,
               .delay_ns = 0.35, .area = 12});
  lib.AddType({.name = "and1", .latency = 1, .pipelined = false,
               .delay_ns = 0.35, .area = 12});
  lib.AddType({.name = "xor1", .latency = 1, .pipelined = false,
               .delay_ns = 0.40, .area = 16});
  lib.AddType({.name = "mem1", .latency = 1, .pipelined = false,
               .delay_ns = 0.99, .area = 0});
  // Address-disambiguation comparator of the load-store queue. Part of the
  // memory subsystem (one per port), not a datapath unit, so it is never
  // allocation-constrained — like mem1 itself.
  lib.AddType({.name = "lsq1", .latency = 1, .pipelined = false,
               .delay_ns = 0.60, .area = 90});
  // Muxes: resolved selects scheduled as zero-delay register transfers.
  lib.AddType({.name = "mux1", .latency = 1, .pipelined = false,
               .delay_ns = 0.0, .area = 24});

  lib.Select(OpKind::kAdd, "add1");
  lib.Select(OpKind::kSub, "sub1");
  lib.Select(OpKind::kMul, "mult1");
  lib.Select(OpKind::kInc, "inc1");
  lib.Select(OpKind::kDec, "inc1");
  lib.Select(OpKind::kLt, "comp1");
  lib.Select(OpKind::kGt, "comp1");
  lib.Select(OpKind::kLe, "comp1");
  lib.Select(OpKind::kGe, "comp1");
  lib.Select(OpKind::kEq, "eqc1");
  lib.Select(OpKind::kNe, "eqc1");
  lib.Select(OpKind::kShl, "shift1");
  lib.Select(OpKind::kShr, "shift1");
  lib.Select(OpKind::kNot, "not1");
  lib.Select(OpKind::kOr2, "or1");
  lib.Select(OpKind::kAnd2, "and1");
  lib.Select(OpKind::kXor2, "xor1");
  lib.Select(OpKind::kMemRead, "mem1");
  lib.Select(OpKind::kMemWrite, "mem1");
  lib.Select(OpKind::kSelect, "mux1");
  lib.Select(OpKind::kDisambig, "lsq1");
  return lib;
}

FuLibrary FuLibrary::SingleCycleLibrary() {
  FuLibrary lib = PaperLibrary();
  FuLibrary out;
  for (int i = 0; i < lib.num_types(); ++i) {
    FuType t = lib.type(i);
    t.latency = 1;
    t.pipelined = false;
    // Muxes stay zero-delay register transfers; every real unit fills the
    // cycle so that no operation chaining is possible.
    if (t.name != "mux1") t.delay_ns = 0.99;
    out.AddType(t);
  }
  out.selection_ = lib.selection_;
  return out;
}

Allocation Allocation::Unlimited(const FuLibrary& lib) {
  Allocation a;
  a.counts_.assign(static_cast<std::size_t>(lib.num_types()), kUnlimited);
  return a;
}

Allocation Allocation::None(const FuLibrary& lib) {
  Allocation a;
  a.counts_.assign(static_cast<std::size_t>(lib.num_types()), 0);
  // Single logic gates and memory ports are unconstrained in the paper's
  // experimental setup.
  for (int i = 0; i < lib.num_types(); ++i) {
    const std::string& name = lib.type(i).name;
    if (name == "not1" || name == "or1" || name == "and1" ||
        name == "xor1" || name == "mem1" || name == "mux1" ||
        name == "lsq1") {
      a.counts_[static_cast<std::size_t>(i)] = kUnlimited;
    }
  }
  return a;
}

void Allocation::Set(const FuLibrary& lib, const std::string& fu_name,
                     int count) {
  WS_CHECK(count == kUnlimited || count >= 0);
  const int idx = lib.IndexOf(fu_name);
  if (static_cast<std::size_t>(idx) >= counts_.size()) {
    counts_.resize(static_cast<std::size_t>(lib.num_types()), 0);
  }
  counts_[static_cast<std::size_t>(idx)] = count;
}

int Allocation::Count(int type_index) const {
  if (type_index < 0 ||
      static_cast<std::size_t>(type_index) >= counts_.size()) {
    return 0;
  }
  return counts_[static_cast<std::size_t>(type_index)];
}

}  // namespace ws
