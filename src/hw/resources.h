// Functional-unit library, allocation constraints, and the clock/chaining
// model — the scheduler inputs described in the paper's Section 2:
//   * "A constraint on the number of resources of each type available".
//   * "The target clock period ... or constraints that limit the extent of
//      data and control chaining allowed".
//
// The default library reproduces the paper's Section 5 experimental setup:
// add1, sub1, mult1 (2-cycle pipelined), comp1 (<), eqc1 (=), inc1, shift1,
// unlimited logic gates, with combinational delays chosen so that exactly the
// paper's GCD chains (Not1+Or1 and Eq1+Or1 within one cycle) are legal.
#ifndef WS_HW_RESOURCES_H
#define WS_HW_RESOURCES_H

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "cdfg/cdfg.h"

namespace ws {

// A functional-unit type in the module library.
struct FuType {
  std::string name;      // e.g. "add1"
  int latency = 1;       // cycles from initiation to result
  bool pipelined = false;  // can initiate a new operation every cycle
  double delay_ns = 1.0;   // combinational delay of the result stage (for
                           // chaining feasibility checks)
  double area = 0.0;       // gate equivalents (RTL area model)
};

// The module library plus module selection (operation kind -> unit type).
class FuLibrary {
 public:
  // Adds a unit type; returns its index.
  int AddType(FuType type);

  // Maps an operation kind onto a unit type by name.
  void Select(OpKind kind, const std::string& fu_name);

  const FuType& type(int index) const;
  int num_types() const { return static_cast<int>(types_.size()); }

  // Unit type index implementing `kind`; throws if unmapped.
  int TypeFor(OpKind kind) const;
  bool HasTypeFor(OpKind kind) const;

  int IndexOf(const std::string& fu_name) const;

  // The paper's Section 5 library (see file comment).
  static FuLibrary PaperLibrary();

  // Every unit single-cycle with no chaining slack — the premise of the
  // paper's Examples 2/3/9 ("All units require one clock cycle, and no
  // chaining is allowed").
  static FuLibrary SingleCycleLibrary();

 private:
  std::vector<FuType> types_;
  std::map<OpKind, int> selection_;
};

// Resource allocation constraint: number of instances available per unit
// type. kUnlimited means no constraint (the paper gives unlimited single
// logic gates, and Example 1 is scheduled with no resource constraints at
// all).
class Allocation {
 public:
  static constexpr int kUnlimited = -1;

  // Everything unlimited.
  static Allocation Unlimited(const FuLibrary& lib);
  // Everything zero except unlimited logic/memory; set the rest explicitly.
  static Allocation None(const FuLibrary& lib);

  void Set(const FuLibrary& lib, const std::string& fu_name, int count);
  int Count(int type_index) const;
  bool IsUnlimited(int type_index) const {
    return Count(type_index) == kUnlimited;
  }

 private:
  std::vector<int> counts_;  // indexed by unit type; kUnlimited allowed
};

// Clock period and chaining policy.
struct ClockModel {
  double period_ns = 1.0;
  bool allow_chaining = true;  // if false, every result registers at a cycle
                               // boundary regardless of slack

  // True if an operation with combinational delay `delay` may start at
  // `start_offset` ns into a cycle and still meet the period.
  bool Fits(double start_offset, double delay) const {
    return start_offset + delay <= period_ns + 1e-9;
  }
};

}  // namespace ws

#endif  // WS_HW_RESOURCES_H
