#include "io/artifact_store.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "base/codec.h"
#include "io/codec.h"
#include "base/strings.h"

namespace ws {
namespace {

// Fixed sizes of the on-disk framing (see the header comment).
constexpr std::size_t kSegmentHeaderBytes = 8;   // magic u32 + 4 bytes
constexpr std::size_t kRecordHeadBytes = 24;     // magic + key + value_len
constexpr std::size_t kRecordCrcBytes = 4;

Status IoError(const std::string& what) {
  return Status::MakeError(StatusCode::kUnavailable,
                           what + ": " + std::strerror(errno));
}

std::string SegmentPath(const std::string& dir, std::uint64_t gen) {
  return StrPrintf("%s/artifacts-%06llu.log", dir.c_str(),
                   static_cast<unsigned long long>(gen));
}

// Segment files in the directory, sorted by generation (ascending).
// Compaction scratch files (*.log.tmp) are collected separately so Open can
// sweep leftovers from an interrupted compaction.
struct DirListing {
  std::vector<std::pair<std::uint64_t, std::string>> segments;  // gen, path
  std::vector<std::string> leftovers;                           // .tmp paths
};

Result<DirListing> ListDir(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return IoError("opendir " + dir);
  DirListing out;
  while (dirent* e = ::readdir(d)) {
    const std::string name = e->d_name;
    if (name.rfind("artifacts-", 0) != 0) continue;
    if (EndsWith(name, ".log.tmp")) {
      out.leftovers.push_back(dir + "/" + name);
      continue;
    }
    if (!EndsWith(name, ".log")) continue;
    const std::string digits =
        name.substr(10, name.size() - 10 - 4);  // between prefix and ".log"
    char* end = nullptr;
    const unsigned long long gen = std::strtoull(digits.c_str(), &end, 10);
    if (end == digits.c_str() || *end != '\0') continue;
    out.segments.emplace_back(gen, dir + "/" + name);
  }
  ::closedir(d);
  std::sort(out.segments.begin(), out.segments.end());
  return out;
}

Result<std::string> ReadFileBytes(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return IoError("open " + path);
  std::string data;
  char buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return IoError("read " + path);
    }
    if (n == 0) break;
    data.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return data;
}

Status WriteAllFd(int fd, std::string_view data, const std::string& what) {
  std::size_t done = 0;
  while (done < data.size()) {
    const ssize_t n = ::write(fd, data.data() + done, data.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return IoError("write " + what);
    }
    done += static_cast<std::size_t>(n);
  }
  return Status::Ok();
}

std::string SegmentHeader() {
  ByteWriter w;
  w.U32(kSegmentMagic);
  w.U8(kStoreVersion);
  w.U8(kArtifactVersion);
  w.U8(0);
  w.U8(0);
  return w.Take();
}

std::string RecordBytes(const Fp128& key, std::string_view value) {
  ByteWriter w;
  w.U32(kRecordMagic);
  w.U64(key.lo);
  w.U64(key.hi);
  w.U32(static_cast<std::uint32_t>(value.size()));
  w.Raw(value);
  std::string body = w.Take();
  // The CRC covers everything after the record magic.
  const std::uint32_t crc = Crc32(std::string_view(body).substr(4));
  ByteWriter tail;
  tail.U32(crc);
  body += tail.Take();
  return body;
}

// Outcome of scanning one segment's bytes.
struct SegmentScan {
  enum class Header { kOk, kBad, kNewerStore, kNewerArtifacts };
  Header header = Header::kBad;
  std::uint8_t store_version = 0;
  std::uint8_t artifact_version = 0;
  std::size_t good_end = 0;  // offset just past the last CRC-clean record
  std::int64_t records = 0;
  bool dropped_tail = false;  // bytes past good_end failed to parse
};

// Walks `data` front to back, invoking `record` for every CRC-clean record.
// Stops at the first record that fails magic/length/CRC: everything from
// there on is untrusted (a bad length would desynchronize the scan).
SegmentScan ScanSegment(
    std::string_view data,
    const std::function<void(const Fp128&, std::string_view)>& record) {
  SegmentScan scan;
  if (data.size() < kSegmentHeaderBytes) return scan;
  ByteReader header(data.substr(0, kSegmentHeaderBytes));
  if (header.U32() != kSegmentMagic) return scan;
  scan.store_version = header.U8();
  scan.artifact_version = header.U8();
  if (scan.store_version > kStoreVersion) {
    scan.header = SegmentScan::Header::kNewerStore;
    return scan;
  }
  if (scan.artifact_version > kArtifactVersion) {
    scan.header = SegmentScan::Header::kNewerArtifacts;
    return scan;
  }
  scan.header = SegmentScan::Header::kOk;
  scan.good_end = kSegmentHeaderBytes;

  std::size_t pos = kSegmentHeaderBytes;
  while (pos < data.size()) {
    if (pos + kRecordHeadBytes + kRecordCrcBytes > data.size()) break;
    ByteReader head(data.substr(pos, kRecordHeadBytes));
    if (head.U32() != kRecordMagic) break;
    Fp128 key;
    key.lo = head.U64();
    key.hi = head.U64();
    const std::uint32_t value_len = head.U32();
    const std::size_t total =
        kRecordHeadBytes + value_len + kRecordCrcBytes;
    if (value_len > data.size() || pos + total > data.size()) break;
    const std::string_view value =
        data.substr(pos + kRecordHeadBytes, value_len);
    ByteReader crc_reader(data.substr(pos + kRecordHeadBytes + value_len,
                                      kRecordCrcBytes));
    const std::uint32_t stored_crc = crc_reader.U32();
    const std::uint32_t actual_crc =
        Crc32(data.substr(pos + 4, kRecordHeadBytes - 4 + value_len));
    if (stored_crc != actual_crc) break;
    record(key, value);
    ++scan.records;
    pos += total;
    scan.good_end = pos;
  }
  scan.dropped_tail = scan.good_end < data.size();
  return scan;
}

void LogStore(const std::string& dir, const std::string& message) {
  std::fprintf(stderr, "artifact_store[%s]: %s\n", dir.c_str(),
               message.c_str());
}

}  // namespace

Status ArtifactStoreOptions::Validate() const {
  if (dir.empty()) {
    return Status::MakeError(StatusCode::kInvalidArgument,
                             "ArtifactStoreOptions: empty directory");
  }
  if (dead_ratio < 1.0) {
    return Status::MakeError(
        StatusCode::kInvalidArgument,
        StrCat("ArtifactStoreOptions: dead_ratio must be >= 1.0, got ",
               dead_ratio));
  }
  return Status::Ok();
}

Result<std::unique_ptr<ArtifactStore>> ArtifactStore::Open(
    ArtifactStoreOptions options) {
  if (const Status s = options.Validate(); !s.ok()) return s;
  if (::mkdir(options.dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return IoError("mkdir " + options.dir);
  }
  std::unique_ptr<ArtifactStore> store(new ArtifactStore(std::move(options)));
  std::lock_guard<std::mutex> lock(store->mu_);
  if (const Status s = store->ReplayLocked(); !s.ok()) return s;
  return store;
}

ArtifactStore::~ArtifactStore() {
  if (fd_ >= 0) ::close(fd_);
}

Status ArtifactStore::ReplayLocked() {
  Result<DirListing> listing = ListDir(options_.dir);
  if (!listing.ok()) return listing.status();

  // Sweep compaction scratch from an interrupted run: a .tmp was never
  // renamed, so it was never the store.
  for (const std::string& leftover : listing->leftovers) {
    LogStore(options_.dir, "removing interrupted compaction file " + leftover);
    ::unlink(leftover.c_str());
  }

  bool needs_consolidation = listing->segments.size() > 1;
  std::uint64_t newest_gen = 0;
  bool newest_appendable = false;
  std::uint64_t newest_size = 0;

  for (const auto& [gen, path] : listing->segments) {
    Result<std::string> data = ReadFileBytes(path);
    if (!data.ok()) return data.status();
    std::int64_t replaced = 0;
    const SegmentScan scan =
        ScanSegment(*data, [this, &replaced](const Fp128& key,
                                             std::string_view value) {
          if (index_.count(key) != 0) ++replaced;
          IndexPutLocked(key, std::string(value));
        });
    counters_.loaded += scan.records;

    switch (scan.header) {
      case SegmentScan::Header::kOk:
        break;
      case SegmentScan::Header::kNewerStore:
        return Status::MakeError(
            StatusCode::kInvalidArgument,
            StrCat(path, " uses store format version ",
                   static_cast<int>(scan.store_version),
                   ", newer than this build's ", static_cast<int>(kStoreVersion),
                   "; refusing to touch it"));
      case SegmentScan::Header::kNewerArtifacts:
        LogStore(options_.dir,
                 StrCat(path, " holds artifact format version ",
                        static_cast<int>(scan.artifact_version),
                        " (this build writes ",
                        static_cast<int>(kArtifactVersion),
                        "); ignoring its entries"));
        needs_consolidation = true;
        continue;
      case SegmentScan::Header::kBad:
        LogStore(options_.dir, path + " has a bad segment header; ignoring");
        ++counters_.truncated_segments;
        needs_consolidation = true;
        continue;
    }

    if (scan.dropped_tail) {
      const std::int64_t dropped_bytes =
          static_cast<std::int64_t>(data->size() - scan.good_end);
      LogStore(options_.dir,
               StrCat(path, ": dropping ", dropped_bytes,
                      " corrupt/torn byte(s) after ", scan.records,
                      " clean record(s)"));
      ++counters_.corrupt_dropped;
      ++counters_.truncated_segments;
      if (::truncate(path.c_str(), static_cast<off_t>(scan.good_end)) != 0) {
        return IoError("truncate " + path);
      }
    }
    if (replaced > 0) needs_consolidation = true;
    newest_gen = gen;
    newest_appendable = true;
    newest_size = scan.good_end;
  }

  // Enforce the size bound on what we recovered before deciding whether the
  // log needs rewriting.
  EvictLocked();

  if (listing->segments.empty() || !newest_appendable) {
    // Fresh store (or nothing usable): start generation 1.
    generation_ = listing->segments.empty()
                      ? 1
                      : listing->segments.back().first + 1;
    const std::string path = SegmentPath(options_.dir, generation_);
    fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (fd_ < 0) return IoError("create " + path);
    const std::string header = SegmentHeader();
    if (Status s = WriteAllFd(fd_, header, path); !s.ok()) return s;
    log_bytes_ = header.size();
    // Stale unusable generations die at the first consolidation below or,
    // if there is nothing to consolidate, right away.
    for (const auto& [gen, path_old] : listing->segments) {
      if (gen != generation_) ::unlink(path_old.c_str());
    }
    return Status::Ok();
  }

  generation_ = newest_gen;
  log_bytes_ = newest_size;
  const std::string active = SegmentPath(options_.dir, generation_);
  fd_ = ::open(active.c_str(), O_WRONLY | O_APPEND);
  if (fd_ < 0) return IoError("open " + active);

  if (needs_consolidation) {
    // Multiple generations (interrupted compaction), superseded records, or
    // unusable segments: rewrite once so the directory is a single clean
    // generation again.
    return CompactLocked();
  }
  return Status::Ok();
}

void ArtifactStore::IndexPutLocked(const Fp128& key, std::string value) {
  auto it = index_.find(key);
  if (it != index_.end()) {
    live_bytes_ -= it->second->second.size();
    live_bytes_ += value.size();
    it->second->second = std::move(value);
    // Replay/Put order is recency order: move to the back (most recent).
    lru_.splice(lru_.end(), lru_, it->second);
    return;
  }
  live_bytes_ += value.size();
  lru_.emplace_back(key, std::move(value));
  index_.emplace(key, std::prev(lru_.end()));
}

void ArtifactStore::EvictLocked() {
  if (options_.max_bytes == 0) return;
  while (live_bytes_ > options_.max_bytes && !lru_.empty()) {
    live_bytes_ -= lru_.front().second.size();
    index_.erase(lru_.front().first);
    lru_.pop_front();
    ++counters_.evictions;
  }
}

std::optional<std::string> ArtifactStore::Get(const Fp128& key) {
  std::lock_guard<std::mutex> lock(mu_);
  ++counters_.gets;
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++counters_.misses;
    return std::nullopt;
  }
  ++counters_.hits;
  lru_.splice(lru_.end(), lru_, it->second);
  return it->second->second;
}

Status ArtifactStore::AppendRecordLocked(const Fp128& key,
                                         std::string_view value) {
  const std::string record = RecordBytes(key, value);
  if (Status s = WriteAllFd(fd_, record, "segment append"); !s.ok()) return s;
  log_bytes_ += record.size();
  return Status::Ok();
}

Status ArtifactStore::Put(const Fp128& key, std::string_view value) {
  std::lock_guard<std::mutex> lock(mu_);
  ++counters_.puts;
  if (auto it = index_.find(key);
      it != index_.end() && it->second->second == value) {
    // Identical bytes already stored: refresh recency, skip the append.
    lru_.splice(lru_.end(), lru_, it->second);
    return Status::Ok();
  }
  if (Status s = AppendRecordLocked(key, value); !s.ok()) return s;
  IndexPutLocked(key, std::string(value));
  EvictLocked();
  if (log_bytes_ > options_.compact_min_bytes &&
      static_cast<double>(log_bytes_) >
          options_.dead_ratio * static_cast<double>(live_bytes_)) {
    return CompactLocked();
  }
  return Status::Ok();
}

Status ArtifactStore::Compact() {
  std::lock_guard<std::mutex> lock(mu_);
  return CompactLocked();
}

Status ArtifactStore::CompactLocked() {
  const std::uint64_t next_gen = generation_ + 1;
  const std::string final_path = SegmentPath(options_.dir, next_gen);
  const std::string tmp_path = final_path + ".tmp";

  const int tmp_fd =
      ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (tmp_fd < 0) return IoError("create " + tmp_path);

  Status write_status = WriteAllFd(tmp_fd, SegmentHeader(), tmp_path);
  std::uint64_t written = SegmentHeader().size();
  if (write_status.ok()) {
    // LRU order front to back, so a future replay reproduces recency.
    for (const Entry& entry : lru_) {
      const std::string record = RecordBytes(entry.first, entry.second);
      write_status = WriteAllFd(tmp_fd, record, tmp_path);
      if (!write_status.ok()) break;
      written += record.size();
    }
  }
  if (write_status.ok() && ::fsync(tmp_fd) != 0) {
    write_status = IoError("fsync " + tmp_path);
  }
  ::close(tmp_fd);
  if (!write_status.ok()) {
    ::unlink(tmp_path.c_str());
    return write_status;
  }

  // The atomic cut-over: after this rename the new generation is the store.
  if (::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    ::unlink(tmp_path.c_str());
    return IoError("rename " + tmp_path);
  }
  // Persist the directory entry so the rename survives power loss.
  if (const int dir_fd = ::open(options_.dir.c_str(), O_RDONLY);
      dir_fd >= 0) {
    ::fsync(dir_fd);
    ::close(dir_fd);
  }

  if (fd_ >= 0) ::close(fd_);
  fd_ = ::open(final_path.c_str(), O_WRONLY | O_APPEND);
  if (fd_ < 0) return IoError("open " + final_path);

  // Old generations are dead weight now.
  if (Result<DirListing> listing = ListDir(options_.dir); listing.ok()) {
    for (const auto& [gen, path] : listing->segments) {
      if (gen != next_gen) ::unlink(path.c_str());
    }
  }

  generation_ = next_gen;
  log_bytes_ = written;
  ++counters_.compactions;
  return Status::Ok();
}

void ArtifactStore::ForEachLru(
    const std::function<void(const Fp128&, const std::string&)>& fn) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const Entry& entry : lru_) fn(entry.first, entry.second);
}

std::size_t ArtifactStore::entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return index_.size();
}

std::uint64_t ArtifactStore::live_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return live_bytes_;
}

std::uint64_t ArtifactStore::log_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return log_bytes_;
}

ArtifactStoreCounters ArtifactStore::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

Result<StoreVerifyReport> VerifyArtifactDir(const std::string& dir) {
  Result<DirListing> listing = ListDir(dir);
  if (!listing.ok()) return listing.status();
  StoreVerifyReport report;
  for (const auto& [gen, path] : listing->segments) {
    (void)gen;
    Result<std::string> data = ReadFileBytes(path);
    if (!data.ok()) return data.status();
    ++report.segments;
    std::int64_t bytes = 0;
    const SegmentScan scan = ScanSegment(
        *data, [&bytes](const Fp128&, std::string_view value) {
          bytes += static_cast<std::int64_t>(value.size());
        });
    report.records += scan.records;
    report.bytes += bytes;
    if (scan.header != SegmentScan::Header::kOk) {
      ++report.bad_segments;
      report.detail += path + ": unreadable segment header\n";
      continue;
    }
    if (scan.dropped_tail) {
      ++report.bad_records;
      report.detail +=
          StrCat(path, ": ", data->size() - scan.good_end,
                 " byte(s) of corrupt or torn records after offset ",
                 scan.good_end, "\n");
    }
  }
  return report;
}

}  // namespace ws
