// Durable, fingerprint-addressed store for schedule artifacts.
//
// Maps 128-bit request fingerprints (sched/fingerprint.h — the serving
// cache's key space) to opaque artifact byte strings (io/codec.h envelopes)
// via an append-only segment log plus an in-memory index:
//
//   <dir>/artifacts-NNNNNN.log      one generation of the log
//   <dir>/artifacts-NNNNNN.log.tmp  compaction scratch (ignored/unlinked)
//
// Segment layout (all integers little-endian):
//   header: u32 "WSSG" | u8 store_version | u8 artifact_version | u16 0
//   record: u32 "WSRC" | u64 key.lo | u64 key.hi | u32 value_len
//           | value bytes | u32 crc32(key.lo..value bytes)
//
// Crash safety: appends go through a single positional write per record, so
// a killed process leaves at most one torn record at the tail. Open() scans
// each segment front to back; the first record whose magic, length, or CRC
// does not check out ends the scan — the file is truncated at the last good
// offset and the event is logged to stderr. A corrupted store therefore
// degrades to fewer cached artifacts, never a crash or a wrong result.
//
// Versioning: store_version covers the record framing (reject newer, read
// older); artifact_version pins the payload codecs — a store written by a
// build with a different artifact format is NOT reinterpreted: Open() logs
// and starts the store empty (stale artifacts can never be served across a
// format change).
//
// Compaction: when the log grows past the dead-bytes threshold, or live
// bytes exceed max_bytes, surviving entries (LRU order, least recent
// evicted first under max_bytes) are rewritten into a fresh segment which
// is fsynced and atomically renamed into place before the old generations
// are unlinked — readers of the directory always see a complete generation.
//
// Concurrency: one writer process per directory (ws_served or ws_explore;
// no advisory locking — documented operational rule), many threads within
// it: every public member is serialized by one internal mutex.
#ifndef WS_IO_ARTIFACT_STORE_H
#define WS_IO_ARTIFACT_STORE_H

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "base/hashing.h"
#include "base/status.h"

namespace ws {

inline constexpr std::uint32_t kSegmentMagic = 0x47535357;   // "WSSG"
inline constexpr std::uint32_t kRecordMagic = 0x43525357;    // "WSRC"
inline constexpr std::uint8_t kStoreVersion = 1;

struct ArtifactStoreOptions {
  std::string dir;

  // Bound on live (indexed) value bytes; exceeding it evicts least-recently
  // -used entries. 0 = unbounded.
  std::uint64_t max_bytes = 0;

  // Compact when the on-disk log exceeds both this floor and
  // dead_ratio * live bytes (superseded/evicted records dominate).
  std::uint64_t compact_min_bytes = 4u << 20;
  double dead_ratio = 2.0;

  Status Validate() const;
};

struct ArtifactStoreCounters {
  std::int64_t gets = 0;
  std::int64_t hits = 0;
  std::int64_t misses = 0;
  std::int64_t puts = 0;
  std::int64_t evictions = 0;          // LRU drops under max_bytes
  std::int64_t compactions = 0;
  std::int64_t corrupt_dropped = 0;    // records dropped by Open()'s scan
  std::int64_t truncated_segments = 0; // segments cut back by Open()
  std::int64_t loaded = 0;             // records recovered by Open()
};

// Outcome of an offline integrity scan (ws_artifacts verify).
struct StoreVerifyReport {
  int segments = 0;
  std::int64_t records = 0;       // CRC-clean records
  std::int64_t bytes = 0;         // bytes covered by clean records
  std::int64_t bad_segments = 0;  // segments with a bad header
  std::int64_t bad_records = 0;   // records failing magic/length/CRC
  std::string detail;             // human-readable per-problem lines
};

class ArtifactStore {
 public:
  // Opens (creating the directory if needed), replays every segment into
  // the index, repairs torn tails, and finishes any interrupted compaction.
  // Fails only on environmental errors (unusable directory, I/O failure) —
  // corruption is repaired, not reported as failure.
  static Result<std::unique_ptr<ArtifactStore>> Open(
      ArtifactStoreOptions options);

  ~ArtifactStore();
  ArtifactStore(const ArtifactStore&) = delete;
  ArtifactStore& operator=(const ArtifactStore&) = delete;

  // Returns the stored bytes and refreshes the entry's recency.
  std::optional<std::string> Get(const Fp128& key);

  // Inserts or replaces. The record is appended and flushed to the OS
  // before the index is updated; kUnavailable on I/O failure.
  Status Put(const Fp128& key, std::string_view value);

  // Rewrites the log to exactly the live entries (atomic rename), unlinks
  // old generations. Also runs automatically per the options' thresholds.
  Status Compact();

  // Visits every live entry, least recently used first — replaying this
  // order through an LRU cache reproduces the store's recency.
  void ForEachLru(
      const std::function<void(const Fp128&, const std::string&)>& fn) const;

  std::size_t entries() const;
  std::uint64_t live_bytes() const;
  std::uint64_t log_bytes() const;
  ArtifactStoreCounters counters() const;
  const std::string& dir() const { return options_.dir; }

 private:
  explicit ArtifactStore(ArtifactStoreOptions options)
      : options_(std::move(options)) {}

  Status ReplayLocked();
  Status AppendRecordLocked(const Fp128& key, std::string_view value);
  Status CompactLocked();
  void EvictLocked();
  void IndexPutLocked(const Fp128& key, std::string value);

  using Entry = std::pair<Fp128, std::string>;

  const ArtifactStoreOptions options_;

  mutable std::mutex mu_;
  std::list<Entry> lru_;  // front = least recently used
  std::unordered_map<Fp128, std::list<Entry>::iterator, Fp128Hash> index_;
  std::uint64_t live_bytes_ = 0;
  std::uint64_t log_bytes_ = 0;
  std::uint64_t generation_ = 0;  // active segment generation
  int fd_ = -1;                   // active segment, O_APPEND
  ArtifactStoreCounters counters_;
};

// Offline scan of a store directory: walks every segment, checks headers
// and record CRCs, never modifies anything. Environmental errors only.
Result<StoreVerifyReport> VerifyArtifactDir(const std::string& dir);

}  // namespace ws

#endif  // WS_IO_ARTIFACT_STORE_H
