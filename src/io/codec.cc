#include "io/codec.h"

#include <utility>

#include "base/strings.h"

namespace ws {
namespace {

Status Corrupt(const char* what) {
  return Status::MakeError(StatusCode::kInvalidArgument,
                           StrCat("corrupt artifact: ", what));
}

// --- id / instance helpers -------------------------------------------------
//
// Ids serialize as their raw 32-bit value; the invalid sentinel
// (0xffffffff) round-trips like any other value.

template <typename Tag>
void WriteId(ByteWriter& w, Id<Tag> id) {
  w.U32(id.value());
}

template <typename Tag>
Id<Tag> ReadId(ByteReader& r) {
  return Id<Tag>(r.U32());
}

void WriteInstRef(ByteWriter& w, const InstRef& inst) {
  WriteId(w, inst.node);
  w.U32(static_cast<std::uint32_t>(inst.iter));
  w.U32(static_cast<std::uint32_t>(inst.version));
}

InstRef ReadInstRef(ByteReader& r) {
  InstRef inst;
  inst.node = ReadId<NodeTag>(r);
  inst.iter = static_cast<int>(r.U32());
  inst.version = static_cast<int>(r.U32());
  return inst;
}

// --- STG payload -----------------------------------------------------------

void WriteStgPayload(ByteWriter& w, const Stg& stg) {
  w.Str(stg.name());
  w.U32(static_cast<std::uint32_t>(stg.num_states()));
  for (const State& s : stg.states()) {
    w.U8(s.is_stop ? 1 : 0);
    w.U32(static_cast<std::uint32_t>(s.ops.size()));
    for (const ScheduledOp& op : s.ops) {
      WriteInstRef(w, op.inst);
      w.U32(static_cast<std::uint32_t>(op.operands.size()));
      for (const InstRef& operand : op.operands) WriteInstRef(w, operand);
      w.Str(op.guard);
      w.U32(static_cast<std::uint32_t>(op.fu_type));
      w.U32(static_cast<std::uint32_t>(op.stage));
      w.F64(op.start_offset_ns);
    }
    w.U32(static_cast<std::uint32_t>(s.out.size()));
    for (const Transition& t : s.out) {
      WriteId(w, t.to);
      w.U32(static_cast<std::uint32_t>(t.cubes.size()));
      for (const auto& cube : t.cubes) {
        w.U32(static_cast<std::uint32_t>(cube.size()));
        for (const CondLiteral& lit : cube) {
          WriteInstRef(w, lit.cond);
          w.U8(lit.value ? 1 : 0);
        }
      }
      w.U32(static_cast<std::uint32_t>(t.iter_shift.size()));
      for (const auto& [loop, delta] : t.iter_shift) {
        WriteId(w, loop);
        w.U32(static_cast<std::uint32_t>(delta));
      }
      w.U32(static_cast<std::uint32_t>(t.outputs.size()));
      for (const OutputBinding& binding : t.outputs) {
        WriteId(w, binding.output);
        WriteInstRef(w, binding.value);
      }
    }
  }
  WriteId(w, stg.entry());
  WriteId(w, stg.stop());
}

Result<Stg> ReadStgPayload(ByteReader& r) {
  const std::string name = r.Str();
  const std::uint32_t num_states = r.U32();
  if (!r.ok()) return Corrupt("STG header");

  // First pass over the byte stream rebuilds states in index order; stop
  // states are appended with AddStopState so the stop id lands on the same
  // index it was recorded at (both calls append sequentially).
  Stg stg(name);
  for (std::uint32_t i = 0; i < num_states; ++i) {
    // Peek the is_stop flag before creating the state.
    const bool is_stop = r.U8() != 0;
    const StateId id = is_stop ? stg.AddStopState() : stg.AddState();
    if (id.value() != i) return Corrupt("STG state order");
    State& state = stg.state(id);

    const std::uint32_t num_ops = r.U32();
    if (!r.ok()) return Corrupt("STG state");
    state.ops.reserve(num_ops);
    for (std::uint32_t j = 0; j < num_ops; ++j) {
      ScheduledOp op;
      op.inst = ReadInstRef(r);
      const std::uint32_t num_operands = r.U32();
      if (!r.ok()) return Corrupt("STG op");
      op.operands.reserve(num_operands);
      for (std::uint32_t k = 0; k < num_operands; ++k) {
        op.operands.push_back(ReadInstRef(r));
      }
      op.guard = r.Str();
      op.fu_type = static_cast<int>(r.U32());
      op.stage = static_cast<int>(r.U32());
      op.start_offset_ns = r.F64();
      if (!r.ok()) return Corrupt("STG op");
      state.ops.push_back(std::move(op));
    }

    const std::uint32_t num_out = r.U32();
    if (!r.ok()) return Corrupt("STG transitions");
    state.out.reserve(num_out);
    for (std::uint32_t j = 0; j < num_out; ++j) {
      Transition t;
      t.from = id;
      t.to = ReadId<StgStateTag>(r);
      const std::uint32_t num_cubes = r.U32();
      if (!r.ok()) return Corrupt("STG transition");
      t.cubes.reserve(num_cubes);
      for (std::uint32_t c = 0; c < num_cubes; ++c) {
        const std::uint32_t num_lits = r.U32();
        if (!r.ok()) return Corrupt("STG cube");
        std::vector<CondLiteral> cube;
        cube.reserve(num_lits);
        for (std::uint32_t l = 0; l < num_lits; ++l) {
          CondLiteral lit;
          lit.cond = ReadInstRef(r);
          lit.value = r.U8() != 0;
          cube.push_back(lit);
        }
        t.cubes.push_back(std::move(cube));
      }
      const std::uint32_t num_shifts = r.U32();
      if (!r.ok()) return Corrupt("STG transition");
      t.iter_shift.reserve(num_shifts);
      for (std::uint32_t s_i = 0; s_i < num_shifts; ++s_i) {
        const LoopId loop = ReadId<LoopTag>(r);
        const int delta = static_cast<int>(r.U32());
        t.iter_shift.emplace_back(loop, delta);
      }
      const std::uint32_t num_outputs = r.U32();
      if (!r.ok()) return Corrupt("STG transition");
      t.outputs.reserve(num_outputs);
      for (std::uint32_t o = 0; o < num_outputs; ++o) {
        OutputBinding binding;
        binding.output = ReadId<NodeTag>(r);
        binding.value = ReadInstRef(r);
        t.outputs.push_back(binding);
      }
      state.out.push_back(std::move(t));
    }
  }

  const StateId entry = ReadId<StgStateTag>(r);
  const StateId stop = ReadId<StgStateTag>(r);
  if (!r.ok()) return Corrupt("STG trailer");
  if (entry.valid()) {
    if (entry.value() >= stg.num_states()) return Corrupt("STG entry id");
    stg.set_entry(entry);
  } else if (stg.num_states() != 0) {
    return Corrupt("STG entry id");
  }
  // The stop id is implied by the is_stop flags (AddStopState above); the
  // recorded one must agree or the stream is inconsistent.
  if (stop != stg.stop()) return Corrupt("STG stop id");
  // Structural sanity: every referenced state exists.
  for (const State& s : stg.states()) {
    for (const Transition& t : s.out) {
      if (!t.to.valid() || t.to.value() >= stg.num_states()) {
        return Corrupt("STG transition target");
      }
    }
  }
  return stg;
}

}  // namespace

const char* ArtifactKindName(ArtifactKind kind) {
  switch (kind) {
    case ArtifactKind::kStg: return "stg";
    case ArtifactKind::kScheduleStats: return "schedule_stats";
    case ArtifactKind::kScheduleReport: return "schedule_report";
    case ArtifactKind::kExploreRun: return "explore_run";
    case ArtifactKind::kBranchProfile: return "branch_profile";
  }
  return "unknown";
}

namespace {

// v4 CRC coverage: the adaptive meta fields followed by the payload bytes,
// so a flipped bit anywhere past the fixed header is caught. Pre-v4
// envelopes (which have no meta fields) check the payload alone.
std::uint32_t MetaPayloadCrc(const ArtifactMeta& meta,
                             std::string_view payload) {
  ByteWriter mw;
  mw.U32(meta.generation);
  mw.U64(meta.profile_digest.lo);
  mw.U64(meta.profile_digest.hi);
  const std::string meta_bytes = mw.Take();
  return Crc32(payload.data(), payload.size(), Crc32(meta_bytes));
}

}  // namespace

std::string EncodeArtifactWithMeta(ArtifactKind kind, std::string_view payload,
                                   const ArtifactMeta& meta) {
  ByteWriter w;
  w.U32(kArtifactMagic);
  w.U8(kArtifactVersion);
  w.U8(static_cast<std::uint8_t>(kind));
  w.U32(meta.generation);
  w.U64(meta.profile_digest.lo);
  w.U64(meta.profile_digest.hi);
  w.Str(payload);
  w.U32(MetaPayloadCrc(meta, payload));
  return w.Take();
}

std::string EncodeArtifact(ArtifactKind kind, std::string_view payload) {
  return EncodeArtifactWithMeta(kind, payload, ArtifactMeta{});
}

namespace {

// Shared header walk for Peek/Decode. On success `r` is positioned at the
// payload length field, `*version_out` (when non-null) holds the stored
// on-disk version, and `*meta_out` (when non-null) the stored adaptive meta
// (the zero meta for pre-v4 envelopes, which predate the fields).
Result<ArtifactKind> ReadArtifactHeader(ByteReader& r,
                                        std::uint8_t* version_out = nullptr,
                                        ArtifactMeta* meta_out = nullptr) {
  if (r.U32() != kArtifactMagic) {
    if (!r.ok()) return Corrupt("truncated header");
    return Corrupt("bad magic");
  }
  const std::uint8_t version = r.U8();
  if (version_out != nullptr) *version_out = version;
  const std::uint8_t kind = r.U8();
  if (!r.ok()) return Corrupt("truncated header");
  if (version > kArtifactVersion) {
    return Status::MakeError(
        StatusCode::kInvalidArgument,
        StrCat("artifact version ", static_cast<int>(version),
               " is newer than this build's ",
               static_cast<int>(kArtifactVersion),
               "; refusing to guess at its layout"));
  }
  if (version >= 4) {
    ArtifactMeta meta;
    meta.generation = r.U32();
    meta.profile_digest.lo = r.U64();
    meta.profile_digest.hi = r.U64();
    if (!r.ok()) return Corrupt("truncated header");
    if (meta_out != nullptr) *meta_out = meta;
  }
  if (version == 0 ||
      kind < static_cast<std::uint8_t>(ArtifactKind::kStg) ||
      kind > static_cast<std::uint8_t>(ArtifactKind::kBranchProfile)) {
    return Corrupt("bad version/kind");
  }
  return static_cast<ArtifactKind>(kind);
}

}  // namespace

Result<ArtifactKind> PeekArtifactKind(std::string_view bytes) {
  ByteReader r(bytes);
  return ReadArtifactHeader(r);
}

Result<ArtifactMeta> PeekArtifactMeta(std::string_view bytes) {
  ByteReader r(bytes);
  ArtifactMeta meta;
  Result<ArtifactKind> kind = ReadArtifactHeader(r, nullptr, &meta);
  if (!kind.ok()) return kind.status();
  return meta;
}

Result<DecodedArtifact> DecodeArtifactWithVersion(ArtifactKind expected,
                                                  std::string_view bytes) {
  ByteReader r(bytes);
  DecodedArtifact out;
  Result<ArtifactKind> kind = ReadArtifactHeader(r, &out.version, &out.meta);
  if (!kind.ok()) return kind.status();
  if (*kind != expected) {
    return Status::MakeError(
        StatusCode::kInvalidArgument,
        StrCat("artifact kind mismatch: want ", ArtifactKindName(expected),
               ", got ", ArtifactKindName(*kind)));
  }
  out.payload = r.Str();
  const std::uint32_t stored_crc = r.U32();
  if (!r.AtEnd()) return Corrupt("truncated or oversized body");
  const std::uint32_t want_crc = out.version >= 4
                                     ? MetaPayloadCrc(out.meta, out.payload)
                                     : Crc32(out.payload);
  if (want_crc != stored_crc) {
    return Corrupt("payload CRC mismatch");
  }
  return out;
}

Result<std::string> DecodeArtifact(ArtifactKind expected,
                                   std::string_view bytes) {
  Result<DecodedArtifact> decoded = DecodeArtifactWithVersion(expected, bytes);
  if (!decoded.ok()) return decoded.status();
  return std::move(decoded->payload);
}

void WriteScheduleStats(ByteWriter& w, const ScheduleStats& s) {
  w.U32(static_cast<std::uint32_t>(s.states_created));
  w.U32(static_cast<std::uint32_t>(s.closure_hits));
  w.U32(static_cast<std::uint32_t>(s.speculative_ops));
  w.U32(static_cast<std::uint32_t>(s.squashed_ops));
  w.U32(static_cast<std::uint32_t>(s.total_ops));
  w.I64(s.candidates_generated);
  w.U64(s.bdd_ops);
  w.U64(s.bdd_nodes);
  w.I64(s.signature_collisions);
  w.I64(s.phase.successor_ns);
  w.I64(s.phase.cofactor_ns);
  w.I64(s.phase.closure_ns);
  w.I64(s.phase.gc_ns);
  w.I64(s.phase.select_ns);
  w.I64(s.phase.total_ns);
}

ScheduleStats ReadScheduleStats(ByteReader& r, std::uint8_t version) {
  ScheduleStats s;
  s.states_created = static_cast<int>(r.U32());
  s.closure_hits = static_cast<int>(r.U32());
  s.speculative_ops = static_cast<int>(r.U32());
  s.squashed_ops = static_cast<int>(r.U32());
  s.total_ops = static_cast<int>(r.U32());
  s.candidates_generated = r.I64();
  s.bdd_ops = r.U64();
  s.bdd_nodes = r.U64();
  s.signature_collisions = r.I64();
  s.phase.successor_ns = r.I64();
  s.phase.cofactor_ns = r.I64();
  s.phase.closure_ns = r.I64();
  s.phase.gc_ns = r.I64();
  if (version >= 2) s.phase.select_ns = r.I64();
  s.phase.total_ns = r.I64();
  return s;
}

std::string EncodeStg(const Stg& stg) {
  ByteWriter w;
  WriteStgPayload(w, stg);
  return EncodeArtifact(ArtifactKind::kStg, w.Take());
}

Result<Stg> DecodeStg(std::string_view bytes) {
  Result<std::string> payload = DecodeArtifact(ArtifactKind::kStg, bytes);
  if (!payload.ok()) return payload.status();
  ByteReader r(*payload);
  Result<Stg> stg = ReadStgPayload(r);
  if (!stg.ok()) return stg.status();
  if (!r.AtEnd()) return Corrupt("STG trailing bytes");
  return stg;
}

std::string EncodeScheduleStats(const ScheduleStats& stats) {
  ByteWriter w;
  WriteScheduleStats(w, stats);
  return EncodeArtifact(ArtifactKind::kScheduleStats, w.Take());
}

Result<ScheduleStats> DecodeScheduleStats(std::string_view bytes) {
  Result<DecodedArtifact> decoded =
      DecodeArtifactWithVersion(ArtifactKind::kScheduleStats, bytes);
  if (!decoded.ok()) return decoded.status();
  ByteReader r(decoded->payload);
  const ScheduleStats stats = ReadScheduleStats(r, decoded->version);
  if (!r.AtEnd()) return Corrupt("ScheduleStats size");
  return stats;
}

std::string EncodeScheduleReport(const ScheduleReport& report) {
  ByteWriter w;
  WriteScheduleStats(w, report.stats);
  WriteStgPayload(w, report.stg);
  return EncodeArtifact(ArtifactKind::kScheduleReport, w.Take());
}

Result<ScheduleReport> DecodeScheduleReport(std::string_view bytes) {
  Result<DecodedArtifact> decoded =
      DecodeArtifactWithVersion(ArtifactKind::kScheduleReport, bytes);
  if (!decoded.ok()) return decoded.status();
  ByteReader r(decoded->payload);
  const ScheduleStats stats = ReadScheduleStats(r, decoded->version);
  Result<Stg> stg = ReadStgPayload(r);
  if (!stg.ok()) return stg.status();
  if (!r.AtEnd()) return Corrupt("ScheduleReport trailing bytes");
  return ScheduleReport{*std::move(stg), stats};
}

}  // namespace ws
