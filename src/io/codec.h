// Versioned, CRC-checked binary codecs for persistent schedule artifacts.
//
// Every artifact is an *envelope* around a length-prefixed payload:
//
//   u32  magic    "WSAR" (0x52415357 little-endian on the wire)
//   u8   version  on-disk format version (kArtifactVersion)
//   u8   kind     ArtifactKind discriminator
//   u32  generation     (v4+) adaptive re-schedule generation; 0 = first
//   u64  digest.lo      (v4+) digest of the BranchProfile the payload was
//   u64  digest.hi      (v4+) derived from; 0/0 = none (src/adapt/)
//   u32  length   payload byte count
//   ...  payload  kind-specific encoding (little-endian; doubles as IEEE-754
//                 bit patterns — the same idiom as the serving wire protocol,
//                 so round trips are exact)
//   u32  crc32    CRC-32 (IEEE) of the meta fields + payload bytes (v4+;
//                 pre-v4 envelopes cover the payload alone)
//
// Compatibility rule: a decoder REJECTS artifacts whose version is newer
// than the build's kArtifactVersion (it cannot know what changed) and READS
// every older version it has shipped decoders for. Bump kArtifactVersion on
// any payload layout change; keep the old ReadX path behind a version check.
// Version history:
//   1  initial layout.
//   2  ScheduleStats gains phase.select_ns (after gc_ns); the ExploreRun
//      payload (explore/run_codec.h) gains the selection policy byte after
//      the speculation mode. v1 artifacts decode with select_ns = 0 and
//      policy = kCriticality (the only v1 behavior).
//   3  the ExploreRun payload gains the mem_spec byte after the policy
//      byte (speculative memory disambiguation, mem/disambig.h). Older
//      artifacts decode with mem_spec = false — the only pre-v3 behavior.
//   4  the envelope header gains the adaptive re-scheduling meta fields
//      {u32 generation, u64 profile digest lo, u64 hi} between the kind
//      byte and the payload length, and ArtifactKind::kBranchProfile joins
//      the kind space (src/adapt/profile.h payloads). Payload layouts are
//      unchanged; older envelopes decode with generation 0 and a zero
//      digest — every pre-v4 artifact is a first-generation, unprofiled
//      schedule.
//
// The codecs promise exact round trips: decode(encode(x)) is structurally
// equal to x, and encode(decode(bytes)) == bytes for any bytes this version
// produced. Tests enforce both over the benchmark suite's schedules.
#ifndef WS_IO_CODEC_H
#define WS_IO_CODEC_H

#include <cstdint>
#include <string>
#include <string_view>

#include "base/codec.h"
#include "base/hashing.h"
#include "base/status.h"
#include "sched/scheduler.h"
#include "stg/stg.h"

namespace ws {

inline constexpr std::uint32_t kArtifactMagic = 0x52415357;  // "WSAR"
inline constexpr std::uint8_t kArtifactVersion = 4;

enum class ArtifactKind : std::uint8_t {
  kStg = 1,
  kScheduleStats = 2,
  kScheduleReport = 3,
  kExploreRun = 4,      // payload encoded by explore/run_codec.h
  kBranchProfile = 5,   // payload encoded by adapt/profile.h
};

const char* ArtifactKindName(ArtifactKind kind);

// Envelope metadata introduced by v4: which adaptive generation the payload
// is (0 = the schedule computed from the request's own annotations) and the
// digest of the branch profile it was derived from (zero when none).
struct ArtifactMeta {
  std::uint32_t generation = 0;
  Fp128 profile_digest{0, 0};

  bool operator==(const ArtifactMeta&) const = default;
};

// --- envelope --------------------------------------------------------------

// Wraps an already-encoded payload in the envelope above (default meta:
// generation 0, no profile digest).
std::string EncodeArtifact(ArtifactKind kind, std::string_view payload);

// Same, carrying explicit adaptive-re-scheduling metadata.
std::string EncodeArtifactWithMeta(ArtifactKind kind, std::string_view payload,
                                   const ArtifactMeta& meta);

// Verifies magic/version/length/CRC and returns the payload bytes.
// `expected` must match the stored kind. Typed kInvalidArgument errors name
// the failure (bad magic, version newer than kArtifactVersion, kind
// mismatch, truncation, CRC mismatch) — a corrupted artifact is never a
// crash or a silently wrong result.
Result<std::string> DecodeArtifact(ArtifactKind expected,
                                   std::string_view bytes);

// The stored kind of an enveloped artifact (header checks only; does not
// verify the CRC).
Result<ArtifactKind> PeekArtifactKind(std::string_view bytes);

// The stored adaptive metadata (header checks only; pre-v4 envelopes report
// the zero meta).
Result<ArtifactMeta> PeekArtifactMeta(std::string_view bytes);

// DecodeArtifact plus the stored on-disk version and meta, for payload
// codecs whose layout changed across versions (ReadScheduleStats,
// explore/run_codec.h) and consumers of the generation/digest fields.
struct DecodedArtifact {
  std::string payload;
  std::uint8_t version = kArtifactVersion;
  ArtifactMeta meta;
};
Result<DecodedArtifact> DecodeArtifactWithVersion(ArtifactKind expected,
                                                  std::string_view bytes);

// --- payload building blocks (shared with the wire protocol) ---------------

// ScheduleStats as a flat field sequence. This is the exact layout the
// serving protocol has always used for the stats section of an ExploreRun;
// it lives here so the wire codec and the disk codecs share one definition.
// Writers always emit the current layout; readers take the enveloping
// artifact's stored version and apply the per-version layout (v1 lacks
// phase.select_ns, which reads back as 0).
void WriteScheduleStats(ByteWriter& w, const ScheduleStats& s);
ScheduleStats ReadScheduleStats(ByteReader& r,
                                std::uint8_t version = kArtifactVersion);

// --- whole-artifact codecs -------------------------------------------------

std::string EncodeStg(const Stg& stg);
Result<Stg> DecodeStg(std::string_view bytes);

std::string EncodeScheduleStats(const ScheduleStats& stats);
Result<ScheduleStats> DecodeScheduleStats(std::string_view bytes);

std::string EncodeScheduleReport(const ScheduleReport& report);
Result<ScheduleReport> DecodeScheduleReport(std::string_view bytes);

}  // namespace ws

#endif  // WS_IO_CODEC_H
