#include "cdfg/cdfg.h"

#include <algorithm>

namespace ws {

const char* OpKindName(OpKind kind) {
  switch (kind) {
    case OpKind::kConst: return "const";
    case OpKind::kInput: return "in";
    case OpKind::kAdd: return "+";
    case OpKind::kSub: return "-";
    case OpKind::kMul: return "*";
    case OpKind::kInc: return "++";
    case OpKind::kDec: return "--";
    case OpKind::kLt: return "<";
    case OpKind::kGt: return ">";
    case OpKind::kLe: return "<=";
    case OpKind::kGe: return ">=";
    case OpKind::kEq: return "==";
    case OpKind::kNe: return "!=";
    case OpKind::kNot: return "!";
    case OpKind::kAnd2: return "&&";
    case OpKind::kOr2: return "||";
    case OpKind::kXor2: return "^";
    case OpKind::kShl: return "<<";
    case OpKind::kShr: return ">>";
    case OpKind::kSelect: return "sel";
    case OpKind::kLoopPhi: return "phi";
    case OpKind::kMemRead: return "mrd";
    case OpKind::kMemWrite: return "mwr";
    case OpKind::kOutput: return "out";
    case OpKind::kDisambig: return "a!=";
  }
  return "?";
}

bool IsScheduledKind(OpKind kind) {
  switch (kind) {
    case OpKind::kConst:
    case OpKind::kInput:
    case OpKind::kLoopPhi:
    case OpKind::kOutput:
      return false;
    // Selects are scheduled as zero-delay register transfers (mux + register
    // write) once their steering condition has resolved; before resolution,
    // consumers speculate through them per Observation 1.
    case OpKind::kSelect:
      return true;
    default:
      return true;
  }
}

bool IsBinaryKind(OpKind kind) {
  switch (kind) {
    case OpKind::kAdd:
    case OpKind::kSub:
    case OpKind::kMul:
    case OpKind::kLt:
    case OpKind::kGt:
    case OpKind::kLe:
    case OpKind::kGe:
    case OpKind::kEq:
    case OpKind::kNe:
    case OpKind::kAnd2:
    case OpKind::kOr2:
    case OpKind::kXor2:
    case OpKind::kShl:
    case OpKind::kShr:
      return true;
    default:
      return false;
  }
}

bool IsCompareKind(OpKind kind) {
  switch (kind) {
    case OpKind::kLt:
    case OpKind::kGt:
    case OpKind::kLe:
    case OpKind::kGe:
    case OpKind::kEq:
    case OpKind::kNe:
      return true;
    default:
      return false;
  }
}

double Cdfg::cond_probability(NodeId cond) const {
  auto it = cond_prob_.find(cond);
  return it == cond_prob_.end() ? 0.5 : it->second;
}

void Cdfg::set_cond_probability(NodeId cond, double p) {
  WS_CHECK_MSG(p >= 0.0 && p <= 1.0, "probability out of range");
  cond_prob_[cond] = p;
}

const std::vector<NodeId>& Cdfg::consumers(NodeId id) const {
  WS_CHECK(id.valid() && id.value() < consumers_.size());
  return consumers_[id.value()];
}

bool Cdfg::is_condition_node(NodeId id) const {
  return cond_node_set_.contains(id);
}

bool Cdfg::is_control_condition(NodeId id) const {
  return control_cond_set_.contains(id);
}

const std::vector<NodeId>& Cdfg::array_accesses(ArrayId id) const {
  WS_CHECK(id.valid() && id.value() < array_accesses_.size());
  return array_accesses_[id.value()];
}

bool Cdfg::InLoop(NodeId node_id, LoopId loop_id) const {
  if (!loop_id.valid()) return false;
  return node(node_id).loop == loop_id;
}

void Cdfg::RebuildDerived() {
  consumers_.assign(nodes_.size(), {});
  for (const Node& n : nodes_) {
    for (NodeId in : n.inputs) {
      WS_CHECK(in.valid() && in.value() < nodes_.size());
      consumers_[in.value()].push_back(n.id);
    }
  }

  cond_node_set_.clear();
  control_cond_set_.clear();
  for (const Node& n : nodes_) {
    if (n.kind == OpKind::kSelect) cond_node_set_.insert(n.inputs[0]);
    // Disambiguation comparators fork the controller (alias -> squash and
    // re-execute the bypassing load), so they are control conditions even
    // though no node carries them as an if-nest guard.
    if (n.kind == OpKind::kDisambig) {
      cond_node_set_.insert(n.id);
      control_cond_set_.insert(n.id);
    }
    for (const ControlLiteral& lit : n.ctrl) {
      cond_node_set_.insert(lit.cond);
      control_cond_set_.insert(lit.cond);
    }
  }
  for (const Loop& l : loops_) {
    cond_node_set_.insert(l.cond);
    control_cond_set_.insert(l.cond);
  }
  cond_nodes_.assign(cond_node_set_.begin(), cond_node_set_.end());
  std::sort(cond_nodes_.begin(), cond_nodes_.end());

  array_accesses_.assign(arrays_.size(), {});
  for (const Node& n : nodes_) {
    if (n.kind == OpKind::kMemRead || n.kind == OpKind::kMemWrite) {
      WS_CHECK(n.array.valid() && n.array.value() < arrays_.size());
      array_accesses_[n.array.value()].push_back(n.id);
    }
  }

  // Loop headers: backward closure from each loop condition through
  // intra-iteration data edges (phis and nodes outside the loop stop the
  // walk).
  loop_header_.clear();
  for (const Loop& l : loops_) {
    std::vector<NodeId> stack{l.cond};
    while (!stack.empty()) {
      const NodeId id = stack.back();
      stack.pop_back();
      const Node& n = node(id);
      if (n.loop != l.id || n.kind == OpKind::kLoopPhi) continue;
      if (!loop_header_.insert(id).second) continue;
      for (NodeId in : n.inputs) stack.push_back(in);
    }
  }
}

bool Cdfg::InLoopHeader(NodeId node_id) const {
  return loop_header_.contains(node_id);
}

void Cdfg::Validate() const {
  for (const Node& n : nodes_) {
    // Arity.
    std::size_t arity = 0;
    switch (n.kind) {
      case OpKind::kConst:
      case OpKind::kInput:
        arity = 0;
        break;
      case OpKind::kInc:
      case OpKind::kDec:
      case OpKind::kNot:
      case OpKind::kMemRead:
      case OpKind::kOutput:
        arity = 1;
        break;
      case OpKind::kSelect:
        arity = 3;
        break;
      case OpKind::kLoopPhi:
      case OpKind::kMemWrite:
      case OpKind::kDisambig:
        arity = 2;
        break;
      default:
        arity = 2;
        break;
    }
    WS_CHECK_MSG(n.inputs.size() == arity,
                 "node " << n.name << " has wrong arity");

    // Scope rules: a node's operand must be visible — same loop, outside any
    // loop, or a phi/cond of another loop (exit value).
    for (NodeId in_id : n.inputs) {
      const Node& in = node(in_id);
      if (in.loop == n.loop) continue;
      if (!in.loop.valid()) continue;  // top-level value used anywhere: ok
      // Cross-loop use: only exit values (phi or condition of a finished
      // loop) may be read from outside that loop.
      WS_CHECK_MSG(!n.loop.valid() || n.loop != in.loop,
                   "unexpected scope");
      const Loop& src_loop = loop(in.loop);
      const bool is_exit_value =
          in.kind == OpKind::kLoopPhi || in_id == src_loop.cond;
      WS_CHECK_MSG(is_exit_value,
                   "node " << n.name << " reads non-exit value " << in.name
                           << " from inside loop " << src_loop.name);
    }

    // Control literal scope: guard conditions must live in the same loop
    // scope as the guarded node.
    for (const ControlLiteral& lit : n.ctrl) {
      const Node& c = node(lit.cond);
      WS_CHECK_MSG(c.loop == n.loop,
                   "guard of " << n.name << " crosses loop boundary");
    }

    if (n.kind == OpKind::kLoopPhi) {
      WS_CHECK_MSG(n.loop.valid(), "loop-phi outside a loop");
      const Node& init = node(n.inputs[0]);
      WS_CHECK_MSG(init.loop != n.loop, "phi init defined inside the loop");
      const Node& back = node(n.inputs[1]);
      WS_CHECK_MSG(back.loop == n.loop, "phi back-edge defined outside loop");
      WS_CHECK_MSG(n.ctrl.empty(), "loop-phi must be unguarded");
    }
  }

  for (const Loop& l : loops_) {
    WS_CHECK_MSG(l.cond.valid(), "loop " << l.name << " has no condition");
    WS_CHECK_MSG(node(l.cond).loop == l.id,
                 "loop condition outside the loop body");
    WS_CHECK_MSG(node(l.cond).ctrl.empty(),
                 "loop condition must be unguarded");
    for (NodeId b : l.body) {
      WS_CHECK_MSG(node(b).loop == l.id, "body list mismatch");
      // Header nodes compute the continue decision; an if-nest guard on them
      // would make the decision itself conditional.
      if (InLoopHeader(b)) {
        WS_CHECK_MSG(node(b).ctrl.empty(),
                     "loop-header node " << node(b).name
                                         << " must be unguarded");
      }
    }
  }

  for (NodeId out : outputs_) {
    WS_CHECK_MSG(node(out).kind == OpKind::kOutput, "bad output node");
    WS_CHECK_MSG(!node(out).loop.valid(), "outputs must be top-level");
  }
}

}  // namespace ws
