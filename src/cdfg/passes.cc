#include "cdfg/passes.h"

#include <unordered_map>
#include <vector>

namespace ws {

Cdfg EliminateDeadCode(const Cdfg& g, DceStats* stats) {
  const std::size_t n = g.num_nodes();
  std::vector<bool> live(n, false);

  // Seeds: outputs and memory writes (side effects).
  std::vector<NodeId> work;
  for (NodeId out : g.outputs()) {
    live[out.value()] = true;
    work.push_back(out);
  }
  for (const Node& node : g.nodes()) {
    if (node.kind == OpKind::kMemWrite) {
      live[node.id.value()] = true;
      work.push_back(node.id);
    }
  }

  // Backward closure over data inputs, control conditions, and loop
  // conditions (a live loop member keeps the loop's continue condition,
  // which keeps the condition's own inputs).
  auto mark = [&](NodeId id) {
    if (!live[id.value()]) {
      live[id.value()] = true;
      work.push_back(id);
    }
  };
  while (!work.empty()) {
    const NodeId id = work.back();
    work.pop_back();
    const Node& node = g.node(id);
    for (NodeId in : node.inputs) mark(in);
    for (const ControlLiteral& lit : node.ctrl) mark(lit.cond);
    if (node.loop.valid()) mark(g.loop(node.loop).cond);
  }

  // Compact: rebuild every structure with remapped ids.
  Cdfg out;
  out.name_ = g.name();
  std::unordered_map<NodeId::value_type, NodeId> remap;
  std::vector<bool> loop_live(g.num_loops(), false);
  for (const Node& node : g.nodes()) {
    if (!live[node.id.value()]) continue;
    Node copy = node;
    copy.id = NodeId(static_cast<NodeId::value_type>(out.nodes_.size()));
    remap.emplace(node.id.value(), copy.id);
    out.nodes_.push_back(std::move(copy));
    if (node.loop.valid()) loop_live[node.loop.value()] = true;
  }
  auto remap_id = [&](NodeId id) {
    auto it = remap.find(id.value());
    WS_CHECK_MSG(it != remap.end(), "dangling reference after DCE");
    return it->second;
  };

  // Loops: keep those with live members.
  std::unordered_map<LoopId::value_type, LoopId> loop_remap;
  for (const Loop& loop : g.loops()) {
    if (!loop_live[loop.id.value()]) continue;
    Loop copy;
    copy.id = LoopId(static_cast<LoopId::value_type>(out.loops_.size()));
    copy.name = loop.name;
    copy.cond = remap_id(loop.cond);
    for (NodeId phi : loop.phis) {
      if (live[phi.value()]) copy.phis.push_back(remap_id(phi));
    }
    for (NodeId b : loop.body) {
      if (live[b.value()]) copy.body.push_back(remap_id(b));
    }
    loop_remap.emplace(loop.id.value(), copy.id);
    out.loops_.push_back(std::move(copy));
  }

  // Patch node references.
  for (Node& node : out.nodes_) {
    for (NodeId& in : node.inputs) in = remap_id(in);
    for (ControlLiteral& lit : node.ctrl) lit.cond = remap_id(lit.cond);
    if (node.loop.valid()) {
      auto it = loop_remap.find(node.loop.value());
      WS_CHECK(it != loop_remap.end());
      node.loop = it->second;
    }
  }

  out.arrays_ = g.arrays();
  for (NodeId in : g.inputs()) {
    // Inputs stay declared even if unread (they are the design's ports).
    if (!live[in.value()]) {
      Node port = g.node(in);
      port.id = NodeId(static_cast<NodeId::value_type>(out.nodes_.size()));
      remap.emplace(in.value(), port.id);
      out.nodes_.push_back(std::move(port));
    }
    out.inputs_.push_back(remap_id(in));
  }
  for (NodeId o : g.outputs()) out.outputs_.push_back(remap_id(o));

  // Preserve probability annotations on surviving conditions.
  for (const Node& node : g.nodes()) {
    if (!live[node.id.value()]) continue;
    if (g.is_condition_node(node.id)) {
      out.cond_prob_[remap_id(node.id)] = g.cond_probability(node.id);
    }
  }

  if (stats != nullptr) {
    stats->removed_nodes =
        static_cast<int>(n) - static_cast<int>(out.nodes_.size());
    stats->removed_loops =
        static_cast<int>(g.num_loops()) - static_cast<int>(out.loops_.size());
  }

  out.RebuildDerived();
  out.Validate();
  return out;
}

}  // namespace ws
