#include "cdfg/builder.h"

#include <sstream>
#include <utility>

#include "cdfg/eval.h"

namespace ws {

CdfgBuilder::CdfgBuilder(const std::string& name) { graph_.name_ = name; }

NodeId CdfgBuilder::NewNode(OpKind kind, const std::string& name,
                            std::vector<NodeId> inputs) {
  WS_CHECK_MSG(!finished_, "builder already finished");
  Node n;
  n.id = NodeId(static_cast<NodeId::value_type>(graph_.nodes_.size()));
  n.kind = kind;
  n.name = name;
  n.inputs = std::move(inputs);
  n.loop = current_loop_;
  if (kind != OpKind::kLoopPhi) {
    for (const IfFrame& frame : if_stack_) {
      n.ctrl.push_back(ControlLiteral{frame.cond, !frame.in_else});
    }
  }
  graph_.nodes_.push_back(n);
  if (current_loop_.valid()) {
    graph_.loops_[current_loop_.value()].body.push_back(n.id);
  }
  return n.id;
}

NodeId CdfgBuilder::Input(const std::string& name) {
  WS_CHECK_MSG(!current_loop_.valid() && if_stack_.empty(),
               "inputs must be declared at top level");
  NodeId id = NewNode(OpKind::kInput, name, {});
  graph_.inputs_.push_back(id);
  return id;
}

NodeId CdfgBuilder::Konst(std::int64_t value) {
  if (simplify_) {
    auto it = const_pool_.find(value);
    if (it != const_pool_.end()) return it->second;
  }
  NodeId id = NewNode(OpKind::kConst, "#" + std::to_string(value), {});
  graph_.nodes_[id.value()].const_value = value;
  // Constants are always available; scope them to top level so they can be
  // referenced from anywhere.
  graph_.nodes_[id.value()].loop = LoopId::invalid();
  graph_.nodes_[id.value()].ctrl.clear();
  if (current_loop_.valid()) {
    auto& body = graph_.loops_[current_loop_.value()].body;
    body.pop_back();  // NewNode appended it to the loop body; undo
  }
  if (simplify_) const_pool_.emplace(value, id);
  return id;
}

std::string CdfgBuilder::ScopeKey(OpKind kind,
                                  const std::vector<NodeId>& inputs) const {
  // Common subexpressions may only merge within the same control scope
  // (same loop, same if-nest): a guarded op executes conditionally and must
  // not be hoisted by sharing.
  std::ostringstream os;
  os << static_cast<int>(kind) << "/";
  for (NodeId in : inputs) os << in.value() << ",";
  os << "L" << (current_loop_.valid() ? current_loop_.value() : ~0u);
  for (const IfFrame& frame : if_stack_) {
    os << (frame.in_else ? "!" : "") << frame.cond.value() << ";";
  }
  return os.str();
}

NodeId CdfgBuilder::TrySimplify(OpKind kind,
                                const std::vector<NodeId>& inputs) {
  if (!simplify_) return NodeId::invalid();
  auto const_of = [&](NodeId id) -> const Node* {
    const Node& n = graph_.nodes_[id.value()];
    return n.kind == OpKind::kConst ? &n : nullptr;
  };

  // Constant folding (pure computational kinds only).
  if (kind != OpKind::kSelect) {
    bool all_const = !inputs.empty();
    for (NodeId in : inputs) all_const &= const_of(in) != nullptr;
    if (all_const) {
      const std::int64_t a = const_of(inputs[0])->const_value;
      const std::int64_t b =
          inputs.size() > 1 ? const_of(inputs[1])->const_value : 0;
      return Konst(EvalOp(kind, a, b));
    }
  }

  // Algebraic identities.
  if (inputs.size() == 2) {
    const Node* rc = const_of(inputs[1]);
    if (rc != nullptr) {
      const std::int64_t c = rc->const_value;
      if (c == 0 && (kind == OpKind::kAdd || kind == OpKind::kSub ||
                     kind == OpKind::kShl || kind == OpKind::kShr ||
                     kind == OpKind::kOr2 || kind == OpKind::kXor2)) {
        return inputs[0];
      }
      if (c == 1 && kind == OpKind::kMul) return inputs[0];
      if (c == 0 && (kind == OpKind::kMul || kind == OpKind::kAnd2)) {
        return Konst(0);
      }
    }
    const Node* lc = const_of(inputs[0]);
    if (lc != nullptr) {
      const std::int64_t c = lc->const_value;
      if (c == 0 && kind == OpKind::kAdd) return inputs[1];
      if (c == 1 && kind == OpKind::kMul) return inputs[1];
      if (c == 0 && (kind == OpKind::kMul || kind == OpKind::kAnd2)) {
        return Konst(0);
      }
    }
  }
  if (inputs.size() == 2 && inputs[0] == inputs[1]) {
    switch (kind) {
      case OpKind::kSub:
      case OpKind::kXor2:
      case OpKind::kNe:
      case OpKind::kLt:
      case OpKind::kGt:
        return Konst(0);
      case OpKind::kEq:
      case OpKind::kLe:
      case OpKind::kGe:
        return Konst(1);
      default:
        break;
    }
  }
  if (kind == OpKind::kSelect) {
    if (inputs[1] == inputs[2]) return inputs[1];  // both arms equal
    if (const Node* sc = const_of(inputs[0])) {
      return sc->const_value != 0 ? inputs[1] : inputs[2];
    }
  }

  // Common subexpression within the current control scope.
  auto it = cse_.find(ScopeKey(kind, inputs));
  if (it != cse_.end()) return it->second;
  return NodeId::invalid();
}

NodeId CdfgBuilder::Op(OpKind kind, const std::string& name,
                       const std::vector<NodeId>& inputs) {
  WS_CHECK_MSG(IsScheduledKind(kind) || kind == OpKind::kSelect,
               "use the dedicated builder method for this kind");
  WS_CHECK_MSG(kind != OpKind::kMemRead && kind != OpKind::kMemWrite,
               "use MemRead/MemWrite for memory accesses");
  if (const NodeId simplified = TrySimplify(kind, inputs);
      simplified.valid()) {
    return simplified;
  }
  const NodeId id = NewNode(kind, name, inputs);
  if (simplify_) cse_.emplace(ScopeKey(kind, inputs), id);
  return id;
}

NodeId CdfgBuilder::Select(const std::string& name, NodeId sel,
                           NodeId on_true, NodeId on_false) {
  const std::vector<NodeId> inputs{sel, on_true, on_false};
  if (const NodeId simplified = TrySimplify(OpKind::kSelect, inputs);
      simplified.valid()) {
    return simplified;
  }
  const NodeId id = NewNode(OpKind::kSelect, name, inputs);
  if (simplify_) cse_.emplace(ScopeKey(OpKind::kSelect, inputs), id);
  return id;
}

ArrayId CdfgBuilder::Array(const std::string& name, int size,
                           std::vector<std::int64_t> init) {
  WS_CHECK(size > 0);
  WS_CHECK(static_cast<int>(init.size()) <= size);
  MemArray a;
  a.id = ArrayId(static_cast<ArrayId::value_type>(graph_.arrays_.size()));
  a.name = name;
  a.size = size;
  a.init = std::move(init);
  graph_.arrays_.push_back(a);
  return a.id;
}

NodeId CdfgBuilder::MemRead(const std::string& name, ArrayId array,
                            NodeId addr) {
  NodeId id = NewNode(OpKind::kMemRead, name, {addr});
  graph_.nodes_[id.value()].array = array;
  return id;
}

NodeId CdfgBuilder::MemWrite(const std::string& name, ArrayId array,
                             NodeId addr, NodeId value) {
  NodeId id = NewNode(OpKind::kMemWrite, name, {addr, value});
  graph_.nodes_[id.value()].array = array;
  return id;
}

LoopId CdfgBuilder::BeginLoop(const std::string& name) {
  WS_CHECK_MSG(!current_loop_.valid(), "loops cannot nest");
  WS_CHECK_MSG(if_stack_.empty(), "loops inside conditionals unsupported");
  Loop l;
  l.id = LoopId(static_cast<LoopId::value_type>(graph_.loops_.size()));
  l.name = name;
  graph_.loops_.push_back(l);
  current_loop_ = l.id;
  return l.id;
}

NodeId CdfgBuilder::LoopPhi(const std::string& name, NodeId init) {
  WS_CHECK_MSG(current_loop_.valid(), "LoopPhi outside a loop");
  // The back edge is patched by SetLoopBack; temporarily self-referential.
  NodeId id = NewNode(OpKind::kLoopPhi, name, {init, NodeId::invalid()});
  graph_.loops_[current_loop_.value()].phis.push_back(id);
  return id;
}

void CdfgBuilder::SetLoopCondition(NodeId cond) {
  WS_CHECK_MSG(current_loop_.valid(), "SetLoopCondition outside a loop");
  Loop& l = graph_.loops_[current_loop_.value()];
  WS_CHECK_MSG(!l.cond.valid(), "loop condition already set");
  l.cond = cond;
}

void CdfgBuilder::SetLoopBack(NodeId phi, NodeId back) {
  WS_CHECK_MSG(current_loop_.valid(), "SetLoopBack outside a loop");
  Node& p = graph_.nodes_[phi.value()];
  WS_CHECK_MSG(p.kind == OpKind::kLoopPhi, "SetLoopBack on non-phi");
  WS_CHECK_MSG(!p.inputs[1].valid(), "back edge already set");
  p.inputs[1] = back;
}

void CdfgBuilder::EndLoop() {
  WS_CHECK_MSG(current_loop_.valid(), "EndLoop without BeginLoop");
  WS_CHECK_MSG(if_stack_.empty(), "unclosed if inside loop");
  const Loop& l = graph_.loops_[current_loop_.value()];
  WS_CHECK_MSG(l.cond.valid(), "loop has no condition");
  for (NodeId phi : l.phis) {
    WS_CHECK_MSG(graph_.nodes_[phi.value()].inputs[1].valid(),
                 "loop-phi " << graph_.nodes_[phi.value()].name
                             << " has no back edge");
  }
  current_loop_ = LoopId::invalid();
}

void CdfgBuilder::BeginIf(NodeId cond) {
  const Node& c = graph_.nodes_[cond.value()];
  WS_CHECK_MSG(c.loop == current_loop_,
               "if condition must be in the current loop scope");
  if_stack_.push_back(IfFrame{cond, false});
}

void CdfgBuilder::BeginElse() {
  WS_CHECK_MSG(!if_stack_.empty(), "BeginElse without BeginIf");
  WS_CHECK_MSG(!if_stack_.back().in_else, "duplicate BeginElse");
  if_stack_.back().in_else = true;
}

void CdfgBuilder::EndIf() {
  WS_CHECK_MSG(!if_stack_.empty(), "EndIf without BeginIf");
  if_stack_.pop_back();
}

NodeId CdfgBuilder::Output(const std::string& name, NodeId value) {
  WS_CHECK_MSG(!current_loop_.valid() && if_stack_.empty(),
               "outputs must be declared at top level");
  NodeId id = NewNode(OpKind::kOutput, name, {value});
  graph_.outputs_.push_back(id);
  return id;
}

void CdfgBuilder::SetProbability(NodeId cond, double p) {
  graph_.set_cond_probability(cond, p);
}

Cdfg CdfgBuilder::Finish() {
  WS_CHECK_MSG(!current_loop_.valid(), "unclosed loop");
  WS_CHECK_MSG(if_stack_.empty(), "unclosed if");
  WS_CHECK_MSG(!finished_, "Finish called twice");
  finished_ = true;
  graph_.RebuildDerived();
  graph_.Validate();
  return std::move(graph_);
}

}  // namespace ws
