// Control-data flow graph (CDFG) intermediate representation.
//
// This is the scheduler's input, mirroring the paper's Figure 1 / Figure 4
// style graphs: operation vertices, data edges (operand lists), and control
// dependencies expressed as guards over the results of conditional
// operations. Control joins are explicit `select` operations (the paper's
// Sel nodes) and loop-carried values are explicit `loop-phi` merges, so the
// graph is in SSA-like form and the speculative scheduler can apply the
// paper's Observation 1 (binding operands through chains of selects).
//
// Structural conventions:
//  * `while` loops are first-class: a Loop owns its body nodes, a designated
//    continue-condition node, and the loop-phi nodes that merge initial and
//    back-edge values. Iteration i of the body executes iff the condition
//    evaluated true in iterations 0..i.
//  * Conditionals are encoded by guards: each node carries the if-nest
//    control literals (condition node, polarity) under which it executes
//    within its innermost loop (or at top level).
//  * Loops do not nest (checked by Validate) — every Table 1 benchmark of the
//    paper is expressible with sequential top-level loops; nested-loop
//    scheduling is documented future work.
//  * Reading a loop-phi (or the loop condition) from outside the loop yields
//    its value at loop exit.
#ifndef WS_CDFG_CDFG_H
#define WS_CDFG_CDFG_H

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "base/ids.h"
#include "base/status.h"

namespace ws {

struct NodeTag;
struct LoopTag;
struct ArrayTag;
using NodeId = Id<NodeTag>;
using LoopId = Id<LoopTag>;
using ArrayId = Id<ArrayTag>;

// Operation kinds. Arithmetic/comparison/logic/shift ops are scheduled on
// functional units; kSelect and kLoopPhi are structural (zero-delay, resolved
// by the scheduler's value-version propagation); kConst/kInput are sources;
// kOutput is a sink.
enum class OpKind {
  kConst,
  kInput,
  kAdd,
  kSub,
  kMul,
  kInc,   // ++
  kDec,   // --
  kLt,
  kGt,
  kLe,
  kGe,
  kEq,
  kNe,
  kNot,   // logical not (1-bit)
  kAnd2,  // logical and
  kOr2,   // logical or
  kXor2,
  kShl,
  kShr,
  kSelect,   // inputs: [s, l, r]; yields l if s != 0 else r
  kLoopPhi,  // inputs: [init, back]; init outside the loop, back inside
  kMemRead,  // inputs: [addr]
  kMemWrite, // inputs: [addr, value]; side effect on `array`
  kOutput,   // inputs: [value]
  kDisambig, // inputs: [addr_a, addr_b]; yields 1 iff the two addresses map
             // to different elements of `array` after wrapping. Minted by
             // the memory-speculation pass (mem/disambig.h), never by the
             // frontend; always a control condition (its outcome decides
             // whether a bypassing load keeps its speculated value).
};

// Printable mnemonic ("+", ">", "sel", ...).
const char* OpKindName(OpKind kind);

// True for kinds that occupy a functional unit when scheduled.
bool IsScheduledKind(OpKind kind);
// True for two-operand arithmetic/compare/logic/shift kinds.
bool IsBinaryKind(OpKind kind);
// True for comparison kinds (kLt..kNe).
bool IsCompareKind(OpKind kind);

// One literal of an if-nest guard: `cond` evaluated with this `polarity`.
struct ControlLiteral {
  NodeId cond;
  bool polarity = true;

  friend bool operator==(const ControlLiteral&, const ControlLiteral&) =
      default;
};

// An operation vertex.
struct Node {
  NodeId id;
  OpKind kind = OpKind::kConst;
  std::string name;             // display name, e.g. "*1", ">1"
  std::vector<NodeId> inputs;   // data operands, see OpKind for arity
  std::int64_t const_value = 0; // kConst only
  LoopId loop;                  // enclosing loop; invalid when top-level
  std::vector<ControlLiteral> ctrl;  // if-nest guard within `loop` scope
  ArrayId array;                // kMemRead/kMemWrite only
};

// A `while` loop.
struct Loop {
  LoopId id;
  std::string name;
  NodeId cond;                // continue condition, member of the loop body
  std::vector<NodeId> phis;   // loop-phi nodes (members of the body)
  std::vector<NodeId> body;   // every node in the loop, including cond & phis
};

// A memory array (scratchpad / ROM). One port per array: at most one access
// per cycle; accesses to the same array are kept in program order by the
// scheduler via a token chain.
struct MemArray {
  ArrayId id;
  std::string name;
  int size = 0;
  std::vector<std::int64_t> init;  // size() <= size; rest zero
};

// The graph. Construct through CdfgBuilder (builder.h); read-only afterward.
class Cdfg {
 public:
  const std::string& name() const { return name_; }

  const Node& node(NodeId id) const {
    WS_CHECK(id.valid() && id.value() < nodes_.size());
    return nodes_[id.value()];
  }
  std::size_t num_nodes() const { return nodes_.size(); }
  const std::vector<Node>& nodes() const { return nodes_; }

  const Loop& loop(LoopId id) const {
    WS_CHECK(id.valid() && id.value() < loops_.size());
    return loops_[id.value()];
  }
  std::size_t num_loops() const { return loops_.size(); }
  const std::vector<Loop>& loops() const { return loops_; }

  const MemArray& array(ArrayId id) const {
    WS_CHECK(id.valid() && id.value() < arrays_.size());
    return arrays_[id.value()];
  }
  const std::vector<MemArray>& arrays() const { return arrays_; }

  const std::vector<NodeId>& inputs() const { return inputs_; }
  const std::vector<NodeId>& outputs() const { return outputs_; }

  // Branch probability annotation: P(cond node evaluates true). Defaults to
  // 0.5 for unannotated conditions. For loop conditions this is the
  // stationary continue probability.
  double cond_probability(NodeId cond) const;
  void set_cond_probability(NodeId cond, double p);

  // --- Derived structure -----------------------------------------------------

  // All nodes that consume `id` as a data operand.
  const std::vector<NodeId>& consumers(NodeId id) const;

  // Condition nodes: nodes whose result steers control (select `s` inputs,
  // loop conditions, if-nest guards). Sorted by id.
  const std::vector<NodeId>& condition_nodes() const { return cond_nodes_; }
  bool is_condition_node(NodeId id) const;

  // Control conditions: loop conditions and if-nest guards — the conditions
  // whose outcomes decide which operations execute, and therefore fork the
  // controller (STG). Conditions that only steer selects are datapath (mux
  // select lines) and never fork states.
  bool is_control_condition(NodeId id) const;

  // Nodes of `array`, in program (creation) order; defines the memory token
  // chain.
  const std::vector<NodeId>& array_accesses(ArrayId id) const;

  // True if `node` is a member of `loop`'s body.
  bool InLoop(NodeId node, LoopId loop) const;

  // Loop-header nodes: members of a loop body from which the loop condition
  // is reachable through intra-iteration data edges (including the condition
  // itself). They compute the continue decision of iteration i, so they
  // execute whenever the condition does — one iteration beyond the rest of
  // the body (guarded by c_0..c_{i-1} instead of c_0..c_i).
  bool InLoopHeader(NodeId node) const;

  // Structural sanity checks; throws ws::Error on violation. Called by the
  // builder on Finish().
  void Validate() const;

 private:
  friend class CdfgBuilder;
  friend Cdfg EliminateDeadCode(const Cdfg& g, struct DceStats* stats);
  friend struct MemSpecRewriter;  // mem/disambig.cc: appends disambiguation
                                  // comparators and address-history phis

  void RebuildDerived();

  std::string name_;
  std::vector<Node> nodes_;
  std::vector<Loop> loops_;
  std::vector<MemArray> arrays_;
  std::vector<NodeId> inputs_;
  std::vector<NodeId> outputs_;
  std::unordered_map<NodeId, double> cond_prob_;

  // Derived.
  std::vector<std::vector<NodeId>> consumers_;
  std::vector<NodeId> cond_nodes_;
  std::unordered_set<NodeId> cond_node_set_;
  std::unordered_set<NodeId> control_cond_set_;
  std::vector<std::vector<NodeId>> array_accesses_;
  std::unordered_set<NodeId> loop_header_;
};

}  // namespace ws

#endif  // WS_CDFG_CDFG_H
