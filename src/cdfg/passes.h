// CDFG optimization passes.
//
// The behavioral frontend emits literal, unoptimized graphs; these passes
// clean them up before scheduling:
//  * builder-level simplification (constant folding, algebraic identities,
//    common-subexpression elimination) — enabled via
//    CdfgBuilder::EnableSimplify() and used by the frontend lowering;
//  * dead-code elimination — drops every node that cannot reach an output,
//    a memory write, or control (rebuilding the graph with compact ids).
#ifndef WS_CDFG_PASSES_H
#define WS_CDFG_PASSES_H

#include "cdfg/cdfg.h"

namespace ws {

struct DceStats {
  int removed_nodes = 0;
  int removed_loops = 0;
};

// Returns a copy of `g` without dead nodes. Liveness seeds: outputs, memory
// writes, loop conditions of loops with live members, and the control
// conditions of live nodes. Probability annotations on surviving condition
// nodes are preserved.
Cdfg EliminateDeadCode(const Cdfg& g, DceStats* stats = nullptr);

}  // namespace ws

#endif  // WS_CDFG_PASSES_H
