#include "cdfg/eval.h"

#include "base/status.h"

namespace ws {

std::int64_t EvalOp(OpKind kind, std::int64_t a, std::int64_t b) {
  using U = std::uint64_t;
  switch (kind) {
    case OpKind::kAdd: return static_cast<std::int64_t>(U(a) + U(b));
    case OpKind::kSub: return static_cast<std::int64_t>(U(a) - U(b));
    case OpKind::kMul: return static_cast<std::int64_t>(U(a) * U(b));
    case OpKind::kInc: return static_cast<std::int64_t>(U(a) + 1);
    case OpKind::kDec: return static_cast<std::int64_t>(U(a) - 1);
    case OpKind::kLt: return a < b ? 1 : 0;
    case OpKind::kGt: return a > b ? 1 : 0;
    case OpKind::kLe: return a <= b ? 1 : 0;
    case OpKind::kGe: return a >= b ? 1 : 0;
    case OpKind::kEq: return a == b ? 1 : 0;
    case OpKind::kNe: return a != b ? 1 : 0;
    case OpKind::kNot: return a == 0 ? 1 : 0;
    case OpKind::kAnd2: return (a != 0 && b != 0) ? 1 : 0;
    case OpKind::kOr2: return (a != 0 || b != 0) ? 1 : 0;
    case OpKind::kXor2: return ((a != 0) != (b != 0)) ? 1 : 0;
    case OpKind::kShl:
      return static_cast<std::int64_t>(U(a) << (U(b) & 63u));
    case OpKind::kShr:
      return static_cast<std::int64_t>(U(a) >> (U(b) & 63u));
    default:
      WS_THROW("EvalOp on non-computational kind " << OpKindName(kind));
  }
}

int WrapAddress(std::int64_t addr, int size) {
  WS_CHECK(size > 0);
  std::int64_t m = addr % size;
  if (m < 0) m += size;
  return static_cast<int>(m);
}

}  // namespace ws
