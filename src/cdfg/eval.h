// Shared functional semantics of CDFG operations.
//
// Both the golden CDFG interpreter and the cycle-accurate STG simulator call
// EvalOp, so a scheduled design is checked against the reference semantics
// bit-for-bit.
#ifndef WS_CDFG_EVAL_H
#define WS_CDFG_EVAL_H

#include <cstdint>

#include "cdfg/cdfg.h"

namespace ws {

// Evaluates a scheduled-kind operation (arith/compare/logic/shift) on 64-bit
// two's-complement values. Comparisons and logic ops return 0/1. Shift
// amounts are masked to [0, 63]. kMemRead/kMemWrite/kSelect/etc. are handled
// by the callers, not here.
std::int64_t EvalOp(OpKind kind, std::int64_t a, std::int64_t b);

// Maps a memory address onto a valid array index (wraps modulo size, which
// both the interpreter and the simulator apply identically).
int WrapAddress(std::int64_t addr, int size);

}  // namespace ws

#endif  // WS_CDFG_EVAL_H
