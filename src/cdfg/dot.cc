#include "cdfg/dot.h"

#include <sstream>

#include "base/strings.h"

namespace ws {

std::string CdfgToDot(const Cdfg& g) {
  std::ostringstream os;
  os << "digraph \"" << DotEscape(g.name()) << "\" {\n";
  os << "  rankdir=TB;\n  node [shape=ellipse, fontsize=10];\n";

  for (const Node& n : g.nodes()) {
    std::string label = n.name;
    if (n.kind == OpKind::kConst) {
      label = std::to_string(n.const_value);
    }
    std::string shape = "ellipse";
    if (n.kind == OpKind::kSelect) shape = "trapezium";
    if (n.kind == OpKind::kLoopPhi) shape = "diamond";
    if (n.kind == OpKind::kInput || n.kind == OpKind::kOutput ||
        n.kind == OpKind::kConst) {
      shape = "box";
    }
    os << "  n" << n.id.value() << " [label=\"" << DotEscape(label)
       << "\", shape=" << shape << "];\n";
  }

  for (const Node& n : g.nodes()) {
    for (std::size_t i = 0; i < n.inputs.size(); ++i) {
      const bool back_edge = n.kind == OpKind::kLoopPhi && i == 1;
      os << "  n" << n.inputs[i].value() << " -> n" << n.id.value();
      if (back_edge) os << " [constraint=false, color=blue]";
      os << ";\n";
    }
    for (const ControlLiteral& lit : n.ctrl) {
      os << "  n" << lit.cond.value() << " -> n" << n.id.value()
         << " [style=dashed, label=\"" << (lit.polarity ? "" : "!") << "c\"];\n";
    }
  }

  // Cluster loops for readability.
  for (const Loop& l : g.loops()) {
    os << "  subgraph cluster_loop" << l.id.value() << " {\n    label=\""
       << DotEscape(l.name) << "\";\n    style=dotted;\n";
    for (NodeId b : l.body) os << "    n" << b.value() << ";\n";
    os << "  }\n";
  }

  os << "}\n";
  return os.str();
}

}  // namespace ws
