// Fluent construction API for CDFGs.
//
// Usage sketch (the paper's Figure 1 loop):
//
//   CdfgBuilder b("test1");
//   NodeId k = b.Input("k");
//   NodeId i0 = b.Konst(0), t4_0 = b.Konst(0);
//   auto loop = b.BeginLoop("main");
//   NodeId i = b.LoopPhi("i", i0);
//   NodeId t4 = b.LoopPhi("t4", t4_0);
//   NodeId c = b.Op(OpKind::kGt, ">1", {k, t4});
//   b.SetLoopCondition(c);
//   NodeId i1 = b.Op(OpKind::kInc, "++1", {i});
//   ... body ops ...
//   b.SetLoopBack(i, i1);
//   b.SetLoopBack(t4, t4n);
//   b.EndLoop();
//   b.Output("t4_out", t4);   // exit value of t4
//   Cdfg g = b.Finish();
//
// Conditionals: b.BeginIf(cond) / b.BeginElse() / b.EndIf() push control
// literals onto nodes created inside; b.Select(...) builds explicit joins.
#ifndef WS_CDFG_BUILDER_H
#define WS_CDFG_BUILDER_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "cdfg/cdfg.h"

namespace ws {

class CdfgBuilder {
 public:
  explicit CdfgBuilder(const std::string& name);

  // --- Sources ---------------------------------------------------------------
  NodeId Input(const std::string& name);
  NodeId Konst(std::int64_t value);

  // --- Operations -------------------------------------------------------------
  // Generic operation; arity checked against `kind`.
  NodeId Op(OpKind kind, const std::string& name,
            const std::vector<NodeId>& inputs);
  // sel != 0 ? on_true : on_false. Never occupies a functional unit.
  NodeId Select(const std::string& name, NodeId sel, NodeId on_true,
                NodeId on_false);

  // --- Memory ------------------------------------------------------------------
  ArrayId Array(const std::string& name, int size,
                std::vector<std::int64_t> init = {});
  NodeId MemRead(const std::string& name, ArrayId array, NodeId addr);
  NodeId MemWrite(const std::string& name, ArrayId array, NodeId addr,
                  NodeId value);

  // --- Control: loops -----------------------------------------------------------
  LoopId BeginLoop(const std::string& name);
  // Declares a loop-carried value with initial value `init` (defined outside
  // the loop). The back-edge value is attached later with SetLoopBack.
  NodeId LoopPhi(const std::string& name, NodeId init);
  // Marks `cond` (a node in the current loop) as the continue condition.
  void SetLoopCondition(NodeId cond);
  // Attaches the back-edge value of `phi`.
  void SetLoopBack(NodeId phi, NodeId back);
  void EndLoop();

  // --- Control: conditionals -----------------------------------------------------
  void BeginIf(NodeId cond);
  void BeginElse();
  void EndIf();

  // --- Sinks ------------------------------------------------------------------
  NodeId Output(const std::string& name, NodeId value);

  // Annotates P(cond == true).
  void SetProbability(NodeId cond, double p);

  // Enables on-the-fly simplification: constant folding, algebraic
  // identities (x+0, x*1, x*0, shifts by 0, selects with equal arms or
  // constant steering), and common-subexpression elimination within the
  // same control scope. Used by the language frontend; off by default so
  // hand-built graphs keep their exact shape.
  void EnableSimplify() { simplify_ = true; }

  // Validates and returns the finished graph. The builder is left empty.
  Cdfg Finish();

 private:
  NodeId NewNode(OpKind kind, const std::string& name,
                 std::vector<NodeId> inputs);
  // Returns the simplified replacement for an op about to be created, or
  // an invalid id if it must be materialized.
  NodeId TrySimplify(OpKind kind, const std::vector<NodeId>& inputs);
  std::string ScopeKey(OpKind kind, const std::vector<NodeId>& inputs) const;

  struct IfFrame {
    NodeId cond;
    bool in_else = false;
  };

  Cdfg graph_;
  LoopId current_loop_;
  std::vector<IfFrame> if_stack_;
  bool finished_ = false;
  bool simplify_ = false;
  std::map<std::string, NodeId> cse_;           // scope-qualified expr -> node
  std::map<std::int64_t, NodeId> const_pool_;   // value -> kConst node
};

}  // namespace ws

#endif  // WS_CDFG_BUILDER_H
