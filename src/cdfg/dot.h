// Graphviz export of CDFGs (solid data edges, dashed control edges — the
// paper's Figure 1 drawing convention).
#ifndef WS_CDFG_DOT_H
#define WS_CDFG_DOT_H

#include <string>

#include "cdfg/cdfg.h"

namespace ws {

std::string CdfgToDot(const Cdfg& g);

}  // namespace ws

#endif  // WS_CDFG_DOT_H
