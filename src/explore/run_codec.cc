#include "explore/run_codec.h"

#include "base/codec.h"
#include "io/codec.h"
#include "sched/closure.h"

namespace ws {

std::string EncodeRunBody(const ExploreRun& run) {
  ByteWriter w;
  w.Str(run.design);
  w.U8(static_cast<std::uint8_t>(run.mode));
  w.U8(static_cast<std::uint8_t>(run.policy));
  w.U8(run.mem_spec ? 1 : 0);
  w.Str(run.allocation);
  w.Str(run.clock);
  w.U8(run.ok ? 1 : 0);
  w.Str(run.error);
  w.U8(static_cast<std::uint8_t>(run.error_code));
  WriteScheduleStats(w, run.stats);
  w.U64(run.states);
  w.U64(run.op_initiations);
  w.F64(run.enc_markov);
  w.F64(run.enc_sim);
  w.I64(run.best_case);
  w.I64(run.worst_case);
  w.U32(static_cast<std::uint32_t>(run.worst_case_budget));
  w.F64(run.area);
  w.F64(run.area_overhead_pct);
  w.U8(run.has_area_overhead ? 1 : 0);
  w.F64(run.wall_ms);
  return w.Take();
}

Result<ExploreRun> DecodeRunBody(std::string_view body,
                                 std::uint8_t version) {
  ByteReader r(body);
  ExploreRun run;
  run.design = r.Str();
  const std::uint8_t mode = r.U8();
  // v1 predates selection policies; every v1 run was kCriticality.
  const std::uint8_t policy =
      version >= 2 ? r.U8()
                   : static_cast<std::uint8_t>(SelectionPolicy::kCriticality);
  // v2 predates speculative memory disambiguation; every older run was
  // scheduled with the conservative memory chain.
  run.mem_spec = version >= 3 && r.U8() != 0;
  run.allocation = r.Str();
  run.clock = r.Str();
  run.ok = r.U8() != 0;
  run.error = r.Str();
  const std::uint8_t code = r.U8();
  run.stats = ReadScheduleStats(r, version);
  run.states = r.U64();
  run.op_initiations = r.U64();
  run.enc_markov = r.F64();
  run.enc_sim = r.F64();
  run.best_case = r.I64();
  run.worst_case = r.I64();
  run.worst_case_budget = static_cast<int>(r.U32());
  run.area = r.F64();
  run.area_overhead_pct = r.F64();
  run.has_area_overhead = r.U8() != 0;
  run.wall_ms = r.F64();
  if (!r.AtEnd() ||
      mode > static_cast<std::uint8_t>(SpeculationMode::kWaveschedSpec) ||
      policy > static_cast<std::uint8_t>(kMaxSelectionPolicy) ||
      code > static_cast<std::uint8_t>(StatusCode::kOverloaded)) {
    return Status::MakeError(StatusCode::kInvalidArgument,
                             "malformed ExploreRun message");
  }
  run.mode = static_cast<SpeculationMode>(mode);
  run.policy = static_cast<SelectionPolicy>(policy);
  run.error_code = static_cast<StatusCode>(code);
  return run;
}

std::string EncodeRunArtifact(const ExploreRun& run) {
  return EncodeArtifact(ArtifactKind::kExploreRun, EncodeRunBody(run));
}

Result<ExploreRun> DecodeRunArtifact(std::string_view bytes) {
  Result<DecodedArtifact> decoded =
      DecodeArtifactWithVersion(ArtifactKind::kExploreRun, bytes);
  if (!decoded.ok()) return decoded.status();
  return DecodeRunBody(decoded->payload, decoded->version);
}

Fp128 ExploreCellKey(const ExploreSpec& spec, const ExploreCell& cell,
                     const ScheduleRequest& request) {
  FpHasher h;
  const Fp128 base = FingerprintScheduleRequest(request);
  h.Mix(base.lo);
  h.Mix(base.hi);
  MixString(h, cell.design.name);
  MixString(h, cell.alloc.label);
  MixString(h, cell.clock.label);
  h.Mix(static_cast<std::uint64_t>(spec.num_stimuli));
  h.Mix(spec.seed);
  h.Mix((spec.measure_sim_enc ? 1u : 0u) | (spec.measure_area ? 2u : 0u));
  return h.digest();
}

}  // namespace ws
