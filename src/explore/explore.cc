#include "explore/explore.h"

#include <chrono>
#include <cstdlib>
#include <optional>
#include <utility>

#include "analysis/metrics.h"
#include "base/rng.h"
#include "base/thread_pool.h"
#include "explore/run_codec.h"
#include "io/artifact_store.h"
#include "lang/lower.h"
#include "mem/disambig.h"
#include "rtl/rtl.h"
#include "sim/interpreter.h"
#include "sim/stg_sim.h"
#include "sim/stimulus.h"
#include "suite/benchmarks.h"

namespace ws {
namespace {

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

Result<Benchmark> BuildExploreDesign(const DesignSpec& design,
                                     const ExploreSpec& spec) {
  if (design.source.empty()) {
    return MakeBenchmarkByName(design.name, spec.num_stimuli, spec.seed);
  }
  try {
    Benchmark b;
    b.name = design.name;
    b.graph = CompileBehavioral(design.name, design.source);
    b.library = FuLibrary::PaperLibrary();
    b.allocation = Allocation::Unlimited(b.library);
    b.lookahead = spec.base_options.lookahead;
    StimulusSpec stim;
    stim.default_spec.kind = StimulusSpec::Kind::kGaussian;
    stim.default_spec.sigma = 32.0;
    stim.default_spec.non_negative = true;
    // Floor of 1 like the suite's generators: 0-valued inputs make designs
    // with convergence loops (e.g. GCD) diverge in the golden interpreter.
    stim.default_spec.lo = 1;
    Rng rng(spec.seed);
    b.stimuli = GenerateStimuli(b.graph, stim, spec.num_stimuli, rng);
    ProfileBranchProbabilities(b.graph, b.stimuli);
    return b;
  } catch (const Error& e) {
    return Status::MakeError("design " + design.name + ": " + e.what());
  }
}

Result<Allocation> BuildExploreAllocation(const Benchmark& b,
                                          const AllocationSpec& alloc) {
  if (alloc.spec.empty() || alloc.spec == "default") return b.allocation;
  if (alloc.spec == "unlimited") return Allocation::Unlimited(b.library);
  if (alloc.spec == "none") return Allocation::None(b.library);
  Allocation out = b.allocation;
  std::size_t pos = 0;
  try {
    while (pos < alloc.spec.size()) {
      std::size_t comma = alloc.spec.find(',', pos);
      if (comma == std::string::npos) comma = alloc.spec.size();
      const std::string item = alloc.spec.substr(pos, comma - pos);
      pos = comma + 1;
      const std::size_t eq = item.find('=');
      if (eq == std::string::npos || eq == 0) {
        return Status::MakeError("allocation item \"" + item +
                                 "\" is not unit=count");
      }
      const std::string unit = item.substr(0, eq);
      const std::string count = item.substr(eq + 1);
      if (count == "inf") {
        out.Set(b.library, unit, Allocation::kUnlimited);
      } else {
        char* end = nullptr;
        const long n = std::strtol(count.c_str(), &end, 10);
        if (end == count.c_str() || *end != '\0' || n < 0) {
          return Status::MakeError("allocation count \"" + count +
                                   "\" for unit " + unit +
                                   " is not a non-negative integer");
        }
        out.Set(b.library, unit, static_cast<int>(n));
      }
    }
  } catch (const Error& e) {
    return Status::MakeError("allocation \"" + alloc.spec + "\": " +
                             e.what());
  }
  return out;
}

ScheduleRequest MakeCellScheduleRequest(const ExploreSpec& spec,
                                        const Benchmark& b,
                                        const Allocation& allocation,
                                        const ExploreCell& cell) {
  ScheduleRequest request;
  request.graph = &b.graph;
  request.library = &b.library;
  request.allocation = &allocation;
  request.options = spec.base_options;
  request.options.mode = cell.mode;
  request.options.policy = cell.policy;
  request.options.mem_spec = cell.mem_spec;
  request.options.clock = cell.clock.clock;
  request.options.lookahead = b.lookahead;
  return request;
}

ExploreRun RunBenchmarkCell(const ExploreSpec& spec, const Benchmark& b,
                            const Allocation& allocation,
                            const ExploreCell& cell) {
  const auto start = std::chrono::steady_clock::now();
  ExploreRun run;
  run.design = cell.design.name;
  run.mode = cell.mode;
  run.policy = cell.policy;
  run.mem_spec = cell.mem_spec;
  run.allocation = cell.alloc.label;
  run.clock = cell.clock.label;

  const ScheduleRequest request =
      MakeCellScheduleRequest(spec, b, allocation, cell);

  // A mem_spec schedule is built from (and references the disambiguation
  // ops of) the relaxed graph, so every downstream analysis — Markov E.N.C.,
  // trace simulation, area — must run against the same graph. Mirrors the
  // activation predicate inside Schedule(); when the pass is a no-op (no
  // modeled arrays, or plain kWavesched), the original graph is the one the
  // scheduler used.
  std::optional<MemSpecResult> relaxed;
  const Cdfg* analysis_graph = &b.graph;
  if (request.options.mem_spec &&
      request.options.mode != SpeculationMode::kWavesched) {
    MemSpecResult r = ApplyMemSpec(b.graph);
    if (r.lsq.active()) {
      relaxed = std::move(r);
      analysis_graph = &relaxed->graph;
    }
  }

  Result<ScheduleReport> report = Schedule(request);
  if (!report.ok()) {
    run.error = report.error();
    run.error_code = report.status().code();
    run.wall_ms = MillisSince(start);
    return run;
  }

  run.stats = report->stats;
  run.states = report->stg.num_work_states();
  run.op_initiations = report->stg.num_op_initiations();
  run.worst_case_budget = b.worst_case_budget;
  try {
    run.enc_markov = ExpectedCycles(report->stg, *analysis_graph);
    run.best_case = BestCaseCycles(report->stg);
    run.worst_case = WorstCaseCycles(report->stg, b.worst_case_budget);
    if (spec.measure_sim_enc) {
      run.enc_sim =
          MeasureExpectedCycles(report->stg, *analysis_graph, b.stimuli);
    }
    if (spec.measure_area) {
      const AreaReport area =
          EstimateArea(report->stg, *analysis_graph, b.library,
                       b.stimuli.at(0), AreaModel{}, &allocation);
      run.area = area.total;
    }
  } catch (const Error& e) {
    run.error = std::string("analysis: ") + e.what();
    run.error_code = StatusCode::kInternal;
    run.wall_ms = MillisSince(start);
    return run;
  }
  run.ok = true;
  run.stg = std::move(report->stg);
  run.wall_ms = MillisSince(start);
  return run;
}

ExploreRun RunExploreCell(const ExploreSpec& spec, const ExploreCell& cell) {
  const auto start = std::chrono::steady_clock::now();

  Result<Benchmark> bench = BuildExploreDesign(cell.design, spec);
  if (!bench.ok()) {
    ExploreRun run;
    run.design = cell.design.name;
    run.mode = cell.mode;
    run.policy = cell.policy;
    run.mem_spec = cell.mem_spec;
    run.allocation = cell.alloc.label;
    run.clock = cell.clock.label;
    run.error = bench.error();
    run.error_code = bench.status().code();
    run.wall_ms = MillisSince(start);
    return run;
  }

  Result<Allocation> allocation = BuildExploreAllocation(*bench, cell.alloc);
  if (!allocation.ok()) {
    ExploreRun run;
    run.design = cell.design.name;
    run.mode = cell.mode;
    run.policy = cell.policy;
    run.mem_spec = cell.mem_spec;
    run.allocation = cell.alloc.label;
    run.clock = cell.clock.label;
    run.error = allocation.error();
    run.error_code = allocation.status().code();
    run.wall_ms = MillisSince(start);
    return run;
  }

  // Durable-store path: replay the cell if its artifact is on disk (bit for
  // bit, including the recorded timing — nothing is recomputed), otherwise
  // compute and write through so an interrupted sweep resumes here.
  std::optional<Fp128> store_key;
  if (spec.store != nullptr) {
    const ScheduleRequest request =
        MakeCellScheduleRequest(spec, *bench, *allocation, cell);
    store_key = ExploreCellKey(spec, cell, request);
    if (std::optional<std::string> artifact = spec.store->Get(*store_key);
        artifact.has_value()) {
      Result<ExploreRun> replay = DecodeRunArtifact(*artifact);
      if (replay.ok()) return *std::move(replay);
      // A corrupt or stale-format artifact degrades to recomputation.
    }
  }

  ExploreRun run = RunBenchmarkCell(spec, *bench, *allocation, cell);
  run.wall_ms = MillisSince(start);
  if (store_key.has_value() &&
      run.error_code != StatusCode::kDeadlineExceeded &&
      run.error_code != StatusCode::kCancelled) {
    // Completed outcomes — including deterministic scheduling failures such
    // as exhausted caps — are durable; deadline expiries are not.
    (void)spec.store->Put(*store_key, EncodeRunArtifact(run));
  }
  return run;
}

Status ExploreSpec::Validate() const {
  if (designs.empty()) {
    return Status::MakeError("ExploreSpec: no designs to explore");
  }
  for (const DesignSpec& d : designs) {
    if (d.name.empty()) {
      return Status::MakeError("ExploreSpec: design with an empty name");
    }
  }
  if (modes.empty()) {
    return Status::MakeError("ExploreSpec: no speculation modes");
  }
  if (policies.empty()) {
    return Status::MakeError("ExploreSpec: no selection policies");
  }
  if (workers < 0) {
    return Status::MakeError("ExploreSpec: workers must be >= 0");
  }
  if (num_stimuli < 1) {
    return Status::MakeError("ExploreSpec: num_stimuli must be >= 1");
  }
  // The per-run mode/clock/lookahead are grid-driven; validate the rest once
  // here so misconfiguration fails the call instead of every run.
  SchedulerOptions probe = base_options;
  probe.mode = modes.front();
  return probe.Validate();
}

const ExploreRun* ExploreReport::Find(const std::string& design,
                                      SpeculationMode mode,
                                      const std::string& allocation_label,
                                      const std::string& clock_label,
                                      SelectionPolicy policy,
                                      bool mem_spec) const {
  for (const ExploreRun& run : runs) {
    if (run.design == design && run.mode == mode && run.policy == policy &&
        run.mem_spec == mem_spec && run.allocation == allocation_label &&
        run.clock == clock_label) {
      return &run;
    }
  }
  return nullptr;
}

std::vector<ExploreCell> ExpandExploreGrid(const ExploreSpec& spec) {
  const std::vector<bool> mem_specs =
      spec.mem_specs.empty() ? std::vector<bool>{spec.base_options.mem_spec}
                             : spec.mem_specs;
  const std::vector<AllocationSpec> allocations =
      spec.allocations.empty() ? std::vector<AllocationSpec>{{}}
                               : spec.allocations;
  const std::vector<ClockSpec> clocks =
      spec.clocks.empty() ? std::vector<ClockSpec>{{}} : spec.clocks;

  std::vector<ExploreCell> grid;
  grid.reserve(spec.designs.size() * spec.modes.size() *
               spec.policies.size() * mem_specs.size() * allocations.size() *
               clocks.size());
  for (const DesignSpec& d : spec.designs) {
    for (const SpeculationMode mode : spec.modes) {
      for (const SelectionPolicy policy : spec.policies) {
        for (const bool mem_spec : mem_specs) {
          for (const AllocationSpec& a : allocations) {
            for (const ClockSpec& c : clocks) {
              grid.push_back(ExploreCell{d, mode, policy, mem_spec, a, c});
            }
          }
        }
      }
    }
  }
  return grid;
}

void ApplyAreaOverheads(ExploreReport* report) {
  // Cross-run metric: speculative area overhead vs. the non-speculative
  // schedule of the same configuration.
  for (ExploreRun& run : report->runs) {
    if (!run.ok || run.mode == SpeculationMode::kWavesched) continue;
    const ExploreRun* base =
        report->Find(run.design, SpeculationMode::kWavesched, run.allocation,
                     run.clock, run.policy, run.mem_spec);
    if (base != nullptr && base->ok && base->area > 0.0) {
      run.area_overhead_pct = 100.0 * (run.area - base->area) / base->area;
      run.has_area_overhead = true;
    }
  }
}

Result<ExploreReport> RunExplore(const ExploreSpec& spec) {
  if (const Status s = spec.Validate(); !s.ok()) return s;
  const auto start = std::chrono::steady_clock::now();

  // The grid in its canonical order; slot i of `runs` belongs to task i, so
  // collection needs no synchronization beyond the pool's Wait().
  const std::vector<ExploreCell> grid = ExpandExploreGrid(spec);

  ExploreReport report;
  report.workers = spec.workers;
  report.runs.resize(grid.size());

  {
    ThreadPool pool(spec.workers);
    for (std::size_t i = 0; i < grid.size(); ++i) {
      const ExploreCell* cell = &grid[i];
      ExploreRun* slot = &report.runs[i];
      pool.Submit([&spec, cell, slot] { *slot = RunExploreCell(spec, *cell); });
    }
    pool.Wait();
  }

  if (spec.measure_area) ApplyAreaOverheads(&report);

  report.wall_ms = MillisSince(start);
  return report;
}

}  // namespace ws
