// Renderers for exploration reports: a machine-readable JSON document and a
// human-readable aligned table.
//
// The JSON rendering is canonical: key order is fixed, doubles are formatted
// deterministically, and runs appear in grid order. With
// `include_timing == false` every wall-clock field (per-run wall time, the
// scheduler's per-phase attribution, report totals, worker count) is
// omitted, making reports from different worker counts byte-comparable —
// the determinism tests diff exactly this rendering.
#ifndef WS_EXPLORE_REPORT_H
#define WS_EXPLORE_REPORT_H

#include <string>

#include "explore/explore.h"

namespace ws {

struct ReportRenderOptions {
  bool include_timing = true;
};

std::string ExploreReportToJson(const ExploreReport& report,
                                const ReportRenderOptions& options = {});

// One run as a standalone canonical JSON object — the same rendering a run
// gets inside the full report, reused by `ws_client schedule` and the
// serving golden tests.
std::string ExploreRunToJson(const ExploreRun& run,
                             const ReportRenderOptions& options = {});

std::string ExploreReportToTable(const ExploreReport& report);

}  // namespace ws

#endif  // WS_EXPLORE_REPORT_H
