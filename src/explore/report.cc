#include "explore/report.h"

#include <cstdio>
#include <sstream>

#include "base/strings.h"

namespace ws {
namespace {

// Shortest-round-trip-ish deterministic double rendering. %.10g is exact for
// every metric the engine produces (cycle counts, probabilities-of-few-vars,
// gate areas) and avoids 17-digit noise.
std::string Num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

std::string Quoted(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

void AppendPhase(std::ostringstream& os, const SchedulePhaseTimes& phase) {
  os << "{\"successor_ns\":" << phase.successor_ns
     << ",\"cofactor_ns\":" << phase.cofactor_ns
     << ",\"closure_ns\":" << phase.closure_ns
     << ",\"select_ns\":" << phase.select_ns
     << ",\"gc_ns\":" << phase.gc_ns
     << ",\"total_ns\":" << phase.total_ns << "}";
}

void AppendRun(std::ostringstream& os, const ExploreRun& run,
               const ReportRenderOptions& options) {
  os << "{\"design\":" << Quoted(run.design)
     << ",\"mode\":" << Quoted(SpeculationModeName(run.mode))
     << ",\"policy\":" << Quoted(SelectionPolicyName(run.policy))
     << ",\"mem_spec\":" << (run.mem_spec ? "true" : "false")
     << ",\"allocation\":" << Quoted(run.allocation)
     << ",\"clock\":" << Quoted(run.clock)
     << ",\"ok\":" << (run.ok ? "true" : "false");
  if (!run.ok) {
    os << ",\"error\":" << Quoted(run.error) << "}";
    return;
  }
  os << ",\"states\":" << run.states
     << ",\"op_initiations\":" << run.op_initiations
     << ",\"speculative_ops\":" << run.stats.speculative_ops
     << ",\"squashed_ops\":" << run.stats.squashed_ops
     << ",\"closure_hits\":" << run.stats.closure_hits
     << ",\"candidates_generated\":" << run.stats.candidates_generated
     << ",\"bdd_ops\":" << run.stats.bdd_ops
     << ",\"bdd_nodes\":" << run.stats.bdd_nodes
     << ",\"enc_markov\":" << Num(run.enc_markov);
  if (run.enc_sim > 0.0) os << ",\"enc_sim\":" << Num(run.enc_sim);
  os << ",\"best_case\":" << run.best_case
     << ",\"worst_case\":" << run.worst_case
     << ",\"worst_case_budget\":" << run.worst_case_budget;
  if (run.area > 0.0) {
    os << ",\"area\":" << Num(run.area);
    if (run.has_area_overhead) {
      os << ",\"area_overhead_pct\":" << Num(run.area_overhead_pct);
    }
  }
  if (options.include_timing) {
    os << ",\"wall_ms\":" << Num(run.wall_ms) << ",\"phase\":";
    AppendPhase(os, run.stats.phase);
  }
  os << "}";
}

}  // namespace

std::string ExploreRunToJson(const ExploreRun& run,
                             const ReportRenderOptions& options) {
  std::ostringstream os;
  AppendRun(os, run, options);
  return os.str();
}

std::string ExploreReportToJson(const ExploreReport& report,
                                const ReportRenderOptions& options) {
  std::ostringstream os;
  // v2: every run row gains "policy", and timing phases gain "select_ns".
  // v3: every run row gains "mem_spec" (speculative memory disambiguation).
  os << "{\"schema\":\"ws-explore-report-v3\"";
  if (options.include_timing) {
    os << ",\"workers\":" << report.workers
       << ",\"wall_ms\":" << Num(report.wall_ms);
  }
  os << ",\"runs\":[";
  for (std::size_t i = 0; i < report.runs.size(); ++i) {
    if (i != 0) os << ",";
    os << "\n  ";
    AppendRun(os, report.runs[i], options);
  }
  os << "\n]}\n";
  return os.str();
}

std::string ExploreReportToTable(const ExploreReport& report) {
  std::ostringstream os;
  char line[256];
  std::snprintf(line, sizeof(line),
                "%-10s %-14s %-6s %-4s %-10s %-8s %6s %9s %9s %6s %7s %6s "
                "%8s\n",
                "design", "mode", "policy", "mem", "alloc", "clock", "states",
                "enc(sim)", "enc(mkv)", "best", "worst", "spec", "time_ms");
  os << line;
  for (const ExploreRun& run : report.runs) {
    if (!run.ok) {
      std::snprintf(line, sizeof(line),
                    "%-10s %-14s %-6s %-4s %-10s %-8s ERROR %s\n",
                    run.design.c_str(), SpeculationModeName(run.mode),
                    SelectionPolicyName(run.policy),
                    run.mem_spec ? "on" : "off", run.allocation.c_str(),
                    run.clock.c_str(), run.error.c_str());
      os << line;
      continue;
    }
    std::snprintf(
        line, sizeof(line),
        "%-10s %-14s %-6s %-4s %-10s %-8s %6zu %9.1f %9.1f %6lld %7lld %6d "
        "%8.1f\n",
        run.design.c_str(), SpeculationModeName(run.mode),
        SelectionPolicyName(run.policy), run.mem_spec ? "on" : "off",
        run.allocation.c_str(), run.clock.c_str(), run.states, run.enc_sim,
        run.enc_markov, static_cast<long long>(run.best_case),
        static_cast<long long>(run.worst_case), run.stats.speculative_ops,
        run.wall_ms);
    os << line;
  }
  std::snprintf(line, sizeof(line),
                "total: %zu runs, %d workers, %.1f ms wall\n",
                report.runs.size(), report.workers, report.wall_ms);
  os << line;
  return os.str();
}

}  // namespace ws
