// Binary codec for ExploreRun metric rows plus the shared cell cache key.
//
// The body layout is the serving protocol's SCHEDULE response payload — it
// moved here (from serve/protocol.cc) so three consumers share one
// definition and its byte-identity guarantee:
//   * the wire protocol (serve/protocol.h EncodeRun/DecodeRun delegate),
//   * the artifact store value for a cell (EncodeRunArtifact wraps the same
//     bytes in an io/codec.h envelope, so a store hit replays the exact
//     response payload the server once sent), and
//   * ws_explore --store resume (a cell found in the store reproduces the
//     uninterrupted sweep's run bit for bit).
//
// The STG is deliberately absent: schedules stay producer-side, metric rows
// travel (the same convention as `ws_explore --server`), and canonical
// report renderings never read the STG.
#ifndef WS_EXPLORE_RUN_CODEC_H
#define WS_EXPLORE_RUN_CODEC_H

#include <cstdint>
#include <string>
#include <string_view>

#include "base/hashing.h"
#include "base/status.h"
#include "explore/explore.h"
#include "io/codec.h"
#include "sched/scheduler.h"

namespace ws {

// ExploreRun minus the STG, as a flat little-endian field sequence. The
// encoder always emits the current layout; the decoder takes the artifact
// envelope's stored version (v1 predates the selection-policy byte and
// phase.select_ns — see io/codec.h's version history).
std::string EncodeRunBody(const ExploreRun& run);
Result<ExploreRun> DecodeRunBody(std::string_view body,
                                 std::uint8_t version = kArtifactVersion);

// The same body wrapped in a versioned, CRC-checked artifact envelope
// (io/codec.h, ArtifactKind::kExploreRun) — the artifact store's value for
// a cell.
std::string EncodeRunArtifact(const ExploreRun& run);
Result<ExploreRun> DecodeRunArtifact(std::string_view bytes);

// The cache/store key for one explore cell: the canonical ScheduleRequest
// fingerprint (sched/closure.h) mixed with every spec field that shapes
// the response bytes but not the schedule itself — grid labels, stimulus
// count/seed (simulated E.N.C.), analysis flags. Shared by the serving
// daemon's result cache, its durable store, and explore resume, so all
// three address the same artifact for the same work.
Fp128 ExploreCellKey(const ExploreSpec& spec, const ExploreCell& cell,
                     const ScheduleRequest& request);

}  // namespace ws

#endif  // WS_EXPLORE_RUN_CODEC_H
