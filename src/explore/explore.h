// Design-space exploration: schedule a set of designs across the
// cross-product of speculation modes, allocation variants, and clock
// models, in parallel, and collect every run's schedule, analysis metrics,
// and per-phase scheduler instrumentation into one report.
//
// This is the paper's experimental methodology (Table 1, Figs. 5-7) as a
// subsystem instead of hand-rolled per-figure loops: the same engine drives
// the Table 1 reproduction, the Fig. 5/6 trade-off study, a CLI
// (`ws_explore`), and the tests.
//
// Concurrency model: the task grid is fanned out over a fixed-size
// ThreadPool. Every task is shared-nothing — it rebuilds its own benchmark
// (CDFG, library, stimuli; construction is deterministic in the spec's
// seed), owns its scheduler instance and BDD manager, and writes to a
// pre-sized result slot. Reports are therefore byte-identical (modulo
// timing fields) for any worker count, including the sequential
// `workers == 0` path.
#ifndef WS_EXPLORE_EXPLORE_H
#define WS_EXPLORE_EXPLORE_H

#include <cstdint>
#include <string>
#include <vector>

#include "base/status.h"
#include "hw/resources.h"
#include "sched/scheduler.h"
#include "stg/stg.h"
#include "suite/benchmarks.h"

namespace ws {

class ArtifactStore;  // io/artifact_store.h

// A design to explore: a suite benchmark referenced by registry name
// ("gcd", "fig4:0.3", ...) or an inline behavioral description, compiled
// per worker.
struct DesignSpec {
  std::string name;
  std::string source;  // empty => suite registry lookup by `name`
};

// One point of the allocation grid.
//   spec == "" or "default"  -> the benchmark's own (Table 2) allocation
//   spec == "unlimited"      -> no resource constraints
//   otherwise                -> "unit=count,..." overrides applied on top of
//                               the benchmark's default ("inf" = unlimited)
struct AllocationSpec {
  std::string label = "default";
  std::string spec;
};

// One point of the clock grid.
struct ClockSpec {
  std::string label = "default";
  ClockModel clock;
};

struct ExploreSpec {
  std::vector<DesignSpec> designs;
  std::vector<SpeculationMode> modes = {SpeculationMode::kWavesched,
                                        SpeculationMode::kWaveschedSpec};
  // Selection-policy grid axis (sched/policy.h); must be non-empty.
  std::vector<SelectionPolicy> policies = {SelectionPolicy::kCriticality};
  // Memory-disambiguation grid axis (SchedulerOptions::mem_spec); empty
  // falls back to a single entry carrying base_options.mem_spec. The LSQ
  // window depth is not an axis — it comes from base_options.lsq_depth.
  std::vector<bool> mem_specs;
  // Empty grids fall back to a single default entry.
  std::vector<AllocationSpec> allocations;
  std::vector<ClockSpec> clocks;

  int num_stimuli = 50;
  std::uint64_t seed = 1998;

  // Worker threads; 0 runs every task inline in the calling thread.
  int workers = 0;

  // Trace-driven E.N.C. over the stimulus set (cross-checked against the
  // golden interpreter) in addition to the analytic Markov value.
  bool measure_sim_enc = true;
  // RTL area model per run, plus overhead vs. the kWavesched run of the
  // same (design, allocation, clock) when present.
  bool measure_area = false;

  // Per-run options; mode and clock come from the grid, lookahead from the
  // benchmark.
  SchedulerOptions base_options;

  // Optional durable artifact store (io/artifact_store.h), not owned. Cells
  // whose key is present are replayed from disk bit-for-bit instead of
  // recomputed (minus the STG — the `ws_explore --server` convention), and
  // completed cells are written through, which is what makes interrupted
  // sweeps resumable.
  ArtifactStore* store = nullptr;

  Status Validate() const;
};

// One grid point's outcome. Metric fields are valid only when ok.
struct ExploreRun {
  // Key (grid coordinates, in spec order).
  std::string design;
  SpeculationMode mode = SpeculationMode::kWavesched;
  SelectionPolicy policy = SelectionPolicy::kCriticality;
  bool mem_spec = false;   // speculative memory disambiguation on this run
  std::string allocation;  // AllocationSpec label
  std::string clock;       // ClockSpec label

  bool ok = false;
  std::string error;
  // Category of `error` (kOk while ok): lets the serving layer route
  // deadline expiries to typed responses while ordinary scheduling failures
  // stay embedded in the run. Never rendered, so reports stay byte-stable.
  StatusCode error_code = StatusCode::kOk;

  ScheduleStats stats;
  std::size_t states = 0;           // work states (the paper's #states)
  std::size_t op_initiations = 0;
  double enc_markov = 0.0;          // absorbing-Markov-chain E.N.C.
  double enc_sim = 0.0;             // trace-driven E.N.C. (measure_sim_enc)
  std::int64_t best_case = 0;
  std::int64_t worst_case = 0;
  int worst_case_budget = 0;
  double area = 0.0;                // measure_area
  double area_overhead_pct = 0.0;   // vs. same-config kWavesched run
  bool has_area_overhead = false;

  double wall_ms = 0.0;  // whole-task wall clock; excluded from canonical
                         // report renderings

  Stg stg{""};  // the schedule itself, for downstream renderers
};

struct ExploreReport {
  std::vector<ExploreRun> runs;  // cross-product order: design-major, then
                                 // mode, policy, mem_spec, allocation, clock
  int workers = 0;
  double wall_ms = 0.0;

  // The run at the given grid coordinates, or null.
  const ExploreRun* Find(
      const std::string& design, SpeculationMode mode,
      const std::string& allocation_label, const std::string& clock_label,
      SelectionPolicy policy = SelectionPolicy::kCriticality,
      bool mem_spec = false) const;
};

// Runs the whole grid. Per-run failures (unschedulable configurations,
// exceeded caps) are recorded in their ExploreRun, not propagated; only a
// malformed spec makes the call itself fail.
Result<ExploreReport> RunExplore(const ExploreSpec& spec);

// --- Cell-level building blocks -------------------------------------------
//
// RunExplore fans these out over its pool; the scheduling service executes
// the same functions per request, which is what makes `ws_explore --server`
// byte-identical to in-process sweeps.

// One grid cell in the canonical cross-product order.
struct ExploreCell {
  DesignSpec design;
  SpeculationMode mode = SpeculationMode::kWavesched;
  SelectionPolicy policy = SelectionPolicy::kCriticality;
  bool mem_spec = false;
  AllocationSpec alloc;
  ClockSpec clock;
};

// The spec's full task grid, design-major then
// mode/policy/mem_spec/allocation/clock, with empty mem_spec/allocation/
// clock grids already defaulted — exactly the order of ExploreReport::runs.
std::vector<ExploreCell> ExpandExploreGrid(const ExploreSpec& spec);

// The task-local benchmark build: registry lookup for named designs, a full
// compile + stimulus + profiling pass for inline sources. Deterministic in
// (design, spec.num_stimuli, spec.seed).
Result<Benchmark> BuildExploreDesign(const DesignSpec& design,
                                     const ExploreSpec& spec);

// Applies an AllocationSpec on top of the benchmark's own allocation.
Result<Allocation> BuildExploreAllocation(const Benchmark& b,
                                          const AllocationSpec& alloc);

// The canonical ScheduleRequest for one cell on prebuilt inputs — the one
// place the spec/cell/benchmark fields land in scheduler options, so the
// scheduler call, the serving daemon, and the cache/store keys can never
// drift apart. The returned request borrows b/allocation.
ScheduleRequest MakeCellScheduleRequest(const ExploreSpec& spec,
                                        const Benchmark& b,
                                        const Allocation& allocation,
                                        const ExploreCell& cell);

// Schedule + analysis on prebuilt inputs; never throws. Labels come from the
// cell, the mode/clock/lookahead land in the scheduler options.
ExploreRun RunBenchmarkCell(const ExploreSpec& spec, const Benchmark& b,
                            const Allocation& allocation,
                            const ExploreCell& cell);

// One cell start to finish on the calling thread (build + schedule +
// analysis); the unit RunExplore fans out.
ExploreRun RunExploreCell(const ExploreSpec& spec, const ExploreCell& cell);

// The cross-run post-pass: fills area_overhead_pct of speculative runs from
// the kWavesched run of the same (design, allocation, clock). A no-op unless
// runs carry area figures.
void ApplyAreaOverheads(ExploreReport* report);

}  // namespace ws

#endif  // WS_EXPLORE_EXPLORE_H
