#include "adapt/profile.h"

#include <algorithm>

#include "base/codec.h"
#include "base/strings.h"
#include "io/codec.h"
#include "sim/interpreter.h"
#include "sim/stg_sim.h"

namespace ws {
namespace {

Status Malformed(const char* what) {
  return Status::MakeError(StatusCode::kInvalidArgument,
                           StrCat("malformed ", what));
}

// The static profiler's clamp band (sim/interpreter.cc): probabilities never
// reach 0 or 1, so no branch is ever scheduled as impossible.
constexpr double kProbFloor = 0.005;
constexpr double kProbCeil = 0.995;

}  // namespace

void MergeProfile(BranchProfile& into, const BranchProfile& from) {
  into.traces += from.traces;
  into.cycles += from.cycles;
  for (const auto& [node, counts] : from.conds) {
    CondCounts& c = into.conds[node];
    c.taken += counts.taken;
    c.not_taken += counts.not_taken;
  }
  for (const auto& [loop, histogram] : from.loops) {
    std::map<std::int64_t, std::int64_t>& h = into.loops[loop];
    for (const auto& [trips, count] : histogram) h[trips] += count;
  }
}

std::string EncodeProfilePayload(const BranchProfile& profile) {
  ByteWriter w;
  w.I64(profile.traces);
  w.I64(profile.cycles);
  w.U32(static_cast<std::uint32_t>(profile.conds.size()));
  for (const auto& [node, counts] : profile.conds) {
    w.U32(node);
    w.I64(counts.taken);
    w.I64(counts.not_taken);
  }
  w.U32(static_cast<std::uint32_t>(profile.loops.size()));
  for (const auto& [loop, histogram] : profile.loops) {
    w.U32(loop);
    w.U32(static_cast<std::uint32_t>(histogram.size()));
    for (const auto& [trips, count] : histogram) {
      w.I64(trips);
      w.I64(count);
    }
  }
  return w.Take();
}

Result<BranchProfile> DecodeProfilePayload(std::string_view payload) {
  ByteReader r(payload);
  BranchProfile p;
  p.traces = r.I64();
  p.cycles = r.I64();
  const std::uint32_t num_conds = r.U32();
  if (!r.ok()) return Malformed("BranchProfile header");
  for (std::uint32_t i = 0; i < num_conds; ++i) {
    const std::uint32_t node = r.U32();
    CondCounts counts;
    counts.taken = r.I64();
    counts.not_taken = r.I64();
    if (!r.ok() || counts.taken < 0 || counts.not_taken < 0) {
      return Malformed("BranchProfile condition counts");
    }
    p.conds[node] = counts;
  }
  const std::uint32_t num_loops = r.U32();
  if (!r.ok()) return Malformed("BranchProfile loop section");
  for (std::uint32_t i = 0; i < num_loops; ++i) {
    const std::uint32_t loop = r.U32();
    const std::uint32_t buckets = r.U32();
    if (!r.ok()) return Malformed("BranchProfile loop header");
    std::map<std::int64_t, std::int64_t>& h = p.loops[loop];
    for (std::uint32_t b = 0; b < buckets; ++b) {
      const std::int64_t trips = r.I64();
      const std::int64_t count = r.I64();
      if (!r.ok() || count < 0) return Malformed("BranchProfile histogram");
      h[trips] += count;
    }
  }
  if (!r.AtEnd()) return Malformed("BranchProfile (trailing bytes)");
  return p;
}

std::string EncodeProfileArtifact(const BranchProfile& profile) {
  ArtifactMeta meta;
  meta.profile_digest = ProfileDigest(profile);
  return EncodeArtifactWithMeta(ArtifactKind::kBranchProfile,
                                EncodeProfilePayload(profile), meta);
}

Result<BranchProfile> DecodeProfileArtifact(std::string_view bytes) {
  Result<std::string> payload =
      DecodeArtifact(ArtifactKind::kBranchProfile, bytes);
  if (!payload.ok()) return payload.status();
  return DecodeProfilePayload(*payload);
}

Fp128 ProfileDigest(const BranchProfile& profile) {
  const std::string payload = EncodeProfilePayload(profile);
  FpHasher h;
  h.Mix(payload.size());
  std::size_t i = 0;
  for (; i + 8 <= payload.size(); i += 8) {
    std::uint64_t chunk = 0;
    for (int b = 0; b < 8; ++b) {
      chunk |= static_cast<std::uint64_t>(
                   static_cast<unsigned char>(payload[i + b]))
               << (8 * b);
    }
    h.Mix(chunk);
  }
  std::uint64_t tail = 0;
  for (int b = 0; i < payload.size(); ++i, ++b) {
    tail |= static_cast<std::uint64_t>(static_cast<unsigned char>(payload[i]))
            << (8 * b);
  }
  h.Mix(tail);
  return h.digest();
}

Fp128 ProfileStoreKey(const Fp128& cell_key) {
  FpHasher h;
  h.Mix(cell_key.lo);
  h.Mix(cell_key.hi);
  h.Mix(0x70726f66696c6531ull);  // "profile1" salt
  return h.digest();
}

double SmoothedProbability(const CondCounts& counts) {
  const double p = (static_cast<double>(counts.taken) + 1.0) /
                   (static_cast<double>(counts.total()) + 2.0);
  return std::min(kProbCeil, std::max(kProbFloor, p));
}

std::map<NodeId, double> DeriveProbabilities(const Cdfg& g,
                                             const BranchProfile& profile) {
  std::map<NodeId, double> out;
  for (const auto& [raw, counts] : profile.conds) {
    const NodeId node(raw);
    if (raw >= g.num_nodes() || !g.is_control_condition(node)) continue;
    out[node] = SmoothedProbability(counts);
  }
  return out;
}

ApplyProfileResult ApplyProfileToGraph(Cdfg& g, const BranchProfile& profile) {
  ApplyProfileResult result;
  for (const auto& [node, p] : DeriveProbabilities(g, profile)) {
    const double delta = p - g.cond_probability(node);
    g.set_cond_probability(node, p);
    ++result.applied;
    result.max_delta = std::max(result.max_delta,
                                delta < 0.0 ? -delta : delta);
  }
  return result;
}

BranchProfile ProfileFromStgSim(const Stg& stg, const Cdfg& g,
                                const std::vector<Stimulus>& stimuli) {
  BranchProfile profile;
  StgSimOptions options;
  options.record_cond_profile = true;
  for (const Stimulus& stimulus : stimuli) {
    const StgSimResult r = SimulateStg(stg, g, stimulus, options);
    ++profile.traces;
    profile.cycles += r.cycles;
    for (const auto& [node, counts] : r.cond_counts) {
      CondCounts& c = profile.conds[node.value()];
      c.taken += counts.first;
      c.not_taken += counts.second;
    }
    for (const auto& [loop, trips] : r.loop_trips) {
      profile.loops[loop.value()][trips] += 1;
    }
  }
  return profile;
}

BranchProfile ProfileFromInterp(const Cdfg& g,
                                const std::vector<Stimulus>& stimuli) {
  BranchProfile profile;
  for (const Stimulus& stimulus : stimuli) {
    const InterpResult r = Interpret(g, stimulus);
    ++profile.traces;
    for (const auto& [node, outcomes] : r.cond_outcomes) {
      CondCounts& c = profile.conds[node.value()];
      for (const bool outcome : outcomes) {
        if (outcome) ++c.taken; else ++c.not_taken;
      }
    }
    for (const auto& [loop, iterations] : r.loop_iterations) {
      profile.loops[loop.value()][iterations] += 1;
    }
  }
  return profile;
}

}  // namespace ws
