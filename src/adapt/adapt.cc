#include "adapt/adapt.h"

#include <algorithm>
#include <chrono>
#include <optional>
#include <utility>

#include "base/strings.h"
#include "base/thread_pool.h"
#include "mem/disambig.h"
#include "sched/policy.h"

namespace ws {
namespace {

// Inverts every control condition's annotated probability. Loop-continue
// conditions are control conditions too, so a skewed loop also mispredicts
// its trip count.
void SkewProbabilities(Cdfg* g) {
  for (std::size_t i = 0; i < g->num_nodes(); ++i) {
    const NodeId id(static_cast<std::uint32_t>(i));
    if (!g->is_control_condition(id)) continue;
    g->set_cond_probability(id, 1.0 - g->cond_probability(id));
  }
}

AdaptCellResult AdaptCell(const ExploreSpec& spec, const ExploreCell& cell,
                          const AdaptOptions& options) {
  AdaptCellResult result;
  result.design = cell.design.name;
  result.mode = cell.mode;
  result.policy = cell.policy;
  result.mem_spec = cell.mem_spec;
  result.allocation = cell.alloc.label;
  result.clock = cell.clock.label;

  Result<Benchmark> bench = BuildExploreDesign(cell.design, spec);
  if (!bench.ok()) {
    result.error = bench.error();
    return result;
  }
  Result<Allocation> allocation = BuildExploreAllocation(*bench, cell.alloc);
  if (!allocation.ok()) {
    result.error = allocation.error();
    return result;
  }
  Benchmark& b = *bench;
  if (options.skew) SkewProbabilities(&b.graph);

  BranchProfile accumulated;
  for (int iter = 0; iter <= options.max_iterations; ++iter) {
    const ExploreRun run = RunBenchmarkCell(spec, b, *allocation, cell);
    if (!run.ok) {
      result.error = run.error;
      return result;
    }
    AdaptIteration row;
    row.iteration = iter;
    row.enc_sim = run.enc_sim;
    row.enc_markov = run.enc_markov;
    row.states = run.states;

    // Profile this iteration's schedule on the benchmark's own stimuli.
    // A mem_spec schedule references the relaxed graph's minted ops, so the
    // trace replay must run against the same graph Schedule used (the
    // RunBenchmarkCell mirror); derivation later skips the minted ids.
    std::optional<MemSpecResult> relaxed;
    const Cdfg* analysis_graph = &b.graph;
    if (cell.mem_spec && cell.mode != SpeculationMode::kWavesched) {
      MemSpecResult r = ApplyMemSpec(b.graph);
      if (r.lsq.active()) {
        relaxed = std::move(r);
        analysis_graph = &relaxed->graph;
      }
    }
    MergeProfile(accumulated,
                 ProfileFromStgSim(run.stg, *analysis_graph, b.stimuli));

    const ApplyProfileResult applied =
        ApplyProfileToGraph(b.graph, accumulated);
    row.applied = applied.applied;
    row.max_delta = applied.max_delta;
    row.traces = accumulated.traces;
    result.iterations.push_back(row);

    if (applied.max_delta < options.convergence_delta) {
      result.converged = true;
      break;
    }
  }
  result.profile = std::move(accumulated);
  result.ok = true;
  return result;
}

}  // namespace

double AdaptCellResult::improvement_pct() const {
  if (iterations.empty() || iterations.front().enc_sim <= 0.0) return 0.0;
  const double first = iterations.front().enc_sim;
  double best = first;
  for (const AdaptIteration& row : iterations) {
    best = std::min(best, row.enc_sim);
  }
  return 100.0 * (first - best) / first;
}

AdaptReport RunAdaptExplore(const ExploreSpec& spec,
                            const AdaptOptions& options) {
  const auto start = std::chrono::steady_clock::now();

  ExploreSpec adapted_spec = spec;
  adapted_spec.measure_sim_enc = true;  // the loop's feedback signal
  adapted_spec.store = nullptr;         // every iteration recomputes

  const std::vector<ExploreCell> grid = ExpandExploreGrid(adapted_spec);

  AdaptReport report;
  report.options = options;
  report.cells.resize(grid.size());
  {
    ThreadPool pool(adapted_spec.workers);
    for (std::size_t i = 0; i < grid.size(); ++i) {
      const ExploreCell* cell = &grid[i];
      AdaptCellResult* slot = &report.cells[i];
      pool.Submit([&adapted_spec, &options, cell, slot] {
        *slot = AdaptCell(adapted_spec, *cell, options);
      });
    }
    pool.Wait();
  }

  report.wall_ms =
      std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
          std::chrono::steady_clock::now() - start)
          .count();
  return report;
}

std::string RenderAdaptReport(const AdaptReport& report) {
  std::string out;
  for (const AdaptCellResult& cell : report.cells) {
    out += StrPrintf("%s mode=%s policy=%s%s alloc=%s clock=%s%s\n",
                     cell.design.c_str(), SpeculationModeName(cell.mode),
                     SelectionPolicyName(cell.policy),
                     cell.mem_spec ? " mem_spec" : "",
                     cell.allocation.c_str(), cell.clock.c_str(),
                     report.options.skew ? " (skewed start)" : "");
    if (!cell.ok) {
      out += StrCat("  error: ", cell.error, "\n");
      continue;
    }
    out += "  iter    enc_sim  enc_markov  states  applied  max_delta"
           "   traces\n";
    for (const AdaptIteration& row : cell.iterations) {
      out += StrPrintf("  %4d  %9.3f  %10.3f  %6zu  %7d  %9.4f  %7lld\n",
                       row.iteration, row.enc_sim, row.enc_markov, row.states,
                       row.applied, row.max_delta,
                       static_cast<long long>(row.traces));
    }
    out += StrPrintf(
        "  %s after %zu iteration%s; enc_sim improvement %.1f%%\n",
        cell.converged ? "converged" : "iteration budget exhausted",
        cell.iterations.size(), cell.iterations.size() == 1 ? "" : "s",
        cell.improvement_pct());
  }
  return out;
}

}  // namespace ws
