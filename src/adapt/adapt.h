// Offline fixed-point adaptive re-scheduling (`ws_explore --adapt N`).
//
// The feedback loop the serving daemon runs incrementally (dispatch.h's
// adapt lane), iterated to convergence in one process:
//
//   schedule -> simulate the schedule on the benchmark's stimuli ->
//   profile the observed branch outcomes -> re-derive smoothed
//   probabilities -> re-schedule with them -> repeat
//
// Iteration 0 schedules with the graph's own annotations (optionally
// skew-inverted — the controlled way to start from wrong probabilities and
// watch the loop recover); every later iteration schedules with
// probabilities derived from the *accumulated* profile of all earlier
// iterations. The loop stops when the largest probability update falls
// below the convergence threshold or the iteration budget runs out.
//
// Determinism: cells rebuild their own benchmark and mutate only their own
// graph copy (the explore engine's shared-nothing convention), stimuli and
// profiling are deterministic in the spec's seed, and smoothing is pure
// arithmetic — so the report is byte-identical (modulo timing) for any
// worker count.
#ifndef WS_ADAPT_ADAPT_H
#define WS_ADAPT_ADAPT_H

#include <cstdint>
#include <string>
#include <vector>

#include "adapt/profile.h"
#include "explore/explore.h"

namespace ws {

struct AdaptOptions {
  // Re-schedule rounds after iteration 0 (the annotation schedule). The
  // loop may stop earlier on convergence.
  int max_iterations = 5;
  // Invert every control condition's annotated probability (p -> 1-p)
  // before iteration 0: a worst-case-wrong starting point for demos and
  // tests of the recovery loop.
  bool skew = false;
  // Converged when no derived probability moved more than this between
  // consecutive iterations.
  double convergence_delta = 0.01;
};

// One row of the per-cell convergence trace.
struct AdaptIteration {
  int iteration = 0;
  double enc_sim = 0.0;     // cycles per trace of this iteration's schedule
  double enc_markov = 0.0;  // analytic E.N.C. under this iteration's priors
  std::size_t states = 0;
  int applied = 0;          // conditions whose probability was re-derived
  double max_delta = 0.0;   // largest probability change applied after this
                            // iteration's profile merge
  std::int64_t traces = 0;  // cumulative profiled traces
};

struct AdaptCellResult {
  // Grid coordinates, mirroring ExploreRun's key fields.
  std::string design;
  SpeculationMode mode = SpeculationMode::kWavesched;
  SelectionPolicy policy = SelectionPolicy::kCriticality;
  bool mem_spec = false;
  std::string allocation;
  std::string clock;

  bool ok = false;
  std::string error;
  bool converged = false;
  std::vector<AdaptIteration> iterations;
  BranchProfile profile;  // final accumulated profile

  // enc_sim improvement of the best iteration over iteration 0, percent.
  double improvement_pct() const;
};

struct AdaptReport {
  AdaptOptions options;
  std::vector<AdaptCellResult> cells;  // ExpandExploreGrid order
  double wall_ms = 0.0;
};

// Runs the loop over every cell of the spec's grid. measure_sim_enc is
// forced on (the loop's feedback signal is the trace simulation); the
// spec's store is ignored — every iteration recomputes.
AdaptReport RunAdaptExplore(const ExploreSpec& spec,
                            const AdaptOptions& options);

// Human-readable convergence tables, one block per cell.
std::string RenderAdaptReport(const AdaptReport& report);

}  // namespace ws

#endif  // WS_ADAPT_ADAPT_H
