// Branch-execution profiles: the feedback half of adaptive re-scheduling.
//
// A BranchProfile aggregates what a set of executed traces revealed about a
// design's control flow — per-conditional taken/not-taken counts and
// per-loop trip-count histograms — independent of where the traces came
// from: the cycle-accurate STG simulator (ProfileFromStgSim, the daemon's
// own replay and `ws_explore --adapt`), or the golden CDFG interpreter
// (ProfileFromInterp, what a client reports over the PROFILE verb without
// needing the schedule).
//
// Everything downstream is deterministic: profiles encode to canonical
// bytes (sorted maps, fixed-width little-endian fields), merge by plain
// addition, and derive smoothed probabilities by a pure closed form
// (Laplace / add-one smoothing, clamped to the same [0.005, 0.995] band the
// static profiler uses):
//
//     P(cond = true) = (taken + 1) / (taken + not_taken + 2)
//
// so for a fixed profile set, the derived probabilities — and therefore the
// re-scheduled artifact and every adaptive explore report — are
// byte-identical at any worker count.
#ifndef WS_ADAPT_PROFILE_H
#define WS_ADAPT_PROFILE_H

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "base/hashing.h"
#include "base/status.h"
#include "cdfg/cdfg.h"
#include "sim/stimulus.h"
#include "stg/stg.h"

namespace ws {

// Outcome counts for one condition node.
struct CondCounts {
  std::int64_t taken = 0;      // resolved true
  std::int64_t not_taken = 0;  // resolved false

  std::int64_t total() const { return taken + not_taken; }
  bool operator==(const CondCounts&) const = default;
};

struct BranchProfile {
  // Traces aggregated into this profile and their total simulated cycles
  // (0 when the producer has no cycle notion, e.g. the interpreter).
  std::int64_t traces = 0;
  std::int64_t cycles = 0;

  // Per-conditional outcome counts, keyed by raw node id. Ordered maps keep
  // the encoding canonical.
  std::map<std::uint32_t, CondCounts> conds;

  // Per-loop trip-count histograms, keyed by raw loop id:
  // trips -> number of traces that ran the loop body exactly `trips` times.
  std::map<std::uint32_t, std::map<std::int64_t, std::int64_t>> loops;

  bool empty() const { return conds.empty() && loops.empty(); }
  bool operator==(const BranchProfile&) const = default;
};

// Accumulates `from` into `into` (counts add, histograms add bucket-wise).
void MergeProfile(BranchProfile& into, const BranchProfile& from);

// Canonical byte encoding (deterministic across platforms) and its inverse.
// The payload is what travels in the PROFILE wire verb and what the store
// persists under an ArtifactKind::kBranchProfile envelope.
std::string EncodeProfilePayload(const BranchProfile& profile);
Result<BranchProfile> DecodeProfilePayload(std::string_view payload);

// Envelope convenience (io/codec.h, kind kBranchProfile; the meta carries
// the profile's own digest).
std::string EncodeProfileArtifact(const BranchProfile& profile);
Result<BranchProfile> DecodeProfileArtifact(std::string_view bytes);

// 128-bit digest of the canonical encoding. Equal profiles — regardless of
// how their counts were accumulated — digest equally.
Fp128 ProfileDigest(const BranchProfile& profile);

// The store key a cell's accumulated profile lives under: a salted
// derivative of the cell's own artifact key, so run artifact and profile
// pair up without colliding.
Fp128 ProfileStoreKey(const Fp128& cell_key);

// The smoothed P(true) for one condition's counts (the closed form above).
double SmoothedProbability(const CondCounts& counts);

// Derived probabilities for every profiled condition that is a control
// condition of `g` (profiles may carry ids minted on a relaxed mem-spec
// graph or from another design revision; those are skipped).
std::map<NodeId, double> DeriveProbabilities(const Cdfg& g,
                                             const BranchProfile& profile);

// Applies DeriveProbabilities to the graph's probability annotations.
struct ApplyProfileResult {
  int applied = 0;        // conditions whose annotation was updated
  double max_delta = 0.0; // largest |new - old| over applied conditions
};
ApplyProfileResult ApplyProfileToGraph(Cdfg& g, const BranchProfile& profile);

// --- producers -------------------------------------------------------------

// Replays every stimulus through the cycle-accurate STG simulator with
// condition recording on and aggregates the observed outcomes. `g` must be
// the graph the STG was scheduled from (the relaxed graph for mem-spec
// schedules). Counts only genuinely *resolved* condition instances — the
// ones transition cubes consumed — so speculated-and-squashed evaluations
// never pollute the profile.
BranchProfile ProfileFromStgSim(const Stg& stg, const Cdfg& g,
                                const std::vector<Stimulus>& stimuli);

// Schedule-free producer on the golden interpreter (what `ws_client
// profile` reports): per-condition outcome sequences and loop iteration
// counts, no cycle totals.
BranchProfile ProfileFromInterp(const Cdfg& g,
                                const std::vector<Stimulus>& stimuli);

}  // namespace ws

#endif  // WS_ADAPT_PROFILE_H
