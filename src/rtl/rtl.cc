#include "rtl/rtl.h"

#include <algorithm>
#include <set>
#include <sstream>
#include <vector>

#include "base/strings.h"
#include "sim/stg_sim.h"

namespace ws {
namespace {

// Identity of an operation instance within the STG (display refs are unique
// per (node, iter, version) in a given recording frame).
std::uint64_t InstKey(const InstRef& ref) {
  return (static_cast<std::uint64_t>(ref.node.value()) << 40) ^
         (static_cast<std::uint64_t>(static_cast<std::uint32_t>(ref.iter))
          << 8) ^
         static_cast<std::uint64_t>(ref.version & 0xff);
}

}  // namespace

std::string AreaReport::ToString() const {
  std::ostringstream os;
  os << "units:";
  for (const auto& [name, count] : units_used) {
    os << " " << name << "x" << count;
  }
  os << StrPrintf(
      "; fu=%.0f regs=%d (%.0f) mux_in=%d (%.0f) ctrl=%.0f total=%.0f",
      fu_area, registers, reg_area, mux_inputs, mux_area, ctrl_area, total);
  return os.str();
}

AreaReport EstimateArea(const Stg& stg, const Cdfg& g, const FuLibrary& lib,
                        const Stimulus& representative,
                        const AreaModel& model, const Allocation* alloc) {
  AreaReport report;

  // --- Functional-unit binding via greedy conflict coloring ------------------
  // op instance -> states it occupies; grouped per unit type.
  std::map<int, std::map<std::uint64_t, std::set<std::uint32_t>>> occupancy;
  for (const State& s : stg.states()) {
    for (const ScheduledOp& op : s.ops) {
      occupancy[op.fu_type][InstKey(op.inst)].insert(s.id.value());
    }
  }
  // unit -> color; color count per type = instantiated units.
  std::map<std::uint64_t, int> unit_of;  // instance -> unit index
  for (const auto& [type, instances] : occupancy) {
    const FuType& fu = lib.type(type);
    // Muxes are interconnect, not functional units; handled below.
    const bool is_mux = fu.name == "mux1";
    std::vector<std::pair<std::uint64_t, const std::set<std::uint32_t>*>>
        items;
    items.reserve(instances.size());
    for (const auto& [inst, states] : instances) {
      items.emplace_back(inst, &states);
    }
    // Greedy: assign each instance the lowest unit whose current occupancy
    // does not intersect its states.
    std::vector<std::set<std::uint32_t>> units;
    for (const auto& [inst, states] : items) {
      int chosen = -1;
      for (std::size_t u = 0; u < units.size(); ++u) {
        bool clash = false;
        for (std::uint32_t st : *states) {
          if (units[u].contains(st)) {
            clash = true;
            break;
          }
        }
        if (!clash) {
          chosen = static_cast<int>(u);
          break;
        }
      }
      if (chosen < 0) {
        chosen = static_cast<int>(units.size());
        units.emplace_back();
      }
      units[static_cast<std::size_t>(chosen)].insert(states->begin(),
                                                     states->end());
      unit_of[inst] = chosen;
    }
    if (!is_mux) {
      int count = static_cast<int>(units.size());
      if (alloc != nullptr && !alloc->IsUnlimited(type)) {
        count = std::max(count, alloc->Count(type));
      }
      report.units_used[fu.name] = count;
      report.fu_area += fu.area * static_cast<double>(count);
    } else {
      // One 2:1 mux per bound mux "unit" (they time-share like FUs).
      report.mux_inputs += static_cast<int>(units.size());
    }
  }

  // --- Input interconnect: distinct sources per bound unit port ---------------
  std::map<std::pair<int, int>, std::map<int, std::set<std::uint32_t>>>
      port_sources;  // (type, unit) -> port -> distinct source nodes
  for (const State& s : stg.states()) {
    for (const ScheduledOp& op : s.ops) {
      if (op.stage != 0) continue;
      auto uit = unit_of.find(InstKey(op.inst));
      if (uit == unit_of.end()) continue;
      for (std::size_t p = 0; p < op.operands.size(); ++p) {
        port_sources[{op.fu_type, uit->second}][static_cast<int>(p)].insert(
            op.operands[p].node.value());
      }
    }
  }
  for (const auto& [unit, ports] : port_sources) {
    for (const auto& [port, sources] : ports) {
      if (sources.size() > 1) {
        report.mux_inputs += static_cast<int>(sources.size()) - 1;
      }
    }
  }
  report.mux_area =
      model.mux_per_input * static_cast<double>(model.data_width) / 16.0 *
      static_cast<double>(report.mux_inputs);

  // --- Registers via measured lifetimes ----------------------------------------
  StgSimOptions sim_opts;
  sim_opts.record_lifetimes = true;
  const StgSimResult sim = SimulateStg(stg, g, representative, sim_opts);
  // Sweep over cycles of the register occupancy. A value needs a register
  // only if it survives a cycle boundary: values produced and fully
  // consumed within one cycle (chained, e.g. through muxes) stay in wires,
  // and mispredicted speculative values that are never read are not
  // retained either.
  std::map<std::int64_t, int> delta;
  for (const auto& [key, life] : sim.lifetimes) {
    if (life.second <= life.first) continue;
    delta[life.first + 1] += 1;
    delta[life.second + 1] -= 1;
  }
  int live = 0, peak = 0;
  for (const auto& [cycle, d] : delta) {
    live += d;
    peak = std::max(peak, live);
  }
  report.registers = peak;
  report.reg_area = static_cast<double>(peak) * model.reg_bit *
                    static_cast<double>(model.data_width);

  // --- Controller ------------------------------------------------------------------
  int literals = 0;
  for (const State& s : stg.states()) {
    for (const Transition& t : s.out) {
      for (const auto& cube : t.cubes) {
        literals += static_cast<int>(cube.size());
      }
    }
  }
  report.ctrl_area =
      model.fsm_per_state * static_cast<double>(stg.num_work_states()) +
      model.fsm_per_literal * static_cast<double>(literals);

  report.total =
      report.fu_area + report.reg_area + report.mux_area + report.ctrl_area;
  return report;
}

}  // namespace ws
