// RTL synthesis back-end: binds a scheduled design (STG) onto a structural
// datapath + controller and estimates its area in gate equivalents.
//
// This reproduces the paper's Section 5 area experiment ("we obtained an RTL
// implementation for the GCD example ... the area overhead for the circuit
// produced from Wavesched-spec was found to be 3.1%"): the same measurement
// — relative datapath+controller area of the WS and WS-spec schedules — on
// an in-repo substrate (the paper used an in-house synthesis system and the
// MSU gate library; see DESIGN.md, "Substitutions").
//
// The model:
//  * Functional-unit binding: operation instances that are active in the
//    same state conflict; greedy conflict-graph coloring per unit type gives
//    the number of units instantiated.
//  * Register allocation: value lifetimes are measured by an instrumented
//    cycle-accurate simulation on a representative trace (produced cycle ->
//    last consumed cycle); the register count is the maximum number of
//    simultaneously live values (the left-edge bound).
//  * Interconnect: one mux input per distinct source feeding each bound
//    unit's port beyond the first.
//  * Controller: one-hot FSM — a flip-flop + decode per state plus
//    next-state logic per transition-cube literal.
#ifndef WS_RTL_RTL_H
#define WS_RTL_RTL_H

#include <map>
#include <string>

#include "cdfg/cdfg.h"
#include "hw/resources.h"
#include "sim/stimulus.h"
#include "stg/stg.h"

namespace ws {

struct AreaReport {
  std::map<std::string, int> units_used;  // unit type name -> instances
  double fu_area = 0.0;
  int registers = 0;
  double reg_area = 0.0;
  int mux_inputs = 0;
  double mux_area = 0.0;
  double ctrl_area = 0.0;
  double total = 0.0;

  std::string ToString() const;
};

struct AreaModel {
  double reg_bit = 6.0;      // per register bit
  int data_width = 16;       // datapath width in bits
  double mux_per_input = 12.0;
  double fsm_per_state = 58.0;   // one-hot FF + decode
  double fsm_per_literal = 8.0;  // next-state logic
};

// Synthesizes the datapath/controller structure for `stg` and reports area.
// `representative` should be a stimulus that exercises the steady state
// (register lifetimes are measured on its simulation). When `alloc` is
// given, each constrained unit type is charged at least its allocated count
// — the paper's flow instantiates the allocation in both designs, so the
// functional-unit area of WS and WS-spec schedules is identical and the
// overhead isolates registers, interconnect, and controller.
AreaReport EstimateArea(const Stg& stg, const Cdfg& g, const FuLibrary& lib,
                        const Stimulus& representative,
                        const AreaModel& model = {},
                        const Allocation* alloc = nullptr);

}  // namespace ws

#endif  // WS_RTL_RTL_H
