// The paper's benchmark suite (Section 5, Tables 1 & 2), reconstructed.
//
// "Of our examples, GCD, Barcode, TLC, and Findmin are borrowed from the
//  literature. Test1 is the example shown in Figure 1."
//
// Each benchmark bundles: the CDFG, the Table 2 allocation constraints, a
// stimulus generator reproducing the paper's methodology (deterministic
// zero-mean Gaussian input traces), and the loop-iteration budget used for
// the worst-case column. The exact behavioral sources of the literature
// benchmarks are not archived, so Barcode/TLC/Findmin are reconstructions
// that match the paper's operation mix (Table 2) and qualitative behavior
// (see DESIGN.md, "Substitutions").
#ifndef WS_SUITE_BENCHMARKS_H
#define WS_SUITE_BENCHMARKS_H

#include <string>
#include <vector>

#include "base/rng.h"
#include "base/status.h"
#include "cdfg/cdfg.h"
#include "hw/resources.h"
#include "sched/scheduler.h"
#include "sim/stimulus.h"

namespace ws {

struct Benchmark {
  std::string name;
  Cdfg graph;
  FuLibrary library;
  Allocation allocation;
  // Deterministic stimulus set (the paper's input traces).
  std::vector<Stimulus> stimuli;
  // Loop-back budget for the worst-case column of Table 1.
  int worst_case_budget = 256;
  // Suggested scheduler lookahead (pipeline depth of the steady state).
  int lookahead = 8;
};

// The Figure 1 while loop (memory reads, two chained multiplications,
// 2-stage pipelined multiplier) — the paper's running Example 1.
Benchmark MakeTest1(int num_stimuli, std::uint64_t seed);

// Greatest common divisor (Fig. 13 / Example 10).
Benchmark MakeGcd(int num_stimuli, std::uint64_t seed);

// Barcode reader: run-length decoding of a sampled 0/1 stream terminated by
// a sentinel.
Benchmark MakeBarcode(int num_stimuli, std::uint64_t seed);

// Traffic light controller: fixed-length timer loop whose per-iteration
// recurrence already saturates the schedule — the benchmark where
// speculation cannot help (Table 1 reports identical WS and WS-spec
// columns).
Benchmark MakeTlc(int num_stimuli, std::uint64_t seed);

// Index of the minimum element of an array.
Benchmark MakeFindmin(int num_stimuli, std::uint64_t seed);

// --- Memory-disambiguation workloads --------------------------------------
//
// Three designs whose per-iteration load addresses are data-dependent, so
// the conservative program-order memory chain serializes loop iterations
// that almost never actually alias. These are the benchmarks for
// SchedulerOptions::mem_spec (mem/disambig.h); they are not Table 1 rows.

// Histogram: per-element increment of a data-dependent bin. The load H[b]
// of one iteration aliases the previous iteration's store only when two
// consecutive elements fall in the same bin.
Benchmark MakeHistogram(int num_stimuli, std::uint64_t seed);

// One strided marking pass of a sieve: read-modify-write at addresses
// j, j+p, 2p... (mod the array size), with a data-dependent stride.
Benchmark MakeSieve(int num_stimuli, std::uint64_t seed);

// Sparse accumulation ACC[IDX[i]] += VAL[i]: a gather/scatter pair whose
// store address is itself loaded from memory, so it resolves late.
Benchmark MakeSparseAccum(int num_stimuli, std::uint64_t seed);

// All five Table 1 rows in paper order.
std::vector<Benchmark> MakeTable1Suite(int num_stimuli, std::uint64_t seed);

// The Figure 4 motivating CDFG of Examples 2/3/9: an unbalanced two-path
// conditional feeding a select. `p_true` annotates P(c1). All units
// single-cycle (the example's premise).
Benchmark MakeFig4(double p_true, int num_stimuli, std::uint64_t seed);

// --- Registry -------------------------------------------------------------
//
// Name-based construction, so sweeps (the explore engine, CLIs) can carry
// benchmarks as strings and every worker can rebuild its own shared-nothing
// copy deterministically.

// Registered names, lower-case: the five Table 1 rows, "fig4", and the
// three memory-disambiguation workloads.
std::vector<std::string> BenchmarkNames();

// Builds a benchmark by (case-insensitive) name. "fig4" takes an optional
// branch-probability parameter as "fig4:<p>", e.g. "fig4:0.3" (default 0.5).
// Unknown names produce an error listing the registry.
Result<Benchmark> MakeBenchmarkByName(const std::string& name,
                                      int num_stimuli, std::uint64_t seed);

// Schedules a benchmark through the request/response API with the given
// options, taken verbatim.
Result<ScheduleReport> ScheduleBenchmark(const Benchmark& b,
                                         const SchedulerOptions& options);

// Convenience: schedules with defaults plus the given mode and the
// benchmark's own lookahead (its steady-state pipeline depth).
Result<ScheduleReport> ScheduleBenchmark(const Benchmark& b,
                                         SpeculationMode mode);

}  // namespace ws

#endif  // WS_SUITE_BENCHMARKS_H
