#include "suite/bench_json.h"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "base/strings.h"
#include "suite/benchmarks.h"

namespace ws {
namespace {

struct Cell {
  std::string benchmark;
  std::string mode;
  std::int64_t wall_ns_min = 0;
  std::int64_t wall_ns_max = 0;
  ScheduleStats stats;  // from the fastest repetition
};

std::int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void AppendStats(std::ostringstream& os, const ScheduleStats& s,
                 const char* indent) {
  os << indent << "\"states_created\": " << s.states_created << ",\n"
     << indent << "\"closure_hits\": " << s.closure_hits << ",\n"
     << indent << "\"total_ops\": " << s.total_ops << ",\n"
     << indent << "\"speculative_ops\": " << s.speculative_ops << ",\n"
     << indent << "\"squashed_ops\": " << s.squashed_ops << ",\n"
     << indent << "\"candidates_generated\": " << s.candidates_generated
     << ",\n"
     << indent << "\"bdd_ops\": " << s.bdd_ops << ",\n"
     << indent << "\"bdd_nodes\": " << s.bdd_nodes << ",\n"
     << indent << "\"phase\": {\n"
     << indent << "  \"successor_ns\": " << s.phase.successor_ns << ",\n"
     << indent << "  \"cofactor_ns\": " << s.phase.cofactor_ns << ",\n"
     << indent << "  \"closure_ns\": " << s.phase.closure_ns << ",\n"
     << indent << "  \"select_ns\": " << s.phase.select_ns << ",\n"
     << indent << "  \"gc_ns\": " << s.phase.gc_ns << ",\n"
     << indent << "  \"total_ns\": " << s.phase.total_ns << "\n"
     << indent << "}\n";
}

}  // namespace

Result<std::string> RenderBenchJson(const BenchJsonOptions& options) {
  if (options.repetitions < 1) {
    return Status::MakeError("BenchJsonOptions: repetitions must be >= 1");
  }
  const SpeculationMode kModes[] = {SpeculationMode::kWavesched,
                                    SpeculationMode::kSinglePath,
                                    SpeculationMode::kWaveschedSpec};
  std::vector<Cell> cells;
  for (const std::string& name : BenchmarkNames()) {
    if (name == "fig4") continue;  // parameterized motivating example, not a
                                   // perf-tracked suite row
    Result<Benchmark> b =
        MakeBenchmarkByName(name, options.num_stimuli, options.seed);
    if (!b.ok()) return b.status();
    for (const SpeculationMode mode : kModes) {
      Cell cell;
      cell.benchmark = name;
      cell.mode = SpeculationModeName(mode);
      SchedulerOptions sched_options;
      sched_options.mode = mode;
      sched_options.lookahead = b.value().lookahead;
      sched_options.wave_workers = options.wave_workers;
      for (int rep = 0; rep < options.repetitions; ++rep) {
        const std::int64_t start = NowNs();
        Result<ScheduleReport> r = ScheduleBenchmark(b.value(), sched_options);
        const std::int64_t elapsed = NowNs() - start;
        if (!r.ok()) return r.status();
        if (rep == 0 || elapsed < cell.wall_ns_min) {
          cell.wall_ns_min = elapsed;
          cell.stats = r.value().stats;
        }
        cell.wall_ns_max = std::max(cell.wall_ns_max, elapsed);
      }
      cells.push_back(std::move(cell));
    }
  }

  std::ostringstream os;
  os << "{\n"
     << "  \"schema\": \"ws-bench-sched-v1\",\n"
     << "  \"label\": \"" << options.label << "\",\n"
     << "  \"config\": {\n"
     << "    \"repetitions\": " << options.repetitions << ",\n"
     << "    \"num_stimuli\": " << options.num_stimuli << ",\n"
     << "    \"seed\": " << options.seed << ",\n"
     << "    \"wave_workers\": " << options.wave_workers << ",\n"
     << "    \"cpus\": " << std::thread::hardware_concurrency() << "\n"
     << "  },\n"
     << "  \"runs\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    os << "    {\n"
       << "      \"benchmark\": \"" << c.benchmark << "\",\n"
       << "      \"mode\": \"" << c.mode << "\",\n"
       << "      \"wall_ns_min\": " << c.wall_ns_min << ",\n"
       << "      \"wall_ns_max\": " << c.wall_ns_max << ",\n"
       << "      \"stats\": {\n";
    AppendStats(os, c.stats, "        ");
    os << "      }\n"
       << "    }" << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  return os.str();
}

Status WriteBenchJson(const BenchJsonOptions& options,
                      const std::string& path) {
  Result<std::string> json = RenderBenchJson(options);
  if (!json.ok()) return json.status();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::MakeError(StrCat("bench_json: cannot open ", path));
  }
  out << json.value();
  out.close();
  if (!out) {
    return Status::MakeError(StrCat("bench_json: write failed for ", path));
  }
  return Status::Ok();
}

}  // namespace ws
