#include "suite/benchmarks.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>

#include "cdfg/builder.h"
#include "sim/interpreter.h"

namespace ws {
namespace {

// |N(0, sigma)| clamped to [lo, hi].
std::int64_t AbsGauss(Rng& rng, double sigma, std::int64_t lo,
                      std::int64_t hi) {
  const std::int64_t v = std::llabs(rng.NextGaussianInt(sigma));
  return std::clamp(v, lo, hi);
}

void Profile(Benchmark& b) {
  ProfileBranchProbabilities(b.graph, b.stimuli);
}

}  // namespace

Benchmark MakeTest1(int num_stimuli, std::uint64_t seed) {
  CdfgBuilder b("test1");
  const NodeId k = b.Input("k");
  const NodeId i0 = b.Konst(0);
  const NodeId t40 = b.Konst(0);
  const NodeId c1 = b.Konst(3);
  const NodeId c2 = b.Konst(5);
  const NodeId c3 = b.Konst(1);
  const ArrayId m1 = b.Array("M1", 256);
  const ArrayId m2 = b.Array("M2", 256);

  b.BeginLoop("main");
  const NodeId i = b.LoopPhi("i", i0);
  const NodeId t4 = b.LoopPhi("t4", t40);
  const NodeId cond = b.Op(OpKind::kGt, ">1", {k, t4});
  b.SetLoopCondition(cond);
  const NodeId i1 = b.Op(OpKind::kInc, "++1", {i});
  const NodeId t1 = b.MemRead("M1", m1, i1);
  const NodeId t2 = b.Op(OpKind::kMul, "*1", {t1, c1});
  const NodeId t3 = b.Op(OpKind::kMul, "*2", {t2, c2});
  const NodeId t4n = b.Op(OpKind::kAdd, "+1", {t3, c3});
  b.MemWrite("M2", m2, i1, t4n);
  b.SetLoopBack(i, i1);
  b.SetLoopBack(t4, t4n);
  b.EndLoop();
  b.Output("t4_out", t4);
  b.Output("iters", i);

  Benchmark bench;
  bench.name = "Test1";
  bench.graph = b.Finish();
  bench.library = FuLibrary::PaperLibrary();
  bench.allocation = Allocation::None(bench.library);
  bench.allocation.Set(bench.library, "add1", 1);
  bench.allocation.Set(bench.library, "mult1", 4);
  bench.allocation.Set(bench.library, "comp1", 1);
  bench.allocation.Set(bench.library, "inc1", 1);
  bench.worst_case_budget = 600;
  bench.lookahead = 10;

  // Gaussian traces tuned so the loop runs for tens of iterations on
  // average: t4 jumps to 15*M1[i]+1 each iteration and the loop continues
  // while k > t4, so with M1 ~ N(0,5) the per-iteration exit probability is
  // a few percent for k near its mean.
  Rng rng(seed);
  for (int s = 0; s < num_stimuli; ++s) {
    Stimulus st;
    st.inputs[k] = AbsGauss(rng, 120.0, 60, 200);
    std::vector<std::int64_t> contents(256);
    for (auto& v : contents) v = rng.NextGaussianInt(5.0);
    // Termination guarantee: at least one element large enough to push t4
    // past any k in range (addresses wrap modulo the array size).
    contents[rng.NextBelow(contents.size())] = 14;
    st.arrays[m1] = std::move(contents);
    st.arrays[m2] = std::vector<std::int64_t>(256, 0);
    bench.stimuli.push_back(std::move(st));
  }
  Profile(bench);
  return bench;
}

Benchmark MakeGcd(int num_stimuli, std::uint64_t seed) {
  CdfgBuilder b("gcd");
  const NodeId x = b.Input("x");
  const NodeId y = b.Input("y");

  b.BeginLoop("main");
  const NodeId xp = b.LoopPhi("x", x);
  const NodeId yp = b.LoopPhi("y", y);
  const NodeId cond = b.Op(OpKind::kNe, "!=1", {xp, yp});
  b.SetLoopCondition(cond);
  const NodeId cg = b.Op(OpKind::kGt, ">1", {xp, yp});
  b.BeginIf(cg);
  const NodeId d1 = b.Op(OpKind::kSub, "-1", {xp, yp});
  b.BeginElse();
  const NodeId d2 = b.Op(OpKind::kSub, "-2", {yp, xp});
  b.EndIf();
  const NodeId xn = b.Select("selx", cg, d1, xp);
  const NodeId yn = b.Select("sely", cg, yp, d2);
  b.SetLoopBack(xp, xn);
  b.SetLoopBack(yp, yn);
  b.EndLoop();
  b.Output("gcd", xp);

  Benchmark bench;
  bench.name = "GCD";
  bench.graph = b.Finish();
  bench.library = FuLibrary::PaperLibrary();
  bench.allocation = Allocation::None(bench.library);
  bench.allocation.Set(bench.library, "sub1", 2);
  bench.allocation.Set(bench.library, "comp1", 1);
  bench.allocation.Set(bench.library, "eqc1", 2);
  bench.worst_case_budget = 255;
  bench.lookahead = 3;

  Rng rng(seed);
  for (int s = 0; s < num_stimuli; ++s) {
    Stimulus st;
    st.inputs[x] = 1 + AbsGauss(rng, 90.0, 0, 254);
    st.inputs[y] = 1 + AbsGauss(rng, 90.0, 0, 254);
    bench.stimuli.push_back(std::move(st));
  }
  Profile(bench);
  return bench;
}

Benchmark MakeBarcode(int num_stimuli, std::uint64_t seed) {
  CdfgBuilder b("barcode");
  const ArrayId sig = b.Array("S", 256);
  const NodeId i0 = b.Konst(0);
  const NodeId run0 = b.Konst(0);
  const NodeId val0 = b.Konst(0);
  const NodeId tot0 = b.Konst(0);
  const NodeId prev0 = b.Konst(0);
  const NodeId sentinel = b.Konst(2);
  const NodeId one = b.Konst(1);
  const NodeId thr = b.Konst(3);

  b.BeginLoop("scan");
  const NodeId i = b.LoopPhi("i", i0);
  const NodeId run = b.LoopPhi("run", run0);
  const NodeId val = b.LoopPhi("val", val0);
  const NodeId tot = b.LoopPhi("tot", tot0);
  const NodeId prev = b.LoopPhi("prev", prev0);
  const NodeId s = b.MemRead("S", sig, i);
  const NodeId cond = b.Op(OpKind::kNe, "!=1", {s, sentinel});
  b.SetLoopCondition(cond);
  const NodeId chg = b.Op(OpKind::kNe, "!=2", {s, prev});
  const NodeId run1 = b.Op(OpKind::kInc, "++r", {run});
  const NodeId wide = b.Op(OpKind::kGt, ">w", {run1, thr});
  const NodeId val1 = b.Op(OpKind::kAdd, "+v", {val, wide});
  const NodeId tot1 = b.Op(OpKind::kAdd, "+t", {tot, s});
  const NodeId i1 = b.Op(OpKind::kInc, "++i", {i});
  const NodeId runn = b.Select("selr", chg, one, run1);
  const NodeId valn = b.Select("selv", chg, val1, val);
  b.SetLoopBack(i, i1);
  b.SetLoopBack(run, runn);
  b.SetLoopBack(val, valn);
  b.SetLoopBack(tot, tot1);
  b.SetLoopBack(prev, s);
  b.EndLoop();
  b.Output("val", val);
  b.Output("tot", tot);

  Benchmark bench;
  bench.name = "Barcode";
  bench.graph = b.Finish();
  bench.library = FuLibrary::PaperLibrary();
  bench.allocation = Allocation::None(bench.library);
  bench.allocation.Set(bench.library, "add1", 2);
  bench.allocation.Set(bench.library, "sub1", 2);
  bench.allocation.Set(bench.library, "comp1", 3);
  bench.allocation.Set(bench.library, "eqc1", 3);
  bench.allocation.Set(bench.library, "inc1", 3);
  bench.worst_case_budget = 256;
  bench.lookahead = 8;

  Rng rng(seed);
  for (int st_idx = 0; st_idx < num_stimuli; ++st_idx) {
    Stimulus st;
    std::vector<std::int64_t> contents(256);
    for (auto& v : contents) v = static_cast<std::int64_t>(rng.NextBelow(2));
    const std::int64_t end = AbsGauss(rng, 120.0, 1, 250);
    for (std::size_t j = static_cast<std::size_t>(end); j < contents.size();
         ++j) {
      contents[j] = 2;
    }
    st.arrays[sig] = std::move(contents);
    bench.stimuli.push_back(std::move(st));
  }
  Profile(bench);
  return bench;
}

Benchmark MakeTlc(int num_stimuli, std::uint64_t seed) {
  CdfgBuilder b("tlc");
  const NodeId w = b.Input("sensor");
  const NodeId t0 = b.Konst(0);
  const NodeId ph0 = b.Konst(0);
  const NodeId l0 = b.Konst(0);
  const NodeId limit = b.Konst(253);
  const NodeId wrap = b.Konst(9);
  const NodeId green = b.Konst(5);
  const NodeId zero = b.Konst(0);
  const NodeId one = b.Konst(1);

  b.BeginLoop("timer");
  const NodeId t = b.LoopPhi("t", t0);
  const NodeId ph = b.LoopPhi("ph", ph0);
  const NodeId l = b.LoopPhi("l", l0);
  const NodeId cond = b.Op(OpKind::kLt, "<1", {t, limit});
  b.SetLoopCondition(cond);
  const NodeId t1 = b.Op(OpKind::kInc, "++t", {t});
  const NodeId a1 = b.Op(OpKind::kAdd, "+a", {ph, one});
  const NodeId a2 = b.Op(OpKind::kAdd, "+b", {a1, w});
  const NodeId e1 = b.Op(OpKind::kEq, "==1", {ph, wrap});
  const NodeId e2 = b.Op(OpKind::kEq, "==2", {ph, green});
  const NodeId phn = b.Select("selp", e1, zero, a2);
  const NodeId ln = b.Select("sell", e2, one, zero);
  b.SetLoopBack(t, t1);
  b.SetLoopBack(ph, phn);
  b.SetLoopBack(l, ln);
  b.EndLoop();
  b.Output("phase", ph);
  b.Output("light", l);

  Benchmark bench;
  bench.name = "TLC";
  bench.graph = b.Finish();
  bench.library = FuLibrary::PaperLibrary();
  bench.allocation = Allocation::None(bench.library);
  bench.allocation.Set(bench.library, "add1", 2);
  bench.allocation.Set(bench.library, "comp1", 1);
  bench.allocation.Set(bench.library, "eqc1", 2);
  bench.allocation.Set(bench.library, "inc1", 1);
  bench.worst_case_budget = 256;
  bench.lookahead = 6;

  Rng rng(seed);
  for (int s = 0; s < num_stimuli; ++s) {
    Stimulus st;
    st.inputs[w] = AbsGauss(rng, 2.0, 0, 3);
    bench.stimuli.push_back(std::move(st));
  }
  Profile(bench);
  return bench;
}

Benchmark MakeFindmin(int num_stimuli, std::uint64_t seed) {
  CdfgBuilder b("findmin");
  const NodeId n = b.Input("n");
  const ArrayId arr = b.Array("A", 256);
  const NodeId i0 = b.Konst(0);
  const NodeId big = b.Konst(1 << 20);
  const NodeId idx0 = b.Konst(0);

  b.BeginLoop("scan");
  const NodeId i = b.LoopPhi("i", i0);
  const NodeId mn = b.LoopPhi("min", big);
  const NodeId idx = b.LoopPhi("idx", idx0);
  const NodeId cond = b.Op(OpKind::kLt, "<1", {i, n});
  b.SetLoopCondition(cond);
  const NodeId v = b.MemRead("A", arr, i);
  const NodeId less = b.Op(OpKind::kLt, "<2", {v, mn});
  const NodeId mnn = b.Select("selm", less, v, mn);
  const NodeId idxn = b.Select("seli", less, i, idx);
  const NodeId i1 = b.Op(OpKind::kInc, "++i", {i});
  b.SetLoopBack(i, i1);
  b.SetLoopBack(mn, mnn);
  b.SetLoopBack(idx, idxn);
  b.EndLoop();
  b.Output("idx", idx);
  b.Output("min", mn);

  Benchmark bench;
  bench.name = "Findmin";
  bench.graph = b.Finish();
  bench.library = FuLibrary::PaperLibrary();
  bench.allocation = Allocation::None(bench.library);
  bench.allocation.Set(bench.library, "comp1", 2);
  bench.allocation.Set(bench.library, "eqc1", 1);
  bench.allocation.Set(bench.library, "inc1", 1);
  bench.worst_case_budget = 256;
  bench.lookahead = 6;

  Rng rng(seed);
  for (int s = 0; s < num_stimuli; ++s) {
    Stimulus st;
    st.inputs[n] = AbsGauss(rng, 120.0, 1, 236);
    std::vector<std::int64_t> contents(256);
    for (auto& val : contents) val = rng.NextGaussianInt(100.0);
    st.arrays[arr] = std::move(contents);
    bench.stimuli.push_back(std::move(st));
  }
  Profile(bench);
  return bench;
}

Benchmark MakeHistogram(int num_stimuli, std::uint64_t seed) {
  CdfgBuilder b("histogram");
  const NodeId n = b.Input("n");
  const ArrayId xs = b.Array("X", 64);
  const ArrayId hist = b.Array("H", 16);
  const NodeId i0 = b.Konst(0);
  const NodeId h0 = b.Konst(0);

  b.BeginLoop("scan");
  const NodeId i = b.LoopPhi("i", i0);
  const NodeId h = b.LoopPhi("h", h0);
  const NodeId cond = b.Op(OpKind::kLt, "<1", {i, n});
  b.SetLoopCondition(cond);
  const NodeId bin = b.MemRead("X", xs, i);
  const NodeId hv = b.MemRead("H", hist, bin);
  const NodeId hv1 = b.Op(OpKind::kInc, "++h", {hv});
  b.MemWrite("H", hist, bin, hv1);
  const NodeId i1 = b.Op(OpKind::kInc, "++i", {i});
  b.SetLoopBack(i, i1);
  b.SetLoopBack(h, hv1);
  b.EndLoop();
  b.Output("count", i);
  b.Output("last", h);

  Benchmark bench;
  bench.name = "Histogram";
  bench.graph = b.Finish();
  bench.library = FuLibrary::PaperLibrary();
  bench.allocation = Allocation::None(bench.library);
  bench.allocation.Set(bench.library, "comp1", 1);
  bench.allocation.Set(bench.library, "inc1", 2);
  bench.worst_case_budget = 96;
  bench.lookahead = 6;

  Rng rng(seed);
  for (int s = 0; s < num_stimuli; ++s) {
    Stimulus st;
    st.inputs[n] = AbsGauss(rng, 24.0, 1, 64);
    std::vector<std::int64_t> bins(64);
    for (auto& val : bins) val = rng.NextInt(0, 15);
    st.arrays[xs] = std::move(bins);
    st.arrays[hist] = std::vector<std::int64_t>(16, 0);
    bench.stimuli.push_back(std::move(st));
  }
  Profile(bench);
  return bench;
}

Benchmark MakeSieve(int num_stimuli, std::uint64_t seed) {
  CdfgBuilder b("sieve");
  const NodeId p = b.Input("p");
  const NodeId n = b.Input("n");
  const ArrayId c = b.Array("C", 32);
  const NodeId i0 = b.Konst(0);
  const NodeId j0 = b.Konst(0);
  const NodeId m0 = b.Konst(0);

  b.BeginLoop("mark");
  const NodeId i = b.LoopPhi("i", i0);
  const NodeId j = b.LoopPhi("j", j0);
  const NodeId m = b.LoopPhi("m", m0);
  const NodeId cond = b.Op(OpKind::kLt, "<1", {i, n});
  b.SetLoopCondition(cond);
  const NodeId v = b.MemRead("C", c, j);
  const NodeId v1 = b.Op(OpKind::kInc, "++v", {v});
  b.MemWrite("C", c, j, v1);
  const NodeId m1 = b.Op(OpKind::kAdd, "+m", {m, v});
  const NodeId j1 = b.Op(OpKind::kAdd, "+j", {j, p});
  const NodeId i1 = b.Op(OpKind::kInc, "++i", {i});
  b.SetLoopBack(i, i1);
  b.SetLoopBack(j, j1);
  b.SetLoopBack(m, m1);
  b.EndLoop();
  b.Output("marks", m);

  Benchmark bench;
  bench.name = "Sieve";
  bench.graph = b.Finish();
  bench.library = FuLibrary::PaperLibrary();
  bench.allocation = Allocation::None(bench.library);
  bench.allocation.Set(bench.library, "comp1", 1);
  bench.allocation.Set(bench.library, "add1", 2);
  bench.allocation.Set(bench.library, "inc1", 2);
  bench.worst_case_budget = 128;
  bench.lookahead = 6;

  Rng rng(seed);
  for (int s = 0; s < num_stimuli; ++s) {
    Stimulus st;
    st.inputs[p] = AbsGauss(rng, 8.0, 1, 31);
    st.inputs[n] = AbsGauss(rng, 40.0, 1, 96);
    std::vector<std::int64_t> contents(32);
    for (auto& val : contents) val = std::llabs(rng.NextGaussianInt(4.0));
    st.arrays[c] = std::move(contents);
    bench.stimuli.push_back(std::move(st));
  }
  Profile(bench);
  return bench;
}

Benchmark MakeSparseAccum(int num_stimuli, std::uint64_t seed) {
  CdfgBuilder b("sparse_accum");
  const NodeId n = b.Input("n");
  const ArrayId idx = b.Array("IDX", 64);
  const ArrayId val = b.Array("VAL", 64);
  const ArrayId acc = b.Array("ACC", 16);
  const NodeId i0 = b.Konst(0);
  const NodeId s0 = b.Konst(0);

  b.BeginLoop("gather");
  const NodeId i = b.LoopPhi("i", i0);
  const NodeId s = b.LoopPhi("s", s0);
  const NodeId cond = b.Op(OpKind::kLt, "<1", {i, n});
  b.SetLoopCondition(cond);
  const NodeId k = b.MemRead("IDX", idx, i);
  const NodeId v = b.MemRead("VAL", val, i);
  const NodeId a = b.MemRead("ACC", acc, k);
  const NodeId a1 = b.Op(OpKind::kAdd, "+a", {a, v});
  b.MemWrite("ACC", acc, k, a1);
  const NodeId s1 = b.Op(OpKind::kAdd, "+s", {s, a});
  const NodeId i1 = b.Op(OpKind::kInc, "++i", {i});
  b.SetLoopBack(i, i1);
  b.SetLoopBack(s, s1);
  b.EndLoop();
  b.Output("sum", s);

  Benchmark bench;
  bench.name = "SparseAccum";
  bench.graph = b.Finish();
  bench.library = FuLibrary::PaperLibrary();
  bench.allocation = Allocation::None(bench.library);
  bench.allocation.Set(bench.library, "comp1", 1);
  bench.allocation.Set(bench.library, "add1", 2);
  bench.allocation.Set(bench.library, "inc1", 1);
  bench.worst_case_budget = 96;
  bench.lookahead = 6;

  Rng rng(seed);
  for (int s2 = 0; s2 < num_stimuli; ++s2) {
    Stimulus st;
    st.inputs[n] = AbsGauss(rng, 24.0, 1, 64);
    std::vector<std::int64_t> indices(64);
    for (auto& x : indices) x = rng.NextInt(0, 15);
    std::vector<std::int64_t> values(64);
    for (auto& x : values) x = rng.NextGaussianInt(50.0);
    st.arrays[idx] = std::move(indices);
    st.arrays[val] = std::move(values);
    st.arrays[acc] = std::vector<std::int64_t>(16, 0);
    bench.stimuli.push_back(std::move(st));
  }
  Profile(bench);
  return bench;
}

std::vector<Benchmark> MakeTable1Suite(int num_stimuli, std::uint64_t seed) {
  std::vector<Benchmark> suite;
  suite.push_back(MakeBarcode(num_stimuli, seed + 1));
  suite.push_back(MakeGcd(num_stimuli, seed + 2));
  suite.push_back(MakeTest1(num_stimuli, seed + 3));
  suite.push_back(MakeTlc(num_stimuli, seed + 4));
  suite.push_back(MakeFindmin(num_stimuli, seed + 5));
  return suite;
}

std::vector<std::string> BenchmarkNames() {
  return {"barcode", "gcd",  "test1",     "tlc",   "findmin",
          "fig4",    "histogram", "sieve", "sparse_accum"};
}

Result<Benchmark> MakeBenchmarkByName(const std::string& name,
                                      int num_stimuli, std::uint64_t seed) {
  std::string key;
  key.reserve(name.size());
  for (char c : name) {
    key.push_back(static_cast<char>(
        std::tolower(static_cast<unsigned char>(c))));
  }
  // Optional ":<param>" suffix (only fig4 takes one).
  std::string param;
  if (const std::size_t colon = key.find(':'); colon != std::string::npos) {
    param = key.substr(colon + 1);
    key.resize(colon);
  }
  if (key == "fig4") {
    double p = 0.5;
    if (!param.empty()) {
      char* end = nullptr;
      p = std::strtod(param.c_str(), &end);
      if (end == param.c_str() || *end != '\0' || p < 0.0 || p > 1.0) {
        return Status::MakeError("fig4 parameter must be a probability in "
                                 "[0,1], got \"" + param + "\"");
      }
    }
    return MakeFig4(p, num_stimuli, seed);
  }
  if (!param.empty()) {
    return Status::MakeError("benchmark \"" + key +
                             "\" takes no parameter");
  }
  // The seed offsets match MakeTable1Suite so per-name construction agrees
  // with the whole-suite constructor.
  if (key == "barcode") return MakeBarcode(num_stimuli, seed + 1);
  if (key == "gcd") return MakeGcd(num_stimuli, seed + 2);
  if (key == "test1") return MakeTest1(num_stimuli, seed + 3);
  if (key == "tlc") return MakeTlc(num_stimuli, seed + 4);
  if (key == "findmin") return MakeFindmin(num_stimuli, seed + 5);
  if (key == "histogram") return MakeHistogram(num_stimuli, seed + 6);
  if (key == "sieve") return MakeSieve(num_stimuli, seed + 7);
  if (key == "sparse_accum") return MakeSparseAccum(num_stimuli, seed + 8);
  std::string known;
  for (const std::string& n : BenchmarkNames()) {
    if (!known.empty()) known += ", ";
    known += n;
  }
  return Status::MakeError("unknown benchmark \"" + name +
                           "\"; known: " + known);
}

Result<ScheduleReport> ScheduleBenchmark(const Benchmark& b,
                                         const SchedulerOptions& options) {
  ScheduleRequest request;
  request.graph = &b.graph;
  request.library = &b.library;
  request.allocation = &b.allocation;
  request.options = options;
  return Schedule(request);
}

Result<ScheduleReport> ScheduleBenchmark(const Benchmark& b,
                                         SpeculationMode mode) {
  SchedulerOptions options;
  options.mode = mode;
  options.lookahead = b.lookahead;
  return ScheduleBenchmark(b, options);
}

Benchmark MakeFig4(double p_true, int num_stimuli, std::uint64_t seed) {
  CdfgBuilder b("fig4");
  const NodeId in_b = b.Input("b");
  const NodeId in_d = b.Input("d");
  const NodeId in_e = b.Input("e");
  const NodeId in_f = b.Input("f");
  const NodeId in_g = b.Input("g");
  const NodeId in_h = b.Input("h");
  const NodeId in_s = b.Input("s");
  const NodeId in_k = b.Input("k");

  const NodeId x = b.Op(OpKind::kInc, "++1", {in_b});
  const NodeId c = b.Op(OpKind::kGt, ">1", {x, in_d});
  b.BeginIf(c);
  const NodeId t1 = b.Op(OpKind::kAdd, "+1", {in_e, in_f});
  const NodeId t2 = b.Op(OpKind::kMul, "*1", {t1, in_k});
  b.BeginElse();
  const NodeId u1 = b.Op(OpKind::kAdd, "+2", {in_g, in_h});
  const NodeId u2 = b.Op(OpKind::kShr, ">>1", {u1, in_s});
  b.EndIf();
  const NodeId out = b.Select("Sel1", c, t2, u2);
  b.Output("out", out);
  b.SetProbability(c, p_true);

  Benchmark bench;
  bench.name = "Fig4";
  bench.graph = b.Finish();
  bench.library = FuLibrary::SingleCycleLibrary();
  bench.allocation = Allocation::None(bench.library);
  bench.allocation.Set(bench.library, "add1", 1);
  bench.allocation.Set(bench.library, "mult1", 1);
  bench.allocation.Set(bench.library, "comp1", 1);
  bench.allocation.Set(bench.library, "inc1", 1);
  bench.allocation.Set(bench.library, "shift1", 1);
  bench.worst_case_budget = 4;
  bench.lookahead = 4;

  Rng rng(seed);
  for (int s = 0; s < num_stimuli; ++s) {
    Stimulus st;
    for (NodeId in : bench.graph.inputs()) {
      st.inputs[in] = rng.NextGaussianInt(16.0);
    }
    bench.stimuli.push_back(std::move(st));
  }
  // The branch probability is the experiment's parameter — do not profile.
  return bench;
}

}  // namespace ws
