// Canonical JSON rendering of scheduler performance over the Table-1 suite.
//
// This is the repo's perf-trajectory artifact: `tools/bench_to_json` (and
// `bench_micro --ws_json`) time every suite benchmark under every
// speculation mode, collect the per-phase `ScheduleStats` counters, and
// render one JSON document. Committed snapshots live in `BENCH_sched.json`
// at the repo root so before/after comparisons survive across PRs.
//
// Wall times are the *minimum* over `repetitions` runs (minimum is the
// standard noise-robust estimator for a deterministic workload); the stats
// counters are taken from the same run and are themselves deterministic.
#ifndef WS_SUITE_BENCH_JSON_H
#define WS_SUITE_BENCH_JSON_H

#include <cstdint>
#include <string>

#include "base/status.h"

namespace ws {

struct BenchJsonOptions {
  // Timed repetitions per (benchmark, mode) cell; the minimum wall time wins.
  int repetitions = 5;
  // Suite construction parameters (stimuli are irrelevant to scheduling time
  // but part of the Benchmark bundle).
  int num_stimuli = 2;
  std::uint64_t seed = 7;
  // Intra-run wave-loop threads handed to every timed Schedule call
  // (SchedulerOptions::wave_workers). Recorded in the document's config
  // block: a timing delta only means something when compared at the same
  // worker count. Results are byte-identical at any setting, so the stats
  // counters never move with this knob — only the wall times do.
  int wave_workers = 0;
  // Free-form tag recorded in the document, e.g. "baseline" or a git SHA.
  std::string label = "current";
};

// Schedules every suite benchmark under every speculation mode and renders
// the timings + ScheduleStats as a canonical JSON object (stable key order,
// LF line endings). Returns an error if any scheduling run fails.
Result<std::string> RenderBenchJson(const BenchJsonOptions& options);

// RenderBenchJson + write to `path`. Creates/overwrites the file.
Status WriteBenchJson(const BenchJsonOptions& options,
                      const std::string& path);

}  // namespace ws

#endif  // WS_SUITE_BENCH_JSON_H
