#include "bdd/bdd.h"

#include <algorithm>
#include <cmath>

#include "base/strings.h"

namespace ws {

BddManager::BddManager() {
  // Node 0 = constant false, node 1 = constant true.
  nodes_.push_back({kTerminalVar, 0, 0});
  nodes_.push_back({kTerminalVar, 1, 1});
}

int BddManager::NewVar(const std::string& name) {
  var_names_.push_back(name);
  return static_cast<int>(var_names_.size()) - 1;
}

const std::string& BddManager::var_name(int var) const {
  WS_CHECK(var >= 0 && var < num_vars());
  return var_names_[static_cast<std::size_t>(var)];
}

Bdd BddManager::Var(int var) {
  WS_CHECK(var >= 0 && var < num_vars());
  return Bdd(MakeNode(var, 0, 1));
}

Bdd BddManager::NotVar(int var) {
  WS_CHECK(var >= 0 && var < num_vars());
  return Bdd(MakeNode(var, 1, 0));
}

std::uint32_t BddManager::MakeNode(int var, std::uint32_t low,
                                   std::uint32_t high) {
  if (low == high) return low;  // reduction rule
  const auto key = std::make_tuple(var, low, high);
  auto it = unique_.find(key);
  if (it != unique_.end()) return it->second;
  const auto index = static_cast<std::uint32_t>(nodes_.size());
  nodes_.push_back({var, low, high});
  unique_.emplace(key, index);
  return index;
}

Bdd BddManager::And(Bdd a, Bdd b) { return Ite(a, b, False()); }
Bdd BddManager::Or(Bdd a, Bdd b) { return Ite(a, True(), b); }
Bdd BddManager::Not(Bdd a) { return Ite(a, False(), True()); }
Bdd BddManager::Xor(Bdd a, Bdd b) { return Ite(a, Not(b), b); }
Bdd BddManager::Implies(Bdd a, Bdd b) { return Ite(a, b, True()); }

Bdd BddManager::Ite(Bdd f, Bdd g, Bdd h) {
  WS_CHECK(f.valid() && g.valid() && h.valid());
  ++num_ops_;
  return Bdd(IteRec(f.index(), g.index(), h.index()));
}

std::uint32_t BddManager::IteRec(std::uint32_t f, std::uint32_t g,
                                 std::uint32_t h) {
  // Terminal cases.
  if (f == 1) return g;
  if (f == 0) return h;
  if (g == h) return g;
  if (g == 1 && h == 0) return f;

  const auto key = std::make_tuple(f, g, h);
  auto it = ite_cache_.find(key);
  if (it != ite_cache_.end()) return it->second;

  const int vf = var_of(f);
  const int vg = var_of(g);
  const int vh = var_of(h);
  const int top = std::min({vf, vg, vh});

  const std::uint32_t f0 = (vf == top) ? nodes_[f].low : f;
  const std::uint32_t f1 = (vf == top) ? nodes_[f].high : f;
  const std::uint32_t g0 = (vg == top) ? nodes_[g].low : g;
  const std::uint32_t g1 = (vg == top) ? nodes_[g].high : g;
  const std::uint32_t h0 = (vh == top) ? nodes_[h].low : h;
  const std::uint32_t h1 = (vh == top) ? nodes_[h].high : h;

  const std::uint32_t low = IteRec(f0, g0, h0);
  const std::uint32_t high = IteRec(f1, g1, h1);
  const std::uint32_t result = MakeNode(top, low, high);
  ite_cache_.emplace(key, result);
  return result;
}

Bdd BddManager::AndAll(const std::vector<Bdd>& fs) {
  Bdd acc = True();
  for (Bdd f : fs) acc = And(acc, f);
  return acc;
}

Bdd BddManager::OrAll(const std::vector<Bdd>& fs) {
  Bdd acc = False();
  for (Bdd f : fs) acc = Or(acc, f);
  return acc;
}

Bdd BddManager::Restrict(Bdd f, int var, bool value) {
  ++num_ops_;
  std::unordered_map<std::uint32_t, std::uint32_t> memo;
  return Bdd(RestrictRec(f.index(), var, value, memo));
}

std::uint32_t BddManager::RestrictRec(
    std::uint32_t f, int var, bool value,
    std::unordered_map<std::uint32_t, std::uint32_t>& memo) {
  if (f <= 1) return f;
  const int v = var_of(f);
  if (v > var) return f;  // var does not occur below this node
  auto it = memo.find(f);
  if (it != memo.end()) return it->second;
  std::uint32_t result;
  if (v == var) {
    result = value ? nodes_[f].high : nodes_[f].low;
  } else {
    const std::uint32_t low = RestrictRec(nodes_[f].low, var, value, memo);
    const std::uint32_t high = RestrictRec(nodes_[f].high, var, value, memo);
    result = MakeNode(v, low, high);
  }
  memo.emplace(f, result);
  return result;
}

Bdd BddManager::RestrictAll(
    Bdd f, const std::vector<std::pair<int, bool>>& assignment) {
  Bdd out = f;
  for (const auto& [var, value] : assignment) out = Restrict(out, var, value);
  return out;
}

bool BddManager::Covers(Bdd b, Bdd a) { return IsFalse(And(a, Not(b))); }

bool BddManager::Eval(Bdd f,
                      const std::unordered_map<int, bool>& values) const {
  std::uint32_t n = f.index();
  while (n > 1) {
    auto it = values.find(var_of(n));
    const bool v = (it != values.end()) && it->second;
    n = v ? nodes_[n].high : nodes_[n].low;
  }
  return n == 1;
}

std::vector<int> BddManager::Support(Bdd f) const {
  std::vector<int> vars;
  std::vector<std::uint32_t> stack{f.index()};
  std::unordered_map<std::uint32_t, bool> seen;
  while (!stack.empty()) {
    const std::uint32_t n = stack.back();
    stack.pop_back();
    if (n <= 1 || seen[n]) continue;
    seen[n] = true;
    vars.push_back(var_of(n));
    stack.push_back(nodes_[n].low);
    stack.push_back(nodes_[n].high);
  }
  std::sort(vars.begin(), vars.end());
  vars.erase(std::unique(vars.begin(), vars.end()), vars.end());
  return vars;
}

double BddManager::Probability(Bdd f,
                               const std::vector<double>& prob_true) const {
  std::unordered_map<std::uint32_t, double> memo;
  return ProbRec(f.index(), prob_true, memo);
}

double BddManager::ProbRec(std::uint32_t f,
                           const std::vector<double>& prob_true,
                           std::unordered_map<std::uint32_t, double>& memo)
    const {
  if (f == 0) return 0.0;
  if (f == 1) return 1.0;
  auto it = memo.find(f);
  if (it != memo.end()) return it->second;
  const int v = var_of(f);
  const double p =
      (v < static_cast<int>(prob_true.size())) ? prob_true[v] : 0.5;
  const double result = p * ProbRec(nodes_[f].high, prob_true, memo) +
                        (1.0 - p) * ProbRec(nodes_[f].low, prob_true, memo);
  memo.emplace(f, result);
  return result;
}

double BddManager::SatCount(Bdd f, int num_vars) const {
  // P(f) under uniform probabilities times 2^num_vars.
  std::vector<double> half(static_cast<std::size_t>(num_vars), 0.5);
  std::unordered_map<std::uint32_t, double> memo;
  const double p = ProbRec(f.index(), half, memo);
  return p * std::pow(2.0, num_vars);
}

Bdd BddManager::Rename(Bdd f, const std::unordered_map<int, int>& var_map) {
  // Rebuild bottom-up through ITE so order-changing maps stay canonical.
  std::unordered_map<std::uint32_t, Bdd> memo;
  // Recursive lambda.
  auto rec = [&](auto&& self, std::uint32_t n) -> Bdd {
    if (n == 0) return False();
    if (n == 1) return True();
    auto it = memo.find(n);
    if (it != memo.end()) return it->second;
    const int old_var = var_of(n);
    auto mapped = var_map.find(old_var);
    const int new_var = (mapped != var_map.end()) ? mapped->second : old_var;
    WS_CHECK(new_var >= 0 && new_var < num_vars());
    const Bdd low = self(self, nodes_[n].low);
    const Bdd high = self(self, nodes_[n].high);
    const Bdd result = Ite(Var(new_var), high, low);
    memo.emplace(n, result);
    return result;
  };
  return rec(rec, f.index());
}

std::vector<BddCube> BddManager::ToSop(Bdd f) const {
  std::vector<BddCube> cubes;
  std::vector<std::pair<int, bool>> path;
  auto rec = [&](auto&& self, std::uint32_t n) -> void {
    if (n == 0) return;
    if (n == 1) {
      cubes.push_back(BddCube{path});
      return;
    }
    path.emplace_back(var_of(n), false);
    self(self, nodes_[n].low);
    path.back().second = true;
    self(self, nodes_[n].high);
    path.pop_back();
  };
  rec(rec, f.index());
  return cubes;
}

std::string BddManager::ToString(Bdd f) const {
  if (IsFalse(f)) return "0";
  if (IsTrue(f)) return "1";
  const auto cubes = ToSop(f);
  std::vector<std::string> terms;
  terms.reserve(cubes.size());
  for (const auto& cube : cubes) {
    std::vector<std::string> lits;
    lits.reserve(cube.literals.size());
    for (const auto& [var, pos] : cube.literals) {
      lits.push_back((pos ? "" : "!") + var_name(var));
    }
    const std::string body = Join(lits, " & ");
    terms.push_back(cubes.size() > 1 && lits.size() > 1 ? "(" + body + ")"
                                                        : body);
  }
  return Join(terms, " | ");
}

}  // namespace ws
