#include "bdd/bdd.h"

#include <algorithm>
#include <cmath>

#include "base/hashing.h"
#include "base/strings.h"

namespace ws {
namespace {

// Initial capacities for the flat tables and the node store. Sized so a
// typical scheduling run (a few thousand nodes) never rehashes; power of two
// is a table invariant.
constexpr std::size_t kInitialUniqueCapacity = 1u << 12;
constexpr std::size_t kInitialIteCapacity = 1u << 12;
constexpr std::size_t kInitialNodeReserve = 1u << 12;

// Grow when a table passes 70% load: linear probing stays short and the
// doubling cadence keeps rehash cost amortized O(1) per insert.
constexpr bool NeedsGrow(std::size_t size, std::size_t capacity) {
  return size * 10 >= capacity * 7;
}

}  // namespace

BddManager::BddManager() {
  nodes_.reserve(kInitialNodeReserve);
  // Node 0 = constant false, node 1 = constant true.
  nodes_.push_back({kTerminalVar, 0, 0});
  nodes_.push_back({kTerminalVar, 1, 1});
  unique_slots_.assign(kInitialUniqueCapacity, kEmptySlot);
  ite_slots_.assign(kInitialIteCapacity, IteEntry{});
}

void BddManager::Reset() {
  nodes_.resize(2);  // the two terminals; capacity is retained
  var_names_.clear();
  var_in_use_.clear();
  num_ops_ = 0;
  std::fill(unique_slots_.begin(), unique_slots_.end(), kEmptySlot);
  unique_size_ = 0;
  std::fill(ite_slots_.begin(), ite_slots_.end(), IteEntry{});
  ite_size_ = 0;
  // The node-indexed scratch memo needs no clearing: stamps older than
  // memo_epoch_ are already invalid, and its size only ever needs to cover
  // the current node count, which just shrank.
}

int BddManager::NewVar(const std::string& name) {
  var_names_.push_back(name);
  return static_cast<int>(var_names_.size()) - 1;
}

const std::string& BddManager::var_name(int var) const {
  WS_CHECK(var >= 0 && var < num_vars());
  return var_names_[static_cast<std::size_t>(var)];
}

Bdd BddManager::Var(int var) {
  WS_CHECK(var >= 0 && var < num_vars());
  return Bdd(MakeNode(var, 0, 1));
}

Bdd BddManager::NotVar(int var) {
  WS_CHECK(var >= 0 && var < num_vars());
  return Bdd(MakeNode(var, 1, 0));
}

void BddManager::GrowUnique() {
  std::vector<std::uint32_t> old = std::move(unique_slots_);
  unique_slots_.assign(old.size() * 2, kEmptySlot);
  const std::size_t mask = unique_slots_.size() - 1;
  for (const std::uint32_t n : old) {
    if (n == kEmptySlot) continue;
    const Node& node = nodes_[n];
    std::size_t i = Hash3(static_cast<std::uint32_t>(node.var), node.low,
                          node.high) &
                    mask;
    while (unique_slots_[i] != kEmptySlot) i = (i + 1) & mask;
    unique_slots_[i] = n;
  }
}

std::uint32_t BddManager::MakeNode(int var, std::uint32_t low,
                                   std::uint32_t high) {
  if (low == high) return low;  // reduction rule
  if (NeedsGrow(unique_size_, unique_slots_.size())) GrowUnique();
  const std::size_t mask = unique_slots_.size() - 1;
  std::size_t i =
      Hash3(static_cast<std::uint32_t>(var), low, high) & mask;
  for (;;) {
    const std::uint32_t slot = unique_slots_[i];
    if (slot == kEmptySlot) break;
    const Node& node = nodes_[slot];
    if (node.var == var && node.low == low && node.high == high) return slot;
    i = (i + 1) & mask;
  }
  const auto index = static_cast<std::uint32_t>(nodes_.size());
  nodes_.push_back({var, low, high});
  unique_slots_[i] = index;
  ++unique_size_;
  if (static_cast<std::size_t>(var) >= var_in_use_.size()) {
    var_in_use_.resize(static_cast<std::size_t>(var) + 1, 0);
  }
  var_in_use_[static_cast<std::size_t>(var)] = 1;
  return index;
}

Bdd BddManager::And(Bdd a, Bdd b) { return Ite(a, b, False()); }
Bdd BddManager::Or(Bdd a, Bdd b) { return Ite(a, True(), b); }
Bdd BddManager::Not(Bdd a) { return Ite(a, False(), True()); }
Bdd BddManager::Xor(Bdd a, Bdd b) { return Ite(a, Not(b), b); }
Bdd BddManager::Implies(Bdd a, Bdd b) { return Ite(a, b, True()); }

Bdd BddManager::Ite(Bdd f, Bdd g, Bdd h) {
  WS_CHECK(f.valid() && g.valid() && h.valid());
  ++num_ops_;
  return Bdd(IteRec(f.index(), g.index(), h.index()));
}

void BddManager::GrowIte() {
  std::vector<IteEntry> old = std::move(ite_slots_);
  ite_slots_.assign(old.size() * 2, IteEntry{});
  const std::size_t mask = ite_slots_.size() - 1;
  for (const IteEntry& e : old) {
    if (e.f == kEmptySlot) continue;
    std::size_t i = Hash3(e.f, e.g, e.h) & mask;
    while (ite_slots_[i].f != kEmptySlot) i = (i + 1) & mask;
    ite_slots_[i] = e;
  }
}

std::uint32_t BddManager::IteRec(std::uint32_t f, std::uint32_t g,
                                 std::uint32_t h) {
  // Terminal cases.
  if (f == 1) return g;
  if (f == 0) return h;
  if (g == h) return g;
  if (g == 1 && h == 0) return f;

  {
    const std::size_t mask = ite_slots_.size() - 1;
    std::size_t i = Hash3(f, g, h) & mask;
    for (;;) {
      const IteEntry& e = ite_slots_[i];
      if (e.f == kEmptySlot) break;
      if (e.f == f && e.g == g && e.h == h) return e.result;
      i = (i + 1) & mask;
    }
  }

  const int vf = var_of(f);
  const int vg = var_of(g);
  const int vh = var_of(h);
  const int top = std::min({vf, vg, vh});

  const std::uint32_t f0 = (vf == top) ? nodes_[f].low : f;
  const std::uint32_t f1 = (vf == top) ? nodes_[f].high : f;
  const std::uint32_t g0 = (vg == top) ? nodes_[g].low : g;
  const std::uint32_t g1 = (vg == top) ? nodes_[g].high : g;
  const std::uint32_t h0 = (vh == top) ? nodes_[h].low : h;
  const std::uint32_t h1 = (vh == top) ? nodes_[h].high : h;

  const std::uint32_t low = IteRec(f0, g0, h0);
  const std::uint32_t high = IteRec(f1, g1, h1);
  const std::uint32_t result = MakeNode(top, low, high);

  // Re-probe: the recursive calls may have grown/rehashed the cache.
  if (NeedsGrow(ite_size_, ite_slots_.size())) GrowIte();
  const std::size_t mask = ite_slots_.size() - 1;
  std::size_t i = Hash3(f, g, h) & mask;
  while (ite_slots_[i].f != kEmptySlot) i = (i + 1) & mask;
  ite_slots_[i] = IteEntry{f, g, h, result};
  ++ite_size_;
  return result;
}

Bdd BddManager::AndAll(const std::vector<Bdd>& fs) {
  // Balanced pairwise reduction (see header). Scratch is a member so the
  // scheduler's per-candidate calls do not allocate in steady state.
  if (fs.empty()) return True();
  reduce_scratch_.assign(fs.begin(), fs.end());
  std::size_t n = reduce_scratch_.size();
  while (n > 1) {
    std::size_t out = 0;
    for (std::size_t i = 0; i + 1 < n; i += 2) {
      reduce_scratch_[out++] =
          And(reduce_scratch_[i], reduce_scratch_[i + 1]);
    }
    if (n % 2 == 1) reduce_scratch_[out++] = reduce_scratch_[n - 1];
    n = out;
  }
  return reduce_scratch_[0];
}

Bdd BddManager::OrAll(const std::vector<Bdd>& fs) {
  if (fs.empty()) return False();
  reduce_scratch_.assign(fs.begin(), fs.end());
  std::size_t n = reduce_scratch_.size();
  while (n > 1) {
    std::size_t out = 0;
    for (std::size_t i = 0; i + 1 < n; i += 2) {
      reduce_scratch_[out++] = Or(reduce_scratch_[i], reduce_scratch_[i + 1]);
    }
    if (n % 2 == 1) reduce_scratch_[out++] = reduce_scratch_[n - 1];
    n = out;
  }
  return reduce_scratch_[0];
}

void BddManager::BeginMemoEpoch(std::size_t min_nodes) {
  ++memo_epoch_;
  if (memo_epoch_ == 0) {
    // Stamp wrap-around: every stale stamp could now alias the live epoch.
    // Reset (happens once per 2^32 epochs).
    std::fill(memo_stamp_.begin(), memo_stamp_.end(), 0u);
    memo_epoch_ = 1;
  }
  const std::size_t need = std::max(nodes_.size(), min_nodes);
  if (memo_stamp_.size() < need) {
    memo_stamp_.resize(need, 0u);
    memo_value_.resize(need);
  }
}

void BddManager::BeginMigrateEpoch(std::size_t src_nodes) {
  ++migrate_epoch_;
  if (migrate_epoch_ == 0) {
    std::fill(migrate_stamp_.begin(), migrate_stamp_.end(), 0u);
    migrate_epoch_ = 1;
  }
  if (migrate_stamp_.size() < src_nodes) {
    migrate_stamp_.resize(src_nodes, 0u);
    migrate_value_.resize(src_nodes);
  }
}

Bdd BddManager::Restrict(Bdd f, int var, bool value) {
  ++num_ops_;
  BeginMemoEpoch();
  return Bdd(RestrictRec(f.index(), var, value));
}

std::uint32_t BddManager::RestrictRec(std::uint32_t f, int var, bool value) {
  if (f <= 1) return f;
  const int v = var_of(f);
  if (v > var) return f;  // var does not occur below this node
  if (memo_stamp_[f] == memo_epoch_) return memo_value_[f];
  std::uint32_t result;
  if (v == var) {
    result = value ? nodes_[f].high : nodes_[f].low;
  } else {
    const std::uint32_t low = RestrictRec(nodes_[f].low, var, value);
    const std::uint32_t high = RestrictRec(nodes_[f].high, var, value);
    result = MakeNode(v, low, high);
  }
  memo_stamp_[f] = memo_epoch_;
  memo_value_[f] = result;
  return result;
}

Bdd BddManager::RestrictAll(
    Bdd f, const std::vector<std::pair<int, bool>>& assignment) {
  Bdd out = f;
  for (const auto& [var, value] : assignment) out = Restrict(out, var, value);
  return out;
}

bool BddManager::Covers(Bdd b, Bdd a) { return IsFalse(And(a, Not(b))); }

bool BddManager::Eval(Bdd f,
                      const std::unordered_map<int, bool>& values) const {
  std::uint32_t n = f.index();
  while (n > 1) {
    auto it = values.find(var_of(n));
    const bool v = (it != values.end()) && it->second;
    n = v ? nodes_[n].high : nodes_[n].low;
  }
  return n == 1;
}

std::vector<int> BddManager::Support(Bdd f) const {
  std::vector<int> vars;
  std::vector<std::uint32_t> stack{f.index()};
  std::unordered_map<std::uint32_t, bool> seen;
  while (!stack.empty()) {
    const std::uint32_t n = stack.back();
    stack.pop_back();
    if (n <= 1 || seen[n]) continue;
    seen[n] = true;
    vars.push_back(var_of(n));
    stack.push_back(nodes_[n].low);
    stack.push_back(nodes_[n].high);
  }
  std::sort(vars.begin(), vars.end());
  vars.erase(std::unique(vars.begin(), vars.end()), vars.end());
  return vars;
}

double BddManager::Probability(Bdd f,
                               const std::vector<double>& prob_true) const {
  std::unordered_map<std::uint32_t, double> memo;
  return ProbRec(f.index(), prob_true, memo);
}

double BddManager::ProbRec(std::uint32_t f,
                           const std::vector<double>& prob_true,
                           std::unordered_map<std::uint32_t, double>& memo)
    const {
  if (f == 0) return 0.0;
  if (f == 1) return 1.0;
  auto it = memo.find(f);
  if (it != memo.end()) return it->second;
  const int v = var_of(f);
  const double p =
      (v < static_cast<int>(prob_true.size())) ? prob_true[v] : 0.5;
  const double result = p * ProbRec(nodes_[f].high, prob_true, memo) +
                        (1.0 - p) * ProbRec(nodes_[f].low, prob_true, memo);
  memo.emplace(f, result);
  return result;
}

double BddManager::SatCount(Bdd f, int num_vars) const {
  // P(f) under uniform probabilities times 2^num_vars.
  std::vector<double> half(static_cast<std::size_t>(num_vars), 0.5);
  std::unordered_map<std::uint32_t, double> memo;
  const double p = ProbRec(f.index(), half, memo);
  return p * std::pow(2.0, num_vars);
}

Bdd BddManager::Rename(Bdd f, const std::unordered_map<int, int>& var_map) {
  // Adapter over the dense-map implementation.
  std::vector<int> dense(static_cast<std::size_t>(num_vars()), -1);
  for (const auto& [from, to] : var_map) {
    WS_CHECK(from >= 0 && from < num_vars());
    dense[static_cast<std::size_t>(from)] = to;
  }
  return RenameDense(f, dense, /*fresh_map=*/true);
}

Bdd BddManager::RenameDense(Bdd f, const std::vector<int>& var_map,
                            bool fresh_map) {
  // Rebuild bottom-up through ITE so order-changing maps stay canonical.
  ++num_ops_;
  if (fresh_map) BeginMemoEpoch();
  return Bdd(RenameDenseRec(f.index(), var_map));
}

std::uint32_t BddManager::RenameDenseRec(std::uint32_t n,
                                         const std::vector<int>& var_map) {
  if (n <= 1) return n;
  if (memo_stamp_[n] == memo_epoch_) return memo_value_[n];
  const int old_var = var_of(n);
  const int mapped = (static_cast<std::size_t>(old_var) < var_map.size())
                         ? var_map[static_cast<std::size_t>(old_var)]
                         : -1;
  const int new_var = (mapped >= 0) ? mapped : old_var;
  WS_CHECK(new_var >= 0 && new_var < num_vars());
  const std::uint32_t low = RenameDenseRec(nodes_[n].low, var_map);
  const std::uint32_t high = RenameDenseRec(nodes_[n].high, var_map);
  const std::uint32_t result =
      IteRec(MakeNode(new_var, 0, 1), high, low);
  memo_stamp_[n] = memo_epoch_;
  memo_value_[n] = result;
  return result;
}

Bdd BddManager::Migrate(const BddManager& src, Bdd f,
                        const std::vector<int>& var_map, bool fresh_map) {
  WS_CHECK(&src != this);
  ++num_ops_;
  // The memo is keyed by *source* node index: size it for the source store.
  if (fresh_map) BeginMigrateEpoch(src.nodes_.size());
  return Bdd(MigrateRec(src, f.index(), var_map));
}

std::uint32_t BddManager::MigrateRec(const BddManager& src, std::uint32_t n,
                                     const std::vector<int>& var_map) {
  // Terminal indices coincide across managers (0 = false, 1 = true).
  if (n <= 1) return n;
  if (migrate_stamp_[n] == migrate_epoch_) return migrate_value_[n];
  const int src_var = src.var_of(n);
  WS_CHECK(static_cast<std::size_t>(src_var) < var_map.size());
  const int new_var = var_map[static_cast<std::size_t>(src_var)];
  WS_CHECK(new_var >= 0 && new_var < num_vars());
  const std::uint32_t low = MigrateRec(src, src.nodes_[n].low, var_map);
  const std::uint32_t high = MigrateRec(src, src.nodes_[n].high, var_map);
  // Rebuild through ITE (as RenameDenseRec does) so maps that change the
  // relative variable order still produce the canonical ROBDD here.
  const std::uint32_t result = IteRec(MakeNode(new_var, 0, 1), high, low);
  migrate_stamp_[n] = migrate_epoch_;
  migrate_value_[n] = result;
  return result;
}

Bdd BddManager::Copy(const BddManager& src, Bdd f, bool fresh_map) {
  WS_CHECK(&src != this);
  ++num_ops_;
  if (fresh_map) BeginMigrateEpoch(src.nodes_.size());
  return Bdd(CopyRec(src, f.index()));
}

std::uint32_t BddManager::CopyRec(const BddManager& src, std::uint32_t n) {
  if (n <= 1) return n;
  if (migrate_stamp_[n] == migrate_epoch_) return migrate_value_[n];
  const std::uint32_t low = CopyRec(src, src.nodes_[n].low);
  const std::uint32_t high = CopyRec(src, src.nodes_[n].high);
  const int var = src.var_of(n);
  WS_CHECK(var < num_vars());
  // Identity variable map: the source graph's order is this manager's
  // order, so the plain structural copy is already the canonical ROBDD.
  const std::uint32_t result = MakeNode(var, low, high);
  migrate_stamp_[n] = migrate_epoch_;
  migrate_value_[n] = result;
  return result;
}

std::vector<BddCube> BddManager::ToSop(Bdd f) const {
  std::vector<BddCube> cubes;
  std::vector<std::pair<int, bool>> path;
  auto rec = [&](auto&& self, std::uint32_t n) -> void {
    if (n == 0) return;
    if (n == 1) {
      cubes.push_back(BddCube{path});
      return;
    }
    path.emplace_back(var_of(n), false);
    self(self, nodes_[n].low);
    path.back().second = true;
    self(self, nodes_[n].high);
    path.pop_back();
  };
  rec(rec, f.index());
  return cubes;
}

std::string BddManager::ToString(Bdd f) const {
  if (IsFalse(f)) return "0";
  if (IsTrue(f)) return "1";
  const auto cubes = ToSop(f);
  std::vector<std::string> terms;
  terms.reserve(cubes.size());
  for (const auto& cube : cubes) {
    std::vector<std::string> lits;
    lits.reserve(cube.literals.size());
    for (const auto& [var, pos] : cube.literals) {
      lits.push_back((pos ? "" : "!") + var_name(var));
    }
    const std::string body = Join(lits, " & ");
    terms.push_back(cubes.size() > 1 && lits.size() > 1 ? "(" + body + ")"
                                                        : body);
  }
  return Join(terms, " | ");
}

}  // namespace ws
