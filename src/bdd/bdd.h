// A reduced ordered binary decision diagram (ROBDD) package.
//
// Speculation guards in the scheduler are Boolean functions over the results
// of conditional-operation instances (the paper's c_i variables). Guards are
// not just conjunctions — e.g. ">=1_1 / (c1_0 OR c2_0)" appears in the
// paper's GCD walkthrough — so we manipulate them as ROBDDs: canonical,
// cheap to conjoin/cofactor, and they support exact probability evaluation
// P(f) given independent per-variable probabilities (used by the criticality
// heuristic, Eq. 5, and by the Markov-chain expected-cycle analysis).
//
// Design notes:
//  * No complement edges, no garbage collection: managers are short-lived
//    (one per scheduling run) and the graphs involved are tiny by BDD
//    standards, so a monotonically growing node table keeps the code simple.
//  * Variable order equals variable creation order.
//  * The unique table and the ITE cache are open-addressed flat tables
//    (power-of-two capacity, linear probing, SplitMix64-grade mixing from
//    base/hashing.h) rather than std::unordered_map: the scheduler hammers
//    MakeNode/IteRec in its inner loop and the node-per-bucket allocation,
//    pointer chasing and weak tuple hashing of the map versions dominated
//    its profile. The unique table stores bare node indices (the key is
//    re-read from the node store), the ITE cache stores 16-byte entries;
//    both grow by doubling and never shrink.
#ifndef WS_BDD_BDD_H
#define WS_BDD_BDD_H

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/status.h"

namespace ws {

class BddManager;

// A handle to a BDD node. Value-semantic; only meaningful with the manager
// that produced it. Handles are canonical: two equal handles from the same
// manager denote the same Boolean function.
class Bdd {
 public:
  Bdd() : index_(kInvalid) {}

  [[nodiscard]] bool valid() const { return index_ != kInvalid; }
  [[nodiscard]] std::uint32_t index() const { return index_; }

  friend bool operator==(Bdd a, Bdd b) { return a.index_ == b.index_; }
  friend bool operator!=(Bdd a, Bdd b) { return a.index_ != b.index_; }
  friend bool operator<(Bdd a, Bdd b) { return a.index_ < b.index_; }

 private:
  friend class BddManager;
  static constexpr std::uint32_t kInvalid = 0xffffffffu;
  explicit Bdd(std::uint32_t index) : index_(index) {}
  std::uint32_t index_;
};

// A conjunction/product term: (variable, polarity) literals, sorted by
// variable. Used when exporting functions as sum-of-products covers.
struct BddCube {
  // (var, true for positive literal).
  std::vector<std::pair<int, bool>> literals;
};

// The node store and operation engine.
class BddManager {
 public:
  BddManager();

  // Returns the manager to its just-constructed state while keeping every
  // table's and the node store's capacity. The scheduler's wave loop
  // recycles per-branch sub-arenas through a pool; reallocating the flat
  // tables for every frontier state was measurable.
  void Reset();

  // --- Variables -----------------------------------------------------------

  // Creates a fresh variable, ordered after all existing ones. `name` is used
  // only for printing.
  int NewVar(const std::string& name);

  int num_vars() const { return static_cast<int>(var_names_.size()); }
  const std::string& var_name(int var) const;

  // True iff a node labeled `var` has ever been created, i.e. the variable
  // can appear in some live function. Registered-but-unused variables (the
  // wave loop's identity import registers the whole main registry) always
  // cofactor to a no-op, which callers use to skip whole sweeps.
  bool VarInUse(int var) const {
    return static_cast<std::size_t>(var) < var_in_use_.size() &&
           var_in_use_[static_cast<std::size_t>(var)] != 0;
  }

  // --- Constants and literals ----------------------------------------------

  Bdd True() const { return Bdd(1); }
  Bdd False() const { return Bdd(0); }
  Bdd Var(int var);      // the function "var"
  Bdd NotVar(int var);   // the function "!var"

  // --- Boolean operations ---------------------------------------------------

  Bdd And(Bdd a, Bdd b);
  Bdd Or(Bdd a, Bdd b);
  Bdd Not(Bdd a);
  Bdd Xor(Bdd a, Bdd b);
  Bdd Implies(Bdd a, Bdd b);
  Bdd Ite(Bdd f, Bdd g, Bdd h);

  // Variadic conveniences. Reduced as a balanced tree, not a left fold: deep
  // guard conjunctions otherwise degenerate into skewed ITE chains whose
  // intermediate results defeat the ITE cache. The result is identical
  // either way (AND/OR are associative and ROBDDs are canonical).
  Bdd AndAll(const std::vector<Bdd>& fs);
  Bdd OrAll(const std::vector<Bdd>& fs);

  // --- Queries ---------------------------------------------------------------

  bool IsTrue(Bdd f) const { return f == True(); }
  bool IsFalse(Bdd f) const { return f == False(); }

  // f restricted with var := value (Shannon cofactor). The memo table is a
  // node-indexed epoch-stamped member reused across calls — the per-fork
  // cofactor sweep in the scheduler calls this in a tight loop.
  Bdd Restrict(Bdd f, int var, bool value);

  // Simultaneous restriction by a partial assignment (var -> value).
  Bdd RestrictAll(Bdd f, const std::vector<std::pair<int, bool>>& assignment);

  // True iff a => b (i.e. a AND NOT b == false).
  bool Covers(Bdd b, Bdd a);

  // Evaluates f under a total assignment over its support. Variables missing
  // from `values` default to false.
  bool Eval(Bdd f, const std::unordered_map<int, bool>& values) const;

  // The set of variables f depends on, ascending.
  std::vector<int> Support(Bdd f) const;

  // P(f = 1) when variable v is independently true with probability
  // `prob_true[v]` (vector indexed by variable; missing entries => 0.5).
  double Probability(Bdd f, const std::vector<double>& prob_true) const;

  // Number of satisfying assignments over the first `num_vars` variables.
  double SatCount(Bdd f, int num_vars) const;

  // Rebuilds f with variables renamed per `var_map` (old var -> new var).
  // Variables absent from the map are kept. Handles arbitrary (even
  // order-changing) maps.
  Bdd Rename(Bdd f, const std::unordered_map<int, int>& var_map);

  // Rename with a dense map: variable v maps to var_map[v]; entries < 0 (or
  // past the end) mean "keep v". The allocation-light variant used by the
  // scheduler's shift-canonical state fingerprinting, which renames every
  // live guard once per closure probe: the memo is a node-indexed
  // epoch-stamped member shared across consecutive calls with the same map
  // (`fresh_map` starts a new epoch).
  Bdd RenameDense(Bdd f, const std::vector<int>& var_map, bool fresh_map);

  // Copies `f` — a function owned by `src` — into this manager, with every
  // source variable v replaced by this manager's variable var_map[v] (dense,
  // indexed by source variable; every variable in f's support must map to a
  // valid variable here). Rebuilt bottom-up through ITE, so maps that change
  // relative variable order still yield the canonical ROBDD. The memo is a
  // dedicated epoch-stamped scratch keyed by *source* node index, shared
  // across calls with the same (src, var_map) (`fresh_map` starts a new
  // epoch) — the scheduler migrates a whole commit's leaves in one epoch,
  // and native operations (Restrict/RenameDense, closure probes) may freely
  // interleave without disturbing it. `src` must not be this manager and
  // must not mutate between calls of a shared epoch.
  Bdd Migrate(const BddManager& src, Bdd f, const std::vector<int>& var_map,
              bool fresh_map);

  // Migrate's fast path for the identity variable map: copies `f` from `src`
  // with every variable keeping its index, which must preserve the relative
  // variable order (true whenever this manager's variables 0..k are the same
  // variables, in the same order, as src's — the wave loop's identity import
  // discipline). The source ROBDD is then already canonically ordered here,
  // so one structural MakeNode pass per source node replaces the ITE
  // rebuild. Memo/epoch semantics are exactly Migrate's.
  Bdd Copy(const BddManager& src, Bdd f, bool fresh_map);

  // A disjoint sum-of-products cover of f (one cube per 1-path of the BDD).
  // Deterministic for a given manager, so usable in canonical signatures.
  std::vector<BddCube> ToSop(Bdd f) const;

  // Human-readable rendering, e.g. "(c1_0 & !c2_0) | (c1_1)".
  // Returns "1"/"0" for constants.
  std::string ToString(Bdd f) const;

  // Node count statistics (for microbenchmarks / tests).
  std::size_t num_nodes() const { return nodes_.size(); }

  // Number of Boolean operations performed so far: every top-level
  // Ite/Restrict/Rename call (And/Or/Not/Xor/Implies funnel through Ite).
  // Scheduling instrumentation reads this to attribute work to BDD
  // manipulation.
  std::uint64_t num_ops() const { return num_ops_; }

 private:
  struct Node {
    int var;             // variable index; terminals use var = kTerminalVar
    std::uint32_t low;   // var = 0 child
    std::uint32_t high;  // var = 1 child
  };
  static constexpr int kTerminalVar = 0x7fffffff;
  // Empty-slot sentinel for the flat tables; never a valid node index
  // (coincides with Bdd::kInvalid).
  static constexpr std::uint32_t kEmptySlot = 0xffffffffu;

  std::uint32_t MakeNode(int var, std::uint32_t low, std::uint32_t high);
  std::uint32_t IteRec(std::uint32_t f, std::uint32_t g, std::uint32_t h);
  std::uint32_t RestrictRec(std::uint32_t f, int var, bool value);
  std::uint32_t RenameDenseRec(std::uint32_t f,
                               const std::vector<int>& var_map);
  std::uint32_t MigrateRec(const BddManager& src, std::uint32_t f,
                           const std::vector<int>& var_map);
  std::uint32_t CopyRec(const BddManager& src, std::uint32_t f);
  double ProbRec(std::uint32_t f, const std::vector<double>& prob_true,
                 std::unordered_map<std::uint32_t, double>& memo) const;

  // Flat-table plumbing.
  void GrowUnique();
  void GrowIte();

  // Starts a fresh epoch of the node-indexed scratch memo (value table
  // `memo_value_` guarded by `memo_stamp_`), sized for the current node
  // count. O(1) amortized: stamps invalidate without clearing.
  void BeginMemoEpoch(std::size_t min_nodes = 0);

  // Same, for the dedicated Migrate/Copy memo. Cross-manager rebuilds key
  // their memo by *source* node index, and their epochs deliberately span
  // interleaved native operations (the scheduler migrates a whole commit's
  // leaves in one epoch, with closure probes in between), so they cannot
  // share the native scratch: a Restrict/RenameDense epoch in the middle
  // would leave stale source-indexed entries aliased to main-indexed ones.
  void BeginMigrateEpoch(std::size_t src_nodes);

  int var_of(std::uint32_t n) const { return nodes_[n].var; }

  std::vector<Node> nodes_;
  std::vector<std::string> var_names_;
  std::vector<char> var_in_use_;  // by variable; see VarInUse
  std::uint64_t num_ops_ = 0;

  // Unique table: open-addressed, power-of-two, linear probing. Slots hold
  // node indices (kEmptySlot = free); the (var, low, high) key lives in
  // nodes_, so the table costs 4 bytes per slot.
  std::vector<std::uint32_t> unique_slots_;
  std::size_t unique_size_ = 0;

  // ITE cache: open-addressed (f, g, h) -> result. Exact (grows instead of
  // evicting) so operation results never get recomputed; 16 bytes per slot.
  struct IteEntry {
    std::uint32_t f = kEmptySlot;
    std::uint32_t g = 0;
    std::uint32_t h = 0;
    std::uint32_t result = 0;
  };
  std::vector<IteEntry> ite_slots_;
  std::size_t ite_size_ = 0;

  // Node-indexed scratch memo shared by Restrict and RenameDense (both
  // traverse only nodes that existed when their epoch began, so entries
  // cannot alias nodes created mid-operation). memo_stamp_[n] == memo_epoch_
  // marks memo_value_[n] live.
  std::vector<std::uint32_t> memo_value_;
  std::vector<std::uint32_t> memo_stamp_;
  std::uint32_t memo_epoch_ = 0;

  // Dedicated Migrate/Copy memo, keyed by source node index (see
  // BeginMigrateEpoch for why it cannot share the scratch above).
  std::vector<std::uint32_t> migrate_value_;
  std::vector<std::uint32_t> migrate_stamp_;
  std::uint32_t migrate_epoch_ = 0;

  // Scratch for the balanced AndAll/OrAll reduction.
  std::vector<Bdd> reduce_scratch_;
};

}  // namespace ws

#endif  // WS_BDD_BDD_H
