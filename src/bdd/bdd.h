// A reduced ordered binary decision diagram (ROBDD) package.
//
// Speculation guards in the scheduler are Boolean functions over the results
// of conditional-operation instances (the paper's c_i variables). Guards are
// not just conjunctions — e.g. ">=1_1 / (c1_0 OR c2_0)" appears in the
// paper's GCD walkthrough — so we manipulate them as ROBDDs: canonical,
// cheap to conjoin/cofactor, and they support exact probability evaluation
// P(f) given independent per-variable probabilities (used by the criticality
// heuristic, Eq. 5, and by the Markov-chain expected-cycle analysis).
//
// Design notes:
//  * No complement edges, no garbage collection: managers are short-lived
//    (one per scheduling run) and the graphs involved are tiny by BDD
//    standards, so a monotonically growing node table keeps the code simple.
//  * Variable order equals variable creation order.
#ifndef WS_BDD_BDD_H
#define WS_BDD_BDD_H

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/status.h"

namespace ws {

class BddManager;

// A handle to a BDD node. Value-semantic; only meaningful with the manager
// that produced it. Handles are canonical: two equal handles from the same
// manager denote the same Boolean function.
class Bdd {
 public:
  Bdd() : index_(kInvalid) {}

  [[nodiscard]] bool valid() const { return index_ != kInvalid; }
  [[nodiscard]] std::uint32_t index() const { return index_; }

  friend bool operator==(Bdd a, Bdd b) { return a.index_ == b.index_; }
  friend bool operator!=(Bdd a, Bdd b) { return a.index_ != b.index_; }
  friend bool operator<(Bdd a, Bdd b) { return a.index_ < b.index_; }

 private:
  friend class BddManager;
  static constexpr std::uint32_t kInvalid = 0xffffffffu;
  explicit Bdd(std::uint32_t index) : index_(index) {}
  std::uint32_t index_;
};

// A conjunction/product term: (variable, polarity) literals, sorted by
// variable. Used when exporting functions as sum-of-products covers.
struct BddCube {
  // (var, true for positive literal).
  std::vector<std::pair<int, bool>> literals;
};

// The node store and operation engine.
class BddManager {
 public:
  BddManager();

  // --- Variables -----------------------------------------------------------

  // Creates a fresh variable, ordered after all existing ones. `name` is used
  // only for printing.
  int NewVar(const std::string& name);

  int num_vars() const { return static_cast<int>(var_names_.size()); }
  const std::string& var_name(int var) const;

  // --- Constants and literals ----------------------------------------------

  Bdd True() const { return Bdd(1); }
  Bdd False() const { return Bdd(0); }
  Bdd Var(int var);      // the function "var"
  Bdd NotVar(int var);   // the function "!var"

  // --- Boolean operations ---------------------------------------------------

  Bdd And(Bdd a, Bdd b);
  Bdd Or(Bdd a, Bdd b);
  Bdd Not(Bdd a);
  Bdd Xor(Bdd a, Bdd b);
  Bdd Implies(Bdd a, Bdd b);
  Bdd Ite(Bdd f, Bdd g, Bdd h);

  // Variadic conveniences.
  Bdd AndAll(const std::vector<Bdd>& fs);
  Bdd OrAll(const std::vector<Bdd>& fs);

  // --- Queries ---------------------------------------------------------------

  bool IsTrue(Bdd f) const { return f == True(); }
  bool IsFalse(Bdd f) const { return f == False(); }

  // f restricted with var := value (Shannon cofactor).
  Bdd Restrict(Bdd f, int var, bool value);

  // Simultaneous restriction by a partial assignment (var -> value).
  Bdd RestrictAll(Bdd f, const std::vector<std::pair<int, bool>>& assignment);

  // True iff a => b (i.e. a AND NOT b == false).
  bool Covers(Bdd b, Bdd a);

  // Evaluates f under a total assignment over its support. Variables missing
  // from `values` default to false.
  bool Eval(Bdd f, const std::unordered_map<int, bool>& values) const;

  // The set of variables f depends on, ascending.
  std::vector<int> Support(Bdd f) const;

  // P(f = 1) when variable v is independently true with probability
  // `prob_true[v]` (vector indexed by variable; missing entries => 0.5).
  double Probability(Bdd f, const std::vector<double>& prob_true) const;

  // Number of satisfying assignments over the first `num_vars` variables.
  double SatCount(Bdd f, int num_vars) const;

  // Rebuilds f with variables renamed per `var_map` (old var -> new var).
  // Variables absent from the map are kept. Handles arbitrary (even
  // order-changing) maps.
  Bdd Rename(Bdd f, const std::unordered_map<int, int>& var_map);

  // A disjoint sum-of-products cover of f (one cube per 1-path of the BDD).
  // Deterministic for a given manager, so usable in canonical signatures.
  std::vector<BddCube> ToSop(Bdd f) const;

  // Human-readable rendering, e.g. "(c1_0 & !c2_0) | (c1_1)".
  // Returns "1"/"0" for constants.
  std::string ToString(Bdd f) const;

  // Node count statistics (for microbenchmarks / tests).
  std::size_t num_nodes() const { return nodes_.size(); }

  // Number of Boolean operations performed so far: every top-level
  // Ite/Restrict/Rename call (And/Or/Not/Xor/Implies funnel through Ite).
  // Scheduling instrumentation reads this to attribute work to BDD
  // manipulation.
  std::uint64_t num_ops() const { return num_ops_; }

 private:
  struct Node {
    int var;             // variable index; terminals use var = kTerminalVar
    std::uint32_t low;   // var = 0 child
    std::uint32_t high;  // var = 1 child
  };
  static constexpr int kTerminalVar = 0x7fffffff;

  std::uint32_t MakeNode(int var, std::uint32_t low, std::uint32_t high);
  std::uint32_t IteRec(std::uint32_t f, std::uint32_t g, std::uint32_t h);
  std::uint32_t RestrictRec(std::uint32_t f, int var, bool value,
                            std::unordered_map<std::uint32_t, std::uint32_t>&
                                memo);
  double ProbRec(std::uint32_t f, const std::vector<double>& prob_true,
                 std::unordered_map<std::uint32_t, double>& memo) const;

  int var_of(std::uint32_t n) const { return nodes_[n].var; }

  std::vector<Node> nodes_;
  std::vector<std::string> var_names_;
  std::uint64_t num_ops_ = 0;

  struct TripleHash {
    std::size_t operator()(const std::tuple<int, std::uint32_t,
                                            std::uint32_t>& t) const {
      auto [v, l, h] = t;
      std::size_t s = std::hash<int>()(v);
      s = s * 1000003u ^ std::hash<std::uint32_t>()(l);
      s = s * 1000003u ^ std::hash<std::uint32_t>()(h);
      return s;
    }
  };
  std::unordered_map<std::tuple<int, std::uint32_t, std::uint32_t>,
                     std::uint32_t, TripleHash>
      unique_;

  struct IteKeyHash {
    std::size_t operator()(const std::tuple<std::uint32_t, std::uint32_t,
                                            std::uint32_t>& t) const {
      auto [f, g, h] = t;
      std::size_t s = std::hash<std::uint32_t>()(f);
      s = s * 1000003u ^ std::hash<std::uint32_t>()(g);
      s = s * 1000003u ^ std::hash<std::uint32_t>()(h);
      return s;
    }
  };
  std::unordered_map<std::tuple<std::uint32_t, std::uint32_t, std::uint32_t>,
                     std::uint32_t, IteKeyHash>
      ite_cache_;
};

}  // namespace ws

#endif  // WS_BDD_BDD_H
