// Strongly typed integer identifiers.
//
// Graph-heavy EDA code passes many kinds of small integer handles around
// (node ids, state ids, BDD node indices, ...). Using a distinct wrapper type
// per id space turns accidental cross-space mixups into compile errors while
// keeping the runtime representation a plain 32-bit integer.
#ifndef WS_BASE_IDS_H
#define WS_BASE_IDS_H

#include <cstdint>
#include <functional>
#include <limits>

namespace ws {

// Tagged id. `Tag` is any (possibly incomplete) type used only to make each
// instantiation a distinct type.
template <typename Tag>
class Id {
 public:
  using value_type = std::uint32_t;
  static constexpr value_type kInvalidValue =
      std::numeric_limits<value_type>::max();

  constexpr Id() : value_(kInvalidValue) {}
  constexpr explicit Id(value_type v) : value_(v) {}

  [[nodiscard]] constexpr bool valid() const { return value_ != kInvalidValue; }
  [[nodiscard]] constexpr value_type value() const { return value_; }

  static constexpr Id invalid() { return Id(); }

  friend constexpr bool operator==(Id a, Id b) { return a.value_ == b.value_; }
  friend constexpr bool operator!=(Id a, Id b) { return a.value_ != b.value_; }
  friend constexpr bool operator<(Id a, Id b) { return a.value_ < b.value_; }
  friend constexpr bool operator>(Id a, Id b) { return a.value_ > b.value_; }
  friend constexpr bool operator<=(Id a, Id b) { return a.value_ <= b.value_; }
  friend constexpr bool operator>=(Id a, Id b) { return a.value_ >= b.value_; }

 private:
  value_type value_;
};

}  // namespace ws

namespace std {
template <typename Tag>
struct hash<ws::Id<Tag>> {
  size_t operator()(ws::Id<Tag> id) const noexcept {
    return std::hash<typename ws::Id<Tag>::value_type>()(id.value());
  }
};
}  // namespace std

#endif  // WS_BASE_IDS_H
