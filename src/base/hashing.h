// Deterministic, platform-independent hashing primitives.
//
// Everything here is defined purely over fixed-width integers — no
// std::hash, no size_t-dependent behavior — so hashes are bit-identical
// across platforms, compilers and standard libraries. That property is
// load-bearing: the scheduler's closure detection keys canonical state
// fingerprints on these mixers, and the explore engine guarantees
// byte-identical reports at any worker count.
#ifndef WS_BASE_HASHING_H
#define WS_BASE_HASHING_H

#include <cstdint>

namespace ws {

// SplitMix64 finalizer (Steele, Lea, Flood; public domain). A full-avalanche
// 64-bit mixer: every input bit affects every output bit with ~50%
// probability. Used both as a standalone integer hash and as the combining
// step of larger hashes.
constexpr std::uint64_t SplitMix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// Order-dependent combine: fold `value` into `seed`. Unlike the classic
// `seed * 1000003 ^ value` pattern this has no fixed points near zero and
// avalanches fully, so low-entropy keys (small dense integers, which is all
// BDD node indices are) spread across the whole table.
constexpr std::uint64_t HashCombine(std::uint64_t seed, std::uint64_t value) {
  return SplitMix64(seed ^ (value + 0x9e3779b97f4a7c15ull + (seed << 6) +
                            (seed >> 2)));
}

// Convenience mixers for the BDD flat tables: hash 2/3 packed u32 keys into
// one well-distributed u64.
constexpr std::uint64_t Hash2(std::uint32_t a, std::uint32_t b) {
  return SplitMix64((static_cast<std::uint64_t>(a) << 32) | b);
}
constexpr std::uint64_t Hash3(std::uint32_t a, std::uint32_t b,
                              std::uint32_t c) {
  return HashCombine(Hash2(a, b), c);
}

// A 128-bit structural fingerprint, accumulated token-by-token. Two
// independently-seeded 64-bit lanes; the probability that two distinct token
// streams collide is ~2^-128, and every consumer that cannot tolerate even
// that performs an exact comparison on fingerprint hits (see
// SchedulerImpl::CreateOrGet).
struct Fp128 {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;

  friend bool operator==(const Fp128& a, const Fp128& b) {
    return a.lo == b.lo && a.hi == b.hi;
  }
  friend bool operator!=(const Fp128& a, const Fp128& b) { return !(a == b); }
};

// Streaming fingerprint builder. Order-dependent: Mix(a); Mix(b) differs
// from Mix(b); Mix(a). Deterministic for a given token sequence on every
// platform.
class FpHasher {
 public:
  FpHasher() = default;

  void Mix(std::uint64_t token) {
    state_.lo = HashCombine(state_.lo, token);
    state_.hi = HashCombine(state_.hi, token ^ 0xa5a5a5a5a5a5a5a5ull);
  }

  [[nodiscard]] Fp128 digest() const {
    // Finalize so short streams don't expose raw combiner state.
    return Fp128{SplitMix64(state_.lo), SplitMix64(state_.hi ^ state_.lo)};
  }

 private:
  Fp128 state_{0x6a09e667f3bcc908ull, 0xbb67ae8584caa73bull};
};

// Hash functor for keying std::unordered_map on Fp128. The lanes are already
// fully mixed, so truncation to size_t is safe.
struct Fp128Hash {
  std::size_t operator()(const Fp128& fp) const {
    return static_cast<std::size_t>(fp.lo ^ (fp.hi * 0x9e3779b97f4a7c15ull));
  }
};

}  // namespace ws

#endif  // WS_BASE_HASHING_H
