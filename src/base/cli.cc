#include "base/cli.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace ws {

void HandleStandardFlags(const ToolInfo& tool, int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0 ||
        std::strcmp(argv[i], "-h") == 0) {
      std::fputs(tool.usage, stdout);
      std::exit(0);
    }
    if (std::strcmp(argv[i], "--version") == 0) {
      std::printf("%s %s\n", tool.name, kWsVersion);
      std::exit(0);
    }
  }
}

void UsageError(const ToolInfo& tool, const std::string& message) {
  std::fprintf(stderr, "%s: %s\n%s", tool.name, message.c_str(), tool.usage);
  std::exit(2);
}

}  // namespace ws
