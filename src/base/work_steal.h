// A work-stealing task pool: per-worker deques plus a steal path.
//
// Built for the scheduler's parallel wave loop, whose frontier items are
// coarse (one whole state expansion — typically tens of microseconds to
// milliseconds each) and arrive from a single producer thread. That shapes
// the design:
//  * Push() distributes tasks round-robin across the worker deques, so a
//    burst of sibling states lands spread out instead of piled on one
//    worker. The cursor is deterministic, but which worker runs a task is
//    not part of any result — tasks must be independent.
//  * A worker pops its own deque LIFO (newest first — best cache affinity
//    for freshly forked states) and steals FIFO from its victims (oldest
//    first — the classic Chase-Lev discipline, stealing the work least
//    likely to be in anyone's cache).
//  * Each deque is guarded by its own mutex rather than a lock-free
//    protocol: with coarse tasks the lock is never contended long enough to
//    matter, and the implementation stays obviously correct under TSan.
//  * num_workers == 0 degenerates to inline execution in Push() — the
//    sequential engine is exactly the same code path minus the threads.
//
// Tasks must not throw (capture errors into the task's own result slot);
// completion signalling is the caller's business — the scheduler tracks its
// frontier items itself.
#ifndef WS_BASE_WORK_STEAL_H
#define WS_BASE_WORK_STEAL_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace ws {

class WorkStealingPool {
 public:
  explicit WorkStealingPool(int num_workers);
  ~WorkStealingPool();

  WorkStealingPool(const WorkStealingPool&) = delete;
  WorkStealingPool& operator=(const WorkStealingPool&) = delete;

  // Enqueues `task` on the next deque (round-robin); runs it inline when
  // the pool has no workers. Must not be called after Stop().
  //
  // Contract: a single queued task does not wake a worker (see the lazy
  // wake note in Push) — the producer must drain stragglers itself via
  // TryRunOne before blocking on task results, as the scheduler's commit
  // loop does. Fire-and-forget producers that block without helping would
  // strand the last task until the next Push.
  void Push(std::function<void()> task);

  // Runs one queued task inline on the calling thread; returns false when
  // every deque is empty (any task not queued is already running on a
  // worker). Lets a coordinator thread that would otherwise block waiting
  // for results help drain the queue instead — on a single-CPU host this
  // removes the two context switches a blocking hand-off costs per task.
  // Takes the oldest task (FIFO across deques), which for the scheduler's
  // single-producer push order is the one nearest the frontier head.
  bool TryRunOne();

  // Lets running tasks finish, discards queued ones, joins the workers.
  // Idempotent; also run by the destructor.
  void Stop();

  int num_workers() const { return static_cast<int>(workers_.size()); }

 private:
  // One worker's deque. Own pops take the back (LIFO), thieves take the
  // front (FIFO). unique_ptr keeps the mutex address stable in the vector.
  struct WorkerDeque {
    std::mutex mu;
    std::deque<std::function<void()>> tasks;
  };

  void WorkerLoop(std::size_t self);
  // Pops from own deque, then sweeps the victims. Empty when idle.
  std::function<void()> TakeTask(std::size_t self);

  std::vector<std::unique_ptr<WorkerDeque>> deques_;
  std::vector<std::thread> workers_;

  // Wake-up plumbing: pending_ counts queued-but-untaken tasks; workers
  // sleep on wake_cv_ when they find nothing to run or steal. Signed: a
  // worker may take a task in the window between its enqueue and the
  // producer's increment, transiently driving the counter negative.
  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  long long pending_ = 0;
  bool stop_ = false;

  std::size_t push_cursor_ = 0;  // producer-side round-robin
};

}  // namespace ws

#endif  // WS_BASE_WORK_STEAL_H
