#include "base/codec.h"

#include <array>

namespace ws {
namespace {

// The 256-entry table for the reflected IEEE polynomial, computed once at
// static initialization (constexpr, so in practice at compile time).
constexpr std::array<std::uint32_t, 256> MakeCrc32Table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kCrc32Table = MakeCrc32Table();

}  // namespace

std::uint32_t Crc32(const void* data, std::size_t size, std::uint32_t seed) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = seed ^ 0xffffffffu;
  for (std::size_t i = 0; i < size; ++i) {
    c = kCrc32Table[(c ^ p[i]) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

}  // namespace ws
