// Scoped wall-time accumulator: adds the elapsed nanoseconds of its scope to
// a caller-owned sink on destruction. Phases may re-enter (a phase timer can
// be constructed many times against the same sink), so the sink is additive.
#ifndef WS_BASE_PHASE_TIMER_H
#define WS_BASE_PHASE_TIMER_H

#include <chrono>
#include <cstdint>

namespace ws {

class PhaseTimer {
 public:
  explicit PhaseTimer(std::int64_t* sink)
      : sink_(sink), start_(std::chrono::steady_clock::now()) {}
  ~PhaseTimer() {
    *sink_ += std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - start_)
                  .count();
  }
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

 private:
  std::int64_t* sink_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace ws

#endif  // WS_BASE_PHASE_TIMER_H
