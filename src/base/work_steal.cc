#include "base/work_steal.h"

#include <utility>

#include "base/status.h"

namespace ws {

WorkStealingPool::WorkStealingPool(int num_workers) {
  WS_CHECK(num_workers >= 0);
  deques_.reserve(static_cast<std::size_t>(num_workers));
  for (int i = 0; i < num_workers; ++i) {
    deques_.push_back(std::make_unique<WorkerDeque>());
  }
  workers_.reserve(static_cast<std::size_t>(num_workers));
  for (int i = 0; i < num_workers; ++i) {
    workers_.emplace_back(
        [this, i] { WorkerLoop(static_cast<std::size_t>(i)); });
  }
}

WorkStealingPool::~WorkStealingPool() { Stop(); }

void WorkStealingPool::Push(std::function<void()> task) {
  if (workers_.empty()) {
    task();  // sequential mode: same code path minus the threads
    return;
  }
  const std::size_t target = push_cursor_;
  push_cursor_ = (push_cursor_ + 1) % deques_.size();
  {
    std::lock_guard<std::mutex> lock(deques_[target]->mu);
    deques_[target]->tasks.push_back(std::move(task));
  }
  bool wake;
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    ++pending_;
    // Lazy wake: with exactly one task outstanding the producer itself is
    // the fastest consumer (it helps via TryRunOne before it ever blocks),
    // so waking a worker would either lose the race or — on a single-CPU
    // host — burn a context-switch pair for nothing. Workers are woken only
    // when there is genuine parallel slack (two or more queued tasks).
    wake = pending_ >= 2;
  }
  if (wake) wake_cv_.notify_one();
}

bool WorkStealingPool::TryRunOne() {
  for (auto& dq : deques_) {
    std::function<void()> task;
    {
      std::lock_guard<std::mutex> lock(dq->mu);
      if (dq->tasks.empty()) continue;
      task = std::move(dq->tasks.front());
      dq->tasks.pop_front();
    }
    {
      // Same take-time decrement discipline as WorkerLoop.
      std::lock_guard<std::mutex> lock(wake_mu_);
      --pending_;
    }
    task();
    return true;
  }
  return false;
}

void WorkStealingPool::Stop() {
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    if (stop_) return;
    stop_ = true;
  }
  // Discard queued tasks so joins only wait on the ones already running.
  for (auto& dq : deques_) {
    std::lock_guard<std::mutex> lock(dq->mu);
    dq->tasks.clear();
  }
  wake_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
  workers_.clear();
}

std::function<void()> WorkStealingPool::TakeTask(std::size_t self) {
  // Own deque first, newest task (LIFO).
  {
    WorkerDeque& own = *deques_[self];
    std::lock_guard<std::mutex> lock(own.mu);
    if (!own.tasks.empty()) {
      std::function<void()> task = std::move(own.tasks.back());
      own.tasks.pop_back();
      return task;
    }
  }
  // Steal sweep: victims in ring order, oldest task (FIFO).
  for (std::size_t k = 1; k < deques_.size(); ++k) {
    WorkerDeque& victim = *deques_[(self + k) % deques_.size()];
    std::lock_guard<std::mutex> lock(victim.mu);
    if (!victim.tasks.empty()) {
      std::function<void()> task = std::move(victim.tasks.front());
      victim.tasks.pop_front();
      return task;
    }
  }
  return nullptr;
}

void WorkStealingPool::WorkerLoop(std::size_t self) {
  for (;;) {
    std::function<void()> task = TakeTask(self);
    if (task != nullptr) {
      {
        // Decrement at take time (not completion): the counter gates worker
        // sleep, and a long-running task must not read as "work available".
        std::lock_guard<std::mutex> lock(wake_mu_);
        --pending_;
      }
      task();
      continue;
    }
    std::unique_lock<std::mutex> lock(wake_mu_);
    wake_cv_.wait(lock, [this] { return stop_ || pending_ > 0; });
    if (stop_) return;
    // pending_ > 0: somebody pushed since our sweep — loop and retry. A
    // sibling may beat us to the task; the next sweep just comes up empty.
  }
}

}  // namespace ws
