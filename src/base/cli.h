// Uniform command-line conventions for the repo's tools.
//
// Every binary in tools/ handles `--help`/`-h` (usage to stdout, exit 0),
// `--version` (one line to stdout, exit 0), and reports bad arguments with
// its usage on stderr and exit code 2 — the conventional "usage error" code,
// distinct from runtime failures (1) and partial sweep failures (3).
#ifndef WS_BASE_CLI_H
#define WS_BASE_CLI_H

#include <string>

namespace ws {

// One version string for the whole toolchain; bumped per release line.
inline constexpr const char kWsVersion[] = "0.3.0";

struct ToolInfo {
  const char* name;   // e.g. "ws_explore"
  const char* usage;  // full usage text, newline-terminated
};

// Scans argv for --help/-h/--version and, when found, prints and exits 0.
// Call before real argument parsing so the standard flags win everywhere.
void HandleStandardFlags(const ToolInfo& tool, int argc, char** argv);

// Prints "name: message", then the usage, to stderr; exits 2.
[[noreturn]] void UsageError(const ToolInfo& tool, const std::string& message);

}  // namespace ws

#endif  // WS_BASE_CLI_H
