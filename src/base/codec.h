// Shared byte-packing primitives for every binary format in the system: the
// serving wire protocol (serve/protocol.cc), the socket framing layer
// (base/net.cc), and the on-disk artifact codecs (io/codec.cc).
//
// Everything is little-endian and defined purely over fixed-width integers,
// so encodings are bit-identical across platforms and compilers. Doubles
// travel as their IEEE-754 bit pattern — the property the explore engine's
// byte-identity guarantees (remote == local, replay == original) rest on.
//
// The reader is fail-soft: an overrun latches an error and subsequent reads
// return zeros, so decoders validate once at the end (`ok()` / `AtEnd()`)
// instead of after every field.
#ifndef WS_BASE_CODEC_H
#define WS_BASE_CODEC_H

#include <bit>
#include <cstdint>
#include <string>
#include <string_view>

namespace ws {

// --- raw little-endian u32 packing (the frame/length-prefix idiom) --------

inline void PutU32LE(unsigned char* out, std::uint32_t v) {
  out[0] = static_cast<unsigned char>(v & 0xff);
  out[1] = static_cast<unsigned char>((v >> 8) & 0xff);
  out[2] = static_cast<unsigned char>((v >> 16) & 0xff);
  out[3] = static_cast<unsigned char>((v >> 24) & 0xff);
}

inline std::uint32_t GetU32LE(const unsigned char* in) {
  return static_cast<std::uint32_t>(in[0]) |
         (static_cast<std::uint32_t>(in[1]) << 8) |
         (static_cast<std::uint32_t>(in[2]) << 16) |
         (static_cast<std::uint32_t>(in[3]) << 24);
}

// --- streaming writer ------------------------------------------------------

class ByteWriter {
 public:
  void U8(std::uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void U32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) U8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void U64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) U8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void I64(std::int64_t v) { U64(static_cast<std::uint64_t>(v)); }
  void F64(double v) { U64(std::bit_cast<std::uint64_t>(v)); }
  // Length-prefixed string/blob.
  void Str(std::string_view s) {
    U32(static_cast<std::uint32_t>(s.size()));
    out_.append(s);
  }
  // Raw bytes, no length prefix.
  void Raw(std::string_view s) { out_.append(s); }

  std::size_t size() const { return out_.size(); }
  std::string Take() { return std::move(out_); }

 private:
  std::string out_;
};

// --- fail-soft streaming reader --------------------------------------------

class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  std::uint8_t U8() {
    if (pos_ + 1 > data_.size()) return Fail<std::uint8_t>();
    return static_cast<std::uint8_t>(data_[pos_++]);
  }
  std::uint32_t U32() {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(U8()) << (8 * i);
    return v;
  }
  std::uint64_t U64() {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(U8()) << (8 * i);
    return v;
  }
  std::int64_t I64() { return static_cast<std::int64_t>(U64()); }
  double F64() { return std::bit_cast<double>(U64()); }
  std::string Str() {
    const std::uint32_t n = U32();
    if (pos_ + n > data_.size()) return Fail<std::string>();
    std::string s(data_.substr(pos_, n));
    pos_ += n;
    return s;
  }
  // The next `n` raw bytes (no length prefix); empty view on overrun.
  std::string_view Raw(std::size_t n) {
    if (pos_ + n > data_.size()) return Fail<std::string_view>();
    std::string_view s = data_.substr(pos_, n);
    pos_ += n;
    return s;
  }
  // Everything left, consumed.
  std::string_view Rest() { return Raw(data_.size() - pos_); }

  std::size_t remaining() const { return ok_ ? data_.size() - pos_ : 0; }
  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] bool AtEnd() const { return ok_ && pos_ == data_.size(); }

 private:
  template <typename T>
  T Fail() {
    ok_ = false;
    pos_ = data_.size();
    return T{};
  }

  std::string_view data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

// --- CRC-32 ----------------------------------------------------------------

// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the artifact
// store's integrity check. Chainable: pass the previous return value as
// `seed` to checksum discontiguous buffers.
std::uint32_t Crc32(const void* data, std::size_t size, std::uint32_t seed = 0);

inline std::uint32_t Crc32(std::string_view s, std::uint32_t seed = 0) {
  return Crc32(s.data(), s.size(), seed);
}

}  // namespace ws

#endif  // WS_BASE_CODEC_H
