#include "base/net.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstdlib>

#include "base/codec.h"
#include "base/strings.h"

namespace ws {
namespace {

Status Unavailable(const std::string& what) {
  return Status::MakeError(StatusCode::kUnavailable,
                           what + ": " + std::strerror(errno));
}

Result<Socket> NewSocket(int domain) {
  const int fd = ::socket(domain, SOCK_STREAM, 0);
  if (fd < 0) return Unavailable("socket");
  return Socket(fd);
}

Result<sockaddr_in> MakeTcpAddr(const std::string& host, int port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::MakeError(StatusCode::kInvalidArgument,
                             "not an IPv4 address: " + host);
  }
  return addr;
}

Result<sockaddr_un> MakeUnixAddr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
    return Status::MakeError(
        StatusCode::kInvalidArgument,
        StrCat("unix socket path must be 1..", sizeof(addr.sun_path) - 1,
               " bytes, got ", path.size()));
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

}  // namespace

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::string ServeAddress::ToString() const {
  if (is_unix) return "unix:" + unix_path;
  return StrCat(host, ":", port);
}

Result<ServeAddress> ParseServeAddress(const std::string& text) {
  ServeAddress out;
  if (StartsWith(text, "unix:")) {
    out.is_unix = true;
    out.unix_path = text.substr(5);
    if (out.unix_path.empty()) {
      return Status::MakeError(StatusCode::kInvalidArgument,
                               "empty unix socket path in \"" + text + "\"");
    }
    return out;
  }
  const std::size_t colon = text.rfind(':');
  const std::string port_text =
      colon == std::string::npos ? text : text.substr(colon + 1);
  if (colon != std::string::npos && colon > 0) out.host = text.substr(0, colon);
  char* end = nullptr;
  const long port = std::strtol(port_text.c_str(), &end, 10);
  if (port_text.empty() || end == port_text.c_str() || *end != '\0' ||
      port < 0 || port > 65535) {
    return Status::MakeError(
        StatusCode::kInvalidArgument,
        "address \"" + text + "\" is neither unix:PATH nor [host:]port");
  }
  out.port = static_cast<int>(port);
  return out;
}

Result<Socket> ListenTcp(const std::string& host, int port, int backlog) {
  Result<Socket> sock = NewSocket(AF_INET);
  if (!sock.ok()) return sock;
  const int one = 1;
  ::setsockopt(sock->fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  Result<sockaddr_in> addr = MakeTcpAddr(host, port);
  if (!addr.ok()) return addr.status();
  if (::bind(sock->fd(), reinterpret_cast<const sockaddr*>(&*addr),
             sizeof(*addr)) != 0) {
    return Unavailable("bind " + host + ":" + StrCat(port));
  }
  if (::listen(sock->fd(), backlog) != 0) return Unavailable("listen");
  return sock;
}

Result<Socket> ListenUnix(const std::string& path, int backlog) {
  Result<sockaddr_un> addr = MakeUnixAddr(path);
  if (!addr.ok()) return addr.status();
  Result<Socket> sock = NewSocket(AF_UNIX);
  if (!sock.ok()) return sock;
  ::unlink(path.c_str());  // a stale socket file from a previous run
  if (::bind(sock->fd(), reinterpret_cast<const sockaddr*>(&*addr),
             sizeof(*addr)) != 0) {
    return Unavailable("bind " + path);
  }
  if (::listen(sock->fd(), backlog) != 0) return Unavailable("listen");
  return sock;
}

Result<int> BoundPort(const Socket& listener) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(listener.fd(), reinterpret_cast<sockaddr*>(&addr),
                    &len) != 0) {
    return Unavailable("getsockname");
  }
  return static_cast<int>(ntohs(addr.sin_port));
}

Result<Socket> Accept(const Socket& listener) {
  for (;;) {
    const int fd = ::accept(listener.fd(), nullptr, nullptr);
    if (fd >= 0) return Socket(fd);
    if (errno == EINTR) continue;
    return Unavailable("accept");
  }
}

Result<bool> WaitReadable(const Socket& socket, int timeout_ms) {
  pollfd pfd{};
  pfd.fd = socket.fd();
  pfd.events = POLLIN;
  for (;;) {
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc > 0) return true;
    if (rc == 0) return false;
    if (errno == EINTR) continue;
    return Unavailable("poll");
  }
}

Result<Socket> ConnectTcp(const std::string& host, int port) {
  Result<sockaddr_in> addr = MakeTcpAddr(host, port);
  if (!addr.ok()) return addr.status();
  Result<Socket> sock = NewSocket(AF_INET);
  if (!sock.ok()) return sock;
  if (::connect(sock->fd(), reinterpret_cast<const sockaddr*>(&*addr),
                sizeof(*addr)) != 0) {
    return Unavailable("connect " + host + ":" + StrCat(port));
  }
  const int one = 1;
  ::setsockopt(sock->fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return sock;
}

Result<Socket> ConnectUnix(const std::string& path) {
  Result<sockaddr_un> addr = MakeUnixAddr(path);
  if (!addr.ok()) return addr.status();
  Result<Socket> sock = NewSocket(AF_UNIX);
  if (!sock.ok()) return sock;
  if (::connect(sock->fd(), reinterpret_cast<const sockaddr*>(&*addr),
                sizeof(*addr)) != 0) {
    return Unavailable("connect " + path);
  }
  return sock;
}

Result<Socket> ConnectAddress(const ServeAddress& address) {
  return address.is_unix ? ConnectUnix(address.unix_path)
                         : ConnectTcp(address.host, address.port);
}

Status SendAll(const Socket& socket, const void* data, std::size_t size) {
  const char* p = static_cast<const char*>(data);
  while (size > 0) {
    const ssize_t n = ::send(socket.fd(), p, size, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Unavailable("send");
    }
    p += n;
    size -= static_cast<std::size_t>(n);
  }
  return Status::Ok();
}

Status RecvAll(const Socket& socket, void* data, std::size_t size) {
  char* p = static_cast<char*>(data);
  std::size_t got = 0;
  while (got < size) {
    const ssize_t n = ::recv(socket.fd(), p + got, size - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Unavailable("recv");
    }
    if (n == 0) {
      return Status::MakeError(
          StatusCode::kUnavailable,
          got == 0 ? "connection closed"
                   : StrCat("connection closed mid-frame (", got, "/", size,
                            " bytes)"));
    }
    got += static_cast<std::size_t>(n);
  }
  return Status::Ok();
}

Status SendFrame(const Socket& socket, const std::string& payload) {
  if (payload.size() > kMaxFrameBytes) {
    return Status::MakeError(
        StatusCode::kInvalidArgument,
        StrCat("frame of ", payload.size(), " bytes exceeds the ",
               kMaxFrameBytes, "-byte cap"));
  }
  unsigned char prefix[4];
  PutU32LE(prefix, static_cast<std::uint32_t>(payload.size()));
  if (Status s = SendAll(socket, prefix, sizeof(prefix)); !s.ok()) return s;
  return SendAll(socket, payload.data(), payload.size());
}

Result<std::string> RecvFrame(const Socket& socket) {
  unsigned char prefix[4];
  if (Status s = RecvAll(socket, prefix, sizeof(prefix)); !s.ok()) return s;
  const std::uint32_t n = GetU32LE(prefix);
  if (n > kMaxFrameBytes) {
    return Status::MakeError(
        StatusCode::kInvalidArgument,
        StrCat("incoming frame claims ", n, " bytes (cap ", kMaxFrameBytes,
               ")"));
  }
  std::string payload(n, '\0');
  if (n > 0) {
    if (Status s = RecvAll(socket, payload.data(), n); !s.ok()) return s;
  }
  return payload;
}

}  // namespace ws
