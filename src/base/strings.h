// Small string helpers shared across the library.
#ifndef WS_BASE_STRINGS_H
#define WS_BASE_STRINGS_H

#include <sstream>
#include <string>
#include <vector>

namespace ws {

// Joins the elements of `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep);

// printf-style formatting into a std::string.
std::string StrPrintf(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

// Streams all arguments into one string: StrCat(1, "+", 2.5).
template <typename... Args>
std::string StrCat(const Args&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}

// True if `s` starts with / ends with the given prefix/suffix.
bool StartsWith(const std::string& s, const std::string& prefix);
bool EndsWith(const std::string& s, const std::string& suffix);

// Escapes a string for use as a DOT (graphviz) label.
std::string DotEscape(const std::string& s);

}  // namespace ws

#endif  // WS_BASE_STRINGS_H
