#include "base/rng.h"

#include <cmath>
#include <numbers>

#include "base/status.h"

namespace ws {
namespace {

std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

// splitmix64, used to expand the seed into the xoshiro state.
std::uint64_t SplitMix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& w : state_) w = SplitMix64(s);
  // All-zero state is the one forbidden xoshiro state.
  if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0) {
    state_[0] = 1;
  }
}

std::uint64_t Rng::NextU64() {
  const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::NextBelow(std::uint64_t bound) {
  WS_CHECK(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = NextU64();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::NextInt(std::int64_t lo, std::int64_t hi) {
  WS_CHECK(lo <= hi);
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(NextU64());
  }
  return lo + static_cast<std::int64_t>(NextBelow(span));
}

double Rng::NextDouble() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box-Muller: two uniforms -> two independent standard normals.
  double u1 = NextDouble();
  while (u1 <= 0.0) u1 = NextDouble();
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

std::int64_t Rng::NextGaussianInt(double sigma) {
  return static_cast<std::int64_t>(std::llround(NextGaussian() * sigma));
}

std::vector<std::int64_t> Rng::GaussianTrace(int n, double sigma) {
  WS_CHECK(n >= 0);
  std::vector<std::int64_t> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) out.push_back(NextGaussianInt(sigma));
  return out;
}

}  // namespace ws
