// Error handling for the library.
//
// Two interoperable styles:
//  * Throwing: `ws::Error` for user-facing failures (malformed input,
//    violated constraints, exhausted exploration caps). Internal invariants
//    are checked with WS_CHECK, which also throws so tests can assert on
//    them.
//  * Value-based: `ws::Status` / `ws::Result<T>` for call sites that must
//    not unwind (worker threads, request/response APIs). `Result<T>::value()`
//    on an error re-enters the throwing world with the carried message, so
//    the two styles compose.
#ifndef WS_BASE_STATUS_H
#define WS_BASE_STATUS_H

#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>

namespace ws {

// Exception type for all errors raised by the library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& message) : std::runtime_error(message) {}
};

// Cooperative cancellation outcomes, raised by the scheduler when a
// per-request deadline expires or a caller-owned cancel flag is set. They
// subclass Error so legacy catch sites keep working, but carry a distinct
// type so request/response layers (Schedule, the serving daemon) can
// map them to typed statuses instead of generic failures.
class DeadlineExceededError : public Error {
 public:
  using Error::Error;
};
class CancelledError : public Error {
 public:
  using Error::Error;
};

// Machine-readable error category. Most call sites only care about ok vs.
// not; the serving layer routes on the code (a DeadlineExceeded schedule is
// a typed response, not a run failure).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   // malformed request/options; retrying is pointless
  kDeadlineExceeded,  // cooperative deadline expired mid-run
  kCancelled,         // caller-owned cancel flag observed
  kUnavailable,       // transient resource pressure (I/O, dead peer)
  kInternal,          // everything else (the pre-StatusCode default)
  kOverloaded,        // server shed the request (admission queue full);
                      // retrying after backoff is expected to succeed
};

const char* StatusCodeName(StatusCode code);

// The outcome of an operation that can fail without throwing: OK, or an
// error with a code and a human-readable message.
class Status {
 public:
  Status() = default;  // OK
  static Status Ok() { return Status(); }
  static Status MakeError(std::string message) {
    return MakeError(StatusCode::kInternal, std::move(message));
  }
  static Status MakeError(StatusCode code, std::string message) {
    Status s;
    s.code_ = code == StatusCode::kOk ? StatusCode::kInternal : code;
    s.message_ = std::move(message);
    return s;
  }

  [[nodiscard]] bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // Throws ws::Error (or the matching cancellation subclass) if not OK.
  void ThrowIfError() const {
    switch (code_) {
      case StatusCode::kOk:
        return;
      case StatusCode::kDeadlineExceeded:
        throw DeadlineExceededError(message_);
      case StatusCode::kCancelled:
        throw CancelledError(message_);
      default:
        throw Error(message_);
    }
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kInvalidArgument: return "invalid_argument";
    case StatusCode::kDeadlineExceeded: return "deadline_exceeded";
    case StatusCode::kCancelled: return "cancelled";
    case StatusCode::kUnavailable: return "unavailable";
    case StatusCode::kInternal: return "internal";
    case StatusCode::kOverloaded: return "overloaded";
  }
  return "unknown";
}

// A value or an error (StatusOr-style). Implicitly constructible from either
// a T or a non-OK Status, so functions can `return value;` and
// `return Status::MakeError(...)` interchangeably.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT: implicit
  Result(Status status) : status_(std::move(status)) {  // NOLINT: implicit
    if (status_.ok()) {
      status_ = Status::MakeError("Result constructed from an OK status");
    }
  }

  [[nodiscard]] bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }
  const std::string& error() const { return status_.message(); }

  // Accessors throw ws::Error with the carried message on an error result.
  T& value() & {
    status_.ThrowIfError();
    return *value_;
  }
  const T& value() const& {
    status_.ThrowIfError();
    return *value_;
  }
  T&& value() && {
    status_.ThrowIfError();
    return *std::move(value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ holds
};

namespace internal {
// Accumulates a message and throws on destruction-by-value via Throw().
class ErrorStream {
 public:
  template <typename T>
  ErrorStream& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }
  [[noreturn]] void Throw() const { throw Error(stream_.str()); }

 private:
  std::ostringstream stream_;
};
}  // namespace internal

}  // namespace ws

// Throws ws::Error with a streamed message:
//   WS_THROW("bad node " << id.value());
#define WS_THROW(msg)                           \
  do {                                          \
    ::ws::internal::ErrorStream ws_err_stream_; \
    ws_err_stream_ << msg;                      \
    ws_err_stream_.Throw();                     \
  } while (0)

// Invariant check; always on (the library is not performance critical enough
// to justify stripping checks in release builds).
#define WS_CHECK(cond)                                                     \
  do {                                                                     \
    if (!(cond)) {                                                         \
      WS_THROW("check failed: " #cond " at " << __FILE__ << ":" << __LINE__); \
    }                                                                      \
  } while (0)

#define WS_CHECK_MSG(cond, msg)                                 \
  do {                                                          \
    if (!(cond)) {                                              \
      WS_THROW("check failed: " #cond " at " << __FILE__ << ":" \
                                             << __LINE__ << ": " << msg); \
    }                                                           \
  } while (0)

#endif  // WS_BASE_STATUS_H
