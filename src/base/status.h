// Error handling for the library.
//
// The library throws `ws::Error` for user-facing failures (malformed input,
// violated constraints, exhausted exploration caps). Internal invariants are
// checked with WS_CHECK, which also throws so tests can assert on them.
#ifndef WS_BASE_STATUS_H
#define WS_BASE_STATUS_H

#include <sstream>
#include <stdexcept>
#include <string>

namespace ws {

// Exception type for all errors raised by the library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& message) : std::runtime_error(message) {}
};

namespace internal {
// Accumulates a message and throws on destruction-by-value via Throw().
class ErrorStream {
 public:
  template <typename T>
  ErrorStream& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }
  [[noreturn]] void Throw() const { throw Error(stream_.str()); }

 private:
  std::ostringstream stream_;
};
}  // namespace internal

}  // namespace ws

// Throws ws::Error with a streamed message:
//   WS_THROW("bad node " << id.value());
#define WS_THROW(msg)                           \
  do {                                          \
    ::ws::internal::ErrorStream ws_err_stream_; \
    ws_err_stream_ << msg;                      \
    ws_err_stream_.Throw();                     \
  } while (0)

// Invariant check; always on (the library is not performance critical enough
// to justify stripping checks in release builds).
#define WS_CHECK(cond)                                                     \
  do {                                                                     \
    if (!(cond)) {                                                         \
      WS_THROW("check failed: " #cond " at " << __FILE__ << ":" << __LINE__); \
    }                                                                      \
  } while (0)

#define WS_CHECK_MSG(cond, msg)                                 \
  do {                                                          \
    if (!(cond)) {                                              \
      WS_THROW("check failed: " #cond " at " << __FILE__ << ":" \
                                             << __LINE__ << ": " << msg); \
    }                                                           \
  } while (0)

#endif  // WS_BASE_STATUS_H
