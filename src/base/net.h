// Minimal POSIX socket layer for the serving subsystem: RAII descriptors,
// localhost TCP and Unix-domain listeners/connectors, whole-buffer I/O, and
// the length-prefixed framing every ws protocol message rides in.
//
// Error handling is value-based throughout (ws::Status / ws::Result):
// sockets fail for environmental reasons and the serving layer must not
// unwind worker threads. Transient I/O failures carry StatusCode::
// kUnavailable, address/parse problems kInvalidArgument.
#ifndef WS_BASE_NET_H
#define WS_BASE_NET_H

#include <cstdint>
#include <string>
#include <utility>

#include "base/status.h"

namespace ws {

// An owned socket descriptor. Move-only; closes on destruction.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void Close();

 private:
  int fd_ = -1;
};

// A served address, written "unix:/path/to.sock" or "host:port"
// (host defaults to 127.0.0.1 when written ":port" or just "port").
struct ServeAddress {
  bool is_unix = false;
  std::string unix_path;
  std::string host = "127.0.0.1";
  int port = 0;

  std::string ToString() const;
};

// Parses the textual forms above; kInvalidArgument on nonsense.
Result<ServeAddress> ParseServeAddress(const std::string& text);

// Listeners. TCP binds host:port (port 0 = ephemeral; BoundPort recovers the
// kernel's pick). Unix unlinks a stale socket file first and binds `path`
// (length-checked against sockaddr_un limits).
Result<Socket> ListenTcp(const std::string& host, int port, int backlog);
Result<Socket> ListenUnix(const std::string& path, int backlog);
Result<int> BoundPort(const Socket& listener);

// Blocking accept. kUnavailable on EINTR/shutdown-style failures.
Result<Socket> Accept(const Socket& listener);

// Waits up to timeout_ms for `socket` to become readable. Returns true if
// readable, false on timeout; kUnavailable on poll failure.
Result<bool> WaitReadable(const Socket& socket, int timeout_ms);

// Blocking connectors.
Result<Socket> ConnectTcp(const std::string& host, int port);
Result<Socket> ConnectUnix(const std::string& path);
Result<Socket> ConnectAddress(const ServeAddress& address);

// Whole-buffer I/O: retries short reads/writes and EINTR until done.
// RecvAll returns kUnavailable with "closed" in the message on clean EOF at
// offset 0 so callers can distinguish peer departure from corruption.
Status SendAll(const Socket& socket, const void* data, std::size_t size);
Status RecvAll(const Socket& socket, void* data, std::size_t size);

// Length-prefixed frames: a little-endian u32 payload size, then the
// payload. The size cap bounds a malicious or corrupted peer.
inline constexpr std::uint32_t kMaxFrameBytes = 64u << 20;

Status SendFrame(const Socket& socket, const std::string& payload);
Result<std::string> RecvFrame(const Socket& socket);

}  // namespace ws

#endif  // WS_BASE_NET_H
