#include "base/thread_pool.h"

#include "base/status.h"

namespace ws {

ThreadPool::ThreadPool(int num_threads) {
  WS_CHECK_MSG(num_threads >= 0, "thread pool size must be >= 0");
  workers_.reserve(static_cast<std::size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Submit(std::function<void()> task) {
  if (workers_.empty()) {
    // Inline mode: run in the caller, with the same exception capture the
    // workers use so Wait() behaves identically.
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (shutdown_) throw Error("ThreadPool: Submit() after Shutdown()");
    }
    try {
      task();
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) throw Error("ThreadPool: Submit() after Shutdown()");
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
  if (first_error_) {
    std::exception_ptr err = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(err);
  }
}

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return;
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  workers_.clear();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    try {
      task();
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace ws
