// Deterministic random number generation for workload traces.
//
// The paper drives its expected-cycle measurements with "zero-mean Gaussian
// sequences". All randomness in this repository flows through this class so
// every experiment is reproducible from a seed.
#ifndef WS_BASE_RNG_H
#define WS_BASE_RNG_H

#include <cstdint>
#include <vector>

namespace ws {

// Deterministic RNG (xoshiro256** core) with convenience distributions.
// Not thread-safe; create one per thread / experiment.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  // Uniform over the full 64-bit range.
  std::uint64_t NextU64();

  // Uniform in [0, bound). bound must be > 0.
  std::uint64_t NextBelow(std::uint64_t bound);

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t NextInt(std::int64_t lo, std::int64_t hi);

  // Uniform in [0, 1).
  double NextDouble();

  // true with probability p (clamped to [0,1]).
  bool NextBool(double p);

  // Standard normal via Box-Muller (deterministic; caches the second draw).
  double NextGaussian();

  // Zero-mean Gaussian with standard deviation sigma, rounded to the nearest
  // integer — the paper's input-trace distribution.
  std::int64_t NextGaussianInt(double sigma);

  // Vector of n zero-mean Gaussian integers.
  std::vector<std::int64_t> GaussianTrace(int n, double sigma);

 private:
  std::uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace ws

#endif  // WS_BASE_RNG_H
