// A fixed-size worker pool over a FIFO work queue.
//
// Built for the design-space exploration engine: tasks are shared-nothing
// closures (each scheduling run owns its CDFG copy, BDD manager, and RNG),
// so the pool needs no result plumbing — callers write into pre-sized slots
// and synchronize through Wait().
//
// Semantics:
//  * Submit() enqueues a task; worker threads drain the queue in FIFO order.
//  * Wait() blocks until every submitted task has finished, then rethrows
//    the first exception any task raised (once; subsequent Wait()s are
//    clean). The remaining tasks still run — an exploration run failing must
//    not abandon the rest of the sweep.
//  * Shutdown() (also run by the destructor) drains the queue, joins the
//    workers, and rejects further Submit() calls. A task exception pending
//    at destruction is swallowed — call Wait() first if you care.
//  * num_threads == 0 degenerates to inline execution in Submit(), which
//    makes "sequential" exactly the same code path minus the threads.
#ifndef WS_BASE_THREAD_POOL_H
#define WS_BASE_THREAD_POOL_H

#include <condition_variable>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ws {

class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues `task`. Throws ws::Error after Shutdown().
  void Submit(std::function<void()> task);

  // Blocks until the queue is empty and all workers are idle; rethrows the
  // first task exception, if any.
  void Wait();

  // Finishes all queued tasks, joins the workers, and closes the queue.
  // Idempotent.
  void Shutdown();

  int num_threads() const { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;   // signals workers: work or shutdown
  std::condition_variable idle_cv_;   // signals Wait(): everything drained
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  int active_ = 0;          // tasks currently executing
  bool shutdown_ = false;   // no further Submit(); workers exit when drained
  std::exception_ptr first_error_;
};

}  // namespace ws

#endif  // WS_BASE_THREAD_POOL_H
