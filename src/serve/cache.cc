#include "serve/cache.h"

namespace ws {

std::optional<std::string> ResultCache::Get(const Fp128& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++hits_;
  return it->second->second;
}

void ResultCache::Put(const Fp128& key, std::string payload) {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->second = std::move(payload);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, std::move(payload));
  index_.emplace(key, lru_.begin());
  if (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++evictions_;
  }
}

std::size_t ResultCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

std::int64_t ResultCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

std::int64_t ResultCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

std::int64_t ResultCache::evictions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evictions_;
}

}  // namespace ws
