#include "serve/cache.h"

namespace ws {

std::optional<std::string> ResultCache::Get(const Fp128& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++hits_;
  return it->second->second;
}

void ResultCache::Put(const Fp128& key, std::string payload) {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->second = std::move(payload);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, std::move(payload));
  index_.emplace(key, lru_.begin());
  if (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++evictions_;
  }
}

std::size_t ResultCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

std::int64_t ResultCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

std::int64_t ResultCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

std::int64_t ResultCache::evictions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evictions_;
}

ShardedResultCache::ShardedResultCache(std::size_t capacity, int shards)
    : capacity_(capacity) {
  if (shards < 1) shards = 1;
  // Divide the budget; a nonzero total keeps every shard usable so a key's
  // cacheability never depends on which shard it hashes to.
  std::size_t per_shard =
      capacity == 0 ? 0
                    : (capacity + static_cast<std::size_t>(shards) - 1) /
                          static_cast<std::size_t>(shards);
  shards_.reserve(static_cast<std::size_t>(shards));
  for (int s = 0; s < shards; ++s) {
    shards_.push_back(std::make_unique<ResultCache>(per_shard));
  }
}

std::size_t ShardedResultCache::size() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) total += shard->size();
  return total;
}

std::int64_t ShardedResultCache::hits() const {
  std::int64_t total = 0;
  for (const auto& shard : shards_) total += shard->hits();
  return total;
}

std::int64_t ShardedResultCache::misses() const {
  std::int64_t total = 0;
  for (const auto& shard : shards_) total += shard->misses();
  return total;
}

std::int64_t ShardedResultCache::evictions() const {
  std::int64_t total = 0;
  for (const auto& shard : shards_) total += shard->evictions();
  return total;
}

}  // namespace ws
