// The scheduling service: accepts length-prefixed protocol connections on
// localhost TCP and/or a Unix domain socket, admits SCHEDULE requests into a
// bounded queue drained by a ThreadPool, serves repeated requests from a
// fingerprint-keyed LRU result cache, and exposes live metrics via STATS.
//
// Threading model:
//  * one acceptor thread per listener;
//  * one thread per live connection, processing its requests in order (a
//    connection has at most one request in flight — clients open more
//    connections for parallelism, as `ws_explore --server` does);
//  * scheduling work runs on the shared pool; the connection thread blocks
//    on the outcome and writes the response itself, so every socket is
//    written by exactly one thread and every request gets exactly one
//    response.
//
// Admission control: at most `max_queue` SCHEDULE requests may be admitted
// (queued + running) at once; beyond that the server sheds immediately with
// a typed kOverloaded response instead of building backlog. Deadlines are
// measured from admission, so time spent queued counts against the request.
//
// Shutdown: RequestStop() (the SHUTDOWN verb, or the daemon's SIGTERM
// handler via stop polling) makes Wait() return; Stop() then drains —
// listeners close first, live connections finish their in-flight request,
// the pool joins, and the Unix socket file is unlinked.
#ifndef WS_SERVE_SERVER_H
#define WS_SERVE_SERVER_H

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "base/net.h"
#include "base/status.h"
#include "base/thread_pool.h"
#include "serve/cache.h"
#include "serve/metrics.h"
#include "serve/protocol.h"

namespace ws {

class ArtifactStore;  // io/artifact_store.h

struct ServerOptions {
  // TCP listener: port < 0 disables, 0 asks the kernel for an ephemeral
  // port (recover it with tcp_port()).
  std::string tcp_host = "127.0.0.1";
  int tcp_port = -1;
  // Unix-domain listener: empty disables. A stale socket file is replaced.
  std::string unix_path;

  int workers = 4;             // scheduling pool size
  int max_queue = 64;          // admitted-but-unfinished SCHEDULE cap
  std::size_t cache_capacity = 256;  // LRU entries; 0 disables the cache

  // Durable artifact store directory (io/artifact_store.h); empty disables.
  // On Start() the in-memory cache is warm-started from the store (recency
  // preserved), misses are written through, and restarts therefore serve
  // previously computed schedules byte-identically from disk.
  std::string store_dir;
  std::uint64_t store_max_bytes = 0;  // live-byte bound; 0 = unbounded

  Status Validate() const;
};

class ServeServer {
 public:
  explicit ServeServer(ServerOptions options);
  ~ServeServer();

  ServeServer(const ServeServer&) = delete;
  ServeServer& operator=(const ServeServer&) = delete;

  // Binds and starts listening/accepting. kInvalidArgument for bad options,
  // kUnavailable for socket failures.
  Status Start();

  // Blocks until a stop is requested (SHUTDOWN verb or RequestStop()).
  void Wait();

  // Asks the server to stop; non-blocking, safe from any server thread.
  void RequestStop();
  bool stop_requested() const;

  // Drains and joins everything; idempotent. Not callable from server
  // threads (it joins them).
  void Stop();

  // The bound TCP port (after Start(); -1 when TCP is disabled).
  int tcp_port() const { return bound_tcp_port_; }

  MetricsRegistry& metrics() { return metrics_; }
  const ResultCache& cache() const { return cache_; }
  // The durable store, or null when store_dir is empty (set after Start()).
  const ArtifactStore* store() const { return store_.get(); }

 private:
  // The outcome of one SCHEDULE request, produced on a pool worker and
  // consumed by the connection thread.
  struct ScheduleOutcome {
    ResponseStatus status = ResponseStatus::kInternalError;
    bool cache_hit = false;
    std::string body;  // encoded ExploreRun on kOk, message otherwise
  };

  void AcceptLoop(Socket* listener);
  void HandleConnection(Socket conn);
  // Executes one admitted request on the calling (pool) thread.
  ScheduleOutcome ExecuteSchedule(
      const CellRequest& request,
      std::chrono::steady_clock::time_point admitted);
  std::string StatsText();

  const ServerOptions options_;
  MetricsRegistry metrics_;
  ResultCache cache_;
  std::unique_ptr<ArtifactStore> store_;  // null when store_dir is empty

  Socket tcp_listener_;
  Socket unix_listener_;
  int bound_tcp_port_ = -1;

  std::unique_ptr<ThreadPool> pool_;
  std::vector<std::thread> acceptors_;
  std::mutex conn_mu_;
  std::vector<std::thread> connections_;

  std::atomic<bool> stopping_{false};        // loops exit when set
  std::atomic<int> admitted_{0};             // SCHEDULE requests in the system
  bool started_ = false;
  bool stopped_ = false;

  mutable std::mutex stop_mu_;
  std::condition_variable stop_cv_;
  bool stop_requested_ = false;

  // Pre-registered hot-path metrics (pointers into metrics_).
  Counter* req_total_;
  Counter* resp_ok_;
  Counter* resp_invalid_;
  Counter* resp_deadline_;
  Counter* resp_overloaded_;
  Counter* resp_internal_;
  Counter* cache_hits_;
  Counter* cache_misses_;
  Counter* store_hits_;
  Counter* store_misses_;
  Counter* connections_total_;
  Gauge* queue_depth_;
  Gauge* open_connections_;
  Histogram* latency_us_;
  Histogram* sched_total_us_;
  Histogram* sched_successor_us_;
  Histogram* sched_cofactor_us_;
  Histogram* sched_closure_us_;
  Histogram* sched_select_us_;
  Histogram* sched_gc_us_;
};

}  // namespace ws

#endif  // WS_SERVE_SERVER_H
