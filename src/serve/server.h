// The scheduling service: accepts length-prefixed protocol connections on
// localhost TCP and/or a Unix domain socket, admits scheduling requests into
// a continuous step loop (serve/dispatch.h) of fingerprint-sharded workers
// with single-flight coalescing, serves repeated requests from a sharded
// fingerprint-keyed LRU result cache, and exposes live metrics via STATS.
//
// Threading model:
//  * one acceptor thread per listener;
//  * one thread per live connection, decoding frames in order. kSubmit
//    admits a request and replies with a ticket immediately — admission
//    never blocks on scheduling work, so one connection can pipeline many
//    requests. kWait (and the one-round-trip kSchedule) blocks the
//    connection thread on that request's PendingResult; every socket is
//    written by exactly one thread and every request gets exactly one
//    response;
//  * scheduling work runs on the dispatcher's shard workers. A request's
//    128-bit fingerprint picks its shard; each shard owns its FIFO queue,
//    its single-flight table, and its LRU cache segment, and every
//    scheduling run owns a private BDD arena — shard workers share no mutex
//    or unique table on the hot path.
//
// Admission control: at most `max_queue` requests may be admitted
// (queued + running) at once; beyond that new computations are shed
// immediately with a typed kOverloaded response instead of building backlog
// (coalesced followers and cache hits consume no worker and are never
// shed). Deadlines are measured from admission, so time spent queued counts
// against the request; a coalesced follower keeps its own deadline.
//
// Shutdown: RequestStop() (the SHUTDOWN verb, or the daemon's SIGTERM
// handler via stop polling) makes Wait() return; Stop() then drains —
// listeners close first, live connections finish their in-flight waits
// (every admitted request is fulfilled), the dispatcher drains its shard
// queues and joins its workers, and the Unix socket file is unlinked.
#ifndef WS_SERVE_SERVER_H
#define WS_SERVE_SERVER_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "base/net.h"
#include "base/status.h"
#include "serve/cache.h"
#include "serve/dispatch.h"
#include "serve/metrics.h"
#include "serve/protocol.h"

namespace ws {

class ArtifactStore;  // io/artifact_store.h

struct ServerOptions {
  // TCP listener: port < 0 disables, 0 asks the kernel for an ephemeral
  // port (recover it with tcp_port()).
  std::string tcp_host = "127.0.0.1";
  int tcp_port = -1;
  // Unix-domain listener: empty disables. A stale socket file is replaced.
  std::string unix_path;

  // Worker shards (serve/dispatch.h): each owns a queue, a single-flight
  // table, and a cache segment.
  int shards = 1;
  int workers = 4;             // total worker threads across all shards
  int max_queue = 64;          // admitted-but-unfinished request cap
  std::size_t cache_capacity = 256;  // LRU entries; 0 disables the cache
  // Intra-run wave-loop threads per scheduling run (0 = expand inline).
  // An execution hint only — results, cache keys and store keys are
  // byte-identical at any setting — so it never enters the wire protocol.
  int wave_workers = 0;

  // Durable artifact store directory (io/artifact_store.h); empty disables.
  // On Start() the in-memory cache is warm-started from the store (recency
  // preserved), misses are written through, and restarts therefore serve
  // previously computed schedules byte-identically from disk.
  std::string store_dir;
  std::uint64_t store_max_bytes = 0;  // live-byte bound; 0 = unbounded

  Status Validate() const;
};

class ServeServer {
 public:
  explicit ServeServer(ServerOptions options);
  ~ServeServer();

  ServeServer(const ServeServer&) = delete;
  ServeServer& operator=(const ServeServer&) = delete;

  // Binds and starts listening/accepting. kInvalidArgument for bad options,
  // kUnavailable for socket failures.
  Status Start();

  // Blocks until a stop is requested (SHUTDOWN verb or RequestStop()).
  void Wait();

  // Asks the server to stop; non-blocking, safe from any server thread.
  void RequestStop();
  bool stop_requested() const;

  // Drains and joins everything; idempotent. Not callable from server
  // threads (it joins them).
  void Stop();

  // The bound TCP port (after Start(); -1 when TCP is disabled).
  int tcp_port() const { return bound_tcp_port_; }

  MetricsRegistry& metrics() { return metrics_; }
  // The sharded result cache (valid after Start()).
  const ShardedResultCache& cache() const { return dispatcher_->cache(); }
  // The durable store, or null when store_dir is empty (set after Start()).
  const ArtifactStore* store() const { return store_.get(); }

 private:
  void AcceptLoop(Socket* listener);
  void HandleConnection(Socket conn);
  // Waits for an admitted request's outcome, counts the typed response and
  // its latency, and returns the encoded response frame.
  std::string FinishRequest(const PendingHandle& handle);
  std::string StatsText();

  const ServerOptions options_;
  MetricsRegistry metrics_;
  std::unique_ptr<ArtifactStore> store_;  // null when store_dir is empty
  std::unique_ptr<ServeDispatcher> dispatcher_;  // created by Start()

  Socket tcp_listener_;
  Socket unix_listener_;
  int bound_tcp_port_ = -1;

  std::vector<std::thread> acceptors_;
  std::mutex conn_mu_;
  std::vector<std::thread> connections_;

  std::atomic<bool> stopping_{false};  // loops exit when set
  bool started_ = false;
  bool stopped_ = false;

  mutable std::mutex stop_mu_;
  std::condition_variable stop_cv_;
  bool stop_requested_ = false;

  // Pre-registered hot-path metrics (pointers into metrics_). The
  // dispatcher registers the queue/cache/store/sched metrics under the same
  // registry, so STATS renders one flat namespace.
  Counter* req_total_;
  Counter* resp_ok_;
  Counter* resp_invalid_;
  Counter* resp_deadline_;
  Counter* resp_overloaded_;
  Counter* resp_internal_;
  Counter* connections_total_;
  Gauge* open_connections_;
  Histogram* latency_us_;
};

}  // namespace ws

#endif  // WS_SERVE_SERVER_H
