#include "serve/dispatch.h"

#include <algorithm>
#include <utility>

#include "base/strings.h"
#include "explore/run_codec.h"
#include "io/artifact_store.h"
#include "io/codec.h"

namespace ws {
namespace {

ServeOutcome DeadlineOutcome(std::int64_t deadline_ms,
                             const std::string& detail) {
  ServeOutcome outcome;
  outcome.status = ResponseStatus::kDeadlineExceeded;
  outcome.body = detail.empty()
                     ? StrCat("deadline of ", deadline_ms, " ms expired")
                     : detail;
  return outcome;
}

}  // namespace

void PendingResult::Fulfill(const ServeOutcome& outcome) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (done_) return;
    done_ = true;
    outcome_ = outcome;
  }
  cv_.notify_all();
}

ServeOutcome PendingResult::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  if (deadline_.has_value()) {
    if (!cv_.wait_until(lock, *deadline_, [this] { return done_; })) {
      // This waiter's own deadline expired; the computation (if any) keeps
      // running for other waiters and the cache, but this request's answer
      // is final.
      return DeadlineOutcome(deadline_ms_, "");
    }
  } else {
    cv_.wait(lock, [this] { return done_; });
  }
  return outcome_;
}

ServeDispatcher::ServeDispatcher(DispatcherOptions options,
                                 MetricsRegistry* metrics)
    : options_(options),
      cache_(options.cache_capacity, options.shards) {
  shards_.reserve(static_cast<std::size_t>(options_.shards));
  for (int s = 0; s < options_.shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }
  sched_runs_ = metrics->counter("serve.sched_runs");
  coalesced_ = metrics->counter("serve.coalesced");
  cache_hits_ = metrics->counter("serve.cache_hits");
  cache_misses_ = metrics->counter("serve.cache_misses");
  store_hits_ = metrics->counter("serve.store_hits");
  store_misses_ = metrics->counter("serve.store_misses");
  queue_depth_ = metrics->gauge("serve.queue_depth");
  sched_total_us_ = metrics->histogram("serve.sched_total_us");
  sched_successor_us_ = metrics->histogram("serve.sched_successor_us");
  sched_cofactor_us_ = metrics->histogram("serve.sched_cofactor_us");
  sched_closure_us_ = metrics->histogram("serve.sched_closure_us");
  sched_select_us_ = metrics->histogram("serve.sched_select_us");
  sched_gc_us_ = metrics->histogram("serve.sched_gc_us");
  adapt_profiles_ = metrics->counter("serve.adapt_profiles");
  adapt_swaps_ = metrics->counter("serve.adapt_swaps");
  adapt_rejected_ = metrics->counter("serve.adapt_rejected");
  adapt_resched_us_ = metrics->histogram("serve.adapt_resched_us");
}

ServeDispatcher::~ServeDispatcher() { Drain(); }

void ServeDispatcher::Start() {
  if (started_) return;
  started_ = true;
  // Spread the worker budget: every shard gets at least one thread; the
  // remainder lands on the lowest-numbered shards.
  const int shards = options_.shards;
  const int base = std::max(1, options_.workers / shards);
  int extra = std::max(0, options_.workers - base * shards);
  for (auto& shard : shards_) {
    int count = base + (extra > 0 ? 1 : 0);
    if (extra > 0) --extra;
    for (int w = 0; w < count; ++w) {
      shard->workers.emplace_back([this, s = shard.get()] { WorkerLoop(s); });
    }
  }
}

void ServeDispatcher::Drain() {
  if (!started_ || drained_) return;
  drained_ = true;
  stopping_.store(true, std::memory_order_release);
  for (auto& shard : shards_) {
    {
      // Taking the lock orders the flag store before any worker's next
      // predicate evaluation (no lost wakeup).
      std::lock_guard<std::mutex> lock(shard->mu);
    }
    shard->cv.notify_all();
  }
  for (auto& shard : shards_) {
    for (std::thread& t : shard->workers) t.join();
    shard->workers.clear();
  }
}

PendingHandle ServeDispatcher::Submit(const CellRequest& request,
                                      Clock::time_point admitted) {
  auto pending =
      std::make_shared<PendingResult>(admitted, request.deadline_ms);
  auto reject = [&pending](ResponseStatus status, std::string message) {
    ServeOutcome outcome;
    outcome.status = status;
    outcome.body = std::move(message);
    pending->Fulfill(outcome);
    return pending;
  };

  ExploreSpec spec = request.ToSpec();
  if (const Status valid = spec.Validate(); !valid.ok()) {
    return reject(ResponseStatus::kInvalidRequest, valid.message());
  }
  const ExploreCell cell = request.ToCell();

  // The same build path RunExploreCell takes; build failures are invalid
  // requests at the protocol level (the design or allocation text itself is
  // wrong), with the exact message local sweeps would record in the run.
  Result<Benchmark> bench = BuildExploreDesign(cell.design, spec);
  if (!bench.ok()) {
    return reject(ResponseStatus::kInvalidRequest, bench.error());
  }
  Result<Allocation> allocation = BuildExploreAllocation(*bench, cell.alloc);
  if (!allocation.ok()) {
    return reject(ResponseStatus::kInvalidRequest, allocation.error());
  }

  // Canonical request fingerprint. Deadline fields never participate
  // (sched/closure.h), so a deadline-bounded request coalesces with — and
  // hits results cached by — unbounded ones and vice versa.
  const ScheduleRequest sched_request =
      MakeCellScheduleRequest(spec, *bench, *allocation, cell);
  const Fp128 key = ExploreCellKey(spec, cell, sched_request);
  Shard& shard = *shards_[static_cast<std::size_t>(cache_.shard_of(key))];

  {
    std::unique_lock<std::mutex> lock(shard.mu);
    if (stopping_.load(std::memory_order_acquire)) {
      lock.unlock();
      return reject(ResponseStatus::kOverloaded, "server is draining");
    }
    // Single-flight: an in-flight computation for this fingerprint absorbs
    // the request as a follower — no new work, one more waiter.
    if (auto it = shard.inflight.find(key); it != shard.inflight.end()) {
      it->second.push_back(pending);
      admitted_.fetch_add(1, std::memory_order_acq_rel);
      queue_depth_->Add(1);
      coalesced_->Increment();
      return pending;
    }
    // Cache fast path: answered at admission, never queued.
    if (std::optional<std::string> hit = cache_.Get(key); hit.has_value()) {
      lock.unlock();
      cache_hits_->Increment();
      ServeOutcome outcome;
      outcome.status = ResponseStatus::kOk;
      outcome.cache_hit = true;
      outcome.body = *std::move(hit);
      pending->Fulfill(outcome);
      return pending;
    }
    cache_misses_->Increment();
    // A new leader occupies a worker: apply the admission cap.
    if (admitted_.fetch_add(1, std::memory_order_acq_rel) >=
        options_.max_queue) {
      admitted_.fetch_sub(1, std::memory_order_acq_rel);
      lock.unlock();
      return reject(ResponseStatus::kOverloaded,
                    StrCat("admission queue full (", options_.max_queue,
                           " requests in flight); retry later"));
    }
    queue_depth_->Add(1);
    shard.inflight.emplace(key, std::vector<PendingHandle>{pending});
    shard.queue.push_back(Job{key, request, *std::move(bench),
                              *std::move(allocation)});
  }
  shard.cv.notify_one();
  return pending;
}

Result<std::string> ServeDispatcher::ReportProfile(
    const CellRequest& request, const BranchProfile& profile) {
  if (profile.empty()) {
    return Status::MakeError(StatusCode::kInvalidArgument,
                             "profile report carries no observations");
  }
  if (!request.measure_sim_enc) {
    return Status::MakeError(
        StatusCode::kInvalidArgument,
        "profile reports require measure_sim_enc: the swap guard compares "
        "trace-measured cycles");
  }
  ExploreSpec spec = request.ToSpec();
  if (const Status valid = spec.Validate(); !valid.ok()) return valid;
  const ExploreCell cell = request.ToCell();
  Result<Benchmark> bench = BuildExploreDesign(cell.design, spec);
  if (!bench.ok()) return bench.status();
  Result<Allocation> allocation = BuildExploreAllocation(*bench, cell.alloc);
  if (!allocation.ok()) return allocation.status();
  const ScheduleRequest sched_request =
      MakeCellScheduleRequest(spec, *bench, *allocation, cell);
  const Fp128 key = ExploreCellKey(spec, cell, sched_request);
  Shard& shard = *shards_[static_cast<std::size_t>(cache_.shard_of(key))];

  std::int64_t traces = 0;
  std::uint32_t generation = 0;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    if (stopping_.load(std::memory_order_acquire)) {
      return Status::MakeError(StatusCode::kOverloaded, "server is draining");
    }
    AdaptEntry& entry = shard.adapt[key];
    if (entry.seq == 0) {
      entry.request = request;
      // Adapt runs are unbounded background work; a reporter's deadline
      // never applies to them.
      entry.request.deadline_ms = 0;
    }
    MergeProfile(entry.profile, profile);
    ++entry.seq;
    if (!entry.queued) {
      entry.queued = true;
      shard.adapt_queue.push_back(key);
    }
    traces = entry.profile.traces;
    generation = entry.generation;
  }
  shard.cv.notify_one();
  adapt_profiles_->Increment();
  return StrCat("profile accepted: ", traces,
                " traces accumulated, generation ", generation);
}

void ServeDispatcher::WorkerLoop(Shard* shard) {
  for (;;) {
    Job job;
    Fp128 adapt_key{0, 0};
    bool run_adapt = false;
    {
      std::unique_lock<std::mutex> lock(shard->mu);
      shard->cv.wait(lock, [this, shard] {
        return !shard->queue.empty() || !shard->adapt_queue.empty() ||
               stopping_.load(std::memory_order_acquire);
      });
      // Request work always preempts the adapt lane: background
      // re-optimization only runs when no served request is waiting.
      if (!shard->queue.empty()) {
        job = std::move(shard->queue.front());
        shard->queue.pop_front();
      } else if (stopping_.load(std::memory_order_acquire)) {
        // stopping_ and an empty request queue, observed under the shard
        // mutex: no further job can be enqueued (Submit sheds once
        // stopping_), so the drain is complete for this worker. Queued
        // adapt work is dropped — it is best-effort optimization with no
        // attached waiters.
        return;
      } else {
        adapt_key = shard->adapt_queue.front();
        shard->adapt_queue.pop_front();
        run_adapt = true;
      }
    }
    if (run_adapt) {
      ExecuteAdapt(shard, adapt_key);
    } else {
      Execute(shard, std::move(job));
    }
  }
}

void ServeDispatcher::Execute(Shard* shard, Job job) {
  // The compute deadline is the least restrictive over the waiters attached
  // so far: any waiter without a deadline makes the run unbounded, else the
  // latest deadline wins. Each waiter's *reply* is still bounded by its own
  // deadline inside PendingResult::Wait.
  std::optional<Clock::time_point> deadline;
  bool unbounded = false;
  {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (const PendingHandle& waiter : shard->inflight[job.key]) {
      if (!waiter->deadline().has_value()) {
        unbounded = true;
        break;
      }
      if (!deadline.has_value() || *waiter->deadline() > *deadline) {
        deadline = waiter->deadline();
      }
    }
  }
  if (unbounded) deadline.reset();

  ServeOutcome outcome;
  bool computed = false;
  if (deadline.has_value() && Clock::now() >= *deadline) {
    outcome = DeadlineOutcome(
        job.request.deadline_ms,
        StrCat("deadline of ", job.request.deadline_ms,
               " ms expired in the admission queue"));
  } else {
    // Second-level probe: the durable store (survives restarts and
    // in-memory eviction). A hit replays the result once computed for this
    // key. The stored payload may predate the current wire layout, so
    // decode at the envelope's version and re-encode at the current one
    // rather than forwarding the stored bytes verbatim.
    if (options_.store != nullptr) {
      if (std::optional<std::string> artifact = options_.store->Get(job.key);
          artifact.has_value()) {
        if (Result<ExploreRun> replay = DecodeRunArtifact(*artifact);
            replay.ok()) {
          store_hits_->Increment();
          outcome.status = ResponseStatus::kOk;
          outcome.cache_hit = true;
          outcome.body = EncodeRunBody(*replay);
          computed = true;
        }
      }
      if (!computed) store_misses_->Increment();
    }
    if (!computed) {
      ExploreSpec spec = job.request.ToSpec();
      spec.base_options.deadline = deadline;
      spec.base_options.wave_workers = options_.wave_workers;
      sched_runs_->Increment();
      const ExploreRun run =
          RunBenchmarkCell(spec, job.bench, job.allocation,
                           job.request.ToCell());
      if (run.error_code == StatusCode::kDeadlineExceeded ||
          run.error_code == StatusCode::kCancelled) {
        outcome = DeadlineOutcome(job.request.deadline_ms, run.error);
      } else {
        sched_total_us_->Record(run.stats.phase.total_ns / 1000);
        sched_successor_us_->Record(run.stats.phase.successor_ns / 1000);
        sched_cofactor_us_->Record(run.stats.phase.cofactor_ns / 1000);
        sched_closure_us_->Record(run.stats.phase.closure_ns / 1000);
        sched_select_us_->Record(run.stats.phase.select_ns / 1000);
        sched_gc_us_->Record(run.stats.phase.gc_ns / 1000);
        // Completed outcomes — including deterministic scheduling failures
        // such as exhausted caps — are cacheable; deadline expiries are
        // not.
        outcome.status = ResponseStatus::kOk;
        outcome.body = EncodeRunBody(run);
      }
    }
  }

  // Publish to the cache/store *before* retiring the single-flight entry:
  // a concurrent identical Submit either attaches to the in-flight entry
  // (and is fulfilled below) or — once the entry is gone — finds the value
  // in the cache. There is no window where it would recompute.
  if (outcome.status == ResponseStatus::kOk) {
    cache_.Put(job.key, outcome.body);
    if (options_.store != nullptr && !outcome.cache_hit) {
      // Write-through: the store value is the response payload in an
      // artifact envelope, so a later (possibly post-restart) hit replays
      // these exact bytes. An I/O failure degrades durability, not the
      // response.
      (void)options_.store->Put(
          job.key, EncodeArtifact(ArtifactKind::kExploreRun, outcome.body));
    }
  }

  std::vector<PendingHandle> waiters;
  {
    std::lock_guard<std::mutex> lock(shard->mu);
    auto it = shard->inflight.find(job.key);
    waiters = std::move(it->second);
    shard->inflight.erase(it);
  }
  for (const PendingHandle& waiter : waiters) waiter->Fulfill(outcome);
  const int n = static_cast<int>(waiters.size());
  admitted_.fetch_sub(n, std::memory_order_acq_rel);
  queue_depth_->Add(-n);
}

void ServeDispatcher::ExecuteAdapt(Shard* shard, const Fp128& key) {
  // First run for this fingerprint: fold in any profile persisted by an
  // earlier process under the derived profile key. The store read happens
  // off the shard mutex — we are on the background lane, but Submit's hot
  // path shares the lock.
  if (options_.store != nullptr) {
    bool need_load = false;
    {
      std::lock_guard<std::mutex> lock(shard->mu);
      auto it = shard->adapt.find(key);
      if (it == shard->adapt.end()) return;
      need_load = !it->second.loaded_store;
    }
    if (need_load) {
      BranchProfile persisted;
      bool have = false;
      if (std::optional<std::string> stored =
              options_.store->Get(ProfileStoreKey(key));
          stored.has_value()) {
        if (Result<BranchProfile> decoded = DecodeProfileArtifact(*stored);
            decoded.ok()) {
          persisted = *std::move(decoded);
          have = true;
        }
      }
      std::lock_guard<std::mutex> lock(shard->mu);
      auto it = shard->adapt.find(key);
      if (it != shard->adapt.end() && !it->second.loaded_store) {
        it->second.loaded_store = true;
        if (have) MergeProfile(it->second.profile, persisted);
      }
    }
  }

  // Snapshot under the lock; derivation and re-scheduling run on the
  // snapshot with no lock held. `seq` detects reports that land mid-run.
  CellRequest request;
  BranchProfile profile;
  std::uint64_t seq = 0;
  std::uint32_t generation = 0;
  {
    std::lock_guard<std::mutex> lock(shard->mu);
    auto it = shard->adapt.find(key);
    if (it == shard->adapt.end()) return;
    request = it->second.request;
    profile = it->second.profile;
    seq = it->second.seq;
    generation = it->second.generation;
  }

  // Persist the accumulated profile so it survives restarts and eviction,
  // whether or not this round swaps anything.
  if (options_.store != nullptr) {
    (void)options_.store->Put(ProfileStoreKey(key),
                              EncodeProfileArtifact(profile));
  }

  const auto start = Clock::now();
  bool swapped = false;
  [&] {
    ExploreSpec spec = request.ToSpec();
    spec.base_options.wave_workers = options_.wave_workers;
    const ExploreCell cell = request.ToCell();
    Result<Benchmark> bench = BuildExploreDesign(cell.design, spec);
    if (!bench.ok()) return;
    Result<Allocation> allocation =
        BuildExploreAllocation(*bench, cell.alloc);
    if (!allocation.ok()) return;

    // Baseline: the currently published run for this fingerprint — cache
    // first, then store. When neither has one (nobody scheduled this key
    // yet, or it aged out), compute it from the request's own annotations
    // and publish it as generation 0, exactly as a served request would.
    ExploreRun baseline;
    bool have_baseline = false;
    if (std::optional<std::string> hit = cache_.Get(key); hit.has_value()) {
      if (Result<ExploreRun> decoded = DecodeRunBody(*hit); decoded.ok()) {
        baseline = *std::move(decoded);
        have_baseline = true;
      }
    }
    if (!have_baseline && options_.store != nullptr) {
      if (std::optional<std::string> artifact = options_.store->Get(key);
          artifact.has_value()) {
        if (Result<ExploreRun> decoded = DecodeRunArtifact(*artifact);
            decoded.ok()) {
          baseline = *std::move(decoded);
          have_baseline = true;
        }
      }
    }
    if (!have_baseline) {
      baseline = RunBenchmarkCell(spec, *bench, *allocation, cell);
      if (!baseline.ok) return;
      const std::string body = EncodeRunBody(baseline);
      cache_.Put(key, body);
      if (options_.store != nullptr) {
        (void)options_.store->Put(
            key, EncodeArtifact(ArtifactKind::kExploreRun, body));
      }
    }
    if (!baseline.ok) return;

    // Re-schedule with profile-derived probabilities on a copy of the
    // graph; the fingerprint — and thus the key being swapped — stays the
    // original request's.
    Benchmark adapted = *bench;
    const ApplyProfileResult derived =
        ApplyProfileToGraph(adapted.graph, profile);
    if (derived.applied == 0) return;
    const ExploreRun candidate =
        RunBenchmarkCell(spec, adapted, *allocation, cell);

    // Never swap worse: the candidate must measure strictly better on the
    // request's own trace set. enc_sim is the only probability-independent
    // metric the two runs share (enc_markov is computed against each run's
    // own annotations).
    if (!candidate.ok || !(candidate.enc_sim < baseline.enc_sim)) return;

    ArtifactMeta meta;
    meta.generation = generation + 1;
    meta.profile_digest = ProfileDigest(profile);
    const std::string body = EncodeRunBody(candidate);
    // Whole-value cache/store writes under their own locks: an in-flight
    // WAIT observes either the old bytes or the new bytes, never a mix.
    cache_.Put(key, body);
    if (options_.store != nullptr) {
      (void)options_.store->Put(
          key,
          EncodeArtifactWithMeta(ArtifactKind::kExploreRun, body, meta));
    }
    swapped = true;
  }();
  adapt_resched_us_->Record(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                            start)
          .count());
  if (swapped) {
    adapt_swaps_->Increment();
  } else {
    adapt_rejected_->Increment();
  }

  bool notify = false;
  {
    std::lock_guard<std::mutex> lock(shard->mu);
    auto it = shard->adapt.find(key);
    if (it != shard->adapt.end()) {
      if (swapped) it->second.generation = generation + 1;
      if (it->second.seq != seq &&
          !stopping_.load(std::memory_order_acquire)) {
        // Reports merged while we were re-scheduling: go again with the
        // richer profile (entry stays queued).
        shard->adapt_queue.push_back(key);
        notify = true;
      } else {
        it->second.queued = false;
      }
    }
  }
  if (notify) shard->cv.notify_one();
}

}  // namespace ws
