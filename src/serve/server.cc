#include "serve/server.h"

#include <chrono>
#include <future>
#include <unistd.h>
#include <utility>

#include "base/strings.h"
#include "explore/explore.h"
#include "explore/run_codec.h"
#include "io/artifact_store.h"
#include "io/codec.h"

namespace ws {
namespace {

using Clock = std::chrono::steady_clock;

std::int64_t MicrosSince(Clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                               start)
      .count();
}

}  // namespace

Status ServerOptions::Validate() const {
  if (tcp_port < 0 && unix_path.empty()) {
    return Status::MakeError(StatusCode::kInvalidArgument,
                             "ServerOptions: no listener (need a TCP port "
                             "and/or a unix socket path)");
  }
  if (tcp_port > 65535) {
    return Status::MakeError(
        StatusCode::kInvalidArgument,
        StrCat("ServerOptions: tcp_port out of range: ", tcp_port));
  }
  if (workers < 1) {
    return Status::MakeError(
        StatusCode::kInvalidArgument,
        StrCat("ServerOptions: workers must be >= 1, got ", workers));
  }
  if (max_queue < 1) {
    return Status::MakeError(
        StatusCode::kInvalidArgument,
        StrCat("ServerOptions: max_queue must be >= 1, got ", max_queue));
  }
  return Status::Ok();
}

ServeServer::ServeServer(ServerOptions options)
    : options_(std::move(options)), cache_(options_.cache_capacity) {
  req_total_ = metrics_.counter("serve.requests_total");
  resp_ok_ = metrics_.counter("serve.responses_ok");
  resp_invalid_ = metrics_.counter("serve.responses_invalid_request");
  resp_deadline_ = metrics_.counter("serve.responses_deadline_exceeded");
  resp_overloaded_ = metrics_.counter("serve.responses_overloaded");
  resp_internal_ = metrics_.counter("serve.responses_internal_error");
  cache_hits_ = metrics_.counter("serve.cache_hits");
  cache_misses_ = metrics_.counter("serve.cache_misses");
  store_hits_ = metrics_.counter("serve.store_hits");
  store_misses_ = metrics_.counter("serve.store_misses");
  connections_total_ = metrics_.counter("serve.connections_total");
  queue_depth_ = metrics_.gauge("serve.queue_depth");
  open_connections_ = metrics_.gauge("serve.open_connections");
  latency_us_ = metrics_.histogram("serve.latency_us");
  sched_total_us_ = metrics_.histogram("serve.sched_total_us");
  sched_successor_us_ = metrics_.histogram("serve.sched_successor_us");
  sched_cofactor_us_ = metrics_.histogram("serve.sched_cofactor_us");
  sched_closure_us_ = metrics_.histogram("serve.sched_closure_us");
  sched_select_us_ = metrics_.histogram("serve.sched_select_us");
  sched_gc_us_ = metrics_.histogram("serve.sched_gc_us");
}

ServeServer::~ServeServer() { Stop(); }

Status ServeServer::Start() {
  if (const Status s = options_.Validate(); !s.ok()) return s;
  WS_CHECK_MSG(!started_, "ServeServer::Start called twice");

  if (!options_.store_dir.empty()) {
    ArtifactStoreOptions store_options;
    store_options.dir = options_.store_dir;
    store_options.max_bytes = options_.store_max_bytes;
    Result<std::unique_ptr<ArtifactStore>> store =
        ArtifactStore::Open(std::move(store_options));
    if (!store.ok()) return store.status();
    store_ = std::move(store).value();
    // Warm-start the in-memory cache: the store enumerates least recently
    // used first, so replaying through the LRU cache reproduces recency
    // (capacity overflow keeps exactly the most recent entries). Cache
    // values are current-version response payloads; store values wrap a
    // possibly older payload layout in an artifact envelope — decode at the
    // stored version and re-encode at the current one, skipping anything
    // undecodable.
    store_->ForEachLru([this](const Fp128& key, const std::string& artifact) {
      Result<ExploreRun> run = DecodeRunArtifact(artifact);
      if (run.ok()) cache_.Put(key, EncodeRunBody(*run));
    });
  }

  if (options_.tcp_port >= 0) {
    Result<Socket> listener =
        ListenTcp(options_.tcp_host, options_.tcp_port, /*backlog=*/64);
    if (!listener.ok()) return listener.status();
    tcp_listener_ = std::move(listener).value();
    Result<int> port = BoundPort(tcp_listener_);
    if (!port.ok()) return port.status();
    bound_tcp_port_ = *port;
  }
  if (!options_.unix_path.empty()) {
    Result<Socket> listener = ListenUnix(options_.unix_path, /*backlog=*/64);
    if (!listener.ok()) return listener.status();
    unix_listener_ = std::move(listener).value();
  }

  pool_ = std::make_unique<ThreadPool>(options_.workers);
  if (tcp_listener_.valid()) {
    acceptors_.emplace_back([this] { AcceptLoop(&tcp_listener_); });
  }
  if (unix_listener_.valid()) {
    acceptors_.emplace_back([this] { AcceptLoop(&unix_listener_); });
  }
  started_ = true;
  return Status::Ok();
}

void ServeServer::Wait() {
  std::unique_lock<std::mutex> lock(stop_mu_);
  stop_cv_.wait(lock, [this] { return stop_requested_; });
}

void ServeServer::RequestStop() {
  {
    std::lock_guard<std::mutex> lock(stop_mu_);
    stop_requested_ = true;
  }
  stop_cv_.notify_all();
}

bool ServeServer::stop_requested() const {
  std::lock_guard<std::mutex> lock(stop_mu_);
  return stop_requested_;
}

void ServeServer::Stop() {
  if (!started_ || stopped_) return;
  stopped_ = true;
  RequestStop();
  stopping_.store(true, std::memory_order_relaxed);
  for (std::thread& t : acceptors_) t.join();
  acceptors_.clear();
  // Connection threads exit at their next poll tick, after finishing any
  // in-flight request (whose pool task the thread is blocked on).
  for (;;) {
    std::vector<std::thread> batch;
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      batch.swap(connections_);
    }
    if (batch.empty()) break;
    for (std::thread& t : batch) t.join();
  }
  pool_->Shutdown();
  tcp_listener_.Close();
  unix_listener_.Close();
  if (!options_.unix_path.empty()) {
    ::unlink(options_.unix_path.c_str());
  }
}

void ServeServer::AcceptLoop(Socket* listener) {
  while (!stopping_.load(std::memory_order_relaxed)) {
    Result<bool> readable = WaitReadable(*listener, /*timeout_ms=*/100);
    if (!readable.ok() || !*readable) continue;
    Result<Socket> conn = Accept(*listener);
    if (!conn.ok()) continue;
    connections_total_->Increment();
    std::lock_guard<std::mutex> lock(conn_mu_);
    connections_.emplace_back(
        [this, c = std::make_shared<Socket>(std::move(conn).value())]() mutable {
          HandleConnection(std::move(*c));
        });
  }
}

void ServeServer::HandleConnection(Socket conn) {
  open_connections_->Add(1);
  while (!stopping_.load(std::memory_order_relaxed)) {
    Result<bool> readable = WaitReadable(conn, /*timeout_ms=*/100);
    if (!readable.ok()) break;
    if (!*readable) continue;
    Result<std::string> frame = RecvFrame(conn);
    if (!frame.ok()) break;  // peer closed or corrupted the stream

    const auto admitted = Clock::now();
    req_total_->Increment();

    Result<std::pair<Verb, std::string>> decoded = DecodeRequestFrame(*frame);
    if (!decoded.ok()) {
      resp_invalid_->Increment();
      SendFrame(conn, EncodeResponseFrame(ResponseStatus::kInvalidRequest,
                                          false, decoded.error()));
      continue;
    }

    switch (decoded->first) {
      case Verb::kPing:
        SendFrame(conn,
                  EncodeResponseFrame(ResponseStatus::kOk, false, "pong"));
        break;
      case Verb::kStats:
        SendFrame(conn,
                  EncodeResponseFrame(ResponseStatus::kOk, false,
                                      StatsText()));
        break;
      case Verb::kShutdown:
        SendFrame(conn, EncodeResponseFrame(ResponseStatus::kOk, false,
                                            "draining"));
        RequestStop();
        break;
      case Verb::kSchedule: {
        ScheduleOutcome outcome;
        Result<CellRequest> request = DecodeCellRequest(decoded->second);
        if (!request.ok()) {
          outcome.status = ResponseStatus::kInvalidRequest;
          outcome.body = request.error();
        } else if (const Status valid = request->ToSpec().Validate();
                   !valid.ok()) {
          outcome.status = ResponseStatus::kInvalidRequest;
          outcome.body = valid.message();
        } else if (admitted_.fetch_add(1, std::memory_order_acq_rel) >=
                   options_.max_queue) {
          admitted_.fetch_sub(1, std::memory_order_acq_rel);
          outcome.status = ResponseStatus::kOverloaded;
          outcome.body =
              StrCat("admission queue full (", options_.max_queue,
                     " requests in flight); retry later");
        } else {
          queue_depth_->Add(1);
          std::promise<ScheduleOutcome> promise;
          std::future<ScheduleOutcome> future = promise.get_future();
          const CellRequest cell = *std::move(request);
          pool_->Submit([this, cell, admitted, &promise] {
            try {
              promise.set_value(ExecuteSchedule(cell, admitted));
            } catch (const std::exception& e) {
              ScheduleOutcome failed;
              failed.status = ResponseStatus::kInternalError;
              failed.body = e.what();
              promise.set_value(std::move(failed));
            }
            queue_depth_->Add(-1);
            admitted_.fetch_sub(1, std::memory_order_acq_rel);
          });
          outcome = future.get();
        }
        switch (outcome.status) {
          case ResponseStatus::kOk: resp_ok_->Increment(); break;
          case ResponseStatus::kInvalidRequest:
            resp_invalid_->Increment();
            break;
          case ResponseStatus::kDeadlineExceeded:
            resp_deadline_->Increment();
            break;
          case ResponseStatus::kOverloaded:
            resp_overloaded_->Increment();
            break;
          case ResponseStatus::kInternalError:
            resp_internal_->Increment();
            break;
        }
        latency_us_->Record(MicrosSince(admitted));
        SendFrame(conn, EncodeResponseFrame(outcome.status,
                                            outcome.cache_hit, outcome.body));
        break;
      }
    }
  }
  open_connections_->Add(-1);
}

ServeServer::ScheduleOutcome ServeServer::ExecuteSchedule(
    const CellRequest& request, Clock::time_point admitted) {
  ScheduleOutcome outcome;
  const std::optional<Clock::time_point> deadline =
      request.deadline_ms > 0
          ? std::optional<Clock::time_point>(
                admitted + std::chrono::milliseconds(request.deadline_ms))
          : std::nullopt;
  if (deadline.has_value() && Clock::now() >= *deadline) {
    outcome.status = ResponseStatus::kDeadlineExceeded;
    outcome.body = StrCat("deadline of ", request.deadline_ms,
                          " ms expired in the admission queue");
    return outcome;
  }

  ExploreSpec spec = request.ToSpec();
  const ExploreCell cell = request.ToCell();

  // The same build path RunExploreCell takes; build failures are invalid
  // requests at the protocol level (the design or allocation text itself is
  // wrong), with the exact message local sweeps would record in the run.
  Result<Benchmark> bench = BuildExploreDesign(cell.design, spec);
  if (!bench.ok()) {
    outcome.status = ResponseStatus::kInvalidRequest;
    outcome.body = bench.error();
    return outcome;
  }
  Result<Allocation> allocation = BuildExploreAllocation(*bench, cell.alloc);
  if (!allocation.ok()) {
    outcome.status = ResponseStatus::kInvalidRequest;
    outcome.body = allocation.error();
    return outcome;
  }

  // Canonical request fingerprint -> cache probe. Deadline fields never
  // participate (sched/closure.h), so a deadline-bounded request hits
  // results cached by unbounded ones and vice versa.
  const ScheduleRequest sched_request =
      MakeCellScheduleRequest(spec, *bench, *allocation, cell);
  const Fp128 key = ExploreCellKey(spec, cell, sched_request);

  if (std::optional<std::string> cached = cache_.Get(key);
      cached.has_value()) {
    cache_hits_->Increment();
    outcome.status = ResponseStatus::kOk;
    outcome.cache_hit = true;
    outcome.body = *std::move(cached);
    return outcome;
  }
  cache_misses_->Increment();

  // Second-level probe: the durable store (survives restarts and in-memory
  // eviction). A hit replays the result once computed for this key and
  // re-primes the cache. The stored payload may predate the current wire
  // layout, so decode at the envelope's version and re-encode at the
  // current one rather than forwarding the stored bytes verbatim.
  if (store_ != nullptr) {
    if (std::optional<std::string> artifact = store_->Get(key);
        artifact.has_value()) {
      Result<ExploreRun> replay = DecodeRunArtifact(*artifact);
      if (replay.ok()) {
        store_hits_->Increment();
        outcome.status = ResponseStatus::kOk;
        outcome.cache_hit = true;
        outcome.body = EncodeRunBody(*replay);
        cache_.Put(key, outcome.body);
        return outcome;
      }
    }
    store_misses_->Increment();
  }

  spec.base_options.deadline = deadline;
  ExploreRun run = RunBenchmarkCell(spec, *bench, *allocation, cell);
  if (run.error_code == StatusCode::kDeadlineExceeded ||
      run.error_code == StatusCode::kCancelled) {
    outcome.status = ResponseStatus::kDeadlineExceeded;
    outcome.body = run.error;
    return outcome;
  }

  sched_total_us_->Record(run.stats.phase.total_ns / 1000);
  sched_successor_us_->Record(run.stats.phase.successor_ns / 1000);
  sched_cofactor_us_->Record(run.stats.phase.cofactor_ns / 1000);
  sched_closure_us_->Record(run.stats.phase.closure_ns / 1000);
  sched_select_us_->Record(run.stats.phase.select_ns / 1000);
  sched_gc_us_->Record(run.stats.phase.gc_ns / 1000);

  // Completed outcomes — including deterministic scheduling failures such
  // as exhausted caps — are cacheable; deadline expiries (above) are not.
  outcome.status = ResponseStatus::kOk;
  outcome.body = EncodeRun(run);
  cache_.Put(key, outcome.body);
  if (store_ != nullptr) {
    // Write-through: the store value is the response payload in an artifact
    // envelope, so a later (possibly post-restart) hit replays these exact
    // bytes. An I/O failure degrades durability, not the response.
    (void)store_->Put(key, EncodeArtifact(ArtifactKind::kExploreRun,
                                          outcome.body));
  }
  return outcome;
}

std::string ServeServer::StatsText() {
  const std::int64_t hits = cache_hits_->value();
  const std::int64_t misses = cache_misses_->value();
  const double rate =
      hits + misses == 0
          ? 0.0
          : 100.0 * static_cast<double>(hits) /
                static_cast<double>(hits + misses);
  std::string text =
      metrics_.RenderText() +
      StrPrintf("serve.cache_entries %lld\n",
                static_cast<long long>(cache_.size())) +
      StrPrintf("serve.cache_hit_rate_pct %.2f\n", rate);
  if (store_ != nullptr) {
    const ArtifactStoreCounters c = store_->counters();
    text += StrPrintf("serve.store_entries %lld\n",
                      static_cast<long long>(store_->entries()));
    text += StrPrintf("serve.store_live_bytes %llu\n",
                      static_cast<unsigned long long>(store_->live_bytes()));
    text += StrPrintf("serve.store_log_bytes %llu\n",
                      static_cast<unsigned long long>(store_->log_bytes()));
    text += StrPrintf("serve.store_loaded %lld\n",
                      static_cast<long long>(c.loaded));
    text += StrPrintf("serve.store_evictions %lld\n",
                      static_cast<long long>(c.evictions));
    text += StrPrintf("serve.store_compactions %lld\n",
                      static_cast<long long>(c.compactions));
    text += StrPrintf("serve.store_corrupt_dropped %lld\n",
                      static_cast<long long>(c.corrupt_dropped));
  }
  return text;
}

}  // namespace ws
