#include "serve/server.h"

#include <chrono>
#include <unistd.h>
#include <unordered_map>
#include <utility>

#include "adapt/profile.h"
#include "base/strings.h"
#include "explore/run_codec.h"
#include "io/artifact_store.h"

namespace ws {
namespace {

using Clock = std::chrono::steady_clock;

std::int64_t MicrosSince(Clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                               start)
      .count();
}

}  // namespace

Status ServerOptions::Validate() const {
  if (tcp_port < 0 && unix_path.empty()) {
    return Status::MakeError(StatusCode::kInvalidArgument,
                             "ServerOptions: no listener (need a TCP port "
                             "and/or a unix socket path)");
  }
  if (tcp_port > 65535) {
    return Status::MakeError(
        StatusCode::kInvalidArgument,
        StrCat("ServerOptions: tcp_port out of range: ", tcp_port));
  }
  if (shards < 1 || shards > 256) {
    return Status::MakeError(
        StatusCode::kInvalidArgument,
        StrCat("ServerOptions: shards must be in [1, 256], got ", shards));
  }
  if (workers < 1) {
    return Status::MakeError(
        StatusCode::kInvalidArgument,
        StrCat("ServerOptions: workers must be >= 1, got ", workers));
  }
  if (max_queue < 1) {
    return Status::MakeError(
        StatusCode::kInvalidArgument,
        StrCat("ServerOptions: max_queue must be >= 1, got ", max_queue));
  }
  if (wave_workers < 0) {
    return Status::MakeError(
        StatusCode::kInvalidArgument,
        StrCat("ServerOptions: wave_workers must be >= 0, got ",
               wave_workers));
  }
  return Status::Ok();
}

ServeServer::ServeServer(ServerOptions options)
    : options_(std::move(options)) {
  req_total_ = metrics_.counter("serve.requests_total");
  resp_ok_ = metrics_.counter("serve.responses_ok");
  resp_invalid_ = metrics_.counter("serve.responses_invalid_request");
  resp_deadline_ = metrics_.counter("serve.responses_deadline_exceeded");
  resp_overloaded_ = metrics_.counter("serve.responses_overloaded");
  resp_internal_ = metrics_.counter("serve.responses_internal_error");
  connections_total_ = metrics_.counter("serve.connections_total");
  open_connections_ = metrics_.gauge("serve.open_connections");
  latency_us_ = metrics_.histogram("serve.latency_us");
  // Registered up front so STATS renders the full namespace from the first
  // request; the dispatcher fetches the same entries by name.
  metrics_.counter("serve.sched_runs");
  metrics_.counter("serve.coalesced");
  metrics_.counter("serve.cache_hits");
  metrics_.counter("serve.cache_misses");
  metrics_.counter("serve.store_hits");
  metrics_.counter("serve.store_misses");
  metrics_.gauge("serve.queue_depth");
  metrics_.histogram("serve.sched_total_us");
  metrics_.histogram("serve.sched_successor_us");
  metrics_.histogram("serve.sched_cofactor_us");
  metrics_.histogram("serve.sched_closure_us");
  metrics_.histogram("serve.sched_select_us");
  metrics_.histogram("serve.sched_gc_us");
  metrics_.counter("serve.adapt_profiles");
  metrics_.counter("serve.adapt_swaps");
  metrics_.counter("serve.adapt_rejected");
  metrics_.histogram("serve.adapt_resched_us");
}

ServeServer::~ServeServer() { Stop(); }

Status ServeServer::Start() {
  if (const Status s = options_.Validate(); !s.ok()) return s;
  WS_CHECK_MSG(!started_, "ServeServer::Start called twice");

  if (!options_.store_dir.empty()) {
    ArtifactStoreOptions store_options;
    store_options.dir = options_.store_dir;
    store_options.max_bytes = options_.store_max_bytes;
    Result<std::unique_ptr<ArtifactStore>> store =
        ArtifactStore::Open(std::move(store_options));
    if (!store.ok()) return store.status();
    store_ = std::move(store).value();
  }

  DispatcherOptions dispatch_options;
  dispatch_options.shards = options_.shards;
  dispatch_options.workers = options_.workers;
  dispatch_options.max_queue = options_.max_queue;
  dispatch_options.cache_capacity = options_.cache_capacity;
  dispatch_options.wave_workers = options_.wave_workers;
  dispatch_options.store = store_.get();
  dispatcher_ =
      std::make_unique<ServeDispatcher>(dispatch_options, &metrics_);

  if (store_ != nullptr) {
    // Warm-start the in-memory cache: the store enumerates least recently
    // used first, so replaying through the LRU cache reproduces recency
    // (capacity overflow keeps exactly the most recent entries). Cache
    // values are current-version response payloads; store values wrap a
    // possibly older payload layout in an artifact envelope — decode at the
    // stored version and re-encode at the current one, skipping anything
    // undecodable. Sharding is transparent here: Put routes each key to the
    // segment its requests will probe.
    store_->ForEachLru([this](const Fp128& key, const std::string& artifact) {
      Result<ExploreRun> run = DecodeRunArtifact(artifact);
      if (run.ok()) dispatcher_->cache().Put(key, EncodeRunBody(*run));
    });
  }

  if (options_.tcp_port >= 0) {
    Result<Socket> listener =
        ListenTcp(options_.tcp_host, options_.tcp_port, /*backlog=*/64);
    if (!listener.ok()) return listener.status();
    tcp_listener_ = std::move(listener).value();
    Result<int> port = BoundPort(tcp_listener_);
    if (!port.ok()) return port.status();
    bound_tcp_port_ = *port;
  }
  if (!options_.unix_path.empty()) {
    Result<Socket> listener = ListenUnix(options_.unix_path, /*backlog=*/64);
    if (!listener.ok()) return listener.status();
    unix_listener_ = std::move(listener).value();
  }

  dispatcher_->Start();
  if (tcp_listener_.valid()) {
    acceptors_.emplace_back([this] { AcceptLoop(&tcp_listener_); });
  }
  if (unix_listener_.valid()) {
    acceptors_.emplace_back([this] { AcceptLoop(&unix_listener_); });
  }
  started_ = true;
  return Status::Ok();
}

void ServeServer::Wait() {
  std::unique_lock<std::mutex> lock(stop_mu_);
  stop_cv_.wait(lock, [this] { return stop_requested_; });
}

void ServeServer::RequestStop() {
  {
    std::lock_guard<std::mutex> lock(stop_mu_);
    stop_requested_ = true;
  }
  stop_cv_.notify_all();
}

bool ServeServer::stop_requested() const {
  std::lock_guard<std::mutex> lock(stop_mu_);
  return stop_requested_;
}

void ServeServer::Stop() {
  if (!started_ || stopped_) return;
  stopped_ = true;
  RequestStop();
  stopping_.store(true, std::memory_order_relaxed);
  for (std::thread& t : acceptors_) t.join();
  acceptors_.clear();
  // Connection threads exit at their next poll tick, after finishing any
  // in-flight wait; the dispatcher workers are still running, so every
  // admitted request is fulfilled before its waiter unblocks.
  for (;;) {
    std::vector<std::thread> batch;
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      batch.swap(connections_);
    }
    if (batch.empty()) break;
    for (std::thread& t : batch) t.join();
  }
  dispatcher_->Drain();
  tcp_listener_.Close();
  unix_listener_.Close();
  if (!options_.unix_path.empty()) {
    ::unlink(options_.unix_path.c_str());
  }
}

void ServeServer::AcceptLoop(Socket* listener) {
  while (!stopping_.load(std::memory_order_relaxed)) {
    Result<bool> readable = WaitReadable(*listener, /*timeout_ms=*/100);
    if (!readable.ok() || !*readable) continue;
    Result<Socket> conn = Accept(*listener);
    if (!conn.ok()) continue;
    connections_total_->Increment();
    std::lock_guard<std::mutex> lock(conn_mu_);
    connections_.emplace_back(
        [this, c = std::make_shared<Socket>(std::move(conn).value())]() mutable {
          HandleConnection(std::move(*c));
        });
  }
}

std::string ServeServer::FinishRequest(const PendingHandle& handle) {
  const ServeOutcome outcome = handle->Wait();
  switch (outcome.status) {
    case ResponseStatus::kOk: resp_ok_->Increment(); break;
    case ResponseStatus::kInvalidRequest: resp_invalid_->Increment(); break;
    case ResponseStatus::kDeadlineExceeded:
      resp_deadline_->Increment();
      break;
    case ResponseStatus::kOverloaded: resp_overloaded_->Increment(); break;
    case ResponseStatus::kInternalError: resp_internal_->Increment(); break;
  }
  latency_us_->Record(MicrosSince(handle->admitted()));
  return EncodeResponseFrame(outcome.status, outcome.cache_hit, outcome.body);
}

void ServeServer::HandleConnection(Socket conn) {
  open_connections_->Add(1);
  // Tickets are connection-scoped: issued by kSubmit, consumed by the first
  // kWait, gone when the connection closes. No cross-connection table, no
  // shared lock — the map lives on this thread's stack.
  std::unordered_map<std::uint64_t, PendingHandle> tickets;
  std::uint64_t next_ticket = 1;
  while (!stopping_.load(std::memory_order_relaxed)) {
    Result<bool> readable = WaitReadable(conn, /*timeout_ms=*/100);
    if (!readable.ok()) break;
    if (!*readable) continue;
    Result<std::string> frame = RecvFrame(conn);
    if (!frame.ok()) break;  // peer closed or corrupted the stream

    const auto admitted = Clock::now();
    req_total_->Increment();

    Result<std::pair<Verb, std::string>> decoded = DecodeRequestFrame(*frame);
    if (!decoded.ok()) {
      resp_invalid_->Increment();
      SendFrame(conn, EncodeResponseFrame(ResponseStatus::kInvalidRequest,
                                          false, decoded.error()));
      continue;
    }

    switch (decoded->first) {
      case Verb::kPing:
        SendFrame(conn,
                  EncodeResponseFrame(ResponseStatus::kOk, false, "pong"));
        break;
      case Verb::kStats:
        SendFrame(conn,
                  EncodeResponseFrame(ResponseStatus::kOk, false,
                                      StatsText()));
        break;
      case Verb::kShutdown:
        SendFrame(conn, EncodeResponseFrame(ResponseStatus::kOk, false,
                                            "draining"));
        RequestStop();
        break;
      case Verb::kSubmit: {
        Result<CellRequest> request = DecodeCellRequest(decoded->second);
        if (!request.ok()) {
          resp_invalid_->Increment();
          SendFrame(conn, EncodeResponseFrame(ResponseStatus::kInvalidRequest,
                                              false, request.error()));
          break;
        }
        const std::uint64_t ticket = next_ticket++;
        tickets.emplace(ticket, dispatcher_->Submit(*request, admitted));
        SendFrame(conn, EncodeResponseFrame(ResponseStatus::kOk, false,
                                            EncodeTicketBody(ticket)));
        break;
      }
      case Verb::kWait: {
        Result<std::uint64_t> ticket = DecodeTicketBody(decoded->second);
        if (!ticket.ok()) {
          resp_invalid_->Increment();
          SendFrame(conn, EncodeResponseFrame(ResponseStatus::kInvalidRequest,
                                              false, ticket.error()));
          break;
        }
        auto it = tickets.find(*ticket);
        if (it == tickets.end()) {
          resp_invalid_->Increment();
          SendFrame(conn,
                    EncodeResponseFrame(
                        ResponseStatus::kInvalidRequest, false,
                        StrCat("unknown or already-consumed ticket ",
                               *ticket)));
          break;
        }
        const PendingHandle handle = std::move(it->second);
        tickets.erase(it);
        SendFrame(conn, FinishRequest(handle));
        break;
      }
      case Verb::kSchedule: {
        Result<CellRequest> request = DecodeCellRequest(decoded->second);
        if (!request.ok()) {
          resp_invalid_->Increment();
          SendFrame(conn, EncodeResponseFrame(ResponseStatus::kInvalidRequest,
                                              false, request.error()));
          break;
        }
        // Submit + wait in one round trip; shares the dispatcher path with
        // kSubmit, so coalescing and sharding apply identically.
        SendFrame(conn,
                  FinishRequest(dispatcher_->Submit(*request, admitted)));
        break;
      }
      case Verb::kProfile: {
        Result<ProfileReportBody> body =
            DecodeProfileReportBody(decoded->second);
        Result<CellRequest> request =
            body.ok() ? DecodeCellRequest(body->cell_request)
                      : Result<CellRequest>(body.status());
        Result<BranchProfile> profile =
            body.ok() ? DecodeProfilePayload(body->profile_payload)
                      : Result<BranchProfile>(body.status());
        if (!request.ok() || !profile.ok()) {
          resp_invalid_->Increment();
          SendFrame(conn,
                    EncodeResponseFrame(
                        ResponseStatus::kInvalidRequest, false,
                        !request.ok() ? request.error() : profile.error()));
          break;
        }
        // Accumulation is synchronous (the ack means the profile is merged
        // and queued); the re-schedule itself runs on the background lane.
        Result<std::string> ack =
            dispatcher_->ReportProfile(*request, *profile);
        if (!ack.ok()) {
          resp_invalid_->Increment();
          SendFrame(conn, EncodeResponseFrame(ResponseStatus::kInvalidRequest,
                                              false, ack.error()));
          break;
        }
        resp_ok_->Increment();
        SendFrame(conn, EncodeResponseFrame(ResponseStatus::kOk, false, *ack));
        break;
      }
    }
  }
  open_connections_->Add(-1);
}

std::string ServeServer::StatsText() {
  const std::int64_t hits = metrics_.counter("serve.cache_hits")->value();
  const std::int64_t misses = metrics_.counter("serve.cache_misses")->value();
  const double rate =
      hits + misses == 0
          ? 0.0
          : 100.0 * static_cast<double>(hits) /
                static_cast<double>(hits + misses);
  std::string text =
      metrics_.RenderText() +
      StrPrintf("serve.cache_entries %lld\n",
                static_cast<long long>(dispatcher_->cache().size())) +
      StrPrintf("serve.cache_hit_rate_pct %.2f\n", rate) +
      StrPrintf("serve.shards %d\n", options_.shards);
  if (store_ != nullptr) {
    const ArtifactStoreCounters c = store_->counters();
    text += StrPrintf("serve.store_entries %lld\n",
                      static_cast<long long>(store_->entries()));
    text += StrPrintf("serve.store_live_bytes %llu\n",
                      static_cast<unsigned long long>(store_->live_bytes()));
    text += StrPrintf("serve.store_log_bytes %llu\n",
                      static_cast<unsigned long long>(store_->log_bytes()));
    text += StrPrintf("serve.store_loaded %lld\n",
                      static_cast<long long>(c.loaded));
    text += StrPrintf("serve.store_evictions %lld\n",
                      static_cast<long long>(c.evictions));
    text += StrPrintf("serve.store_compactions %lld\n",
                      static_cast<long long>(c.compactions));
    text += StrPrintf("serve.store_corrupt_dropped %lld\n",
                      static_cast<long long>(c.corrupt_dropped));
  }
  return text;
}

}  // namespace ws
