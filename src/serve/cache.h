// Bounded LRU result cache for the scheduling service, sharded by
// fingerprint hash.
//
// Keys are 128-bit request fingerprints (sched/closure.h); values are
// encoded response payloads, stored verbatim so a hit replays the exact
// bytes of the original response.
//
// `ResultCache` is one LRU segment behind one mutex (entries are small
// strings — metrics, not STGs — so the critical sections are copies, not
// computation). `ShardedResultCache` splits the key space across N such
// segments so concurrent requests with different fingerprints never contend
// on a shared cache mutex; the shard of a key is the same function the
// dispatcher uses to pick a worker shard, which is what gives each serve
// shard sole ownership of its LRU segment.
#ifndef WS_SERVE_CACHE_H
#define WS_SERVE_CACHE_H

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "base/hashing.h"

namespace ws {

class ResultCache {
 public:
  // capacity == 0 disables caching (every Get misses, Put is a no-op).
  explicit ResultCache(std::size_t capacity) : capacity_(capacity) {}

  // Returns the cached payload and refreshes the entry's recency.
  std::optional<std::string> Get(const Fp128& key);

  // Inserts or refreshes; evicts the least-recently-used entry beyond
  // capacity.
  void Put(const Fp128& key, std::string payload);

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  std::int64_t hits() const;
  std::int64_t misses() const;
  std::int64_t evictions() const;

 private:
  using Entry = std::pair<Fp128, std::string>;

  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<Fp128, std::list<Entry>::iterator, Fp128Hash> index_;
  std::int64_t hits_ = 0;
  std::int64_t misses_ = 0;
  std::int64_t evictions_ = 0;
};

// N independent LRU segments; a key always lives in shard_of(key). The
// total capacity is divided evenly (each shard gets at least one entry
// unless the whole cache is disabled with capacity 0), and the aggregate
// counters sum over segments, so a 1-shard instance behaves exactly like a
// bare ResultCache.
class ShardedResultCache {
 public:
  ShardedResultCache(std::size_t capacity, int shards);

  // The owning shard: stable for a key, uniform over the fingerprint space
  // (the lanes are SplitMix64-mixed already, so modulo is unbiased enough).
  int shard_of(const Fp128& key) const {
    return static_cast<int>((key.hi ^ key.lo) %
                            static_cast<std::uint64_t>(shards_.size()));
  }

  std::optional<std::string> Get(const Fp128& key) {
    return shards_[static_cast<std::size_t>(shard_of(key))]->Get(key);
  }
  void Put(const Fp128& key, std::string payload) {
    shards_[static_cast<std::size_t>(shard_of(key))]->Put(key,
                                                          std::move(payload));
  }

  int shards() const { return static_cast<int>(shards_.size()); }
  std::size_t capacity() const { return capacity_; }

  // Aggregates across shards.
  std::size_t size() const;
  std::int64_t hits() const;
  std::int64_t misses() const;
  std::int64_t evictions() const;

 private:
  const std::size_t capacity_;
  std::vector<std::unique_ptr<ResultCache>> shards_;
};

}  // namespace ws

#endif  // WS_SERVE_CACHE_H
