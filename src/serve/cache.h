// Bounded LRU result cache for the scheduling service.
//
// Keys are 128-bit request fingerprints (sched/closure.h); values are
// encoded response payloads, stored verbatim so a hit replays the exact
// bytes of the original response. Thread-safe; every public member takes the
// one internal mutex (entries are small strings — metrics, not STGs — so
// the critical sections are copies, not computation).
#ifndef WS_SERVE_CACHE_H
#define WS_SERVE_CACHE_H

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>

#include "base/hashing.h"

namespace ws {

class ResultCache {
 public:
  // capacity == 0 disables caching (every Get misses, Put is a no-op).
  explicit ResultCache(std::size_t capacity) : capacity_(capacity) {}

  // Returns the cached payload and refreshes the entry's recency.
  std::optional<std::string> Get(const Fp128& key);

  // Inserts or refreshes; evicts the least-recently-used entry beyond
  // capacity.
  void Put(const Fp128& key, std::string payload);

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  std::int64_t hits() const;
  std::int64_t misses() const;
  std::int64_t evictions() const;

 private:
  using Entry = std::pair<Fp128, std::string>;

  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<Fp128, std::list<Entry>::iterator, Fp128Hash> index_;
  std::int64_t hits_ = 0;
  std::int64_t misses_ = 0;
  std::int64_t evictions_ = 0;
};

}  // namespace ws

#endif  // WS_SERVE_CACHE_H
