#include "serve/metrics.h"

#include <algorithm>
#include <bit>
#include <sstream>

#include "base/strings.h"

namespace ws {
namespace {

int BucketOf(std::int64_t sample) {
  if (sample <= 0) return 0;
  return std::bit_width(static_cast<std::uint64_t>(sample));
}

// Geometric midpoint of bucket b's range [2^(b-1), 2^b).
double BucketMid(int b) {
  if (b == 0) return 0.0;
  const double lo = static_cast<double>(1ull << (b - 1));
  return lo * 1.5;
}

}  // namespace

void Histogram::Record(std::int64_t sample) {
  if (sample < 0) sample = 0;
  buckets_[BucketOf(sample)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(sample, std::memory_order_relaxed);
  std::int64_t prev = max_.load(std::memory_order_relaxed);
  while (sample > prev &&
         !max_.compare_exchange_weak(prev, sample,
                                     std::memory_order_relaxed)) {
  }
}

double Histogram::Quantile(double q) const {
  const std::int64_t n = count();
  if (n == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(n);
  double seen = 0.0;
  for (int b = 0; b < kBuckets; ++b) {
    const std::int64_t in_bucket =
        buckets_[b].load(std::memory_order_relaxed);
    if (in_bucket == 0) continue;
    seen += static_cast<double>(in_bucket);
    if (seen >= target) return BucketMid(b);
  }
  return static_cast<double>(max());
}

Counter* MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return slot.get();
}

std::string MetricsRegistry::RenderText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  for (const auto& [name, c] : counters_) {
    os << name << " " << c->value() << "\n";
  }
  for (const auto& [name, g] : gauges_) {
    os << name << " " << g->value() << "\n";
  }
  for (const auto& [name, h] : histograms_) {
    const std::int64_t n = h->count();
    const double mean =
        n == 0 ? 0.0 : static_cast<double>(h->sum()) / static_cast<double>(n);
    os << name << StrPrintf(
        " count=%lld mean=%.1f p50=%.1f p90=%.1f p99=%.1f max=%lld\n",
        static_cast<long long>(n), mean, h->Quantile(0.5), h->Quantile(0.9),
        h->Quantile(0.99), static_cast<long long>(h->max()));
  }
  return os.str();
}

}  // namespace ws
