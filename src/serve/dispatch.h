// The continuous-batching core of the scheduling service: a dispatcher that
// admits CellRequests into fingerprint-sharded worker queues, coalesces
// concurrent identical requests into one in-flight computation, and hands
// every admitted request a PendingResult its submitter can wait on.
//
// Step loop (per shard worker):
//   admission → (coalesce | cache fast-path | enqueue) → compute → publish.
//
// Sharding: a request's 128-bit canonical fingerprint picks the shard
// (the same function that picks its LRU cache segment — see
// ShardedResultCache::shard_of), so one shard exclusively owns a key's
// queue slot, its single-flight entry, and its cache segment. Workers of
// different shards share no mutex on the hot path, and every scheduling run
// owns its private BDD arena (Schedule's shared-nothing convention),
// so shard workers never contend on a unique table or cache lock.
//
// Single-flight: the first admitted request for a fingerprint is the
// leader; it enqueues the one compute job. Requests for the same
// fingerprint that arrive while the leader is queued or running attach as
// followers and never enqueue work. When the computation publishes, every
// attached waiter receives the *same* ServeOutcome — one compute, N
// byte-identical replies. Followers keep their own deadlines: a follower
// whose deadline_ms expires mid-wait gets kDeadlineExceeded from
// PendingResult::Wait even if the leader later completes.
//
// Ordering/starvation: each shard queue is FIFO, so two requests that hash
// to the same shard complete in admission order (followers piggyback on the
// earliest admitted leader, which only moves them earlier). The admission
// cap bounds queued+running requests globally; beyond it, new leaders are
// shed with kOverloaded while followers and cache hits — which consume no
// worker time — are always accepted.
//
// Adaptive re-scheduling (src/adapt/): ReportProfile accumulates
// client-observed branch profiles per fingerprint on the owning shard and
// enqueues one re-schedule job onto the shard's *low-priority* adapt lane —
// workers only pick adapt work when the request queue is empty, so
// background optimization never delays a served request. The adapt job
// derives smoothed probabilities from the accumulated profile, re-runs the
// cell, and — only when the candidate measures strictly better on the
// request's own trace set (enc_sim) — swaps the encoded run into the result
// cache and writes it through to the store under a generation-tagged
// envelope. Cache reads/writes are whole-value under the segment mutex, so
// an in-flight WAIT can never observe a half-swapped entry: it gets either
// the old bytes or the new bytes, both complete. Profiles are not part of
// the request fingerprint — a swap changes which artifact a fingerprint
// maps to, never the fingerprint itself.
#ifndef WS_SERVE_DISPATCH_H
#define WS_SERVE_DISPATCH_H

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "adapt/profile.h"
#include "base/hashing.h"
#include "explore/explore.h"
#include "serve/cache.h"
#include "serve/metrics.h"
#include "serve/protocol.h"

namespace ws {

class ArtifactStore;  // io/artifact_store.h

// The outcome of one admitted request: a typed response status and the
// encoded payload the connection writer sends verbatim.
struct ServeOutcome {
  ResponseStatus status = ResponseStatus::kInternalError;
  bool cache_hit = false;
  std::string body;  // encoded ExploreRun on kOk, message otherwise
};

// One admitted request's completion slot. Produced by the dispatcher
// (possibly shared between a single-flight leader and its followers — each
// follower holds its own PendingResult, the *outcome* is what they share),
// consumed by exactly one waiter.
class PendingResult {
 public:
  using Clock = std::chrono::steady_clock;

  PendingResult(Clock::time_point admitted, std::int64_t deadline_ms)
      : admitted_(admitted),
        deadline_ms_(deadline_ms),
        deadline_(deadline_ms > 0
                      ? std::optional<Clock::time_point>(
                            admitted + std::chrono::milliseconds(deadline_ms))
                      : std::nullopt) {}

  // Publishes the outcome; idempotent (the first fulfillment wins) and safe
  // to call after a waiter has already timed out and gone away.
  void Fulfill(const ServeOutcome& outcome);

  // Blocks until fulfilled, bounded by this request's own deadline; a
  // timeout yields kDeadlineExceeded regardless of what the (possibly
  // coalesced) computation later produces.
  ServeOutcome Wait();

  Clock::time_point admitted() const { return admitted_; }
  const std::optional<Clock::time_point>& deadline() const {
    return deadline_;
  }

 private:
  const Clock::time_point admitted_;
  const std::int64_t deadline_ms_;
  const std::optional<Clock::time_point> deadline_;

  std::mutex mu_;
  std::condition_variable cv_;
  bool done_ = false;
  ServeOutcome outcome_;
};

using PendingHandle = std::shared_ptr<PendingResult>;

struct DispatcherOptions {
  // Worker shards; each owns a FIFO queue, a single-flight table, and an
  // LRU cache segment.
  int shards = 1;
  // Total worker-thread budget, spread across shards (each shard gets at
  // least one).
  int workers = 4;
  // Admitted-but-unfinished cap across all shards; beyond it new leaders
  // are shed with kOverloaded.
  int max_queue = 64;
  std::size_t cache_capacity = 256;  // total LRU entries; 0 disables
  // Intra-run wave-loop threads given to every scheduling run
  // (SchedulerOptions::wave_workers). A server-side execution hint, never
  // part of the wire protocol or any fingerprint: results are
  // byte-identical at any setting, so cache and store keys are unaffected.
  int wave_workers = 0;
  // Durable write-through store; borrowed, may be null. Must outlive the
  // dispatcher.
  ArtifactStore* store = nullptr;
};

class ServeDispatcher {
 public:
  // Metrics are registered on construction; the registry must outlive the
  // dispatcher.
  ServeDispatcher(DispatcherOptions options, MetricsRegistry* metrics);
  ~ServeDispatcher();

  ServeDispatcher(const ServeDispatcher&) = delete;
  ServeDispatcher& operator=(const ServeDispatcher&) = delete;

  // Spawns the shard workers.
  void Start();

  // Stops admission, lets workers finish every queued job (fulfilling all
  // attached waiters), and joins them. Idempotent.
  void Drain();

  // Admission. Validates and fingerprints the request on the calling
  // thread, then either fulfills the returned handle immediately (invalid
  // request, cache hit, shed, draining) or routes it to the owning shard
  // (as a new leader's compute job or a coalesced follower). Never blocks
  // on scheduling work; the caller collects the outcome via
  // PendingResult::Wait().
  PendingHandle Submit(const CellRequest& request,
                       PendingResult::Clock::time_point admitted);

  // Accumulates a client-reported branch profile for the request's
  // fingerprint and schedules a background re-schedule on the owning
  // shard's low-priority lane (one in flight per fingerprint; a report
  // arriving mid-re-schedule re-queues it). Validates/fingerprints exactly
  // like Submit; returns a short human-readable ack on success. Requests
  // without trace measurement (measure_sim_enc == false) are rejected — the
  // swap guard compares trace-measured cycles.
  Result<std::string> ReportProfile(const CellRequest& request,
                                    const BranchProfile& profile);

  ShardedResultCache& cache() { return cache_; }
  const ShardedResultCache& cache() const { return cache_; }

 private:
  using Clock = PendingResult::Clock;

  // A leader's compute job: the prebuilt inputs RunBenchmarkCell needs,
  // owned by the job so shard workers share nothing.
  struct Job {
    Fp128 key;
    CellRequest request;
    Benchmark bench;
    Allocation allocation;
  };

  // Accumulated profile state for one fingerprint, owned by its shard.
  struct AdaptEntry {
    CellRequest request;     // rebuilds the benchmark deterministically
    BranchProfile profile;   // merged across reports (and the store)
    std::uint64_t seq = 0;   // bumped per merge; detects mid-run reports
    std::uint32_t generation = 0;  // artifact generations swapped so far
    bool queued = false;     // an adapt job is queued or running
    bool loaded_store = false;  // persisted profile already merged in
  };

  struct Shard {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Job> queue;
    // Low-priority lane: fingerprints with fresh profile data awaiting a
    // background re-schedule. Drained only when `queue` is empty.
    std::deque<Fp128> adapt_queue;
    std::unordered_map<Fp128, AdaptEntry, Fp128Hash> adapt;
    // fingerprint → waiters of the in-flight (queued or running) compute.
    std::unordered_map<Fp128, std::vector<PendingHandle>, Fp128Hash> inflight;
    std::vector<std::thread> workers;
  };

  void WorkerLoop(Shard* shard);
  void Execute(Shard* shard, Job job);
  void ExecuteAdapt(Shard* shard, const Fp128& key);

  const DispatcherOptions options_;
  ShardedResultCache cache_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<bool> stopping_{false};
  std::atomic<int> admitted_{0};
  bool started_ = false;
  bool drained_ = false;

  // Pre-registered hot-path metrics (pointers into the registry).
  Counter* sched_runs_;
  Counter* coalesced_;
  Counter* cache_hits_;
  Counter* cache_misses_;
  Counter* store_hits_;
  Counter* store_misses_;
  Gauge* queue_depth_;
  Histogram* sched_total_us_;
  Histogram* sched_successor_us_;
  Histogram* sched_cofactor_us_;
  Histogram* sched_closure_us_;
  Histogram* sched_select_us_;
  Histogram* sched_gc_us_;
  Counter* adapt_profiles_;
  Counter* adapt_swaps_;
  Counter* adapt_rejected_;
  Histogram* adapt_resched_us_;
};

}  // namespace ws

#endif  // WS_SERVE_DISPATCH_H
