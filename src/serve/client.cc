#include "serve/client.h"

#include <chrono>
#include <thread>
#include <utility>
#include <vector>

#include "base/thread_pool.h"

namespace ws {
namespace {

// Overload shedding is transient by design; a handful of exponential-backoff
// retries rides out bursts without building server-side backlog.
constexpr int kOverloadRetries = 5;

ExploreRun FailedRun(const ExploreCell& cell, std::string error,
                     StatusCode code) {
  ExploreRun run;
  run.design = cell.design.name;
  run.mode = cell.mode;
  run.policy = cell.policy;
  run.allocation = cell.alloc.label;
  run.clock = cell.clock.label;
  run.error = std::move(error);
  run.error_code = code;
  return run;
}

ExploreRun RunRemoteCell(const ExploreSpec& spec, const ServeAddress& address,
                         const ExploreCell& cell, std::int64_t deadline_ms) {
  CellRequest request = MakeCellRequest(spec, cell);
  request.deadline_ms = deadline_ms;

  for (int attempt = 0;; ++attempt) {
    Result<ServeClient> client = ServeClient::Connect(address);
    if (!client.ok()) {
      return FailedRun(cell, client.error(), StatusCode::kUnavailable);
    }
    Result<ScheduleArtifact> artifact = client->Schedule(request);
    if (artifact.ok()) return std::move(artifact)->run;
    switch (artifact.status().code()) {
      case StatusCode::kInvalidArgument:
        // The server ran the same build path and failed the same way a local
        // sweep would; its message is the exact local error string.
        return FailedRun(cell, artifact.error(), StatusCode::kInvalidArgument);
      case StatusCode::kDeadlineExceeded:
        return FailedRun(cell, artifact.error(),
                         StatusCode::kDeadlineExceeded);
      case StatusCode::kOverloaded:
        if (attempt < kOverloadRetries) {
          std::this_thread::sleep_for(
              std::chrono::milliseconds(5LL << attempt));
          continue;
        }
        return FailedRun(cell, artifact.error(), StatusCode::kUnavailable);
      case StatusCode::kInternal:
        return FailedRun(cell, artifact.error(), StatusCode::kInternal);
      default:
        // Transport-level failures (send/recv, undecodable frame).
        return FailedRun(cell, artifact.error(), StatusCode::kUnavailable);
    }
  }
}

Result<std::string> ExpectOk(Result<WireResponse> response) {
  if (!response.ok()) return response.status();
  if (response->status != ResponseStatus::kOk) {
    return Status::MakeError(
        StatusCode::kUnavailable,
        std::string("server replied ") + ResponseStatusName(response->status) +
            ": " + response->payload);
  }
  return std::move(response->payload);
}

}  // namespace

Result<ScheduleArtifact> DecodeScheduleResponse(const WireResponse& response) {
  switch (response.status) {
    case ResponseStatus::kOk: {
      Result<ExploreRun> run = DecodeRun(response.payload);
      if (!run.ok()) return run.status();
      ScheduleArtifact artifact;
      artifact.run = *std::move(run);
      artifact.cache_hit = response.cache_hit;
      return artifact;
    }
    // The payload travels verbatim as the message: remote failure reports
    // must be byte-identical to what a local sweep would record.
    case ResponseStatus::kInvalidRequest:
      return Status::MakeError(StatusCode::kInvalidArgument,
                               response.payload);
    case ResponseStatus::kDeadlineExceeded:
      return Status::MakeError(StatusCode::kDeadlineExceeded,
                               response.payload);
    case ResponseStatus::kOverloaded:
      return Status::MakeError(StatusCode::kOverloaded, response.payload);
    case ResponseStatus::kInternalError:
      return Status::MakeError(StatusCode::kInternal, response.payload);
  }
  return Status::MakeError(StatusCode::kInternal,
                           "unrecognized response status");
}

Result<ServeClient> ServeClient::Connect(const std::string& address_text) {
  Result<ServeAddress> address = ParseServeAddress(address_text);
  if (!address.ok()) return address.status();
  return Connect(*address);
}

Result<ServeClient> ServeClient::Connect(const ServeAddress& address) {
  Result<Socket> socket = ConnectAddress(address);
  if (!socket.ok()) return socket.status();
  return ServeClient(std::move(socket).value());
}

Result<WireResponse> ServeClient::Call(Verb verb, const std::string& body) {
  if (const Status s = SendFrame(socket_, EncodeRequestFrame(verb, body));
      !s.ok()) {
    return s;
  }
  Result<std::string> frame = RecvFrame(socket_);
  if (!frame.ok()) return frame.status();
  return DecodeResponseFrame(*frame);
}

Result<Ticket> ServeClient::Submit(const CellRequest& request) {
  Result<WireResponse> response =
      Call(Verb::kSubmit, EncodeCellRequest(request));
  if (!response.ok()) return response.status();
  if (response->status != ResponseStatus::kOk) {
    return Status::MakeError(StatusCode::kInvalidArgument, response->payload);
  }
  Result<std::uint64_t> id = DecodeTicketBody(response->payload);
  if (!id.ok()) return id.status();
  return Ticket{*id};
}

Result<ScheduleArtifact> ServeClient::Wait(Ticket ticket) {
  Result<WireResponse> response =
      Call(Verb::kWait, EncodeTicketBody(ticket.id));
  if (!response.ok()) return response.status();
  return DecodeScheduleResponse(*response);
}

Result<ScheduleArtifact> ServeClient::Schedule(const CellRequest& request) {
  Result<WireResponse> response =
      Call(Verb::kSchedule, EncodeCellRequest(request));
  if (!response.ok()) return response.status();
  return DecodeScheduleResponse(*response);
}

Result<std::string> ServeClient::ReportProfile(const CellRequest& request,
                                               const BranchProfile& profile) {
  if (profile.empty()) {
    return Status::MakeError(StatusCode::kInvalidArgument,
                             "refusing to report an empty profile");
  }
  Result<WireResponse> response = Call(
      Verb::kProfile, EncodeProfileReportBody(EncodeCellRequest(request),
                                              EncodeProfilePayload(profile)));
  if (!response.ok()) return response.status();
  if (response->status != ResponseStatus::kOk) {
    return Status::MakeError(StatusCode::kInvalidArgument, response->payload);
  }
  return std::move(response->payload);
}

Result<std::string> ServeClient::Ping() { return ExpectOk(Call(Verb::kPing, "")); }

Result<std::string> ServeClient::Stats() {
  return ExpectOk(Call(Verb::kStats, ""));
}

Result<std::string> ServeClient::Shutdown() {
  return ExpectOk(Call(Verb::kShutdown, ""));
}

Result<ExploreReport> RunExploreRemote(const ExploreSpec& spec,
                                       const ServeAddress& address,
                                       std::int64_t deadline_ms) {
  if (const Status s = spec.Validate(); !s.ok()) return s;
  const auto start = std::chrono::steady_clock::now();

  const std::vector<ExploreCell> grid = ExpandExploreGrid(spec);

  ExploreReport report;
  report.workers = spec.workers;
  report.runs.resize(grid.size());

  {
    ThreadPool pool(spec.workers);
    for (std::size_t i = 0; i < grid.size(); ++i) {
      const ExploreCell* cell = &grid[i];
      ExploreRun* slot = &report.runs[i];
      pool.Submit([&spec, &address, cell, slot, deadline_ms] {
        *slot = RunRemoteCell(spec, address, *cell, deadline_ms);
      });
    }
    pool.Wait();
  }

  // Same cross-run post-pass as RunExplore; runs carry per-run area figures
  // from the server, the overhead comparison is a client-side report step.
  if (spec.measure_area) ApplyAreaOverheads(&report);

  report.wall_ms =
      std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
          std::chrono::steady_clock::now() - start)
          .count();
  return report;
}

}  // namespace ws
