// Client side of the serving protocol: a blocking one-connection client and
// the remote explore backend (`ws_explore --server`).
//
// A ServeClient owns one connection and speaks strict request/response. The
// typed API is Submit/Wait: Submit admits a request and returns a Ticket
// immediately, Wait redeems the ticket for the finished ScheduleArtifact —
// so one connection can pipeline many requests (submit a batch, then wait
// the tickets in turn). Schedule() composes the two in one round trip for
// callers that want the classic blocking call. A caller that wants true
// parallelism still opens more clients (RunExploreRemote opens one per
// in-flight cell).
//
// All failures are value-based — a dead server is an environmental
// condition, not a programming error. Typed server responses map onto
// StatusCodes (kInvalidArgument, kDeadlineExceeded, kOverloaded, kInternal)
// with the server's payload verbatim as the message; transport failures
// surface as kUnavailable.
#ifndef WS_SERVE_CLIENT_H
#define WS_SERVE_CLIENT_H

#include <cstdint>
#include <string>

#include "adapt/profile.h"
#include "base/net.h"
#include "base/status.h"
#include "explore/explore.h"
#include "serve/protocol.h"

namespace ws {

// A claim on one submitted request, redeemable exactly once with
// ServeClient::Wait on the connection that issued it.
struct Ticket {
  std::uint64_t id = 0;
};

// A finished scheduling request: the decoded run plus whether the server
// answered from its result cache (or durable store).
struct ScheduleArtifact {
  ExploreRun run;
  bool cache_hit = false;
};

// The one place a decoded response frame becomes a typed result: kOk
// payloads decode into a ScheduleArtifact; typed non-Ok responses become
// error statuses carrying the server's payload verbatim as the message
// (kInvalidRequest -> kInvalidArgument, kDeadlineExceeded ->
// kDeadlineExceeded, kOverloaded -> kOverloaded, kInternalError ->
// kInternal). Shared by ServeClient::Wait/Schedule and every tool that
// speaks the protocol, so status mapping can never drift between them.
Result<ScheduleArtifact> DecodeScheduleResponse(const WireResponse& response);

class ServeClient {
 public:
  // Connects to "unix:/path" or "[host:]port" (ParseServeAddress forms).
  static Result<ServeClient> Connect(const std::string& address_text);
  static Result<ServeClient> Connect(const ServeAddress& address);

  ServeClient(ServeClient&&) = default;
  ServeClient& operator=(ServeClient&&) = default;

  // Admits one request into the server's step loop; returns as soon as the
  // server acks admission with a ticket. Errors are transport failures or
  // an undecodable request body — admission outcomes (overload sheds,
  // invalid specs) arrive at Wait().
  Result<Ticket> Submit(const CellRequest& request);

  // Redeems a ticket for its outcome, blocking until the server replies
  // (bounded by the request's own deadline_ms, queue time included).
  // Tickets are consumed by their first Wait and die with the connection.
  Result<ScheduleArtifact> Wait(Ticket ticket);

  // Submit + Wait in one round trip.
  Result<ScheduleArtifact> Schedule(const CellRequest& request);

  // One raw request/response round trip. Transport failures only;
  // protocol-level failures come back inside the WireResponse. The typed
  // calls above are preferred; this remains for protocol-level tooling.
  Result<WireResponse> Call(Verb verb, const std::string& body);

  // Reports client-observed branch outcomes for the request's fingerprint
  // (Verb::kProfile). The server merges the profile synchronously and
  // re-schedules on its background lane; the returned string is the
  // server's accumulation ack. The request identifies the fingerprint —
  // its deadline_ms is ignored server-side.
  Result<std::string> ReportProfile(const CellRequest& request,
                                    const BranchProfile& profile);

  // Verb shorthands; they demand a kOk reply and surface anything else as
  // an error status.
  Result<std::string> Ping();
  Result<std::string> Stats();
  Result<std::string> Shutdown();

 private:
  explicit ServeClient(Socket socket) : socket_(std::move(socket)) {}

  Socket socket_;
};

// Runs the explore grid against a remote server instead of the in-process
// pool: same cells, same canonical order, same report — byte-identical to
// RunExplore (modulo timing fields) because the server executes the same
// RunBenchmarkCell path and doubles travel as bit patterns. spec.workers
// bounds the number of in-flight requests (0 = sequential). deadline_ms > 0
// attaches a per-request deadline; expiries surface as failed runs with
// StatusCode::kDeadlineExceeded. Overloaded sheds are retried with backoff.
Result<ExploreReport> RunExploreRemote(const ExploreSpec& spec,
                                       const ServeAddress& address,
                                       std::int64_t deadline_ms = 0);

}  // namespace ws

#endif  // WS_SERVE_CLIENT_H
