// Client side of the serving protocol: a blocking one-connection client and
// the remote explore backend (`ws_explore --server`).
//
// A ServeClient owns one connection and speaks strict request/response; a
// caller that wants parallelism opens more clients (RunExploreRemote opens
// one per in-flight cell). All failures are value-based — a dead server is
// an environmental condition, not a programming error.
#ifndef WS_SERVE_CLIENT_H
#define WS_SERVE_CLIENT_H

#include <cstdint>
#include <string>

#include "base/net.h"
#include "base/status.h"
#include "explore/explore.h"
#include "serve/protocol.h"

namespace ws {

class ServeClient {
 public:
  // Connects to "unix:/path" or "[host:]port" (ParseServeAddress forms).
  static Result<ServeClient> Connect(const std::string& address_text);
  static Result<ServeClient> Connect(const ServeAddress& address);

  ServeClient(ServeClient&&) = default;
  ServeClient& operator=(ServeClient&&) = default;

  // One request/response round trip. Transport failures only; protocol-level
  // failures come back inside the WireResponse.
  Result<WireResponse> Call(Verb verb, const std::string& body);

  // Verb shorthands. The string-returning ones demand a kOk reply and
  // surface anything else as an error status.
  Result<WireResponse> Schedule(const CellRequest& request);
  Result<std::string> Ping();
  Result<std::string> Stats();
  Result<std::string> Shutdown();

 private:
  explicit ServeClient(Socket socket) : socket_(std::move(socket)) {}

  Socket socket_;
};

// Runs the explore grid against a remote server instead of the in-process
// pool: same cells, same canonical order, same report — byte-identical to
// RunExplore (modulo timing fields) because the server executes the same
// RunBenchmarkCell path and doubles travel as bit patterns. spec.workers
// bounds the number of in-flight requests (0 = sequential). deadline_ms > 0
// attaches a per-request deadline; expiries surface as failed runs with
// StatusCode::kDeadlineExceeded. Overloaded sheds are retried with backoff.
Result<ExploreReport> RunExploreRemote(const ExploreSpec& spec,
                                       const ServeAddress& address,
                                       std::int64_t deadline_ms = 0);

}  // namespace ws

#endif  // WS_SERVE_CLIENT_H
