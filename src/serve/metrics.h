// Live metrics for the scheduling service: lock-free counters and gauges,
// log-bucketed latency histograms with percentile estimates, and a named
// registry rendered as text by the STATS protocol verb.
//
// Counters and gauges are single atomics; histograms bucket by bit width
// (64 power-of-two buckets), so Record() is two relaxed atomic increments —
// cheap enough to sit on the per-request path. Percentiles interpolate
// within the winning bucket, which is exact enough for latency monitoring
// (error bounded by 2x, in practice far less) and keeps reads snapshot-free.
//
// The registry's text rendering is sorted by name and uses fixed formatting
// so tests can assert on it and `ws_client stats` output diffs cleanly.
#ifndef WS_SERVE_METRICS_H
#define WS_SERVE_METRICS_H

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace ws {

// A monotonically increasing count.
class Counter {
 public:
  void Increment(std::int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

// A value that moves both ways (queue depth, open connections).
class Gauge {
 public:
  void Add(std::int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  void Set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

// Log2-bucketed histogram of non-negative samples (typically microseconds).
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  void Record(std::int64_t sample);

  std::int64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::int64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  std::int64_t max() const { return max_.load(std::memory_order_relaxed); }
  // Estimated value at quantile q in [0, 1]; 0 when empty.
  double Quantile(double q) const;

 private:
  std::atomic<std::int64_t> buckets_[kBuckets] = {};
  std::atomic<std::int64_t> count_{0};
  std::atomic<std::int64_t> sum_{0};
  std::atomic<std::int64_t> max_{0};
};

// Named metric registry. Registration locks; the returned pointers are
// stable for the registry's lifetime and lock-free to update.
class MetricsRegistry {
 public:
  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  Histogram* histogram(const std::string& name);

  // "name value" per counter/gauge; histograms render count/mean/percentile
  // columns. Sorted by name; deterministic given the same samples.
  std::string RenderText() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace ws

#endif  // WS_SERVE_METRICS_H
