// The ws serving protocol: length-prefixed binary messages over TCP
// (localhost) or a Unix domain socket.
//
// Framing (base/net.h): every message is one frame — a little-endian u32
// payload length, then the payload. Request payloads open with a fixed
// header {u32 magic, u8 version, u8 verb}; response payloads with
// {u32 magic, u8 version, u8 status, u8 cache_hit}. All integers are
// little-endian; doubles travel as their IEEE-754 bit pattern, so a
// round-tripped ScheduleReport is bit-identical to the server's — the
// property the `ws_explore --server` byte-identity guarantee rests on.
//
// Verbs:
//   kSchedule  body = CellRequest; reply kOk carries an encoded ExploreRun
//              (schedule + analysis metrics; scheduling failures such as
//              exhausted caps ride inside the run, they are not transport
//              errors). Typed non-Ok replies: kInvalidRequest (undecodable
//              or unvalidatable request), kDeadlineExceeded (the request's
//              deadline_ms expired in queue or mid-run), kOverloaded
//              (admission queue full — retry later), kInternalError.
//              Equivalent to kSubmit immediately followed by kWait, in one
//              round trip.
//   kSubmit    body = CellRequest; the request is admitted into the step
//              loop and the reply returns immediately — kOk with a u64
//              ticket (EncodeTicketBody), or kInvalidRequest when the body
//              is undecodable. Admission outcomes (an unvalidatable spec,
//              a kOverloaded shed, a cache hit) ride the ticket and are
//              delivered by kWait. A connection may hold many outstanding
//              tickets (pipelining); tickets are connection-scoped and die
//              with the connection.
//   kWait      body = u64 ticket; blocks until that ticket's outcome is
//              ready (or its deadline_ms expires — each ticket keeps its
//              own deadline even when its computation was coalesced onto
//              another request's) and replies exactly like kSchedule. A
//              ticket is consumed by its first kWait; waiting twice or on
//              an unknown ticket is kInvalidRequest.
//   kStats     body empty; reply carries the metrics registry rendered as
//              text (see serve/metrics.h).
//   kPing      body empty; reply carries "pong".
//   kShutdown  body empty; reply acknowledges, then the server drains.
//   kProfile   body = EncodeProfileReportBody: the CellRequest identifying
//              the fingerprint plus an encoded BranchProfile
//              (adapt/profile.h) of client-observed traces for it. The
//              server accumulates the profile and, on a low-priority
//              background lane, re-derives branch probabilities,
//              re-schedules, and swaps the artifact for that fingerprint
//              when the re-schedule measures better. Reply: kOk with a
//              short text ack (synchronous accumulation; the re-schedule is
//              asynchronous), kInvalidRequest for an undecodable or
//              unvalidatable body.
#ifndef WS_SERVE_PROTOCOL_H
#define WS_SERVE_PROTOCOL_H

#include <cstdint>
#include <string>
#include <string_view>

#include "base/status.h"
#include "explore/explore.h"

namespace ws {

// Wire version history (checked for strict equality in both directions —
// client and server must be built from the same protocol revision):
//   1  initial layout.
//   2  CellRequest gains the selection-policy byte after the speculation
//      mode; the SCHEDULE response run body gains the policy byte and
//      phase.select_ns (explore/run_codec.h / io/codec.h version 2).
//   3  the continuous-batching serve loop: kSubmit/kWait ticket verbs
//      (async submit-then-wait with connection-scoped u64 tickets);
//      kSchedule is unchanged on the wire and now means submit+wait.
//   4  CellRequest gains mem_spec (u8) and lsq_depth (u32) after
//      max_ops_per_state — speculative memory disambiguation
//      (mem/disambig.h); the run body gains the mem_spec byte
//      (io/codec.h version 3).
//   5  the kProfile verb: clients report observed branch outcomes for a
//      fingerprint (adapt/profile.h) and the server adaptively re-schedules
//      in the background. Existing verbs are unchanged on the wire.
inline constexpr std::uint32_t kWireMagic = 0x57535256;  // "WSRV"
inline constexpr std::uint8_t kWireVersion = 5;

enum class Verb : std::uint8_t {
  kSchedule = 1,
  kStats = 2,
  kPing = 3,
  kShutdown = 4,
  kSubmit = 5,
  kWait = 6,
  kProfile = 7,
};

enum class ResponseStatus : std::uint8_t {
  kOk = 0,
  kInvalidRequest = 1,
  kDeadlineExceeded = 2,
  kOverloaded = 3,
  kInternalError = 4,
};

const char* ResponseStatusName(ResponseStatus status);

// One scheduling request at the explore-cell granularity: everything a
// worker needs to rebuild the benchmark deterministically (the explore
// engine's shared-nothing convention) plus the per-request deadline. The
// design travels by registry name or inline behavioral source, never as a
// serialized CDFG — construction is deterministic in (name/source,
// num_stimuli, seed), which keeps requests small and the cache key honest.
struct CellRequest {
  DesignSpec design;
  SpeculationMode mode = SpeculationMode::kWaveschedSpec;
  SelectionPolicy policy = SelectionPolicy::kCriticality;
  AllocationSpec alloc;
  ClockSpec clock;

  // Result-affecting SchedulerOptions fields (mode/clock come from above;
  // lookahead applies to inline sources — named benchmarks carry their own).
  int lookahead = 8;
  int gc_window = 4;
  int max_states = 2000;
  int max_ops_per_state = 256;
  bool mem_spec = false;
  int lsq_depth = 4;

  int num_stimuli = 50;
  std::uint64_t seed = 1998;
  bool measure_sim_enc = true;
  bool measure_area = false;

  // Relative deadline budget, measured from server-side admission (queue
  // wait included). <= 0 means none.
  std::int64_t deadline_ms = 0;

  // The equivalent single-cell ExploreSpec (workers ignored).
  ExploreSpec ToSpec() const;
  ExploreCell ToCell() const;
};

// Builds the CellRequest for one cell of a sweep.
CellRequest MakeCellRequest(const ExploreSpec& spec, const ExploreCell& cell);

// A decoded response frame.
struct WireResponse {
  ResponseStatus status = ResponseStatus::kInternalError;
  bool cache_hit = false;
  std::string payload;  // encoded ExploreRun (kOk SCHEDULE), text otherwise
};

// --- Encoding --------------------------------------------------------------

std::string EncodeRequestFrame(Verb verb, const std::string& body);
std::string EncodeResponseFrame(ResponseStatus status, bool cache_hit,
                                const std::string& body);
Result<std::pair<Verb, std::string>> DecodeRequestFrame(
    std::string_view frame);
Result<WireResponse> DecodeResponseFrame(std::string_view frame);

std::string EncodeCellRequest(const CellRequest& request);
Result<CellRequest> DecodeCellRequest(std::string_view body);

// kSubmit's kOk reply body and kWait's request body: one u64 ticket.
std::string EncodeTicketBody(std::uint64_t ticket);
Result<std::uint64_t> DecodeTicketBody(std::string_view body);

// kProfile's request body: the encoded CellRequest naming the fingerprint,
// then the encoded BranchProfile payload — both length-prefixed, so the
// protocol layer stays independent of the profile codec (the server hands
// the profile bytes to adapt/profile.h).
std::string EncodeProfileReportBody(const std::string& cell_request,
                                    const std::string& profile_payload);
struct ProfileReportBody {
  std::string cell_request;     // EncodeCellRequest bytes
  std::string profile_payload;  // EncodeProfilePayload bytes
};
Result<ProfileReportBody> DecodeProfileReportBody(std::string_view body);

// ExploreRun minus the STG (schedules stay server-side; metrics travel).
std::string EncodeRun(const ExploreRun& run);
Result<ExploreRun> DecodeRun(std::string_view body);

}  // namespace ws

#endif  // WS_SERVE_PROTOCOL_H
