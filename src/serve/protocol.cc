#include "serve/protocol.h"

#include <bit>
#include <cstring>

#include "base/strings.h"

namespace ws {
namespace {

// Little-endian primitive writers/readers over std::string. The reader is
// fail-soft: overruns latch an error and subsequent reads return zeros, so
// decoders validate once at the end instead of after every field.
class WireWriter {
 public:
  void U8(std::uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void U32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) U8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void U64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) U8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void I64(std::int64_t v) { U64(static_cast<std::uint64_t>(v)); }
  void F64(double v) { U64(std::bit_cast<std::uint64_t>(v)); }
  void Str(const std::string& s) {
    U32(static_cast<std::uint32_t>(s.size()));
    out_.append(s);
  }
  std::string Take() { return std::move(out_); }

 private:
  std::string out_;
};

class WireReader {
 public:
  explicit WireReader(std::string_view data) : data_(data) {}

  std::uint8_t U8() {
    if (pos_ + 1 > data_.size()) return Fail<std::uint8_t>();
    return static_cast<std::uint8_t>(data_[pos_++]);
  }
  std::uint32_t U32() {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(U8()) << (8 * i);
    return v;
  }
  std::uint64_t U64() {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(U8()) << (8 * i);
    return v;
  }
  std::int64_t I64() { return static_cast<std::int64_t>(U64()); }
  double F64() { return std::bit_cast<double>(U64()); }
  std::string Str() {
    const std::uint32_t n = U32();
    if (pos_ + n > data_.size()) return Fail<std::string>();
    std::string s(data_.substr(pos_, n));
    pos_ += n;
    return s;
  }

  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] bool AtEnd() const { return ok_ && pos_ == data_.size(); }

 private:
  template <typename T>
  T Fail() {
    ok_ = false;
    pos_ = data_.size();
    return T{};
  }

  std::string_view data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

Status Malformed(const char* what) {
  return Status::MakeError(StatusCode::kInvalidArgument,
                           StrCat("malformed ", what, " message"));
}

void WriteRequestHeader(WireWriter& w, Verb verb) {
  w.U32(kWireMagic);
  w.U8(kWireVersion);
  w.U8(static_cast<std::uint8_t>(verb));
}

void WriteStats(WireWriter& w, const ScheduleStats& s) {
  w.U32(static_cast<std::uint32_t>(s.states_created));
  w.U32(static_cast<std::uint32_t>(s.closure_hits));
  w.U32(static_cast<std::uint32_t>(s.speculative_ops));
  w.U32(static_cast<std::uint32_t>(s.squashed_ops));
  w.U32(static_cast<std::uint32_t>(s.total_ops));
  w.I64(s.candidates_generated);
  w.U64(s.bdd_ops);
  w.U64(s.bdd_nodes);
  w.I64(s.signature_collisions);
  w.I64(s.phase.successor_ns);
  w.I64(s.phase.cofactor_ns);
  w.I64(s.phase.closure_ns);
  w.I64(s.phase.gc_ns);
  w.I64(s.phase.total_ns);
}

ScheduleStats ReadStats(WireReader& r) {
  ScheduleStats s;
  s.states_created = static_cast<int>(r.U32());
  s.closure_hits = static_cast<int>(r.U32());
  s.speculative_ops = static_cast<int>(r.U32());
  s.squashed_ops = static_cast<int>(r.U32());
  s.total_ops = static_cast<int>(r.U32());
  s.candidates_generated = r.I64();
  s.bdd_ops = r.U64();
  s.bdd_nodes = r.U64();
  s.signature_collisions = r.I64();
  s.phase.successor_ns = r.I64();
  s.phase.cofactor_ns = r.I64();
  s.phase.closure_ns = r.I64();
  s.phase.gc_ns = r.I64();
  s.phase.total_ns = r.I64();
  return s;
}

}  // namespace

const char* ResponseStatusName(ResponseStatus status) {
  switch (status) {
    case ResponseStatus::kOk: return "ok";
    case ResponseStatus::kInvalidRequest: return "invalid_request";
    case ResponseStatus::kDeadlineExceeded: return "deadline_exceeded";
    case ResponseStatus::kOverloaded: return "overloaded";
    case ResponseStatus::kInternalError: return "internal_error";
  }
  return "unknown";
}

ExploreSpec CellRequest::ToSpec() const {
  ExploreSpec spec;
  spec.designs = {design};
  spec.modes = {mode};
  spec.allocations = {alloc};
  spec.clocks = {clock};
  spec.num_stimuli = num_stimuli;
  spec.seed = seed;
  spec.workers = 0;
  spec.measure_sim_enc = measure_sim_enc;
  spec.measure_area = measure_area;
  spec.base_options.mode = mode;
  spec.base_options.clock = clock.clock;
  spec.base_options.lookahead = lookahead;
  spec.base_options.gc_window = gc_window;
  spec.base_options.max_states = max_states;
  spec.base_options.max_ops_per_state = max_ops_per_state;
  return spec;
}

ExploreCell CellRequest::ToCell() const {
  return ExploreCell{design, mode, alloc, clock};
}

CellRequest MakeCellRequest(const ExploreSpec& spec, const ExploreCell& cell) {
  CellRequest req;
  req.design = cell.design;
  req.mode = cell.mode;
  req.alloc = cell.alloc;
  req.clock = cell.clock;
  req.lookahead = spec.base_options.lookahead;
  req.gc_window = spec.base_options.gc_window;
  req.max_states = spec.base_options.max_states;
  req.max_ops_per_state = spec.base_options.max_ops_per_state;
  req.num_stimuli = spec.num_stimuli;
  req.seed = spec.seed;
  req.measure_sim_enc = spec.measure_sim_enc;
  req.measure_area = spec.measure_area;
  return req;
}

std::string EncodeRequestFrame(Verb verb, const std::string& body) {
  WireWriter w;
  WriteRequestHeader(w, verb);
  std::string out = w.Take();
  out += body;
  return out;
}

std::string EncodeResponseFrame(ResponseStatus status, bool cache_hit,
                                const std::string& body) {
  WireWriter w;
  w.U32(kWireMagic);
  w.U8(kWireVersion);
  w.U8(static_cast<std::uint8_t>(status));
  w.U8(cache_hit ? 1 : 0);
  std::string out = w.Take();
  out += body;
  return out;
}

Result<std::pair<Verb, std::string>> DecodeRequestFrame(
    std::string_view frame) {
  WireReader r(frame);
  if (r.U32() != kWireMagic) return Malformed("request (bad magic)");
  if (r.U8() != kWireVersion) return Malformed("request (bad version)");
  const std::uint8_t verb = r.U8();
  if (!r.ok() || verb < static_cast<std::uint8_t>(Verb::kSchedule) ||
      verb > static_cast<std::uint8_t>(Verb::kShutdown)) {
    return Malformed("request (bad verb)");
  }
  return std::make_pair(static_cast<Verb>(verb),
                        std::string(frame.substr(6)));
}

Result<WireResponse> DecodeResponseFrame(std::string_view frame) {
  WireReader r(frame);
  if (r.U32() != kWireMagic) return Malformed("response (bad magic)");
  if (r.U8() != kWireVersion) return Malformed("response (bad version)");
  const std::uint8_t status = r.U8();
  const std::uint8_t cache_hit = r.U8();
  if (!r.ok() || status > static_cast<std::uint8_t>(
                              ResponseStatus::kInternalError)) {
    return Malformed("response (bad status)");
  }
  WireResponse out;
  out.status = static_cast<ResponseStatus>(status);
  out.cache_hit = cache_hit != 0;
  out.payload = std::string(frame.substr(7));
  return out;
}

std::string EncodeCellRequest(const CellRequest& req) {
  WireWriter w;
  w.Str(req.design.name);
  w.Str(req.design.source);
  w.U8(static_cast<std::uint8_t>(req.mode));
  w.Str(req.alloc.label);
  w.Str(req.alloc.spec);
  w.Str(req.clock.label);
  w.F64(req.clock.clock.period_ns);
  w.U8(req.clock.clock.allow_chaining ? 1 : 0);
  w.U32(static_cast<std::uint32_t>(req.lookahead));
  w.U32(static_cast<std::uint32_t>(req.gc_window));
  w.U32(static_cast<std::uint32_t>(req.max_states));
  w.U32(static_cast<std::uint32_t>(req.max_ops_per_state));
  w.U32(static_cast<std::uint32_t>(req.num_stimuli));
  w.U64(req.seed);
  w.U8(req.measure_sim_enc ? 1 : 0);
  w.U8(req.measure_area ? 1 : 0);
  w.I64(req.deadline_ms);
  return w.Take();
}

Result<CellRequest> DecodeCellRequest(std::string_view body) {
  WireReader r(body);
  CellRequest req;
  req.design.name = r.Str();
  req.design.source = r.Str();
  const std::uint8_t mode = r.U8();
  req.alloc.label = r.Str();
  req.alloc.spec = r.Str();
  req.clock.label = r.Str();
  req.clock.clock.period_ns = r.F64();
  req.clock.clock.allow_chaining = r.U8() != 0;
  req.lookahead = static_cast<int>(r.U32());
  req.gc_window = static_cast<int>(r.U32());
  req.max_states = static_cast<int>(r.U32());
  req.max_ops_per_state = static_cast<int>(r.U32());
  req.num_stimuli = static_cast<int>(r.U32());
  req.seed = r.U64();
  req.measure_sim_enc = r.U8() != 0;
  req.measure_area = r.U8() != 0;
  req.deadline_ms = r.I64();
  if (!r.AtEnd() ||
      mode > static_cast<std::uint8_t>(SpeculationMode::kWaveschedSpec)) {
    return Malformed("CellRequest");
  }
  req.mode = static_cast<SpeculationMode>(mode);
  return req;
}

std::string EncodeRun(const ExploreRun& run) {
  WireWriter w;
  w.Str(run.design);
  w.U8(static_cast<std::uint8_t>(run.mode));
  w.Str(run.allocation);
  w.Str(run.clock);
  w.U8(run.ok ? 1 : 0);
  w.Str(run.error);
  w.U8(static_cast<std::uint8_t>(run.error_code));
  WriteStats(w, run.stats);
  w.U64(run.states);
  w.U64(run.op_initiations);
  w.F64(run.enc_markov);
  w.F64(run.enc_sim);
  w.I64(run.best_case);
  w.I64(run.worst_case);
  w.U32(static_cast<std::uint32_t>(run.worst_case_budget));
  w.F64(run.area);
  w.F64(run.area_overhead_pct);
  w.U8(run.has_area_overhead ? 1 : 0);
  w.F64(run.wall_ms);
  return w.Take();
}

Result<ExploreRun> DecodeRun(std::string_view body) {
  WireReader r(body);
  ExploreRun run;
  run.design = r.Str();
  const std::uint8_t mode = r.U8();
  run.allocation = r.Str();
  run.clock = r.Str();
  run.ok = r.U8() != 0;
  run.error = r.Str();
  const std::uint8_t code = r.U8();
  run.stats = ReadStats(r);
  run.states = r.U64();
  run.op_initiations = r.U64();
  run.enc_markov = r.F64();
  run.enc_sim = r.F64();
  run.best_case = r.I64();
  run.worst_case = r.I64();
  run.worst_case_budget = static_cast<int>(r.U32());
  run.area = r.F64();
  run.area_overhead_pct = r.F64();
  run.has_area_overhead = r.U8() != 0;
  run.wall_ms = r.F64();
  if (!r.AtEnd() ||
      mode > static_cast<std::uint8_t>(SpeculationMode::kWaveschedSpec) ||
      code > static_cast<std::uint8_t>(StatusCode::kInternal)) {
    return Malformed("ExploreRun");
  }
  run.mode = static_cast<SpeculationMode>(mode);
  run.error_code = static_cast<StatusCode>(code);
  return run;
}

}  // namespace ws
