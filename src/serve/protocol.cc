#include "serve/protocol.h"

#include "base/codec.h"
#include "base/strings.h"
#include "explore/run_codec.h"

namespace ws {
namespace {

Status Malformed(const char* what) {
  return Status::MakeError(StatusCode::kInvalidArgument,
                           StrCat("malformed ", what, " message"));
}

void WriteRequestHeader(ByteWriter& w, Verb verb) {
  w.U32(kWireMagic);
  w.U8(kWireVersion);
  w.U8(static_cast<std::uint8_t>(verb));
}

}  // namespace

const char* ResponseStatusName(ResponseStatus status) {
  switch (status) {
    case ResponseStatus::kOk: return "ok";
    case ResponseStatus::kInvalidRequest: return "invalid_request";
    case ResponseStatus::kDeadlineExceeded: return "deadline_exceeded";
    case ResponseStatus::kOverloaded: return "overloaded";
    case ResponseStatus::kInternalError: return "internal_error";
  }
  return "unknown";
}

ExploreSpec CellRequest::ToSpec() const {
  ExploreSpec spec;
  spec.designs = {design};
  spec.modes = {mode};
  spec.policies = {policy};
  spec.allocations = {alloc};
  spec.clocks = {clock};
  spec.num_stimuli = num_stimuli;
  spec.seed = seed;
  spec.workers = 0;
  spec.measure_sim_enc = measure_sim_enc;
  spec.measure_area = measure_area;
  spec.base_options.mode = mode;
  spec.base_options.policy = policy;
  spec.base_options.clock = clock.clock;
  spec.base_options.lookahead = lookahead;
  spec.base_options.gc_window = gc_window;
  spec.base_options.max_states = max_states;
  spec.base_options.max_ops_per_state = max_ops_per_state;
  spec.mem_specs = {mem_spec};
  spec.base_options.mem_spec = mem_spec;
  spec.base_options.lsq_depth = lsq_depth;
  return spec;
}

ExploreCell CellRequest::ToCell() const {
  return ExploreCell{design, mode, policy, mem_spec, alloc, clock};
}

CellRequest MakeCellRequest(const ExploreSpec& spec, const ExploreCell& cell) {
  CellRequest req;
  req.design = cell.design;
  req.mode = cell.mode;
  req.policy = cell.policy;
  req.alloc = cell.alloc;
  req.clock = cell.clock;
  req.lookahead = spec.base_options.lookahead;
  req.gc_window = spec.base_options.gc_window;
  req.max_states = spec.base_options.max_states;
  req.max_ops_per_state = spec.base_options.max_ops_per_state;
  req.mem_spec = cell.mem_spec;
  req.lsq_depth = spec.base_options.lsq_depth;
  req.num_stimuli = spec.num_stimuli;
  req.seed = spec.seed;
  req.measure_sim_enc = spec.measure_sim_enc;
  req.measure_area = spec.measure_area;
  return req;
}

std::string EncodeRequestFrame(Verb verb, const std::string& body) {
  ByteWriter w;
  WriteRequestHeader(w, verb);
  std::string out = w.Take();
  out += body;
  return out;
}

std::string EncodeResponseFrame(ResponseStatus status, bool cache_hit,
                                const std::string& body) {
  ByteWriter w;
  w.U32(kWireMagic);
  w.U8(kWireVersion);
  w.U8(static_cast<std::uint8_t>(status));
  w.U8(cache_hit ? 1 : 0);
  std::string out = w.Take();
  out += body;
  return out;
}

Result<std::pair<Verb, std::string>> DecodeRequestFrame(
    std::string_view frame) {
  ByteReader r(frame);
  if (r.U32() != kWireMagic) return Malformed("request (bad magic)");
  if (r.U8() != kWireVersion) return Malformed("request (bad version)");
  const std::uint8_t verb = r.U8();
  if (!r.ok() || verb < static_cast<std::uint8_t>(Verb::kSchedule) ||
      verb > static_cast<std::uint8_t>(Verb::kProfile)) {
    return Malformed("request (bad verb)");
  }
  return std::make_pair(static_cast<Verb>(verb),
                        std::string(frame.substr(6)));
}

Result<WireResponse> DecodeResponseFrame(std::string_view frame) {
  ByteReader r(frame);
  if (r.U32() != kWireMagic) return Malformed("response (bad magic)");
  if (r.U8() != kWireVersion) return Malformed("response (bad version)");
  const std::uint8_t status = r.U8();
  const std::uint8_t cache_hit = r.U8();
  if (!r.ok() || status > static_cast<std::uint8_t>(
                              ResponseStatus::kInternalError)) {
    return Malformed("response (bad status)");
  }
  WireResponse out;
  out.status = static_cast<ResponseStatus>(status);
  out.cache_hit = cache_hit != 0;
  out.payload = std::string(frame.substr(7));
  return out;
}

std::string EncodeCellRequest(const CellRequest& req) {
  ByteWriter w;
  w.Str(req.design.name);
  w.Str(req.design.source);
  w.U8(static_cast<std::uint8_t>(req.mode));
  w.U8(static_cast<std::uint8_t>(req.policy));
  w.Str(req.alloc.label);
  w.Str(req.alloc.spec);
  w.Str(req.clock.label);
  w.F64(req.clock.clock.period_ns);
  w.U8(req.clock.clock.allow_chaining ? 1 : 0);
  w.U32(static_cast<std::uint32_t>(req.lookahead));
  w.U32(static_cast<std::uint32_t>(req.gc_window));
  w.U32(static_cast<std::uint32_t>(req.max_states));
  w.U32(static_cast<std::uint32_t>(req.max_ops_per_state));
  w.U8(req.mem_spec ? 1 : 0);
  w.U32(static_cast<std::uint32_t>(req.lsq_depth));
  w.U32(static_cast<std::uint32_t>(req.num_stimuli));
  w.U64(req.seed);
  w.U8(req.measure_sim_enc ? 1 : 0);
  w.U8(req.measure_area ? 1 : 0);
  w.I64(req.deadline_ms);
  return w.Take();
}

Result<CellRequest> DecodeCellRequest(std::string_view body) {
  ByteReader r(body);
  CellRequest req;
  req.design.name = r.Str();
  req.design.source = r.Str();
  const std::uint8_t mode = r.U8();
  const std::uint8_t policy = r.U8();
  req.alloc.label = r.Str();
  req.alloc.spec = r.Str();
  req.clock.label = r.Str();
  req.clock.clock.period_ns = r.F64();
  req.clock.clock.allow_chaining = r.U8() != 0;
  req.lookahead = static_cast<int>(r.U32());
  req.gc_window = static_cast<int>(r.U32());
  req.max_states = static_cast<int>(r.U32());
  req.max_ops_per_state = static_cast<int>(r.U32());
  req.mem_spec = r.U8() != 0;
  req.lsq_depth = static_cast<int>(r.U32());
  req.num_stimuli = static_cast<int>(r.U32());
  req.seed = r.U64();
  req.measure_sim_enc = r.U8() != 0;
  req.measure_area = r.U8() != 0;
  req.deadline_ms = r.I64();
  if (!r.AtEnd() ||
      mode > static_cast<std::uint8_t>(SpeculationMode::kWaveschedSpec) ||
      policy > static_cast<std::uint8_t>(kMaxSelectionPolicy)) {
    return Malformed("CellRequest");
  }
  req.mode = static_cast<SpeculationMode>(mode);
  req.policy = static_cast<SelectionPolicy>(policy);
  return req;
}

std::string EncodeProfileReportBody(const std::string& cell_request,
                                    const std::string& profile_payload) {
  ByteWriter w;
  w.Str(cell_request);
  w.Str(profile_payload);
  return w.Take();
}

Result<ProfileReportBody> DecodeProfileReportBody(std::string_view body) {
  ByteReader r(body);
  ProfileReportBody out;
  out.cell_request = r.Str();
  out.profile_payload = r.Str();
  if (!r.ok() || !r.AtEnd()) return Malformed("profile report");
  return out;
}

std::string EncodeTicketBody(std::uint64_t ticket) {
  ByteWriter w;
  w.U64(ticket);
  return w.Take();
}

Result<std::uint64_t> DecodeTicketBody(std::string_view body) {
  ByteReader r(body);
  const std::uint64_t ticket = r.U64();
  if (!r.ok() || !r.AtEnd()) return Malformed("ticket");
  return ticket;
}

// The response-body layout lives in explore/run_codec.h now, shared with
// the artifact store and explore resume; these wrappers keep the protocol's
// historical entry points.
std::string EncodeRun(const ExploreRun& run) { return EncodeRunBody(run); }

Result<ExploreRun> DecodeRun(std::string_view body) {
  return DecodeRunBody(body);
}

}  // namespace ws
