// Stimuli (input vectors) for the interpreter and the STG simulator, plus
// the trace generators used by the paper's evaluation ("input traces ...
// obtained as zero-mean Gaussian sequences") and the branch-probability
// profiler that feeds the scheduler's criticality heuristic.
#ifndef WS_SIM_STIMULUS_H
#define WS_SIM_STIMULUS_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "base/rng.h"
#include "cdfg/cdfg.h"

namespace ws {

// One execution's worth of inputs: a value per kInput node and (optionally)
// contents overriding each array's static initializer.
struct Stimulus {
  std::map<NodeId, std::int64_t> inputs;
  std::map<ArrayId, std::vector<std::int64_t>> arrays;

  // Lookup helpers; throw if missing.
  std::int64_t input(NodeId id) const;
  const std::vector<std::int64_t>* array_or_null(ArrayId id) const;
};

// Per-input generation policy for random stimuli.
struct StimulusSpec {
  enum class Kind { kGaussian, kUniform, kConstant };
  struct InputSpec {
    Kind kind = Kind::kGaussian;
    double sigma = 16.0;        // Gaussian
    std::int64_t lo = 0, hi = 0;  // Uniform / Constant (lo); for Gaussian,
                                  // lo is a floor (0 keeps legacy behavior)
    bool non_negative = false;  // clamp Gaussian to |x|
  };
  std::map<NodeId, InputSpec> inputs;
  std::map<ArrayId, InputSpec> arrays;

  // Defaults for unmentioned inputs/arrays.
  InputSpec default_spec;
};

// Draws `count` stimuli for graph `g` under `spec`.
std::vector<Stimulus> GenerateStimuli(const Cdfg& g, const StimulusSpec& spec,
                                      int count, Rng& rng);

}  // namespace ws

#endif  // WS_SIM_STIMULUS_H
