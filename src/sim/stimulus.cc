#include "sim/stimulus.h"

#include <cstdlib>

#include "base/status.h"

namespace ws {

std::int64_t Stimulus::input(NodeId id) const {
  auto it = inputs.find(id);
  WS_CHECK_MSG(it != inputs.end(), "no stimulus for input node "
                                       << id.value());
  return it->second;
}

const std::vector<std::int64_t>* Stimulus::array_or_null(ArrayId id) const {
  auto it = arrays.find(id);
  return it == arrays.end() ? nullptr : &it->second;
}

namespace {

std::int64_t Draw(const StimulusSpec::InputSpec& spec, Rng& rng) {
  switch (spec.kind) {
    case StimulusSpec::Kind::kGaussian: {
      std::int64_t v = rng.NextGaussianInt(spec.sigma);
      if (spec.non_negative) v = std::llabs(v);
      if (v < spec.lo) v = spec.lo;
      return v;
    }
    case StimulusSpec::Kind::kUniform:
      return rng.NextInt(spec.lo, spec.hi);
    case StimulusSpec::Kind::kConstant:
      return spec.lo;
  }
  return 0;
}

}  // namespace

std::vector<Stimulus> GenerateStimuli(const Cdfg& g, const StimulusSpec& spec,
                                      int count, Rng& rng) {
  std::vector<Stimulus> out;
  out.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    Stimulus s;
    for (NodeId in : g.inputs()) {
      auto it = spec.inputs.find(in);
      const auto& ispec = it == spec.inputs.end() ? spec.default_spec
                                                  : it->second;
      s.inputs[in] = Draw(ispec, rng);
    }
    for (const MemArray& arr : g.arrays()) {
      auto it = spec.arrays.find(arr.id);
      const auto& aspec = it == spec.arrays.end() ? spec.default_spec
                                                  : it->second;
      std::vector<std::int64_t> contents(
          static_cast<std::size_t>(arr.size));
      for (auto& v : contents) v = Draw(aspec, rng);
      s.arrays[arr.id] = std::move(contents);
    }
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace ws
