#include "sim/interpreter.h"

#include <unordered_map>

#include "cdfg/eval.h"

namespace ws {
namespace {

using Key = std::pair<std::uint32_t, int>;
struct KeyHash {
  std::size_t operator()(const Key& k) const {
    return std::hash<std::uint64_t>()(
        (static_cast<std::uint64_t>(k.first) << 32) ^
        static_cast<std::uint32_t>(k.second));
  }
};

class Interp {
 public:
  Interp(const Cdfg& g, const Stimulus& stimulus,
         const InterpOptions& options)
      : g_(g), stim_(stimulus), opts_(options) {
    for (const MemArray& arr : g_.arrays()) {
      const auto* override_contents = stim_.array_or_null(arr.id);
      std::vector<std::int64_t> contents(
          static_cast<std::size_t>(arr.size), 0);
      if (override_contents != nullptr) {
        WS_CHECK(override_contents->size() <=
                 static_cast<std::size_t>(arr.size));
        std::copy(override_contents->begin(), override_contents->end(),
                  contents.begin());
      } else {
        std::copy(arr.init.begin(), arr.init.end(), contents.begin());
      }
      arrays_.push_back(std::move(contents));
    }
    loop_exit_.assign(g_.num_loops(), -1);
  }

  InterpResult Run() {
    // Top-level nodes execute in creation order (the builder guarantees
    // defs-before-uses); a loop executes fully when its first member node is
    // reached.
    std::vector<bool> loop_started(g_.num_loops(), false);
    for (const Node& n : g_.nodes()) {
      if (n.loop.valid()) {
        if (!loop_started[n.loop.value()]) {
          loop_started[n.loop.value()] = true;
          RunLoop(g_.loop(n.loop));
        }
        continue;
      }
      ExecNode(n, /*iter=*/0);
    }

    InterpResult result;
    for (NodeId out : g_.outputs()) {
      result.outputs[out] = values_.at(MakeKey(out, 0));
    }
    for (const Loop& loop : g_.loops()) {
      result.loop_iterations[loop.id] = loop_exit_[loop.id.value()];
    }
    result.cond_outcomes = std::move(cond_outcomes_);
    for (const MemArray& arr : g_.arrays()) {
      result.arrays[arr.id] = arrays_[arr.id.value()];
    }
    return result;
  }

 private:
  static Key MakeKey(NodeId n, int iter) { return {n.value(), iter}; }

  // Value of operand `m` as read by a consumer in (loop, iter) scope.
  std::int64_t OperandValue(NodeId m, LoopId consumer_loop,
                            int consumer_iter) {
    const Node& n = g_.node(m);
    // Sources evaluate directly: constants hoisted out of loop bodies may
    // appear later in creation order than their first in-loop consumer.
    if (n.kind == OpKind::kConst) return n.const_value;
    if (n.kind == OpKind::kInput) return stim_.input(m);
    int iter = 0;
    if (n.loop == consumer_loop) {
      iter = consumer_iter;
    } else if (n.loop.valid()) {
      // Exit value of a finished loop.
      const int exit = loop_exit_[n.loop.value()];
      WS_CHECK_MSG(exit >= 0, "reading exit value of unfinished loop");
      iter = exit;
    }
    auto it = values_.find(MakeKey(m, iter));
    WS_CHECK_MSG(it != values_.end(), "read of unexecuted node "
                                          << n.name << " iter " << iter);
    return it->second;
  }

  bool GuardHolds(const Node& n, int iter) {
    for (const ControlLiteral& lit : n.ctrl) {
      const int citer = g_.node(lit.cond).loop == n.loop ? iter : 0;
      auto it = values_.find(MakeKey(lit.cond, citer));
      if (it == values_.end()) return false;  // guard cond itself skipped
      if ((it->second != 0) != lit.polarity) return false;
    }
    return true;
  }

  void ExecNode(const Node& n, int iter) {
    if (!GuardHolds(n, iter)) return;
    std::int64_t value = 0;
    switch (n.kind) {
      case OpKind::kConst:
        value = n.const_value;
        break;
      case OpKind::kInput:
        value = stim_.input(n.id);
        break;
      case OpKind::kSelect: {
        const std::int64_t s = OperandValue(n.inputs[0], n.loop, iter);
        value = OperandValue(n.inputs[s != 0 ? 1 : 2], n.loop, iter);
        break;
      }
      case OpKind::kLoopPhi: {
        if (iter == 0) {
          value = OperandValue(n.inputs[0], n.loop, iter);
        } else {
          // Back value from the previous iteration.
          const Node& back = g_.node(n.inputs[1]);
          auto it = values_.find(MakeKey(back.id, iter - 1));
          WS_CHECK_MSG(it != values_.end(),
                       "loop-phi back value missing for " << n.name);
          value = it->second;
        }
        break;
      }
      case OpKind::kMemRead: {
        const std::int64_t addr = OperandValue(n.inputs[0], n.loop, iter);
        auto& mem = arrays_[n.array.value()];
        value = mem[static_cast<std::size_t>(
            WrapAddress(addr, static_cast<int>(mem.size())))];
        break;
      }
      case OpKind::kMemWrite: {
        const std::int64_t addr = OperandValue(n.inputs[0], n.loop, iter);
        const std::int64_t v = OperandValue(n.inputs[1], n.loop, iter);
        auto& mem = arrays_[n.array.value()];
        mem[static_cast<std::size_t>(
            WrapAddress(addr, static_cast<int>(mem.size())))] = v;
        value = 0;  // token
        break;
      }
      case OpKind::kDisambig: {
        // Address disambiguation: 1 iff the two addresses select different
        // elements of `array`. Wrapping must match the memory ops, or a pair
        // of out-of-range aliases would be declared disjoint.
        const std::int64_t a = OperandValue(n.inputs[0], n.loop, iter);
        const std::int64_t b = OperandValue(n.inputs[1], n.loop, iter);
        const int size = static_cast<int>(arrays_[n.array.value()].size());
        value = WrapAddress(a, size) != WrapAddress(b, size) ? 1 : 0;
        break;
      }
      case OpKind::kOutput:
        value = OperandValue(n.inputs[0], n.loop, iter);
        break;
      case OpKind::kNot:
        value = EvalOp(n.kind, OperandValue(n.inputs[0], n.loop, iter), 0);
        break;
      case OpKind::kInc:
      case OpKind::kDec:
        value = EvalOp(n.kind, OperandValue(n.inputs[0], n.loop, iter), 0);
        break;
      default:
        value = EvalOp(n.kind, OperandValue(n.inputs[0], n.loop, iter),
                       OperandValue(n.inputs[1], n.loop, iter));
        break;
    }
    values_[MakeKey(n.id, iter)] = value;
    if (g_.is_condition_node(n.id)) {
      cond_outcomes_[n.id].push_back(value != 0);
    }
  }

  void RunLoop(const Loop& loop) {
    for (int iter = 0;; ++iter) {
      WS_CHECK_MSG(iter <= opts_.max_loop_iterations,
                   "loop " << loop.name << " exceeded max iterations");
      // Phis merge the previous iteration's back values; header nodes
      // compute the continue decision (they run on every iteration the
      // condition does, including the final failing one); the rest of the
      // body runs only when the condition held.
      for (NodeId phi : loop.phis) ExecNode(g_.node(phi), iter);
      for (NodeId b : loop.body) {
        if (g_.InLoopHeader(b)) ExecNode(g_.node(b), iter);
      }
      if (values_.at(MakeKey(loop.cond, iter)) == 0) {
        loop_exit_[loop.id.value()] = iter;
        return;
      }
      for (NodeId b : loop.body) {
        const Node& n = g_.node(b);
        if (n.kind == OpKind::kLoopPhi || g_.InLoopHeader(b)) continue;
        ExecNode(n, iter);
      }
    }
  }

  const Cdfg& g_;
  const Stimulus& stim_;
  const InterpOptions& opts_;
  std::unordered_map<Key, std::int64_t, KeyHash> values_;
  std::vector<std::vector<std::int64_t>> arrays_;
  std::vector<int> loop_exit_;
  std::map<NodeId, std::vector<bool>> cond_outcomes_;
};

}  // namespace

InterpResult Interpret(const Cdfg& g, const Stimulus& stimulus,
                       const InterpOptions& options) {
  Interp interp(g, stimulus, options);
  return interp.Run();
}

std::map<NodeId, double> ProfileBranchProbabilities(
    Cdfg& g, const std::vector<Stimulus>& stimuli,
    const InterpOptions& options) {
  std::map<NodeId, std::pair<std::int64_t, std::int64_t>> counts;
  for (const Stimulus& s : stimuli) {
    const InterpResult r = Interpret(g, s, options);
    for (const auto& [cond, outcomes] : r.cond_outcomes) {
      auto& [trues, total] = counts[cond];
      for (bool b : outcomes) {
        trues += b ? 1 : 0;
        total += 1;
      }
    }
  }
  std::map<NodeId, double> probs;
  for (const auto& [cond, tc] : counts) {
    const auto& [trues, total] = tc;
    if (total == 0) continue;
    double p = static_cast<double>(trues) / static_cast<double>(total);
    // Keep probabilities away from the extremes: the scheduler's expected
    // iteration counts and criticality products must stay finite.
    p = std::min(0.995, std::max(0.005, p));
    probs[cond] = p;
    g.set_cond_probability(cond, p);
  }
  return probs;
}

}  // namespace ws
