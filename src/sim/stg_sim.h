// Cycle-accurate simulation of a scheduled design (STG).
//
// Plays the controller: executes every operation instance bound into the
// current state (speculative ones included — that is what the hardware
// does), resolves the transition condition from the computed values of the
// conditional-operation instances, follows the matching edge (applying any
// register-relabel iteration shift), and counts clock cycles until STOP.
//
// This is the in-repo replacement for the paper's Synopsys VSS VHDL
// simulation: it both measures cycle counts and verifies that the schedule
// computes the same outputs as the golden CDFG interpreter.
#ifndef WS_SIM_STG_SIM_H
#define WS_SIM_STG_SIM_H

#include <cstdint>
#include <map>
#include <vector>

#include "cdfg/cdfg.h"
#include "sim/stimulus.h"
#include "stg/stg.h"

namespace ws {

struct StgSimResult {
  std::int64_t cycles = 0;                  // states visited before STOP
  std::map<NodeId, std::int64_t> outputs;   // per kOutput node
  std::vector<StateId> visited;             // state sequence, entry..last
  // With record_lifetimes: per value instance, the cycle it was produced and
  // the last cycle it was read (register-allocation input for the RTL area
  // model). Key packs (node, actual iteration, version).
  std::map<std::uint64_t, std::pair<std::int64_t, std::int64_t>> lifetimes;
  // With record_cond_profile: per condition node, how many of its instances
  // resolved true/false on this trace. Only instances a taken transition's
  // cube actually consumed count — a speculated-and-squashed evaluation is
  // not an observed branch outcome — and each (condition, iteration)
  // instance counts once however many states re-test it.
  std::map<NodeId, std::pair<std::int64_t, std::int64_t>> cond_counts;
  // With record_cond_profile: per loop whose continue condition resolved at
  // least once, the number of body executions (continue-condition trues).
  std::map<LoopId, std::int64_t> loop_trips;
};

struct StgSimOptions {
  std::int64_t max_cycles = 2000000;
  bool record_visited = false;
  bool record_lifetimes = false;
  bool record_cond_profile = false;
};

StgSimResult SimulateStg(const Stg& stg, const Cdfg& g,
                         const Stimulus& stimulus,
                         const StgSimOptions& options = {});

// Convenience: average cycle count over a stimulus set (the paper's E.N.C.
// measurement). Checks every run's outputs against the interpreter and
// throws on mismatch.
double MeasureExpectedCycles(const Stg& stg, const Cdfg& g,
                             const std::vector<Stimulus>& stimuli,
                             const StgSimOptions& options = {});

}  // namespace ws

#endif  // WS_SIM_STG_SIM_H
