#include "sim/stg_sim.h"

#include <map>
#include <unordered_map>
#include <unordered_set>

#include "cdfg/eval.h"
#include "sim/interpreter.h"

namespace ws {
namespace {

// (node, actual iteration, version) packed for the environment map.
std::uint64_t PackKey(NodeId node, int iter, int version) {
  return (static_cast<std::uint64_t>(node.value()) << 40) ^
         (static_cast<std::uint64_t>(static_cast<std::uint32_t>(iter))
          << 8) ^
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(version) &
                                    0xffu);
}

class StgSim {
 public:
  StgSim(const Stg& stg, const Cdfg& g, const Stimulus& stimulus,
         const StgSimOptions& options)
      : stg_(stg), g_(g), stim_(stimulus), opts_(options) {
    offsets_.assign(g_.num_loops(), 0);
    for (const MemArray& arr : g_.arrays()) {
      const auto* override_contents = stim_.array_or_null(arr.id);
      std::vector<std::int64_t> contents(
          static_cast<std::size_t>(arr.size), 0);
      if (override_contents != nullptr) {
        std::copy(override_contents->begin(), override_contents->end(),
                  contents.begin());
      } else {
        std::copy(arr.init.begin(), arr.init.end(), contents.begin());
      }
      arrays_.push_back(std::move(contents));
    }
  }

  StgSimResult Run() {
    StgSimResult result;
    StateId cur = stg_.entry();
    while (!stg_.state(cur).is_stop) {
      WS_CHECK_MSG(result.cycles < opts_.max_cycles,
                   "simulation exceeded max_cycles");
      const State& s = stg_.state(cur);
      cycle_ = result.cycles;
      result.cycles++;
      if (opts_.record_visited) result.visited.push_back(cur);

      for (const ScheduledOp& op : s.ops) {
        if (op.stage != 0) continue;  // value written at initiation
        Execute(op);
      }

      // Resolve the transition.
      const Transition* taken = nullptr;
      for (const Transition& t : s.out) {
        if (Matches(t)) {
          WS_CHECK_MSG(taken == nullptr,
                       "multiple transitions match in state "
                           << s.id.value());
          taken = &t;
        }
      }
      WS_CHECK_MSG(taken != nullptr,
                   "no transition matches in state " << s.id.value());
      if (opts_.record_cond_profile) RecordResolvedConds(*taken);
      for (const auto& [loop, delta] : taken->iter_shift) {
        offsets_[loop.value()] += delta;
      }
      if (stg_.state(taken->to).is_stop) {
        for (const OutputBinding& ob : taken->outputs) {
          result.outputs[ob.output] = Value(ob.value);
        }
      }
      cur = taken->to;
    }
    if (opts_.record_lifetimes) result.lifetimes = std::move(lifetimes_);
    if (opts_.record_cond_profile) {
      result.cond_counts = std::move(cond_counts_);
      // A loop's trip count is its continue condition's true count on this
      // trace; report every loop whose condition resolved at all (a loop
      // that exits immediately has 0 trips, not "no data").
      for (const Loop& loop : g_.loops()) {
        if (result.cond_counts.count(loop.cond) != 0) {
          result.loop_trips[loop.id] = loop_trues_[loop.id.value()];
        }
      }
    }
    return result;
  }

 private:
  int ActualIter(NodeId node, int recorded_iter) const {
    const Node& n = g_.node(node);
    if (!n.loop.valid()) return recorded_iter;
    return recorded_iter + offsets_[n.loop.value()];
  }

  std::int64_t Value(const InstRef& ref) const {
    const Node& n = g_.node(ref.node);
    if (n.kind == OpKind::kConst) return n.const_value;
    if (n.kind == OpKind::kInput) return stim_.input(ref.node);
    const auto key = PackKey(ref.node, ActualIter(ref.node, ref.iter),
                             ref.version);
    auto it = env_.find(key);
    WS_CHECK_MSG(it != env_.end(),
                 "operand " << InstRefToString(g_, ref)
                            << " read before execution");
    if (opts_.record_lifetimes) {
      auto lt = lifetimes_.find(key);
      if (lt != lifetimes_.end()) lt->second.second = cycle_;
    }
    return it->second;
  }

  void Execute(const ScheduledOp& op) {
    const Node& n = g_.node(op.inst.node);
    std::int64_t value = 0;
    switch (n.kind) {
      case OpKind::kMemRead: {
        const std::int64_t addr = Value(op.operands[0]);
        auto& mem = arrays_[n.array.value()];
        value = mem[static_cast<std::size_t>(
            WrapAddress(addr, static_cast<int>(mem.size())))];
        break;
      }
      case OpKind::kMemWrite: {
        const std::int64_t addr = Value(op.operands[0]);
        const std::int64_t v = Value(op.operands[1]);
        auto& mem = arrays_[n.array.value()];
        mem[static_cast<std::size_t>(
            WrapAddress(addr, static_cast<int>(mem.size())))] = v;
        value = 0;  // token
        break;
      }
      case OpKind::kDisambig: {
        // Same wrapping as the memory ops (see interpreter.cc): 1 iff the
        // two addresses select different elements of the array.
        const std::int64_t a = Value(op.operands[0]);
        const std::int64_t b = Value(op.operands[1]);
        const int size = static_cast<int>(arrays_[n.array.value()].size());
        value = WrapAddress(a, size) != WrapAddress(b, size) ? 1 : 0;
        break;
      }
      case OpKind::kSelect:
        if (op.operands.size() == 3) {
          // Full datapath mux: [steer, on_true, on_false].
          value = Value(op.operands[0]) != 0 ? Value(op.operands[1])
                                             : Value(op.operands[2]);
        } else {
          // Guarded copy of the (speculated or resolved) chosen side.
          value = Value(op.operands[0]);
        }
        break;
      case OpKind::kNot:
      case OpKind::kInc:
      case OpKind::kDec:
        value = EvalOp(n.kind, Value(op.operands[0]), 0);
        break;
      default:
        value = EvalOp(n.kind, Value(op.operands[0]),
                       Value(op.operands[1]));
        break;
    }
    const std::uint64_t key = PackKey(
        op.inst.node, ActualIter(op.inst.node, op.inst.iter),
        op.inst.version);
    env_[key] = value;
    if (opts_.record_lifetimes) lifetimes_[key] = {cycle_, cycle_};
  }

  // Profiles the branch outcomes the taken transition resolved: every
  // literal of its matching cube(s) names a condition instance the
  // controller genuinely consumed this cycle, with its observed value.
  // Deduped on (condition node, actual iteration) so multi-state loop
  // bodies that re-test a resolved condition don't double-count it.
  void RecordResolvedConds(const Transition& taken) {
    if (loop_trues_.empty()) loop_trues_.assign(g_.num_loops(), 0);
    for (const auto& cube : taken.cubes) {
      if (!Matches1(cube)) continue;
      for (const CondLiteral& lit : cube) {
        const std::uint64_t key =
            (static_cast<std::uint64_t>(lit.cond.node.value()) << 32) ^
            static_cast<std::uint32_t>(
                ActualIter(lit.cond.node, lit.cond.iter));
        if (!cond_seen_.insert(key).second) continue;
        auto& counts = cond_counts_[lit.cond.node];
        if (lit.value) {
          ++counts.first;
          const Node& n = g_.node(lit.cond.node);
          if (n.loop.valid() && g_.loop(n.loop).cond == lit.cond.node) {
            ++loop_trues_[n.loop.value()];
          }
        } else {
          ++counts.second;
        }
      }
    }
  }

  bool Matches1(const std::vector<CondLiteral>& cube) const {
    for (const CondLiteral& lit : cube) {
      if ((Value(lit.cond) != 0) != lit.value) return false;
    }
    return true;
  }

  bool Matches(const Transition& t) const {
    for (const auto& cube : t.cubes) {
      if (Matches1(cube)) return true;
    }
    return false;
  }

  const Stg& stg_;
  const Cdfg& g_;
  const Stimulus& stim_;
  const StgSimOptions& opts_;
  std::unordered_map<std::uint64_t, std::int64_t> env_;
  mutable std::map<std::uint64_t, std::pair<std::int64_t, std::int64_t>>
      lifetimes_;
  std::int64_t cycle_ = 0;
  std::vector<int> offsets_;
  std::vector<std::vector<std::int64_t>> arrays_;
  // record_cond_profile state: deduped resolved (cond, actual-iter)
  // instances, their outcome counts, and per-loop continue-true counts.
  std::unordered_set<std::uint64_t> cond_seen_;
  std::map<NodeId, std::pair<std::int64_t, std::int64_t>> cond_counts_;
  std::vector<std::int64_t> loop_trues_;
};

}  // namespace

StgSimResult SimulateStg(const Stg& stg, const Cdfg& g,
                         const Stimulus& stimulus,
                         const StgSimOptions& options) {
  StgSim sim(stg, g, stimulus, options);
  return sim.Run();
}

double MeasureExpectedCycles(const Stg& stg, const Cdfg& g,
                             const std::vector<Stimulus>& stimuli,
                             const StgSimOptions& options) {
  WS_CHECK(!stimuli.empty());
  double total = 0.0;
  for (const Stimulus& s : stimuli) {
    const StgSimResult r = SimulateStg(stg, g, s, options);
    const InterpResult golden = Interpret(g, s);
    for (const auto& [out, value] : golden.outputs) {
      auto it = r.outputs.find(out);
      WS_CHECK_MSG(it != r.outputs.end(),
                   "schedule lost output " << g.node(out).name);
      WS_CHECK_MSG(it->second == value,
                   "schedule computes wrong value for "
                       << g.node(out).name << ": got " << it->second
                       << ", want " << value);
    }
    total += static_cast<double>(r.cycles);
  }
  return total / static_cast<double>(stimuli.size());
}

}  // namespace ws
