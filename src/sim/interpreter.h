// Golden functional interpreter for CDFGs.
//
// Executes the structured semantics directly — loops iterate, guarded nodes
// run only when their if-nest holds, memory accesses happen in program
// order — independent of any schedule. The STG simulator's results are
// checked against this interpreter, and the branch-probability profiler is
// built on top of it.
#ifndef WS_SIM_INTERPRETER_H
#define WS_SIM_INTERPRETER_H

#include <cstdint>
#include <map>
#include <vector>

#include "cdfg/cdfg.h"
#include "sim/stimulus.h"

namespace ws {

struct InterpResult {
  std::map<NodeId, std::int64_t> outputs;    // per kOutput node
  std::map<LoopId, int> loop_iterations;     // body executions per loop
  // Condition-instance outcomes, in execution order per condition node (for
  // profiling).
  std::map<NodeId, std::vector<bool>> cond_outcomes;
  // Final contents of each array.
  std::map<ArrayId, std::vector<std::int64_t>> arrays;
};

struct InterpOptions {
  int max_loop_iterations = 100000;  // per loop; exceeded => ws::Error
};

InterpResult Interpret(const Cdfg& g, const Stimulus& stimulus,
                       const InterpOptions& options = {});

// Runs the interpreter over `stimuli` and annotates `g` with the measured
// P(true) of every condition node (the scheduler's profile input). Returns
// the per-condition probabilities.
std::map<NodeId, double> ProfileBranchProbabilities(
    Cdfg& g, const std::vector<Stimulus>& stimuli,
    const InterpOptions& options = {});

}  // namespace ws

#endif  // WS_SIM_INTERPRETER_H
