// Recursive-descent parser for the behavioral language.
//
// Grammar (EBNF):
//   program  := item*
//   item     := "input" IDENT ";"
//             | "array" IDENT "[" NUMBER "]" ("=" "{" NUMBER ("," NUMBER)* "}")? ";"
//             | "output" IDENT "=" expr ";"
//             | stmt
//   stmt     := IDENT "=" expr ";"
//             | IDENT "[" expr "]" "=" expr ";"
//             | "if" "(" expr ")" block ("else" block)?
//             | "while" "(" expr ")" block
//   block    := "{" stmt* "}"
//   expr     := or ;  or := and ("||" and)* ;  and := xor ("&&" xor)*
//   xor      := cmp ("^" cmp)*
//   cmp      := add (("=="|"!="|"<"|">"|"<="|">=") add)?
//   add      := mul (("+"|"-") mul)* ;  mul := shift ("*" shift)*
//   shift    := unary (("<<"|">>") unary)*
//   unary    := ("!"|"-") unary | primary
//   primary  := NUMBER | IDENT | IDENT "[" expr "]" | "(" expr ")"
#ifndef WS_LANG_PARSER_H
#define WS_LANG_PARSER_H

#include <string>

#include "lang/ast.h"

namespace ws {

// Parses `source` into an AST; `name` becomes the design name. Throws
// ws::Error with line/column diagnostics.
Program ParseProgram(const std::string& name, const std::string& source);

}  // namespace ws

#endif  // WS_LANG_PARSER_H
