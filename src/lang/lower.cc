#include "lang/lower.h"

#include <map>
#include <set>

#include "base/status.h"
#include "base/strings.h"
#include "cdfg/builder.h"
#include "cdfg/passes.h"
#include "lang/parser.h"

namespace ws {
namespace {

class Lowerer {
 public:
  explicit Lowerer(const Program& prog)
      : prog_(prog), builder_(prog.name) {
    builder_.EnableSimplify();
  }

  Cdfg Run() {
    for (const InputDecl& in : prog_.inputs) {
      WS_CHECK_MSG(!env_.contains(in.name),
                   "line " << in.line << ": duplicate input " << in.name);
      env_[in.name] = builder_.Input(in.name);
    }
    for (const ArrayDecl& arr : prog_.arrays) {
      WS_CHECK_MSG(!arrays_.contains(arr.name),
                   "line " << arr.line << ": duplicate array " << arr.name);
      arrays_[arr.name] = builder_.Array(arr.name, arr.size, arr.init);
    }
    LowerStmts(prog_.body);
    for (const OutputDecl& out : prog_.outputs) {
      builder_.Output(out.name, LowerExpr(*out.value));
    }
    return builder_.Finish();
  }

 private:
  using Env = std::map<std::string, NodeId>;

  NodeId Lookup(const std::string& name, int line) {
    auto it = env_.find(name);
    WS_CHECK_MSG(it != env_.end(),
                 "line " << line << ": use of undefined variable " << name);
    WS_CHECK_MSG(it->second.valid(),
                 "line " << line << ": variable " << name
                         << " is not defined on all paths reaching here");
    return it->second;
  }

  std::string OpName(const std::string& mnemonic) {
    return mnemonic + std::to_string(++op_counter_[mnemonic]);
  }

  NodeId LowerExpr(const Expr& e) {
    switch (e.kind) {
      case ExprKind::kNumber:
        return builder_.Konst(e.number);
      case ExprKind::kVar:
        return Lookup(e.name, e.line);
      case ExprKind::kArrayRead: {
        auto it = arrays_.find(e.name);
        WS_CHECK_MSG(it != arrays_.end(),
                     "line " << e.line << ": unknown array " << e.name);
        return builder_.MemRead(OpName("rd_" + e.name + "_"), it->second,
                                LowerExpr(*e.lhs));
      }
      case ExprKind::kUnary: {
        const NodeId v = LowerExpr(*e.lhs);
        if (e.op == "!") {
          return builder_.Op(OpKind::kNot, OpName("!"), {v});
        }
        // Unary minus: 0 - v.
        return builder_.Op(OpKind::kSub, OpName("-"),
                           {builder_.Konst(0), v});
      }
      case ExprKind::kBinary: {
        // x+1 / x-1 map onto the incrementer, as in the paper's examples.
        if ((e.op == "+" || e.op == "-") &&
            e.rhs->kind == ExprKind::kNumber && e.rhs->number == 1) {
          const NodeId v = LowerExpr(*e.lhs);
          return builder_.Op(e.op == "+" ? OpKind::kInc : OpKind::kDec,
                             OpName(e.op == "+" ? "++" : "--"), {v});
        }
        const NodeId a = LowerExpr(*e.lhs);
        const NodeId b = LowerExpr(*e.rhs);
        OpKind kind;
        if (e.op == "+") kind = OpKind::kAdd;
        else if (e.op == "-") kind = OpKind::kSub;
        else if (e.op == "*") kind = OpKind::kMul;
        else if (e.op == "<") kind = OpKind::kLt;
        else if (e.op == ">") kind = OpKind::kGt;
        else if (e.op == "<=") kind = OpKind::kLe;
        else if (e.op == ">=") kind = OpKind::kGe;
        else if (e.op == "==") kind = OpKind::kEq;
        else if (e.op == "!=") kind = OpKind::kNe;
        else if (e.op == "&&") kind = OpKind::kAnd2;
        else if (e.op == "||") kind = OpKind::kOr2;
        else if (e.op == "^") kind = OpKind::kXor2;
        else if (e.op == "<<") kind = OpKind::kShl;
        else if (e.op == ">>") kind = OpKind::kShr;
        else WS_THROW("line " << e.line << ": unknown operator " << e.op);
        return builder_.Op(kind, OpName(e.op), {a, b});
      }
    }
    WS_THROW("unreachable");
  }

  // Variables (syntactically) assigned anywhere in `stmts`.
  static void CollectAssigned(const std::vector<StmtPtr>& stmts,
                              std::set<std::string>* out) {
    for (const StmtPtr& s : stmts) {
      switch (s->kind) {
        case StmtKind::kAssign:
          out->insert(s->name);
          break;
        case StmtKind::kArrayWrite:
          break;
        case StmtKind::kIf:
          CollectAssigned(s->then_body, out);
          CollectAssigned(s->else_body, out);
          break;
        case StmtKind::kWhile:
          CollectAssigned(s->then_body, out);
          break;
      }
    }
  }

  void LowerStmts(const std::vector<StmtPtr>& stmts) {
    for (const StmtPtr& s : stmts) LowerStmt(*s);
  }

  void LowerStmt(const Stmt& s) {
    switch (s.kind) {
      case StmtKind::kAssign:
        env_[s.name] = LowerExpr(*s.value);
        return;
      case StmtKind::kArrayWrite: {
        auto it = arrays_.find(s.name);
        WS_CHECK_MSG(it != arrays_.end(),
                     "line " << s.line << ": unknown array " << s.name);
        const NodeId addr = LowerExpr(*s.index);
        const NodeId value = LowerExpr(*s.value);
        builder_.MemWrite(OpName("wr_" + s.name + "_"), it->second, addr,
                          value);
        return;
      }
      case StmtKind::kIf: {
        const NodeId cond = LowerExpr(*s.cond);
        const Env before = env_;
        builder_.BeginIf(cond);
        LowerStmts(s.then_body);
        Env then_env = env_;
        env_ = before;
        builder_.BeginElse();
        LowerStmts(s.else_body);
        Env else_env = env_;
        builder_.EndIf();
        // Join: select per variable whose definition differs across arms.
        env_ = before;
        std::set<std::string> names;
        for (const auto& [n, v] : then_env) names.insert(n);
        for (const auto& [n, v] : else_env) names.insert(n);
        for (const std::string& name : names) {
          auto tit = then_env.find(name);
          auto eit = else_env.find(name);
          const bool in_then = tit != then_env.end();
          const bool in_else = eit != else_env.end();
          if (in_then && in_else) {
            if (tit->second == eit->second) {
              env_[name] = tit->second;
            } else {
              env_[name] = builder_.Select(OpName("sel_" + name + "_"),
                                           cond, tit->second, eit->second);
            }
          } else {
            // Defined on one arm only: poison — usable nowhere after the if.
            env_[name] = before.contains(name) ? before.at(name)
                                               : NodeId::invalid();
          }
        }
        return;
      }
      case StmtKind::kWhile: {
        std::set<std::string> assigned;
        CollectAssigned(s.then_body, &assigned);
        const Env before = env_;
        builder_.BeginLoop(OpName("loop"));
        std::map<std::string, NodeId> phis;
        for (const std::string& name : assigned) {
          auto it = before.find(name);
          if (it == before.end() || !it->second.valid()) continue;
          const NodeId phi = builder_.LoopPhi(name, it->second);
          phis[name] = phi;
          env_[name] = phi;
        }
        const NodeId cond = LowerExpr(*s.cond);
        builder_.SetLoopCondition(cond);
        LowerStmts(s.then_body);
        for (const auto& [name, phi] : phis) {
          builder_.SetLoopBack(phi, Lookup(name, s.line));
        }
        builder_.EndLoop();
        // After the loop: loop-carried variables read their exit value (the
        // phi); loop-local variables go out of scope.
        env_ = before;
        for (const auto& [name, phi] : phis) env_[name] = phi;
        return;
      }
    }
  }

  const Program& prog_;
  CdfgBuilder builder_;
  Env env_;
  std::map<std::string, ArrayId> arrays_;
  std::map<std::string, int> op_counter_;
};

}  // namespace

Cdfg LowerProgram(const Program& program) {
  Lowerer lowerer(program);
  return lowerer.Run();
}

Cdfg CompileBehavioral(const std::string& name, const std::string& source) {
  return EliminateDeadCode(LowerProgram(ParseProgram(name, source)));
}

}  // namespace ws
