// Lexer for the behavioral description language (.beh).
//
// The language is a small C-like subset sufficient for control-flow
// intensive behavioral descriptions: integer variables, arrays,
// assignments, if/else, while, and the CDFG operator set.
#ifndef WS_LANG_LEXER_H
#define WS_LANG_LEXER_H

#include <cstdint>
#include <string>
#include <vector>

namespace ws {

enum class TokKind {
  kEnd,
  kIdent,
  kNumber,
  // Keywords.
  kInput,
  kArray,
  kOutput,
  kIf,
  kElse,
  kWhile,
  // Punctuation / operators.
  kLParen,
  kRParen,
  kLBrace,
  kRBrace,
  kLBracket,
  kRBracket,
  kSemicolon,
  kComma,
  kAssign,   // =
  kPlus,
  kMinus,
  kStar,
  kShl,      // <<
  kShr,      // >>
  kLt,
  kGt,
  kLe,
  kGe,
  kEq,       // ==
  kNe,       // !=
  kNot,      // !
  kAndAnd,   // &&
  kOrOr,     // ||
  kXorXor,   // ^
};

struct Token {
  TokKind kind = TokKind::kEnd;
  std::string text;          // identifier spelling
  std::int64_t number = 0;   // kNumber value
  int line = 1;
  int column = 1;
};

// Tokenizes `source`; throws ws::Error with line/column on bad input.
// '#' and '//' start line comments.
std::vector<Token> Lex(const std::string& source);

const char* TokKindName(TokKind kind);

}  // namespace ws

#endif  // WS_LANG_LEXER_H
