#include "lang/lexer.h"

#include <cctype>

#include "base/status.h"

namespace ws {

const char* TokKindName(TokKind kind) {
  switch (kind) {
    case TokKind::kEnd: return "<eof>";
    case TokKind::kIdent: return "identifier";
    case TokKind::kNumber: return "number";
    case TokKind::kInput: return "'input'";
    case TokKind::kArray: return "'array'";
    case TokKind::kOutput: return "'output'";
    case TokKind::kIf: return "'if'";
    case TokKind::kElse: return "'else'";
    case TokKind::kWhile: return "'while'";
    case TokKind::kLParen: return "'('";
    case TokKind::kRParen: return "')'";
    case TokKind::kLBrace: return "'{'";
    case TokKind::kRBrace: return "'}'";
    case TokKind::kLBracket: return "'['";
    case TokKind::kRBracket: return "']'";
    case TokKind::kSemicolon: return "';'";
    case TokKind::kComma: return "','";
    case TokKind::kAssign: return "'='";
    case TokKind::kPlus: return "'+'";
    case TokKind::kMinus: return "'-'";
    case TokKind::kStar: return "'*'";
    case TokKind::kShl: return "'<<'";
    case TokKind::kShr: return "'>>'";
    case TokKind::kLt: return "'<'";
    case TokKind::kGt: return "'>'";
    case TokKind::kLe: return "'<='";
    case TokKind::kGe: return "'>='";
    case TokKind::kEq: return "'=='";
    case TokKind::kNe: return "'!='";
    case TokKind::kNot: return "'!'";
    case TokKind::kAndAnd: return "'&&'";
    case TokKind::kOrOr: return "'||'";
    case TokKind::kXorXor: return "'^'";
  }
  return "?";
}

std::vector<Token> Lex(const std::string& source) {
  std::vector<Token> tokens;
  int line = 1, column = 1;
  std::size_t i = 0;
  const std::size_t n = source.size();

  auto peek = [&](std::size_t off = 0) -> char {
    return i + off < n ? source[i + off] : '\0';
  };
  auto advance = [&]() {
    if (source[i] == '\n') {
      ++line;
      column = 1;
    } else {
      ++column;
    }
    ++i;
  };
  auto push = [&](TokKind kind, int tl, int tc) {
    Token t;
    t.kind = kind;
    t.line = tl;
    t.column = tc;
    tokens.push_back(t);
  };

  while (i < n) {
    const char c = peek();
    const int tl = line, tc = column;
    if (std::isspace(static_cast<unsigned char>(c))) {
      advance();
      continue;
    }
    if (c == '#' || (c == '/' && peek(1) == '/')) {
      while (i < n && peek() != '\n') advance();
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::int64_t value = 0;
      while (i < n && std::isdigit(static_cast<unsigned char>(peek()))) {
        value = value * 10 + (peek() - '0');
        advance();
      }
      Token t;
      t.kind = TokKind::kNumber;
      t.number = value;
      t.line = tl;
      t.column = tc;
      tokens.push_back(t);
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::string word;
      while (i < n && (std::isalnum(static_cast<unsigned char>(peek())) ||
                       peek() == '_')) {
        word += peek();
        advance();
      }
      Token t;
      t.line = tl;
      t.column = tc;
      if (word == "input") {
        t.kind = TokKind::kInput;
      } else if (word == "array") {
        t.kind = TokKind::kArray;
      } else if (word == "output") {
        t.kind = TokKind::kOutput;
      } else if (word == "if") {
        t.kind = TokKind::kIf;
      } else if (word == "else") {
        t.kind = TokKind::kElse;
      } else if (word == "while") {
        t.kind = TokKind::kWhile;
      } else {
        t.kind = TokKind::kIdent;
        t.text = word;
      }
      tokens.push_back(t);
      continue;
    }
    // Operators / punctuation.
    auto two = [&](char a, char b) { return c == a && peek(1) == b; };
    if (two('<', '<')) { push(TokKind::kShl, tl, tc); advance(); advance(); continue; }
    if (two('>', '>')) { push(TokKind::kShr, tl, tc); advance(); advance(); continue; }
    if (two('<', '=')) { push(TokKind::kLe, tl, tc); advance(); advance(); continue; }
    if (two('>', '=')) { push(TokKind::kGe, tl, tc); advance(); advance(); continue; }
    if (two('=', '=')) { push(TokKind::kEq, tl, tc); advance(); advance(); continue; }
    if (two('!', '=')) { push(TokKind::kNe, tl, tc); advance(); advance(); continue; }
    if (two('&', '&')) { push(TokKind::kAndAnd, tl, tc); advance(); advance(); continue; }
    if (two('|', '|')) { push(TokKind::kOrOr, tl, tc); advance(); advance(); continue; }
    switch (c) {
      case '(': push(TokKind::kLParen, tl, tc); advance(); continue;
      case ')': push(TokKind::kRParen, tl, tc); advance(); continue;
      case '{': push(TokKind::kLBrace, tl, tc); advance(); continue;
      case '}': push(TokKind::kRBrace, tl, tc); advance(); continue;
      case '[': push(TokKind::kLBracket, tl, tc); advance(); continue;
      case ']': push(TokKind::kRBracket, tl, tc); advance(); continue;
      case ';': push(TokKind::kSemicolon, tl, tc); advance(); continue;
      case ',': push(TokKind::kComma, tl, tc); advance(); continue;
      case '=': push(TokKind::kAssign, tl, tc); advance(); continue;
      case '+': push(TokKind::kPlus, tl, tc); advance(); continue;
      case '-': push(TokKind::kMinus, tl, tc); advance(); continue;
      case '*': push(TokKind::kStar, tl, tc); advance(); continue;
      case '<': push(TokKind::kLt, tl, tc); advance(); continue;
      case '>': push(TokKind::kGt, tl, tc); advance(); continue;
      case '!': push(TokKind::kNot, tl, tc); advance(); continue;
      case '^': push(TokKind::kXorXor, tl, tc); advance(); continue;
      default:
        WS_THROW("lex error at " << line << ":" << column
                                 << ": unexpected character '" << c << "'");
    }
  }
  Token end;
  end.kind = TokKind::kEnd;
  end.line = line;
  end.column = column;
  tokens.push_back(end);
  return tokens;
}

}  // namespace ws
