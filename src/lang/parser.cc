#include "lang/parser.h"

#include "base/status.h"
#include "lang/lexer.h"

namespace ws {
namespace {

class Parser {
 public:
  Parser(std::string name, const std::string& source)
      : name_(std::move(name)), tokens_(Lex(source)) {}

  Program Run() {
    Program prog;
    prog.name = name_;
    while (!At(TokKind::kEnd)) {
      if (At(TokKind::kInput)) {
        Next();
        InputDecl d;
        d.line = Cur().line;
        d.name = Expect(TokKind::kIdent).text;
        Expect(TokKind::kSemicolon);
        prog.inputs.push_back(std::move(d));
      } else if (At(TokKind::kArray)) {
        Next();
        ArrayDecl d;
        d.line = Cur().line;
        d.name = Expect(TokKind::kIdent).text;
        Expect(TokKind::kLBracket);
        d.size = static_cast<int>(Expect(TokKind::kNumber).number);
        Expect(TokKind::kRBracket);
        if (At(TokKind::kAssign)) {
          Next();
          Expect(TokKind::kLBrace);
          if (!At(TokKind::kRBrace)) {
            d.init.push_back(Expect(TokKind::kNumber).number);
            while (At(TokKind::kComma)) {
              Next();
              d.init.push_back(Expect(TokKind::kNumber).number);
            }
          }
          Expect(TokKind::kRBrace);
        }
        Expect(TokKind::kSemicolon);
        prog.arrays.push_back(std::move(d));
      } else if (At(TokKind::kOutput)) {
        Next();
        OutputDecl d;
        d.line = Cur().line;
        d.name = Expect(TokKind::kIdent).text;
        Expect(TokKind::kAssign);
        d.value = ParseExpr();
        Expect(TokKind::kSemicolon);
        prog.outputs.push_back(std::move(d));
      } else {
        prog.body.push_back(ParseStmt());
      }
    }
    return prog;
  }

 private:
  const Token& Cur() const { return tokens_[pos_]; }
  bool At(TokKind kind) const { return Cur().kind == kind; }
  void Next() { ++pos_; }
  Token Expect(TokKind kind) {
    if (!At(kind)) {
      WS_THROW("parse error at " << Cur().line << ":" << Cur().column
                                 << ": expected " << TokKindName(kind)
                                 << ", found " << TokKindName(Cur().kind));
    }
    Token t = Cur();
    Next();
    return t;
  }

  StmtPtr ParseStmt() {
    auto stmt = std::make_unique<Stmt>();
    stmt->line = Cur().line;
    if (At(TokKind::kIf)) {
      Next();
      stmt->kind = StmtKind::kIf;
      Expect(TokKind::kLParen);
      stmt->cond = ParseExpr();
      Expect(TokKind::kRParen);
      stmt->then_body = ParseBlock();
      if (At(TokKind::kElse)) {
        Next();
        stmt->else_body = ParseBlock();
      }
      return stmt;
    }
    if (At(TokKind::kWhile)) {
      Next();
      stmt->kind = StmtKind::kWhile;
      Expect(TokKind::kLParen);
      stmt->cond = ParseExpr();
      Expect(TokKind::kRParen);
      stmt->then_body = ParseBlock();
      return stmt;
    }
    const Token target = Expect(TokKind::kIdent);
    stmt->name = target.text;
    if (At(TokKind::kLBracket)) {
      Next();
      stmt->kind = StmtKind::kArrayWrite;
      stmt->index = ParseExpr();
      Expect(TokKind::kRBracket);
    } else {
      stmt->kind = StmtKind::kAssign;
    }
    Expect(TokKind::kAssign);
    stmt->value = ParseExpr();
    Expect(TokKind::kSemicolon);
    return stmt;
  }

  std::vector<StmtPtr> ParseBlock() {
    Expect(TokKind::kLBrace);
    std::vector<StmtPtr> body;
    while (!At(TokKind::kRBrace)) body.push_back(ParseStmt());
    Expect(TokKind::kRBrace);
    return body;
  }

  ExprPtr MakeBinary(const char* op, ExprPtr lhs, ExprPtr rhs, int line) {
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kBinary;
    e->op = op;
    e->lhs = std::move(lhs);
    e->rhs = std::move(rhs);
    e->line = line;
    return e;
  }

  ExprPtr ParseExpr() { return ParseOr(); }

  ExprPtr ParseOr() {
    ExprPtr e = ParseAnd();
    while (At(TokKind::kOrOr)) {
      const int line = Cur().line;
      Next();
      e = MakeBinary("||", std::move(e), ParseAnd(), line);
    }
    return e;
  }

  ExprPtr ParseAnd() {
    ExprPtr e = ParseXor();
    while (At(TokKind::kAndAnd)) {
      const int line = Cur().line;
      Next();
      e = MakeBinary("&&", std::move(e), ParseXor(), line);
    }
    return e;
  }

  ExprPtr ParseXor() {
    ExprPtr e = ParseCmp();
    while (At(TokKind::kXorXor)) {
      const int line = Cur().line;
      Next();
      e = MakeBinary("^", std::move(e), ParseCmp(), line);
    }
    return e;
  }

  ExprPtr ParseCmp() {
    ExprPtr e = ParseAdd();
    const char* op = nullptr;
    switch (Cur().kind) {
      case TokKind::kEq: op = "=="; break;
      case TokKind::kNe: op = "!="; break;
      case TokKind::kLt: op = "<"; break;
      case TokKind::kGt: op = ">"; break;
      case TokKind::kLe: op = "<="; break;
      case TokKind::kGe: op = ">="; break;
      default: return e;
    }
    const int line = Cur().line;
    Next();
    return MakeBinary(op, std::move(e), ParseAdd(), line);
  }

  ExprPtr ParseAdd() {
    ExprPtr e = ParseMul();
    while (At(TokKind::kPlus) || At(TokKind::kMinus)) {
      const bool plus = At(TokKind::kPlus);
      const int line = Cur().line;
      Next();
      e = MakeBinary(plus ? "+" : "-", std::move(e), ParseMul(), line);
    }
    return e;
  }

  ExprPtr ParseMul() {
    ExprPtr e = ParseShift();
    while (At(TokKind::kStar)) {
      const int line = Cur().line;
      Next();
      e = MakeBinary("*", std::move(e), ParseShift(), line);
    }
    return e;
  }

  ExprPtr ParseShift() {
    ExprPtr e = ParseUnary();
    while (At(TokKind::kShl) || At(TokKind::kShr)) {
      const bool left = At(TokKind::kShl);
      const int line = Cur().line;
      Next();
      e = MakeBinary(left ? "<<" : ">>", std::move(e), ParseUnary(), line);
    }
    return e;
  }

  ExprPtr ParseUnary() {
    if (At(TokKind::kNot) || At(TokKind::kMinus)) {
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kUnary;
      e->op = At(TokKind::kNot) ? "!" : "-";
      e->line = Cur().line;
      Next();
      e->lhs = ParseUnary();
      return e;
    }
    return ParsePrimary();
  }

  ExprPtr ParsePrimary() {
    auto e = std::make_unique<Expr>();
    e->line = Cur().line;
    if (At(TokKind::kNumber)) {
      e->kind = ExprKind::kNumber;
      e->number = Cur().number;
      Next();
      return e;
    }
    if (At(TokKind::kIdent)) {
      e->name = Cur().text;
      Next();
      if (At(TokKind::kLBracket)) {
        Next();
        e->kind = ExprKind::kArrayRead;
        e->lhs = ParseExpr();
        Expect(TokKind::kRBracket);
      } else {
        e->kind = ExprKind::kVar;
      }
      return e;
    }
    if (At(TokKind::kLParen)) {
      Next();
      ExprPtr inner = ParseExpr();
      Expect(TokKind::kRParen);
      return inner;
    }
    WS_THROW("parse error at " << Cur().line << ":" << Cur().column
                               << ": expected expression, found "
                               << TokKindName(Cur().kind));
  }

  std::string name_;
  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

Program ParseProgram(const std::string& name, const std::string& source) {
  Parser parser(name, source);
  return parser.Run();
}

}  // namespace ws
