// AST -> CDFG lowering: SSA construction with explicit selects at if-joins
// and loop-phis for loop-carried variables (the forms the speculative
// scheduler consumes).
#ifndef WS_LANG_LOWER_H
#define WS_LANG_LOWER_H

#include <string>

#include "cdfg/cdfg.h"
#include "lang/ast.h"

namespace ws {

// Lowers a parsed program with builder-level simplification (constant
// folding, identities, scoped CSE). Throws ws::Error on semantic problems
// (undefined variables, nested loops, variables defined on only one branch
// of an if and used after it, ...).
Cdfg LowerProgram(const Program& program);

// Convenience: parse + lower + dead-code elimination.
Cdfg CompileBehavioral(const std::string& name, const std::string& source);

}  // namespace ws

#endif  // WS_LANG_LOWER_H
