// Abstract syntax tree for the behavioral language.
#ifndef WS_LANG_AST_H
#define WS_LANG_AST_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace ws {

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

enum class ExprKind {
  kNumber,
  kVar,
  kArrayRead,  // name[index]
  kUnary,      // op in {'!', '-'}
  kBinary,     // op: lexer token spelling, e.g. "+", "==", "<<"
};

struct Expr {
  ExprKind kind;
  int line = 0;

  std::int64_t number = 0;              // kNumber
  std::string name;                     // kVar / kArrayRead
  std::string op;                       // kUnary / kBinary
  ExprPtr lhs, rhs;                     // kUnary uses lhs; kArrayRead: index in lhs
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

enum class StmtKind {
  kAssign,      // name = expr
  kArrayWrite,  // name[index] = expr
  kIf,
  kWhile,
};

struct Stmt {
  StmtKind kind;
  int line = 0;

  std::string name;   // kAssign / kArrayWrite target
  ExprPtr index;      // kArrayWrite
  ExprPtr value;      // kAssign / kArrayWrite
  ExprPtr cond;       // kIf / kWhile
  std::vector<StmtPtr> then_body;  // kIf then / kWhile body
  std::vector<StmtPtr> else_body;  // kIf else
};

struct InputDecl {
  std::string name;
  int line = 0;
};

struct ArrayDecl {
  std::string name;
  int size = 0;
  std::vector<std::int64_t> init;
  int line = 0;
};

struct OutputDecl {
  std::string name;  // output port name
  ExprPtr value;
  int line = 0;
};

struct Program {
  std::string name;
  std::vector<InputDecl> inputs;
  std::vector<ArrayDecl> arrays;
  std::vector<StmtPtr> body;
  std::vector<OutputDecl> outputs;
};

}  // namespace ws

#endif  // WS_LANG_AST_H
