// The path-length half of the paper's criticality heuristic (Section 4.3,
// Step 3 / Equation 5):
//
//   criticality(op) = lambda(op) * P(guard(op))
//
// lambda(op) is the expected length of the longest delay path from `op` to a
// primary output. For acyclic regions this is the classic longest-path
// metric; for operations inside data-dependent loops the path length is
// input-dependent, so — following the paper's "expected length" definition —
// we add the expected number of remaining loop iterations times the loop
// body's critical path (expected iterations derived from the loop-continue
// probability annotation, E = p / (1 - p)).
#ifndef WS_SCHED_LAMBDA_H
#define WS_SCHED_LAMBDA_H

#include <vector>

#include "cdfg/cdfg.h"
#include "hw/resources.h"

namespace ws {

// lambda values indexed by NodeId::value(). Weights are operation latencies
// in cycles (structural nodes weigh 0). Expected loop iterations are capped
// at `max_expected_iters` to keep runaway annotations (p -> 1) finite.
std::vector<double> ComputeLambda(const Cdfg& g, const FuLibrary& lib,
                                  double max_expected_iters = 64.0);

}  // namespace ws

#endif  // WS_SCHED_LAMBDA_H
