// Schedulable-successor computation (Lemma 1 / Observation 1): value-version
// propagation and candidate generation.
//
// Every completed operation instance publishes a version of its result
// tagged with a residual speculation guard; Versions() enumerates the
// versions of an operand as seen by a consumer scope — recursing through
// unresolved selects (conjoining path-select literals, Observation 1),
// stepping loop-phis across iterations, and turning cross-loop reads into
// guarded exit values. GenerateCandidates() forms a candidate from every
// guard-consistent operand binding of every uncovered instance, applies the
// speculation-mode filter, and scores the survivors with the active
// selection policy (sched/policy.h).
#ifndef WS_SCHED_CANDIDATES_H
#define WS_SCHED_CANDIDATES_H

#include <vector>

#include "bdd/bdd.h"
#include "cdfg/cdfg.h"
#include "hw/resources.h"
#include "sched/engine_state.h"
#include "sched/guards.h"
#include "sched/policy.h"
#include "sched/scheduler.h"

namespace ws {

// One usable version of an operand value: who produced it, under what
// residual guard it is the correct value, and how far into the cycle it
// becomes ready (operation chaining).
struct ResolvedVersion {
  InstRef producer;
  Bdd guard;
  double ready_offset = 0.0;
};

class CandidateGenerator {
 public:
  // All references are borrowed for the run. `lambda` may be filled after
  // construction (the reference binds to the vector object); it must be
  // populated before the first GenerateCandidates call. `stats` receives
  // candidates_generated and the successor/select phase times.
  CandidateGenerator(const Cdfg& g, const FuLibrary& lib,
                     const SchedulerOptions& opts, BddManager& mgr,
                     GuardEngine& guards, const SelectionPolicyImpl& policy,
                     const std::vector<double>& lambda, ScheduleStats& stats)
      : g_(g),
        lib_(lib),
        opts_(opts),
        mgr_(mgr),
        guards_(guards),
        policy_(policy),
        lambda_(lambda),
        stats_(stats) {}

  // All versions of operand `m` as seen by a consumer in scope
  // (consumer_loop, consumer_iter).
  std::vector<ResolvedVersion> Versions(const PathState& ps, NodeId m,
                                        LoopId consumer_loop,
                                        int consumer_iter, int depth = 0);

  // Clears and refills `*out` with the mode-filtered, policy-scored
  // candidates of `ps` (caller-owned so its capacity is reused across the
  // greedy admission loop). May widen existing binding guards in `ps` when a
  // would-be candidate duplicates a binding's operands.
  void GenerateCandidates(PathState& ps, std::vector<Candidate>* out);

 private:
  std::vector<ResolvedVersion> VersionsAt(const PathState& ps, NodeId m,
                                          int iter, int depth);
  // If bindings[key] already holds an execution with identical operands,
  // widens its validity guard by `guard` (the physical result is the same)
  // and returns true; otherwise leaves `ps` untouched and returns false.
  bool WidenDuplicate(PathState& ps, const InstKey& key,
                      const std::vector<InstRef>& operands, Bdd guard);
  void GenerateSelectCandidates(PathState& ps, const Node& n, int iter,
                                Bdd ctrl, std::vector<Candidate>* cands);

  const Cdfg& g_;
  const FuLibrary& lib_;
  const SchedulerOptions& opts_;
  BddManager& mgr_;
  GuardEngine& guards_;
  const SelectionPolicyImpl& policy_;
  const std::vector<double>& lambda_;
  ScheduleStats& stats_;

  // Scratch buffers reused across hot-path calls (cleared, never shrunk).
  std::vector<int> spec_base_;
  std::vector<Candidate> cand_scratch_;

  static constexpr int kMaxRecursionDepth = 64;
};

}  // namespace ws

#endif  // WS_SCHED_CANDIDATES_H
