// Schedulable-successor computation (Lemma 1 / Observation 1): value-version
// propagation and candidate generation.
//
// Every completed operation instance publishes a version of its result
// tagged with a residual speculation guard; Versions() enumerates the
// versions of an operand as seen by a consumer scope — recursing through
// unresolved selects (conjoining path-select literals, Observation 1),
// stepping loop-phis across iterations, and turning cross-loop reads into
// guarded exit values. GenerateCandidates() forms a candidate from every
// guard-consistent operand binding of every uncovered instance, applies the
// speculation-mode filter, and scores the survivors with the active
// selection policy (sched/policy.h).
#ifndef WS_SCHED_CANDIDATES_H
#define WS_SCHED_CANDIDATES_H

#include <vector>

#include "bdd/bdd.h"
#include "cdfg/cdfg.h"
#include "hw/resources.h"
#include "mem/lsq.h"
#include "sched/engine_state.h"
#include "sched/guards.h"
#include "sched/policy.h"
#include "sched/scheduler.h"

namespace ws {

// One usable version of an operand value: who produced it, under what
// residual guard it is the correct value, and how far into the cycle it
// becomes ready (operation chaining).
struct ResolvedVersion {
  InstRef producer;
  Bdd guard;
  double ready_offset = 0.0;
};

class CandidateGenerator {
 public:
  // All references are borrowed for the run. `lambda` may be filled after
  // construction (the reference binds to the vector object); it must be
  // populated before the first GenerateCandidates call. `stats` receives
  // candidates_generated and the successor/select phase times.
  // `lsq` is the relaxed memory-dependence model of a mem_spec run (may be
  // null: conservative token-chain ordering for every array).
  CandidateGenerator(const Cdfg& g, const FuLibrary& lib,
                     const SchedulerOptions& opts, BddManager& mgr,
                     GuardEngine& guards, const SelectionPolicyImpl& policy,
                     const std::vector<double>& lambda, ScheduleStats& stats,
                     const LsqModel* lsq = nullptr)
      : g_(g),
        lib_(lib),
        opts_(opts),
        mgr_(mgr),
        guards_(guards),
        policy_(policy),
        lambda_(lambda),
        stats_(stats),
        lsq_(lsq) {}

  // All versions of operand `m` as seen by a consumer in scope
  // (consumer_loop, consumer_iter).
  std::vector<ResolvedVersion> Versions(const PathState& ps, NodeId m,
                                        LoopId consumer_loop,
                                        int consumer_iter, int depth = 0);

  // Clears and refills `*out` with the mode-filtered, policy-scored
  // candidates of `ps` (caller-owned so its capacity is reused across the
  // greedy admission loop). May widen existing binding guards in `ps` when a
  // would-be candidate duplicates a binding's operands.
  void GenerateCandidates(PathState& ps, std::vector<Candidate>* out);

 private:
  std::vector<ResolvedVersion> VersionsAt(const PathState& ps, NodeId m,
                                          int iter, int depth);
  // If bindings[key] already holds an execution with identical operands,
  // widens its validity guard by `guard` (the physical result is the same)
  // and returns true; otherwise leaves `ps` untouched and returns false.
  bool WidenDuplicate(PathState& ps, const InstKey& key,
                      const std::vector<InstRef>& operands, Bdd guard);
  void GenerateSelectCandidates(PathState& ps, const Node& n, int iter,
                                Bdd ctrl, std::vector<Candidate>* cands);
  // LSQ-relaxed memory ordering for access instance (n, iter): appends the
  // completion tokens of hard (and resolved-alias) edges to
  // `operand_versions`, conjoins disambiguation literals of bypassed edges
  // into `issue_guard`. Returns false when the instance cannot issue yet
  // (a hard predecessor's token is missing, the LSQ window is full, or the
  // guard collapses to false).
  bool AppendLsqDeps(PathState& ps, const Node& n, int iter,
                     std::vector<std::vector<ResolvedVersion>>* operand_versions,
                     Bdd* issue_guard);
  // Unresolved disambiguation instances of `n`'s array in the window
  // [speculation base, iter] — the LSQ occupancy charged against lsq_depth.
  // Purely a function of the path state (never of the global mint registry),
  // so closure-equivalent states see identical occupancy.
  int OutstandingDisambigs(const PathState& ps, const Node& n, int iter) const;

  const Cdfg& g_;
  const FuLibrary& lib_;
  const SchedulerOptions& opts_;
  BddManager& mgr_;
  GuardEngine& guards_;
  const SelectionPolicyImpl& policy_;
  const std::vector<double>& lambda_;
  ScheduleStats& stats_;
  const LsqModel* lsq_;

  // Scratch buffers reused across hot-path calls (cleared, never shrunk).
  std::vector<int> spec_base_;
  std::vector<Candidate> cand_scratch_;

  static constexpr int kMaxRecursionDepth = 64;
};

}  // namespace ws

#endif  // WS_SCHED_CANDIDATES_H
