// Canonical 128-bit fingerprints of scheduling requests.
//
// The serving layer's result cache needs a key with two properties: two
// requests with the same fingerprint must schedule identically, and the
// fingerprint must be cheap next to a scheduling run. Both hold by
// construction here: the token stream enumerates exactly the inputs the
// scheduler reads — the CDFG's structure (nodes, operands, guards, loops,
// arrays, I/O) and its branch-probability annotations, the functional-unit
// library and kind selection, the allocation counts, and every
// result-affecting SchedulerOptions field — folded through the same FpHasher
// that backs closure-detection state signatures (base/hashing.h), so the
// collision probability is the same ~2^-128 the scheduler already accepts
// (and the serving cache, like closure detection, tolerates: a stale hit
// returns a well-formed report for the colliding request, never corruption).
//
// Deliberately excluded: SchedulerOptions::deadline and ::cancel — they
// bound a particular call, not its result. Nothing else is: display names
// (graph, node, loop, array, unit) all participate, because fingerprints
// now also key the durable artifact store (io/artifact_store.h), whose
// values embed rendered text — STG guard strings carry node names, error
// messages carry unit names — so two designs differing only in names must
// never replay each other's artifacts.
#ifndef WS_SCHED_FINGERPRINT_H
#define WS_SCHED_FINGERPRINT_H

#include "base/hashing.h"
#include "sched/scheduler.h"

namespace ws {

// Fingerprint of a fully-formed request (all pointers non-null; throws
// ws::Error otherwise). Deterministic across platforms and processes.
Fp128 FingerprintScheduleRequest(const ScheduleRequest& request);

// The building blocks, for callers that key on a superset of the request
// (the serving cache also mixes in stimulus counts and analysis flags).
void MixString(FpHasher& h, const std::string& s);
void MixCdfg(FpHasher& h, const Cdfg& g);
void MixLibrary(FpHasher& h, const FuLibrary& lib);
void MixAllocation(FpHasher& h, const Allocation& alloc, const FuLibrary& lib);
void MixOptions(FpHasher& h, const SchedulerOptions& options);

}  // namespace ws

#endif  // WS_SCHED_FINGERPRINT_H
