// Validation/invalidation at state boundaries (the paper's Step 2).
//
// When condition instances resolve at the end of a cycle, the STG forks per
// condition combination: PartitionLeaves enumerates the resolvable latched
// conditions of a path state and produces one leaf per outcome cube, each
// with a copy of the state folded by Fold — which cofactors every guard on
// the resolved variable, discards work whose guard folds to 0 (squashing
// in-flight speculative operations and invalidating their bindings),
// validates work whose guard folds to 1, and advances the loop resolution
// frontiers.
#ifndef WS_SCHED_FORK_H
#define WS_SCHED_FORK_H

#include <vector>

#include "bdd/bdd.h"
#include "cdfg/cdfg.h"
#include "sched/engine_state.h"
#include "sched/guards.h"
#include "sched/scheduler.h"
#include "stg/stg.h"

namespace ws {

class ForkEngine {
 public:
  // One outcome of a resolution fork: the condition cube taken and the
  // folded path state that results.
  struct Leaf {
    std::vector<CondLiteral> cube;
    PathState ps;
  };

  // References are borrowed for the run; `stats` receives squashed_ops.
  ForkEngine(const Cdfg& g, BddManager& mgr, GuardEngine& guards,
             ScheduleStats& stats)
      : g_(g), mgr_(mgr), guards_(guards), stats_(stats) {}

  // Resolves condition instance (cond, iter) to `value` in `ps`: records
  // the resolution, cofactors every binding/in-flight guard, drops dead
  // versions and latched values, and advances loop fronts.
  void Fold(PathState& ps, NodeId cond, int iter, bool value);

  // Recursively splits `ps` on its resolvable latched conditions (validity
  // guard constant-true), appending one Leaf per outcome cube to `out`.
  // `cube` is the accumulated path (callers start it empty).
  void PartitionLeaves(const PathState& ps, std::vector<CondLiteral>& cube,
                       std::vector<Leaf>& out, int depth);

 private:
  const Cdfg& g_;
  BddManager& mgr_;
  GuardEngine& guards_;
  ScheduleStats& stats_;

  static constexpr int kMaxResolvePerState = 4;
};

}  // namespace ws

#endif  // WS_SCHED_FORK_H
