// Guard algebra: construction and interrogation of the BDD speculation
// guards that tag every operation instance, binding, and published value.
//
// A guard is a Boolean function over *condition-instance* variables — one
// BDD variable per (condition node, iteration) pair, minted lazily with the
// condition's profiled branch probability attached. The engine's other
// layers build on exactly four constructions:
//
//   CondLit       the literal for one condition instance (constant once the
//                 path has resolved it),
//   CtrlGuard     the control guard of an operation instance: conjunction of
//                 its loop's continue-conditions and its own control
//                 literals (the paper's execution condition),
//   ExitGuard     the condition that a loop exits at a given iteration,
//   BindingGuard  the validity guard of a scheduled execution (stored in the
//                 PathState, looked up here for bounds-checked access).
//
// InstanceCovered is the engine-wide correctness test (Lemma 1's "covered"):
// an instance needs no further executions iff a *single* binding's validity
// guard covers its control guard — a union of partial-guard executions does
// not qualify, because no downstream consumer could pick between them
// without a datapath mux, which is itself an instance that must reach single
// coverage.
#ifndef WS_SCHED_GUARDS_H
#define WS_SCHED_GUARDS_H

#include <map>
#include <unordered_map>
#include <vector>

#include "bdd/bdd.h"
#include "cdfg/cdfg.h"
#include "sched/engine_state.h"

namespace ws {

class GuardEngine {
 public:
  // Borrows the graph and the manager for the lifetime of the run.
  GuardEngine(const Cdfg& g, BddManager& mgr) : g_(g), mgr_(mgr) {}

  // The BDD variable for condition instance (cond, iter), minted on first
  // use with the node's profiled probability.
  int CondVar(NodeId cond, int iter);

  // Forgets every minted variable. Used when an arena is recycled; the
  // manager must be Reset() alongside (variable indices restart at 0).
  void Reset();

  // Bulk-adopts every variable of `src` (an engine over `src_mgr`) in
  // ascending variable order, so that this engine's variable v is the same
  // condition instance as src's variable v — the wave loop's identity
  // import discipline. Requires a fresh (or just-Reset) engine and manager.
  void MintFrom(const GuardEngine& src, const BddManager& src_mgr);

  // The literal for (cond, iter) as seen from `ps`: a constant when the path
  // has resolved the instance, the (possibly negated) variable otherwise.
  Bdd CondLit(const PathState& ps, NodeId cond, int iter, bool polarity);

  // The control guard of instance (node, iter) on `ps`.
  Bdd CtrlGuard(const PathState& ps, NodeId node, int iter);

  // The guard that loop `loop_id` exits exactly at `exit_iter`.
  Bdd ExitGuard(const PathState& ps, LoopId loop_id, int exit_iter);

  // The validity guard of bindings[key][version]; checks bounds.
  Bdd BindingGuard(const PathState& ps, const InstKey& key, int version) const;

  // True iff a single binding's validity guard covers `ctrl`.
  bool InstanceCovered(const PathState& ps, const InstKey& key, Bdd ctrl,
                       bool require_completed);

  // The (condition instance -> BDD variable) map. Mutated by CondVar; the
  // fork engine and closure detector read it to invert variable lookups.
  const std::map<InstKey, int>& cond_vars() const { return cond_vars_; }

  // The inverse map: BDD variable -> condition instance, dense by variable.
  // Covers every variable this engine minted (the scheduler mints all of a
  // manager's variables through here); the wave loop uses it to rebuild a
  // guard's variables inside another manager.
  const std::vector<InstKey>& var_keys() const { return var_keys_; }

  // Per-variable probability of the condition instance being true, indexed
  // by BDD variable. Grows as variables are minted; feed to
  // BddManager::Probability.
  const std::vector<double>& var_probs() const { return var_probs_; }

  // Most-probable assignment per variable (single-path mode's filter).
  const std::unordered_map<int, bool>& likely_assignment() const {
    return likely_assignment_;
  }

 private:
  const Cdfg& g_;
  BddManager& mgr_;
  std::map<InstKey, int> cond_vars_;
  std::vector<InstKey> var_keys_;
  std::vector<double> var_probs_;
  std::unordered_map<int, bool> likely_assignment_;  // single-path mode
};

}  // namespace ws

#endif  // WS_SCHED_GUARDS_H
