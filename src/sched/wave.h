// The parallel wave loop's expansion side: everything a frontier state needs
// to be scheduled, forked, and garbage-collected *without touching shared
// engine structures*.
//
// The scheduler splits each worklist iteration into two halves:
//
//   expand  (any worker thread)   FillState -> PartitionLeaves -> GC/IsDone,
//                                 entirely inside a per-branch BDD sub-arena;
//   commit  (the Schedule caller) guard migration into the main manager,
//                                 closure lookup, state numbering, transition
//                                 construction — in strict frontier order.
//
// An expansion is a pure function of the WaveItem built at commit time (its
// imported PathState plus the read-only WaveShared inputs): it mints
// condition variables in its own arena, runs the same greedy admission and
// fork logic as the sequential engine, and never reads another branch's
// data. That is the whole determinism argument — parallelism changes *when*
// expansions run, never *what* they compute, and the commit order is the
// sequential worklist order by construction. See DESIGN.md §9.
//
// Variable-order discipline (what makes arena results equal to main-manager
// results): ImportPathState adopts the main registry wholesale, so arena
// variable v *is* main variable v — stored guards migrate by structural
// copy (BddManager::Copy) with their relative variable order trivially
// preserved. New variables minted during expansion land after the imports
// in first-touch order, and BindArenaVars replays exactly that order into
// the main engine at commit. ROBDDs, rendered guard strings, and
// probability sums are therefore identical to the sequential engine's.
#ifndef WS_SCHED_WAVE_H
#define WS_SCHED_WAVE_H

#include <exception>
#include <memory>
#include <vector>

#include "bdd/bdd.h"
#include "cdfg/cdfg.h"
#include "hw/resources.h"
#include "mem/lsq.h"
#include "sched/engine_state.h"
#include "sched/guards.h"
#include "sched/policy.h"
#include "sched/scheduler.h"
#include "stg/stg.h"

namespace ws {

// A hard consumer of a value instance: `node` reads the value produced
// `delta` iterations earlier. Precomputed once per run (see
// ComputeHardUses in scheduler.cc), read by every expansion's GC.
struct HardUse {
  NodeId node;
  int delta;
};

// A per-branch BDD sub-arena: a private manager plus the guard engine that
// mints condition variables in it. Workers operate exclusively on their
// item's arena, so they never contend on the main unique/ITE tables.
struct BranchArena {
  BddManager mgr;
  GuardEngine guards;

  explicit BranchArena(const Cdfg& g) : guards(g, mgr) {}

  // Returns the arena to a fresh state, keeping the flat tables' capacity.
  // The scheduler pools arenas across frontier states; a recycled arena is
  // indistinguishable from a new one (indices, orders, counters all
  // restart), so pooling cannot perturb results.
  void Reset() {
    mgr.Reset();
    guards.Reset();
  }
};

// The read-only inputs every expansion shares. All pointers are borrowed
// from the scheduler for the duration of the run; nothing behind them is
// mutated while workers are live.
struct WaveShared {
  const Cdfg* g = nullptr;
  const FuLibrary* lib = nullptr;
  const Allocation* alloc = nullptr;
  const SchedulerOptions* opts = nullptr;
  const SelectionPolicyImpl* policy = nullptr;
  const std::vector<double>* lambda = nullptr;
  const std::vector<std::vector<HardUse>>* hard_uses = nullptr;
  const std::vector<int>* escape_delta = nullptr;
  // Relaxed memory-dependence model (mem_spec); null when the run keeps the
  // conservative token chain. When set, `g` is the relaxed graph the model's
  // comparator ids live in.
  const LsqModel* lsq = nullptr;
};

// One frontier entry: a fresh STG state with its private sub-arena, plus
// the slots its expansion fills. The commit loop builds the input half,
// hands the item to a worker, and consumes the result half strictly in
// frontier (FIFO) order once `ready` flips.
struct WaveItem {
  // --- Inputs (built at commit time) --------------------------------------
  StateId sid;
  std::unique_ptr<BranchArena> arena;
  PathState ps;        // guard handles owned by *arena
  int imported_vars = 0;  // main variable count at import (identity prefix)

  // --- Results (written by the expansion worker) --------------------------
  struct LeafResult {
    std::vector<CondLiteral> cube;
    PathState ps;  // arena handles; migrated to the main manager at commit
    bool done = false;
    std::vector<OutputBinding> outputs;  // valid when done
  };
  std::vector<ScheduledOp> ops;   // this state's schedule
  std::vector<LeafResult> leaves;
  ScheduleStats stats;            // expansion-local counters/timers
  std::exception_ptr error;       // set instead of results on failure

  // Completion flag, guarded by the scheduler's frontier mutex.
  bool ready = false;
};

// Expands one frontier state entirely inside its branch arena: greedy
// candidate admission, fork-tree partitioning, per-leaf GC and termination
// detection. Captures any exception (including cancellation/deadline, which
// each expansion observes independently through shared.opts) into
// item->error; never throws.
void ExpandWaveItem(const WaveShared& shared, WaveItem* item);

// Builds a frontier item's sub-arena state from a main-manager PathState:
// adopts the whole main variable registry (arena variable v == main
// variable v), then copies every stored guard structurally. The fresh base
// blocks it installs also mean the expansion starts from fully-compacted
// COW tables.
PathState ImportPathState(const PathState& main_ps, const BddManager& main_mgr,
                          const GuardEngine& main_guards, BranchArena* arena);

// Replays the arena's variable mints into the main guard engine and returns
// the dense arena -> main variable map for Migrate. The first
// `imported_vars` entries are the identity by the import discipline; only
// expansion-minted variables resolve through the main engine (fresh ones
// mint in expansion first-touch order — exactly when the sequential engine
// would have minted them).
std::vector<int> BindArenaVars(const BranchArena& arena, int imported_vars,
                               GuardEngine* main_guards);

// Rewrites every guard handle in `ps` (arena handles) into `main`. `fresh`
// spans one item's commit: the first leaf starts the migration memo epoch,
// later leaves of the same item reuse it (same source arena, same map —
// sibling leaves share most guards through the COW tables, so their
// migrations are memo hits).
void MigrateToMain(const BranchArena& arena, const std::vector<int>& to_main,
                   BddManager* main, PathState* ps, bool* fresh);

}  // namespace ws

#endif  // WS_SCHED_WAVE_H
