// Canonical fingerprints: STG closure detection over shift-canonical state
// signatures, and 128-bit fingerprints of whole scheduling requests.
//
// --- State closure (the paper's relabeling map M) --------------------------
//
// The scheduler folds a successor path state onto an existing STG state when
// the two are equal modulo a uniform per-loop iteration shift. The detector
// keys states on a shift-canonical structural fingerprint: TokenizeState
// serializes the PathState into a length-prefixed u64 token stream whose
// vector equality is exactly "same state modulo the shift", and the closure
// map keys a 128-bit hash of that stream, falling back to exact token
// comparison on hash hits (a true collision degrades to a comparison, never
// a wrong merge). Guards enter the stream as the node index of their
// shift-canonicalized BDD (BddManager::RenameDense), never as strings.
//
// A legacy human-readable signature (DebugSignature) is kept for
// WS_DEBUG_SIG dumps, deadlock diagnostics, and the WS_CHECK_SIG
// cross-validation of the fingerprint path (tests/signature_test.cc). Not on
// the hot path.
//
// --- Request fingerprints --------------------------------------------------
//
// The serving layer's result cache and the durable artifact store key work
// on a canonical 128-bit fingerprint of the whole request. Two requests with
// the same fingerprint must schedule identically; the token stream therefore
// enumerates exactly the inputs the scheduler reads — the CDFG's structure
// and branch-probability annotations, the functional-unit library and kind
// selection, the allocation counts, and every result-affecting
// SchedulerOptions field, including the selection policy. Deliberately
// excluded: SchedulerOptions::deadline and ::cancel — they bound a
// particular call, not its result. Display names all participate, because
// fingerprints also key the durable artifact store (io/artifact_store.h),
// whose values embed rendered text — two designs differing only in names
// must never replay each other's artifacts.
#ifndef WS_SCHED_CLOSURE_H
#define WS_SCHED_CLOSURE_H

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "base/hashing.h"
#include "bdd/bdd.h"
#include "cdfg/cdfg.h"
#include "sched/engine_state.h"
#include "sched/guards.h"
#include "sched/scheduler.h"

namespace ws {

// --- State closure ---------------------------------------------------------

class ClosureDetector {
 public:
  // References are borrowed for the run; `stats` receives closure_hits and
  // signature_collisions (and is read for the WS_DEBUG_SIG state counter).
  ClosureDetector(const Cdfg& g, BddManager& mgr, GuardEngine& guards,
                  ScheduleStats& stats);

  // A successful probe: the canonical state and the per-loop iteration
  // shift (the relabeling) from the probed state onto it.
  struct Hit {
    StateId sid;
    std::vector<std::pair<LoopId, int>> shift;
  };

  // Tokenizes `ps` and probes the closure map. A hit bumps
  // stats.closure_hits. On a miss the canonical tokens/bases/fingerprint are
  // retained; the caller mints a state id and must call Insert next.
  std::optional<Hit> Lookup(const PathState& ps);

  // Registers the state last probed by Lookup (which must have missed)
  // under `sid`. `ps` is only consulted for the WS_CHECK_SIG legacy map.
  void Insert(StateId sid, const PathState& ps);

  // Legacy human-readable signature; fills *bases_out with the per-loop
  // canonical bases.
  std::string DebugSignature(const PathState& ps, std::vector<int>* bases_out);

 private:
  void TokenizeState(const PathState& ps, std::vector<int>* bases);
  // Prepares the var shift map for `bases` (creating shifted condition
  // variables as needed); leaves the result in shift_var_map_ /
  // shift_identity_.
  void PrepareShift(const std::vector<int>& bases);
  // The canonical token of `guard` under the prepared shift.
  std::uint64_t GuardToken(Bdd guard);
  std::string CanonGuard(Bdd guard, const std::vector<int>& bases);

  const Cdfg& g_;
  BddManager& mgr_;
  GuardEngine& guards_;
  ScheduleStats& stats_;

  // Closure map: state fingerprint -> canonical entries. Buckets are vectors
  // so true 128-bit collisions degrade to an exact comparison, never to a
  // wrong merge. Each entry keeps the full token stream for that comparison
  // plus the loop bases the tokens were canonicalized at (needed to compute
  // the relabel shift on a hit).
  struct CanonEntry {
    std::vector<std::uint64_t> tokens;
    StateId sid;
    std::vector<int> bases;
  };
  std::unordered_map<Fp128, std::vector<CanonEntry>, Fp128Hash> canon_;
  // WS_CHECK_SIG cross-validation: legacy string signature -> StateId,
  // maintained only when the env var is set.
  std::unordered_map<std::string, StateId> canon_check_;
  const bool check_signatures_;

  // Lookup-to-Insert state: the last probe's canonical form.
  Fp128 last_fp_{};
  std::vector<int> last_bases_;

  // Scratch buffers reused across hot-path calls (cleared, never shrunk, so
  // steady-state scheduling does not allocate in these paths).
  std::vector<std::uint64_t> sig_tokens_;              // TokenizeState output
  std::vector<int> shift_var_map_;                     // var -> shifted var
  std::vector<std::pair<int, InstKey>> shift_wanted_;  // PrepareShift scratch
  bool shift_identity_ = true;                         // all bases zero
  bool shift_epoch_open_ = false;                      // RenameDense memo
  std::vector<std::pair<int, int>> pending_iters_;     // (loop, iter), sorted
  std::vector<std::uint64_t> pend_tokens_;             // pending-work section
  std::vector<bool> is_loop_cond_;                     // by node, built once
};

// --- Request fingerprints --------------------------------------------------

// Fingerprint of a fully-formed request (all pointers non-null; throws
// ws::Error otherwise). Deterministic across platforms and processes.
Fp128 FingerprintScheduleRequest(const ScheduleRequest& request);

// The building blocks, for callers that key on a superset of the request
// (the serving cache also mixes in stimulus counts and analysis flags).
void MixString(FpHasher& h, const std::string& s);
void MixCdfg(FpHasher& h, const Cdfg& g);
void MixLibrary(FpHasher& h, const FuLibrary& lib);
void MixAllocation(FpHasher& h, const Allocation& alloc, const FuLibrary& lib);
void MixOptions(FpHasher& h, const SchedulerOptions& options);

}  // namespace ws

#endif  // WS_SCHED_CLOSURE_H
