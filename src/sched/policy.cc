#include "sched/policy.h"

#include <cmath>
#include <string>

#include "bdd/bdd.h"
#include "sched/engine_state.h"

namespace ws {
namespace {

// Eq. 5: criticality = lambda(op) * P(guard). The expression must stay
// exactly this product in this order — the default policy is contractually
// bit-identical to the pre-modular engine.
class CriticalityPolicy final : public SelectionPolicyImpl {
 public:
  double Priority(const Candidate& c, const PolicyContext& ctx) const final {
    return (*ctx.lambda)[c.node.value()] *
           ctx.mgr->Probability(c.guard, *ctx.var_probs);
  }
};

class ProbabilityOnlyPolicy final : public SelectionPolicyImpl {
 public:
  double Priority(const Candidate& c, const PolicyContext& ctx) const final {
    return ctx.mgr->Probability(c.guard, *ctx.var_probs);
  }
};

class PathLengthOnlyPolicy final : public SelectionPolicyImpl {
 public:
  double Priority(const Candidate& c, const PolicyContext& ctx) const final {
    return (*ctx.lambda)[c.node.value()];
  }
};

// Constant priority: every candidate ties, so BetterCandidate resolves
// admission purely by (iteration, node) program order.
class FifoPolicy final : public SelectionPolicyImpl {
 public:
  double Priority(const Candidate&, const PolicyContext&) const final {
    return 0.0;
  }
};

}  // namespace

const char* SelectionPolicyName(SelectionPolicy policy) {
  switch (policy) {
    case SelectionPolicy::kCriticality: return "crit";
    case SelectionPolicy::kProbabilityOnly: return "prob";
    case SelectionPolicy::kPathLengthOnly: return "lambda";
    case SelectionPolicy::kFifo: return "fifo";
  }
  return "?";
}

Result<SelectionPolicy> ParseSelectionPolicy(std::string_view name) {
  if (name == "crit" || name == "criticality") {
    return SelectionPolicy::kCriticality;
  }
  if (name == "prob" || name == "probability") {
    return SelectionPolicy::kProbabilityOnly;
  }
  if (name == "lambda" || name == "path-length") {
    return SelectionPolicy::kPathLengthOnly;
  }
  if (name == "fifo") return SelectionPolicy::kFifo;
  return Status::MakeError(
      StatusCode::kInvalidArgument,
      "unknown selection policy \"" + std::string(name) +
          "\" (want crit, prob, lambda, or fifo)");
}

std::unique_ptr<SelectionPolicyImpl> MakeSelectionPolicy(
    SelectionPolicy policy) {
  switch (policy) {
    case SelectionPolicy::kCriticality:
      return std::make_unique<CriticalityPolicy>();
    case SelectionPolicy::kProbabilityOnly:
      return std::make_unique<ProbabilityOnlyPolicy>();
    case SelectionPolicy::kPathLengthOnly:
      return std::make_unique<PathLengthOnlyPolicy>();
    case SelectionPolicy::kFifo:
      return std::make_unique<FifoPolicy>();
  }
  return std::make_unique<CriticalityPolicy>();
}

bool BetterCandidate(const Candidate& c, const Candidate& best) {
  return c.priority > best.priority + 1e-12 ||
         (std::abs(c.priority - best.priority) <= 1e-12 &&
          (c.iter < best.iter ||
           (c.iter == best.iter && c.node < best.node)));
}

}  // namespace ws
