// Pluggable operation-selection policies (the paper's Step 3).
//
// The scheduler admits candidates greedily; which candidate goes first is the
// highest-leverage heuristic choice in the whole engine. The policy assigns
// every mode-filtered candidate a priority; the admission loop takes the
// highest priority, breaking ties deterministically by (iteration, node) —
// see BetterCandidate below.
//
//   kCriticality     Eq. 5: lambda(op) * P(guard). The default; bit-for-bit
//                    the pre-refactor engine's behavior.
//   kProbabilityOnly P(guard): favor near-certain work regardless of how
//                    long its dependent path is.
//   kPathLengthOnly  lambda(op): classic longest-path list scheduling,
//                    ignoring how speculative the work is.
//   kFifo            constant priority: every candidate ties, so admission
//                    falls through to the deterministic (iteration, node)
//                    order — a program-order list-scheduling baseline.
//
// The policy is a result-affecting input: it participates in request
// fingerprints (sched/closure.h), the wire protocol (serve/protocol.h), and
// stored artifacts (io/codec.h, version-gated).
#ifndef WS_SCHED_POLICY_H
#define WS_SCHED_POLICY_H

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "base/status.h"

namespace ws {

class BddManager;   // bdd/bdd.h
struct Candidate;   // sched/engine_state.h

enum class SelectionPolicy : std::uint8_t {
  kCriticality = 0,      // Eq. 5 (default)
  kProbabilityOnly = 1,  // P(guard)
  kPathLengthOnly = 2,   // lambda
  kFifo = 3,             // list-scheduling baseline
};

inline constexpr SelectionPolicy kMaxSelectionPolicy = SelectionPolicy::kFifo;

// Canonical short name: "crit", "prob", "lambda", "fifo".
const char* SelectionPolicyName(SelectionPolicy policy);

// Inverse of SelectionPolicyName (also accepts the long spellings
// "criticality", "probability", and "path-length"); kInvalidArgument on
// anything else.
Result<SelectionPolicy> ParseSelectionPolicy(std::string_view name);

// What a policy may consult when scoring a candidate. All pointees are
// borrowed for the scheduling run; the manager is non-const because
// probability evaluation memoizes in the BDD.
struct PolicyContext {
  const std::vector<double>* lambda = nullptr;     // per node value
  BddManager* mgr = nullptr;
  const std::vector<double>* var_probs = nullptr;  // per condition variable
};

// The selection-policy interface. Implementations must be deterministic pure
// functions of (candidate, context): the explore engine calls them from
// concurrent shared-nothing workers and the closure map assumes identical
// states schedule identically.
class SelectionPolicyImpl {
 public:
  virtual ~SelectionPolicyImpl() = default;

  // Priority of a mode-filtered candidate; higher is admitted first.
  virtual double Priority(const Candidate& c,
                          const PolicyContext& ctx) const = 0;
};

// Factory for the built-in policies above.
std::unique_ptr<SelectionPolicyImpl> MakeSelectionPolicy(
    SelectionPolicy policy);

// The admission order: true iff `c` should be admitted before `best`.
// Priorities within 1e-12 of each other tie (priorities are products of
// profiled probabilities, so exact float equality would be fragile), and
// ties resolve by (iteration, node) — total, deterministic, and independent
// of candidate-generation order, which is what keeps schedules reproducible
// across runs and explore worker counts.
bool BetterCandidate(const Candidate& c, const Candidate& best);

}  // namespace ws

#endif  // WS_SCHED_POLICY_H
