#include "sched/candidates.h"

#include <algorithm>
#include <utility>

#include "base/phase_timer.h"
#include "base/status.h"

namespace ws {

std::vector<ResolvedVersion> CandidateGenerator::Versions(
    const PathState& ps, NodeId m, LoopId consumer_loop, int consumer_iter,
    int depth) {
  WS_CHECK_MSG(depth < kMaxRecursionDepth, "select/phi recursion too deep");
  const Node& n = g_.node(m);
  if (n.loop == consumer_loop) {
    return VersionsAt(ps, m, consumer_iter, depth + 1);
  }
  if (!n.loop.valid()) {
    return VersionsAt(ps, m, 0, depth + 1);
  }
  // Cross-loop read: the value of m at the producer loop's exit.
  const LoopState& ls = ps.loops[n.loop.value()];
  if (ls.exited) {
    return VersionsAt(ps, m, ls.exit_iter, depth + 1);
  }
  // Speculate on the exit iteration within the lookahead window.
  std::vector<ResolvedVersion> out;
  for (int j = ls.next_unresolved;
       j <= ls.next_unresolved + opts_.lookahead; ++j) {
    const Bdd exit_guard = guards_.ExitGuard(ps, n.loop, j);
    if (mgr_.IsFalse(exit_guard)) continue;
    for (const ResolvedVersion& v : VersionsAt(ps, m, j, depth + 1)) {
      const Bdd guard = mgr_.And(v.guard, exit_guard);
      if (mgr_.IsFalse(guard)) continue;
      out.push_back({v.producer, guard, v.ready_offset});
    }
  }
  return out;
}

std::vector<ResolvedVersion> CandidateGenerator::VersionsAt(
    const PathState& ps, NodeId m, int iter, int depth) {
  WS_CHECK_MSG(depth < kMaxRecursionDepth, "select/phi recursion too deep");
  const Node& n = g_.node(m);
  std::vector<ResolvedVersion> out;
  switch (n.kind) {
    case OpKind::kConst:
    case OpKind::kInput:
      out.push_back({InstRef{m, 0, 0}, mgr_.True(), 0.0});
      return out;
    case OpKind::kSelect: {
      // A select materialized as a register transfer publishes a version
      // like any other operation.
      if (const auto* avail = ps.available.Find(MakeInstKey(m, iter))) {
        for (const VersionRec& v : *avail) {
          const Bdd guard =
              guards_.BindingGuard(ps, MakeInstKey(m, iter), v.version);
          if (mgr_.IsFalse(guard)) continue;
          out.push_back({InstRef{m, iter, v.version}, guard,
                         v.ready_offset});
        }
        return out;
      }
      const NodeId sel = n.inputs[0];
      const Node& sel_node = g_.node(sel);
      const int sel_iter =
          sel_node.loop == n.loop ? iter : 0;  // same-scope or top-level
      // Resolved but not yet materialized: forward through the chosen side
      // only (the mux steering is known).
      if (const bool* rv = ps.resolved.Find(MakeInstKey(sel, sel_iter))) {
        return Versions(ps, n.inputs[*rv ? 1 : 2], n.loop, iter, depth + 1);
      }
      // Speculation through an unresolved select (Observation 1) is only
      // useful when the steering condition is control-relevant: the
      // controller will eventually resolve it and validate/invalidate the
      // speculative work. A datapath-only steering condition never
      // resolves, so guards minted on it could never be discharged —
      // consumers instead wait for the zero-delay 3-input mux.
      if (!g_.is_control_condition(sel)) return out;
      // Observation 1: the path through the select contributes the literal
      // that this path is selected.
      const Bdd lit_true = guards_.CondLit(ps, sel, sel_iter, true);
      const Bdd lit_false = guards_.CondLit(ps, sel, sel_iter, false);
      if (!mgr_.IsFalse(lit_true)) {
        for (const ResolvedVersion& v :
             Versions(ps, n.inputs[1], n.loop, iter, depth + 1)) {
          const Bdd guard = mgr_.And(v.guard, lit_true);
          if (!mgr_.IsFalse(guard)) {
            out.push_back({v.producer, guard, v.ready_offset});
          }
        }
      }
      if (!mgr_.IsFalse(lit_false)) {
        for (const ResolvedVersion& v :
             Versions(ps, n.inputs[2], n.loop, iter, depth + 1)) {
          const Bdd guard = mgr_.And(v.guard, lit_false);
          if (!mgr_.IsFalse(guard)) {
            out.push_back({v.producer, guard, v.ready_offset});
          }
        }
      }
      return out;
    }
    case OpKind::kLoopPhi: {
      if (iter == 0) {
        return Versions(ps, n.inputs[0], n.loop, 0, depth + 1);
      }
      return Versions(ps, n.inputs[1], n.loop, iter - 1, depth + 1);
    }
    case OpKind::kOutput:
      return Versions(ps, n.inputs[0], n.loop, iter, depth + 1);
    default: {
      // A scheduled kind: completed bindings of (m, iter).
      const auto* avail = ps.available.Find(MakeInstKey(m, iter));
      if (avail == nullptr) return out;
      for (const VersionRec& v : *avail) {
        const Bdd guard =
            guards_.BindingGuard(ps, MakeInstKey(m, iter), v.version);
        if (mgr_.IsFalse(guard)) continue;
        out.push_back({InstRef{m, iter, v.version}, guard, v.ready_offset});
      }
      return out;
    }
  }
}

bool CandidateGenerator::WidenDuplicate(PathState& ps, const InstKey& key,
                                        const std::vector<InstRef>& operands,
                                        Bdd guard) {
  const std::vector<Binding>* blist = ps.bindings.Find(key);
  if (blist == nullptr) return false;
  for (std::size_t i = 0; i < blist->size(); ++i) {
    if ((*blist)[i].operands != operands) continue;
    // Copy-on-write: re-fetch mutably only on a hit (Find's pointer is
    // const and may live in the shared base block).
    Binding& b = ps.bindings.Mutable(key)[i];
    b.guard = mgr_.Or(b.guard, guard);
    return true;
  }
  return false;
}

void CandidateGenerator::GenerateSelectCandidates(
    PathState& ps, const Node& n, int iter, Bdd ctrl,
    std::vector<Candidate>* cands) {
  const NodeId s = n.inputs[0];
  const Node& s_node = g_.node(s);
  const int sel_iter = s_node.loop == n.loop ? iter : 0;
  const Bdd lit_t = guards_.CondLit(ps, s, sel_iter, true);
  const Bdd lit_f = guards_.CondLit(ps, s, sel_iter, false);
  const auto lvs = Versions(ps, n.inputs[1], n.loop, iter);
  const auto rvs = Versions(ps, n.inputs[2], n.loop, iter);

  auto emit = [&](std::vector<InstRef> operands, Bdd guard, double offset) {
    if (mgr_.IsFalse(guard)) return;
    if (WidenDuplicate(ps, MakeInstKey(n.id, iter), operands, guard)) return;
    Candidate c;
    c.node = n.id;
    c.iter = iter;
    c.operands = std::move(operands);
    c.guard = guard;
    c.fu_type = lib_.TypeFor(OpKind::kSelect);
    const FuType& fu = lib_.type(c.fu_type);
    c.latency = fu.latency;
    c.delay = fu.delay_ns;
    c.start_offset = offset;
    cands->push_back(std::move(c));
  };

  // Guarded copies of one side: correct when the steering points that way.
  // Only offered for control-relevant steering (the guard can then be
  // discharged by a later resolution); datapath-only steering must go
  // through the full mux below.
  if (g_.is_control_condition(s) || mgr_.IsTrue(lit_t) ||
      mgr_.IsTrue(lit_f)) {
    for (const auto& lv : lvs) {
      emit({lv.producer}, mgr_.AndAll({ctrl, lit_t, lv.guard}),
           lv.ready_offset);
    }
    for (const auto& rv : rvs) {
      emit({rv.producer}, mgr_.AndAll({ctrl, lit_f, rv.guard}),
           rv.ready_offset);
    }
  }

  // Full 3-input mux: needs the computed steering value; correct whichever
  // way it points (validity is ITE-shaped, so a mux of two valid versions is
  // unconditionally valid — datapath resolution without a controller fork).
  // Control-steered selects never need it: the controller resolves the
  // condition at the same cycle boundary the mux would, and the guarded
  // copies above then validate.
  if (!g_.is_control_condition(s) && !mgr_.IsTrue(lit_t) &&
      !mgr_.IsFalse(lit_t)) {
    const auto svs = Versions(ps, s, n.loop, iter);
    for (const auto& sv : svs) {
      for (const auto& lv : lvs) {
        for (const auto& rv : rvs) {
          const Bdd guard = mgr_.And(
              ctrl, mgr_.And(sv.guard,
                             mgr_.Or(mgr_.And(lit_t, lv.guard),
                                     mgr_.And(lit_f, rv.guard))));
          const double offset = std::max(
              {sv.ready_offset, lv.ready_offset, rv.ready_offset});
          emit({sv.producer, lv.producer, rv.producer}, guard, offset);
        }
      }
    }
  }
}

int CandidateGenerator::OutstandingDisambigs(const PathState& ps,
                                             const Node& n, int iter) const {
  // Every not-yet-resolved disambiguation instance of this array between the
  // speculation base and the access's own iteration occupies an LSQ entry.
  // Instances below the base are resolved (their loads are committed), so
  // the window slides forward as the controller retires comparisons.
  const int lo = n.loop.valid() ? spec_base_[n.loop.value()] : 0;
  int count = 0;
  for (NodeId c : lsq_->Comparators(n.array)) {
    for (int j = lo; j <= iter; ++j) {
      if (!ps.resolved.contains(MakeInstKey(c, j))) count++;
    }
  }
  return count;
}

bool CandidateGenerator::AppendLsqDeps(
    PathState& ps, const Node& n, int iter,
    std::vector<std::vector<ResolvedVersion>>* operand_versions,
    Bdd* issue_guard) {
  for (const MemDep& d : lsq_->DepsFor(n.id)) {
    const int p_iter = iter - d.delta;
    if (p_iter < 0) continue;  // before the first iteration: vacuous
    if (d.cmp.valid()) {
      const bool* rv = ps.resolved.Find(MakeInstKey(d.cmp, iter));
      if (rv != nullptr && *rv) continue;  // proven disjoint: edge dissolves
      if (rv == nullptr) {
        std::vector<ResolvedVersion> tokens =
            VersionsAt(ps, d.pred, p_iter, 0);
        if (!tokens.empty()) {
          // The store already completed: take the free conservative edge
          // rather than spending an LSQ entry on a pointless bypass.
          operand_versions->push_back(std::move(tokens));
          continue;
        }
        // Bypass the unresolved store, speculating on non-aliasing — if the
        // LSQ window has room for one more unresolved disambiguation.
        if (OutstandingDisambigs(ps, n, iter) > opts_.lsq_depth) return false;
        *issue_guard =
            mgr_.And(*issue_guard, guards_.CondLit(ps, d.cmp, iter, true));
        if (mgr_.IsFalse(*issue_guard)) return false;
        continue;
      }
      // Proven alias: the load must observe the store — fall through to the
      // hard edge.
    }
    std::vector<ResolvedVersion> tokens = VersionsAt(ps, d.pred, p_iter, 0);
    if (tokens.empty()) return false;  // predecessor access not done yet
    operand_versions->push_back(std::move(tokens));
  }
  return true;
}

void CandidateGenerator::GenerateCandidates(PathState& ps,
                                            std::vector<Candidate>* out) {
  const PhaseTimer timer(&stats_.phase.successor_ns);
  // Speculation is throttled relative to the oldest pending committed work:
  // without this, a loop whose condition chain is faster than its slowest
  // data recurrence would let the resolution frontier race arbitrarily far
  // ahead of the lagging computation, and the backlog of pending instances
  // would grow without bound (preventing STG closure). The window advances
  // only as the backlog drains — which is also what bounded control/datapath
  // buffering in the synthesized hardware requires.
  std::vector<int>& spec_base = spec_base_;
  spec_base.assign(static_cast<std::size_t>(g_.num_loops()), 0);
  for (const Loop& loop : g_.loops()) {
    const LoopState& ls = ps.loops[loop.id.value()];
    int oldest = ls.exited ? ls.exit_iter : ls.next_unresolved;
    if (!ls.exited) {
      for (NodeId b : loop.body) {
        const Node& bn = g_.node(b);
        if (!IsScheduledKind(bn.kind)) continue;
        for (int iter = 0; iter < oldest; ++iter) {
          const Bdd ctrl = guards_.CtrlGuard(ps, b, iter);
          if (mgr_.IsFalse(ctrl)) continue;
          if (!guards_.InstanceCovered(ps, MakeInstKey(b, iter), ctrl,
                                       /*require_completed=*/false)) {
            oldest = iter;
            break;
          }
        }
      }
    }
    spec_base[loop.id.value()] = oldest;
  }

  std::vector<Candidate>& cands = cand_scratch_;
  cands.clear();
  for (const Node& n : g_.nodes()) {
    if (!IsScheduledKind(n.kind)) continue;
    int hi = 0;
    if (n.loop.valid()) {
      const LoopState& ls = ps.loops[n.loop.value()];
      hi = ls.exited ? ls.exit_iter
                     : spec_base[n.loop.value()] + opts_.lookahead;
    }
    for (int iter = 0; iter <= hi; ++iter) {
      const Bdd ctrl = guards_.CtrlGuard(ps, n.id, iter);
      if (mgr_.IsFalse(ctrl)) continue;
      const InstKey key = MakeInstKey(n.id, iter);

      // Coverage: skip once a single existing binding's guard covers the
      // control guard (one execution delivers a correct value on every live
      // branch).
      if (guards_.InstanceCovered(ps, key, ctrl,
                                  /*require_completed=*/false)) {
        continue;
      }

      // Operand versions.
      std::vector<std::vector<ResolvedVersion>> operand_versions;
      bool feasible = true;
      if (n.kind == OpKind::kSelect) {
        // Selects are datapath muxes, not control: they materialize either
        // as a full 3-input mux (steer, both sides — validity is the
        // ITE-shaped guard, so a mux over two valid versions is itself
        // unconditionally valid and never forks the controller), or as a
        // guarded copy of one side (when only one side has been computed,
        // or the steering condition already resolved).
        GenerateSelectCandidates(ps, n, iter, ctrl, &cands);
        continue;
      } else {
        for (NodeId in : n.inputs) {
          auto vs = Versions(ps, in, n.loop, iter);
          if (vs.empty()) {
            feasible = false;
            break;
          }
          operand_versions.push_back(std::move(vs));
        }
      }
      if (!feasible) continue;

      // Memory ordering: the LSQ's relaxed dependence edges when the array
      // is modeled (loads may bypass unresolved stores behind a
      // disambiguation literal folded into `issue_guard`), the conservative
      // program-order token chain otherwise.
      Bdd issue_guard = ctrl;
      if (n.kind == OpKind::kMemRead || n.kind == OpKind::kMemWrite) {
        if (lsq_ != nullptr && lsq_->Models(n.array)) {
          if (!AppendLsqDeps(ps, n, iter, &operand_versions, &issue_guard)) {
            continue;
          }
        } else {
          const auto& accesses = g_.array_accesses(n.array);
          auto pos = std::find(accesses.begin(), accesses.end(), n.id);
          WS_CHECK(pos != accesses.end());
          NodeId prev;
          int prev_iter = iter;
          if (pos != accesses.begin()) {
            prev = *(pos - 1);
          } else if (n.loop.valid() && iter > 0) {
            prev = accesses.back();
            prev_iter = iter - 1;
          }
          if (prev.valid()) {
            std::vector<ResolvedVersion> tokens =
                VersionsAt(ps, prev, prev_iter, 0);
            if (tokens.empty()) continue;  // predecessor access not done yet
            operand_versions.push_back(std::move(tokens));
          }
        }
      }

      // Cartesian product of operand choices.
      std::vector<std::size_t> idx(operand_versions.size(), 0);
      for (;;) {
        Bdd guard = issue_guard;
        double start = 0.0;
        std::vector<InstRef> operands;
        operands.reserve(operand_versions.size());
        bool dead = false;
        for (std::size_t k = 0; k < operand_versions.size(); ++k) {
          const ResolvedVersion& v = operand_versions[k][idx[k]];
          guard = mgr_.And(guard, v.guard);
          if (mgr_.IsFalse(guard)) {
            dead = true;
            break;
          }
          start = std::max(start, v.ready_offset);
          operands.push_back(v.producer);
        }
        if (!dead) {
          // Deduplicate against existing bindings with identical operands:
          // the physical result is the same, so widen its validity guard
          // instead of re-executing.
          if (!WidenDuplicate(ps, key, operands, guard)) {
            Candidate c;
            c.node = n.id;
            c.iter = iter;
            c.operands = std::move(operands);
            c.guard = guard;
            c.fu_type = lib_.TypeFor(n.kind);
            const FuType& fu = lib_.type(c.fu_type);
            c.latency = fu.latency;
            c.delay = fu.delay_ns;
            c.start_offset = start;
            cands.push_back(std::move(c));
          }
        }
        // Advance the product.
        std::size_t k = 0;
        for (; k < idx.size(); ++k) {
          if (++idx[k] < operand_versions[k].size()) break;
          idx[k] = 0;
        }
        if (k == idx.size()) break;
        if (idx.empty()) break;
      }
    }
  }

  // Mode filters, the speculative-store prohibition, and policy scoring.
  // Scoring is attributed to select_ns (nested inside successor_ns: the
  // policy runs where the survivors materialize).
  const PhaseTimer select_timer(&stats_.phase.select_ns);
  const PolicyContext policy_ctx{&lambda_, &mgr_, &guards_.var_probs()};
  std::vector<Candidate>& filtered = *out;
  filtered.clear();
  filtered.reserve(cands.size());
  for (Candidate& c : cands) {
    const OpKind kind = g_.node(c.node).kind;
    if (kind == OpKind::kMemWrite && !mgr_.IsTrue(c.guard)) {
      continue;  // stores are never speculative (irreversible side effect)
    }
    switch (opts_.mode) {
      case SpeculationMode::kWavesched:
        if (!mgr_.IsTrue(c.guard)) continue;
        break;
      case SpeculationMode::kSinglePath:
        if (!mgr_.Eval(c.guard, guards_.likely_assignment())) continue;
        break;
      case SpeculationMode::kWaveschedSpec:
        break;
    }
    c.priority = policy_.Priority(c, policy_ctx);
    filtered.push_back(std::move(c));
  }
  stats_.candidates_generated += static_cast<std::int64_t>(filtered.size());
}

}  // namespace ws
