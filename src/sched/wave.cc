#include "sched/wave.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "base/phase_timer.h"
#include "base/status.h"
#include "sched/candidates.h"
#include "sched/closure.h"
#include "sched/fork.h"

namespace ws {
namespace {

// One expansion's working set: the engine layers instantiated over the
// item's private sub-arena. Construction is cheap relative to an expansion
// (the layers are reference bundles plus small scratch vectors).
class WaveExpander {
 public:
  WaveExpander(const WaveShared& shared, BranchArena& arena,
               ScheduleStats& stats)
      : g_(*shared.g),
        lib_(*shared.lib),
        alloc_(*shared.alloc),
        opts_(*shared.opts),
        hard_uses_(*shared.hard_uses),
        escape_delta_(*shared.escape_delta),
        lsq_(shared.lsq),
        mgr_(arena.mgr),
        guards_(arena.guards),
        stats_(stats),
        candidates_(g_, lib_, opts_, mgr_, guards_, *shared.policy,
                    *shared.lambda, stats_, shared.lsq),
        fork_(g_, mgr_, guards_, stats_) {}

  void Expand(WaveItem* item);

 private:
  void CheckCancellation() const {
    if (opts_.cancel != nullptr &&
        opts_.cancel->load(std::memory_order_relaxed)) {
      throw CancelledError("schedule cancelled by caller");
    }
    if (opts_.deadline.has_value() &&
        std::chrono::steady_clock::now() >= *opts_.deadline) {
      throw DeadlineExceededError("schedule deadline exceeded");
    }
  }

  void FillState(PathState& ps, std::vector<ScheduledOp>* ops);
  void GarbageCollect(PathState& ps);
  bool IsDone(const PathState& ps, std::vector<OutputBinding>* outputs);

  const Cdfg& g_;
  const FuLibrary& lib_;
  const Allocation& alloc_;
  const SchedulerOptions& opts_;
  const std::vector<std::vector<HardUse>>& hard_uses_;
  const std::vector<int>& escape_delta_;
  const LsqModel* lsq_;

  BddManager& mgr_;
  GuardEngine& guards_;
  ScheduleStats& stats_;
  CandidateGenerator candidates_;
  ForkEngine fork_;
};

void WaveExpander::FillState(PathState& ps, std::vector<ScheduledOp>* ops) {
  // Resource occupancy for this cycle.
  std::vector<int> initiations(static_cast<std::size_t>(lib_.num_types()), 0);
  std::vector<int> active(static_cast<std::size_t>(lib_.num_types()), 0);
  // Per-array port occupancy: one access per cycle per array (MemArray's
  // contract). The conservative token chain enforces this implicitly; the
  // LSQ's relaxed edges need the explicit cap.
  std::vector<int> mem_ports;
  if (lsq_ != nullptr) {
    mem_ports.assign(g_.arrays().size(), 0);
  }
  auto port_array = [&](NodeId node) {
    if (lsq_ == nullptr) return ArrayId::invalid();
    const Node& pn = g_.node(node);
    if (pn.kind != OpKind::kMemRead && pn.kind != OpKind::kMemWrite) {
      return ArrayId::invalid();
    }
    return lsq_->Models(pn.array) ? pn.array : ArrayId::invalid();
  };

  // Place continuations of in-flight multi-cycle operations.
  std::vector<InFlight> still_flying;
  std::vector<std::pair<InstKey, int>> completions;  // (key, version)
  for (InFlight& f : ps.inflight) {
    ScheduledOp op;
    op.inst = f.inst;
    op.guard = *ps.bindings.at(MakeInstKey(f.inst))
                    [static_cast<std::size_t>(f.inst.version)]
                        .guard_at_schedule;
    op.fu_type = f.fu_type;
    op.stage = f.latency - f.remaining;
    ops->push_back(op);
    if (!lib_.type(f.fu_type).pipelined) {
      active[static_cast<std::size_t>(f.fu_type)]++;
    }
    if (--f.remaining == 0) {
      completions.emplace_back(MakeInstKey(f.inst), f.inst.version);
    } else {
      still_flying.push_back(f);
    }
  }
  ps.inflight = std::move(still_flying);

  // Greedy admission in policy-priority order (Eq. 5 criticality under the
  // default policy), regenerating candidates after each admission so newly
  // chainable consumers are considered. The candidate vector lives outside
  // the loop so its capacity is reused.
  std::vector<Candidate> cands;
  for (;;) {
    if (static_cast<int>(ops->size()) >= opts_.max_ops_per_state) break;
    CheckCancellation();
    candidates_.GenerateCandidates(ps, &cands);

    // Admission filters: resources and clock period. The surviving argmax
    // (with its deterministic tie-break) is the policy's Step 3 decision,
    // attributed to select_ns.
    const Candidate* best = nullptr;
    {
      const PhaseTimer select_timer(&stats_.phase.select_ns);
      for (const Candidate& c : cands) {
        const int t = c.fu_type;
        const int count = alloc_.Count(t);
        if (count != Allocation::kUnlimited) {
          if (initiations[static_cast<std::size_t>(t)] >= count) continue;
          if (!lib_.type(t).pipelined &&
              active[static_cast<std::size_t>(t)] +
                      initiations[static_cast<std::size_t>(t)] >=
                  count) {
            continue;
          }
        }
        if (c.start_offset > 0.0) {
          if (!opts_.clock.allow_chaining) continue;
          if (c.latency > 1) continue;  // multi-cycle starts at a boundary
        }
        if (!opts_.clock.Fits(c.start_offset, c.delay)) continue;
        if (const ArrayId arr = port_array(c.node);
            arr.valid() && mem_ports[arr.value()] >= 1) {
          continue;  // the array's single port is taken this cycle
        }
        if (best == nullptr || BetterCandidate(c, *best)) {
          best = &c;
        }
      }
    }
    if (best == nullptr) break;

    // Admit.
    const InstKey key = MakeInstKey(best->node, best->iter);
    auto& blist = ps.bindings.Mutable(key);
    const int version = static_cast<int>(blist.size());
    Binding b;
    b.operands = best->operands;
    b.guard = best->guard;
    b.guard_at_schedule =
        std::make_shared<const std::string>(mgr_.ToString(best->guard));
    blist.push_back(std::move(b));

    initiations[static_cast<std::size_t>(best->fu_type)]++;
    if (const ArrayId arr = port_array(best->node); arr.valid()) {
      mem_ports[arr.value()]++;
    }

    ScheduledOp op;
    op.inst = InstRef{best->node, best->iter, version};
    op.operands = best->operands;
    op.guard = *blist.back().guard_at_schedule;
    op.fu_type = best->fu_type;
    op.stage = 0;
    op.start_offset_ns = best->start_offset;
    ops->push_back(op);
    stats_.total_ops++;
    if (!mgr_.IsTrue(best->guard)) stats_.speculative_ops++;

    if (best->latency == 1) {
      // Completes this cycle: publish immediately so later admissions in
      // this same state may chain off it.
      blist.back().completed = true;
      ps.available.Mutable(key).push_back(
          {version, best->start_offset + best->delay});
      if (g_.is_control_condition(best->node)) {
        ps.latched.Mutable(key).push_back({version});
      }
    } else {
      InFlight f;
      f.inst = op.inst;
      f.guard = best->guard;
      f.remaining = best->latency - 1;
      f.latency = best->latency;
      f.fu_type = best->fu_type;
      ps.inflight.push_back(f);
    }
  }

  // Multi-cycle completions land at the end of this cycle.
  for (const auto& [key, version] : completions) {
    auto& blist = ps.bindings.Mutable(key);
    blist[static_cast<std::size_t>(version)].completed = true;
    ps.available.Mutable(key).push_back({version, 0.0});
    if (g_.is_control_condition(NodeId(key.first))) {
      ps.latched.Mutable(key).push_back({version});
    }
  }

  // Reset chaining offsets: results are registered at the cycle boundary.
  // Two-phase over the COW table — copy up only the lists with a nonzero
  // offset (typically just the versions published this cycle).
  std::vector<InstKey> to_reset;
  for (const auto& [key, versions] : ps.available) {
    for (const VersionRec& v : versions) {
      if (v.ready_offset != 0.0) {
        to_reset.push_back(key);
        break;
      }
    }
  }
  for (const InstKey& key : to_reset) {
    for (VersionRec& v : ps.available.Mutable(key)) v.ready_offset = 0.0;
  }
}

void WaveExpander::GarbageCollect(PathState& ps) {
  // Drop versions of committed iterations whose value can no longer be
  // consumed: every transitive hard consumer instance is either
  // control-pruned or already covered by a binding, no exit read can still
  // observe it, and (for condition values) the resolution has happened.
  // Exact garbage collection is what lets steady-state signatures converge,
  // closing the STG via the paper's relabeling map M.
  std::vector<InstKey> doomed;
  for (const auto& [key, versions] : ps.available) {
    const NodeId node(key.first);
    const int iter = key.second;
    const Node& n = g_.node(node);
    bool keep = true;
    do {
      if (!n.loop.valid()) break;  // top-level values: keep (single iter)
      const LoopState& ls = ps.loops[n.loop.value()];
      const int r = ls.base();
      if (iter >= r) break;  // live frontier / exit values
      if (g_.is_control_condition(node) && !ps.resolved.contains(key)) break;
      const int esc = escape_delta_[node.value()];
      // Exit read still possible (or, once exited, this value is what the
      // exit actually observes).
      if (esc >= 0 && iter + esc >= r) break;
      bool needed = false;
      for (const HardUse& use : hard_uses_[node.value()]) {
        const int citer = iter + use.delta;
        const Bdd ctrl = guards_.CtrlGuard(ps, use.node, citer);
        if (mgr_.IsFalse(ctrl)) continue;
        if (!guards_.InstanceCovered(ps, MakeInstKey(use.node, citer), ctrl,
                                     /*require_completed=*/false)) {
          needed = true;
          break;
        }
      }
      keep = needed;
    } while (false);
    if (!keep) doomed.push_back(key);
  }
  for (const InstKey& key : doomed) ps.available.Erase(key);
}

bool WaveExpander::IsDone(const PathState& ps,
                          std::vector<OutputBinding>* outputs) {
  for (const Loop& loop : g_.loops()) {
    if (!ps.loops[loop.id.value()].exited) return false;
  }
  if (!ps.inflight.empty()) return false;

  for (const Node& n : g_.nodes()) {
    if (!IsScheduledKind(n.kind)) continue;
    int hi = 0;
    if (n.loop.valid()) {
      const LoopState& ls = ps.loops[n.loop.value()];
      hi = g_.InLoopHeader(n.id) ? ls.exit_iter : ls.exit_iter - 1;
    }
    for (int iter = 0; iter <= hi; ++iter) {
      const Bdd ctrl = guards_.CtrlGuard(ps, n.id, iter);
      if (mgr_.IsFalse(ctrl)) continue;
      if (!mgr_.IsTrue(ctrl)) return false;  // unresolved control remains
      // Satisfied when a single completed execution's guard covers the
      // (here, constant-true) control guard.
      if (!guards_.InstanceCovered(ps, MakeInstKey(n.id, iter), ctrl,
                                   /*require_completed=*/true)) {
        return false;
      }
    }
  }

  outputs->clear();
  for (NodeId out : g_.outputs()) {
    const Node& n = g_.node(out);
    std::vector<ResolvedVersion> vs =
        candidates_.Versions(ps, n.inputs[0], LoopId::invalid(), 0);
    const ResolvedVersion* chosen = nullptr;
    for (const ResolvedVersion& v : vs) {
      if (mgr_.IsTrue(v.guard)) {
        chosen = &v;
        break;
      }
    }
    if (chosen == nullptr) return false;
    outputs->push_back(OutputBinding{out, chosen->producer});
  }
  return true;
}

void WaveExpander::Expand(WaveItem* item) {
  // Flatten the COW overlays accumulated by the parent's fork: siblings
  // were copied when this item was created, so compaction is free of
  // sharing loss, and this branch's own fork tree starts from clean bases.
  item->ps.Compact();

  FillState(item->ps, &item->ops);
  if (item->ops.empty() && item->ps.inflight.empty()) {
    std::vector<OutputBinding> outs;
    if (!IsDone(item->ps, &outs)) {
      // Deadlock diagnostics: an arena-local detector renders the state
      // (DebugSignature never feeds results back into scheduling).
      ClosureDetector diag(g_, mgr_, guards_, stats_);
      std::vector<int> bases;
      WS_THROW("deadlock: state "
               << item->sid.value()
               << " schedules nothing but work remains (check "
                  "allocation); state: "
               << diag.DebugSignature(item->ps, &bases));
    }
  }

  std::vector<CondLiteral> cube;
  std::vector<ForkEngine::Leaf> leaves;
  {
    const PhaseTimer timer(&stats_.phase.cofactor_ns);
    fork_.PartitionLeaves(item->ps, cube, leaves, 0);
  }

  item->leaves.reserve(leaves.size());
  for (ForkEngine::Leaf& leaf : leaves) {
    {
      const PhaseTimer timer(&stats_.phase.gc_ns);
      GarbageCollect(leaf.ps);
    }
    WaveItem::LeafResult result;
    result.cube = std::move(leaf.cube);
    result.done = IsDone(leaf.ps, &result.outputs);
    result.ps = std::move(leaf.ps);
    item->leaves.push_back(std::move(result));
  }
}

}  // namespace

void ExpandWaveItem(const WaveShared& shared, WaveItem* item) {
  try {
    WaveExpander expander(shared, *item->arena, item->stats);
    expander.Expand(item);
    // Arena totals, accumulated into the run's stats at commit.
    item->stats.bdd_ops = item->arena->mgr.num_ops();
    item->stats.bdd_nodes = item->arena->mgr.num_nodes();
  } catch (...) {
    item->error = std::current_exception();
  }
}

PathState ImportPathState(const PathState& main_ps, const BddManager& main_mgr,
                          const GuardEngine& main_guards, BranchArena* arena) {
  // Identity import: adopt the entire main registry in order, so arena
  // variable v is main variable v. Relative variable order is then
  // trivially preserved for every stored guard (the wave.h discipline), and
  // migration degenerates to a structural copy — no support computation, no
  // ITE rebuild.
  arena->guards.MintFrom(main_guards, main_mgr);

  PathState out = main_ps;
  bool fresh = true;
  auto copy = [&](Bdd f) {
    const Bdd r = arena->mgr.Copy(main_mgr, f, fresh);
    fresh = false;
    return r;
  };
  // Bindings and in-flight records are the only PathState members holding
  // Bdds. Every binding list carries guards, so the whole table is rebuilt
  // as a fresh base block (ascending hinted inserts) rather than churned
  // through the COW overlay.
  CowMap<InstKey, std::vector<Binding>>::base_map bindings;
  for (const auto& [key, blist] : main_ps.bindings) {
    std::vector<Binding>& rebuilt =
        bindings.emplace_hint(bindings.end(), key, blist)->second;
    for (Binding& b : rebuilt) b.guard = copy(b.guard);
  }
  out.bindings.Rebase(std::move(bindings));
  for (InFlight& f : out.inflight) f.guard = copy(f.guard);
  return out;
}

std::vector<int> BindArenaVars(const BranchArena& arena, int imported_vars,
                               GuardEngine* main_guards) {
  const std::vector<InstKey>& keys = arena.guards.var_keys();
  std::vector<int> to_main(keys.size(), -1);
  for (std::size_t v = 0; v < keys.size(); ++v) {
    if (v < static_cast<std::size_t>(imported_vars)) {
      // Identity prefix: the import adopted main's registry in order, and
      // main variables are never renumbered.
      to_main[v] = static_cast<int>(v);
      continue;
    }
    // Replay expansion-minted variables in arena order: instances another
    // item committed meanwhile resolve to their existing main variables,
    // genuinely fresh ones mint in first-touch order.
    to_main[v] = main_guards->CondVar(NodeId(keys[v].first), keys[v].second);
  }
  return to_main;
}

void MigrateToMain(const BranchArena& arena, const std::vector<int>& to_main,
                   BddManager* main, PathState* ps, bool* fresh) {
  auto migrate = [&](Bdd f) {
    const Bdd r = main->Migrate(arena.mgr, f, to_main, *fresh);
    *fresh = false;
    return r;
  };
  CowMap<InstKey, std::vector<Binding>>::base_map bindings;
  for (const auto& [key, blist] : ps->bindings) {
    std::vector<Binding>& rebuilt =
        bindings.emplace_hint(bindings.end(), key, blist)->second;
    for (Binding& b : rebuilt) b.guard = migrate(b.guard);
  }
  ps->bindings.Rebase(std::move(bindings));
  for (InFlight& f : ps->inflight) f.guard = migrate(f.guard);
}

}  // namespace ws
