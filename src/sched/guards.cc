#include "sched/guards.h"

#include <string>

#include "base/status.h"

namespace ws {

int GuardEngine::CondVar(NodeId cond, int iter) {
  const InstKey key = MakeInstKey(cond, iter);
  auto it = cond_vars_.find(key);
  if (it != cond_vars_.end()) return it->second;
  const std::string name =
      g_.node(cond).name + "_" + std::to_string(iter);
  const int var = mgr_.NewVar(name);
  cond_vars_.emplace(key, var);
  var_keys_.resize(static_cast<std::size_t>(var) + 1,
                   InstKey{0xffffffffu, 0});
  var_keys_[static_cast<std::size_t>(var)] = key;
  const double p = g_.cond_probability(cond);
  var_probs_.resize(static_cast<std::size_t>(var) + 1, 0.5);
  var_probs_[static_cast<std::size_t>(var)] = p;
  likely_assignment_[var] = p >= 0.5;
  return var;
}

void GuardEngine::Reset() {
  cond_vars_.clear();
  var_keys_.clear();
  var_probs_.clear();
  likely_assignment_.clear();
}

void GuardEngine::MintFrom(const GuardEngine& src, const BddManager& src_mgr) {
  WS_CHECK(var_keys_.empty() && mgr_.num_vars() == 0);
  cond_vars_ = src.cond_vars_;
  var_keys_ = src.var_keys_;
  var_probs_ = src.var_probs_;
  likely_assignment_ = src.likely_assignment_;
  for (std::size_t v = 0; v < var_keys_.size(); ++v) {
    mgr_.NewVar(src_mgr.var_name(static_cast<int>(v)));
  }
}

Bdd GuardEngine::CondLit(const PathState& ps, NodeId cond, int iter,
                         bool polarity) {
  if (const bool* value = ps.resolved.Find(MakeInstKey(cond, iter))) {
    return *value == polarity ? mgr_.True() : mgr_.False();
  }
  const int var = CondVar(cond, iter);
  return polarity ? mgr_.Var(var) : mgr_.NotVar(var);
}

Bdd GuardEngine::CtrlGuard(const PathState& ps, NodeId node, int iter) {
  const Node& n = g_.node(node);
  Bdd guard = mgr_.True();
  if (n.loop.valid()) {
    const Loop& loop = g_.loop(n.loop);
    // Iteration i of the body requires continue-conditions 0..i to hold;
    // loop-header nodes (which compute the continue decision itself) only
    // require 0..i-1.
    const int upper = g_.InLoopHeader(node) ? iter - 1 : iter;
    const LoopState& ls = ps.loops[n.loop.value()];
    // Conditions below next_unresolved are resolved true; start there.
    const int lo = ls.exited ? 0 : ls.next_unresolved;
    for (int k = lo; k <= upper; ++k) {
      const Bdd lit = CondLit(ps, loop.cond, k, true);
      if (mgr_.IsFalse(lit)) return mgr_.False();
      guard = mgr_.And(guard, lit);
    }
  }
  for (const ControlLiteral& lit : n.ctrl) {
    // Guard conditions live in the same loop scope, hence same iteration.
    const Bdd b = CondLit(ps, lit.cond, n.loop.valid() ? iter : 0,
                          lit.polarity);
    if (mgr_.IsFalse(b)) return mgr_.False();
    guard = mgr_.And(guard, b);
  }
  return guard;
}

Bdd GuardEngine::ExitGuard(const PathState& ps, LoopId loop_id,
                           int exit_iter) {
  const Loop& loop = g_.loop(loop_id);
  const LoopState& ls = ps.loops[loop_id.value()];
  if (ls.exited) {
    return exit_iter == ls.exit_iter ? mgr_.True() : mgr_.False();
  }
  if (exit_iter < ls.next_unresolved) return mgr_.False();
  Bdd guard = CondLit(ps, loop.cond, exit_iter, false);
  for (int k = ls.next_unresolved; k < exit_iter; ++k) {
    guard = mgr_.And(guard, CondLit(ps, loop.cond, k, true));
  }
  return guard;
}

Bdd GuardEngine::BindingGuard(const PathState& ps, const InstKey& key,
                              int version) const {
  const std::vector<Binding>* blist = ps.bindings.Find(key);
  WS_CHECK(blist != nullptr);
  WS_CHECK(version >= 0 && static_cast<std::size_t>(version) < blist->size());
  return (*blist)[static_cast<std::size_t>(version)].guard;
}

bool GuardEngine::InstanceCovered(const PathState& ps, const InstKey& key,
                                  Bdd ctrl, bool require_completed) {
  const std::vector<Binding>* blist = ps.bindings.Find(key);
  if (blist == nullptr) return false;
  for (const Binding& b : *blist) {
    if (require_completed && !b.completed) continue;
    if (mgr_.Covers(b.guard, ctrl)) return true;
  }
  return false;
}

}  // namespace ws
