#include "sched/guards.h"

#include <string>

#include "base/status.h"

namespace ws {

int GuardEngine::CondVar(NodeId cond, int iter) {
  const InstKey key = MakeInstKey(cond, iter);
  auto it = cond_vars_.find(key);
  if (it != cond_vars_.end()) return it->second;
  const std::string name =
      g_.node(cond).name + "_" + std::to_string(iter);
  const int var = mgr_.NewVar(name);
  cond_vars_.emplace(key, var);
  const double p = g_.cond_probability(cond);
  var_probs_.resize(static_cast<std::size_t>(var) + 1, 0.5);
  var_probs_[static_cast<std::size_t>(var)] = p;
  likely_assignment_[var] = p >= 0.5;
  return var;
}

Bdd GuardEngine::CondLit(const PathState& ps, NodeId cond, int iter,
                         bool polarity) {
  auto it = ps.resolved.find(MakeInstKey(cond, iter));
  if (it != ps.resolved.end()) {
    return it->second == polarity ? mgr_.True() : mgr_.False();
  }
  const int var = CondVar(cond, iter);
  return polarity ? mgr_.Var(var) : mgr_.NotVar(var);
}

Bdd GuardEngine::CtrlGuard(const PathState& ps, NodeId node, int iter) {
  const Node& n = g_.node(node);
  Bdd guard = mgr_.True();
  if (n.loop.valid()) {
    const Loop& loop = g_.loop(n.loop);
    // Iteration i of the body requires continue-conditions 0..i to hold;
    // loop-header nodes (which compute the continue decision itself) only
    // require 0..i-1.
    const int upper = g_.InLoopHeader(node) ? iter - 1 : iter;
    const LoopState& ls = ps.loops[n.loop.value()];
    // Conditions below next_unresolved are resolved true; start there.
    const int lo = ls.exited ? 0 : ls.next_unresolved;
    for (int k = lo; k <= upper; ++k) {
      const Bdd lit = CondLit(ps, loop.cond, k, true);
      if (mgr_.IsFalse(lit)) return mgr_.False();
      guard = mgr_.And(guard, lit);
    }
  }
  for (const ControlLiteral& lit : n.ctrl) {
    // Guard conditions live in the same loop scope, hence same iteration.
    const Bdd b = CondLit(ps, lit.cond, n.loop.valid() ? iter : 0,
                          lit.polarity);
    if (mgr_.IsFalse(b)) return mgr_.False();
    guard = mgr_.And(guard, b);
  }
  return guard;
}

Bdd GuardEngine::ExitGuard(const PathState& ps, LoopId loop_id,
                           int exit_iter) {
  const Loop& loop = g_.loop(loop_id);
  const LoopState& ls = ps.loops[loop_id.value()];
  if (ls.exited) {
    return exit_iter == ls.exit_iter ? mgr_.True() : mgr_.False();
  }
  if (exit_iter < ls.next_unresolved) return mgr_.False();
  Bdd guard = CondLit(ps, loop.cond, exit_iter, false);
  for (int k = ls.next_unresolved; k < exit_iter; ++k) {
    guard = mgr_.And(guard, CondLit(ps, loop.cond, k, true));
  }
  return guard;
}

Bdd GuardEngine::BindingGuard(const PathState& ps, const InstKey& key,
                              int version) const {
  auto it = ps.bindings.find(key);
  WS_CHECK(it != ps.bindings.end());
  WS_CHECK(version >= 0 &&
           static_cast<std::size_t>(version) < it->second.size());
  return it->second[static_cast<std::size_t>(version)].guard;
}

bool GuardEngine::InstanceCovered(const PathState& ps, const InstKey& key,
                                  Bdd ctrl, bool require_completed) {
  auto it = ps.bindings.find(key);
  if (it == ps.bindings.end()) return false;
  for (const Binding& b : it->second) {
    if (require_completed && !b.completed) continue;
    if (mgr_.Covers(b.guard, ctrl)) return true;
  }
  return false;
}

}  // namespace ws
