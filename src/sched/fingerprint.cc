#include "sched/fingerprint.h"

#include <bit>
#include <cstdint>

#include "base/status.h"

namespace ws {
namespace {

// Doubles are mixed by bit pattern: the scheduler compares and multiplies
// them exactly as stored, so bit-identical inputs are the right equality.
void MixDouble(FpHasher& h, double v) {
  h.Mix(std::bit_cast<std::uint64_t>(v));
}

}  // namespace

void MixString(FpHasher& h, const std::string& s) {
  h.Mix(s.size());
  std::uint64_t word = 0;
  int shift = 0;
  for (const char c : s) {
    word |= static_cast<std::uint64_t>(static_cast<unsigned char>(c))
            << shift;
    shift += 8;
    if (shift == 64) {
      h.Mix(word);
      word = 0;
      shift = 0;
    }
  }
  if (shift != 0) h.Mix(word);
}

void MixCdfg(FpHasher& h, const Cdfg& g) {
  MixString(h, g.name());
  h.Mix(g.num_nodes());
  for (const Node& n : g.nodes()) {
    h.Mix(static_cast<std::uint64_t>(n.kind));
    // Display names are artifact-affecting: they appear in the STG's guard
    // strings and rendered reports, which now persist in the durable store —
    // a renamed design must never replay another design's artifacts.
    MixString(h, n.name);
    h.Mix(n.inputs.size());
    for (const NodeId in : n.inputs) h.Mix(in.value());
    h.Mix(static_cast<std::uint64_t>(n.const_value));
    h.Mix(n.loop.value());
    h.Mix(n.ctrl.size());
    for (const ControlLiteral& lit : n.ctrl) {
      h.Mix(lit.cond.value());
      h.Mix(lit.polarity ? 1 : 0);
    }
    h.Mix(n.array.value());
  }
  h.Mix(g.num_loops());
  for (const Loop& loop : g.loops()) {
    MixString(h, loop.name);
    h.Mix(loop.cond.value());
    h.Mix(loop.phis.size());
    for (const NodeId phi : loop.phis) h.Mix(phi.value());
    h.Mix(loop.body.size());
    for (const NodeId b : loop.body) h.Mix(b.value());
  }
  h.Mix(g.arrays().size());
  for (const MemArray& a : g.arrays()) {
    MixString(h, a.name);
    h.Mix(static_cast<std::uint64_t>(a.size));
    h.Mix(a.init.size());
    for (const std::int64_t v : a.init) {
      h.Mix(static_cast<std::uint64_t>(v));
    }
  }
  h.Mix(g.inputs().size());
  for (const NodeId in : g.inputs()) h.Mix(in.value());
  h.Mix(g.outputs().size());
  for (const NodeId out : g.outputs()) h.Mix(out.value());
  // Branch probabilities drive criticality (Eq. 5) and the single-path
  // likely assignment, so they are result-affecting inputs. condition_nodes()
  // is sorted by id — a canonical order.
  h.Mix(g.condition_nodes().size());
  for (const NodeId cond : g.condition_nodes()) {
    h.Mix(cond.value());
    MixDouble(h, g.cond_probability(cond));
  }
}

void MixLibrary(FpHasher& h, const FuLibrary& lib) {
  h.Mix(static_cast<std::uint64_t>(lib.num_types()));
  for (int i = 0; i < lib.num_types(); ++i) {
    const FuType& t = lib.type(i);
    MixString(h, t.name);
    h.Mix(static_cast<std::uint64_t>(t.latency));
    h.Mix(t.pipelined ? 1 : 0);
    MixDouble(h, t.delay_ns);
    MixDouble(h, t.area);
  }
  // Kind -> unit selection, enumerated in OpKind declaration order.
  for (int k = 0; k <= static_cast<int>(OpKind::kOutput); ++k) {
    const OpKind kind = static_cast<OpKind>(k);
    h.Mix(lib.HasTypeFor(kind)
              ? static_cast<std::uint64_t>(lib.TypeFor(kind))
              : ~0ull);
  }
}

void MixAllocation(FpHasher& h, const Allocation& alloc,
                   const FuLibrary& lib) {
  h.Mix(static_cast<std::uint64_t>(lib.num_types()));
  for (int i = 0; i < lib.num_types(); ++i) {
    h.Mix(static_cast<std::uint64_t>(
        static_cast<std::int64_t>(alloc.Count(i))));
  }
}

void MixOptions(FpHasher& h, const SchedulerOptions& options) {
  h.Mix(static_cast<std::uint64_t>(options.mode));
  MixDouble(h, options.clock.period_ns);
  h.Mix(options.clock.allow_chaining ? 1 : 0);
  h.Mix(static_cast<std::uint64_t>(options.lookahead));
  h.Mix(static_cast<std::uint64_t>(options.gc_window));
  h.Mix(static_cast<std::uint64_t>(options.max_states));
  h.Mix(static_cast<std::uint64_t>(options.max_ops_per_state));
  // options.deadline / options.cancel intentionally excluded: per-call
  // bounds, not result-affecting inputs.
}

Fp128 FingerprintScheduleRequest(const ScheduleRequest& request) {
  WS_CHECK_MSG(request.graph != nullptr && request.library != nullptr &&
                   request.allocation != nullptr,
               "FingerprintScheduleRequest: null request member");
  FpHasher h;
  MixCdfg(h, *request.graph);
  MixLibrary(h, *request.library);
  MixAllocation(h, *request.allocation, *request.library);
  MixOptions(h, request.options);
  return h.digest();
}

}  // namespace ws
