// The scheduling engine's shared working-state types: the symbolic execution
// front along one control path (PathState) and the candidate record the
// successor computation produces. These used to be private to the scheduler
// monolith; they are a header so the engine's layers — guards, candidates,
// fork, closure, policy (each in its own module under src/sched/) — can share
// them and be tested in isolation.
//
// None of these types own scheduling logic. The semantics live in the
// modules: guard construction in guards.h, Lemma 1 successor computation in
// candidates.h, Step 2 validation/invalidation in fork.h, the relabeling map
// M in closure.h, and Eq. 5 (plus its alternatives) in policy.h.
#ifndef WS_SCHED_ENGINE_STATE_H
#define WS_SCHED_ENGINE_STATE_H

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bdd/bdd.h"
#include "cdfg/cdfg.h"
#include "sched/cow_map.h"
#include "stg/stg.h"

namespace ws {

// (node value, iteration) — the identity of an operation/value instance.
using InstKey = std::pair<std::uint32_t, int>;

inline InstKey MakeInstKey(NodeId node, int iter) {
  return {node.value(), iter};
}
inline InstKey MakeInstKey(const InstRef& ref) {
  return {ref.node.value(), ref.iter};
}

// One execution of a (node, iteration) with a concrete operand binding. The
// guard is the operand-correctness condition: the stored physical result
// equals the semantically correct value of the instance iff the guard holds.
struct Binding {
  std::vector<InstRef> operands;
  Bdd guard;
  bool completed = false;
  // Paper-style annotation, frozen at admission. Shared, not inline: the
  // fork tree copies bindings across branches (and the wave loop across
  // arenas) where the text never changes, so copies bump a refcount.
  std::shared_ptr<const std::string> guard_at_schedule;
};

// A published result version available for consumption: (version index into
// bindings[key], within-cycle readiness offset for chaining).
struct VersionRec {
  int version = 0;
  double ready_offset = 0.0;
};

// A multi-cycle operation still occupying its unit.
struct InFlight {
  InstRef inst;
  Bdd guard;          // squashed (removed) when this folds to 0
  int remaining = 0;  // continuation cycles still to run
  int latency = 1;
  int fu_type = -1;
};

struct LoopState {
  bool exited = false;
  int exit_iter = 0;        // valid when exited
  int next_unresolved = 0;  // r: smallest i with condition instance unresolved
  int base() const { return exited ? exit_iter : next_unresolved; }
};

// A completed-but-unresolved conditional execution whose value is latched in
// a register, awaiting validation.
struct LatchedVersion {
  int version = 0;
};

// The symbolic execution front along one control path. The four instance
// tables are copy-on-write (sched/cow_map.h): PartitionLeaves copies the
// whole PathState once per fork-tree branch, and a fold touches only the
// entries the resolved condition reaches, so branches share the untouched
// bulk of every table. Reads go through Find/contains/at or ranged-for;
// writes must use Mutable/Erase (two-phase when driven by iteration).
struct PathState {
  CowMap<InstKey, std::vector<Binding>> bindings;
  CowMap<InstKey, std::vector<VersionRec>> available;
  std::vector<InFlight> inflight;
  CowMap<InstKey, bool> resolved;                          // condition instances
  CowMap<InstKey, std::vector<LatchedVersion>> latched;    // unresolved conds
  std::vector<LoopState> loops;

  // Folds the per-branch overlays into shared immutable blocks. Called when
  // a state is admitted to the frontier — its fork siblings have already
  // been copied, so flattening no longer loses sharing. Flattening rebuilds
  // the whole base block, so each table folds only once its overlay has
  // grown to a quarter of the table; smaller overlays stay (reads tolerate
  // them) and fold into a later, better-amortized compaction.
  void Compact() {
    bindings.Compact(1 + bindings.size() / 4);
    available.Compact(1 + available.size() / 4);
    resolved.Compact(1 + resolved.size() / 4);
    latched.Compact(1 + latched.size() / 4);
  }
};

// A schedulable candidate produced by the successor computation
// (candidates.h). `priority` is filled by the active selection policy
// (policy.h); under the default kCriticality policy it is Eq. 5's
// criticality, lambda(op) * P(guard).
struct Candidate {
  NodeId node;
  int iter = 0;
  std::vector<InstRef> operands;
  Bdd guard;
  int fu_type = -1;
  int latency = 1;
  double delay = 1.0;
  double start_offset = 0.0;
  double priority = 0.0;
};

}  // namespace ws

#endif  // WS_SCHED_ENGINE_STATE_H
