// Copy-on-write ordered map for PathState forking.
//
// PartitionLeaves copies the whole PathState once per fork-tree branch (2^k
// leaves for k resolvable conditions), and before this type existed every
// copy duplicated four std::maps wholesale even though a fold typically
// touches a handful of entries. A CowMap instead keeps an immutable *base*
// block shared between all siblings (a shared_ptr<const std::map>) plus a
// small per-branch *overlay* of changed entries; copying a CowMap copies the
// overlay and bumps a refcount. `nullopt` in the overlay is a tombstone for
// a key that exists in the base; the invariant that tombstones only shadow
// base keys is what lets iteration advance base and overlay in lockstep.
//
// Mutation is explicit: Mutable(key) copies the entry up into the overlay
// (std::map node stability keeps the returned reference valid across later
// Mutable/Erase calls on *other* keys). Read paths use Find/contains/at and
// the merged ordered const_iterator, which interleaves base and overlay in
// key order — overlay entries win on equal keys — so ranged-for call sites
// behave exactly like iterating the flattened map.
//
// Compact() folds the accumulated overlay back into a fresh shared base.
// The scheduler calls it when a forked state is admitted to the frontier:
// by then its siblings have been copied, so flattening no longer loses
// sharing, and the next fork tree starts from a clean base again.
#ifndef WS_SCHED_COW_MAP_H
#define WS_SCHED_COW_MAP_H

#include <cstddef>
#include <map>
#include <memory>
#include <optional>
#include <utility>

#include "base/status.h"

namespace ws {

template <typename Key, typename Value>
class CowMap {
 public:
  using base_map = std::map<Key, Value>;

 private:
  using BaseMap = base_map;
  using OverlayMap = std::map<Key, std::optional<Value>>;

 public:
  CowMap() = default;
  // Copies share the base block; only the overlay is duplicated.
  CowMap(const CowMap&) = default;
  CowMap& operator=(const CowMap&) = default;
  CowMap(CowMap&&) noexcept = default;
  CowMap& operator=(CowMap&&) noexcept = default;

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  // Pointer to the live value for `key`, or nullptr. Stable across mutation
  // of other keys; invalidated by Mutable/Erase/Compact on this key.
  const Value* Find(const Key& key) const {
    if (overlay_.empty()) return FindInBase(key);  // common post-Compact case
    auto it = overlay_.find(key);
    if (it != overlay_.end()) {
      return it->second.has_value() ? &*it->second : nullptr;
    }
    return FindInBase(key);
  }

  bool contains(const Key& key) const { return Find(key) != nullptr; }

  const Value& at(const Key& key) const {
    const Value* v = Find(key);
    WS_CHECK(v != nullptr);
    return *v;
  }

  // Mutable access with operator[] create-or-copy-up semantics: an existing
  // entry is copied into the overlay on first touch, a missing one is
  // default-constructed.
  Value& Mutable(const Key& key) {
    auto [it, inserted] = overlay_.try_emplace(key);
    if (inserted) {
      if (const Value* from_base = FindInBase(key)) {
        it->second = *from_base;
      } else {
        it->second.emplace();
        ++size_;
      }
    } else if (!it->second.has_value()) {
      // Reviving a tombstoned key: fresh default value.
      it->second.emplace();
      ++size_;
    }
    return *it->second;
  }

  void Erase(const Key& key) {
    auto it = overlay_.find(key);
    if (it != overlay_.end()) {
      if (!it->second.has_value()) return;  // already erased
      --size_;
      if (FindInBase(key) != nullptr) {
        it->second.reset();  // tombstone a base key
      } else {
        overlay_.erase(it);  // overlay-only key vanishes outright
      }
    } else if (FindInBase(key) != nullptr) {
      overlay_.emplace(key, std::nullopt);
      --size_;
    }
  }

  // Folds the overlay into a fresh shared base block (one pass over base +
  // overlay). Cheap no-op while the overlay is small.
  void Compact(std::size_t min_overlay = 1) {
    if (overlay_.size() < min_overlay) return;
    BaseMap merged = base_ ? *base_ : BaseMap();
    for (auto& [key, value] : overlay_) {
      if (value.has_value()) {
        merged.insert_or_assign(key, std::move(*value));
      } else {
        merged.erase(key);
      }
    }
    base_ = std::make_shared<const BaseMap>(std::move(merged));
    overlay_.clear();
  }

  // Installs `m` as the new shared base and drops the overlay. The wave
  // loop's import/migrate passes rebuild whole tables (every guard handle
  // changes manager); building the replacement as a plain map and
  // installing it here is one pass, where a Mutable sweep would copy every
  // entry into the overlay and then pay to flatten it again.
  void Rebase(base_map&& m) {
    size_ = m.size();
    base_ = std::make_shared<const BaseMap>(std::move(m));
    overlay_.clear();
  }

  // Number of overlay entries (changed/tombstoned keys since the last
  // Compact). Compaction policy input.
  std::size_t overlay_size() const { return overlay_.size(); }

  // Merged ordered view: base and overlay interleaved by key, overlay
  // entries shadowing base ones, tombstones skipped. operator* returns a
  // pair of references (not a reference to a pair), so ranged-for must bind
  // by value or structured binding — `for (const auto& [k, v] : m)` works.
  class const_iterator {
   public:
    using value_type = std::pair<const Key&, const Value&>;

    value_type operator*() const {
      if (AtBase()) return value_type(base_it_->first, base_it_->second);
      return value_type(overlay_it_->first, *overlay_it_->second);
    }

    const_iterator& operator++() {
      Advance();
      Settle();
      return *this;
    }

    friend bool operator==(const const_iterator& a, const const_iterator& b) {
      return a.base_it_ == b.base_it_ && a.overlay_it_ == b.overlay_it_;
    }
    friend bool operator!=(const const_iterator& a, const const_iterator& b) {
      return !(a == b);
    }

   private:
    friend class CowMap;

    // True when the current position is the base entry (strictly smaller
    // key, or overlay exhausted). On equal keys the overlay wins.
    bool AtBase() const {
      if (overlay_it_ == overlay_end_) return true;
      if (base_it_ == base_end_) return false;
      return base_it_->first < overlay_it_->first;
    }

    void Advance() {
      if (AtBase()) {
        ++base_it_;
        return;
      }
      // Overlay position; an equal-keyed base entry is shadowed — step over
      // both so the pair stays in lockstep.
      if (base_it_ != base_end_ && !(overlay_it_->first < base_it_->first)) {
        ++base_it_;
      }
      ++overlay_it_;
    }

    // Skips tombstones. A tombstone always shadows a base key, so when the
    // merged position lands on one, Advance steps over both halves.
    void Settle() {
      while (overlay_it_ != overlay_end_ && !AtBase() &&
             !overlay_it_->second.has_value()) {
        Advance();
      }
    }

    typename BaseMap::const_iterator base_it_, base_end_;
    typename OverlayMap::const_iterator overlay_it_, overlay_end_;
  };

  const_iterator begin() const {
    const_iterator it;
    it.base_it_ = base().begin();
    it.base_end_ = base().end();
    it.overlay_it_ = overlay_.begin();
    it.overlay_end_ = overlay_.end();
    it.Settle();
    return it;
  }

  const_iterator end() const {
    const_iterator it;
    it.base_it_ = base().end();
    it.base_end_ = base().end();
    it.overlay_it_ = overlay_.end();
    it.overlay_end_ = overlay_.end();
    return it;
  }

 private:
  const Value* FindInBase(const Key& key) const {
    if (base_ == nullptr) return nullptr;
    auto it = base_->find(key);
    return it != base_->end() ? &it->second : nullptr;
  }

  const BaseMap& base() const {
    static const BaseMap kEmpty;
    return base_ ? *base_ : kEmpty;
  }

  std::shared_ptr<const BaseMap> base_;
  OverlayMap overlay_;
  std::size_t size_ = 0;
};

}  // namespace ws

#endif  // WS_SCHED_COW_MAP_H
