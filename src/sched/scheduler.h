// The scheduling engine: the paper's generic scheduler (Figure 8 / Figure 12
// flow) with the three speculative-execution extensions of Section 4:
//
//  1. Schedulable-successor computation through select chains (Lemma 1 /
//     Observation 1), realized by value-version propagation: every completed
//     operation instance publishes a version of its result tagged with a
//     residual speculation guard (a BDD over unresolved condition-instance
//     variables); candidates are formed from every guard-consistent operand
//     binding.
//  2. Validation/invalidation (Step 2): when conditional operations resolve
//     at a state boundary, the STG forks per condition combination and every
//     guard is cofactored; guard == 0 discards the work (squashing in-flight
//     speculative operations), guard == 1 validates it.
//  3. Operation selection by criticality = lambda(op) * P(guard) (Step 3 /
//     Eq. 5), with branch probabilities taken from the CDFG profile
//     annotations.
//
// Loop handling follows Wavesched: implicit dynamic unrolling via iteration
// indices on operation instances, and STG closure by detecting state
// equivalence modulo a uniform per-loop iteration shift (the paper's
// register-relabeling map M).
//
// Three modes reproduce the paper's comparisons:
//   kWavesched      — no speculation (the WS baseline of Table 1),
//   kSinglePath     — speculate only along the most probable path (the
//                     coarse-grain scheme the paper argues against, Fig. 7),
//   kWaveschedSpec  — fine-grained multi-path speculation (WS-spec).
#ifndef WS_SCHED_SCHEDULER_H
#define WS_SCHED_SCHEDULER_H

#include <string>

#include "cdfg/cdfg.h"
#include "hw/resources.h"
#include "stg/stg.h"

namespace ws {

enum class SpeculationMode {
  kWavesched,      // no speculative execution
  kSinglePath,     // speculation along the single most probable path
  kWaveschedSpec,  // fine-grained speculation along multiple paths
};

const char* SpeculationModeName(SpeculationMode mode);

struct SchedulerOptions {
  SpeculationMode mode = SpeculationMode::kWaveschedSpec;
  ClockModel clock;

  // How many loop iterations beyond the first unresolved condition the
  // scheduler may speculate into. Bounds guard sizes and the candidate
  // window; must be at least the pipeline depth of the steady state for
  // maximal throughput (Example 1 needs ~8).
  int lookahead = 8;

  // Iterations older than (first unresolved - gc_window) are garbage
  // collected from the symbolic frontier; must exceed the largest
  // cross-iteration dependence distance plus the longest unit latency.
  int gc_window = 4;

  // Exploration caps; exceeded => ws::Error (closure not found).
  int max_states = 2000;
  int max_ops_per_state = 256;
};

struct ScheduleStats {
  int states_created = 0;
  int closure_hits = 0;       // successors folded onto equivalent states
  int speculative_ops = 0;    // stage-0 ops scheduled with residual guard != 1
  int squashed_ops = 0;       // in-flight ops invalidated at a fork
  int total_ops = 0;          // stage-0 ops across all states
};

struct ScheduleResult {
  Stg stg;
  ScheduleStats stats;
};

// Schedules `g` under the given library/allocation/options. Throws ws::Error
// if the description cannot be scheduled (unsatisfiable constraints, caps
// exceeded).
ScheduleResult Schedule(const Cdfg& g, const FuLibrary& lib,
                        const Allocation& alloc,
                        const SchedulerOptions& options);

}  // namespace ws

#endif  // WS_SCHED_SCHEDULER_H
