// The scheduling engine: the paper's generic scheduler (Figure 8 / Figure 12
// flow) with the three speculative-execution extensions of Section 4:
//
//  1. Schedulable-successor computation through select chains (Lemma 1 /
//     Observation 1), realized by value-version propagation: every completed
//     operation instance publishes a version of its result tagged with a
//     residual speculation guard (a BDD over unresolved condition-instance
//     variables); candidates are formed from every guard-consistent operand
//     binding.
//  2. Validation/invalidation (Step 2): when conditional operations resolve
//     at a state boundary, the STG forks per condition combination and every
//     guard is cofactored; guard == 0 discards the work (squashing in-flight
//     speculative operations), guard == 1 validates it.
//  3. Operation selection by criticality = lambda(op) * P(guard) (Step 3 /
//     Eq. 5), with branch probabilities taken from the CDFG profile
//     annotations. The selection heuristic is pluggable (sched/policy.h);
//     Eq. 5 is the default SelectionPolicy::kCriticality.
//
// Loop handling follows Wavesched: implicit dynamic unrolling via iteration
// indices on operation instances, and STG closure by detecting state
// equivalence modulo a uniform per-loop iteration shift (the paper's
// register-relabeling map M).
//
// Three modes reproduce the paper's comparisons:
//   kWavesched      — no speculation (the WS baseline of Table 1),
//   kSinglePath     — speculate only along the most probable path (the
//                     coarse-grain scheme the paper argues against, Fig. 7),
//   kWaveschedSpec  — fine-grained multi-path speculation (WS-spec).
#ifndef WS_SCHED_SCHEDULER_H
#define WS_SCHED_SCHEDULER_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <optional>
#include <string>

#include "base/status.h"
#include "cdfg/cdfg.h"
#include "hw/resources.h"
#include "sched/policy.h"
#include "stg/stg.h"

namespace ws {

enum class SpeculationMode {
  kWavesched,      // no speculative execution
  kSinglePath,     // speculation along the single most probable path
  kWaveschedSpec,  // fine-grained speculation along multiple paths
};

const char* SpeculationModeName(SpeculationMode mode);

struct SchedulerOptions {
  SpeculationMode mode = SpeculationMode::kWaveschedSpec;

  // Which candidate the greedy admission loop takes first (sched/policy.h).
  // kCriticality is Eq. 5 and reproduces the paper; the alternatives are
  // ablation baselines. Result-affecting: participates in fingerprints, the
  // wire protocol, and stored artifacts.
  SelectionPolicy policy = SelectionPolicy::kCriticality;

  ClockModel clock;

  // How many loop iterations beyond the first unresolved condition the
  // scheduler may speculate into. Bounds guard sizes and the candidate
  // window; must be at least the pipeline depth of the steady state for
  // maximal throughput (Example 1 needs ~8).
  int lookahead = 8;

  // Iterations older than (first unresolved - gc_window) are garbage
  // collected from the symbolic frontier; must exceed the largest
  // cross-iteration dependence distance plus the longest unit latency.
  int gc_window = 4;

  // Exploration caps; exceeded => ws::Error (closure not found).
  int max_states = 2000;
  int max_ops_per_state = 256;

  // Speculative memory disambiguation (mem/disambig.h): when enabled (and
  // the mode speculates), the per-array program-order token chain is relaxed
  // into conditional dependence edges — a load may schedule past an earlier
  // store whose address is unresolved, carrying the disambiguation literal
  // `addr_load != addr_store` in its path guard; an alias squashes the
  // bypass and the load re-executes behind the store. A no-op for designs
  // without arrays and under kWavesched (which never speculates).
  // Result-affecting: participates in fingerprints, the wire protocol, and
  // stored artifacts.
  bool mem_spec = false;

  // Capacity of the modeled load-store queue window, per array: the maximum
  // number of simultaneously unresolved disambiguation instances. Once the
  // window is full, further loads issue conservatively (token order) until
  // comparators resolve. Must be >= 1. Result-affecting like mem_spec.
  int lsq_depth = 4;

  // Worker threads for the intra-run wave loop: frontier states expand in
  // parallel on a work-stealing pool, each in its own BDD sub-arena, while
  // closure detection and state numbering stay on the calling thread in
  // frontier order. 0 = expand inline on the calling thread (the sequential
  // engine — identical code path minus the threads). Never result-affecting:
  // the STG, stats counters, and report bytes are byte-identical at any
  // setting (enforced by parallel_wave_test), so like deadline/cancel below
  // the field is excluded from request fingerprints.
  int wave_workers = 0;

  // Cooperative cancellation, checked between worklist states and candidate
  // passes (millisecond granularity on the paper suite). When the deadline
  // passes, Schedule returns a kDeadlineExceeded Status — never a
  // partial STG. `cancel` is borrowed, may be null, and is polled with
  // relaxed loads; setting it from another thread makes the run return
  // kCancelled. Neither field participates in request fingerprints (see
  // sched/closure.h): they bound a particular call, not its result.
  std::optional<std::chrono::steady_clock::time_point> deadline;
  const std::atomic<bool>* cancel = nullptr;

  // Rejects out-of-range fields with a descriptive error. Every scheduling
  // entry point validates; call directly to fail fast at construction time.
  Status Validate() const;
};

// Wall-clock attribution of a scheduling run to its algorithmic phases.
// All figures in nanoseconds of std::chrono::steady_clock. The phases nest
// inside total_ns but do not partition it (state bookkeeping, leaf merging
// and the worklist loop are unattributed).
struct SchedulePhaseTimes {
  std::int64_t successor_ns = 0;  // schedulable-successor computation:
                                  // candidate generation through select
                                  // chains (Lemma 1 / Observation 1)
  std::int64_t cofactor_ns = 0;   // validation/invalidation: partitioning on
                                  // resolved conditions and guard cofactoring
                                  // (Step 2)
  std::int64_t closure_ns = 0;    // canonical signatures + equivalent-state
                                  // lookup (the relabeling map M)
  std::int64_t gc_ns = 0;         // symbolic-frontier garbage collection
  std::int64_t select_ns = 0;     // policy scoring + admission argmax
                                  // (Step 3); nests inside successor_ns for
                                  // the scoring half
  std::int64_t total_ns = 0;      // the whole run
};

struct ScheduleStats {
  int states_created = 0;
  int closure_hits = 0;       // successors folded onto equivalent states
  int speculative_ops = 0;    // stage-0 ops scheduled with residual guard != 1
  int squashed_ops = 0;       // in-flight ops invalidated at a fork
  int total_ops = 0;          // stage-0 ops across all states
  // Instrumentation (filled by every run):
  std::int64_t candidates_generated = 0;  // candidates across all passes
  std::uint64_t bdd_ops = 0;              // BddManager::num_ops() at the end
  std::uint64_t bdd_nodes = 0;            // unique BDD nodes built
  // Closure probes whose 128-bit state fingerprint matched an existing
  // state's but whose full canonical signatures differed (resolved by the
  // exact-comparison fallback, so never a correctness event). Expected to be
  // 0 in practice; tests assert it.
  std::int64_t signature_collisions = 0;
  SchedulePhaseTimes phase;
};

// A scheduling request: the CDFG plus everything Section 2 lists as
// scheduler inputs. The pointees are borrowed for the duration of the call
// and never mutated; requests are cheap to copy and queue.
struct ScheduleRequest {
  const Cdfg* graph = nullptr;
  const FuLibrary* library = nullptr;
  const Allocation* allocation = nullptr;
  SchedulerOptions options;
};

struct ScheduleReport {
  Stg stg;
  ScheduleStats stats;
};

// The historical name for the response; kept as an alias for existing code.
using ScheduleResult = ScheduleReport;

// The scheduling entry point. Schedules request.graph under the given
// library/allocation/options without throwing: every failure (invalid
// request or options, unsatisfiable constraints, exhausted exploration
// caps, an expired deadline, cancellation) is returned as a typed error
// Result. Safe to call from worker threads; runs share nothing. Callers
// that want the historical throwing behavior chain .value(), which raises
// ws::Error with the same message.
Result<ScheduleReport> Schedule(const ScheduleRequest& request);

}  // namespace ws

#endif  // WS_SCHED_SCHEDULER_H
