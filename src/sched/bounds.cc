#include "sched/bounds.h"

#include <algorithm>

namespace ws {
namespace {

int LatencyOf(const Cdfg& g, const FuLibrary& lib, NodeId id) {
  const Node& n = g.node(id);
  if (!IsScheduledKind(n.kind) || n.kind == OpKind::kSelect) return 0;
  if (!lib.HasTypeFor(n.kind)) return 1;
  return lib.type(lib.TypeFor(n.kind)).latency;
}

bool IsBackEdge(const Cdfg& g, NodeId from, NodeId to) {
  const Node& t = g.node(to);
  return t.kind == OpKind::kLoopPhi && t.inputs[1] == from;
}

}  // namespace

ScheduleBounds ComputeBounds(const Cdfg& g, const FuLibrary& lib) {
  const std::size_t n = g.num_nodes();
  ScheduleBounds bounds;
  bounds.asap.assign(n, 0);
  bounds.alap.assign(n, 0);

  // Topological order of the acyclic view via DFS over consumers.
  std::vector<int> state(n, 0);
  std::vector<NodeId> reverse_topo;
  reverse_topo.reserve(n);
  auto dfs = [&](auto&& self, NodeId id) -> void {
    state[id.value()] = 1;
    for (NodeId c : g.consumers(id)) {
      if (IsBackEdge(g, id, c)) continue;
      if (state[c.value()] == 0) self(self, c);
    }
    state[id.value()] = 2;
    reverse_topo.push_back(id);
  };
  for (const Node& node : g.nodes()) {
    if (state[node.id.value()] == 0) dfs(dfs, node.id);
  }

  // ASAP: forward over producers (iterate reverse of reverse_topo).
  for (auto it = reverse_topo.rbegin(); it != reverse_topo.rend(); ++it) {
    const Node& node = g.node(*it);
    int start = 0;
    for (std::size_t k = 0; k < node.inputs.size(); ++k) {
      if (node.kind == OpKind::kLoopPhi && k == 1) continue;  // back edge
      const NodeId in = node.inputs[k];
      start = std::max(start,
                       bounds.asap[in.value()] + LatencyOf(g, lib, in));
    }
    bounds.asap[node.id.value()] = start;
    bounds.critical_path =
        std::max(bounds.critical_path, start + LatencyOf(g, lib, *it));
  }

  // ALAP: backward over consumers, anchored at the critical path.
  for (NodeId id : reverse_topo) {
    const int lat = LatencyOf(g, lib, id);
    int latest = bounds.critical_path - lat;
    for (NodeId c : g.consumers(id)) {
      if (IsBackEdge(g, id, c)) continue;
      latest = std::min(latest, bounds.alap[c.value()] - lat);
    }
    bounds.alap[id.value()] = latest;
  }
  return bounds;
}

}  // namespace ws
