// Classic ASAP / ALAP schedule bounds (Section 2 of the paper surveys them
// as the simplest scheduling techniques). Computed on the acyclic view of
// the CDFG (loop back edges cut, one iteration), with unit latencies taken
// from the module library; selects are zero-delay register transfers.
//
// Uses:
//  * ASAP length = the resource-unconstrained critical path — a lower bound
//    on any schedule of one iteration.
//  * mobility(op) = ALAP(op) - ASAP(op) — the slack metric classic list
//    schedulers prioritize by, and a useful diagnostic for why the
//    criticality heuristic picks what it picks.
#ifndef WS_SCHED_BOUNDS_H
#define WS_SCHED_BOUNDS_H

#include <vector>

#include "cdfg/cdfg.h"
#include "hw/resources.h"

namespace ws {

struct ScheduleBounds {
  // Indexed by NodeId::value(); start cycles of each operation. Structural
  // nodes inherit their producers' finish times.
  std::vector<int> asap;
  std::vector<int> alap;
  int critical_path = 0;  // cycles for one acyclic pass / iteration

  int mobility(NodeId id) const {
    return alap[id.value()] - asap[id.value()];
  }
};

// Computes ASAP/ALAP on the acyclic view (phi back edges cut). Control
// dependencies are ignored — these are the data-flow bounds that
// speculative execution can reach but never beat.
ScheduleBounds ComputeBounds(const Cdfg& g, const FuLibrary& lib);

}  // namespace ws

#endif  // WS_SCHED_BOUNDS_H
