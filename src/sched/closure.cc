#include "sched/closure.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <sstream>

#include "base/status.h"
#include "base/strings.h"

namespace ws {

// ---------------------------------------------------------------------------
// Fingerprint state signatures (the hot path).
//
// The token grammar is length-prefixed throughout — every section and every
// variable-arity entry starts with a count — so the flattened u64 stream is
// prefix-unambiguous: two streams are elementwise equal iff the canonical
// state structures are equal. Guard tokens are the node indices of
// shift-canonicalized BDDs, which within one manager are equal iff the
// shifted Boolean functions are equal. This makes token-stream equality
// coincide with equality of the legacy string signature (DebugSignature
// below), which WS_CHECK_SIG verifies at runtime.

namespace {
// Section tags: high-bit-set constants so a tag can never be confused with a
// count or payload produced by the (dense, small) ids that follow it.
constexpr std::uint64_t kSigLoops = 0xf100000000000001ull;
constexpr std::uint64_t kSigResolved = 0xf100000000000002ull;
constexpr std::uint64_t kSigAvailable = 0xf100000000000003ull;
constexpr std::uint64_t kSigBindings = 0xf100000000000004ull;
constexpr std::uint64_t kSigInflight = 0xf100000000000005ull;
constexpr std::uint64_t kSigLatched = 0xf100000000000006ull;
constexpr std::uint64_t kSigPending = 0xf100000000000007ull;

// Signed-int token: sign-extended into the u64 space (shifted iterations can
// be negative once a loop has exited).
constexpr std::uint64_t IntToken(int v) {
  return static_cast<std::uint64_t>(static_cast<std::int64_t>(v));
}
}  // namespace

ClosureDetector::ClosureDetector(const Cdfg& g, BddManager& mgr,
                                 GuardEngine& guards, ScheduleStats& stats)
    : g_(g),
      mgr_(mgr),
      guards_(guards),
      stats_(stats),
      check_signatures_(std::getenv("WS_CHECK_SIG") != nullptr) {
  is_loop_cond_.assign(g_.num_nodes(), false);
  for (const Loop& loop : g_.loops()) {
    is_loop_cond_[loop.cond.value()] = true;
  }
}

void ClosureDetector::PrepareShift(const std::vector<int>& bases) {
  shift_identity_ = true;
  for (const int b : bases) {
    if (b != 0) shift_identity_ = false;
  }
  shift_epoch_open_ = false;
  if (shift_identity_) return;

  // Dense var -> shifted var map. Building it may mint new condition
  // variables for shifted (even negative) iterations, which mutates the
  // guard engine's cond_vars; collect the targets first, then create.
  // Variables at negative iterations are themselves shift targets minted by
  // earlier probes — they never occur in a real guard (CondLit only mints
  // iteration >= 0), so they are skipped rather than re-shifted (otherwise
  // every probe would mint shifted copies of the previous probe's targets
  // and the variable universe would snowball).
  shift_var_map_.assign(static_cast<std::size_t>(mgr_.num_vars()), -1);
  std::vector<std::pair<int, InstKey>>& wanted = shift_wanted_;
  wanted.clear();
  for (const auto& [key, var] : guards_.cond_vars()) {
    if (key.second < 0) continue;  // synthetic shift target
    const Node& cn = g_.node(NodeId(key.first));
    if (!cn.loop.valid()) continue;
    const int base = bases[cn.loop.value()];
    if (base == 0) continue;
    wanted.emplace_back(var, InstKey{key.first, key.second - base});
  }
  for (const auto& [var, skey] : wanted) {
    const int shifted = guards_.CondVar(NodeId(skey.first), skey.second);
    shift_var_map_[static_cast<std::size_t>(var)] = shifted;
  }
}

std::uint64_t ClosureDetector::GuardToken(Bdd guard) {
  if (shift_identity_ || mgr_.IsTrue(guard) || mgr_.IsFalse(guard)) {
    return guard.index();
  }
  const Bdd renamed =
      mgr_.RenameDense(guard, shift_var_map_, /*fresh_map=*/!shift_epoch_open_);
  shift_epoch_open_ = true;
  return renamed.index();
}

void ClosureDetector::TokenizeState(const PathState& ps,
                                    std::vector<int>* bases_out) {
  std::vector<int>& bases = *bases_out;
  bases.assign(static_cast<std::size_t>(g_.num_loops()), 0);
  for (const Loop& loop : g_.loops()) {
    bases[loop.id.value()] = ps.loops[loop.id.value()].base();
  }
  PrepareShift(bases);

  std::vector<std::uint64_t>& t = sig_tokens_;
  t.clear();
  auto begin_count = [&]() {
    t.push_back(0);
    return t.size() - 1;
  };

  auto shift = [&](const InstKey& key) -> std::pair<std::uint32_t, int> {
    const Node& n = g_.node(NodeId(key.first));
    const int base = n.loop.valid() ? bases[n.loop.value()] : 0;
    return {key.first, key.second - base};
  };
  auto push_key = [&](const InstKey& key) {
    const auto [node, iter] = shift(key);
    t.push_back(node);
    t.push_back(IntToken(iter));
  };
  auto push_ref = [&](const InstRef& ref) {
    push_key(MakeInstKey(ref));
    t.push_back(IntToken(ref.version));
  };

  // Pending required work in the committed region (kept explicit so states
  // are never merged across unfinished obligations). Computed first because
  // the resolution section below keeps only history that pending work can
  // still observe; emitted last to mirror the legacy section order.
  pending_iters_.clear();
  std::vector<std::uint64_t>& pend_tokens = pend_tokens_;
  pend_tokens.clear();
  for (const Node& n : g_.nodes()) {
    if (!IsScheduledKind(n.kind)) continue;
    int hi = 0;
    if (n.loop.valid()) {
      hi = bases[n.loop.value()] - 1;
    }
    for (int iter = 0; iter <= hi; ++iter) {
      const Bdd ctrl = guards_.CtrlGuard(ps, n.id, iter);
      if (mgr_.IsFalse(ctrl)) continue;
      if (!guards_.InstanceCovered(ps, MakeInstKey(n.id, iter), ctrl,
                                   /*require_completed=*/false)) {
        const auto [node, siter] = shift(MakeInstKey(n.id, iter));
        pend_tokens.push_back(node);
        pend_tokens.push_back(IntToken(siter));
        if (n.loop.valid()) {
          pending_iters_.emplace_back(n.loop.value(), iter);
        }
      }
    }
  }
  std::sort(pending_iters_.begin(), pending_iters_.end());
  pending_iters_.erase(
      std::unique(pending_iters_.begin(), pending_iters_.end()),
      pending_iters_.end());
  auto pending_contains = [&](int loop, int iter) {
    return std::binary_search(pending_iters_.begin(), pending_iters_.end(),
                              std::pair<int, int>{loop, iter});
  };

  t.push_back(kSigLoops);
  for (const Loop& loop : g_.loops()) {
    t.push_back(ps.loops[loop.id.value()].exited ? 1u : 0u);
  }

  t.push_back(kSigResolved);
  {
    const std::size_t count_at = begin_count();
    for (const auto& [key, value] : ps.resolved) {
      const NodeId cn(key.first);
      const Node& cnode = g_.node(cn);
      if (cnode.loop.valid()) {
        const LoopState& ls = ps.loops[cnode.loop.value()];
        // Loop-condition resolutions are fully derivable from the frontier
        // position (true below next_unresolved / exit_iter, false at the
        // exit), so they never appear.
        if (is_loop_cond_[cn.value()]) continue;
        // Other in-loop resolutions matter only at the frontier or where
        // pending work still consults them.
        if (key.second < ls.base() &&
            !pending_contains(cnode.loop.value(), key.second)) {
          continue;
        }
      }
      push_key(key);
      t.push_back(value ? 1u : 0u);
      ++t[count_at];
    }
  }

  t.push_back(kSigAvailable);
  {
    const std::size_t count_at = begin_count();
    for (const auto& [key, versions] : ps.available) {
      push_key(key);
      t.push_back(versions.size());
      for (const VersionRec& v : versions) {
        t.push_back(IntToken(v.version));
        t.push_back(GuardToken(guards_.BindingGuard(ps, key, v.version)));
      }
      ++t[count_at];
    }
  }

  t.push_back(kSigBindings);
  {
    const std::size_t count_at = begin_count();
    for (const auto& [key, blist] : ps.bindings) {
      // A binding list is future-relevant only while an execution is still in
      // flight or the instance is not fully covered (new candidates may still
      // be generated and deduplicated against it). Fully covered, completed
      // instances influence the future only through their published versions,
      // which the available section already canonicalizes — omitting them
      // here is what lets steady-state signatures converge.
      bool in_flight = false;
      for (const Binding& b : blist) {
        if (!b.completed && !mgr_.IsFalse(b.guard)) in_flight = true;
      }
      const Bdd ctrl = guards_.CtrlGuard(ps, NodeId(key.first), key.second);
      if (!in_flight &&
          guards_.InstanceCovered(ps, key, ctrl,
                                  /*require_completed=*/false)) {
        continue;
      }
      push_key(key);
      const std::size_t nlive_at = begin_count();
      for (std::size_t v = 0; v < blist.size(); ++v) {
        const Binding& b = blist[v];
        if (mgr_.IsFalse(b.guard)) continue;  // scrubbed mispredictions
        t.push_back(v);
        t.push_back(b.operands.size());
        for (const InstRef& ref : b.operands) push_ref(ref);
        t.push_back(GuardToken(b.guard));
        t.push_back(b.completed ? 1u : 0u);
        ++t[nlive_at];
      }
      ++t[count_at];
    }
  }

  t.push_back(kSigInflight);
  {
    const std::size_t count_at = begin_count();
    for (const InFlight& f : ps.inflight) {
      push_ref(f.inst);
      t.push_back(IntToken(f.remaining));
      t.push_back(GuardToken(f.guard));
      ++t[count_at];
    }
  }

  t.push_back(kSigLatched);
  {
    const std::size_t count_at = begin_count();
    for (const auto& [key, versions] : ps.latched) {
      push_key(key);
      t.push_back(versions.size());
      for (const LatchedVersion& v : versions) {
        t.push_back(IntToken(v.version));
        t.push_back(GuardToken(guards_.BindingGuard(ps, key, v.version)));
      }
      ++t[count_at];
    }
  }

  t.push_back(kSigPending);
  t.push_back(pend_tokens.size());
  t.insert(t.end(), pend_tokens.begin(), pend_tokens.end());
}

std::string ClosureDetector::CanonGuard(Bdd guard,
                                        const std::vector<int>& bases) {
  if (mgr_.IsTrue(guard)) return "1";
  if (mgr_.IsFalse(guard)) return "0";
  // Render as a sorted sum of products over shift-canonical literal names.
  std::vector<std::string> cubes;
  for (const BddCube& cube : mgr_.ToSop(guard)) {
    std::vector<std::string> lits;
    for (const auto& [var, pos] : cube.literals) {
      // Recover (cond node, iter) for this variable.
      InstKey key{0, 0};
      for (const auto& [k, v] : guards_.cond_vars()) {
        if (v == var) {
          key = k;
          break;
        }
      }
      const Node& cn = g_.node(NodeId(key.first));
      const int base = cn.loop.valid()
                           ? bases[cn.loop.value()]
                           : 0;
      lits.push_back(StrCat(pos ? "" : "!", key.first, "@",
                            key.second - base));
    }
    std::sort(lits.begin(), lits.end());
    cubes.push_back(Join(lits, "&"));
  }
  std::sort(cubes.begin(), cubes.end());
  return Join(cubes, "|");
}

std::string ClosureDetector::DebugSignature(const PathState& ps,
                                            std::vector<int>* bases_out) {
  std::vector<int> bases(g_.num_loops(), 0);
  for (const Loop& loop : g_.loops()) {
    bases[loop.id.value()] = ps.loops[loop.id.value()].base();
  }
  *bases_out = bases;

  auto shift = [&](const InstKey& key) -> std::pair<std::uint32_t, int> {
    const Node& n = g_.node(NodeId(key.first));
    const int base = n.loop.valid() ? bases[n.loop.value()] : 0;
    return {key.first, key.second - base};
  };
  auto shift_ref = [&](const InstRef& ref) -> std::string {
    const auto [node, iter] = shift(MakeInstKey(ref));
    return StrCat(node, "_", iter, ".", ref.version);
  };

  // Pending required work in the committed region (kept explicit so states
  // are never merged across unfinished obligations). Computed first because
  // the resolution section below keeps only history that pending work can
  // still observe.
  std::ostringstream pend;
  std::set<InstKey> pending_iters;  // (loop value, iter) with pending work
  for (const Node& n : g_.nodes()) {
    if (!IsScheduledKind(n.kind)) continue;
    int hi = 0;
    if (n.loop.valid()) {
      hi = bases[n.loop.value()] - 1;
    }
    for (int iter = 0; iter <= hi; ++iter) {
      const Bdd ctrl = guards_.CtrlGuard(ps, n.id, iter);
      if (mgr_.IsFalse(ctrl)) continue;
      if (!guards_.InstanceCovered(ps, MakeInstKey(n.id, iter), ctrl,
                                   /*require_completed=*/false)) {
        const auto [node, siter] = shift(MakeInstKey(n.id, iter));
        pend << node << "_" << siter << ";";
        if (n.loop.valid()) {
          pending_iters.emplace(n.loop.value(), iter);
        }
      }
    }
  }

  std::ostringstream os;
  for (const Loop& loop : g_.loops()) {
    const LoopState& ls = ps.loops[loop.id.value()];
    os << "L" << loop.id.value() << (ls.exited ? "X" : "O") << ";";
  }

  std::set<InstKey> loop_conds;
  for (const Loop& loop : g_.loops()) {
    loop_conds.emplace(loop.cond.value(), 0);
  }
  auto is_loop_cond = [&](NodeId n) {
    return loop_conds.contains({n.value(), 0});
  };

  os << "|R:";
  for (const auto& [key, value] : ps.resolved) {
    const NodeId cn(key.first);
    const Node& cnode = g_.node(cn);
    if (cnode.loop.valid()) {
      const LoopState& ls = ps.loops[cnode.loop.value()];
      // Loop-condition resolutions are fully derivable from the frontier
      // position (true below next_unresolved / exit_iter, false at the
      // exit), so they never appear.
      if (is_loop_cond(cn)) continue;
      // Other in-loop resolutions matter only at the frontier or where
      // pending work still consults them.
      if (key.second < ls.base() &&
          !pending_iters.contains({cnode.loop.value(), key.second})) {
        continue;
      }
    }
    const auto [node, iter] = shift(key);
    os << node << "_" << iter << "=" << value << ";";
  }

  os << "|A:";
  for (const auto& [key, versions] : ps.available) {
    const auto [node, iter] = shift(key);
    os << node << "_" << iter << "[";
    for (const VersionRec& v : versions) {
      os << v.version << ":"
         << CanonGuard(guards_.BindingGuard(ps, key, v.version), bases)
         << ",";
    }
    os << "];";
  }

  os << "|B:";
  for (const auto& [key, blist] : ps.bindings) {
    // A binding list is future-relevant only while an execution is still in
    // flight or the instance is not fully covered (new candidates may still
    // be generated and deduplicated against it). Fully covered, completed
    // instances influence the future only through their published versions,
    // which the A section already canonicalizes — omitting them here is
    // what lets steady-state signatures converge.
    bool in_flight = false;
    for (const Binding& b : blist) {
      if (!b.completed && !mgr_.IsFalse(b.guard)) in_flight = true;
    }
    const Bdd ctrl = guards_.CtrlGuard(ps, NodeId(key.first), key.second);
    if (!in_flight &&
        guards_.InstanceCovered(ps, key, ctrl,
                                /*require_completed=*/false)) {
      continue;
    }
    const auto [node, iter] = shift(key);
    os << node << "_" << iter << "[";
    for (std::size_t v = 0; v < blist.size(); ++v) {
      const Binding& b = blist[v];
      if (mgr_.IsFalse(b.guard)) continue;  // scrubbed mispredictions
      os << v << ":(";
      for (const InstRef& ref : b.operands) os << shift_ref(ref) << ",";
      os << ")" << CanonGuard(b.guard, bases) << (b.completed ? "C" : "F")
         << ";";
    }
    os << "];";
  }

  os << "|I:";
  for (const InFlight& f : ps.inflight) {
    os << shift_ref(f.inst) << "r" << f.remaining << ":"
       << CanonGuard(f.guard, bases) << ";";
  }

  os << "|L:";
  for (const auto& [key, versions] : ps.latched) {
    const auto [node, iter] = shift(key);
    os << node << "_" << iter << "[";
    for (const LatchedVersion& v : versions) {
      os << v.version << ":"
         << CanonGuard(guards_.BindingGuard(ps, key, v.version), bases)
         << ",";
    }
    os << "];";
  }

  os << "|P:" << pend.str();

  return os.str();
}

std::optional<ClosureDetector::Hit> ClosureDetector::Lookup(
    const PathState& ps) {
  TokenizeState(ps, &last_bases_);

  FpHasher hasher;
  for (const std::uint64_t token : sig_tokens_) hasher.Mix(token);
  last_fp_ = hasher.digest();

  if (std::getenv("WS_DEBUG_SIG") != nullptr) {
    std::vector<int> dbg_bases;
    std::fprintf(stderr, "SIG[%d] fp=%016llx%016llx: %s\n",
                 stats_.states_created,
                 static_cast<unsigned long long>(last_fp_.hi),
                 static_cast<unsigned long long>(last_fp_.lo),
                 DebugSignature(ps, &dbg_bases).c_str());
  }

  const std::vector<CanonEntry>& bucket = canon_[last_fp_];
  const CanonEntry* match = nullptr;
  for (const CanonEntry& entry : bucket) {
    if (entry.tokens == sig_tokens_) {
      match = &entry;
      break;
    }
    // Same 128-bit fingerprint, different canonical state: resolved exactly
    // by the token comparison, counted for visibility.
    stats_.signature_collisions++;
  }

  if (check_signatures_) {
    // Cross-validate the fingerprint decision against the legacy string
    // signature: both paths must agree on whether this state is new and on
    // which state it folds onto.
    std::vector<int> legacy_bases;
    const std::string legacy = DebugSignature(ps, &legacy_bases);
    auto lit = canon_check_.find(legacy);
    WS_CHECK_MSG((match != nullptr) == (lit != canon_check_.end()),
                 "fingerprint/legacy closure disagreement for: " << legacy);
    if (match != nullptr) {
      WS_CHECK_MSG(match->sid == lit->second,
                   "fingerprint folded onto state "
                       << match->sid.value() << " but legacy says "
                       << lit->second.value() << " for: " << legacy);
    }
  }

  if (match == nullptr) return std::nullopt;

  Hit hit;
  hit.sid = match->sid;
  for (const Loop& loop : g_.loops()) {
    const int delta =
        last_bases_[loop.id.value()] - match->bases[loop.id.value()];
    if (delta != 0) hit.shift.emplace_back(loop.id, delta);
  }
  stats_.closure_hits++;
  return hit;
}

void ClosureDetector::Insert(StateId sid, const PathState& ps) {
  canon_[last_fp_].push_back(CanonEntry{sig_tokens_, sid, last_bases_});
  if (check_signatures_) {
    std::vector<int> legacy_bases;
    canon_check_.emplace(DebugSignature(ps, &legacy_bases), sid);
  }
}

// ---------------------------------------------------------------------------
// Request fingerprints.

namespace {

// Doubles are mixed by bit pattern: the scheduler compares and multiplies
// them exactly as stored, so bit-identical inputs are the right equality.
void MixDouble(FpHasher& h, double v) {
  h.Mix(std::bit_cast<std::uint64_t>(v));
}

}  // namespace

void MixString(FpHasher& h, const std::string& s) {
  h.Mix(s.size());
  std::uint64_t word = 0;
  int shift = 0;
  for (const char c : s) {
    word |= static_cast<std::uint64_t>(static_cast<unsigned char>(c))
            << shift;
    shift += 8;
    if (shift == 64) {
      h.Mix(word);
      word = 0;
      shift = 0;
    }
  }
  if (shift != 0) h.Mix(word);
}

void MixCdfg(FpHasher& h, const Cdfg& g) {
  MixString(h, g.name());
  h.Mix(g.num_nodes());
  for (const Node& n : g.nodes()) {
    h.Mix(static_cast<std::uint64_t>(n.kind));
    // Display names are artifact-affecting: they appear in the STG's guard
    // strings and rendered reports, which now persist in the durable store —
    // a renamed design must never replay another design's artifacts.
    MixString(h, n.name);
    h.Mix(n.inputs.size());
    for (const NodeId in : n.inputs) h.Mix(in.value());
    h.Mix(static_cast<std::uint64_t>(n.const_value));
    h.Mix(n.loop.value());
    h.Mix(n.ctrl.size());
    for (const ControlLiteral& lit : n.ctrl) {
      h.Mix(lit.cond.value());
      h.Mix(lit.polarity ? 1 : 0);
    }
    h.Mix(n.array.value());
  }
  h.Mix(g.num_loops());
  for (const Loop& loop : g.loops()) {
    MixString(h, loop.name);
    h.Mix(loop.cond.value());
    h.Mix(loop.phis.size());
    for (const NodeId phi : loop.phis) h.Mix(phi.value());
    h.Mix(loop.body.size());
    for (const NodeId b : loop.body) h.Mix(b.value());
  }
  h.Mix(g.arrays().size());
  for (const MemArray& a : g.arrays()) {
    MixString(h, a.name);
    h.Mix(static_cast<std::uint64_t>(a.size));
    h.Mix(a.init.size());
    for (const std::int64_t v : a.init) {
      h.Mix(static_cast<std::uint64_t>(v));
    }
  }
  h.Mix(g.inputs().size());
  for (const NodeId in : g.inputs()) h.Mix(in.value());
  h.Mix(g.outputs().size());
  for (const NodeId out : g.outputs()) h.Mix(out.value());
  // Branch probabilities drive criticality (Eq. 5) and the single-path
  // likely assignment, so they are result-affecting inputs. condition_nodes()
  // is sorted by id — a canonical order.
  h.Mix(g.condition_nodes().size());
  for (const NodeId cond : g.condition_nodes()) {
    h.Mix(cond.value());
    MixDouble(h, g.cond_probability(cond));
  }
}

void MixLibrary(FpHasher& h, const FuLibrary& lib) {
  h.Mix(static_cast<std::uint64_t>(lib.num_types()));
  for (int i = 0; i < lib.num_types(); ++i) {
    const FuType& t = lib.type(i);
    MixString(h, t.name);
    h.Mix(static_cast<std::uint64_t>(t.latency));
    h.Mix(t.pipelined ? 1 : 0);
    MixDouble(h, t.delay_ns);
    MixDouble(h, t.area);
  }
  // Kind -> unit selection, enumerated in OpKind declaration order.
  for (int k = 0; k <= static_cast<int>(OpKind::kDisambig); ++k) {
    const OpKind kind = static_cast<OpKind>(k);
    h.Mix(lib.HasTypeFor(kind)
              ? static_cast<std::uint64_t>(lib.TypeFor(kind))
              : ~0ull);
  }
}

void MixAllocation(FpHasher& h, const Allocation& alloc,
                   const FuLibrary& lib) {
  h.Mix(static_cast<std::uint64_t>(lib.num_types()));
  for (int i = 0; i < lib.num_types(); ++i) {
    h.Mix(static_cast<std::uint64_t>(
        static_cast<std::int64_t>(alloc.Count(i))));
  }
}

void MixOptions(FpHasher& h, const SchedulerOptions& options) {
  h.Mix(static_cast<std::uint64_t>(options.mode));
  // The selection policy decides admission order, so it shapes every
  // downstream byte of the schedule.
  h.Mix(static_cast<std::uint64_t>(options.policy));
  MixDouble(h, options.clock.period_ns);
  h.Mix(options.clock.allow_chaining ? 1 : 0);
  h.Mix(static_cast<std::uint64_t>(options.lookahead));
  h.Mix(static_cast<std::uint64_t>(options.gc_window));
  h.Mix(static_cast<std::uint64_t>(options.max_states));
  h.Mix(static_cast<std::uint64_t>(options.max_ops_per_state));
  // Memory speculation rewrites the dependence graph and the LSQ depth
  // bounds how far loads run ahead — both reshape the schedule.
  h.Mix(options.mem_spec ? 1 : 0);
  h.Mix(static_cast<std::uint64_t>(options.lsq_depth));
  // options.deadline / options.cancel / options.wave_workers intentionally
  // excluded: the first two are per-call bounds, and wave_workers only picks
  // how many threads expand the frontier — the parallel engine is
  // byte-deterministic at any worker count, so none affect the result.
}

Fp128 FingerprintScheduleRequest(const ScheduleRequest& request) {
  WS_CHECK_MSG(request.graph != nullptr && request.library != nullptr &&
                   request.allocation != nullptr,
               "FingerprintScheduleRequest: null request member");
  FpHasher h;
  MixCdfg(h, *request.graph);
  MixLibrary(h, *request.library);
  MixAllocation(h, *request.allocation, *request.library);
  MixOptions(h, request.options);
  return h.digest();
}

}  // namespace ws
