#include "sched/fork.h"

#include <utility>

namespace ws {

void ForkEngine::Fold(PathState& ps, NodeId cond, int iter, bool value) {
  ps.resolved[MakeInstKey(cond, iter)] = value;
  auto vit = guards_.cond_vars().find(MakeInstKey(cond, iter));
  if (vit != guards_.cond_vars().end()) {
    const int var = vit->second;
    for (auto& [key, blist] : ps.bindings) {
      for (Binding& b : blist) {
        b.guard = mgr_.Restrict(b.guard, var, value);
        // A dead binding's operands are never consulted again (it cannot be
        // widened back — identical-operand candidates are rare and simply
        // get a fresh version). Scrubbing them keeps mispredicted-history
        // noise out of the canonical state signature.
        if (mgr_.IsFalse(b.guard)) b.operands.clear();
      }
    }
    std::vector<InFlight> kept;
    for (InFlight& f : ps.inflight) {
      f.guard = mgr_.Restrict(f.guard, var, value);
      if (mgr_.IsFalse(f.guard)) {
        stats_.squashed_ops++;
        // Invalidate the binding too: the physical result will never be
        // correct on this path and must not publish a version.
        Binding& dead = ps.bindings[MakeInstKey(f.inst)]
            [static_cast<std::size_t>(f.inst.version)];
        dead.guard = mgr_.False();
        dead.operands.clear();
        continue;
      }
      kept.push_back(f);
    }
    ps.inflight = std::move(kept);
  }

  // Drop dead versions / latched values (guard folded to 0).
  for (auto it = ps.available.begin(); it != ps.available.end();) {
    auto& versions = it->second;
    std::erase_if(versions, [&](const VersionRec& v) {
      return mgr_.IsFalse(guards_.BindingGuard(ps, it->first, v.version));
    });
    it = versions.empty() ? ps.available.erase(it) : std::next(it);
  }
  for (auto it = ps.latched.begin(); it != ps.latched.end();) {
    if (ps.resolved.contains(it->first)) {
      it = ps.latched.erase(it);
      continue;
    }
    auto& versions = it->second;
    std::erase_if(versions, [&](const LatchedVersion& v) {
      return mgr_.IsFalse(guards_.BindingGuard(ps, it->first, v.version));
    });
    it = versions.empty() ? ps.latched.erase(it) : std::next(it);
  }

  // Advance loop fronts.
  for (const Loop& loop : g_.loops()) {
    LoopState& ls = ps.loops[loop.id.value()];
    if (ls.exited) continue;
    for (;;) {
      auto rit =
          ps.resolved.find(MakeInstKey(loop.cond, ls.next_unresolved));
      if (rit == ps.resolved.end()) break;
      if (rit->second) {
        ls.next_unresolved++;
      } else {
        ls.exited = true;
        ls.exit_iter = ls.next_unresolved;
        break;
      }
    }
  }
}

void ForkEngine::PartitionLeaves(const PathState& ps,
                                 std::vector<CondLiteral>& cube,
                                 std::vector<Leaf>& out, int depth) {
  // Resolvable: latched condition instances whose validity guard has become
  // constant-true (the execution is known to have used correct operands).
  std::vector<std::pair<InstKey, int>> resolvable;
  for (const auto& [key, versions] : ps.latched) {
    for (const LatchedVersion& v : versions) {
      if (mgr_.IsTrue(guards_.BindingGuard(ps, key, v.version))) {
        resolvable.emplace_back(key, v.version);
        break;
      }
    }
    if (static_cast<int>(resolvable.size()) >= kMaxResolvePerState) break;
  }
  if (resolvable.empty() || depth > 8) {
    out.push_back(Leaf{cube, ps});
    return;
  }
  const auto [key, version] = resolvable.front();
  const NodeId cond(key.first);
  const int iter = key.second;
  for (const bool value : {true, false}) {
    PathState branch = ps;
    Fold(branch, cond, iter, value);
    cube.push_back(CondLiteral{InstRef{cond, iter, version}, value});
    PartitionLeaves(branch, cube, out, depth + 1);
    cube.pop_back();
  }
}

}  // namespace ws
