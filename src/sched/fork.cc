#include "sched/fork.h"

#include <utility>
#include <vector>

namespace ws {

void ForkEngine::Fold(PathState& ps, NodeId cond, int iter, bool value) {
  ps.resolved.Mutable(MakeInstKey(cond, iter)) = value;
  auto vit = guards_.cond_vars().find(MakeInstKey(cond, iter));
  // A variable no node was ever labeled with cannot appear in any guard, so
  // every cofactor below would be a no-op: skip the sweeps. (The identity
  // import registers the whole main registry in each arena, so a
  // registered-but-unused variable is the common case for conditions that
  // resolve without speculation.)
  if (vit != guards_.cond_vars().end() && mgr_.VarInUse(vit->second)) {
    const int var = vit->second;
    // Two-phase copy-on-write sweep: scan the shared view for binding lists
    // the cofactor actually changes, then copy up only those. Most folds
    // touch a handful of lists, so the untouched bulk stays in the shared
    // base block.
    std::vector<InstKey> dirty;
    for (const auto& [key, blist] : ps.bindings) {
      for (const Binding& b : blist) {
        if (mgr_.Restrict(b.guard, var, value) != b.guard) {
          dirty.push_back(key);
          break;
        }
      }
    }
    for (const InstKey& key : dirty) {
      for (Binding& b : ps.bindings.Mutable(key)) {
        b.guard = mgr_.Restrict(b.guard, var, value);
        // A dead binding's operands are never consulted again (it cannot be
        // widened back — identical-operand candidates are rare and simply
        // get a fresh version). Scrubbing them keeps mispredicted-history
        // noise out of the canonical state signature.
        if (mgr_.IsFalse(b.guard)) b.operands.clear();
      }
    }
    std::vector<InFlight> kept;
    for (InFlight& f : ps.inflight) {
      f.guard = mgr_.Restrict(f.guard, var, value);
      if (mgr_.IsFalse(f.guard)) {
        stats_.squashed_ops++;
        // Invalidate the binding too: the physical result will never be
        // correct on this path and must not publish a version.
        Binding& dead = ps.bindings.Mutable(MakeInstKey(f.inst))
            [static_cast<std::size_t>(f.inst.version)];
        dead.guard = mgr_.False();
        dead.operands.clear();
        continue;
      }
      kept.push_back(f);
    }
    ps.inflight = std::move(kept);
  }

  // Drop dead versions / latched values (guard folded to 0). Two-phase like
  // the binding sweep: classify against the shared view, then copy up or
  // erase only the touched entries.
  std::vector<InstKey> dirty;
  std::vector<InstKey> dead;
  for (const auto& [key, versions] : ps.available) {
    bool any_dead = false;
    bool all_dead = true;
    for (const VersionRec& v : versions) {
      const bool d = mgr_.IsFalse(guards_.BindingGuard(ps, key, v.version));
      any_dead |= d;
      all_dead &= d;
    }
    if (versions.empty() || all_dead) {
      dead.push_back(key);
    } else if (any_dead) {
      dirty.push_back(key);
    }
  }
  for (const InstKey& key : dead) ps.available.Erase(key);
  for (const InstKey& key : dirty) {
    std::erase_if(ps.available.Mutable(key), [&](const VersionRec& v) {
      return mgr_.IsFalse(guards_.BindingGuard(ps, key, v.version));
    });
  }
  dirty.clear();
  dead.clear();
  for (const auto& [key, versions] : ps.latched) {
    if (ps.resolved.contains(key)) {
      dead.push_back(key);
      continue;
    }
    bool any_dead = false;
    bool all_dead = true;
    for (const LatchedVersion& v : versions) {
      const bool d = mgr_.IsFalse(guards_.BindingGuard(ps, key, v.version));
      any_dead |= d;
      all_dead &= d;
    }
    if (versions.empty() || all_dead) {
      dead.push_back(key);
    } else if (any_dead) {
      dirty.push_back(key);
    }
  }
  for (const InstKey& key : dead) ps.latched.Erase(key);
  for (const InstKey& key : dirty) {
    std::erase_if(ps.latched.Mutable(key), [&](const LatchedVersion& v) {
      return mgr_.IsFalse(guards_.BindingGuard(ps, key, v.version));
    });
  }

  // Advance loop fronts.
  for (const Loop& loop : g_.loops()) {
    LoopState& ls = ps.loops[loop.id.value()];
    if (ls.exited) continue;
    for (;;) {
      const bool* resolved =
          ps.resolved.Find(MakeInstKey(loop.cond, ls.next_unresolved));
      if (resolved == nullptr) break;
      if (*resolved) {
        ls.next_unresolved++;
      } else {
        ls.exited = true;
        ls.exit_iter = ls.next_unresolved;
        break;
      }
    }
  }
}

void ForkEngine::PartitionLeaves(const PathState& ps,
                                 std::vector<CondLiteral>& cube,
                                 std::vector<Leaf>& out, int depth) {
  // Resolvable: latched condition instances whose validity guard has become
  // constant-true (the execution is known to have used correct operands).
  std::vector<std::pair<InstKey, int>> resolvable;
  for (const auto& [key, versions] : ps.latched) {
    for (const LatchedVersion& v : versions) {
      if (mgr_.IsTrue(guards_.BindingGuard(ps, key, v.version))) {
        resolvable.emplace_back(key, v.version);
        break;
      }
    }
    if (static_cast<int>(resolvable.size()) >= kMaxResolvePerState) break;
  }
  if (resolvable.empty() || depth > 8) {
    out.push_back(Leaf{cube, ps});
    return;
  }
  const auto [key, version] = resolvable.front();
  const NodeId cond(key.first);
  const int iter = key.second;
  for (const bool value : {true, false}) {
    // Copy-on-write: the branch shares the parent's table base blocks and
    // Fold populates only its overlay.
    PathState branch = ps;
    Fold(branch, cond, iter, value);
    cube.push_back(CondLiteral{InstRef{cond, iter, version}, value});
    PartitionLeaves(branch, cube, out, depth + 1);
    cube.pop_back();
  }
}

}  // namespace ws
