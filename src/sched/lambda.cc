#include "sched/lambda.h"

#include <algorithm>

namespace ws {
namespace {

// Weight of a node in cycles. Selects are register transfers that chain
// within their producer's cycle, so they add no path length.
double Weight(const Cdfg& g, const FuLibrary& lib, NodeId id) {
  const Node& n = g.node(id);
  if (!IsScheduledKind(n.kind) || n.kind == OpKind::kSelect) return 0.0;
  if (!lib.HasTypeFor(n.kind)) return 1.0;
  return static_cast<double>(lib.type(lib.TypeFor(n.kind)).latency);
}

}  // namespace

std::vector<double> ComputeLambda(const Cdfg& g, const FuLibrary& lib,
                                  double max_expected_iters) {
  const std::size_t n = g.num_nodes();
  std::vector<double> lambda(n, 0.0);

  // Acyclic view: drop loop-phi back edges (input index 1). Process in
  // reverse topological order computed by DFS over consumer edges.
  std::vector<int> state(n, 0);  // 0=unvisited, 1=on stack, 2=done
  std::vector<NodeId> order;
  order.reserve(n);

  auto is_back_edge = [&](NodeId from, NodeId to) {
    const Node& t = g.node(to);
    return t.kind == OpKind::kLoopPhi && t.inputs[1] == from;
  };

  auto dfs = [&](auto&& self, NodeId id) -> void {
    state[id.value()] = 1;
    for (NodeId c : g.consumers(id)) {
      if (is_back_edge(id, c)) continue;
      if (state[c.value()] == 0) {
        self(self, c);
      } else {
        WS_CHECK_MSG(state[c.value()] == 2,
                     "data cycle without loop-phi near node "
                         << g.node(id).name);
      }
    }
    state[id.value()] = 2;
    order.push_back(id);
  };
  for (const Node& node : g.nodes()) {
    if (state[node.id.value()] == 0) dfs(dfs, node.id);
  }

  // `order` is in reverse topological order of the consumer relation already
  // (a node is pushed after all its forward consumers).
  for (NodeId id : order) {
    double best = 0.0;
    for (NodeId c : g.consumers(id)) {
      if (is_back_edge(id, c)) continue;
      best = std::max(best, lambda[c.value()]);
    }
    lambda[id.value()] = Weight(g, lib, id) + best;
  }

  // Loop contribution: every node of loop L gains E[remaining iterations] *
  // critical-path(body). The additive constant preserves relative order
  // within a loop while ranking loop work above short post-loop tails.
  for (const Loop& loop : g.loops()) {
    // Critical path of one iteration: longest weighted path from any phi to
    // the corresponding back-edge producer, within the body.
    std::vector<double> longest_from(n, -1.0);
    auto path = [&](auto&& self, NodeId id) -> double {
      if (longest_from[id.value()] >= 0.0) return longest_from[id.value()];
      double best = 0.0;
      for (NodeId c : g.consumers(id)) {
        if (is_back_edge(id, c)) continue;
        if (g.node(c).loop != loop.id) continue;
        best = std::max(best, self(self, c));
      }
      longest_from[id.value()] = Weight(g, lib, id) + best;
      return longest_from[id.value()];
    };
    double cp = 1.0;
    for (NodeId phi : loop.phis) cp = std::max(cp, path(path, phi));

    const double p = g.cond_probability(loop.cond);
    double expected_iters =
        p >= 1.0 ? max_expected_iters : p / (1.0 - p);
    expected_iters = std::min(expected_iters, max_expected_iters);

    for (NodeId b : loop.body) {
      lambda[b.value()] += expected_iters * cp;
    }
  }
  return lambda;
}

}  // namespace ws
