// The engine driver. The algorithmic layers live in their own modules —
// guard algebra in sched/guards.cc, successor computation in
// sched/candidates.cc, fork-time validation/invalidation in sched/fork.cc,
// closure detection in sched/closure.cc, selection policies in
// sched/policy.cc, and the per-state expansion pipeline (greedy admission,
// fork partitioning, GC, termination) in sched/wave.cc. What remains here is
// the per-run orchestration: the frontier loop split into parallel expansion
// and in-order commit, plus the public entry points.
//
// Expand/commit pipeline (the parallel wave loop):
//
//   * Every frontier state is a WaveItem: its PathState imported into a
//     private BDD sub-arena. Items are pushed to a work-stealing pool
//     (base/work_steal.h) the moment they are created; workers expand them
//     concurrently — candidate admission, fork tree, GC — touching only
//     their own arena. With wave_workers == 0 the push runs the expansion
//     inline, which *is* the sequential engine.
//
//   * The commit loop consumes items in strict FIFO frontier order — the
//     exact order the sequential worklist would process them. For each item
//     it replays the arena's variable mints into the main guard engine,
//     migrates surviving leaf guards into the main manager, runs closure
//     lookup / state numbering / transition construction, and turns fresh
//     leaves into new frontier items.
//
//   Determinism follows by construction: an expansion is a pure function of
//   its item (built from committed data only), and everything order-
//   sensitive — closure, StateId assignment, stats accumulation — happens
//   on this thread in frontier order. Worker count changes when expansions
//   run, never what they compute, so EncodeStg bytes and stats counters are
//   identical at any setting. parallel_wave_test enforces this.
#include "sched/scheduler.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "base/phase_timer.h"
#include "base/strings.h"
#include "base/work_steal.h"
#include "bdd/bdd.h"
#include "mem/disambig.h"
#include "sched/closure.h"
#include "sched/engine_state.h"
#include "sched/guards.h"
#include "sched/lambda.h"
#include "sched/policy.h"
#include "sched/wave.h"

namespace ws {

const char* SpeculationModeName(SpeculationMode mode) {
  switch (mode) {
    case SpeculationMode::kWavesched: return "wavesched";
    case SpeculationMode::kSinglePath: return "single-path";
    case SpeculationMode::kWaveschedSpec: return "wavesched-spec";
  }
  return "?";
}

namespace {

// Folds one expansion's counters and phase times into the run totals.
// Called in commit order, so the counter sums are deterministic (the phase
// times are wall clock and excluded from canonical renderings anyway).
void AccumulateStats(const ScheduleStats& from, ScheduleStats* into) {
  into->speculative_ops += from.speculative_ops;
  into->squashed_ops += from.squashed_ops;
  into->total_ops += from.total_ops;
  into->candidates_generated += from.candidates_generated;
  into->bdd_ops += from.bdd_ops;
  into->bdd_nodes += from.bdd_nodes;
  into->phase.successor_ns += from.phase.successor_ns;
  into->phase.cofactor_ns += from.phase.cofactor_ns;
  into->phase.gc_ns += from.phase.gc_ns;
  into->phase.select_ns += from.phase.select_ns;
}

class SchedulerImpl {
 public:
  // `lsq` is the relaxed memory-dependence model when the run speculates on
  // memory (then `g` is the relaxed graph ApplyMemSpec built); null keeps
  // the conservative token chain.
  SchedulerImpl(const Cdfg& g, const FuLibrary& lib, const Allocation& alloc,
                const SchedulerOptions& options, const LsqModel* lsq)
      : g_(g),
        lib_(lib),
        alloc_(alloc),
        opts_(options),
        lsq_(lsq),
        stg_(g.name()),
        guards_(g, mgr_),
        policy_(MakeSelectionPolicy(options.policy)),
        closure_(g, mgr_, guards_, stats_),
        pool_(options.wave_workers) {}

  ScheduleResult Run();

 private:
  // Cooperative cancellation on the commit thread; expansions poll the same
  // flag/deadline independently (see wave.cc), so a run is abandoned within
  // one state's work of the trigger and never yields a partial STG.
  void CheckCancellation() const {
    if (opts_.cancel != nullptr &&
        opts_.cancel->load(std::memory_order_relaxed)) {
      throw CancelledError("schedule cancelled by caller");
    }
    if (opts_.deadline.has_value() &&
        std::chrono::steady_clock::now() >= *opts_.deadline) {
      throw DeadlineExceededError("schedule deadline exceeded");
    }
  }

  void ComputeHardUses();

  struct GetResult {
    StateId sid;
    std::vector<std::pair<LoopId, int>> shift;
    bool fresh = false;
  };
  // Closure lookup / state numbering. Commit-thread only: running it in
  // frontier order is what keeps StateIds identical to the sequential
  // engine at any worker count.
  GetResult CreateOrGet(const PathState& ps);

  // Builds a WaveItem for a fresh state (importing `ps` into a new
  // sub-arena), appends it to the frontier, and hands it to the pool.
  void EnqueueExpansion(StateId sid, const PathState& ps);

  // Pops the frontier head and blocks until its expansion completes.
  std::unique_ptr<WaveItem> AwaitFrontierHead();

  // --- Members -------------------------------------------------------------------
  const Cdfg& g_;
  const FuLibrary& lib_;
  const Allocation& alloc_;
  const SchedulerOptions& opts_;
  const LsqModel* lsq_;

  BddManager mgr_;
  Stg stg_;
  ScheduleStats stats_;

  std::vector<double> lambda_;
  std::vector<std::vector<HardUse>> hard_uses_;  // by node
  std::vector<int> escape_delta_;                // by node; -1 = no escape

  // Main-manager engine layers (commit side). Construction order matters:
  // closure_ borrows guards_.
  GuardEngine guards_;
  std::unique_ptr<SelectionPolicyImpl> policy_;
  ClosureDetector closure_;

  // Read-only expansion inputs; built in Run() once lambda_/hard_uses_ are
  // populated, before the first expansion is enqueued.
  WaveShared shared_;

  // Recycled branch arenas. A committed item's arena is Reset() and reused
  // by a later EnqueueExpansion, keeping its flat tables' capacity. Touched
  // only by the commit thread, and only after AwaitFrontierHead confirmed
  // the expanding worker is done with the arena.
  std::vector<std::unique_ptr<BranchArena>> arena_pool_;

  // FIFO frontier of in-flight and not-yet-committed expansions. Workers
  // signal completion through ready_cv_ (WaveItem::ready is guarded by
  // ready_mu_). Declared before pool_ so the pool destructor — which joins
  // workers still running expansions — executes first (members destroy in
  // reverse order).
  std::deque<std::unique_ptr<WaveItem>> frontier_;
  std::mutex ready_mu_;
  std::condition_variable ready_cv_;

  WorkStealingPool pool_;
};

void SchedulerImpl::ComputeHardUses() {
  const std::size_t num = g_.num_nodes();
  hard_uses_.assign(num, {});
  escape_delta_.assign(num, -1);  // -1: value never escapes its loop

  for (const Node& n : g_.nodes()) {
    // Walk forward through loop-phis (the only pass-through kind left; a
    // materialized select is a hard consumer). delta = iteration distance
    // between (n, i) and the consumer instance reading its value.
    std::vector<std::tuple<NodeId, NodeId, int>> stack;  // (from, to, delta)
    std::set<std::pair<std::uint32_t, int>> seen;
    for (NodeId c : g_.consumers(n.id)) stack.emplace_back(n.id, c, 0);
    while (!stack.empty()) {
      auto [from, to, delta] = stack.back();
      stack.pop_back();
      if (delta > 8) {  // phi cycle without computation; never GC
        escape_delta_[n.id.value()] =
            std::max(escape_delta_[n.id.value()], 1000000);
        continue;
      }
      if (!seen.emplace(to.value(), delta).second) continue;
      const Node& cn = g_.node(to);
      if (cn.loop != n.loop) {
        // Read from outside the loop: an exit-value use. The value of
        // (n, i) is visible at the exit iff exit happens at i + delta.
        escape_delta_[n.id.value()] =
            std::max(escape_delta_[n.id.value()], delta);
        continue;
      }
      if (cn.kind == OpKind::kLoopPhi) {
        if (cn.inputs[1] == from) {
          // Back edge: phi_{i+delta+1} carries the value.
          for (NodeId c2 : g_.consumers(to)) {
            stack.emplace_back(to, c2, delta + 1);
          }
        }
        // Init edges come from outside the loop; not relevant for in-loop
        // garbage collection.
        continue;
      }
      if (!IsScheduledKind(cn.kind)) continue;  // kOutput handled above
      hard_uses_[n.id.value()].push_back({to, delta});
    }
  }

  // Memory-token consumers: an access's completion token must survive until
  // every later access ordered behind it is covered. Modeled (LSQ) arrays
  // use the relaxed dependence edges — every edge retains its predecessor,
  // including speculative ones, since an alias resolution turns those hard.
  // Unmodeled arrays keep the program-order chain.
  for (const MemArray& arr : g_.arrays()) {
    if (lsq_ != nullptr && lsq_->Models(arr.id)) continue;
    const auto& accesses = g_.array_accesses(arr.id);
    for (std::size_t i = 0; i < accesses.size(); ++i) {
      const NodeId cur = accesses[i];
      if (i + 1 < accesses.size()) {
        hard_uses_[cur.value()].push_back({accesses[i + 1], 0});
      }
      if (i + 1 == accesses.size() && g_.node(cur).loop.valid() &&
          g_.node(accesses.front()).loop == g_.node(cur).loop) {
        hard_uses_[cur.value()].push_back({accesses.front(), 1});
      }
    }
  }
  if (lsq_ != nullptr) {
    for (const Node& n : g_.nodes()) {
      for (const MemDep& d : lsq_->DepsFor(n.id)) {
        hard_uses_[d.pred.value()].push_back({n.id, d.delta});
      }
    }
  }
}

SchedulerImpl::GetResult SchedulerImpl::CreateOrGet(const PathState& ps) {
  const PhaseTimer timer(&stats_.phase.closure_ns);
  if (std::optional<ClosureDetector::Hit> hit = closure_.Lookup(ps)) {
    return GetResult{hit->sid, std::move(hit->shift), /*fresh=*/false};
  }

  GetResult r;
  r.sid = stg_.AddState();
  r.fresh = true;
  stats_.states_created++;
  WS_CHECK_MSG(stats_.states_created <= opts_.max_states,
               "state cap exceeded (" << opts_.max_states
                                      << "); no closure found");
  closure_.Insert(r.sid, ps);
  return r;
}

void SchedulerImpl::EnqueueExpansion(StateId sid, const PathState& ps) {
  auto item = std::make_unique<WaveItem>();
  item->sid = sid;
  if (!arena_pool_.empty()) {
    // Recycled arenas are Reset() to a state indistinguishable from new
    // (indices, orders, counters restart), just with tables pre-sized.
    item->arena = std::move(arena_pool_.back());
    arena_pool_.pop_back();
  } else {
    item->arena = std::make_unique<BranchArena>(g_);
  }
  item->imported_vars = static_cast<int>(guards_.var_keys().size());
  item->ps = ImportPathState(ps, mgr_, guards_, item->arena.get());
  WaveItem* raw = item.get();
  frontier_.push_back(std::move(item));
  // With zero workers Push runs the expansion inline right here — the
  // sequential engine with the same code path.
  pool_.Push([this, raw] {
    ExpandWaveItem(shared_, raw);
    {
      std::lock_guard<std::mutex> lock(ready_mu_);
      raw->ready = true;
    }
    ready_cv_.notify_all();
  });
}

std::unique_ptr<WaveItem> SchedulerImpl::AwaitFrontierHead() {
  std::unique_ptr<WaveItem> item = std::move(frontier_.front());
  frontier_.pop_front();
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(ready_mu_);
      if (item->ready) return item;
    }
    // Help instead of blocking: run a queued expansion on this thread.
    // Which thread expands an item never affects its result, so helping
    // cannot perturb determinism — and on a single-CPU host it removes the
    // per-item context-switch pair a blocking hand-off would cost.
    if (pool_.TryRunOne()) continue;
    // Every queued task is taken, so the head is running on a worker right
    // now (or just finished); sleep until it signals.
    std::unique_lock<std::mutex> lock(ready_mu_);
    ready_cv_.wait(lock, [&] { return item->ready; });
    return item;
  }
}

ScheduleResult SchedulerImpl::Run() {
  const auto run_start = std::chrono::steady_clock::now();
  lambda_ = ComputeLambda(g_, lib_);
  ComputeHardUses();
  shared_ = WaveShared{&g_,      &lib_,       &alloc_,     &opts_,
                       policy_.get(), &lambda_, &hard_uses_, &escape_delta_,
                       lsq_};

  // Speculative stores are forbidden; conditional memory accesses would make
  // the token chain control-dependent, which this scheduler does not model.
  for (const Node& n : g_.nodes()) {
    if (n.kind == OpKind::kMemRead || n.kind == OpKind::kMemWrite) {
      WS_CHECK_MSG(n.ctrl.empty(),
                   "memory access " << n.name
                                    << " must be unconditional in its scope");
    }
  }

  PathState initial;
  initial.loops.resize(g_.num_loops());
  const GetResult entry = CreateOrGet(initial);
  stg_.set_entry(entry.sid);
  EnqueueExpansion(entry.sid, initial);

  while (!frontier_.empty()) {
    CheckCancellation();
    std::unique_ptr<WaveItem> item = AwaitFrontierHead();
    // Rethrow the head's failure here, in frontier order: a later item's
    // error never preempts an earlier item's result, so error reporting is
    // as deterministic as success. (Cancellation/deadline are observed by
    // every in-flight expansion independently, so abandoned runs unwind
    // promptly; the pool destructor discards queued expansions.)
    if (item->error != nullptr) std::rethrow_exception(item->error);
    AccumulateStats(item->stats, &stats_);

    const StateId sid = item->sid;
    // Replay the arena's variable mints into the main engine (fresh conds
    // minted during expansion get their main variables here, in expansion
    // first-touch order), then adopt the expansion's schedule.
    const std::vector<int> to_main =
        BindArenaVars(*item->arena, item->imported_vars, &guards_);
    stg_.state(sid).ops = std::move(item->ops);

    // Merge leaves that land on the same successor (same target, same
    // relabel shift, and — for stop edges — the same output bindings).
    std::map<std::string, std::size_t> merged;  // key -> index in state.out
    bool fresh_migrate = true;  // one memo epoch spans all of this item's leaves
    for (WaveItem::LeafResult& leaf : item->leaves) {
      MigrateToMain(*item->arena, to_main, &mgr_, &leaf.ps, &fresh_migrate);
      StateId target;
      std::vector<std::pair<LoopId, int>> shift;
      if (leaf.done) {
        target = stg_.AddStopState();
      } else {
        const GetResult r = CreateOrGet(leaf.ps);
        target = r.sid;
        shift = r.shift;
        if (r.fresh) EnqueueExpansion(r.sid, leaf.ps);
      }
      std::string mkey = StrCat("t", target.value(), "/");
      for (const auto& [loop, delta] : shift) {
        mkey += StrCat(loop.value(), ":", delta, ";");
      }
      for (const OutputBinding& ob : leaf.outputs) {
        mkey += StrCat("o", ob.output.value(), "=", ob.value.node.value(),
                       "_", ob.value.iter, ".", ob.value.version, ";");
      }
      // Note: CreateOrGet/AddStopState may grow the state vector, so the
      // source state must be re-fetched on every use.
      auto mit = merged.find(mkey);
      if (mit != merged.end()) {
        stg_.state(sid).out[mit->second].cubes.push_back(
            std::move(leaf.cube));
      } else {
        Transition t;
        t.from = sid;
        t.to = target;
        t.cubes.push_back(std::move(leaf.cube));
        t.iter_shift = shift;
        t.outputs = std::move(leaf.outputs);
        merged.emplace(mkey, stg_.state(sid).out.size());
        stg_.state(sid).out.push_back(std::move(t));
      }
    }

    // This item is fully committed (its leaves hold main-manager handles
    // now); recycle the arena for a later frontier state.
    item->arena->Reset();
    arena_pool_.push_back(std::move(item->arena));
  }

  stg_.Validate();
  // Main-manager totals on top of the per-arena counts accumulated above.
  stats_.bdd_ops += mgr_.num_ops();
  stats_.bdd_nodes += mgr_.num_nodes();
  stats_.phase.total_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - run_start)
          .count();
  return ScheduleResult{std::move(stg_), stats_};
}

}  // namespace

Status SchedulerOptions::Validate() const {
  if (lookahead < 0) {
    return Status::MakeError(
        StatusCode::kInvalidArgument,
        StrCat("SchedulerOptions: lookahead must be >= 0, got ", lookahead));
  }
  if (gc_window < 1) {
    return Status::MakeError(
        StatusCode::kInvalidArgument,
        StrCat("SchedulerOptions: gc_window must be >= 1, got ", gc_window));
  }
  if (max_states < 1) {
    return Status::MakeError(
        StatusCode::kInvalidArgument,
        StrCat("SchedulerOptions: max_states must be >= 1, got ",
               max_states));
  }
  if (max_ops_per_state < 1) {
    return Status::MakeError(
        StatusCode::kInvalidArgument,
        StrCat("SchedulerOptions: max_ops_per_state must be >= 1, got ",
               max_ops_per_state));
  }
  if (wave_workers < 0) {
    return Status::MakeError(
        StatusCode::kInvalidArgument,
        StrCat("SchedulerOptions: wave_workers must be >= 0, got ",
               wave_workers));
  }
  if (lsq_depth < 1) {
    return Status::MakeError(
        StatusCode::kInvalidArgument,
        StrCat("SchedulerOptions: lsq_depth must be >= 1, got ", lsq_depth));
  }
  if (!(clock.period_ns > 0.0)) {
    return Status::MakeError(
        StatusCode::kInvalidArgument,
        StrCat("SchedulerOptions: clock period must be > 0, got ",
               clock.period_ns));
  }
  return Status::Ok();
}

Result<ScheduleReport> Schedule(const ScheduleRequest& request) {
  if (request.graph == nullptr) {
    return Status::MakeError(StatusCode::kInvalidArgument,
                             "ScheduleRequest: graph is null");
  }
  if (request.library == nullptr) {
    return Status::MakeError(StatusCode::kInvalidArgument,
                             "ScheduleRequest: library is null");
  }
  if (request.allocation == nullptr) {
    return Status::MakeError(StatusCode::kInvalidArgument,
                             "ScheduleRequest: allocation is null");
  }
  if (const Status s = request.options.Validate(); !s.ok()) return s;
  try {
    // Speculative memory disambiguation: relax the per-array token chain
    // into LSQ dependence edges. A silent no-op for designs without
    // analyzable arrays and under kWavesched (which never speculates, so a
    // conditional edge could never be taken).
    std::optional<MemSpecResult> mem_spec;
    if (request.options.mem_spec &&
        request.options.mode != SpeculationMode::kWavesched) {
      MemSpecResult r = ApplyMemSpec(*request.graph);
      if (r.lsq.active()) mem_spec = std::move(r);
    }
    const Cdfg& graph = mem_spec ? mem_spec->graph : *request.graph;
    const LsqModel* lsq = mem_spec ? &mem_spec->lsq : nullptr;
    SchedulerImpl impl(graph, *request.library, *request.allocation,
                       request.options, lsq);
    return impl.Run();
  } catch (const DeadlineExceededError& e) {
    return Status::MakeError(StatusCode::kDeadlineExceeded, e.what());
  } catch (const CancelledError& e) {
    return Status::MakeError(StatusCode::kCancelled, e.what());
  } catch (const Error& e) {
    return Status::MakeError(e.what());
  }
}

}  // namespace ws
